// Command benchdiff compares freshly generated benchmark JSON artifacts
// (BENCH_*.json, written by the bench suite under the GEOVMP_BENCH_*_JSON
// env vars) against the committed baselines in testdata/bench/ and fails
// when any throughput metric regressed by more than the threshold.
//
// Only throughput fields (*_per_sec) gate: they answer "did this PR make
// the engine slower", which is what the committed trajectory tracks.
// Quality fields (costs, migrations, hypervolumes) are pinned exactly by
// the golden tests instead, and latency-style fields (ns_per_op,
// boundary_embed_ms) are redundant with their throughput counterparts.
// Fresh artifacts are allowed to be faster without limit; missing metrics
// on either side fail loudly so schema drift cannot silently disable the
// gate.
//
// Usage:
//
//	go run ./scripts/benchdiff.go -baseline testdata/bench -fresh . \
//	    [-threshold 0.15] [files...]
//
// With no file list, every BENCH_*.json present in the baseline directory
// is compared; a fresh artifact missing for an existing baseline is an
// error (dropping a benchmark should be an explicit baseline change).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	baselineDir := flag.String("baseline", "testdata/bench", "directory holding committed BENCH_*.json baselines")
	freshDir := flag.String("fresh", ".", "directory holding freshly generated BENCH_*.json artifacts")
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated relative throughput drop")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		matches, err := filepath.Glob(filepath.Join(*baselineDir, "BENCH_*.json"))
		if err != nil {
			fatal(err)
		}
		for _, m := range matches {
			files = append(files, filepath.Base(m))
		}
		sort.Strings(files)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no BENCH_*.json baselines under %s", *baselineDir))
	}

	failed := false
	for _, name := range files {
		base, err := loadMetrics(filepath.Join(*baselineDir, name))
		if err != nil {
			fatal(err)
		}
		fresh, err := loadMetrics(filepath.Join(*freshDir, name))
		if err != nil {
			fatal(err)
		}
		compared := 0
		for _, key := range sortedKeys(base) {
			if !strings.HasSuffix(key, "_per_sec") {
				continue
			}
			baseVal := base[key]
			freshVal, ok := fresh[key]
			if !ok {
				fmt.Printf("FAIL %s %s: metric missing from fresh artifact\n", name, key)
				failed = true
				continue
			}
			compared++
			if baseVal <= 0 {
				fmt.Printf("skip %s %s: non-positive baseline %v\n", name, key, baseVal)
				continue
			}
			drop := (baseVal - freshVal) / baseVal
			status := "ok  "
			if drop > *threshold {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %s %s: baseline %.4f, fresh %.4f (%+.1f%%)\n",
				status, name, key, baseVal, freshVal, -drop*100)
		}
		if compared == 0 {
			fmt.Printf("FAIL %s: no *_per_sec throughput metrics in baseline\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Printf("\nthroughput regression beyond %.0f%% (or schema drift); if intentional, regenerate testdata/bench/ baselines\n", *threshold*100)
		os.Exit(1)
	}
}

// loadMetrics flattens one artifact's numeric fields.
func loadMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	metrics := map[string]float64{}
	for k, v := range fields {
		if f, ok := v.(float64); ok {
			metrics[k] = f
		}
	}
	return metrics, nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
