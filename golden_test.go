package geovmp

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenPath holds the committed golden ResultSet export. Regenerate it
// deliberately — never by editing — with:
//
//	GEOVMP_UPDATE_GOLDEN=1 go test -run TestGoldenResultSet .
//
// and review the diff like any other code change: every changed digit is a
// behaviour change shipped to users of these numbers.
const goldenPath = "testdata/golden_sweep.json"

// goldenGrid is the pinned regression grid: the paper's Table I world plus
// the rolling-horizon geo5dc-dynamic preset (per-epoch breakdown included),
// each tiny and short, under all four standard policies and two seeds.
func goldenGrid() *Experiment {
	static := MustPreset("paper-geo3dc")
	static.Scale = 0.01
	static.Seed = 7
	static.Horizon = HoursOf(8)
	static.FineStepSec = 300

	dynamic := MustPreset("geo5dc-dynamic")
	dynamic.Scale = 0.01
	dynamic.Seed = 11
	dynamic.Horizon = HoursOf(8)
	dynamic.FineStepSec = 300

	return NewExperiment(
		WithScenarios(static, dynamic),
		WithPolicies(StandardPolicies(0.9)...),
		WithSeeds(2),
	)
}

// TestGoldenResultSet is the golden-result regression harness: the grid's
// ResultSet JSON must match the committed file bit for bit. The simulator
// is deterministic in the seeds at any parallelism, so any diff here is a
// real behaviour change — an intentional one updates the golden in the same
// commit (like PR 2's last-ulp embedding refinement would have), an
// unintentional one is a caught regression.
func TestGoldenResultSet(t *testing.T) {
	set, err := goldenGrid().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	js, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got := append(js, '\n')

	// Sanity-check the golden covers the rolling-horizon surface before
	// comparing: the dynamic scenario must report per-epoch migrations.
	assertDynamicCoverage(t, set)

	if os.Getenv("GEOVMP_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (%v); generate one with GEOVMP_UPDATE_GOLDEN=1 go test -run TestGoldenResultSet .", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ResultSet JSON drifted from %s at %s.\nIf the change is intentional, regenerate with GEOVMP_UPDATE_GOLDEN=1 and commit the diff.",
			goldenPath, firstDiff(got, want))
	}
}

// assertDynamicCoverage fails when the dynamic half of the golden grid
// stops exercising the epoch engine — a silent-coverage guard, not a
// metric assertion.
func assertDynamicCoverage(t *testing.T, set *ResultSet) {
	t.Helper()
	migrations := 0
	for pi := range set.Policies {
		for ki := range set.SeedOffsets {
			r := set.At(1, pi, ki).Result
			if r == nil {
				t.Fatalf("dynamic cell (%d,%d) missing", pi, ki)
			}
			if len(r.Epochs) == 0 {
				t.Fatalf("dynamic cell %s/seed+%d has no epoch breakdown", set.Policies[pi], ki)
			}
			for _, es := range r.Epochs {
				migrations += es.Migrations
			}
		}
	}
	if migrations == 0 {
		t.Fatal("dynamic scenario executed no migrations: the golden no longer covers migration accounting")
	}
}

// firstDiff locates the first divergence between two byte slices by line
// and column, so a golden failure points at the drifted metric instead of
// dumping two multi-kilobyte documents.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	line, col := 1, 1
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("line %d, column %d (got %q, want %q)", line, col, got[i], want[i])
		}
		if got[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("length %d vs %d (common prefix identical)", len(got), len(want))
}

// goldenFaultyPath pins the survivability surface: the geo5dc-faulty preset
// (reference outage schedule + erasure-coded storage) under the standard
// policies. Separate from golden_sweep.json so zero-fault scenarios keep
// their byte-identical history. Regenerate with:
//
//	GEOVMP_UPDATE_GOLDEN=1 go test -run TestGoldenFaulty .
const goldenFaultyPath = "testdata/golden_faulty.json"

func goldenFaultyGrid() *Experiment {
	faulty := MustPreset("geo5dc-faulty")
	faulty.Scale = 0.01
	faulty.Seed = 13
	faulty.Horizon = HoursOf(16)
	faulty.FineStepSec = 300

	return NewExperiment(
		WithScenarios(faulty),
		WithPolicies(StandardPolicies(0.9)...),
		WithSeeds(2),
	)
}

// TestGoldenFaulty is the fault-path golden: the faulty grid's ResultSet
// JSON must match the committed file bit for bit, and the grid must
// actually exercise the survivability surface (loss risk, repair traffic,
// evacuations) so the golden cannot silently degenerate into a healthy run.
func TestGoldenFaulty(t *testing.T) {
	set, err := goldenFaultyGrid().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	js, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got := append(js, '\n')

	covered := false
	for pi := range set.Policies {
		for ki := range set.SeedOffsets {
			r := set.At(0, pi, ki).Result
			if r == nil {
				t.Fatalf("faulty cell (%d,%d) missing", pi, ki)
			}
			if r.DataLossProb > 0 && r.RepairBytes > 0 &&
				r.Evacuations+r.StrandedVMSlots > 0 {
				covered = true
			}
		}
	}
	if !covered {
		t.Fatal("no cell shows loss risk, repair traffic and evacuations: the golden no longer covers the fault path")
	}

	if os.Getenv("GEOVMP_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFaultyPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFaultyPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", goldenFaultyPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenFaultyPath)
	if err != nil {
		t.Fatalf("no golden file (%v); generate one with GEOVMP_UPDATE_GOLDEN=1 go test -run TestGoldenFaulty .", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ResultSet JSON drifted from %s at %s.\nIf the change is intentional, regenerate with GEOVMP_UPDATE_GOLDEN=1 and commit the diff.",
			goldenFaultyPath, firstDiff(got, want))
	}
}
