// Package geovmp reproduces "Exploiting CPU-Load and Data Correlations in
// Multi-Objective VM Placement for Geo-Distributed Data Centers" (Pahlevan,
// Garcia del Valle, Atienza — DATE 2016) as a runnable Go library.
//
// The package is a facade over the internal implementation:
//
//   - Proposed() builds the paper's two-phase controller: force-directed
//     embedding of VMs under data-correlation attraction and CPU-load-
//     correlation repulsion, energy-capacity-capped k-means clustering per
//     DC, migration revision under the network latency constraint
//     (Algorithm 2), and correlation-aware local server allocation with
//     DVFS.
//   - EnerAware, PriAware and NetAware build the paper's three baselines.
//   - NewScenario(Spec{...}) constructs the evaluation world of Sect. V:
//     the Table I fleet (Lisbon / Zurich / Helsinki), PV plants with WCMA
//     forecasting, lithium-ion batteries at 50% DoD, two-level tariffs,
//     the full-mesh 100 Gb/s backbone with stochastic BERs, and the
//     synthetic multi-class workload with bidirectional inter-VM volumes.
//   - Run simulates one policy over a scenario; Compare runs a set of
//     policies over identical replicas of a scenario — the paper's
//     comparison discipline.
//
// Minimal use:
//
//	res, err := geovmp.Compare(geovmp.Spec{Scale: 0.05, Seed: 42},
//	    geovmp.Proposed(0.9, 42), geovmp.EnerAware())
//
// Everything is deterministic in Spec.Seed.
package geovmp

import (
	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/report"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/viz"
)

// Policy is a complete placement method (global clustering phase + local
// allocation phase). Implementations: Proposed, EnerAware, PriAware,
// NetAware.
type Policy = policy.Policy

// Scenario is a fully-constructed evaluation world. Its fleet and
// forecaster state are mutable; use one Scenario per Run.
type Scenario = sim.Scenario

// Result carries one run's metrics: operational cost (Fig. 1), facility
// energy (Fig. 2), the response-time distribution (Fig. 3), migration and
// consolidation counters, and energy sourcing totals.
type Result = sim.Result

// Spec parameterizes scenario construction; the zero value plus a Seed
// gives the paper's one-week Table I setup at full scale.
type Spec = config.Spec

// Horizon is an experiment duration in one-hour slots.
type Horizon = timeutil.Horizon

// ForecastKind selects the renewable-energy forecaster.
type ForecastKind = config.ForecastKind

// Forecaster choices for Spec.Forecast.
const (
	ForecastWCMA      = config.ForecastWCMA
	ForecastEWMA      = config.ForecastEWMA
	ForecastLastValue = config.ForecastLastValue
	ForecastOracle    = config.ForecastOracle
)

// Week returns the paper's one-week horizon; Days and Hours build shorter
// ones.
func Week() Horizon { return timeutil.Week() }

// Days returns an n-day horizon.
func Days(n int) Horizon { return timeutil.Days(n) }

// HoursOf returns an n-hour horizon.
func HoursOf(n int) Horizon { return timeutil.Hours(n) }

// Proposed returns the paper's two-phase multi-objective controller. alpha
// in [0,1] weighs performance (data correlation, toward 1) against energy
// (CPU-load correlation, toward 0); out-of-range values select the default
// 0.9. A controller carries per-slot state: use a fresh one per Run.
func Proposed(alpha float64, seed uint64) *core.Controller {
	return core.New(alpha, seed)
}

// EnerAware returns the energy-aware baseline [5] (Kim et al., DATE 2013):
// FFD clustering over DCs plus correlation-aware local allocation.
func EnerAware() Policy { return policy.EnerAware{} }

// PriAware returns the cost-aware baseline [17] (Gu et al., ICNC 2015):
// greedy packing onto the DCs with the lowest current grid price.
func PriAware() Policy { return policy.PriAware{} }

// NetAware returns the network-aware baseline [6] (Biran et al., CCGRID
// 2012, GH heuristic): traffic-affine, load-balanced placement.
func NetAware() Policy { return policy.NetAware{} }

// NewScenario builds the evaluation world described by spec. Each call
// returns independent mutable state, so build one per policy when
// comparing.
func NewScenario(spec Spec) (*Scenario, error) { return config.Build(spec) }

// Run simulates pol over sc and returns its metrics.
func Run(sc *Scenario, pol Policy) (*Result, error) { return sim.Run(sc, pol) }

// Compare evaluates each policy on an identical fresh replica of the
// scenario described by spec — same workload, same network draws, same
// initial battery state — and returns the results in input order.
func Compare(spec Spec, pols ...Policy) ([]*Result, error) {
	out := make([]*Result, 0, len(pols))
	for _, p := range pols {
		sc, err := NewScenario(spec)
		if err != nil {
			return nil, err
		}
		res, err := Run(sc, p)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AllPolicies returns the paper's four methods in evaluation order:
// Proposed, Ener-aware, Pri-aware, Net-aware.
func AllPolicies(alpha float64, seed uint64) []Policy {
	return []Policy{Proposed(alpha, seed), EnerAware(), PriAware(), NetAware()}
}

// Summarize renders a one-line-per-policy metrics table for a result set.
func Summarize(results []*Result) string { return report.Summary(results) }

// Figure is one regenerated table or figure of the paper's evaluation
// (Render for text, WriteCSV for data).
type Figure = report.Figure

// Workload is the interface feeding VMs, traces and volumes into the
// simulator. NewScenario installs the synthetic generator; LoadWorkload
// reads a replayed trace directory instead.
type Workload = trace.Source

// ExportWorkload writes the first `slots` hours of any workload to dir in
// the replay CSV format (vms.csv / profiles.csv / volumes.csv) with
// `samples` utilization samples per slot.
func ExportWorkload(w Workload, dir string, slots Horizon, samples int) error {
	return trace.ExportReplay(w, dir, slots.Slots, samples)
}

// LoadWorkload reads a replay directory written by ExportWorkload (or
// produced from real DC traces in the same format). Assign the result to
// Scenario.Workload to drive experiments with it.
func LoadWorkload(dir string) (Workload, error) { return trace.LoadReplay(dir) }

// Figures regenerates the paper's Table I and Figs. 1-6 from a result set
// produced over sc (or an identical scenario replica).
func Figures(sc *Scenario, results []*Result) []*Figure {
	return report.All(sc.Fleet, results)
}

// ProposedController is the concrete type behind Proposed, exposing the
// controller's tunables (Alpha, Stick, NoEmbedding, ...) and its embedding
// layout via Positions.
type ProposedController = core.Controller

// EmbeddingSVG renders a Proposed controller's current 2D point layout as
// an SVG document, coloring each VM by groupOf (for example its final DC
// from Result.FinalPlacement); groups names the legend entries.
func EmbeddingSVG(ctrl *ProposedController, title string, groupOf func(id int) int, groups []string) string {
	return viz.Plane(title, ctrl.Positions(), groupOf, groups)
}

// CompareSeeds repeats Compare over `seeds` consecutive seeds starting at
// spec.Seed, building fresh policies per seed via mkPolicies (stateful
// policies cannot be reused across runs). It returns one result set per
// seed, ready for AggregateFigure.
func CompareSeeds(spec Spec, seeds int, mkPolicies func(seed uint64) []Policy) ([][]*Result, error) {
	var out [][]*Result
	for k := 0; k < seeds; k++ {
		s := spec
		s.Seed = spec.Seed + uint64(k)
		results, err := Compare(s, mkPolicies(s.Seed)...)
		if err != nil {
			return nil, err
		}
		out = append(out, results)
	}
	return out, nil
}

// AggregateFigure summarizes multi-seed runs into mean +/- std per policy
// and headline metric.
func AggregateFigure(runs [][]*Result) *Figure { return report.Aggregate(runs) }
