// Package geovmp reproduces "Exploiting CPU-Load and Data Correlations in
// Multi-Objective VM Placement for Geo-Distributed Data Centers" (Pahlevan,
// Garcia del Valle, Atienza — DATE 2016) as a runnable Go library, built
// around a parallel, cancellable, scenario-diverse experiment engine.
//
// The central type is Experiment: it declares a grid of scenarios x
// policies x seeds via functional options and executes it on a worker
// pool, one fresh scenario replica and one fresh policy instance per cell,
// returning a structured ResultSet in deterministic grid order:
//
//	set, err := geovmp.NewExperiment(
//	    geovmp.WithScenarios(geovmp.NewSpec("paper", geovmp.WithScale(0.05))),
//	    geovmp.WithPolicies(geovmp.StandardPolicies(0.9)...),
//	    geovmp.WithSeeds(3),
//	    geovmp.WithParallelism(8),
//	).Run(ctx)
//
// The building blocks underneath:
//
//   - Proposed() builds the paper's two-phase controller: force-directed
//     embedding of VMs under data-correlation attraction and CPU-load-
//     correlation repulsion, energy-capacity-capped k-means clustering per
//     DC, migration revision under the network latency constraint
//     (Algorithm 2), and correlation-aware local server allocation with
//     DVFS. EnerAware, PriAware and NetAware build the three baselines;
//     StandardPolicies wraps all four as per-cell factories.
//   - NewSpec(name, opts...) composes a scenario from ScenarioOptions:
//     fleet scale, custom Site lists beyond Table I, topology overrides,
//     workload class mix, forecaster, QoS, warmup and profile-sampling
//     knobs. Preset returns registered named scenarios ("paper-geo3dc",
//     "geo5dc", "paper-geo3dc-nobattery"). The zero Spec is the paper's
//     Sect. V world: the Table I fleet (Lisbon / Zurich / Helsinki), PV
//     plants with WCMA forecasting, lithium-ion batteries at 50% DoD,
//     two-level tariffs, the full-mesh 100 Gb/s backbone with stochastic
//     BERs, and the synthetic multi-class workload.
//   - NewScenario and Run remain the single-run primitives under the
//     engine.
//   - WithEpochs and WithMigrationBudget turn a scenario into a
//     rolling-horizon run: the placement re-optimizes at every epoch
//     boundary, migrations are revised under a per-epoch budget, each
//     move's transfer energy and downtime are charged into the metrics,
//     and Result carries a per-epoch breakdown. The geo3dc-diurnal and
//     geo5dc-dynamic presets ship workloads whose class mix and load
//     shift across epochs.
//   - Frontier resolves multi-objective trade-off frontiers over the
//     controller's alpha (or any custom knob): configurable Objective
//     extractors, non-dominated sorting with hypervolume/spread
//     indicators and knee-point selection, and an adaptive driver that
//     bisects the largest hypervolume gaps — every refinement wave
//     reusing the scenario's compiled workload. ParetoSearch is the
//     metaheuristic search baseline the frontier pits against the
//     paper's controller.
//
// Everything is deterministic in the seeds: a sweep's ResultSet — and its
// JSON export — is byte-identical at any parallelism.
//
// Compare, CompareSeeds and AggregateFigure are deprecated shims over the
// engine, kept for one release for the pre-engine callers.
package geovmp

import (
	"context"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/report"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/viz"
)

// Policy is a complete placement method (global clustering phase + local
// allocation phase). Implementations: Proposed, EnerAware, PriAware,
// NetAware.
type Policy = policy.Policy

// Scenario is a fully-constructed evaluation world. Its fleet and
// forecaster state are mutable; use one Scenario per Run.
type Scenario = sim.Scenario

// Result carries one run's metrics: operational cost (Fig. 1), facility
// energy (Fig. 2), the response-time distribution (Fig. 3), migration and
// consolidation counters, and energy sourcing totals.
type Result = sim.Result

// Spec parameterizes scenario construction; the zero value plus a Seed
// gives the paper's one-week Table I setup at full scale.
type Spec = config.Spec

// Horizon is an experiment duration in one-hour slots.
type Horizon = timeutil.Horizon

// ForecastKind selects the renewable-energy forecaster.
type ForecastKind = config.ForecastKind

// Forecaster choices for Spec.Forecast.
const (
	ForecastWCMA      = config.ForecastWCMA
	ForecastEWMA      = config.ForecastEWMA
	ForecastLastValue = config.ForecastLastValue
	ForecastOracle    = config.ForecastOracle
)

// Week returns the paper's one-week horizon; Days and Hours build shorter
// ones.
func Week() Horizon { return timeutil.Week() }

// Days returns an n-day horizon.
func Days(n int) Horizon { return timeutil.Days(n) }

// HoursOf returns an n-hour horizon.
func HoursOf(n int) Horizon { return timeutil.Hours(n) }

// Proposed returns the paper's two-phase multi-objective controller. alpha
// in [0,1] weighs performance (data correlation, toward 1) against energy
// (CPU-load correlation, toward 0); out-of-range values select the default
// 0.9. A controller carries per-slot state: use a fresh one per Run.
func Proposed(alpha float64, seed uint64) *core.Controller {
	return core.New(alpha, seed)
}

// EnerAware returns the energy-aware baseline [5] (Kim et al., DATE 2013):
// FFD clustering over DCs plus correlation-aware local allocation.
func EnerAware() Policy { return policy.EnerAware{} }

// PriAware returns the cost-aware baseline [17] (Gu et al., ICNC 2015):
// greedy packing onto the DCs with the lowest current grid price.
func PriAware() Policy { return policy.PriAware{} }

// NetAware returns the network-aware baseline [6] (Biran et al., CCGRID
// 2012, GH heuristic): traffic-affine, load-balanced placement.
func NetAware() Policy { return policy.NetAware{} }

// NewScenario builds the evaluation world described by spec. Each call
// returns independent mutable state, so build one per policy when
// comparing.
func NewScenario(spec Spec) (*Scenario, error) { return config.Build(spec) }

// Run simulates pol over sc and returns its metrics.
func Run(sc *Scenario, pol Policy) (*Result, error) { return sim.Run(sc, pol) }

// Compare evaluates each policy on an identical fresh replica of the
// scenario described by spec — same workload, same network draws, same
// initial battery state — and returns the results in input order. Each
// policy value is run exactly once, so passing the same stateful instance
// twice is not supported.
//
// Deprecated: Compare is a shim over the Experiment engine. Use
// NewExperiment(WithScenarios(spec), WithPolicies(...)).Run(ctx), which
// adds parallelism, cancellation, multi-scenario grids and structured
// results.
func Compare(spec Spec, pols ...Policy) ([]*Result, error) {
	if len(pols) == 0 {
		return []*Result{}, nil
	}
	specs := make([]PolicySpec, len(pols))
	for i, p := range pols {
		specs[i] = PolicySpec{Name: p.Name(), New: func(uint64) Policy { return p }}
	}
	set, err := NewExperiment(WithScenarios(spec), WithPolicies(specs...)).Run(context.Background())
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(pols))
	for pi := range pols {
		out[pi] = set.At(0, pi, 0).Result
	}
	return out, nil
}

// AllPolicies returns the paper's four methods in evaluation order:
// Proposed, Ener-aware, Pri-aware, Net-aware.
func AllPolicies(alpha float64, seed uint64) []Policy {
	return []Policy{Proposed(alpha, seed), EnerAware(), PriAware(), NetAware()}
}

// Summarize renders a one-line-per-policy metrics table for a result set.
func Summarize(results []*Result) string { return report.Summary(results) }

// Figure is one regenerated table or figure of the paper's evaluation
// (Render for text, WriteCSV for data).
type Figure = report.Figure

// Workload is the interface feeding VMs, traces and volumes into the
// simulator. NewScenario installs the synthetic generator; LoadWorkload
// reads a replayed trace directory instead.
type Workload = trace.Source

// ExportWorkload writes the first `slots` hours of any workload to dir in
// the replay CSV format (vms.csv / profiles.csv / volumes.csv) with
// `samples` utilization samples per slot.
func ExportWorkload(w Workload, dir string, slots Horizon, samples int) error {
	return trace.ExportReplay(w, dir, slots.Slots, samples)
}

// LoadWorkload reads a replay directory written by ExportWorkload (or
// produced from real DC traces in the same format). Assign the result to
// Scenario.Workload to drive experiments with it.
func LoadWorkload(dir string) (Workload, error) { return trace.LoadReplay(dir) }

// IngestOptions parameterizes IngestWorkload: profile resolution, the CPU
// column's scale, default image size, and fleet/horizon bounds.
type IngestOptions = trace.IngestOptions

// IngestWorkload streams a raw Azure/Google-style cluster trace — a VM
// lifetime CSV plus a per-interval CPU-utilization CSV — into a replayable
// workload. Both files are read row by row, so memory stays proportional
// to the binned profiles, never the input size. The zero IngestOptions
// selects Azure-style defaults (12 samples/slot, percent CPU readings).
func IngestWorkload(vmCSV, cpuCSV string, opt IngestOptions) (Workload, error) {
	return trace.IngestCluster(vmCSV, cpuCSV, opt)
}

// UsageTemplate is a fitted parameterization of one family of VM behavior,
// derived from a real trace by FitTemplates and consumed by
// WithUsageTemplates to calibrate the synthetic generator.
type UsageTemplate = trace.UsageTemplate

// FitTemplates fits k usage templates to a workload by clustering per-VM
// trace statistics (mean level, diurnal amplitude and phase, within-slot
// variability, day-to-day variance, lifetime). The fit is deterministic.
// samples is the per-slot profile resolution read from w (0 selects 12).
func FitTemplates(w Workload, k, samples int) []UsageTemplate {
	return trace.FitTemplates(w, k, samples)
}

// WindowWorkload returns a read-only view of w restricted to `slots` hours
// starting at hour `startHour`, re-based so the window opens at slot 0 —
// the per-epoch view of a workload. Over a compiled trace the view keeps
// serving from the compiled tables, so slicing an epoch out of a dynamic
// workload (for export with ExportWorkload, or to simulate it in
// isolation) costs nothing.
func WindowWorkload(w Workload, startHour int, slots Horizon) Workload {
	return trace.Window(w, timeutil.Slot(startHour), slots.Slots)
}

// CompileWorkload materializes any workload into immutable flat per-slot
// tables — downsampled profiles, fine-step utilization rows, volume entry
// lists — that the simulator consumes without synthesizing or allocating in
// its hot loops. samples is the per-slot profile length and fineStepSec the
// green-controller period the tables are aligned with; pass 0 for the
// simulator defaults (12 and 5 s).
//
// The experiment engine compiles each scenario x seed's workload
// automatically and shares it across that column's policy runs; call this
// only to pre-compile a workload you inject with WithWorkload under
// non-default WithProfileSamples / WithFineStep settings, or to reuse one
// compiled trace across many experiments.
func CompileWorkload(w Workload, samples int, fineStepSec float64) Workload {
	return trace.Compile(w, trace.CompileOptions{Samples: samples, FineStepSec: fineStepSec})
}

// Figures regenerates the paper's Table I and Figs. 1-6 from a result set
// produced over sc (or an identical scenario replica).
func Figures(sc *Scenario, results []*Result) []*Figure {
	return report.All(sc.Fleet, results)
}

// ProposedController is the concrete type behind Proposed, exposing the
// controller's tunables (Alpha, Stick, NoEmbedding, ...) and its embedding
// layout via Positions.
type ProposedController = core.Controller

// EmbeddingSVG renders a Proposed controller's current 2D point layout as
// an SVG document, coloring each VM by groupOf (for example its final DC
// from Result.FinalPlacement); groups names the legend entries.
func EmbeddingSVG(ctrl *ProposedController, title string, groupOf func(id int) int, groups []string) string {
	return viz.Plane(title, ctrl.Positions(), groupOf, groups)
}

// CompareSeeds repeats Compare over `seeds` consecutive seeds starting at
// spec.Seed, building fresh policies per seed via mkPolicies (stateful
// policies cannot be reused across runs). It returns one result set per
// seed, ready for AggregateFigure.
//
// Deprecated: CompareSeeds is a shim over the Experiment engine. Use
// NewExperiment(WithScenarios(spec), WithPolicies(...), WithSeeds(n)) and
// the returned ResultSet, which add parallelism and cancellation.
func CompareSeeds(spec Spec, seeds int, mkPolicies func(seed uint64) []Policy) ([][]*Result, error) {
	// Parallelism 1 plus per-seed memoization preserves the legacy
	// contract exactly: mkPolicies is called once per seed, from one
	// goroutine at a time, so impure factories behave as they always did.
	cache := map[uint64][]Policy{}
	pols := func(seed uint64) []Policy {
		ps, ok := cache[seed]
		if !ok {
			ps = mkPolicies(seed)
			cache[seed] = ps
		}
		return ps
	}
	if seeds <= 0 {
		return nil, nil
	}
	protos := pols(spec.Seed)
	if len(protos) == 0 {
		out := make([][]*Result, seeds)
		for k := range out {
			out[k] = []*Result{}
		}
		return out, nil
	}
	specs := make([]PolicySpec, len(protos))
	for i := range protos {
		specs[i] = PolicySpec{
			Name: protos[i].Name(),
			New:  func(seed uint64) Policy { return pols(seed)[i] },
		}
	}
	set, err := NewExperiment(
		WithScenarios(spec), WithPolicies(specs...), WithSeeds(seeds),
		WithParallelism(1),
	).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return set.SeedRuns(set.Scenarios[0]), nil
}

// AggregateFigure summarizes multi-seed runs into mean +/- std per policy
// and headline metric.
//
// Deprecated: use ResultSet.Aggregate from an Experiment run instead.
func AggregateFigure(runs [][]*Result) *Figure { return report.Aggregate(runs) }
