package geovmp

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"geovmp/internal/experiment"
	"geovmp/internal/pareto"
)

// frontierSpec reduces a preset to frontier-test size: tiny fleet, eight
// hours, coarse green-controller steps.
func frontierSpec(preset string, seed uint64) Spec {
	spec := MustPreset(preset)
	spec.Scale = 0.01
	spec.Seed = seed
	spec.Horizon = HoursOf(8)
	spec.FineStepSec = 300
	return spec
}

// paretoSearchBaseline wraps the metaheuristic as a frontier baseline.
func paretoSearchBaseline() PolicySpec {
	return NewPolicySpec("Pareto-search", func(seed uint64) Policy { return ParetoSearch(seed) })
}

// frontierPoints converts a resolved frontier into pareto points for
// indicator computations outside the API.
func frontierPoints(sf *ScenarioFrontier) []pareto.Point {
	pts := make([]pareto.Point, len(sf.Points))
	for i, p := range sf.Points {
		pts[i] = pareto.Point{Name: p.Name, V: p.V}
	}
	return pts
}

// sharedRefHypervolumes measures two competing frontiers under one
// reference point derived from their union — the only apples-to-apples
// hypervolume comparison. The acceptance test and BenchmarkFrontier share
// this methodology (5% margin) through this helper.
func sharedRefHypervolumes(a, b *ScenarioFrontier) (hvA, hvB float64) {
	union := append(frontierPoints(a), frontierPoints(b)...)
	ref := pareto.Reference(union, 0.05)
	return pareto.Hypervolume(frontierPoints(a), ref), pareto.Hypervolume(frontierPoints(b), ref)
}

// TestFrontierCompileSharing asserts the tentpole's engine contract: an
// adaptive frontier run compiles each scenario x seed's workload and
// environment exactly once, however many refinement waves the driver
// schedules over it.
func TestFrontierCompileSharing(t *testing.T) {
	before := experiment.CompileCount()
	fs, err := NewFrontier(
		FrontierScenarios(frontierSpec("paper-geo3dc", 7)),
		FrontierObjectives(CostObjective(), MeanRespObjective()),
		FrontierPointBudget(9),
		FrontierCoarseGrid(4),
		FrontierWaveSize(2),
		FrontierSeeds(2),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sf := fs.Scenarios[0]
	if sf.Waves < 3 {
		t.Fatalf("driver took %d waves; the sharing claim needs several", sf.Waves)
	}
	if sf.Evals != 9 {
		t.Fatalf("evals = %d, want the full budget of 9", sf.Evals)
	}
	got := experiment.CompileCount() - before
	if got != 2 {
		t.Fatalf("compiled %d columns across %d waves, want exactly one per scenario x seed = 2", got, sf.Waves)
	}
}

// TestFrontierDeterministic pins the frontier's parallelism contract: the
// whole adaptive run — wave scheduling included — yields byte-identical
// FrontierSet JSON at worker budget 1, 2 and GOMAXPROCS+6, with the
// metaheuristic baseline on the grid.
func TestFrontierDeterministic(t *testing.T) {
	run := func(parallelism int) []byte {
		fs, err := NewFrontier(
			FrontierScenarios(frontierSpec("geo5dc-dynamic", 11)),
			FrontierObjectives(CostObjective(), MeanRespObjective()),
			FrontierPointBudget(7),
			FrontierCoarseGrid(3),
			FrontierSeeds(2),
			FrontierBaselines(paretoSearchBaseline()),
			FrontierParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		js, err := fs.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	base := run(1)
	for _, p := range []int{2, runtime.GOMAXPROCS(0) + 6} {
		if got := run(p); !bytes.Equal(base, got) {
			t.Fatalf("FrontierParallelism(%d) diverged from the serial frontier", p)
		}
	}
}

// TestAdaptiveBeatsFixedGrid is the subsystem's acceptance criterion: at
// an equal point budget, the adaptive driver resolves a better frontier —
// strictly higher hypervolume under a shared reference point — than the
// uniform alpha grid, on both the paper's static world and the dynamic
// five-site preset. Two seeds smooth the response surface so the
// comparison measures systematic placement rather than single-seed luck,
// and baselines stay off the grids: identical fixed points on both sides
// would mask the drivers' difference. Wave size 2 keeps the driver
// re-targeting instead of degenerating into a full bisection round (which
// would reproduce the uniform grid exactly).
func TestAdaptiveBeatsFixedGrid(t *testing.T) {
	const budget = 13
	for _, preset := range []string{"paper-geo3dc", "geo5dc-dynamic"} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			run := func(opts ...FrontierOption) *ScenarioFrontier {
				fs, err := NewFrontier(append([]FrontierOption{
					FrontierScenarios(frontierSpec(preset, 11)),
					FrontierObjectives(CostObjective(), MeanRespObjective()),
					FrontierPointBudget(budget),
					FrontierSeeds(2),
				}, opts...)...).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				return fs.Scenarios[0]
			}
			adaptive := run(FrontierCoarseGrid(5), FrontierWaveSize(2))
			fixed := run(FrontierFixedGrid())
			if adaptive.Evals != budget || fixed.Evals != budget {
				t.Fatalf("unequal budgets: adaptive %d, fixed %d", adaptive.Evals, fixed.Evals)
			}

			hvAdaptive, hvFixed := sharedRefHypervolumes(adaptive, fixed)
			if !(hvAdaptive > hvFixed) {
				t.Fatalf("adaptive hypervolume %.9g does not beat the fixed %d-point grid's %.9g",
					hvAdaptive, budget, hvFixed)
			}
			t.Logf("%s: adaptive hv %.6g > fixed hv %.6g (+%.2f%%), %d waves",
				preset, hvAdaptive, hvFixed, 100*(hvAdaptive/hvFixed-1), adaptive.Waves)
		})
	}
}

// goldenFrontierPath pins the frontier export for two presets x two seeds.
// Regenerate deliberately — never by editing — with:
//
//	GEOVMP_UPDATE_GOLDEN=1 go test -run TestGoldenFrontierSet .
//
// and review the diff like any other behaviour change.
const goldenFrontierPath = "testdata/golden_frontier.json"

// TestGoldenFrontierSet is the frontier twin of TestGoldenResultSet: the
// adaptive frontier over the pinned grid — static and dynamic preset, two
// seeds each, metaheuristic baseline included — must export byte-identical
// JSON. The frontier is deterministic at any parallelism, so any diff is a
// real behaviour change: intentional ones update the golden in the same
// commit, unintentional ones are caught regressions.
func TestGoldenFrontierSet(t *testing.T) {
	fs, err := NewFrontier(
		FrontierScenarios(frontierSpec("paper-geo3dc", 7), frontierSpec("geo5dc-dynamic", 11)),
		FrontierObjectives(CostObjective(), MeanRespObjective()),
		FrontierPointBudget(7),
		FrontierCoarseGrid(3),
		FrontierSeeds(2),
		FrontierBaselines(paretoSearchBaseline()),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	js, err := fs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got := append(js, '\n')

	if os.Getenv("GEOVMP_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFrontierPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFrontierPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", goldenFrontierPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenFrontierPath)
	if err != nil {
		t.Fatalf("no golden file (%v); generate one with GEOVMP_UPDATE_GOLDEN=1 go test -run TestGoldenFrontierSet .", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("FrontierSet JSON drifted from %s at %s.\nIf the change is intentional, regenerate with GEOVMP_UPDATE_GOLDEN=1 and commit the diff.",
			goldenFrontierPath, firstDiff(got, want))
	}
}

// TestFrontierObjectives covers the extractor surface on one real run:
// every built-in objective yields a finite value, and the p95 sits between
// the mean and the max.
func TestFrontierObjectives(t *testing.T) {
	set, err := NewExperiment(
		WithScenarios(frontierSpec("paper-geo3dc", 7)),
		WithPolicies(StandardPolicies(0.9)[:1]...),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := set.At(0, 0, 0).Result
	for _, o := range []Objective{
		CostObjective(), EnergyObjective(), MeanRespObjective(),
		P95RespObjective(), WorstRespObjective(), MigDowntimeObjective(),
	} {
		v := o.Of(r)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("objective %s = %v", o.Name, v)
		}
	}
	// p95 is bounded by the sample extremes (mean <= p95 is NOT an
	// invariant of nearest-rank quantiles on skewed samples).
	p95, worst := P95RespObjective().Of(r), WorstRespObjective().Of(r)
	if !(p95 >= 0 && p95 <= worst) {
		t.Fatalf("quantile out of bounds: p95 %v, worst %v", p95, worst)
	}
}

// TestFrontierErrors covers the construction failure paths.
func TestFrontierErrors(t *testing.T) {
	if _, err := NewFrontier(FrontierPresets("no-such-preset")).Run(context.Background()); err == nil {
		t.Fatal("unknown preset must fail")
	}
	if _, err := NewFrontier(FrontierSeeds(0)).Run(context.Background()); err == nil {
		t.Fatal("zero seeds must fail")
	}
	if _, err := NewFrontier(FrontierPointBudget(1)).Run(context.Background()); err == nil {
		t.Fatal("single-point budget must fail")
	}
	if _, err := NewFrontier(
		FrontierScenarios(frontierSpec("paper-geo3dc", 7)),
		FrontierObjectives(CostObjective()),
	).Run(context.Background()); err == nil {
		t.Fatal("one objective must fail")
	}
	if _, err := NewFrontier(
		FrontierScenarios(frontierSpec("paper-geo3dc", 7)),
		FrontierObjectives(CostObjective(), CostObjective()),
	).Run(context.Background()); err == nil {
		t.Fatal("duplicate objective names must fail")
	}
	if _, err := NewFrontier(FrontierKnob("k", 0, 1, nil)).Run(context.Background()); err == nil {
		t.Fatal("nil knob constructor must fail")
	}
	if _, err := NewFrontier(
		FrontierKnob("k", 0.5, 0.5, func(t float64, seed uint64) Policy { return Proposed(t, seed) }),
		FrontierFixedGrid(),
	).Run(context.Background()); err == nil {
		t.Fatal("empty knob range must fail on the fixed-grid path too")
	}
	spec := frontierSpec("paper-geo3dc", 7)
	if _, err := NewFrontier(FrontierScenarios(spec, spec)).Run(context.Background()); err == nil {
		t.Fatal("duplicate scenario names must fail")
	}
}

// TestFrontierInjectedWorkloadCompilesOnce pins the seed-collapse: an
// injected workload is seed-independent, so a multi-seed frontier over it
// compiles one column, not one per seed — matching the engine's lazy path.
func TestFrontierInjectedWorkloadCompilesOnce(t *testing.T) {
	spec := frontierSpec("paper-geo3dc", 7)
	w, err := NewScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = w.Workload
	before := experiment.CompileCount()
	_, err = NewFrontier(
		FrontierScenarios(spec),
		FrontierObjectives(CostObjective(), MeanRespObjective()),
		FrontierPointBudget(3),
		FrontierCoarseGrid(3),
		FrontierSeeds(3),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := experiment.CompileCount() - before; got != 1 {
		t.Fatalf("injected workload compiled %d columns across 3 seeds, want 1", got)
	}
}

// TestFrontierRendering smoke-checks the report table and SVG over a real
// resolved frontier.
func TestFrontierRendering(t *testing.T) {
	fs, err := NewFrontier(
		FrontierScenarios(frontierSpec("paper-geo3dc", 7)),
		FrontierObjectives(CostObjective(), MeanRespObjective()),
		FrontierPointBudget(5),
		FrontierCoarseGrid(3),
		FrontierBaselines(paretoSearchBaseline()),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sf := fs.Scenarios[0]
	fig := FrontierFigure(sf)
	if len(fig.Rows) != sf.Evals {
		t.Fatalf("figure has %d rows, want %d", len(fig.Rows), sf.Evals)
	}
	if fig.Render() == "" {
		t.Fatal("empty figure rendering")
	}
	svg := FrontierSVG(sf)
	if !bytes.Contains([]byte(svg), []byte("</svg>")) {
		t.Fatal("SVG rendering not closed")
	}
	if !bytes.Contains([]byte(svg), []byte("knee")) {
		t.Fatal("SVG misses the knee callout")
	}
}

// TestKnobLabelPrecisionScalesWithRange pins label uniqueness for narrow
// custom knob ranges: the decimals grow with the range's leading zeros so
// two distinct bisection knobs can never share a name.
func TestKnobLabelPrecisionScalesWithRange(t *testing.T) {
	cases := []struct {
		lo, hi float64
		a, b   float64
	}{
		{0, 1, 0.0625, 0.125},
		{0, 0.001, 0.0000625, 0.000125},
		{0, 0.5, 0.000125, 0.00025},
	}
	for _, c := range cases {
		d := pareto.KnobDecimals(c.lo, c.hi)
		la, lb := knobLabel("k", d, c.a), knobLabel("k", d, c.b)
		if la == lb {
			t.Fatalf("range [%v, %v]: knobs %v and %v share label %q", c.lo, c.hi, c.a, c.b, la)
		}
	}
}
