// Serving mode: the online placement daemon behind cmd/geovmpd.
//
// Everything else in this package answers questions about a *finished*
// horizon — build a scenario, run a policy over every slot, read the
// results. The Daemon turns the same fit/score/reserve pipeline into a
// long-running service: VMs arrive and depart one at a time, each Place
// call answers "(dc, server)" within a latency SLO, and the paper's
// correlation state (peak profiles, the inter-VM volume matrix, the
// force-directed plane) is amended incrementally per event instead of
// being recompiled from the world. A background reconciler periodically
// re-runs the full global embedding and swaps it in at a fixed point in
// the admission sequence, so the decision stream stays a pure function
// of the event log at any request parallelism.
//
// Minimal lifecycle:
//
//	sc, _ := geovmp.NewScenario(spec)
//	d, _ := geovmp.NewDaemon(sc, geovmp.DaemonOptions{})
//	dec, _ := d.Place(geovmp.VM{ID: 1, Profile: profile})
//	...
//	d.Drain()
//
// d.Handler() exposes the same operations over HTTP/JSON (POST
// /v1/place, /v1/depart, /v1/observe, /v1/drain; GET /metrics,
// /healthz) with bounded-queue admission control: excess load is
// refused with 429 + Retry-After rather than queued without bound.
package geovmp

import (
	"geovmp/internal/fault"
	"geovmp/internal/metrics"
	"geovmp/internal/serve"
)

// Daemon is the online placement service: streaming arrivals, incremental
// correlation state, and a fit/score/reserve decision path. See
// internal/serve for the mechanics.
type Daemon = serve.Daemon

// DaemonOptions configures a Daemon. Fleet and Topo are required unless
// NewDaemon fills them from a scenario; zero values select the documented
// defaults.
type DaemonOptions = serve.Options

// VM is one streaming arrival: identity, utilization profile, declared
// flows to already-placed peers, and migration image size.
type VM = serve.VM

// Flow declares steady directed traffic between an arriving VM and a peer.
type Flow = serve.Flow

// Observation is one slot's telemetry refresh: observed per-VM profiles
// and the realized inter-VM volume matrix.
type Observation = serve.Observation

// VMProfile is one VM's observed utilization profile inside an Observation.
type VMProfile = serve.VMProfile

// VolumeObs is one observed directed inter-VM volume inside an Observation.
type VolumeObs = serve.VolumeObs

// Decision is the daemon's answer to one arrival.
type Decision = serve.Decision

// Event is one replayable daemon operation; EventsFromWorkload derives a
// log from any Workload, and Daemon.Replay feeds one back at a chosen
// parallelism.
type Event = serve.Event

// EventKind discriminates replay events.
type EventKind = serve.EventKind

// Replay event kinds.
const (
	EvPlace   = serve.EvPlace
	EvDepart  = serve.EvDepart
	EvObserve = serve.EvObserve
	EvFault   = serve.EvFault
)

// FaultEvent is one DC availability flip in the daemon's sequenced event
// log: Down takes the DC out of admission and re-seats its residents at the
// event's turn; Up restores it.
type FaultEvent = serve.FaultEvent

// MetricsBoard is the daemon's snapshotable counter/gauge/histogram set,
// exposed at /metrics.
type MetricsBoard = metrics.Board

// Daemon admission errors, surfaced as HTTP 503 / 429 / 409 respectively.
var (
	ErrDraining      = serve.ErrDraining
	ErrQueueFull     = serve.ErrQueueFull
	ErrAlreadyPlaced = serve.ErrAlreadyPlaced
)

// NewDaemon builds a serving daemon for a compiled scenario's fleet and
// topology. Fields already set in opt win; the scenario only fills the
// blanks (fleet, topology, profile length, seed), so a caller can serve
// a preset with `NewDaemon(sc, DaemonOptions{})` or override any knob.
func NewDaemon(sc *Scenario, opt DaemonOptions) (*Daemon, error) {
	if opt.Fleet == nil {
		opt.Fleet = sc.Fleet
	}
	if opt.Topo == nil {
		opt.Topo = sc.Topo
	}
	if opt.Samples == 0 {
		opt.Samples = sc.ProfileSamples
	}
	if opt.Seed == 0 {
		opt.Seed = sc.Seed
	}
	return serve.New(opt)
}

// EventsFromWorkload converts a workload's first `horizon` of activity
// into a replayable event log: per slot one Observation, then the slot's
// departures, then its arrivals — the same order the batch simulator
// feeds its controllers.
func EventsFromWorkload(w Workload, horizon Horizon, samples int) []Event {
	return serve.EventsFromTrace(w, horizon.Slots, samples)
}

// ServePolicy adapts a Daemon into a batch-simulator Policy, so the same
// serving decision path can be scored by sim.Run against the offline
// controllers (the drift check in examples/serve).
func ServePolicy(d *Daemon) Policy { return serve.NewSimPolicy(d) }

// EventsWithFaults threads a scenario's compiled fault schedule into an
// event log: every whole-DC outage transition lands right after its slot's
// observation, so replaying the merged log exercises the daemon's forced
// re-placement exactly when the batch simulator would evacuate.
func EventsWithFaults(events []Event, sc *Scenario, horizon Horizon) []Event {
	if !sc.Faults.Enabled() {
		return events
	}
	sched := fault.Compile(sc.Faults, len(sc.Fleet), int(horizon.Slots), sc.Seed)
	return serve.InsertFaults(events, sched.DCTransitions())
}
