package geovmp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"geovmp/internal/config"
	"geovmp/internal/experiment"
	"geovmp/internal/par"
	"geovmp/internal/pareto"
	"geovmp/internal/policy"
	"geovmp/internal/report"
	"geovmp/internal/viz"
)

// Objective is one axis of a trade-off frontier: a stable name (used in
// FrontierSet JSON and reports) and an extractor mapping a run's Result to
// a scalar. All objectives are minimized; negate inside Of for quantities
// you want maximized.
//
// OfRow, when non-nil, extracts the same scalar from a flattened cell row
// (CellRow) — the form results arrive in from distributed sweeps and resume
// checkpoints. Every standard objective except P95RespObjective carries it
// (the p95 needs the raw response samples, which do not travel); a frontier
// scheduled through FrontierRunner requires it on every objective.
type Objective struct {
	Name  string
	Of    func(*Result) float64
	OfRow func(*CellRow) float64
}

// CellRow is a cell's flattened export row — the stable JSON schema rows
// distributed workers stream back and checkpoints store.
type CellRow = experiment.CellData

// CostObjective measures operational cost in EUR (Fig. 1).
func CostObjective() Objective {
	return Objective{
		Name:  "cost_eur",
		Of:    func(r *Result) float64 { return float64(r.OpCost) },
		OfRow: func(c *CellRow) float64 { return c.CostEUR },
	}
}

// EnergyObjective measures total facility energy in GJ (Fig. 2).
func EnergyObjective() Objective {
	return Objective{
		Name:  "energy_gj",
		Of:    func(r *Result) float64 { return r.TotalEnergy.GJ() },
		OfRow: func(c *CellRow) float64 { return c.EnergyGJ },
	}
}

// MeanRespObjective measures the mean response time in seconds (Fig. 3).
func MeanRespObjective() Objective {
	return Objective{
		Name:  "mean_resp_s",
		Of:    func(r *Result) float64 { return r.RespSummary.Mean() },
		OfRow: func(c *CellRow) float64 { return c.MeanRespS },
	}
}

// WorstRespObjective measures the worst-case response time in seconds —
// the paper's SLA metric.
func WorstRespObjective() Objective {
	return Objective{
		Name:  "worst_resp_s",
		Of:    func(r *Result) float64 { return r.RespSummary.Max() },
		OfRow: func(c *CellRow) float64 { return c.WorstRespS },
	}
}

// P95RespObjective measures the 95th-percentile response time in seconds
// (nearest-rank over the run's per-slot, per-DC samples) — stabler than the
// worst case, stricter than the mean.
func P95RespObjective() Objective {
	return Objective{Name: "p95_resp_s", Of: func(r *Result) float64 {
		return respQuantile(r, 0.95)
	}}
}

// MigDowntimeObjective measures the charged migration downtime in seconds
// (zero on the static path; see WithMigrationBudget).
func MigDowntimeObjective() Objective {
	return Objective{
		Name:  "mig_downtime_s",
		Of:    func(r *Result) float64 { return r.MigDowntimeSec },
		OfRow: func(c *CellRow) float64 { return c.MigDowntimeS },
	}
}

// DataLossObjective measures the storage model's mean per-slot data-loss
// probability under the run's fault schedule (zero on fault-free runs;
// see WithFaults / WithStorage).
func DataLossObjective() Objective {
	return Objective{
		Name:  "data_loss_prob",
		Of:    func(r *Result) float64 { return r.DataLossProb },
		OfRow: func(c *CellRow) float64 { return c.DataLossProb },
	}
}

// RepairBandwidthObjective measures the shard-rebuild traffic pushed
// through the backbone in GB — the durability tax erasure codes pay on
// every incident.
func RepairBandwidthObjective() Objective {
	return Objective{
		Name:  "repair_gb",
		Of:    func(r *Result) float64 { return r.RepairBytes.GB() },
		OfRow: func(c *CellRow) float64 { return c.RepairGB },
	}
}

// respQuantile is the nearest-rank q-quantile of the response samples.
func respQuantile(r *Result, q float64) float64 {
	if len(r.RespSamples) == 0 {
		return 0
	}
	s := append([]float64(nil), r.RespSamples...)
	sort.Float64s(s)
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// FrontierSet is a frontier run's structured outcome: one resolved
// ScenarioFrontier per scenario, with deterministic, stable-ordered JSON
// export (JSON, WriteJSON) suitable for golden files.
type FrontierSet = pareto.FrontierSet

// ScenarioFrontier is one scenario's resolved trade-off frontier: the
// evaluated points with non-domination ranks, the Pareto-optimal subset,
// the knee selection and the hypervolume/spread indicators.
type ScenarioFrontier = pareto.ScenarioFrontier

// FrontierPoint is one evaluated configuration of a scenario frontier.
type FrontierPoint = pareto.FrontierPoint

// Frontier declares a multi-objective trade-off exploration: scenarios x a
// scalar policy knob (by default the proposed controller's Eq. 5 alpha) x
// seeds, evaluated against a set of objectives. Run drives the knob with
// the adaptive frontier driver: a coarse grid first, then refinement waves
// bisecting the knob intervals spanning the largest hypervolume gaps, until
// the point budget is spent. Every wave of a scenario runs as one
// experiment-engine grid over the SAME pre-compiled workload and
// environment (one compile per scenario x seed for the whole frontier, not
// per wave), so refinement costs simulation time only.
//
//	fs, err := geovmp.NewFrontier(
//	    geovmp.FrontierScenarios(spec),
//	    geovmp.FrontierObjectives(geovmp.CostObjective(), geovmp.MeanRespObjective()),
//	    geovmp.FrontierPointBudget(12),
//	    geovmp.FrontierBaselines(
//	        geovmp.NewPolicySpec("Pareto-search", func(seed uint64) geovmp.Policy {
//	            return geovmp.ParetoSearch(seed)
//	        }),
//	    ),
//	).Run(ctx)
//	knee := fs.Scenarios[0].KneePoint()
type Frontier struct {
	scenarios   []Spec
	objectives  []Objective
	seeds       int
	parallelism int
	budget      int
	coarse      int
	waveSize    int
	fixed       bool
	knobName    string
	knobLo      float64
	knobHi      float64
	knobMk      func(t float64, seed uint64) Policy
	knobRef     func(t float64) PolicyRef
	baselines   []PolicySpec
	runner      *Coordinator
	errs        []error
}

// FrontierOption configures a Frontier under construction.
type FrontierOption func(*Frontier)

// NewFrontier builds a frontier exploration from options. Without options
// it sweeps the proposed controller's alpha over the paper's Table I world
// against the cost and mean-response objectives with a 12-point budget.
func NewFrontier(opts ...FrontierOption) *Frontier {
	f := &Frontier{
		seeds:    1,
		budget:   12,
		coarse:   5,
		waveSize: 4,
		knobName: "alpha",
		knobLo:   0,
		knobHi:   1,
		knobMk:   func(t float64, seed uint64) Policy { return Proposed(t, seed) },
		knobRef:  func(t float64) PolicyRef { return PolicyRef{Kind: "proposed", Alpha: t} },
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// FrontierScenarios sets the scenario axis; each scenario resolves its own
// frontier.
func FrontierScenarios(specs ...Spec) FrontierOption {
	return func(f *Frontier) { f.scenarios = append(f.scenarios, specs...) }
}

// FrontierPresets appends registered named scenarios to the scenario axis.
func FrontierPresets(names ...string) FrontierOption {
	return func(f *Frontier) {
		for _, n := range names {
			spec, err := config.Preset(n)
			if err != nil {
				f.errs = append(f.errs, err)
				continue
			}
			f.scenarios = append(f.scenarios, spec)
		}
	}
}

// FrontierObjectives sets the objective axes (at least two for a
// meaningful frontier; the default is cost vs mean response).
func FrontierObjectives(objs ...Objective) FrontierOption {
	return func(f *Frontier) { f.objectives = append(f.objectives, objs...) }
}

// FrontierSeeds evaluates every point over n consecutive seeds and builds
// the frontier from the per-point mean objective vectors.
func FrontierSeeds(n int) FrontierOption {
	return func(f *Frontier) {
		if n < 1 {
			f.errs = append(f.errs, fmt.Errorf("geovmp: FrontierSeeds(%d): need at least one seed", n))
			return
		}
		f.seeds = n
	}
}

// FrontierParallelism sets the engine worker budget each evaluation wave
// runs under (see WithParallelism; 0 selects GOMAXPROCS). Any value yields
// byte-identical frontiers.
func FrontierParallelism(n int) FrontierOption {
	return func(f *Frontier) { f.parallelism = n }
}

// FrontierPointBudget caps the number of knob evaluations per scenario,
// the coarse grid included (default 12). Baselines don't count against it.
func FrontierPointBudget(n int) FrontierOption {
	return func(f *Frontier) {
		if n < 2 {
			f.errs = append(f.errs, fmt.Errorf("geovmp: FrontierPointBudget(%d): need at least two points", n))
			return
		}
		f.budget = n
	}
}

// FrontierCoarseGrid sets the size of the adaptive driver's initial
// uniform grid (default 5, minimum 2 — refinement needs an interval to
// bisect).
func FrontierCoarseGrid(n int) FrontierOption {
	return func(f *Frontier) {
		if n < 2 {
			f.errs = append(f.errs, fmt.Errorf("geovmp: FrontierCoarseGrid(%d): need at least two points", n))
			return
		}
		f.coarse = n
	}
}

// FrontierWaveSize caps how many refinement points each adaptive wave
// schedules (default 4); larger waves hand the engine more concurrent
// cells, smaller waves re-target more often.
func FrontierWaveSize(n int) FrontierOption {
	return func(f *Frontier) {
		if n < 1 {
			f.errs = append(f.errs, fmt.Errorf("geovmp: FrontierWaveSize(%d): need at least one point per wave", n))
			return
		}
		f.waveSize = n
	}
}

// FrontierFixedGrid disables adaptive refinement: the whole point budget
// is spent on one uniform knob grid in a single wave. This is the baseline
// the adaptive driver is benchmarked against (BenchmarkFrontier), not the
// recommended mode.
func FrontierFixedGrid() FrontierOption {
	return func(f *Frontier) { f.fixed = true }
}

// FrontierKnob replaces the default alpha knob: points are labeled
// "name=<value>", t sweeps [lo, hi], and mk constructs the policy for one
// knob value and cell seed.
func FrontierKnob(name string, lo, hi float64, mk func(t float64, seed uint64) Policy) FrontierOption {
	return func(f *Frontier) {
		if mk == nil {
			f.errs = append(f.errs, errors.New("geovmp: FrontierKnob: nil constructor"))
			return
		}
		f.knobName, f.knobLo, f.knobHi, f.knobMk = name, lo, hi, mk
		// A bare closure has no wire form; FrontierKnobRef can restore one.
		f.knobRef = nil
	}
}

// FrontierKnobRef gives the current knob a wire form for distributed runs:
// ref maps a knob value to the PolicyRef a worker resolves into the same
// policy knobMk would construct. The default alpha knob already has one.
func FrontierKnobRef(ref func(t float64) PolicyRef) FrontierOption {
	return func(f *Frontier) { f.knobRef = ref }
}

// FrontierRunner schedules every evaluation wave through a dist
// coordinator instead of the in-process engine: wave cells are leased to
// connected workers, which compile each scenario x seed column once on
// their side (the distributed analogue of the frontier's local column
// sharing). Requirements: every objective must carry OfRow (results arrive
// as flattened rows), the knob must have a wire form (FrontierKnobRef or
// the default alpha knob), and baselines must carry Refs. The resolved
// frontier is byte-identical to the in-process run's.
func FrontierRunner(c *Coordinator) FrontierOption {
	return func(f *Frontier) { f.runner = c }
}

// FrontierBaselines adds fixed policies evaluated alongside the knob sweep
// (once per scenario, riding the first wave's grid). They join the
// frontier as knob-less points — framing it, competing for the front, and
// eligible for the knee.
func FrontierBaselines(specs ...PolicySpec) FrontierOption {
	return func(f *Frontier) { f.baselines = append(f.baselines, specs...) }
}

// Run explores the frontier of every scenario. Cancelling ctx abandons the
// current wave and returns the error; completed scenarios are lost (run
// scenarios separately if partial results matter).
func (f *Frontier) Run(ctx context.Context) (*FrontierSet, error) {
	if len(f.errs) > 0 {
		return nil, errors.Join(f.errs...)
	}
	if f.knobHi <= f.knobLo {
		return nil, fmt.Errorf("geovmp: frontier knob range [%v, %v] is empty", f.knobLo, f.knobHi)
	}
	scenarios := f.scenarios
	if len(scenarios) == 0 {
		scenarios = []Spec{{}}
	}
	// Mirror the engine's duplicate-scenario guard: each scenario runs in
	// its own grid here, so the engine's own check never fires, but
	// FrontierSet.Scenario lookups and the per-scenario CSV/SVG outputs
	// would silently collide all the same.
	seenScenario := make(map[string]bool, len(scenarios))
	for _, spec := range scenarios {
		name := spec.Name
		if name == "" {
			name = config.DefaultScenarioName
		}
		if seenScenario[name] {
			return nil, fmt.Errorf("geovmp: duplicate frontier scenario name %q", name)
		}
		seenScenario[name] = true
	}
	objectives := f.objectives
	if len(objectives) == 0 {
		objectives = []Objective{CostObjective(), MeanRespObjective()}
	}
	if len(objectives) < 2 {
		return nil, errors.New("geovmp: a frontier needs at least two objectives")
	}
	names := make([]string, len(objectives))
	seen := map[string]bool{}
	for i, o := range objectives {
		if o.Of == nil {
			return nil, fmt.Errorf("geovmp: objective %q has no extractor", o.Name)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("geovmp: duplicate objective %q", o.Name)
		}
		if f.runner != nil && o.OfRow == nil {
			return nil, fmt.Errorf("geovmp: objective %q has no row extractor (OfRow) — it cannot ride a distributed frontier", o.Name)
		}
		seen[o.Name] = true
		names[i] = o.Name
	}
	if f.runner != nil && f.knobRef == nil {
		return nil, fmt.Errorf("geovmp: frontier knob %q has no wire form — set FrontierKnobRef to run distributed", f.knobName)
	}

	fs := &FrontierSet{Objectives: names, Seeds: f.seeds}
	for _, spec := range scenarios {
		sf, err := f.runScenario(ctx, spec, objectives, names)
		if err != nil {
			return nil, err
		}
		fs.Scenarios = append(fs.Scenarios, sf)
	}
	return fs, nil
}

// runScenario resolves one scenario's frontier: compile each seed's column
// once, then schedule every evaluation wave through the experiment engine
// over those shared columns.
func (f *Frontier) runScenario(ctx context.Context, spec Spec, objectives []Objective, names []string) (*ScenarioFrontier, error) {
	scenarioName := spec.Name
	if scenarioName == "" {
		scenarioName = config.DefaultScenarioName
	}
	offsets := make([]uint64, f.seeds)
	for i := range offsets {
		offsets[i] = uint64(i)
	}

	// One compile per scenario x seed for the whole frontier run. The
	// compile itself is sharded over the same worker budget the waves get.
	// An injected workload (and the environment, always) is seed-
	// independent, so all seed columns collapse onto one compile — the
	// same collapse the engine's lazy path applies. A distributed frontier
	// compiles nothing here: each worker compiles and caches its own
	// columns, reused across every wave's cells of the scenario x seed.
	var colFor func(scenario string, seed uint64) *experiment.Column
	if f.runner == nil {
		workers := f.parallelism
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		columns := make(map[uint64]*experiment.Column, f.seeds)
		compileBudget := par.NewBudget(workers - 1)
		for _, off := range offsets {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if spec.Workload != nil && off > 0 {
				columns[spec.Seed+off] = columns[spec.Seed]
				continue
			}
			col, err := experiment.CompileColumn(spec, spec.Seed+off, compileBudget)
			if err != nil {
				return nil, err
			}
			columns[spec.Seed+off] = col
		}
		colFor = func(scenario string, seed uint64) *experiment.Column {
			if scenario != scenarioName {
				return nil
			}
			return columns[seed]
		}
	}

	var points []FrontierPoint
	decimals := pareto.KnobDecimals(f.knobLo, f.knobHi)
	firstWave := true
	evalGrid := func(pols []PolicySpec) (*ResultSet, error) {
		g := experiment.Grid{
			Scenarios:   []Spec{spec},
			Policies:    pols,
			SeedOffsets: offsets,
			Parallelism: f.parallelism,
			Columns:     colFor,
		}
		if f.runner != nil {
			return f.runner.RunGrid(ctx, g)
		}
		return experiment.Run(ctx, g)
	}
	vectorsOf := func(set *ResultSet, pi int) ([]float64, error) {
		v := make([]float64, len(objectives))
		for ki := range set.SeedOffsets {
			cell := set.At(0, pi, ki)
			switch {
			case cell.Result != nil:
				for oi, o := range objectives {
					v[oi] += o.Of(cell.Result)
				}
			case cell.Data != nil:
				// Distributed waves return flattened rows; the standard
				// objectives read the same fields either way.
				for oi, o := range objectives {
					v[oi] += o.OfRow(cell.Data)
				}
			default:
				return nil, fmt.Errorf("geovmp: frontier cell %s/%s/seed+%d failed: %w",
					cell.Scenario, cell.Policy, ki, cell.Err)
			}
		}
		for oi := range v {
			v[oi] /= float64(len(set.SeedOffsets))
		}
		return v, nil
	}

	eval := func(knobs []float64) ([][]float64, error) {
		pols := make([]PolicySpec, 0, len(knobs)+len(f.baselines))
		for _, t := range knobs {
			t := t
			ps := PolicySpec{
				Name: knobLabel(f.knobName, decimals, t),
				New:  func(seed uint64) Policy { return f.knobMk(t, seed) },
			}
			if f.knobRef != nil {
				ref := f.knobRef(t)
				ps.Ref = &ref
			}
			pols = append(pols, ps)
		}
		nKnobs := len(pols)
		if firstWave {
			// Baselines ride the first wave's grid: same columns, no extra
			// compile, evaluated exactly once per scenario.
			pols = append(pols, f.baselines...)
		}
		set, err := evalGrid(pols)
		if err != nil {
			return nil, err
		}
		out := make([][]float64, len(knobs))
		for i := range knobs {
			v, err := vectorsOf(set, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			points = append(points, FrontierPoint{
				Name: set.Policies[i], Knob: knobs[i], HasKnob: true, V: v,
			})
		}
		if firstWave {
			for pi := nKnobs; pi < len(pols); pi++ {
				v, err := vectorsOf(set, pi)
				if err != nil {
					return nil, err
				}
				points = append(points, FrontierPoint{Name: set.Policies[pi], V: v})
			}
			firstWave = false
		}
		return out, nil
	}

	cfg := pareto.AdaptiveConfig{
		Lo: f.knobLo, Hi: f.knobHi,
		Coarse:   f.coarse,
		Budget:   f.budget,
		WaveSize: f.waveSize,
	}
	var waves int
	if f.fixed {
		if _, err := eval(pareto.UniformGrid(f.knobLo, f.knobHi, f.budget)); err != nil {
			return nil, err
		}
		waves = 1
	} else {
		res, err := pareto.Adaptive(cfg, eval)
		if err != nil {
			return nil, err
		}
		waves = res.Waves
	}
	return pareto.Resolve(scenarioName, names, points, nil, waves)
}

// knobLabel names one knob point ("alpha=0.5000"); decimals comes from
// pareto.KnobDecimals over the knob range, so labels stay unique down to
// the driver's minimum bisection spacing.
func knobLabel(name string, decimals int, t float64) string {
	return fmt.Sprintf("%s=%.*f", name, decimals, t)
}

// ParetoSearch returns the metaheuristic search baseline: a seeded
// multi-start local search that perturbs the incumbent placement, climbs
// under several objective weightings, keeps a non-dominated archive of the
// outcomes and executes the archive's knee each slot. Pit it against the
// proposed controller with FrontierBaselines, or run it in any experiment
// grid. Construct a fresh instance per run.
func ParetoSearch(seed uint64) *ParetoSearchPolicy { return policy.NewParetoSearch(seed) }

// ParetoSearchPolicy is the concrete type behind ParetoSearch, exposing
// its search knobs (Starts, Sweeps, Perturb).
type ParetoSearchPolicy = policy.ParetoSearch

// FrontierFigure renders one scenario frontier as a report table: every
// point with its knob, objectives, rank and front/knee markers.
func FrontierFigure(sf *ScenarioFrontier) *Figure { return report.Frontier(sf) }

// FrontierSVG renders one scenario frontier as an SVG scatter of its first
// two objectives: the Pareto front connected and highlighted, dominated
// points faded, the knee called out.
func FrontierSVG(sf *ScenarioFrontier) string { return viz.Front(sf) }
