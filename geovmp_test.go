package geovmp

import (
	"strings"
	"testing"
)

func testSpec() Spec {
	return Spec{Scale: 0.01, Seed: 5, Horizon: HoursOf(8), FineStepSec: 300}
}

func TestCompareRunsAllPolicies(t *testing.T) {
	results, err := Compare(testSpec(), AllPolicies(0.9, 5)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	wantNames := []string{"Proposed", "Ener-aware", "Pri-aware", "Net-aware"}
	for i, r := range results {
		if r.Policy != wantNames[i] {
			t.Errorf("result %d = %q, want %q (input order preserved)", i, r.Policy, wantNames[i])
		}
		if r.TotalEnergy <= 0 {
			t.Errorf("%s consumed no energy", r.Policy)
		}
	}
}

func TestCompareIsFairAndDeterministic(t *testing.T) {
	// Running the same policy twice through Compare must give identical
	// results: each run gets a fresh identical scenario.
	results, err := Compare(testSpec(), EnerAware(), EnerAware())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OpCost != results[1].OpCost ||
		results[0].TotalEnergy != results[1].TotalEnergy {
		t.Fatal("identical policies diverged — scenario replicas are not identical")
	}
}

func TestRunSingle(t *testing.T) {
	sc, err := NewScenario(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, Proposed(0.9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "Proposed" {
		t.Fatalf("policy = %q", res.Policy)
	}
}

func TestSummarizeAndFigures(t *testing.T) {
	results, err := Compare(testSpec(), AllPolicies(0.9, 5)...)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	for _, name := range []string{"Proposed", "Ener-aware", "Pri-aware", "Net-aware"} {
		if !strings.Contains(sum, name) {
			t.Fatalf("summary missing %s", name)
		}
	}
	sc, err := NewScenario(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(sc, results)
	if len(figs) != 7 {
		t.Fatalf("figures = %d, want 7 (table1 + fig1..fig6)", len(figs))
	}
	for _, f := range figs {
		if !strings.Contains(f.Render(), f.Title) {
			t.Fatalf("%s render missing title", f.ID)
		}
	}
}

func TestHorizonHelpers(t *testing.T) {
	if Week().Slots != 168 {
		t.Fatal("Week != 168 slots")
	}
	if Days(3).Slots != 72 {
		t.Fatal("Days(3) != 72 slots")
	}
	if HoursOf(5).Slots != 5 {
		t.Fatal("HoursOf(5) != 5 slots")
	}
}

func TestPolicyConstructors(t *testing.T) {
	if Proposed(0.5, 1).Name() != "Proposed" {
		t.Fatal("Proposed name")
	}
	if EnerAware().Name() != "Ener-aware" || PriAware().Name() != "Pri-aware" || NetAware().Name() != "Net-aware" {
		t.Fatal("baseline names")
	}
	if len(AllPolicies(0.5, 1)) != 4 {
		t.Fatal("AllPolicies size")
	}
}

func TestHeadlineShapeHolds(t *testing.T) {
	// The reproduction's core qualitative claim on a small scenario: the
	// proposed method's operational cost beats every baseline, and its
	// worst-case response beats the concentrating baselines.
	if testing.Short() {
		t.Skip("shape check needs a longer horizon")
	}
	spec := Spec{Scale: 0.03, Seed: 42, Horizon: Days(1), FineStepSec: 300}
	results, err := Compare(spec, AllPolicies(0.9, 42)...)
	if err != nil {
		t.Fatal(err)
	}
	prop := results[0]
	for _, r := range results[1:] {
		if float64(prop.OpCost) >= float64(r.OpCost) {
			t.Errorf("Proposed cost %.2f not below %s %.2f", float64(prop.OpCost), r.Policy, float64(r.OpCost))
		}
	}
	ener, pri := results[1], results[2]
	if prop.RespSummary.Max() >= ener.RespSummary.Max() &&
		prop.RespSummary.Max() >= pri.RespSummary.Max() {
		t.Errorf("Proposed worst resp %.2f not below both concentrating baselines (%.2f, %.2f)",
			prop.RespSummary.Max(), ener.RespSummary.Max(), pri.RespSummary.Max())
	}
}

func TestReplayedWorkloadDrivesSimulation(t *testing.T) {
	// Export the synthetic workload, reload it, and verify the simulator
	// produces identical placement-relevant metrics — the guarantee that
	// real replayed traces are first-class inputs.
	spec := testSpec()
	scSynthetic, err := NewScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportWorkload(scSynthetic.Workload, dir, spec.Horizon, 12); err != nil {
		t.Fatal(err)
	}
	replay, err := LoadWorkload(dir)
	if err != nil {
		t.Fatal(err)
	}

	base, err := Run(scSynthetic, EnerAware())
	if err != nil {
		t.Fatal(err)
	}
	scReplay, err := NewScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	scReplay.Workload = replay
	got, err := Run(scReplay, EnerAware())
	if err != nil {
		t.Fatal(err)
	}
	// The replay stores 12 samples/slot vs the synthetic 5 s resolution, so
	// energies differ slightly; cost/energy must agree within a few percent
	// and migrations exactly (placement inputs are the stored profiles).
	relEnergy := (got.TotalEnergy.GJ() - base.TotalEnergy.GJ()) / base.TotalEnergy.GJ()
	if relEnergy > 0.1 || relEnergy < -0.1 {
		t.Fatalf("replayed energy off by %v%%", relEnergy*100)
	}
	if got.Migrations != base.Migrations {
		t.Fatalf("replay migrations %d != synthetic %d", got.Migrations, base.Migrations)
	}
}

func TestCompareSeedsAndAggregate(t *testing.T) {
	runs, err := CompareSeeds(testSpec(), 2, func(seed uint64) []Policy {
		return []Policy{Proposed(0.9, seed), NetAware()}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || len(runs[0]) != 2 {
		t.Fatalf("runs shape = %dx%d", len(runs), len(runs[0]))
	}
	// Different seeds must actually differ.
	if runs[0][1].OpCost == runs[1][1].OpCost {
		t.Fatal("seed increment had no effect")
	}
	fig := AggregateFigure(runs)
	if len(fig.Rows) != 2 {
		t.Fatalf("aggregate rows = %d", len(fig.Rows))
	}
	if !strings.Contains(fig.Render(), "Proposed") {
		t.Fatal("aggregate missing policy")
	}
}
