package geovmp

import (
	"context"

	"geovmp/internal/dist"
	"geovmp/internal/experiment"
)

// Distributed sweeps: the same deterministic grid engine, sharded across
// machines. A Coordinator decomposes the grid into cell work items and
// serves them over an HTTP/JSON lease protocol; any number of workers
// (RunDistWorker, or the geovmp-worker binary) pull items, compile the
// scenario column locally, evaluate the cell with the in-process engine
// code, and stream the flattened row back. The merged ResultSet — and its
// JSON export — is byte-identical to running the grid in one process.
//
//	coord, _ := geovmp.NewCoordinator(geovmp.CoordinatorConfig{})
//	defer coord.Close()
//	// elsewhere (any machine that can reach coord.URL()):
//	go geovmp.RunDistWorker(ctx, geovmp.DistWorkerConfig{Coordinator: coord.URL()})
//	set, err := geovmp.NewExperiment(
//	    geovmp.WithPresets("paper-geo3dc", "geo5dc"),
//	    geovmp.WithSeeds(2),
//	).RunDistributed(ctx, coord)
//
// Failure handling is lease-based: a worker that dies mid-cell lets its
// lease expire and the coordinator re-queues the cell (capped exponential
// backoff, bounded attempts). CoordinatorConfig.CheckpointPath persists
// completed cells after every result, so a killed coordinator resumes via
// LoadCheckpoint + WithResume without recomputing them.

// Coordinator shards experiment grids across connected workers. See
// NewCoordinator.
type Coordinator = dist.Coordinator

// CoordinatorConfig parameterizes NewCoordinator; the zero value listens
// on a loopback ephemeral port with 30 s leases.
type CoordinatorConfig = dist.Config

// DistWorkerConfig parameterizes RunDistWorker; only Coordinator (the base
// URL) is required.
type DistWorkerConfig = dist.WorkerConfig

// DistStatus is the coordinator's progress snapshot (GET /v1/status).
type DistStatus = dist.StatusResponse

// PolicyRef is a policy's serializable wire form: a registered kind
// ("proposed", "ener", "pri", "net", "paretosearch") plus its scalar
// knobs. Distributed sweeps ship refs instead of constructors.
type PolicyRef = experiment.PolicyRef

// Registered PolicyRef kinds.
const (
	PolicyKindProposed     = dist.KindProposed
	PolicyKindEnerAware    = dist.KindEnerAware
	PolicyKindPriAware     = dist.KindPriAware
	PolicyKindNetAware     = dist.KindNetAware
	PolicyKindParetoSearch = dist.KindParetoSearch
)

// Checkpoint is a parsed set of completed sweep cells — the WithResume
// source. Both CheckpointPath files and full ResultSet JSON exports load.
type Checkpoint = experiment.Checkpoint

// NewCoordinator binds the coordinator's listener and starts serving the
// worker protocol; its URL is valid immediately. Grids are then served
// through Experiment.RunDistributed (one at a time — multi-wave drivers
// reuse one coordinator and its connected workers across waves).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	return dist.NewCoordinator(cfg)
}

// RunDistWorker connects to a coordinator and evaluates leased grid cells
// until the coordinator closes or ctx is cancelled. It is the library form
// of the geovmp-worker binary.
func RunDistWorker(ctx context.Context, cfg DistWorkerConfig) error {
	return dist.RunWorker(ctx, cfg)
}

// NewRefPolicySpec builds a distribution-ready PolicySpec from a wire-form
// ref: the local constructor is resolved from the same registry workers
// use, so the in-process and distributed paths provably construct the same
// policy. Use it for knobbed variants (alpha sweeps, ablations) that must
// travel; StandardPolicies already carries refs.
func NewRefPolicySpec(name string, ref PolicyRef) (PolicySpec, error) {
	return dist.PolicySpecFromRef(name, ref)
}

// LoadCheckpoint reads a checkpoint (or any ResultSet JSON export) for
// WithResume. Rows that recorded an error are dropped — failed cells are
// recomputed, not resumed.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return experiment.LoadCheckpoint(path)
}

// RunDistributed executes the grid through a coordinator: cells are leased
// to connected workers instead of running in this process, and the merged
// ResultSet is byte-identical to what Run would return. The experiment's
// defaults (paper grid, standard policies) apply exactly as in Run;
// WithParallelism is ignored — parallelism is however many workers
// connect, each applying its own intra-cell budget.
func (e *Experiment) RunDistributed(ctx context.Context, c *Coordinator) (*ResultSet, error) {
	g, err := e.buildGrid()
	if err != nil {
		return nil, err
	}
	return c.RunGrid(ctx, g)
}
