package geovmp

import (
	"context"
	"errors"
	"fmt"

	"geovmp/internal/config"
	"geovmp/internal/experiment"
	"geovmp/internal/fault"
	"geovmp/internal/network"
	"geovmp/internal/sim"
	"geovmp/internal/storage"
	"geovmp/internal/trace"
)

// Experiment declares a sweep grid — scenarios x policies x seeds — and
// executes it on a context-cancellable worker pool, one fresh scenario
// replica and one fresh policy instance per cell. Results come back in
// deterministic grid order (scenario-major, then policy, then seed)
// regardless of how the cells were scheduled.
//
// The zero experiment is the paper's evaluation: the Table I scenario under
// the four methods, one seed. Options widen any axis:
//
//	set, err := geovmp.NewExperiment(
//	    geovmp.WithScenarios(
//	        geovmp.NewSpec("paper", geovmp.WithScale(0.05)),
//	        geovmp.NewSpec("no-battery", geovmp.WithScale(0.05),
//	            geovmp.WithBatteryScale(geovmp.BatteryZero)),
//	    ),
//	    geovmp.WithPolicies(geovmp.StandardPolicies(0.9)...),
//	    geovmp.WithSeeds(5),
//	    geovmp.WithParallelism(8),
//	).Run(ctx)
type Experiment struct {
	grid experiment.Grid
	errs []error
}

// ExperimentOption configures an Experiment under construction.
type ExperimentOption func(*Experiment)

// PolicySpec names a policy and constructs a fresh instance per grid cell
// (stateful policies must never be shared between runs). The seed passed to
// New is the cell's absolute seed.
type PolicySpec = experiment.PolicySpec

// ResultSet is a sweep's structured outcome: every grid cell with its
// identity, result or error, plus grouping (Group), per-scenario mean/std
// aggregation (Aggregate) and deterministic JSON export (JSON, WriteJSON).
type ResultSet = experiment.Set

// ResultCell is one (scenario, policy, seed) evaluation in a ResultSet.
type ResultCell = experiment.Cell

// Progress is one completion event of a running sweep, delivered to the
// WithProgress callback in completion order.
type Progress = experiment.Progress

// NewExperiment builds an experiment from options. Without options it
// reproduces the paper's evaluation grid: the Table I scenario, the four
// methods at alpha 0.9, one seed.
func NewExperiment(opts ...ExperimentOption) *Experiment {
	e := &Experiment{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// WithScenarios sets the scenario axis. Each Spec carries its own name and
// base seed; build variants with NewSpec plus ScenarioOptions, or start
// from Preset.
func WithScenarios(specs ...Spec) ExperimentOption {
	return func(e *Experiment) {
		e.grid.Scenarios = append(e.grid.Scenarios, specs...)
	}
}

// WithPresets appends registered named scenarios (see PresetNames) to the
// scenario axis. Unknown names surface as an error from Run.
func WithPresets(names ...string) ExperimentOption {
	return func(e *Experiment) {
		for _, n := range names {
			spec, err := config.Preset(n)
			if err != nil {
				e.errs = append(e.errs, err)
				continue
			}
			e.grid.Scenarios = append(e.grid.Scenarios, spec)
		}
	}
}

// WithPolicies sets the policy axis.
func WithPolicies(specs ...PolicySpec) ExperimentOption {
	return func(e *Experiment) {
		e.grid.Policies = append(e.grid.Policies, specs...)
	}
}

// WithSeeds widens the seed axis to n consecutive seeds per scenario,
// starting at each scenario's own base seed.
func WithSeeds(n int) ExperimentOption {
	return func(e *Experiment) {
		if n < 1 {
			e.errs = append(e.errs, fmt.Errorf("geovmp: WithSeeds(%d): need at least one seed", n))
			return
		}
		offsets := make([]uint64, n)
		for i := range offsets {
			offsets[i] = uint64(i)
		}
		e.grid.SeedOffsets = offsets
	}
}

// WithParallelism sets the sweep's total worker budget; n <= 0 (the
// default) selects GOMAXPROCS. The budget covers both concurrently running
// grid cells and the intra-cell shards those cells spawn: min(n, cells)
// goroutines run cells, the remainder is a shared budget the cells'
// sharded passes (embedding, clustering, fine-plan evaluation, workload
// compilation) borrow from, and a cell worker that runs out of cells
// donates its slot back. A narrow grid on a big machine therefore still
// saturates n workers, and cells x shards never exceed it. Any value
// yields byte-identical results.
func WithParallelism(n int) ExperimentOption {
	return func(e *Experiment) { e.grid.Parallelism = n }
}

// WithProgress installs a callback invoked after each cell completes —
// serialized, in completion order — for live sweep reporting.
func WithProgress(fn func(Progress)) ExperimentOption {
	return func(e *Experiment) { e.grid.Progress = fn }
}

// WithResume preloads cells completed by an earlier sweep of the same grid
// (see LoadCheckpoint): matching cells carry the checkpointed row instead
// of being recomputed, and because the engine is deterministic the final
// export is byte-identical to a from-scratch run. Works for both the
// in-process path and RunDistributed.
func WithResume(ck *Checkpoint) ExperimentOption {
	return func(e *Experiment) { e.grid.Resume = ck }
}

// Run executes the grid. Cancelling ctx abandons unfinished cells promptly
// (runs check the context every simulated hour) and returns the
// partially-filled ResultSet together with an error wrapping the
// cancellation cause; completed cells keep their results.
func (e *Experiment) Run(ctx context.Context) (*ResultSet, error) {
	g, err := e.buildGrid()
	if err != nil {
		return nil, err
	}
	return experiment.Run(ctx, g)
}

// buildGrid materializes the experiment's grid with the documented
// defaults applied — shared by Run and RunDistributed so both paths sweep
// exactly the same grid.
func (e *Experiment) buildGrid() (experiment.Grid, error) {
	if len(e.errs) > 0 {
		return experiment.Grid{}, errors.Join(e.errs...)
	}
	g := e.grid
	if len(g.Scenarios) == 0 {
		g.Scenarios = []Spec{{}}
	}
	if len(g.Policies) == 0 {
		g.Policies = StandardPolicies(0.9)
	}
	return g, nil
}

// NewPolicySpec wraps a named policy constructor for the policy axis. Specs
// built this way run in-process only: a bare closure has no wire form, so a
// distributed sweep rejects them — use NewRefPolicySpec (or the Ref-carrying
// StandardPolicies) for grids that must travel.
func NewPolicySpec(name string, mk func(seed uint64) Policy) PolicySpec {
	return PolicySpec{Name: name, New: mk}
}

// StandardPolicies returns the paper's four methods as per-cell factories
// in evaluation order: Proposed (at the given alpha, seeded per cell),
// Ener-aware, Pri-aware, Net-aware. Every spec carries its wire form, so
// the standard grid distributes as-is.
func StandardPolicies(alpha float64) []PolicySpec {
	return []PolicySpec{
		{
			Name: "Proposed",
			New:  func(seed uint64) Policy { return Proposed(alpha, seed) },
			Ref:  &PolicyRef{Kind: "proposed", Alpha: alpha},
		},
		{
			Name: "Ener-aware",
			New:  func(uint64) Policy { return EnerAware() },
			Ref:  &PolicyRef{Kind: "ener"},
		},
		{
			Name: "Pri-aware",
			New:  func(uint64) Policy { return PriAware() },
			Ref:  &PolicyRef{Kind: "pri"},
		},
		{
			Name: "Net-aware",
			New:  func(uint64) Policy { return NetAware() },
			Ref:  &PolicyRef{Kind: "net"},
		},
	}
}

// ScenarioOption customizes a Spec during NewSpec construction: fleet scale
// and sites, topology, workload mix, horizon, forecaster, QoS, warmup and
// profile-sampling knobs.
type ScenarioOption = config.Option

// NewSpec builds a named scenario spec from options; the empty option set
// is the paper's Table I world.
func NewSpec(name string, opts ...ScenarioOption) Spec { return config.NewSpec(name, opts...) }

// Preset returns a registered named scenario spec: "paper-geo3dc" (the
// Table I world), "paper-geo3dc-nobattery" (batteries removed), "geo5dc"
// (five European sites on a great-circle mesh).
func Preset(name string) (Spec, error) { return config.Preset(name) }

// MustPreset is Preset, panicking on unknown names — for examples and
// tests.
func MustPreset(name string) Spec {
	spec, err := config.Preset(name)
	if err != nil {
		panic(err)
	}
	return spec
}

// PresetNames lists the registered scenario presets.
func PresetNames() []string { return config.PresetNames() }

// Site describes one data center of a custom fleet (see WithSites).
type Site = config.Site

// TableISites returns the paper's fleet as a customizable site list.
func TableISites() []Site { return config.TableISites() }

// Topology is the inter-DC network graph (see WithTopology).
type Topology = network.Topology

// PaperTopology returns the paper's three-site 100 Gb/s full-mesh backbone.
func PaperTopology() *Topology { return network.PaperTopology() }

// MeshTopology derives a full-mesh topology from site coordinates with the
// paper's link speeds.
func MeshTopology(sites []Site) *Topology { return config.MeshTopology(sites) }

// BatteryZero is the battery-free ablation value for WithBatteryScale.
const BatteryZero = config.BatteryZero

// Scenario-axis options, re-exported from the config layer.

// WithScale multiplies fleet sizes and energy sources (1.0 = Table I).
func WithScale(scale float64) ScenarioOption { return config.WithScale(scale) }

// WithSeed sets the scenario's base randomness seed.
func WithSeed(seed uint64) ScenarioOption { return config.WithSeed(seed) }

// WithHorizon sets the experiment duration (Week, Days, HoursOf).
func WithHorizon(h Horizon) ScenarioOption { return config.WithHorizon(h) }

// WithVMsPerServer sizes the workload relative to the fleet (default 7).
func WithVMsPerServer(v float64) ScenarioOption { return config.WithVMsPerServer(v) }

// WithFineStep sets the green-controller period in seconds (paper: 5).
func WithFineStep(sec float64) ScenarioOption { return config.WithFineStep(sec) }

// WithQoS sets the migration latency guarantee (paper: 0.98).
func WithQoS(q float64) ScenarioOption { return config.WithQoS(q) }

// WithForecast selects the renewable forecaster.
func WithForecast(k ForecastKind) ScenarioOption { return config.WithForecast(k) }

// WithBatteryScale additionally scales battery capacity; BatteryZero gives
// the battery-free ablation.
func WithBatteryScale(b float64) ScenarioOption { return config.WithBatteryScale(b) }

// WithSites replaces the Table I fleet with a custom site list; the
// topology defaults to a great-circle mesh over the sites' coordinates.
func WithSites(sites ...Site) ScenarioOption { return config.WithSites(sites...) }

// WithTopology overrides the inter-DC network topology.
func WithTopology(t *Topology) ScenarioOption { return config.WithTopology(t) }

// WithClassWeights overrides the workload class mix in class order
// (websearch, mapreduce, hpc, batch).
func WithClassWeights(weights ...float64) ScenarioOption {
	return config.WithClassWeights(weights...)
}

// WithWarmupSlots sets how many leading slots are excluded from metrics
// (default 6; negative disables warmup).
func WithWarmupSlots(n int) ScenarioOption { return config.WithWarmupSlots(n) }

// WithProfileSamples sets the per-slot CPU-profile length policies observe
// (default 12).
func WithProfileSamples(n int) ScenarioOption { return config.WithProfileSamples(n) }

// WithWorkload installs a pre-built workload (for example one returned by
// LoadWorkload) instead of the synthetic generator. The source must be safe
// for concurrent readers when used in a parallel sweep.
func WithWorkload(w Workload) ScenarioOption { return config.WithWorkload(trace.Source(w)) }

// WithReplayDir drives the scenario from a replay trace directory
// (vms.csv / profiles.csv / volumes.csv, as written by ExportWorkload)
// instead of the synthetic generator. The directory is loaded at scenario
// build time, so errors surface from NewScenario / Experiment.Run.
func WithReplayDir(dir string) ScenarioOption { return config.WithReplayDir(dir) }

// WithTraceFile drives the scenario from a raw Azure/Google-style cluster
// trace: a VM lifetime CSV plus a per-interval CPU-utilization CSV,
// streamed through IngestCluster at scenario build time.
func WithTraceFile(vmCSV, cpuCSV string) ScenarioOption { return config.WithTraceFile(vmCSV, cpuCSV) }

// WithUsageTemplates calibrates the synthetic generator to fitted usage
// templates (see FitTemplates): services draw their class and utilization
// parameters from the templates instead of the built-in class ranges.
func WithUsageTemplates(ts ...UsageTemplate) ScenarioOption {
	return config.WithUsageTemplates(ts...)
}

// WithFineTableBudget bounds the resident bytes of each compiled workload
// table (fine and profile). Tables over the budget compile chunked and
// stream through the simulator in bounded slot windows; results stay
// byte-identical to the unbounded path. 0 keeps the 256 MiB default;
// negative disables the fine table entirely (legacy behavior).
func WithFineTableBudget(bytes int64) ScenarioOption { return config.WithFineTableBudget(bytes) }

// WithChunkSlots pins the chunk width (in slots) used when a compiled
// table exceeds the fine-table budget, overriding the width derived from
// the budget. 0 derives it; useful to make streaming-compile benchmarks
// reproducible across fleets.
func WithChunkSlots(n int) ScenarioOption { return config.WithChunkSlots(n) }

// MigrationBudget parameterizes the rolling-horizon engine's migration
// accounting: a per-epoch executed-move budget plus the transfer energy
// (J/GB, split between source and destination DC) and per-move service
// downtime charged into the per-slot accounting. The zero value means
// engine defaults (unlimited moves, sim.DefaultMigEnergyPerGB,
// sim.DefaultMigDowntimeSec); negative charging fields disable the charge.
type MigrationBudget = sim.MigrationBudget

// EpochStat is one epoch's slice of a rolling-horizon Result: cost, energy,
// migration counts, charged migration energy and downtime over the epoch's
// measured slots.
type EpochStat = sim.EpochStat

// Rolling-engine migration charging defaults (see MigrationBudget).
const (
	DefaultMigEnergyPerGB = sim.DefaultMigEnergyPerGB // J per GB of image moved
	DefaultMigDowntimeSec = sim.DefaultMigDowntimeSec // s of pause per move
)

// WithEpochs splits the scenario's horizon into n rolling-horizon epochs:
// the placement is re-optimized at every epoch boundary (warm-started from
// the carried state), the per-epoch migration budget resets, and Result /
// ResultSet JSON gain a per-epoch breakdown. WithEpochs(1) is the static
// path — byte-identical to not setting it.
func WithEpochs(n int) ScenarioOption { return config.WithEpochs(n) }

// WithMigrationBudget sets the rolling engine's migration budget and
// charging model. Setting it activates the engine even at WithEpochs(1).
func WithMigrationBudget(b MigrationBudget) ScenarioOption { return config.WithMigrationBudget(b) }

// WithEpochClassWeights schedules synthetic workload class-mix regimes
// (class order: websearch, mapreduce, hpc, batch): the horizon splits into
// len(rows) equal phases, shifting the fleet's composition across the
// horizon. Pair the row count with WithEpochs to align regime shifts with
// the engine's re-optimization boundaries.
func WithEpochClassWeights(rows ...[]float64) ScenarioOption {
	return config.WithEpochClassWeights(rows...)
}

// WithArrivalWave modulates the synthetic arrival rate diurnally with
// amplitude a in [0, 1).
func WithArrivalWave(a float64) ScenarioOption { return config.WithArrivalWave(a) }

// WithFastMath opts controllers into the approximate fast-numeric mode:
// the quantized peak-coincidence kernel and the epoch-amortized embedding
// force caches. Default off — unset runs stay bit-identical to prior
// releases. Results remain deterministic at any worker count; metrics
// shift within the tolerance documented in PERFORMANCE.md.
func WithFastMath() ScenarioOption { return config.WithFastMath() }

// FaultConfig declares a failure schedule: explicit outage windows plus
// per-day stochastic rates for server-batch, whole-DC, link and PV
// failures, compiled deterministically per scenario seed. The zero
// config disables injection entirely.
type FaultConfig = fault.Config

// Outage is one explicit failure window inside a FaultConfig.
type Outage = fault.Outage

// FaultKind discriminates failure targets inside an Outage.
type FaultKind = fault.Kind

// Failure kinds for explicit outage windows.
const (
	FaultServer = fault.KindServer // a fraction of one DC's servers
	FaultDC     = fault.KindDC     // a whole data center
	FaultLink   = fault.KindLink   // one directed inter-DC link
	FaultPV     = fault.KindPV     // one DC's PV production
)

// StorageConfig declares the durable data-placement model: VM volumes
// grouped into placement groups kept as full replicas or RS(k,m)
// stripes across the DCs. Under faults it yields the data-loss-risk and
// repair-bandwidth metrics.
type StorageConfig = storage.Config

// StorageScheme selects the redundancy code inside a StorageConfig.
type StorageScheme = storage.Scheme

// Redundancy schemes.
const (
	StorageNone       = storage.SchemeNone
	StorageReplicated = storage.SchemeReplicated
	StorageErasure    = storage.SchemeErasure
)

// WithFaults injects a failure schedule into the scenario. The zero
// config keeps the run byte-identical to a spec without faults.
func WithFaults(f FaultConfig) ScenarioOption { return config.WithFaults(f) }

// WithStorage attaches the durable data-placement model.
func WithStorage(st StorageConfig) ScenarioOption { return config.WithStorage(st) }

// ReferenceFaults is the pinned incident schedule of the geo5dc-faulty
// preset: a whole-DC outage, degraded fleets at the surviving sites, a
// link brown-out and a PV dropout, plus mild stochastic background
// rates. The failure ablation replays it against every storage scheme.
func ReferenceFaults() FaultConfig { return config.ReferenceFaults() }
