module geovmp

go 1.24
