// Command geovmp runs one placement policy (or all four) over the paper's
// geo-distributed scenario and prints a metrics summary.
//
// Usage:
//
//	geovmp [-policy proposed|ener|pri|net|all] [-scale 0.05] [-seed 42]
//	       [-hours N | -days N | -week] [-alpha 0.9] [-finestep 60]
//
// Examples:
//
//	geovmp -policy all -scale 0.05 -days 2
//	geovmp -policy proposed -alpha 0.5 -week -scale 0.1 -finestep 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"geovmp"
)

func main() {
	var (
		polName  = flag.String("policy", "all", "proposed, ener, pri, net or all")
		scale    = flag.Float64("scale", 0.05, "Table I fleet scale (1.0 = paper)")
		seed     = flag.Uint64("seed", 42, "experiment seed")
		hours    = flag.Int("hours", 0, "horizon in hours")
		days     = flag.Int("days", 2, "horizon in days (ignored when -hours or -week set)")
		week     = flag.Bool("week", false, "use the paper's one-week horizon")
		alpha    = flag.Float64("alpha", 0.9, "energy-performance weight for the proposed method")
		fineStep = flag.Float64("finestep", 60, "green controller step seconds (paper: 5)")
		vmsPer   = flag.Float64("vms", 0, "initial VMs per server (default 7)")
	)
	flag.Parse()

	horizon := geovmp.Days(*days)
	if *hours > 0 {
		horizon = geovmp.HoursOf(*hours)
	}
	if *week {
		horizon = geovmp.Week()
	}
	spec := geovmp.Spec{
		Scale:        *scale,
		Seed:         *seed,
		Horizon:      horizon,
		FineStepSec:  *fineStep,
		VMsPerServer: *vmsPer,
	}

	var pols []geovmp.Policy
	switch *polName {
	case "proposed":
		pols = []geovmp.Policy{geovmp.Proposed(*alpha, *seed)}
	case "ener":
		pols = []geovmp.Policy{geovmp.EnerAware()}
	case "pri":
		pols = []geovmp.Policy{geovmp.PriAware()}
	case "net":
		pols = []geovmp.Policy{geovmp.NetAware()}
	case "all":
		pols = geovmp.AllPolicies(*alpha, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *polName)
		os.Exit(2)
	}

	start := time.Now()
	results, err := geovmp.Compare(spec, pols...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Print(geovmp.Summarize(results))
	fmt.Printf("\n%d policies, %d slots, scale %.3g, seed %d — %s\n",
		len(results), horizon.Slots, *scale, *seed, time.Since(start).Round(time.Millisecond))
}
