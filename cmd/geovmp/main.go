// Command geovmp runs a sweep of placement policies over one of the
// geo-distributed scenarios and prints a metrics summary per seed plus a
// multi-seed aggregate. Cells run in parallel; Ctrl-C cancels the sweep
// and reports whatever completed.
//
// Usage:
//
//	geovmp [-policy proposed|ener|pri|net|all] [-preset paper-geo3dc]
//	       [-scale 0.05] [-seed 42] [-seeds 1] [-par 0]
//	       [-hours N | -days N | -week] [-alpha 0.9] [-finestep 60]
//	       [-json results.json] [-progress]
//
// Examples:
//
//	geovmp -policy all -scale 0.05 -days 2
//	geovmp -preset geo5dc -seeds 3 -par 8 -progress
//	geovmp -policy proposed -alpha 0.5 -week -scale 0.1 -finestep 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"geovmp"
)

func main() {
	var (
		polName  = flag.String("policy", "all", "proposed, ener, pri, net or all")
		preset   = flag.String("preset", "paper-geo3dc", "scenario preset (see -presets)")
		list     = flag.Bool("presets", false, "list scenario presets and exit")
		scale    = flag.Float64("scale", 0.05, "Table I fleet scale (1.0 = paper)")
		seed     = flag.Uint64("seed", 42, "base experiment seed")
		seeds    = flag.Int("seeds", 1, "number of consecutive seeds to sweep")
		par      = flag.Int("par", 0, "max concurrent runs (0 = GOMAXPROCS)")
		hours    = flag.Int("hours", 0, "horizon in hours")
		days     = flag.Int("days", 2, "horizon in days (ignored when -hours or -week set)")
		week     = flag.Bool("week", false, "use the paper's one-week horizon")
		alpha    = flag.Float64("alpha", 0.9, "energy-performance weight for the proposed method")
		fineStep = flag.Float64("finestep", 60, "green controller step seconds (paper: 5)")
		vmsPer   = flag.Float64("vms", 0, "initial VMs per server (default 7)")
		jsonOut  = flag.String("json", "", "write the ResultSet as JSON to this path")
		progress = flag.Bool("progress", false, "print per-cell completion progress")
	)
	flag.Parse()

	if *list {
		for _, n := range geovmp.PresetNames() {
			fmt.Println(n)
		}
		return
	}

	horizon := geovmp.Days(*days)
	if *hours > 0 {
		horizon = geovmp.HoursOf(*hours)
	}
	if *week {
		horizon = geovmp.Week()
	}
	spec, err := geovmp.Preset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	spec.Scale = *scale
	spec.Seed = *seed
	spec.Horizon = horizon
	spec.FineStepSec = *fineStep
	spec.VMsPerServer = *vmsPer

	var pols []geovmp.PolicySpec
	std := geovmp.StandardPolicies(*alpha)
	switch *polName {
	case "proposed":
		pols = std[:1]
	case "ener":
		pols = std[1:2]
	case "pri":
		pols = std[2:3]
	case "net":
		pols = std[3:4]
	case "all":
		pols = std
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *polName)
		os.Exit(2)
	}

	opts := []geovmp.ExperimentOption{
		geovmp.WithScenarios(spec),
		geovmp.WithPolicies(pols...),
		geovmp.WithSeeds(*seeds),
		geovmp.WithParallelism(*par),
	}
	if *progress {
		opts = append(opts, geovmp.WithProgress(func(p geovmp.Progress) {
			fmt.Printf("  [%d/%d] %s / %s / seed %d\n",
				p.Done, p.Total, p.Cell.Scenario, p.Cell.Policy, p.Cell.Seed)
		}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	set, err := geovmp.NewExperiment(opts...).Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		if set == nil {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "reporting completed cells only")
	}

	scName := set.Scenarios[0]
	for ki := range set.SeedOffsets {
		var results []*geovmp.Result
		for pi := range set.Policies {
			if c := set.At(0, pi, ki); c.Result != nil {
				results = append(results, c.Result)
			}
		}
		if len(results) == 0 {
			continue
		}
		if len(set.SeedOffsets) > 1 {
			fmt.Printf("seed %d:\n", *seed+set.SeedOffsets[ki])
		}
		fmt.Print(geovmp.Summarize(results))
	}
	if len(set.SeedOffsets) > 1 {
		fmt.Println()
		fmt.Print(set.Aggregate(scName).Render())
	}
	if *jsonOut != "" {
		if err := set.WriteJSON(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\nResultSet written to %s\n", *jsonOut)
	}
	fmt.Printf("\n%s: %d policies x %d seed(s), %d slots, scale %.3g — %s\n",
		scName, len(set.Policies), len(set.SeedOffsets), horizon.Slots,
		*scale, time.Since(start).Round(time.Millisecond))
	if err != nil {
		os.Exit(1)
	}
}
