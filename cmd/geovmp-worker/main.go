// Command geovmp-worker joins a distributed sweep: it connects to a
// geovmp coordinator (cmd/experiments -coordinator, or any program using
// geovmp.NewCoordinator), leases grid cells, compiles each scenario's
// workload locally, evaluates the cell with the same engine code the
// in-process sweep uses, and streams the flattened row back. The merged
// ResultSet on the coordinator is byte-identical to a single-process run.
//
// Usage:
//
//	geovmp-worker -connect http://coordinator:8341
//	              [-name worker-a] [-par 0] [-cache-columns 2] [-q]
//
// The worker evaluates one cell at a time, funding each cell's intra-cell
// sharded passes with -par goroutines (0 = GOMAXPROCS); grid-level
// parallelism is however many workers connect. It survives a coordinator
// restart (polling until the coordinator returns) and exits cleanly when
// the coordinator reports the sweep finished, on Ctrl-C, or — with
// -idle-exit — once the coordinator has been unreachable for that long
// (the right setting for one-shot CI and batch jobs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"geovmp"
)

var (
	connect  = flag.String("connect", "", "coordinator base URL (required), e.g. http://127.0.0.1:8341")
	name     = flag.String("name", "", "worker name in coordinator logs (default host-pid)")
	par      = flag.Int("par", 0, "intra-cell parallelism budget (0 = GOMAXPROCS)")
	cacheCol = flag.Int("cache-columns", 0, "compiled scenario columns kept hot across cells (0 = default 2)")
	poll     = flag.Duration("poll", 0, "idle re-poll fallback interval (0 = default 200ms)")
	idleExit = flag.Duration("idle-exit", 0, "exit cleanly once the coordinator has been unreachable this long (0 = poll forever, surviving coordinator restarts)")
	quiet    = flag.Bool("q", false, "suppress per-event log lines")
)

func main() {
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "geovmp-worker: -connect <coordinator URL> is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	start := time.Now()
	err := geovmp.RunDistWorker(ctx, geovmp.DistWorkerConfig{
		Coordinator:  *connect,
		Name:         *name,
		Parallelism:  *par,
		CacheColumns: *cacheCol,
		Poll:         *poll,
		IdleExit:     *idleExit,
		Logf:         logf,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "geovmp-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("geovmp-worker: done after %s\n", time.Since(start).Round(time.Millisecond))
}
