// Command experiments regenerates every table and figure of the paper's
// evaluation section (Table I, Figs. 1-6) plus the ablation studies listed
// in DESIGN.md, printing each as text and writing CSVs under -out.
//
// Usage:
//
//	experiments [-exp all|table1|fig1..fig6|figs|alpha|noembed|qos|battery|forecast]
//	            [-scale 0.05] [-seed 42] [-days 7] [-finestep 60] [-out results]
//
// The paper's full configuration is -scale 1 -days 7 -finestep 5; the
// defaults trade fleet size for wall-clock time while preserving the
// comparison structure (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"geovmp"
	"geovmp/internal/config"
	"geovmp/internal/report"
	"geovmp/internal/sim"
)

var (
	expName  = flag.String("exp", "all", "experiment: all, figs, table1, fig1..fig6, alpha, noembed, qos, battery, forecast")
	scale    = flag.Float64("scale", 0.05, "Table I fleet scale (1.0 = paper)")
	seed     = flag.Uint64("seed", 42, "experiment seed")
	days     = flag.Int("days", 7, "horizon in days (paper: 7)")
	fineStep = flag.Float64("finestep", 60, "green controller step seconds (paper: 5)")
	alpha    = flag.Float64("alpha", 0.9, "proposed method's energy-performance weight")
	outDir   = flag.String("out", "results", "directory for CSV output")
	seeds    = flag.Int("seeds", 1, "number of seeds for the multi-seed aggregate (figs only)")
)

func spec() geovmp.Spec {
	return geovmp.Spec{
		Scale:       *scale,
		Seed:        *seed,
		Horizon:     geovmp.Days(*days),
		FineStepSec: *fineStep,
	}
}

func main() {
	flag.Parse()
	start := time.Now()
	var err error
	switch *expName {
	case "all":
		err = runFigures(true)
		for _, ab := range []func() error{runAlphaSweep, runNoEmbed, runQoSSweep, runBatterySweep, runForecast} {
			if err != nil {
				break
			}
			fmt.Println()
			err = ab()
		}
	case "figs", "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6":
		err = runFigures(*expName == "figs" || *expName == "all")
	case "alpha":
		err = runAlphaSweep()
	case "noembed":
		err = runNoEmbed()
	case "qos":
		err = runQoSSweep()
	case "battery":
		err = runBatterySweep()
	case "forecast":
		err = runForecast()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expName)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}

// runFigures executes the four-policy comparison and emits the requested
// figures.
func runFigures(all bool) error {
	fmt.Printf("running 4 policies, scale %.3g, %d days, seed %d ...\n", *scale, *days, *seed)
	results, err := geovmp.Compare(spec(), geovmp.AllPolicies(*alpha, *seed)...)
	if err != nil {
		return err
	}
	sc, err := geovmp.NewScenario(spec())
	if err != nil {
		return err
	}
	figs := report.All(sc.Fleet, results)
	for _, f := range figs {
		if all || *expName == "figs" || *expName == f.ID {
			fmt.Println()
			fmt.Print(f.Render())
			if err := f.WriteCSV(*outDir); err != nil {
				return err
			}
		}
	}
	if err := report.SaveSVGs(*outDir, results); err != nil {
		return err
	}
	fmt.Printf("\nSVG figures written to %s/\n\n", *outDir)
	fmt.Print(report.Summary(results))
	if *seeds > 1 {
		fmt.Printf("\nrunning %d additional seed(s) for the aggregate ...\n", *seeds-1)
		runs := [][]*sim.Result{results}
		for k := 1; k < *seeds; k++ {
			s := spec()
			s.Seed = *seed + uint64(k)
			more, err := geovmp.Compare(s, geovmp.AllPolicies(*alpha, s.Seed)...)
			if err != nil {
				return err
			}
			runs = append(runs, more)
		}
		agg := report.Aggregate(runs)
		fmt.Println()
		fmt.Print(agg.Render())
		if err := agg.WriteCSV(*outDir); err != nil {
			return err
		}
	}
	return nil
}

// runAlphaSweep is ablation A1: the Eq. 5 energy-performance weight.
func runAlphaSweep() error {
	fmt.Println("ablation A1: alpha sweep (energy-performance weighting)")
	fig := &report.Figure{
		ID:      "ablation-alpha",
		Title:   "Alpha sweep: Eq. 5 energy/performance weighting",
		Headers: []string{"alpha", "cost (EUR)", "energy (GJ)", "worst resp (s)", "mean resp (s)", "cross-DC (GB)"},
	}
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res, err := geovmp.Compare(spec(), geovmp.Proposed(a, *seed))
		if err != nil {
			return err
		}
		r := res[0]
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%.1f", a),
			fmt.Sprintf("%.2f", float64(r.OpCost)),
			fmt.Sprintf("%.4f", r.TotalEnergy.GJ()),
			fmt.Sprintf("%.2f", r.RespSummary.Max()),
			fmt.Sprintf("%.2f", r.RespSummary.Mean()),
			fmt.Sprintf("%.1f", r.CrossBytes.GB()),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runNoEmbed is ablation A2: clustering without the force-directed plane.
func runNoEmbed() error {
	fmt.Println("ablation A2: embedding on/off")
	withRes, err := geovmp.Compare(spec(), geovmp.Proposed(*alpha, *seed))
	if err != nil {
		return err
	}
	noCtl := geovmp.Proposed(*alpha, *seed)
	noCtl.NoEmbedding = true
	noRes, err := geovmp.Compare(spec(), noCtl)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-noembed",
		Title:   "Force-directed embedding on/off",
		Headers: []string{"variant", "cost (EUR)", "energy (GJ)", "worst resp (s)", "mean resp (s)", "cross-DC (GB)"},
	}
	for _, pair := range []struct {
		name string
		r    *sim.Result
	}{{"with embedding", withRes[0]}, {"no embedding", noRes[0]}} {
		fig.Rows = append(fig.Rows, []string{
			pair.name,
			fmt.Sprintf("%.2f", float64(pair.r.OpCost)),
			fmt.Sprintf("%.4f", pair.r.TotalEnergy.GJ()),
			fmt.Sprintf("%.2f", pair.r.RespSummary.Max()),
			fmt.Sprintf("%.2f", pair.r.RespSummary.Mean()),
			fmt.Sprintf("%.1f", pair.r.CrossBytes.GB()),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runQoSSweep is ablation A3: the migration latency constraint.
func runQoSSweep() error {
	fmt.Println("ablation A3: migration QoS constraint sweep")
	fig := &report.Figure{
		ID:      "ablation-qos",
		Title:   "Migration QoS sweep (constraint = (1-QoS) x slot)",
		Headers: []string{"QoS", "cost (EUR)", "worst resp (s)", "migrations", "rejected"},
	}
	for _, q := range []float64{0.90, 0.95, 0.98, 0.995, 0.999} {
		s := spec()
		s.QoS = q
		res, err := geovmp.Compare(s, geovmp.Proposed(*alpha, *seed))
		if err != nil {
			return err
		}
		r := res[0]
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%.3f", q),
			fmt.Sprintf("%.2f", float64(r.OpCost)),
			fmt.Sprintf("%.2f", r.RespSummary.Max()),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.MigRejected),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runBatterySweep is ablation A4: battery bank sizing.
func runBatterySweep() error {
	fmt.Println("ablation A4: battery size scaling")
	fig := &report.Figure{
		ID:      "ablation-battery",
		Title:   "Battery capacity scaling x{~0, 0.5, 1, 2}",
		Headers: []string{"battery scale", "cost (EUR)", "grid (kWh)", "PV used (kWh)", "PV lost (kWh)"},
	}
	for _, b := range []float64{config.BatteryZero, 0.5, 1, 2} {
		s := spec()
		s.BatteryScale = b
		res, err := geovmp.Compare(s, geovmp.Proposed(*alpha, *seed))
		if err != nil {
			return err
		}
		r := res[0]
		label := fmt.Sprintf("%.1f", b)
		if b == config.BatteryZero {
			label = "~0"
		}
		fig.Rows = append(fig.Rows, []string{
			label,
			fmt.Sprintf("%.2f", float64(r.OpCost)),
			fmt.Sprintf("%.1f", r.GridEnergy.KWh()),
			fmt.Sprintf("%.1f", r.RenewableUsed.KWh()),
			fmt.Sprintf("%.1f", r.RenewableLost.KWh()),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runForecast is ablation A5: renewable forecaster quality.
func runForecast() error {
	fmt.Println("ablation A5: renewable forecast quality")
	fig := &report.Figure{
		ID:      "ablation-forecast",
		Title:   "Forecaster quality: oracle vs WCMA vs EWMA vs last-value",
		Headers: []string{"forecaster", "cost (EUR)", "grid (kWh)", "PV used (kWh)"},
	}
	kinds := []struct {
		kind geovmp.ForecastKind
		name string
	}{
		{geovmp.ForecastOracle, "oracle"},
		{geovmp.ForecastWCMA, "wcma"},
		{geovmp.ForecastEWMA, "ewma"},
		{geovmp.ForecastLastValue, "last-value"},
	}
	for _, k := range kinds {
		s := spec()
		s.Forecast = k.kind
		res, err := geovmp.Compare(s, geovmp.Proposed(*alpha, *seed))
		if err != nil {
			return err
		}
		r := res[0]
		fig.Rows = append(fig.Rows, []string{
			k.name,
			fmt.Sprintf("%.2f", float64(r.OpCost)),
			fmt.Sprintf("%.1f", r.GridEnergy.KWh()),
			fmt.Sprintf("%.1f", r.RenewableUsed.KWh()),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}
