// Command experiments regenerates every table and figure of the paper's
// evaluation section (Table I, Figs. 1-6) plus the ablation studies listed
// in DESIGN.md, printing each as text and writing CSVs under -out. Every
// experiment is an Experiment-engine sweep: cells run in parallel and
// Ctrl-C cancels the remainder.
//
// Usage:
//
//	experiments [-exp all|table1|fig1..fig6|figs|alpha|noembed|qos|battery|forecast|epochs|frontier|failures]
//	            [-scale 0.05] [-seed 42] [-seeds 1] [-days 7] [-finestep 60]
//	            [-par 0] [-out results] [-json results/cells.json]
//	            [-coordinator host:port] [-checkpoint sweep.ckpt.json]
//	            [-resume sweep.ckpt.json]
//	            [-tracedir replaydir | -ingest-vms vms.csv -ingest-cpu cpu.csv]
//	            [-finebudget bytes] [-chunkslots n]
//	            [-cpuprofile cpu.out] [-memprofile mem.out] [-trace trace.out]
//
// -coordinator runs the sweep distributed: instead of computing cells in
// this process, the grid is served over the worker lease protocol on the
// given address and any number of geovmp-worker processes (on this or other
// machines) evaluate the cells; the merged ResultSet is byte-identical to a
// local run. -checkpoint (coordinator mode) persists completed cells after
// every result; -resume preloads such a checkpoint — or any ResultSet JSON
// export — so already-completed cells are not recomputed, in both the
// single-process and coordinator paths. See README "Distributed sweeps".
//
// The profiling flags write pprof profiles covering the sweep — the fastest
// way to see where a configuration spends its time (`go tool pprof`) — and
// -trace writes a runtime/trace for `go tool trace`, the tool of choice for
// diagnosing shard imbalance in the intra-cell parallel passes.
//
// The paper's full configuration is -scale 1 -days 7 -finestep 5; the
// defaults trade fleet size for wall-clock time while preserving the
// comparison structure (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"geovmp"
	"geovmp/internal/report"
)

var (
	expName  = flag.String("exp", "all", "experiment: all, figs, table1, fig1..fig6, alpha, noembed, qos, battery, forecast, epochs, frontier, failures")
	scale    = flag.Float64("scale", 0.05, "Table I fleet scale (1.0 = paper)")
	seed     = flag.Uint64("seed", 42, "experiment seed")
	days     = flag.Int("days", 7, "horizon in days (paper: 7)")
	fineStep = flag.Float64("finestep", 60, "green controller step seconds (paper: 5)")
	alpha    = flag.Float64("alpha", 0.9, "proposed method's energy-performance weight")
	outDir   = flag.String("out", "results", "directory for CSV output")
	seeds    = flag.Int("seeds", 1, "number of seeds for the multi-seed aggregate (figs only)")
	par      = flag.Int("par", 0, "max concurrent runs (0 = GOMAXPROCS)")
	jsonOut  = flag.String("json", "", "write the figures sweep's ResultSet as JSON to this path")
	cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this path")
	memProf  = flag.String("memprofile", "", "write a heap profile at exit to this path")
	traceOut = flag.String("trace", "", "write a runtime/trace of the sweep to this path (inspect shard balance with `go tool trace`)")
	fastmath = flag.Bool("fastmath", false, "enable the approximate fast-numeric mode (quantized correlation kernel, cached embedding forces; see PERFORMANCE.md)")

	traceDir   = flag.String("tracedir", "", "drive scenarios from this replay trace directory (tracegen -replay format) instead of the synthetic workload")
	ingestVMs  = flag.String("ingest-vms", "", "drive scenarios from a raw cluster trace: VM lifetime CSV (requires -ingest-cpu)")
	ingestCPU  = flag.String("ingest-cpu", "", "per-interval CPU utilization CSV paired with -ingest-vms")
	fineBudget = flag.Int64("finebudget", 0, "resident bytes budget per compiled workload table; over-budget tables stream in chunks (0 = 256 MiB default, negative disables the fine table)")
	chunkSlots = flag.Int("chunkslots", 0, "pin the streaming-compile chunk width in slots (0 = derive from -finebudget)")

	coordAddr  = flag.String("coordinator", "", "serve the sweep to geovmp-worker processes on this address (e.g. :8341) instead of computing cells locally")
	ckptPath   = flag.String("checkpoint", "", "coordinator mode: persist completed cells to this file after every result (resume with -resume)")
	resumePath = flag.String("resume", "", "preload completed cells from this checkpoint or ResultSet JSON; matching cells are not recomputed")
)

// coord is non-nil in -coordinator mode; resumeCk in -resume mode. Both are
// set up in main before any experiment runs.
var (
	coord    *geovmp.Coordinator
	resumeCk *geovmp.Checkpoint
)

// startProfiles begins CPU profiling and execution tracing (when requested)
// and returns a function writing the requested profiles at exit.
func startProfiles() (stop func(), err error) {
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			if stop != nil {
				stop()
			}
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			if stop != nil {
				stop()
			}
			return nil, err
		}
		prev := stop
		stop = func() {
			trace.Stop()
			f.Close()
			if prev != nil {
				prev()
			}
		}
	}
	if *memProf != "" {
		prev := stop
		stop = func() {
			if prev != nil {
				prev()
			}
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	if stop == nil {
		stop = func() {}
	}
	return stop, nil
}

// baseOpts are the scenario options shared by every experiment.
func baseOpts() []geovmp.ScenarioOption {
	opts := []geovmp.ScenarioOption{
		geovmp.WithScale(*scale),
		geovmp.WithSeed(*seed),
		geovmp.WithHorizon(geovmp.Days(*days)),
		geovmp.WithFineStep(*fineStep),
	}
	if *fastmath {
		opts = append(opts, geovmp.WithFastMath())
	}
	if *traceDir != "" {
		opts = append(opts, geovmp.WithReplayDir(*traceDir))
	}
	if *ingestVMs != "" || *ingestCPU != "" {
		opts = append(opts, geovmp.WithTraceFile(*ingestVMs, *ingestCPU))
	}
	if *fineBudget != 0 {
		opts = append(opts, geovmp.WithFineTableBudget(*fineBudget))
	}
	if *chunkSlots != 0 {
		opts = append(opts, geovmp.WithChunkSlots(*chunkSlots))
	}
	return opts
}

func baseSpec(name string, extra ...geovmp.ScenarioOption) geovmp.Spec {
	return geovmp.NewSpec(name, append(baseOpts(), extra...)...)
}

// sweep runs one experiment grid, bailing out on cancellation. With
// -resume, checkpointed cells are preloaded instead of recomputed; with
// -coordinator, cells are leased to connected workers instead of running
// here — both produce the byte-identical ResultSet a plain run would.
func sweep(ctx context.Context, opts ...geovmp.ExperimentOption) (*geovmp.ResultSet, error) {
	opts = append(opts, geovmp.WithParallelism(*par))
	if resumeCk != nil {
		opts = append(opts, geovmp.WithResume(resumeCk))
	}
	exp := geovmp.NewExperiment(opts...)
	if coord != nil {
		return exp.RunDistributed(ctx, coord)
	}
	return exp.Run(ctx)
}

// refPolicy is NewRefPolicySpec for knobbed variants that must travel to
// workers; the local constructor resolves from the same registry, so the
// in-process path is unchanged.
func refPolicy(name string, ref geovmp.PolicyRef) (geovmp.PolicySpec, error) {
	return geovmp.NewRefPolicySpec(name, ref)
}

func main() {
	flag.Parse()
	if *seeds < 1 {
		*seeds = 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stopProfiles, err := startProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	shutdown := func() {
		stopProfiles()
		if coord != nil {
			coord.Close()
		}
	}
	if *resumePath != "" {
		resumeCk, err = geovmp.LoadCheckpoint(*resumePath)
		if err != nil {
			shutdown()
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("resume: %d completed cell(s) preloaded from %s\n", resumeCk.Loaded, *resumePath)
	}
	if *ckptPath != "" && *coordAddr == "" {
		shutdown()
		fmt.Fprintln(os.Stderr, "-checkpoint needs -coordinator (single-process sweeps persist via -json at the end)")
		os.Exit(2)
	}
	if *coordAddr != "" {
		coord, err = geovmp.NewCoordinator(geovmp.CoordinatorConfig{
			Addr:           *coordAddr,
			CheckpointPath: *ckptPath,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			stopProfiles()
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("coordinator: serving cells at %s — connect workers with:\n  geovmp-worker -connect %s\n", coord.URL(), coord.URL())
	}
	start := time.Now()
	switch *expName {
	case "all":
		err = runFigures(ctx, true)
		for _, ab := range []func(context.Context) error{runAlphaSweep, runNoEmbed, runQoSSweep, runBatterySweep, runForecast, runEpochSweep, runFrontier, runFailures} {
			if err != nil {
				break
			}
			fmt.Println()
			err = ab(ctx)
		}
	case "figs", "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6":
		err = runFigures(ctx, *expName == "figs" || *expName == "all")
	case "alpha":
		err = runAlphaSweep(ctx)
	case "noembed":
		err = runNoEmbed(ctx)
	case "qos":
		err = runQoSSweep(ctx)
	case "battery":
		err = runBatterySweep(ctx)
	case "forecast":
		err = runForecast(ctx)
	case "epochs":
		err = runEpochSweep(ctx)
	case "frontier":
		err = runFrontier(ctx)
	case "failures":
		err = runFailures(ctx)
	default:
		shutdown()
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expName)
		os.Exit(2)
	}
	shutdown()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}

// runFigures executes the four-policy comparison (optionally across seeds)
// and emits the requested figures.
func runFigures(ctx context.Context, all bool) error {
	fmt.Printf("running 4 policies x %d seed(s), scale %.3g, %d days ...\n", *seeds, *scale, *days)
	spec := baseSpec("paper-geo3dc")
	set, err := sweep(ctx,
		geovmp.WithScenarios(spec),
		geovmp.WithPolicies(geovmp.StandardPolicies(*alpha)...),
		geovmp.WithSeeds(*seeds),
	)
	if err != nil {
		return err
	}
	// Figures are rendered from the base seed's results. Cells preloaded
	// from a checkpoint or computed by remote workers carry only the
	// flattened row (no raw Result timeseries), so figure rendering is
	// skipped for them — the aggregate table and JSON export still cover
	// every cell.
	results := make([]*geovmp.Result, 0, len(set.Policies))
	live := true
	for pi := range set.Policies {
		r := set.At(0, pi, 0).Result
		if r == nil {
			live = false
		}
		results = append(results, r)
	}
	if live {
		sc, err := geovmp.NewScenario(spec)
		if err != nil {
			return err
		}
		figs := geovmp.Figures(sc, results)
		for _, f := range figs {
			if all || *expName == "figs" || *expName == f.ID {
				fmt.Println()
				fmt.Print(f.Render())
				if err := f.WriteCSV(*outDir); err != nil {
					return err
				}
			}
		}
		if err := report.SaveSVGs(*outDir, results); err != nil {
			return err
		}
		fmt.Printf("\nSVG figures written to %s/\n\n", *outDir)
		fmt.Print(geovmp.Summarize(results))
	} else {
		fmt.Println("\nfigures skipped: resumed/distributed cells carry flattened rows, not raw timeseries")
	}
	if *seeds > 1 || !live {
		agg := set.Aggregate(set.Scenarios[0])
		fmt.Println()
		fmt.Print(agg.Render())
		if err := agg.WriteCSV(*outDir); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		if err := set.WriteJSON(*jsonOut); err != nil {
			return err
		}
		fmt.Printf("\nResultSet written to %s\n", *jsonOut)
	}
	return nil
}

// runAlphaSweep is ablation A1: the Eq. 5 energy-performance weight, swept
// on the policy axis of one grid.
func runAlphaSweep(ctx context.Context) error {
	fmt.Println("ablation A1: alpha sweep (energy-performance weighting)")
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pols := make([]geovmp.PolicySpec, len(alphas))
	for i, a := range alphas {
		ps, err := refPolicy(fmt.Sprintf("alpha=%.1f", a),
			geovmp.PolicyRef{Kind: geovmp.PolicyKindProposed, Alpha: a})
		if err != nil {
			return err
		}
		pols[i] = ps
	}
	set, err := sweep(ctx, geovmp.WithScenarios(baseSpec("paper-geo3dc")), geovmp.WithPolicies(pols...))
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-alpha",
		Title:   "Alpha sweep: Eq. 5 energy/performance weighting",
		Headers: []string{"alpha", "cost (EUR)", "energy (GJ)", "worst resp (s)", "mean resp (s)", "cross-DC (GB)"},
	}
	for i, a := range alphas {
		row := set.At(0, i, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%.1f", a),
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.4f", row.EnergyGJ),
			fmt.Sprintf("%.2f", row.WorstRespS),
			fmt.Sprintf("%.2f", row.MeanRespS),
			fmt.Sprintf("%.1f", row.CrossGB),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runNoEmbed is ablation A2: clustering without the force-directed plane,
// swept as two policy variants of one grid.
func runNoEmbed(ctx context.Context) error {
	fmt.Println("ablation A2: embedding on/off")
	withEmb, err := refPolicy("with embedding",
		geovmp.PolicyRef{Kind: geovmp.PolicyKindProposed, Alpha: *alpha})
	if err != nil {
		return err
	}
	noEmb, err := refPolicy("no embedding",
		geovmp.PolicyRef{Kind: geovmp.PolicyKindProposed, Alpha: *alpha, NoEmbedding: true})
	if err != nil {
		return err
	}
	set, err := sweep(ctx,
		geovmp.WithScenarios(baseSpec("paper-geo3dc")),
		geovmp.WithPolicies(withEmb, noEmb),
	)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-noembed",
		Title:   "Force-directed embedding on/off",
		Headers: []string{"variant", "cost (EUR)", "energy (GJ)", "worst resp (s)", "mean resp (s)", "cross-DC (GB)"},
	}
	for pi, name := range set.Policies {
		row := set.At(0, pi, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			name,
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.4f", row.EnergyGJ),
			fmt.Sprintf("%.2f", row.WorstRespS),
			fmt.Sprintf("%.2f", row.MeanRespS),
			fmt.Sprintf("%.1f", row.CrossGB),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runQoSSweep is ablation A3: the migration latency constraint, swept on
// the scenario axis.
func runQoSSweep(ctx context.Context) error {
	fmt.Println("ablation A3: migration QoS constraint sweep")
	qos := []float64{0.90, 0.95, 0.98, 0.995, 0.999}
	specs := make([]geovmp.Spec, len(qos))
	for i, q := range qos {
		specs[i] = baseSpec(fmt.Sprintf("qos=%.3f", q), geovmp.WithQoS(q))
	}
	set, err := sweep(ctx,
		geovmp.WithScenarios(specs...),
		geovmp.WithPolicies(geovmp.StandardPolicies(*alpha)[:1]...),
	)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-qos",
		Title:   "Migration QoS sweep (constraint = (1-QoS) x slot)",
		Headers: []string{"QoS", "cost (EUR)", "worst resp (s)", "migrations", "rejected"},
	}
	for si, q := range qos {
		row := set.At(si, 0, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%.3f", q),
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.2f", row.WorstRespS),
			fmt.Sprintf("%d", row.Migrations),
			fmt.Sprintf("%d", row.MigRejected),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runBatterySweep is ablation A4: battery bank sizing, swept on the
// scenario axis.
func runBatterySweep(ctx context.Context) error {
	fmt.Println("ablation A4: battery size scaling")
	sizes := []float64{geovmp.BatteryZero, 0.5, 1, 2}
	labels := []string{"~0", "0.5", "1.0", "2.0"}
	specs := make([]geovmp.Spec, len(sizes))
	for i, b := range sizes {
		specs[i] = baseSpec("battery-x"+labels[i], geovmp.WithBatteryScale(b))
	}
	set, err := sweep(ctx,
		geovmp.WithScenarios(specs...),
		geovmp.WithPolicies(geovmp.StandardPolicies(*alpha)[:1]...),
	)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-battery",
		Title:   "Battery capacity scaling x{~0, 0.5, 1, 2}",
		Headers: []string{"battery scale", "cost (EUR)", "grid (kWh)", "PV used (kWh)", "PV lost (kWh)"},
	}
	for si := range sizes {
		row := set.At(si, 0, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			labels[si],
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.1f", row.GridKWh),
			fmt.Sprintf("%.1f", row.RenewableUsedKWh),
			fmt.Sprintf("%.1f", row.RenewableLostKWh),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runEpochSweep is the rolling-horizon ablation: the geo5dc-dynamic
// workload (shifting class mix, waving arrivals) under 1, 2, 4 and 8
// re-optimization epochs, swept on the scenario axis. Epochs=1 is the
// static placement going stale against the drifting regime; more epochs
// buy re-convergence at the price of migration energy and downtime, both
// of which the engine charges into the metrics shown.
func runEpochSweep(ctx context.Context) error {
	fmt.Println("ablation A6: rolling-horizon epoch count on the dynamic workload")
	counts := []int{1, 2, 4, 8}
	specs := make([]geovmp.Spec, len(counts))
	for i, n := range counts {
		spec := geovmp.MustPreset("geo5dc-dynamic")
		spec.Name = fmt.Sprintf("epochs=%d", n)
		spec.Scale = *scale
		spec.Seed = *seed
		spec.Horizon = geovmp.Days(*days)
		spec.FineStepSec = *fineStep
		spec.FastMath = *fastmath
		spec.Epochs = n
		// Explicit default charging so the epochs=1 row runs the engine too
		// (single epoch, no boundary re-optimization) and every row pays
		// for its moves — the comparison isolates the epoch count.
		spec.Migration = geovmp.MigrationBudget{
			EnergyPerGB: geovmp.DefaultMigEnergyPerGB,
			DowntimeSec: geovmp.DefaultMigDowntimeSec,
		}
		specs[i] = spec
	}
	set, err := sweep(ctx,
		geovmp.WithScenarios(specs...),
		geovmp.WithPolicies(geovmp.StandardPolicies(*alpha)[:1]...),
	)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-epochs",
		Title:   "Rolling-horizon epochs on geo5dc-dynamic",
		Headers: []string{"epochs", "cost (EUR)", "energy (GJ)", "worst resp (s)", "migrations", "rejected", "mig energy (kWh)", "downtime (s)"},
	}
	for si := range counts {
		row := set.At(si, 0, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", counts[si]),
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.4f", row.EnergyGJ),
			fmt.Sprintf("%.2f", row.WorstRespS),
			fmt.Sprintf("%d", row.Migrations),
			fmt.Sprintf("%d", row.MigRejected),
			fmt.Sprintf("%.3f", row.MigEnergyKWh),
			fmt.Sprintf("%.1f", row.MigDowntimeS),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runFrontier resolves the cost / mean-response trade-off frontier of the
// base scenario with the adaptive driver: a coarse alpha grid first, then
// refinement waves bisecting the largest hypervolume gaps, with the
// metaheuristic search and two static heuristics framing the front. Every
// wave reuses the scenario x seed's compiled workload and environment. The
// frontier table goes to stdout and CSV; the SVG front and the FrontierSet
// JSON land under -out.
func runFrontier(ctx context.Context) error {
	fmt.Println("frontier: adaptive alpha sweep vs baselines (cost vs mean response)")
	baselines := make([]geovmp.PolicySpec, 0, 3)
	for _, b := range []struct {
		name string
		ref  geovmp.PolicyRef
	}{
		{"Pareto-search", geovmp.PolicyRef{Kind: geovmp.PolicyKindParetoSearch}},
		{"Net-aware", geovmp.PolicyRef{Kind: geovmp.PolicyKindNetAware}},
		{"Ener-aware", geovmp.PolicyRef{Kind: geovmp.PolicyKindEnerAware}},
	} {
		ps, err := refPolicy(b.name, b.ref)
		if err != nil {
			return err
		}
		baselines = append(baselines, ps)
	}
	opts := []geovmp.FrontierOption{
		geovmp.FrontierScenarios(baseSpec("paper-geo3dc")),
		geovmp.FrontierObjectives(geovmp.CostObjective(), geovmp.MeanRespObjective()),
		geovmp.FrontierPointBudget(13),
		geovmp.FrontierCoarseGrid(5),
		geovmp.FrontierSeeds(*seeds),
		geovmp.FrontierParallelism(*par),
		geovmp.FrontierBaselines(baselines...),
	}
	if coord != nil {
		opts = append(opts, geovmp.FrontierRunner(coord))
	}
	fs, err := geovmp.NewFrontier(opts...).Run(ctx)
	if err != nil {
		return err
	}
	for _, sf := range fs.Scenarios {
		fig := geovmp.FrontierFigure(sf)
		fmt.Print(fig.Render())
		if knee := sf.KneePoint(); knee != nil {
			fmt.Printf("knee: %s at %v\n", knee.Name, knee.V)
		}
		// WriteCSV has created outDir by the time the SVG lands next to it.
		if err := fig.WriteCSV(*outDir); err != nil {
			return err
		}
		svgPath := filepath.Join(*outDir, "frontier-"+sf.Scenario+".svg")
		if err := os.WriteFile(svgPath, []byte(geovmp.FrontierSVG(sf)), 0o644); err != nil {
			return err
		}
		fmt.Printf("front SVG written to %s\n", svgPath)
	}
	return fs.WriteJSON(filepath.Join(*outDir, "frontier.json"))
}

// runFailures is ablation A7: durability schemes under the pinned
// geo5dc-faulty outage schedule (a full-DC blackout, correlated server
// failures across the surviving sites, a degraded backbone link and a PV
// dropout, plus the stochastic background rates). The three rows share the
// exact same world and incident sequence; only the storage layer changes —
// no durable volumes, 2x replication, and RS(2,2) erasure coding at the
// same 2.0x capacity overhead — so the loss-probability and repair-traffic
// columns isolate what the coding scheme buys.
func runFailures(ctx context.Context) error {
	fmt.Println("ablation A7: durability schemes under the reference outage schedule")
	schemes := []struct {
		name string
		st   geovmp.StorageConfig
	}{
		{"none", geovmp.StorageConfig{}},
		{"replicated x2", geovmp.StorageConfig{Scheme: geovmp.StorageReplicated, Replicas: 2}},
		{"erasure RS(2,2)", geovmp.StorageConfig{Scheme: geovmp.StorageErasure, K: 2, M: 2}},
	}
	specs := make([]geovmp.Spec, len(schemes))
	for i, s := range schemes {
		spec := geovmp.MustPreset("geo5dc-faulty")
		spec.Name = "faults-" + s.name
		spec.Scale = *scale
		spec.Seed = *seed
		spec.Horizon = geovmp.Days(*days)
		spec.FineStepSec = *fineStep
		spec.FastMath = *fastmath
		spec.Storage = s.st
		specs[i] = spec
	}
	set, err := sweep(ctx,
		geovmp.WithScenarios(specs...),
		geovmp.WithPolicies(geovmp.StandardPolicies(*alpha)[:1]...),
	)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-failures",
		Title:   "Durability under the geo5dc-faulty outage schedule",
		Headers: []string{"storage", "data-loss prob", "repair (GB)", "evacuations", "stranded slots", "cost (EUR)", "worst resp (s)"},
	}
	for si, s := range schemes {
		row := set.At(si, 0, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			s.name,
			fmt.Sprintf("%.4f", row.DataLossProb),
			fmt.Sprintf("%.1f", row.RepairGB),
			fmt.Sprintf("%d", row.Evacuations),
			fmt.Sprintf("%d", row.StrandedVMSlots),
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.2f", row.WorstRespS),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}

// runForecast is ablation A5: renewable forecaster quality, swept on the
// scenario axis.
func runForecast(ctx context.Context) error {
	fmt.Println("ablation A5: renewable forecast quality")
	kinds := []struct {
		kind geovmp.ForecastKind
		name string
	}{
		{geovmp.ForecastOracle, "oracle"},
		{geovmp.ForecastWCMA, "wcma"},
		{geovmp.ForecastEWMA, "ewma"},
		{geovmp.ForecastLastValue, "last-value"},
	}
	specs := make([]geovmp.Spec, len(kinds))
	for i, k := range kinds {
		specs[i] = baseSpec("forecast-"+k.name, geovmp.WithForecast(k.kind))
	}
	set, err := sweep(ctx,
		geovmp.WithScenarios(specs...),
		geovmp.WithPolicies(geovmp.StandardPolicies(*alpha)[:1]...),
	)
	if err != nil {
		return err
	}
	fig := &report.Figure{
		ID:      "ablation-forecast",
		Title:   "Forecaster quality: oracle vs WCMA vs EWMA vs last-value",
		Headers: []string{"forecaster", "cost (EUR)", "grid (kWh)", "PV used (kWh)"},
	}
	for si, k := range kinds {
		row := set.At(si, 0, 0).Export()
		fig.Rows = append(fig.Rows, []string{
			k.name,
			fmt.Sprintf("%.2f", row.CostEUR),
			fmt.Sprintf("%.1f", row.GridKWh),
			fmt.Sprintf("%.1f", row.RenewableUsedKWh),
		})
	}
	fmt.Print(fig.Render())
	return fig.WriteCSV(*outDir)
}
