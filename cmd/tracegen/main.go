// Command tracegen generates the synthetic workload and dumps it as CSV:
// per-VM metadata, 5-second utilization samples for selected VMs, and the
// directed inter-VM volume matrix of selected slots. It exists to inspect
// and plot the workload the simulator feeds the policies.
//
// Beyond inspection it is the trace-pipeline front door: -ingest-vms /
// -ingest-cpu stream a raw Azure/Google-style cluster trace in place of
// the synthetic generator, -replay exports whichever workload is active
// to a replay directory (vms.csv / profiles.csv / volumes.csv) that
// geovmp.LoadWorkload and the -tracedir experiment flag consume, and
// -templates fits k usage templates and writes them as JSON for
// geovmp.WithUsageTemplates.
//
// Usage:
//
//	tracegen [-vms 200] [-hours 24] [-seed 42] [-sample 8] [-out traces]
//	tracegen -replay replaydir [-samples 12] ...
//	tracegen -ingest-vms vms.csv -ingest-cpu cpu.csv [-cpu-scale 100] ...
//	tracegen -templates 4 ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
)

func main() {
	var (
		nVMs      = flag.Int("vms", 200, "initial VMs")
		hours     = flag.Int("hours", 24, "horizon in hours")
		seed      = flag.Uint64("seed", 42, "workload seed")
		sample    = flag.Int("sample", 8, "number of VMs to dump full utilization traces for")
		outDir    = flag.String("out", "traces", "output directory")
		replayDir = flag.String("replay", "", "also export the workload to this replay directory (LoadWorkload format)")
		samples   = flag.Int("samples", 12, "profile samples per slot for -replay, -ingest and -templates")
		ingestVMs = flag.String("ingest-vms", "", "ingest mode: VM lifetime CSV (requires -ingest-cpu)")
		ingestCPU = flag.String("ingest-cpu", "", "ingest mode: per-interval CPU utilization CSV")
		cpuScale  = flag.Float64("cpu-scale", 100, "divisor turning raw CPU readings into core fractions")
		templates = flag.Int("templates", 0, "fit this many usage templates and write templates.json")
	)
	flag.Parse()

	if (*ingestVMs == "") != (*ingestCPU == "") {
		fatal(fmt.Errorf("-ingest-vms and -ingest-cpu must be set together"))
	}

	var w trace.Source
	if *ingestVMs != "" {
		r, err := trace.IngestCluster(*ingestVMs, *ingestCPU, trace.IngestOptions{
			Samples:  *samples,
			CPUScale: *cpuScale,
		})
		if err != nil {
			fatal(err)
		}
		w = r
		fmt.Printf("ingested %d VMs over %d slots from %s + %s\n",
			r.NumVMs(), r.Slots(), *ingestVMs, *ingestCPU)
	} else {
		w = trace.New(trace.Config{
			Seed:       *seed,
			Horizon:    timeutil.Hours(*hours),
			InitialVMs: *nVMs,
		})
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	if *replayDir != "" {
		if err := trace.ExportReplay(w, *replayDir, w.Slots(), *samples); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote replay trace to %s (%d slots, %d samples/slot)\n",
			*replayDir, w.Slots(), *samples)
	}

	if *templates > 0 {
		ts := trace.FitTemplates(w, *templates, *samples)
		data, err := json.MarshalIndent(ts, "", "  ")
		if err != nil {
			fatal(err)
		}
		write(*outDir, "templates.json", string(data)+"\n")
		fmt.Printf("fitted %d usage templates -> %s/templates.json\n", len(ts), *outDir)
	}

	// VM metadata. The synthetic generator exposes class/service metadata;
	// replayed and ingested sources dump lifetimes and image sizes only.
	var b strings.Builder
	if gen, ok := w.(*trace.Workload); ok {
		b.WriteString("id,class,service,arrival_slot,depart_slot,image_gb\n")
		for id := 0; id < gen.NumVMs(); id++ {
			vm := gen.VM(id)
			fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%.0f\n", vm.ID, vm.Class, vm.Service, vm.Arrival, vm.Depart, vm.Image.GB())
		}
	} else {
		b.WriteString("id,image_gb\n")
		for id := 0; id < w.NumVMs(); id++ {
			fmt.Fprintf(&b, "%d,%.0f\n", id, w.Image(id).GB())
		}
	}
	write(*outDir, "vms.csv", b.String())

	// Full 5 s utilization traces for the first -sample VMs.
	b.Reset()
	b.WriteString("step,seconds")
	n := *sample
	if n > w.NumVMs() {
		n = w.NumVMs()
	}
	for id := 0; id < n; id++ {
		fmt.Fprintf(&b, ",vm%d", id)
	}
	b.WriteString("\n")
	steps := timeutil.Horizon{Slots: w.Slots()}.Steps()
	for st := timeutil.Step(0); st < steps; st += 12 { // one sample per minute
		fmt.Fprintf(&b, "%d,%.0f", st, st.Seconds())
		for id := 0; id < n; id++ {
			fmt.Fprintf(&b, ",%.4f", w.Util(id, st))
		}
		b.WriteString("\n")
	}
	write(*outDir, "utilization.csv", b.String())

	// Volume matrices at three representative slots.
	b.Reset()
	b.WriteString("slot,from,to,megabytes\n")
	last := w.Slots() - 1
	for _, sl := range []timeutil.Slot{0, last / 2, last} {
		for _, e := range w.Volumes(sl) {
			fmt.Fprintf(&b, "%d,%d,%d,%.3f\n", sl, e.From, e.To, e.Vol.MB())
		}
	}
	write(*outDir, "volumes.csv", b.String())

	if gen, ok := w.(*trace.Workload); ok {
		fmt.Printf("workload: %d VMs, %d services over %d hours\n", gen.NumVMs(), gen.NumServices(), *hours)
	} else {
		fmt.Printf("workload: %d VMs over %d slots\n", w.NumVMs(), w.Slots())
	}
	fmt.Printf("wrote %s/vms.csv, utilization.csv, volumes.csv\n", *outDir)
}

func write(dir, name, data string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
