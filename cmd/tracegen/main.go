// Command tracegen generates the synthetic workload and dumps it as CSV:
// per-VM metadata, 5-second utilization samples for selected VMs, and the
// directed inter-VM volume matrix of selected slots. It exists to inspect
// and plot the workload the simulator feeds the policies.
//
// Usage:
//
//	tracegen [-vms 200] [-hours 24] [-seed 42] [-sample 8] [-out traces]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
)

func main() {
	var (
		nVMs   = flag.Int("vms", 200, "initial VMs")
		hours  = flag.Int("hours", 24, "horizon in hours")
		seed   = flag.Uint64("seed", 42, "workload seed")
		sample = flag.Int("sample", 8, "number of VMs to dump full utilization traces for")
		outDir = flag.String("out", "traces", "output directory")
	)
	flag.Parse()

	w := trace.New(trace.Config{
		Seed:       *seed,
		Horizon:    timeutil.Hours(*hours),
		InitialVMs: *nVMs,
	})
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	// VM metadata.
	var b strings.Builder
	b.WriteString("id,class,service,arrival_slot,depart_slot,image_gb\n")
	for id := 0; id < w.NumVMs(); id++ {
		vm := w.VM(id)
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%.0f\n", vm.ID, vm.Class, vm.Service, vm.Arrival, vm.Depart, vm.Image.GB())
	}
	write(*outDir, "vms.csv", b.String())

	// Full 5 s utilization traces for the first -sample VMs.
	b.Reset()
	b.WriteString("step,seconds")
	n := *sample
	if n > w.NumVMs() {
		n = w.NumVMs()
	}
	for id := 0; id < n; id++ {
		fmt.Fprintf(&b, ",vm%d", id)
	}
	b.WriteString("\n")
	steps := timeutil.Hours(*hours).Steps()
	for st := timeutil.Step(0); st < steps; st += 12 { // one sample per minute
		fmt.Fprintf(&b, "%d,%.0f", st, st.Seconds())
		for id := 0; id < n; id++ {
			fmt.Fprintf(&b, ",%.4f", w.Util(id, st))
		}
		b.WriteString("\n")
	}
	write(*outDir, "utilization.csv", b.String())

	// Volume matrices at three representative slots.
	b.Reset()
	b.WriteString("slot,from,to,megabytes\n")
	for _, sl := range []timeutil.Slot{0, timeutil.Slot(*hours / 2), timeutil.Slot(*hours - 1)} {
		for _, e := range w.Volumes(sl) {
			fmt.Fprintf(&b, "%d,%d,%d,%.3f\n", sl, e.From, e.To, e.Vol.MB())
		}
	}
	write(*outDir, "volumes.csv", b.String())

	fmt.Printf("workload: %d VMs, %d services over %d hours\n", w.NumVMs(), w.NumServices(), *hours)
	fmt.Printf("wrote %s/vms.csv, utilization.csv, volumes.csv\n", *outDir)
}

func write(dir, name, data string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
