// Command geovmpd runs the online placement daemon: it compiles one of
// the geo-distributed presets into a fleet + topology and serves the
// fit/score/reserve placement API over HTTP/JSON.
//
// Usage:
//
//	geovmpd [-addr :8437] [-preset geo5dc-dynamic] [-scale 0.05]
//	        [-seed 42] [-alpha 0.9] [-queue 256] [-slo 20ms]
//	        [-reconcile 512] [-workers 0]
//
// Endpoints:
//
//	POST /v1/place    {"id":1,"profile":[...],"flows":[...]} -> {"dc":...,"server":...}
//	POST /v1/depart   {"id":1}                               -> {"removed":true}
//	POST /v1/observe  {"slot":3,"vms":[...],"volumes":[...]} -> 204
//	POST /v1/drain                                            -> 200, then 503s
//	GET  /metrics     plain-text counter/gauge/histogram exposition
//	GET  /healthz     {"status":"ok","residents":...,"p99_ms":...}
//
// SIGINT/SIGTERM drains the daemon (in-flight decisions finish, new
// requests get 503) before the listener shuts down, so a rolling restart
// never drops an admitted placement.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"geovmp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8437", "HTTP listen address")
		preset    = flag.String("preset", "geo5dc-dynamic", "scenario preset supplying fleet + topology")
		scale     = flag.Float64("scale", 0.05, "Table I fleet scale (1.0 = paper)")
		seed      = flag.Uint64("seed", 42, "seed for deterministic scatter and sampling")
		alpha     = flag.Float64("alpha", 0.9, "energy-performance weight (paper Eq. 5)")
		queue     = flag.Int("queue", 256, "admission queue bound (excess -> 429)")
		slo       = flag.Duration("slo", 20*time.Millisecond, "decision latency objective, reported at /healthz")
		reconcile = flag.Int("reconcile", 512, "ops between background re-embeddings (<0 disables)")
		workers   = flag.Int("workers", 0, "reconciler goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec, err := geovmp.Preset(*preset)
	if err != nil {
		log.Fatal(err)
	}
	spec.Scale = *scale
	spec.Seed = *seed
	sc, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	d, err := geovmp.NewDaemon(sc, geovmp.DaemonOptions{
		Alpha:          *alpha,
		QueueCap:       *queue,
		SLO:            *slo,
		ReconcileEvery: *reconcile,
		Workers:        w,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "draining...")
		d.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	servers := 0
	for _, site := range sc.Fleet {
		servers += site.Servers
	}
	log.Printf("geovmpd: serving %s (%d DCs, %d servers) on %s", sc.Name, len(sc.Fleet), servers, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Printf("geovmpd: drained after %d placements", d.NumResidents())
}
