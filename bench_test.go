// Benchmarks regenerating each of the paper's tables and figures plus the
// DESIGN.md ablations, on a reduced but structurally identical scenario
// (see EXPERIMENTS.md for the full-scale numbers; cmd/experiments runs
// them). Every benchmark reports the figure's headline quantities through
// b.ReportMetric so `go test -bench=.` doubles as a regression harness for
// the reproduction's *shape*: who wins, and by roughly how much.
package geovmp

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"geovmp/internal/core"
	"geovmp/internal/experiment"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
)

// proposedCapture is a Proposed-only policy list whose factory also hands
// every constructed controller to the caller, so benchmarks can read
// per-controller accumulators (embedding wall time, cache stats) after a
// sweep. The append is mutex-guarded: cells construct policies
// concurrently.
func proposedCapture(alpha float64, mu *sync.Mutex, out *[]*core.Controller) []PolicySpec {
	return []PolicySpec{NewPolicySpec("Proposed", func(seed uint64) Policy {
		c := Proposed(alpha, seed)
		mu.Lock()
		*out = append(*out, c)
		mu.Unlock()
		return c
	})}
}

// benchSpec is the shared reduced scenario: 2% of Table I (30/20/10
// servers, ~420 VMs), one day, 5-minute green-controller steps.
func benchSpec() Spec {
	return Spec{
		Scale:       0.02,
		Seed:        42,
		Horizon:     Days(1),
		FineStepSec: 300,
	}
}

// compareAll runs the four policies of the paper's evaluation once.
func compareAll(b *testing.B) []*Result {
	b.Helper()
	results, err := Compare(benchSpec(), AllPolicies(0.9, 42)...)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

func byName(results []*Result, name string) *Result {
	for _, r := range results {
		if r.Policy == name {
			return r
		}
	}
	return nil
}

// BenchmarkTable1Setup regenerates Table I: scenario construction including
// the fleet, energy sources and workload.
func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := NewScenario(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		if len(sc.Fleet) != 3 {
			b.Fatal("fleet size wrong")
		}
	}
}

// BenchmarkFig1OperationalCost regenerates Figure 1: normalized operational
// cost per method. Reported metrics are the proposed method's relative
// savings versus each baseline (paper: up to 55/25/35% vs Ener/Pri/Net).
func BenchmarkFig1OperationalCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := compareAll(b)
		prop := byName(results, "Proposed")
		for _, base := range []string{"Ener-aware", "Pri-aware", "Net-aware"} {
			r := byName(results, base)
			saving := (float64(r.OpCost) - float64(prop.OpCost)) / float64(r.OpCost)
			b.ReportMetric(saving*100, "pct-saved-vs-"+base)
		}
	}
}

// BenchmarkFig2EnergyConsumption regenerates Figure 2: weekly (here:
// horizon) energy consumed by the DCs per method, in GJ.
func BenchmarkFig2EnergyConsumption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := compareAll(b)
		for _, r := range results {
			b.ReportMetric(r.TotalEnergy.GJ(), "GJ-"+r.Policy)
		}
	}
}

// BenchmarkFig3ResponseTime regenerates Figure 3: the response-time
// distribution. Reported metrics are each method's worst case normalized by
// the worst across methods (the paper's SLA comparison).
func BenchmarkFig3ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := compareAll(b)
		var worst float64
		for _, r := range results {
			if w := r.RespSummary.Max(); w > worst {
				worst = w
			}
		}
		for _, r := range results {
			b.ReportMetric(r.RespSummary.Max()/worst, "norm-worst-"+r.Policy)
		}
	}
}

// BenchmarkFig4Totals regenerates Figure 4: the proposed method's combined
// cost / energy / performance improvements.
func BenchmarkFig4Totals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := compareAll(b)
		prop := byName(results, "Proposed")
		var worstCost, worstEnergy, worstResp float64
		for _, r := range results {
			if c := float64(r.OpCost); c > worstCost {
				worstCost = c
			}
			if e := r.TotalEnergy.GJ(); e > worstEnergy {
				worstEnergy = e
			}
			if w := r.RespSummary.Max(); w > worstResp {
				worstResp = w
			}
		}
		b.ReportMetric((1-float64(prop.OpCost)/worstCost)*100, "pct-cost-improvement")
		b.ReportMetric((1-prop.TotalEnergy.GJ()/worstEnergy)*100, "pct-energy-improvement")
		b.ReportMetric((1-prop.RespSummary.Max()/worstResp)*100, "pct-perf-improvement")
	}
}

// BenchmarkFig5CostPerformance regenerates Figure 5: the cost-performance
// trade-off versus the price-aware and network-aware baselines.
func BenchmarkFig5CostPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := compareAll(b)
		prop := byName(results, "Proposed")
		pri := byName(results, "Pri-aware")
		net := byName(results, "Net-aware")
		b.ReportMetric((1-float64(prop.OpCost)/float64(pri.OpCost))*100, "pct-cost-vs-pri")
		b.ReportMetric((1-prop.RespSummary.Max()/pri.RespSummary.Max())*100, "pct-perf-vs-pri")
		b.ReportMetric((1-float64(prop.OpCost)/float64(net.OpCost))*100, "pct-cost-vs-net")
	}
}

// BenchmarkFig6EnergyPerformance regenerates Figure 6: the
// energy-performance trade-off versus the energy-aware and network-aware
// baselines.
func BenchmarkFig6EnergyPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := compareAll(b)
		prop := byName(results, "Proposed")
		ener := byName(results, "Ener-aware")
		net := byName(results, "Net-aware")
		b.ReportMetric((1-prop.TotalEnergy.GJ()/ener.TotalEnergy.GJ())*100, "pct-energy-vs-ener")
		b.ReportMetric((1-prop.RespSummary.Max()/ener.RespSummary.Max())*100, "pct-perf-vs-ener")
		b.ReportMetric((1-prop.TotalEnergy.GJ()/net.TotalEnergy.GJ())*100, "pct-energy-vs-net")
	}
}

// BenchmarkAblationAlphaSweep is ablation A1: the Eq. 5 weighting between
// data locality and peak separation. Reported: worst response at the
// extremes.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.1, 0.9} {
			res, err := Compare(benchSpec(), Proposed(alpha, 42))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res[0].RespSummary.Max(), "worst-resp-alpha-"+fmtAlpha(alpha))
		}
	}
}

func fmtAlpha(a float64) string {
	if a < 0.5 {
		return "low"
	}
	return "high"
}

// BenchmarkAblationNoEmbedding is ablation A2: k-means without the
// force-directed plane. Reported: cross-DC traffic ratio (embedding should
// reduce it).
func BenchmarkAblationNoEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := Compare(benchSpec(), Proposed(0.9, 42))
		if err != nil {
			b.Fatal(err)
		}
		noCtl := Proposed(0.9, 42)
		noCtl.NoEmbedding = true
		without, err := Compare(benchSpec(), noCtl)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with[0].CrossBytes.GB(), "crossGB-with-embedding")
		b.ReportMetric(without[0].CrossBytes.GB(), "crossGB-no-embedding")
	}
}

// BenchmarkAblationQoSSweep is ablation A3: the migration latency
// constraint. Reported: executed migrations at loose vs tight QoS.
func BenchmarkAblationQoSSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range []float64{0.90, 0.999} {
			s := benchSpec()
			s.QoS = q
			res, err := Compare(s, Proposed(0.9, 42))
			if err != nil {
				b.Fatal(err)
			}
			name := "migrations-qos-loose"
			if q > 0.99 {
				name = "migrations-qos-tight"
			}
			b.ReportMetric(float64(res[0].Migrations), name)
		}
	}
}

// BenchmarkAblationBatterySweep is ablation A4: battery sizing. Reported:
// grid energy with no battery vs double battery.
func BenchmarkAblationBatterySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scale := range []float64{1e-6, 2} {
			s := benchSpec()
			s.BatteryScale = scale
			res, err := Compare(s, Proposed(0.9, 42))
			if err != nil {
				b.Fatal(err)
			}
			name := "gridKWh-battery-none"
			if scale > 1 {
				name = "gridKWh-battery-double"
			}
			b.ReportMetric(res[0].GridEnergy.KWh(), name)
		}
	}
}

// BenchmarkAblationForecast is ablation A5: forecaster quality. Reported:
// operational cost under oracle vs last-value forecasts.
func BenchmarkAblationForecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []ForecastKind{ForecastOracle, ForecastLastValue} {
			s := benchSpec()
			s.Forecast = k
			res, err := Compare(s, Proposed(0.9, 42))
			if err != nil {
				b.Fatal(err)
			}
			name := "cost-forecast-oracle"
			if k == ForecastLastValue {
				name = "cost-forecast-lastvalue"
			}
			b.ReportMetric(float64(res[0].OpCost), name)
		}
	}
}

// BenchmarkExperimentSweep is the engine-level baseline: a 4-policy x
// 3-seed grid on the reduced scenario, executed by the parallel sweep
// engine at GOMAXPROCS. Later performance PRs (sharding, caching,
// multi-backend) must beat this trajectory. Reported: cells per second and
// the proposed method's mean cost across seeds, so both throughput and the
// reproduction's shape are tracked.
//
// When GEOVMP_BENCH_JSON names a path, the headline numbers are also
// written there as a machine-readable artifact (see PERFORMANCE.md), so CI
// logs carry the perf trajectory across PRs.
func BenchmarkExperimentSweep(b *testing.B) {
	var meanCost, cellsPerSec float64
	for i := 0; i < b.N; i++ {
		set, err := NewExperiment(
			WithScenarios(benchSpec()),
			WithPolicies(StandardPolicies(0.9)...),
			WithSeeds(3),
		).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		meanCost = 0
		for _, r := range set.Results(set.Scenarios[0], "Proposed") {
			meanCost += float64(r.OpCost)
		}
		meanCost /= 3
		cellsPerSec = float64(len(set.Cells)) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(meanCost, "eur-proposed-mean")
		b.ReportMetric(cellsPerSec, "cells/s")
	}
	if path := os.Getenv("GEOVMP_BENCH_JSON"); path != "" && b.N > 0 {
		writeBenchArtifact(b, path, meanCost, cellsPerSec)
	}
}

// writeBenchArtifact stores the sweep benchmark's headline numbers as JSON.
func writeBenchArtifact(b *testing.B, path string, meanCost, cellsPerSec float64) {
	b.Helper()
	artifact := struct {
		Benchmark       string  `json:"benchmark"`
		N               int     `json:"n"`
		CellsPerSec     float64 `json:"cells_per_sec"`
		ProposedMeanEUR float64 `json:"policy_mean_cost_eur_proposed"`
		NsPerOp         float64 `json:"ns_per_op"`
	}{
		Benchmark:       "BenchmarkExperimentSweep",
		N:               b.N,
		CellsPerSec:     cellsPerSec,
		ProposedMeanEUR: meanCost,
		NsPerOp:         float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	}
	writeBenchJSON(b, path, artifact)
}

// benchEpochSpec is the rolling-horizon benchmark scenario: the
// geo5dc-dynamic preset (four epochs, shifting class mix, waving arrivals)
// reduced to bench size, with a per-epoch move budget so the engine-side
// migrate.Run revision is on the measured path.
func benchEpochSpec(epochs int) Spec {
	spec := MustPreset("geo5dc-dynamic")
	spec.Scale = 0.02
	spec.Seed = 42
	spec.Horizon = Days(1)
	spec.FineStepSec = 300
	spec.Epochs = epochs
	spec.Migration = MigrationBudget{MaxMovesPerEpoch: 200}
	return spec
}

// BenchmarkEpochSweep measures the rolling-horizon engine against the
// static path on the same dynamic workload: sub-benchmark "static" pins
// Epochs to 1 (epoch machinery active only for the budget, no boundary
// re-optimization), "epochs4" runs the preset's four epochs with boundary
// re-optimization, engine-side revision and migration charging. Reported:
// cells per second, the proposed method's cost, and total executed
// migrations — so both the engine's overhead and the dynamic scenario's
// shape are tracked across PRs.
//
// When GEOVMP_BENCH_EPOCH_JSON names a path, the epochs4 variant writes its
// headline numbers there (CI uploads it as BENCH_epoch.json).
func BenchmarkEpochSweep(b *testing.B) {
	run := func(b *testing.B, epochs int, fast bool) (costEUR, cellsPerSec, boundaryMS float64, migrations int) {
		b.Helper()
		var mu sync.Mutex
		var ctls []*core.Controller
		for i := 0; i < b.N; i++ {
			spec := benchEpochSpec(epochs)
			spec.FastMath = fast
			set, err := NewExperiment(
				WithScenarios(spec),
				WithPolicies(proposedCapture(0.9, &mu, &ctls)...),
				WithSeeds(2),
			).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			costEUR, migrations = 0, 0
			for _, r := range set.Results(set.Scenarios[0], "Proposed") {
				costEUR += float64(r.OpCost)
				migrations += r.Migrations
			}
			costEUR /= 2
			cellsPerSec = float64(len(set.Cells)) * float64(b.N) / b.Elapsed().Seconds()
		}
		// Mean embedding wall time spent on epoch-boundary re-optimization
		// slots per cell: the quantity the fast mode's warm-restart
		// amortization targets.
		var boundaryNS int64
		for _, c := range ctls {
			boundaryNS += c.BoundaryEmbedNS
		}
		if len(ctls) > 0 {
			boundaryMS = float64(boundaryNS) / 1e6 / float64(len(ctls))
		}
		b.ReportMetric(cellsPerSec, "cells/s")
		b.ReportMetric(costEUR, "eur-proposed-mean")
		b.ReportMetric(float64(migrations), "migrations")
		if epochs > 1 {
			b.ReportMetric(boundaryMS, "boundary-embed-ms")
		}
		return costEUR, cellsPerSec, boundaryMS, migrations
	}
	b.Run("static", func(b *testing.B) { run(b, 1, false) })
	var exactBoundaryMS float64
	b.Run("epochs4", func(b *testing.B) {
		costEUR, cellsPerSec, boundaryMS, migrations := run(b, 4, false)
		exactBoundaryMS = boundaryMS
		path := os.Getenv("GEOVMP_BENCH_EPOCH_JSON")
		if path == "" || b.N == 0 {
			return
		}
		writeBenchJSON(b, path, struct {
			Benchmark       string  `json:"benchmark"`
			N               int     `json:"n"`
			CellsPerSec     float64 `json:"cells_per_sec"`
			ProposedMeanEUR float64 `json:"policy_mean_cost_eur_proposed"`
			Migrations      int     `json:"migrations"`
			BoundaryEmbedMS float64 `json:"boundary_embed_ms"`
			NsPerOp         float64 `json:"ns_per_op"`
		}{
			Benchmark:       "BenchmarkEpochSweep/epochs4",
			N:               b.N,
			CellsPerSec:     cellsPerSec,
			ProposedMeanEUR: costEUR,
			Migrations:      migrations,
			BoundaryEmbedMS: boundaryMS,
			NsPerOp:         float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
	b.Run("epochs4-fast", func(b *testing.B) {
		_, _, boundaryMS, _ := run(b, 4, true)
		if exactBoundaryMS > 0 && boundaryMS > 0 {
			b.ReportMetric(exactBoundaryMS/boundaryMS, "boundary-speedup-x")
		}
	})
}

// writeBenchJSON marshals one benchmark's headline-number artifact and
// stores it at path — the shared mechanics behind every BENCH_*.json;
// each benchmark keeps its own schema struct.
func writeBenchJSON(b *testing.B, path string, artifact any) {
	b.Helper()
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchTraceWorkload is the streaming-compile benchmark's workload: a
// multi-day synthetic fleet large enough that the fine table is tens of
// MB, so the in-core/out-of-core comparison measures real table traffic.
func benchTraceWorkload() *trace.Workload {
	return trace.New(trace.Config{
		Seed:       42,
		Horizon:    Days(2),
		InitialVMs: 1500,
	})
}

// BenchmarkCompileStream measures the out-of-core trace pipeline against
// the in-core compile on the same workload: sub-benchmark "incore" builds
// the resident fine+profile tables outright; "stream" compiles under a
// 4 MiB per-table budget and then drives a FineCursor + ProfileCursor
// across every slot — the simulator's exact access pattern — so the
// reported throughput covers chunk compilation, not just bookkeeping.
// Reported: compiled slots per second per variant, the resident table MB
// of the in-core build, and the streamed window's peak MB (the memory the
// budget actually bounds).
//
// When GEOVMP_BENCH_TRACE_JSON names a path, the stream variant writes
// both throughputs there (CI uploads it as BENCH_trace.json and the
// benchdiff gate holds the *_per_sec fields to the committed baseline).
func BenchmarkCompileStream(b *testing.B) {
	const samples, fineStep = 12, 300
	opts := trace.CompileOptions{Samples: samples, FineStepSec: fineStep}
	var incoreSlotsPerSec, residentMB float64
	b.Run("incore", func(b *testing.B) {
		var c *trace.Compiled
		for i := 0; i < b.N; i++ {
			c = trace.Compile(benchTraceWorkload(), opts)
		}
		fineBytes, profBytes := c.TableBytes()
		residentMB = float64(fineBytes+profBytes) / (1 << 20)
		incoreSlotsPerSec = float64(c.Slots()) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(incoreSlotsPerSec, "slots/s")
		b.ReportMetric(residentMB, "resident-MB")
	})
	b.Run("stream", func(b *testing.B) {
		budgeted := opts
		budgeted.MaxFineTableBytes = 4 << 20
		var windowPeak int64
		var chunkSlots int
		var streamSlotsPerSec float64
		var sink float64
		for i := 0; i < b.N; i++ {
			c := trace.Compile(benchTraceWorkload(), budgeted)
			fineCur := c.NewFineCursor(nil)
			profCur := c.NewProfileCursor(nil)
			if fineCur == nil || profCur == nil {
				b.Fatal("4 MiB budget did not chunk the tables")
			}
			chunkSlots = c.FineChunkSlots()
			for sl := timeutil.Slot(0); sl < c.Slots(); sl++ {
				fineCur.Advance(sl)
				profCur.Advance(sl)
				if wb := fineCur.WindowBytes() + profCur.WindowBytes(); wb > windowPeak {
					windowPeak = wb
				}
				for _, id := range c.ActiveVMs(sl) {
					if row := fineCur.FineRow(id, sl); row != nil {
						sink += row[0]
					}
				}
			}
			streamSlotsPerSec = float64(c.Slots()) * float64(b.N) / b.Elapsed().Seconds()
		}
		_ = sink
		windowMB := float64(windowPeak) / (1 << 20)
		b.ReportMetric(streamSlotsPerSec, "slots/s")
		b.ReportMetric(windowMB, "window-MB")
		b.ReportMetric(float64(chunkSlots), "chunk-slots")
		path := os.Getenv("GEOVMP_BENCH_TRACE_JSON")
		if path == "" || b.N == 0 {
			return
		}
		writeBenchJSON(b, path, struct {
			Benchmark         string  `json:"benchmark"`
			N                 int     `json:"n"`
			IncoreSlotsPerSec float64 `json:"incore_slots_per_sec"`
			StreamSlotsPerSec float64 `json:"stream_slots_per_sec"`
			ResidentMB        float64 `json:"resident_table_mb"`
			WindowMB          float64 `json:"stream_window_mb"`
			ChunkSlots        int     `json:"chunk_slots"`
			NsPerOp           float64 `json:"ns_per_op"`
		}{
			Benchmark:         "BenchmarkCompileStream/stream",
			N:                 b.N,
			IncoreSlotsPerSec: incoreSlotsPerSec,
			StreamSlotsPerSec: streamSlotsPerSec,
			ResidentMB:        residentMB,
			WindowMB:          windowMB,
			ChunkSlots:        chunkSlots,
			NsPerOp:           float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// benchServeLog compiles the geo5dc-dynamic preset at the given fleet
// scale and derives the serving daemon's replayable event log (per slot:
// one telemetry observation, then departures, then arrivals).
func benchServeLog(b *testing.B, scale float64) (*Scenario, []Event, int) {
	b.Helper()
	spec := MustPreset("geo5dc-dynamic")
	spec.Scale = scale
	spec.Seed = 42
	spec.Horizon = Days(1)
	spec.FineStepSec = 300
	sc, err := NewScenario(spec)
	if err != nil {
		b.Fatal(err)
	}
	events := EventsFromWorkload(sc.Workload, spec.Horizon, 12)
	arrivals := 0
	for _, ev := range events {
		if ev.Kind == EvPlace {
			arrivals++
		}
	}
	return sc, events, arrivals
}

// BenchmarkServe measures the online placement daemon on the dynamic
// preset: one day of geo5dc-dynamic churn replayed through a fresh daemon
// per iteration at full request parallelism, background reconciler
// enabled. Reported: sustained arrivals per second and the decision
// latency percentiles off the daemon's own metrics board — the serving
// SLO numbers quoted in PERFORMANCE.md. Sub-benchmarks run two fleet
// scales so per-decision cost growth with fleet size is tracked too.
//
// When GEOVMP_BENCH_SERVE_JSON names a path, the larger scale writes its
// headline numbers there (CI uploads it as BENCH_serve.json).
func BenchmarkServe(b *testing.B) {
	run := func(b *testing.B, scale float64) (arrivalsPerSec, p50ms, p99ms float64) {
		b.Helper()
		sc, events, arrivals := benchServeLog(b, scale)
		workers := 8
		b.ResetTimer()
		var d *Daemon
		for i := 0; i < b.N; i++ {
			var err error
			d, err = NewDaemon(sc, DaemonOptions{})
			if err != nil {
				b.Fatal(err)
			}
			d.Replay(events, workers)
		}
		lat := d.Board().Snapshot().Hists["serve_decision_latency"]
		arrivalsPerSec = float64(arrivals) * float64(b.N) / b.Elapsed().Seconds()
		p50ms, p99ms = lat.P50NS/1e6, lat.P99NS/1e6
		b.ReportMetric(arrivalsPerSec, "arrivals/s")
		b.ReportMetric(p50ms, "p50-ms")
		b.ReportMetric(p99ms, "p99-ms")
		b.ReportMetric(float64(lat.MaxNS)/1e6, "max-ms")
		return arrivalsPerSec, p50ms, p99ms
	}
	b.Run("scale2pct", func(b *testing.B) { run(b, 0.02) })
	b.Run("scale8pct", func(b *testing.B) {
		arrivalsPerSec, p50ms, p99ms := run(b, 0.08)
		path := os.Getenv("GEOVMP_BENCH_SERVE_JSON")
		if path == "" || b.N == 0 {
			return
		}
		writeBenchJSON(b, path, struct {
			Benchmark      string  `json:"benchmark"`
			N              int     `json:"n"`
			ArrivalsPerSec float64 `json:"arrivals_per_sec"`
			P50MS          float64 `json:"decision_p50_ms"`
			P99MS          float64 `json:"decision_p99_ms"`
			NsPerOp        float64 `json:"ns_per_op"`
		}{
			Benchmark:      "BenchmarkServe/scale8pct",
			N:              b.N,
			ArrivalsPerSec: arrivalsPerSec,
			P50MS:          p50ms,
			P99MS:          p99ms,
			NsPerOp:        float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// benchFrontierOpts is the shared frontier benchmark configuration: the
// reduced dynamic preset under a cost/mean-response frontier at an
// 11-point budget, one seed.
func benchFrontierOpts(extra ...FrontierOption) []FrontierOption {
	spec := MustPreset("geo5dc-dynamic")
	spec.Scale = 0.02
	spec.Seed = 42
	spec.Horizon = Days(1)
	spec.FineStepSec = 300
	return append([]FrontierOption{
		FrontierScenarios(spec),
		FrontierObjectives(CostObjective(), MeanRespObjective()),
		FrontierPointBudget(11),
	}, extra...)
}

// BenchmarkFrontier measures frontier resolution at equal point budget:
// sub-benchmark "grid" spends the whole budget on one uniform alpha grid,
// "adaptive" runs the coarse-then-bisect driver (several waves over the
// same compiled scenario columns). Reported per variant: evaluated points
// per second and the run's hypervolume; the adaptive variant additionally
// reports both hypervolumes under a shared reference point — the apples-
// to-apples frontier-quality comparison — and how many compiles the
// column sharing saved versus compiling once per wave.
//
// When GEOVMP_BENCH_FRONTIER_JSON names a path, the adaptive variant
// writes the headline numbers there (CI uploads it as BENCH_frontier.json).
func BenchmarkFrontier(b *testing.B) {
	run := func(b *testing.B, opts ...FrontierOption) (sf *ScenarioFrontier, pointsPerSec float64) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			fs, err := NewFrontier(benchFrontierOpts(opts...)...).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			sf = fs.Scenarios[0]
		}
		pointsPerSec = float64(sf.Evals) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(pointsPerSec, "points/s")
		b.ReportMetric(sf.Hypervolume, "hypervolume")
		return sf, pointsPerSec
	}
	var grid *ScenarioFrontier
	b.Run("grid", func(b *testing.B) {
		grid, _ = run(b, FrontierFixedGrid())
	})
	b.Run("adaptive", func(b *testing.B) {
		before := experiment.CompileCount()
		adaptive, pointsPerSec := run(b, FrontierCoarseGrid(5), FrontierWaveSize(2))
		compiles := experiment.CompileCount() - before
		// One compile per scenario x seed per run; without column sharing
		// every wave would have compiled its own.
		compilesSaved := int64(adaptive.Waves-1)*int64(b.N) - (compiles - int64(b.N))
		b.ReportMetric(float64(adaptive.Waves), "waves")
		b.ReportMetric(float64(compilesSaved)/float64(b.N), "compiles-saved")
		if grid == nil {
			return
		}
		// Frontier quality under one shared reference: the acceptance
		// criterion's comparison (same helper as TestAdaptiveBeatsFixedGrid),
		// tracked across PRs.
		hvAdaptive, hvGrid := sharedRefHypervolumes(adaptive, grid)
		b.ReportMetric(hvAdaptive, "hv-adaptive")
		b.ReportMetric(hvGrid, "hv-grid")
		path := os.Getenv("GEOVMP_BENCH_FRONTIER_JSON")
		if path == "" || b.N == 0 {
			return
		}
		writeBenchJSON(b, path, struct {
			Benchmark     string  `json:"benchmark"`
			N             int     `json:"n"`
			PointsPerSec  float64 `json:"points_per_sec"`
			Waves         int     `json:"waves"`
			Evals         int     `json:"evals"`
			CompilesSaved float64 `json:"compiles_saved_per_run"`
			HVAdaptive    float64 `json:"hv_adaptive_shared_ref"`
			HVGrid        float64 `json:"hv_grid_shared_ref"`
			NsPerOp       float64 `json:"ns_per_op"`
		}{
			Benchmark:     "BenchmarkFrontier/adaptive",
			N:             b.N,
			PointsPerSec:  pointsPerSec,
			Waves:         adaptive.Waves,
			Evals:         adaptive.Evals,
			CompilesSaved: float64(compilesSaved) / float64(b.N),
			HVAdaptive:    hvAdaptive,
			HVGrid:        hvGrid,
			NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// benchFaultSpec is the survivability benchmark scenario: the geo5dc-faulty
// preset (reference outage schedule + RS(2,2) storage) reduced to bench
// size, with the horizon covering the whole-DC outage window and the
// degraded tail.
func benchFaultSpec() Spec {
	spec := MustPreset("geo5dc-faulty")
	spec.Scale = 0.02
	spec.Seed = 42
	spec.Horizon = HoursOf(16)
	spec.FineStepSec = 300
	return spec
}

// BenchmarkFaultSweep measures the fault-and-durability path against the
// same scenario with fault injection stripped: sub-benchmark "healthy"
// clears Faults and Storage (the engine takes the exact zero-fault code
// path), "faulty" runs the reference outage schedule with erasure-coded
// storage — schedule compilation, per-slot capacity scaling, forced
// evacuation, repair traffic and loss assessment all on the measured path.
// Reported: cells per second per variant, plus the faulty variant's
// survivability shape (loss probability, repair GB, evacuations).
//
// When GEOVMP_BENCH_FAULTS_JSON names a path, the faulty variant writes its
// headline numbers there (CI uploads it as BENCH_faults.json and the
// benchdiff gate holds cells_per_sec to the committed baseline).
func BenchmarkFaultSweep(b *testing.B) {
	run := func(b *testing.B, faulty bool) (cellsPerSec, lossProb, repairGB float64, evacs int) {
		b.Helper()
		spec := benchFaultSpec()
		if !faulty {
			spec.Faults = FaultConfig{}
			spec.Storage = StorageConfig{}
		}
		for i := 0; i < b.N; i++ {
			set, err := NewExperiment(
				WithScenarios(spec),
				WithPolicies(StandardPolicies(0.9)[:1]...),
				WithSeeds(2),
			).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			lossProb, repairGB, evacs = 0, 0, 0
			for _, r := range set.Results(set.Scenarios[0], "Proposed") {
				lossProb += r.DataLossProb
				repairGB += r.RepairBytes.GB()
				evacs += r.Evacuations
			}
			lossProb /= 2
			cellsPerSec = float64(len(set.Cells)) * float64(b.N) / b.Elapsed().Seconds()
		}
		b.ReportMetric(cellsPerSec, "cells/s")
		if faulty {
			b.ReportMetric(lossProb, "data-loss-prob")
			b.ReportMetric(repairGB, "repair-GB")
			b.ReportMetric(float64(evacs), "evacuations")
		}
		return cellsPerSec, lossProb, repairGB, evacs
	}
	b.Run("healthy", func(b *testing.B) { run(b, false) })
	b.Run("faulty", func(b *testing.B) {
		cellsPerSec, lossProb, repairGB, evacs := run(b, true)
		path := os.Getenv("GEOVMP_BENCH_FAULTS_JSON")
		if path == "" || b.N == 0 {
			return
		}
		writeBenchJSON(b, path, struct {
			Benchmark    string  `json:"benchmark"`
			N            int     `json:"n"`
			CellsPerSec  float64 `json:"cells_per_sec"`
			DataLossProb float64 `json:"data_loss_prob"`
			RepairGB     float64 `json:"repair_gb"`
			Evacuations  int     `json:"evacuations"`
			NsPerOp      float64 `json:"ns_per_op"`
		}{
			Benchmark:    "BenchmarkFaultSweep/faulty",
			N:            b.N,
			CellsPerSec:  cellsPerSec,
			DataLossProb: lossProb,
			RepairGB:     repairGB,
			Evacuations:  evacs,
			NsPerOp:      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// benchDistExperiment is the distributed-sweep benchmark grid: the shared
// reduced scenario under the four standard policies and three seeds — the
// same grid BenchmarkExperimentSweep runs in-process, so the two cells/s
// numbers are directly comparable.
func benchDistExperiment() *Experiment {
	return NewExperiment(
		WithScenarios(benchSpec()),
		WithPolicies(StandardPolicies(0.9)...),
		WithSeeds(3),
	)
}

// BenchmarkDistSweep measures the coordinator/worker grid against the
// in-process engine on the same 12-cell grid: sub-benchmark "local" is the
// plain parallel sweep, "workers1" and "workers2" lease every cell over the
// HTTP protocol to one and two connected workers (each evaluating serially,
// as a one-core-per-worker deployment would). The merged export is asserted
// byte-identical to the local run's every iteration, so the benchmark also
// guards the bit-identical-merge contract. Reported: cells per second per
// variant and the protocol overhead of workers1 versus local — on one host
// that overhead is all the distribution costs (leases, heartbeats, JSON
// rows, re-compiled columns); across real machines it is what scaling must
// amortize.
//
// When GEOVMP_BENCH_DIST_JSON names a path, the workers2 variant writes the
// headline numbers there (CI uploads it as BENCH_dist.json and the
// benchdiff gate holds cells_per_sec to the committed baseline).
func BenchmarkDistSweep(b *testing.B) {
	var localJSON []byte
	var localCellsPerSec float64
	b.Run("local", func(b *testing.B) {
		var set *ResultSet
		for i := 0; i < b.N; i++ {
			var err error
			set, err = benchDistExperiment().Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
		}
		var err error
		localJSON, err = set.JSON()
		if err != nil {
			b.Fatal(err)
		}
		localCellsPerSec = float64(len(set.Cells)) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(localCellsPerSec, "cells/s")
	})

	runDist := func(b *testing.B, nWorkers int) (cellsPerSec float64) {
		b.Helper()
		var cells int
		for i := 0; i < b.N; i++ {
			coord, err := NewCoordinator(CoordinatorConfig{})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, nWorkers)
			for w := 0; w < nWorkers; w++ {
				name := string(rune('a' + w))
				go func() {
					done <- RunDistWorker(ctx, DistWorkerConfig{
						Coordinator: coord.URL(),
						Name:        name,
						Parallelism: 1,
						Poll:        5 * time.Millisecond,
					})
				}()
			}
			set, err := benchDistExperiment().RunDistributed(ctx, coord)
			if err != nil {
				b.Fatal(err)
			}
			coord.Finish()
			for w := 0; w < nWorkers; w++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			cancel()
			coord.Close()
			got, err := set.JSON()
			if err != nil {
				b.Fatal(err)
			}
			if localJSON != nil && !bytes.Equal(got, localJSON) {
				b.Fatal("distributed export differs from local export")
			}
			cells = len(set.Cells)
		}
		cellsPerSec = float64(cells) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(cellsPerSec, "cells/s")
		return cellsPerSec
	}

	var oneWorkerCellsPerSec float64
	b.Run("workers1", func(b *testing.B) {
		oneWorkerCellsPerSec = runDist(b, 1)
		if localCellsPerSec > 0 {
			b.ReportMetric((localCellsPerSec/oneWorkerCellsPerSec-1)*100, "pct-overhead-vs-local")
		}
	})
	b.Run("workers2", func(b *testing.B) {
		cellsPerSec := runDist(b, 2)
		if oneWorkerCellsPerSec > 0 {
			b.ReportMetric(cellsPerSec/oneWorkerCellsPerSec, "speedup-vs-1-worker")
		}
		path := os.Getenv("GEOVMP_BENCH_DIST_JSON")
		if path == "" || b.N == 0 {
			return
		}
		writeBenchJSON(b, path, struct {
			Benchmark        string  `json:"benchmark"`
			N                int     `json:"n"`
			CellsPerSec      float64 `json:"cells_per_sec"`
			OneWorkerPerSec  float64 `json:"one_worker_cells_per_sec"`
			LocalCellsPerSec float64 `json:"local_cells_per_sec"`
			NsPerOp          float64 `json:"ns_per_op"`
		}{
			Benchmark:        "BenchmarkDistSweep/workers2",
			N:                b.N,
			CellsPerSec:      cellsPerSec,
			OneWorkerPerSec:  oneWorkerCellsPerSec,
			LocalCellsPerSec: localCellsPerSec,
			NsPerOp:          float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// benchLargeSpec is the global-phase stress scenario: the geo5dc-large
// preset (1800 servers, ~12600 initial VMs — well past the embedding's
// exact-mode threshold) over a deliberately short horizon, so the benchmark
// measures the per-slot global phase at the fleet size it targets rather
// than a long week of it.
func benchLargeSpec() Spec {
	spec := MustPreset("geo5dc-large")
	spec.Seed = 42
	spec.Horizon = HoursOf(3)
	spec.FineStepSec = 900
	return spec
}

// BenchmarkGlobalPhase measures the paper's global phase at scale: a single
// Proposed-only cell on the geo5dc-large preset. The serial variant pins
// Parallelism to 1 — no intra-cell sharding, so gains over older commits
// isolate the pruned peak-coincidence kernel — and the parallel variant
// lends the cell the full GOMAXPROCS budget, so the same slots additionally
// scale across the intra-cell shards (embedding passes, k-means distances,
// fine plans, workload compilation). Reported: simulated slots per second
// and the cell's cost, which must be identical across both variants.
//
// When GEOVMP_BENCH_GLOBAL_JSON names a path, the parallel variant writes
// its headline numbers there (CI uploads it as BENCH_global.json).
func BenchmarkGlobalPhase(b *testing.B) {
	run := func(b *testing.B, parallelism int, fast bool) (costEUR, slotsPerSec float64) {
		b.Helper()
		spec := benchLargeSpec()
		spec.FastMath = fast
		slots := float64(spec.Horizon.Slots)
		for i := 0; i < b.N; i++ {
			set, err := NewExperiment(
				WithScenarios(spec),
				WithPolicies(StandardPolicies(0.9)[:1]...),
				WithParallelism(parallelism),
			).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			costEUR = float64(set.At(0, 0, 0).Result.OpCost)
		}
		slotsPerSec = slots * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(slotsPerSec, "slots/s")
		b.ReportMetric(costEUR, "eur-proposed")
		return costEUR, slotsPerSec
	}
	var serialCost, serialFastCost float64
	var parSlotsPerSec, parCost float64
	b.Run("serial", func(b *testing.B) {
		serialCost, _ = run(b, 1, false)
	})
	b.Run("serial-fast", func(b *testing.B) {
		serialFastCost, _ = run(b, 1, true)
	})
	b.Run("parallel", func(b *testing.B) {
		parCost, parSlotsPerSec = run(b, 0, false)
		if serialCost != 0 && parCost != serialCost {
			b.Fatalf("parallel cost %v != serial cost %v — sharding changed results", parCost, serialCost)
		}
	})
	b.Run("parallel-fast", func(b *testing.B) {
		cost, slotsPerSec := run(b, 0, true)
		// Fast mode is approximate versus exact, but must stay
		// deterministic across worker counts.
		if serialFastCost != 0 && cost != serialFastCost {
			b.Fatalf("parallel-fast cost %v != serial-fast cost %v — sharding changed results", cost, serialFastCost)
		}
		if path := os.Getenv("GEOVMP_BENCH_GLOBAL_JSON"); path != "" && b.N > 0 {
			artifact := struct {
				Benchmark       string  `json:"benchmark"`
				N               int     `json:"n"`
				SlotsPerSec     float64 `json:"slots_per_sec"`
				FastSlotsPerSec float64 `json:"fast_slots_per_sec"`
				ProposedEUR     float64 `json:"policy_cost_eur_proposed"`
				FastProposedEUR float64 `json:"fast_policy_cost_eur_proposed"`
				NsPerOp         float64 `json:"ns_per_op"`
			}{
				Benchmark:       "BenchmarkGlobalPhase/parallel",
				N:               b.N,
				SlotsPerSec:     parSlotsPerSec,
				FastSlotsPerSec: slotsPerSec,
				ProposedEUR:     parCost,
				FastProposedEUR: cost,
				NsPerOp:         float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			}
			writeBenchJSON(b, path, artifact)
		}
	})
}
