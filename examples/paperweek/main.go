// Paperweek reproduces the paper's full evaluation: all four placement
// methods over a one-week horizon, regenerating Table I and Figures 1-6.
// The four runs execute concurrently on the experiment engine.
//
//	go run ./examples/paperweek            # 5% fleet, fast
//	go run ./examples/paperweek -scale 1   # the paper's 3000-server fleet
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"geovmp"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fleet scale relative to Table I")
	seed := flag.Uint64("seed", 42, "experiment seed")
	fineStep := flag.Float64("finestep", 60, "green controller step (paper: 5s)")
	flag.Parse()

	spec := geovmp.NewSpec("paper-week",
		geovmp.WithScale(*scale),
		geovmp.WithSeed(*seed),
		geovmp.WithHorizon(geovmp.Week()),
		geovmp.WithFineStep(*fineStep),
	)

	fmt.Printf("simulating one week, 4 policies in parallel, scale %.3g ...\n", *scale)
	start := time.Now()
	set, err := geovmp.NewExperiment(
		geovmp.WithScenarios(spec),
		geovmp.WithPolicies(geovmp.StandardPolicies(0.9)...),
		geovmp.WithProgress(func(p geovmp.Progress) {
			fmt.Printf("  [%d/%d] %s done\n", p.Done, p.Total, p.Cell.Policy)
		}),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %s\n\n", time.Since(start).Round(time.Second))

	results := make([]*geovmp.Result, 0, len(set.Policies))
	for pi := range set.Policies {
		results = append(results, set.At(0, pi, 0).Result)
	}

	// Regenerate the paper's figures from the results.
	sc, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, fig := range geovmp.Figures(sc, results) {
		// Fig. 2's full hourly table is long; print only its chart summary.
		if fig.ID == "fig2" {
			fmt.Printf("== FIG2: %s ==\n%s\n", fig.Title, fig.Chart)
			continue
		}
		fmt.Println(fig.Render())
	}
	fmt.Print(geovmp.Summarize(results))
}
