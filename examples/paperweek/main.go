// Paperweek reproduces the paper's full evaluation: all four placement
// methods over a one-week horizon, regenerating Table I and Figures 1-6.
//
//	go run ./examples/paperweek            # 5% fleet, fast
//	go run ./examples/paperweek -scale 1   # the paper's 3000-server fleet
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"geovmp"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fleet scale relative to Table I")
	seed := flag.Uint64("seed", 42, "experiment seed")
	fineStep := flag.Float64("finestep", 60, "green controller step (paper: 5s)")
	flag.Parse()

	spec := geovmp.Spec{
		Scale:       *scale,
		Seed:        *seed,
		Horizon:     geovmp.Week(),
		FineStepSec: *fineStep,
	}

	fmt.Printf("simulating one week, 4 policies, scale %.3g ...\n", *scale)
	start := time.Now()
	results, err := geovmp.Compare(spec, geovmp.AllPolicies(0.9, *seed)...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %s\n\n", time.Since(start).Round(time.Second))

	// Regenerate the paper's figures from the results.
	sc, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, fig := range geovmp.Figures(sc, results) {
		// Fig. 2's full hourly table is long; print only its chart summary.
		if fig.ID == "fig2" {
			fmt.Printf("== FIG2: %s ==\n%s\n", fig.Title, fig.Chart)
			continue
		}
		fmt.Println(fig.Render())
	}
	fmt.Print(geovmp.Summarize(results))
}
