// Quickstart: compare the paper's proposed multi-objective VM placement
// against one baseline on a laptop-sized replica of the DATE'16 scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geovmp"
)

func main() {
	// A 3% replica of the paper's Table I fleet (45/30/15 servers in
	// Lisbon, Zurich and Helsinki) over one simulated day. Everything is
	// deterministic in the seed.
	spec := geovmp.Spec{
		Scale:       0.03,
		Seed:        7,
		Horizon:     geovmp.Days(1),
		FineStepSec: 60,
	}

	// geovmp.Compare evaluates each policy on an identical fresh replica of
	// the scenario: same VM traces, same network error draws, same initial
	// battery charge.
	results, err := geovmp.Compare(spec,
		geovmp.Proposed(0.9, spec.Seed), // the paper's two-phase controller
		geovmp.EnerAware(),              // Kim et al. DATE'13 baseline
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one-day comparison, 3% of the paper's fleet:")
	fmt.Println()
	fmt.Print(geovmp.Summarize(results))

	prop, ener := results[0], results[1]
	fmt.Printf("\nProposed saves %.1f%% operational cost vs Ener-aware (%.2f vs %.2f EUR)\n",
		(1-float64(prop.OpCost)/float64(ener.OpCost))*100,
		float64(prop.OpCost), float64(ener.OpCost))
	fmt.Printf("worst-case response: %.2f s vs %.2f s\n",
		prop.RespSummary.Max(), ener.RespSummary.Max())
}
