// Quickstart: compare the paper's proposed multi-objective VM placement
// against one baseline on a laptop-sized replica of the DATE'16 scenario,
// using the experiment engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"geovmp"
)

func main() {
	// A 3% replica of the paper's Table I fleet (45/30/15 servers in
	// Lisbon, Zurich and Helsinki) over one simulated day. Everything is
	// deterministic in the seed.
	spec := geovmp.NewSpec("quickstart",
		geovmp.WithScale(0.03),
		geovmp.WithSeed(7),
		geovmp.WithHorizon(geovmp.Days(1)),
		geovmp.WithFineStep(60),
	)

	// The engine evaluates each policy on an identical fresh replica of
	// the scenario — same VM traces, same network error draws, same
	// initial battery charge — with the cells running in parallel.
	set, err := geovmp.NewExperiment(
		geovmp.WithScenarios(spec),
		geovmp.WithPolicies(geovmp.StandardPolicies(0.9)[:2]...), // Proposed + Ener-aware
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	prop := set.At(0, 0, 0).Result
	ener := set.At(0, 1, 0).Result
	fmt.Println("one-day comparison, 3% of the paper's fleet:")
	fmt.Println()
	fmt.Print(geovmp.Summarize([]*geovmp.Result{prop, ener}))

	fmt.Printf("\nProposed saves %.1f%% operational cost vs Ener-aware (%.2f vs %.2f EUR)\n",
		(1-float64(prop.OpCost)/float64(ener.OpCost))*100,
		float64(prop.OpCost), float64(ener.OpCost))
	fmt.Printf("worst-case response: %.2f s vs %.2f s\n",
		prop.RespSummary.Max(), ener.RespSummary.Max())
}
