// Greenenergy examines the energy-source side of the system: how much of
// the fleet's demand each policy serves from photovoltaics, battery and
// grid, and what the battery arbitrage is worth. It reproduces the paper's
// claim that the proposed capacity caps "reduce the DCs' dependency on grid
// energy".
//
//	go run ./examples/greenenergy
package main

import (
	"fmt"
	"log"

	"geovmp"
)

func main() {
	spec := geovmp.Spec{
		Scale:       0.04,
		Seed:        3,
		Horizon:     geovmp.Days(3),
		FineStepSec: 60,
	}

	results, err := geovmp.Compare(spec, geovmp.AllPolicies(0.9, spec.Seed)...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("three-day energy sourcing per policy:")
	fmt.Println()
	fmt.Println("method      demand(kWh)  grid(kWh)  PV-used(kWh)  PV-lost(kWh)  battery(kWh)  grid share")
	fmt.Println("----------  -----------  ---------  ------------  ------------  ------------  ----------")
	for _, r := range results {
		demand := r.TotalEnergy.KWh()
		gridShare := 0.0
		if demand > 0 {
			gridShare = r.GridEnergy.KWh() / demand
		}
		fmt.Printf("%-10s  %11.1f  %9.1f  %12.1f  %12.1f  %12.1f  %9.1f%%\n",
			r.Policy, demand, r.GridEnergy.KWh(), r.RenewableUsed.KWh(),
			r.RenewableLost.KWh(), r.BatteryOut.KWh(), gridShare*100)
	}

	prop := results[0]
	fmt.Printf("\nthe proposed caps steer load toward sunny and cheap sites:\n")
	fmt.Printf("  PV harvested: %.1f kWh (%.1f kWh of potential lost)\n",
		prop.RenewableUsed.KWh(), prop.RenewableLost.KWh())
	fmt.Printf("  battery supplied %.1f kWh during peak-tariff windows\n", prop.BatteryOut.KWh())
	fmt.Printf("  operational cost: %.2f EUR over %d slots\n",
		float64(prop.OpCost), prop.CostSeries.Len())
}
