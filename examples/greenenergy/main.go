// Greenenergy examines the energy-source side of the system: how much of
// the fleet's demand each policy serves from photovoltaics, battery and
// grid, and what the battery arbitrage is worth. One experiment grid runs
// two scenarios — the paper's world and its battery-free preset — under
// all four policies, reproducing the paper's claim that the proposed
// capacity caps "reduce the DCs' dependency on grid energy".
//
//	go run ./examples/greenenergy
package main

import (
	"context"
	"fmt"
	"log"

	"geovmp"
)

func main() {
	common := []geovmp.ScenarioOption{
		geovmp.WithScale(0.04),
		geovmp.WithSeed(3),
		geovmp.WithHorizon(geovmp.Days(3)),
		geovmp.WithFineStep(60),
	}
	withBattery := geovmp.NewSpec("with-battery", common...)
	noBattery := geovmp.NewSpec("no-battery",
		append(common, geovmp.WithBatteryScale(geovmp.BatteryZero))...)

	set, err := geovmp.NewExperiment(
		geovmp.WithScenarios(withBattery, noBattery),
		geovmp.WithPolicies(geovmp.StandardPolicies(0.9)...),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	for si, scName := range set.Scenarios {
		fmt.Printf("three-day energy sourcing per policy (%s):\n\n", scName)
		fmt.Println("method      demand(kWh)  grid(kWh)  PV-used(kWh)  PV-lost(kWh)  battery(kWh)  grid share")
		fmt.Println("----------  -----------  ---------  ------------  ------------  ------------  ----------")
		for pi, polName := range set.Policies {
			r := set.At(si, pi, 0).Result
			demand := r.TotalEnergy.KWh()
			gridShare := 0.0
			if demand > 0 {
				gridShare = r.GridEnergy.KWh() / demand
			}
			fmt.Printf("%-10s  %11.1f  %9.1f  %12.1f  %12.1f  %12.1f  %9.1f%%\n",
				polName, demand, r.GridEnergy.KWh(), r.RenewableUsed.KWh(),
				r.RenewableLost.KWh(), r.BatteryOut.KWh(), gridShare*100)
		}
		fmt.Println()
	}

	prop := set.At(0, 0, 0).Result
	propNoBatt := set.At(1, 0, 0).Result
	fmt.Printf("the proposed caps steer load toward sunny and cheap sites:\n")
	fmt.Printf("  PV harvested: %.1f kWh (%.1f kWh of potential lost)\n",
		prop.RenewableUsed.KWh(), prop.RenewableLost.KWh())
	fmt.Printf("  battery supplied %.1f kWh during peak-tariff windows\n", prop.BatteryOut.KWh())
	fmt.Printf("  operational cost: %.2f EUR with batteries vs %.2f EUR without\n",
		float64(prop.OpCost), float64(propNoBatt.OpCost))
}
