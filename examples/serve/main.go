// Serving mode: replay the geo5dc-dynamic workload through the online
// placement daemon as a stream of observe/depart/place events, read the
// decision-latency percentiles off the daemon's metrics board, then score
// the same serving decision path inside the batch simulator to measure
// its cost drift against the offline Proposed controller — what switching
// from nightly batch placement to per-arrival serving costs.
//
//	go run ./examples/serve
package main

import (
	"fmt"
	"log"
	"runtime"

	"geovmp"
)

func main() {
	spec := geovmp.MustPreset("geo5dc-dynamic")
	spec.Scale = 0.02
	spec.Seed = 7
	spec.Horizon = geovmp.Days(1)
	spec.FineStepSec = 300
	sc, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1 — latency under load: derive the daemon event log from the
	// workload (per slot: one telemetry observation, then departures, then
	// arrivals) and replay it at full request parallelism. Decisions are
	// sequenced, so the stream is deterministic regardless of workers.
	events := geovmp.EventsFromWorkload(sc.Workload, spec.Horizon, 12)
	d, err := geovmp.NewDaemon(sc, geovmp.DaemonOptions{})
	if err != nil {
		log.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	decisions := d.Replay(events, workers)

	placed := 0
	for i, ev := range events {
		if ev.Kind == geovmp.EvPlace && decisions[i].Latency > 0 {
			placed++
		}
	}
	snap := d.Board().Snapshot()
	lat := snap.Hists["serve_decision_latency"]
	opt := d.Options()
	fmt.Printf("replayed %d events (%d placements, %d workers)\n", len(events), placed, workers)
	fmt.Printf("decision latency: p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms  (SLO %v)\n",
		lat.P50NS/1e6, lat.P90NS/1e6, lat.P99NS/1e6, float64(lat.MaxNS)/1e6, opt.SLO)
	fmt.Printf("overflows %d  reconciles %d  residents %d\n",
		snap.Counters["serve_overflows_total"], snap.Counters["serve_reconciles_total"], d.NumResidents())

	// Part 2 — cost drift vs the batch engine: drive a fresh daemon from
	// inside the simulator (ServePolicy adapts it to the per-slot Policy
	// interface) and compare against the offline Proposed controller on
	// the identical scenario. The daemon never migrates and decides per
	// arrival with local refinement only, so some drift is the price of
	// online serving; the reconciler keeps it bounded.
	d2, err := geovmp.NewDaemon(sc, geovmp.DaemonOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results, err := geovmp.Compare(spec, geovmp.ServePolicy(d2), geovmp.Proposed(0.9, spec.Seed))
	if err != nil {
		log.Fatal(err)
	}
	serveR, batchR := results[0], results[1]
	drift := (float64(serveR.OpCost) - float64(batchR.OpCost)) / float64(batchR.OpCost) * 100
	fmt.Printf("\noperational cost: serve %.2f EUR vs batch %.2f EUR (drift %+.1f%%)\n",
		float64(serveR.OpCost), float64(batchR.OpCost), drift)
	fmt.Printf("energy: serve %.4f GJ vs batch %.4f GJ; worst resp %.2f s vs %.2f s\n",
		serveR.TotalEnergy.GJ(), batchR.TotalEnergy.GJ(),
		serveR.RespSummary.Max(), batchR.RespSummary.Max())
}
