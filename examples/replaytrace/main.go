// Replaytrace shows the trace-replay workflow: export a workload to the CSV
// replay format, load it back (exactly how real data-center traces would be
// fed in), run the proposed controller on it, and render the final
// embedding plane — one dot per VM, colored by the data center it ended up
// in — as an SVG.
//
//	go run ./examples/replaytrace
package main

import (
	"fmt"
	"log"
	"os"
)

import "geovmp"

func main() {
	spec := geovmp.Spec{
		Scale:       0.03,
		Seed:        21,
		Horizon:     geovmp.Days(1),
		FineStepSec: 300,
	}

	// 1. Export the synthetic workload in the replay CSV format. Real
	// production traces go into the same three files: vms.csv,
	// profiles.csv, volumes.csv.
	sc, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "geovmp-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := geovmp.ExportWorkload(sc.Workload, dir, spec.Horizon, 12); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported workload to %s\n", dir)

	// 2. Load it back and install it into a fresh scenario.
	replayed, err := geovmp.LoadWorkload(dir)
	if err != nil {
		log.Fatal(err)
	}
	scReplay, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	scReplay.Workload = replayed

	// 3. Run the proposed controller on the replayed trace.
	ctrl := geovmp.Proposed(0.9, spec.Seed)
	res, err := geovmp.Run(scReplay, ctrl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed run: cost=%.2f EUR, energy=%.4f GJ, %d migrations\n",
		float64(res.OpCost), res.TotalEnergy.GJ(), res.Migrations)

	// 4. Render the final embedding plane, colored by each VM's final DC.
	svg := geovmp.EmbeddingSVG(ctrl, "VM embedding, colored by final DC",
		func(id int) int { return res.FinalPlacement[id] },
		[]string{"DC1-Lisbon", "DC2-Zurich", "DC3-Helsinki"})
	out := "embedding.svg"
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d VMs) — open it in a browser\n", out, len(res.FinalPlacement))
}
