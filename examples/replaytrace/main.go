// Replaytrace shows the trace-replay workflow: export a workload to the CSV
// replay format, load it back (exactly how real data-center traces would be
// fed in), run the proposed controller on it through the experiment engine
// via the WithWorkload scenario option, and render the final embedding
// plane — one dot per VM, colored by the data center it ended up in — as an
// SVG.
//
//	go run ./examples/replaytrace
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"geovmp"
)

func main() {
	common := []geovmp.ScenarioOption{
		geovmp.WithScale(0.03),
		geovmp.WithSeed(21),
		geovmp.WithHorizon(geovmp.Days(1)),
		geovmp.WithFineStep(300),
	}
	spec := geovmp.NewSpec("synthetic", common...)

	// 1. Export the synthetic workload in the replay CSV format. Real
	// production traces go into the same three files: vms.csv,
	// profiles.csv, volumes.csv.
	sc, err := geovmp.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "geovmp-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := geovmp.ExportWorkload(sc.Workload, dir, spec.Horizon, 12); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported workload to %s\n", dir)

	// 2. Load it back and declare a scenario that replays it.
	replayed, err := geovmp.LoadWorkload(dir)
	if err != nil {
		log.Fatal(err)
	}
	replaySpec := geovmp.NewSpec("replayed",
		append(common, geovmp.WithWorkload(replayed))...)

	// 3. Run the proposed controller on the replayed trace, keeping a
	// handle on the instance the engine builds so we can render its
	// embedding afterwards.
	var ctrl *geovmp.ProposedController
	set, err := geovmp.NewExperiment(
		geovmp.WithScenarios(replaySpec),
		geovmp.WithPolicies(geovmp.NewPolicySpec("Proposed",
			func(seed uint64) geovmp.Policy {
				ctrl = geovmp.Proposed(0.9, seed)
				return ctrl
			})),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	res := set.At(0, 0, 0).Result
	fmt.Printf("replayed run: cost=%.2f EUR, energy=%.4f GJ, %d migrations\n",
		float64(res.OpCost), res.TotalEnergy.GJ(), res.Migrations)

	// 4. Render the final embedding plane, colored by each VM's final DC.
	svg := geovmp.EmbeddingSVG(ctrl, "VM embedding, colored by final DC",
		func(id int) int { return res.FinalPlacement[id] },
		[]string{"DC1-Lisbon", "DC2-Zurich", "DC3-Helsinki"})
	out := "embedding.svg"
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d VMs) — open it in a browser\n", out, len(res.FinalPlacement))
}
