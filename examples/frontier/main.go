// Frontier shows knee-point selection on the rolling-horizon geo5dc-dynamic
// preset: when no stakeholder hands you an alpha, resolve the trade-off
// frontier adaptively and deploy the knee — the compromise configuration
// where giving up response time stops buying meaningful cost. The run
// explores three objectives at once (cost, energy, p95 response), writes
// the FrontierSet JSON for downstream tooling, and renders the front as an
// SVG.
//
//	go run ./examples/frontier
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"geovmp"
)

func main() {
	spec := geovmp.MustPreset("geo5dc-dynamic")
	spec.Scale = 0.02
	spec.Seed = 11
	spec.Horizon = geovmp.Days(1)
	spec.FineStepSec = 300

	fs, err := geovmp.NewFrontier(
		geovmp.FrontierScenarios(spec),
		geovmp.FrontierObjectives(
			geovmp.CostObjective(),
			geovmp.EnergyObjective(),
			geovmp.P95RespObjective(),
		),
		geovmp.FrontierPointBudget(9),
		geovmp.FrontierCoarseGrid(4),
		geovmp.FrontierSeeds(2),
		geovmp.FrontierBaselines(
			geovmp.NewPolicySpec("Pareto-search", func(seed uint64) geovmp.Policy {
				return geovmp.ParetoSearch(seed)
			}),
		),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	sf := fs.Scenarios[0]
	fmt.Print(geovmp.FrontierFigure(sf).Render())
	fmt.Println()

	knee := sf.KneePoint()
	if knee == nil {
		log.Fatal("empty frontier")
	}
	fmt.Printf("deploy the knee: %s\n", knee.Name)
	for i, obj := range sf.Objectives {
		fmt.Printf("  %-12s %.4f\n", obj, knee.V[i])
	}
	fmt.Printf("(%d evaluations in %d waves; %d points on the front)\n",
		sf.Evals, sf.Waves, len(sf.Front))

	if err := fs.WriteJSON("frontier.json"); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("frontier.svg", []byte(geovmp.FrontierSVG(sf)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote frontier.json and frontier.svg")
}
