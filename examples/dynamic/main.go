// Dynamic placement: run the rolling-horizon epoch engine over a workload
// whose class mix and load shift during the day, and read the per-epoch
// breakdown — migrations executed, migration energy and downtime charged,
// cost and energy per epoch.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"

	"geovmp"
)

func main() {
	// The five-site dynamic preset, shrunk to laptop size: the synthetic
	// class mix walks from interactive- to batch-heavy across four epochs
	// and arrivals wave with the afternoon peak. WithEpochs(4) makes the
	// engine re-optimize the placement at each regime boundary
	// (warm-started from the carried embedding); the migration budget caps
	// executed moves per epoch and prices each move's transfer energy and
	// downtime into the results.
	spec := geovmp.MustPreset("geo5dc-dynamic")
	spec.Scale = 0.02
	spec.Seed = 7
	spec.Horizon = geovmp.Days(1)
	spec.FineStepSec = 300
	spec.Migration = geovmp.MigrationBudget{MaxMovesPerEpoch: 150}

	set, err := geovmp.NewExperiment(
		geovmp.WithScenarios(spec),
		geovmp.WithPolicies(geovmp.StandardPolicies(0.9)[:2]...), // Proposed + Ener-aware
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	for pi, name := range set.Policies {
		r := set.At(0, pi, 0).Result
		fmt.Printf("%s: %.2f EUR, %.4f GJ, worst resp %.2f s — %d migrations (%d rejected), %.3f kWh + %.1f s charged to moves\n",
			name, float64(r.OpCost), r.TotalEnergy.GJ(), r.RespSummary.Max(),
			r.Migrations, r.MigRejected, r.MigEnergy.KWh(), r.MigDowntimeSec)
		for _, es := range r.Epochs {
			fmt.Printf("  epoch %d [%02d:00-%02d:00): %6.2f EUR  %.4f GJ  %3d moves  %3d rejected  %6.1f GB moved\n",
				es.Epoch, es.StartSlot, es.EndSlot, float64(es.Cost), es.Energy.GJ(),
				es.Migrations, es.MigRejected, es.MigratedBytes.GB())
		}
	}

	// The same per-epoch rows travel in the ResultSet JSON export
	// (cells[].epochs), so downstream tooling sees them too.
	js, err := set.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJSON export: %d bytes (per-epoch rows included)\n", len(js))
}
