// Tradeoff sweeps the proposed controller's alpha — the Eq. 5 weighting
// between data-correlation attraction (performance) and CPU-load-correlation
// repulsion (energy) — and prints the cost/energy/response frontier the
// paper explores in Figures 5 and 6.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"geovmp"
)

func main() {
	spec := geovmp.Spec{
		Scale:       0.04,
		Seed:        11,
		Horizon:     geovmp.Days(2),
		FineStepSec: 60,
	}

	fmt.Println("alpha   cost(EUR)  energy(GJ)  worst-resp(s)  mean-resp(s)  cross-DC(GB)")
	fmt.Println("-----   ---------  ----------  -------------  ------------  ------------")
	var results []*geovmp.Result
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res, err := geovmp.Compare(spec, geovmp.Proposed(alpha, spec.Seed))
		if err != nil {
			log.Fatal(err)
		}
		r := res[0]
		results = append(results, r)
		fmt.Printf("%.1f     %9.2f  %10.4f  %13.2f  %12.2f  %12.1f\n",
			alpha, float64(r.OpCost), r.TotalEnergy.GJ(),
			r.RespSummary.Max(), r.RespSummary.Mean(), r.CrossBytes.GB())
	}

	// The baselines frame the frontier: Net-aware anchors the performance
	// end, Ener-aware the energy end.
	base, err := geovmp.Compare(spec, geovmp.NetAware(), geovmp.EnerAware())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, r := range base {
		fmt.Printf("%-10s cost=%.2f energy=%.4fGJ worst-resp=%.2fs\n",
			r.Policy, float64(r.OpCost), r.TotalEnergy.GJ(), r.RespSummary.Max())
	}
	fmt.Println("\nhigher alpha -> tighter data locality -> better response;")
	fmt.Println("lower alpha  -> stronger peak separation in the plane (energy side).")
}
