// Tradeoff resolves the cost/response frontier the paper explores in
// Figures 5 and 6 — but instead of a hand-picked alpha grid it drives the
// adaptive Frontier API: a coarse sweep of the Eq. 5 weighting first, then
// refinement waves that bisect the alpha intervals spanning the largest
// hypervolume gaps, so the evaluation budget concentrates where the
// trade-off actually bends. Three baselines frame the front: Net-aware
// anchors the performance end, Ener-aware the energy end, and the
// Pareto-search metaheuristic competes with the controller point for
// point. Every refinement wave reuses the scenario's compiled workload —
// the whole frontier compiles it once per seed.
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"geovmp"
)

func main() {
	spec := geovmp.NewSpec("tradeoff",
		geovmp.WithScale(0.04),
		geovmp.WithSeed(11),
		geovmp.WithHorizon(geovmp.Days(2)),
		geovmp.WithFineStep(60),
	)

	fs, err := geovmp.NewFrontier(
		geovmp.FrontierScenarios(spec),
		geovmp.FrontierObjectives(geovmp.CostObjective(), geovmp.MeanRespObjective()),
		geovmp.FrontierPointBudget(11),
		geovmp.FrontierCoarseGrid(5),
		geovmp.FrontierBaselines(
			geovmp.NewPolicySpec("Pareto-search", func(seed uint64) geovmp.Policy {
				return geovmp.ParetoSearch(seed)
			}),
			geovmp.NewPolicySpec("Net-aware", func(uint64) geovmp.Policy { return geovmp.NetAware() }),
			geovmp.NewPolicySpec("Ener-aware", func(uint64) geovmp.Policy { return geovmp.EnerAware() }),
		),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	sf := fs.Scenarios[0]
	fmt.Print(geovmp.FrontierFigure(sf).Render())
	fmt.Println()
	if knee := sf.KneePoint(); knee != nil {
		fmt.Printf("knee of the front: %s (cost %.2f EUR, mean resp %.2f s)\n",
			knee.Name, knee.V[0], knee.V[1])
	}
	fmt.Printf("front resolved with %d evaluations in %d waves (hypervolume %.4g, spread %.3f)\n",
		sf.Evals, sf.Waves, sf.Hypervolume, sf.Spread)
	fmt.Println("\nhigher alpha -> tighter data locality -> better response;")
	fmt.Println("lower alpha  -> stronger peak separation in the plane (energy side).")
}
