// Tradeoff sweeps the proposed controller's alpha — the Eq. 5 weighting
// between data-correlation attraction (performance) and CPU-load-correlation
// repulsion (energy) — and prints the cost/energy/response frontier the
// paper explores in Figures 5 and 6. The whole frontier is one experiment
// grid: seven policy variants (five alphas plus two framing baselines)
// evaluated concurrently on identical scenario replicas.
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"geovmp"
)

func main() {
	spec := geovmp.NewSpec("tradeoff",
		geovmp.WithScale(0.04),
		geovmp.WithSeed(11),
		geovmp.WithHorizon(geovmp.Days(2)),
		geovmp.WithFineStep(60),
	)

	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pols := make([]geovmp.PolicySpec, 0, len(alphas)+2)
	for _, a := range alphas {
		pols = append(pols, geovmp.NewPolicySpec(fmt.Sprintf("alpha=%.1f", a),
			func(seed uint64) geovmp.Policy { return geovmp.Proposed(a, seed) }))
	}
	// The baselines frame the frontier: Net-aware anchors the performance
	// end, Ener-aware the energy end.
	pols = append(pols,
		geovmp.NewPolicySpec("Net-aware", func(uint64) geovmp.Policy { return geovmp.NetAware() }),
		geovmp.NewPolicySpec("Ener-aware", func(uint64) geovmp.Policy { return geovmp.EnerAware() }),
	)

	set, err := geovmp.NewExperiment(
		geovmp.WithScenarios(spec),
		geovmp.WithPolicies(pols...),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("alpha   cost(EUR)  energy(GJ)  worst-resp(s)  mean-resp(s)  cross-DC(GB)")
	fmt.Println("-----   ---------  ----------  -------------  ------------  ------------")
	for i, a := range alphas {
		r := set.At(0, i, 0).Result
		fmt.Printf("%.1f     %9.2f  %10.4f  %13.2f  %12.2f  %12.1f\n",
			a, float64(r.OpCost), r.TotalEnergy.GJ(),
			r.RespSummary.Max(), r.RespSummary.Mean(), r.CrossBytes.GB())
	}
	fmt.Println()
	for pi := len(alphas); pi < len(pols); pi++ {
		r := set.At(0, pi, 0).Result
		fmt.Printf("%-10s cost=%.2f energy=%.4fGJ worst-resp=%.2fs\n",
			set.Policies[pi], float64(r.OpCost), r.TotalEnergy.GJ(), r.RespSummary.Max())
	}
	fmt.Println("\nhigher alpha -> tighter data locality -> better response;")
	fmt.Println("lower alpha  -> stronger peak separation in the plane (energy side).")
}
