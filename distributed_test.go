package geovmp

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// distWorkers connects n in-process workers to the coordinator and returns
// a wait function that blocks until they have all drained.
func distWorkers(ctx context.Context, t *testing.T, coord *Coordinator, n int) func() {
	t.Helper()
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		go func() {
			done <- RunDistWorker(ctx, DistWorkerConfig{
				Coordinator: coord.URL(),
				Name:        name,
				Parallelism: 1,
				Poll:        10 * time.Millisecond,
			})
		}()
	}
	return func() {
		for i := 0; i < n; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("dist worker: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Errorf("dist worker %d did not drain", i)
				return
			}
		}
	}
}

// TestRunDistributedMatchesRun: the public API round trip — the same
// Experiment, run in-process and through a coordinator with two workers,
// exports byte-identical JSON.
func TestRunDistributedMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is not -short sized")
	}
	exp := func() *Experiment {
		spec := MustPreset("paper-geo3dc")
		spec.Scale = 0.01
		spec.Seed = 7
		spec.Horizon = HoursOf(4)
		spec.FineStepSec = 300
		return NewExperiment(
			WithScenarios(spec),
			WithPolicies(StandardPolicies(0.9)...),
			WithSeeds(2),
		)
	}
	ctx := context.Background()
	set, err := exp().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}

	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	wctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	wait := distWorkers(wctx, t, coord, 2)

	dset, err := exp().RunDistributed(wctx, coord)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RunDistributed JSON differs from Run JSON")
	}

	coord.Finish()
	wait()
}

// TestFrontierRunnerMatchesInProcess: the adaptive frontier scheduled
// through a dist coordinator resolves byte-identically to the in-process
// driver — waves, refinement decisions and all.
func TestFrontierRunnerMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed frontier is not -short sized")
	}
	spec := MustPreset("paper-geo3dc")
	spec.Scale = 0.01
	spec.Seed = 7
	spec.Horizon = HoursOf(4)
	spec.FineStepSec = 300

	baseline, err := NewRefPolicySpec("Pareto-search", PolicyRef{Kind: "paretosearch"})
	if err != nil {
		t.Fatal(err)
	}
	mkOpts := func(extra ...FrontierOption) []FrontierOption {
		return append([]FrontierOption{
			FrontierScenarios(spec),
			FrontierObjectives(CostObjective(), MeanRespObjective()),
			FrontierPointBudget(6),
			FrontierCoarseGrid(3),
			FrontierWaveSize(2),
			FrontierBaselines(baseline),
		}, extra...)
	}

	ctx := context.Background()
	fs, err := NewFrontier(mkOpts()...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fs.JSON()
	if err != nil {
		t.Fatal(err)
	}

	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	wctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	wait := distWorkers(wctx, t, coord, 2)

	dfs, err := NewFrontier(mkOpts(FrontierRunner(coord))...).Run(wctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dfs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed frontier JSON differs from in-process frontier JSON:\n--- dist\n%.1500s\n--- local\n%.1500s", got, want)
	}

	coord.Finish()
	wait()
}

// TestFrontierRunnerRejectsUnportableSetups: objectives without row
// extractors and knobs without wire forms fail up front, not mid-sweep.
func TestFrontierRunnerRejectsUnportableSetups(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if _, err := NewFrontier(
		FrontierObjectives(CostObjective(), P95RespObjective()),
		FrontierRunner(coord),
	).Run(context.Background()); err == nil {
		t.Fatal("distributed frontier accepted an objective without OfRow")
	}

	if _, err := NewFrontier(
		FrontierKnob("custom", 0, 1, func(t float64, seed uint64) Policy { return Proposed(t, seed) }),
		FrontierRunner(coord),
	).Run(context.Background()); err == nil {
		t.Fatal("distributed frontier accepted a knob without a wire form")
	}
}
