package geovmp

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// runGrid executes the reference facade grid at the given parallelism.
func runGrid(t *testing.T, parallelism int) *ResultSet {
	t.Helper()
	set, err := NewExperiment(
		WithScenarios(
			NewSpec("base", WithScale(0.01), WithSeed(5), WithHorizon(HoursOf(6)), WithFineStep(300)),
			NewSpec("tight-qos", WithScale(0.01), WithSeed(5), WithHorizon(HoursOf(6)), WithFineStep(300), WithQoS(0.999)),
		),
		WithPolicies(StandardPolicies(0.9)...),
		WithSeeds(3),
		WithParallelism(parallelism),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestExperimentParallelEqualsSerialAndLegacy is the tentpole acceptance
// check: a 2-scenario x 4-policy x 3-seed grid run concurrently returns
// results in deterministic grid order identical to the serial run, and the
// cells agree with what the legacy Compare path produces.
func TestExperimentParallelEqualsSerialAndLegacy(t *testing.T) {
	serial := runGrid(t, 1)
	parallel := runGrid(t, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel grid differs from serial grid")
	}
	js, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatal("JSON export not byte-identical between parallelism 1 and 8")
	}

	// Legacy equivalence: Compare on the matching spec must reproduce the
	// corresponding grid cells exactly.
	legacy, err := Compare(
		Spec{Name: "base", Scale: 0.01, Seed: 6, Horizon: HoursOf(6), FineStepSec: 300},
		AllPolicies(0.9, 6)...)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range parallel.Policies {
		cell := parallel.At(0, pi, 1) // scenario "base", seed 5+1
		if !reflect.DeepEqual(cell.Result, legacy[pi]) {
			t.Fatalf("engine cell (base, %s, seed 6) differs from legacy Compare", parallel.Policies[pi])
		}
	}
}

// TestExperimentDefaultsToPaperGrid asserts the zero experiment runs the
// paper's evaluation.
func TestExperimentDefaultsToPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("default grid runs the four policies")
	}
	set, err := NewExperiment(
		WithScenarios(Spec{Scale: 0.01, Seed: 5, Horizon: HoursOf(4), FineStepSec: 300}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Proposed", "Ener-aware", "Pri-aware", "Net-aware"}
	if !reflect.DeepEqual(set.Policies, want) {
		t.Fatalf("default policies = %v, want %v", set.Policies, want)
	}
	if set.Scenarios[0] != "paper-geo3dc" {
		t.Fatalf("default scenario = %q", set.Scenarios[0])
	}
}

// TestExperimentCancellation cancels after the first completed cell and
// expects a prompt partial-error return through the facade.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set, err := NewExperiment(
		WithScenarios(Spec{Scale: 0.01, Seed: 5, Horizon: HoursOf(6), FineStepSec: 300}),
		WithPolicies(StandardPolicies(0.9)...),
		WithSeeds(3),
		WithParallelism(1),
		WithProgress(func(p Progress) {
			if p.Done == 1 {
				cancel()
			}
		}),
	).Run(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled wrapper", err)
	}
	if set == nil {
		t.Fatal("cancelled run returned no partial set")
	}
	completed := 0
	for i := range set.Cells {
		if set.Cells[i].Result != nil {
			completed++
		}
	}
	if completed == 0 || completed == len(set.Cells) {
		t.Fatalf("completed = %d of %d, want a strict subset", completed, len(set.Cells))
	}
}

// TestPresetsAndCustomSites exercises the scenario-diversity surface: the
// preset registry, a custom site list with a derived mesh topology, and
// the workload-mix override.
func TestPresetsAndCustomSites(t *testing.T) {
	names := PresetNames()
	for _, want := range []string{"paper-geo3dc", "paper-geo3dc-nobattery", "geo5dc"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("preset %q missing from %v", want, names)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset did not error")
	}

	five := MustPreset("geo5dc")
	five.Scale = 0.02
	five.Seed = 9
	five.Horizon = HoursOf(4)
	five.FineStepSec = 300
	sc, err := NewScenario(five)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Fleet) != 5 {
		t.Fatalf("geo5dc fleet = %d DCs, want 5", len(sc.Fleet))
	}
	if sc.Topo.N != 5 {
		t.Fatalf("geo5dc topology N = %d, want 5", sc.Topo.N)
	}
	if err := sc.Topo.Validate(); err != nil {
		t.Fatalf("geo5dc topology invalid: %v", err)
	}
	if _, err := Run(sc, EnerAware()); err != nil {
		t.Fatalf("geo5dc run failed: %v", err)
	}

	// A custom two-site fleet with an HPC-heavy mix and warmup disabled.
	spec := NewSpec("duo",
		WithScale(1),
		WithSeed(3),
		WithHorizon(HoursOf(4)),
		WithFineStep(300),
		WithSites(
			Site{Name: "north", Servers: 8, PVkWp: 2, LatDeg: 60, LonDeg: 25, UTCOffsetHours: 2, MeanTempC: 2},
			Site{Name: "south", Servers: 8, PVkWp: 4, BattKWh: 10, LatDeg: 38, LonDeg: -9, MeanTempC: 18},
		),
		WithClassWeights(0.1, 0.1, 0.7, 0.1),
		WithWarmupSlots(-1),
		WithProfileSamples(6),
	)
	sc2, err := NewScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc2.Fleet) != 2 || sc2.Topo.N != 2 {
		t.Fatalf("custom fleet/topology size wrong: %d DCs, topo %d", len(sc2.Fleet), sc2.Topo.N)
	}
	if sc2.Topo.DistanceM[0][1] < 2000e3 || sc2.Topo.DistanceM[0][1] > 5000e3 {
		t.Fatalf("derived Helsinki-Lisbon distance %v m implausible", sc2.Topo.DistanceM[0][1])
	}
	res, err := Run(sc2, NetAware())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "duo" {
		t.Fatalf("scenario name = %q, want duo", res.Scenario)
	}
	if res.CostSeries.Len() != 4 {
		t.Fatalf("warmup disabled should measure all 4 slots, got %d", res.CostSeries.Len())
	}
}

// TestGridAndSpecValidation covers the error paths of the new surface:
// duplicate scenario names, degenerate workload mixes and unknown cities
// must fail loudly instead of producing silently-wrong sweeps.
func TestGridAndSpecValidation(t *testing.T) {
	small := func(name string) Spec {
		return Spec{Name: name, Scale: 0.01, Seed: 5, Horizon: HoursOf(2), FineStepSec: 300}
	}
	if _, err := NewExperiment(
		WithScenarios(small("dup"), small("dup")),
		WithPolicies(StandardPolicies(0.9)[:1]...),
	).Run(context.Background()); err == nil || !strings.Contains(err.Error(), "duplicate scenario") {
		t.Fatalf("duplicate scenario names: err = %v", err)
	}
	if _, err := NewScenario(NewSpec("bad-mix", WithClassWeights(0, 0, 0, 0))); err == nil {
		t.Fatal("all-zero class weights did not error")
	}
	if _, err := NewScenario(NewSpec("bad-mix-len", WithClassWeights(1, 1))); err == nil {
		t.Fatal("short class-weight vector did not error")
	}
	if _, err := NewScenario(NewSpec("bad-city", WithSites(
		Site{Name: "x", Servers: 4, City: "Lisbon"}, // tuned cities are lower-case
	))); err == nil || !strings.Contains(err.Error(), "unknown city") {
		t.Fatal("unknown City did not error")
	}
}

// TestResultSetAccessors covers grouping and the JSON export surface via
// the facade aliases.
func TestResultSetAccessors(t *testing.T) {
	set := runGrid(t, 4)
	if got := len(set.Results("base", "Proposed")); got != 3 {
		t.Fatalf("Results = %d, want 3", got)
	}
	byScenario := set.Group(func(c *ResultCell) string { return c.Scenario })
	if len(byScenario) != 2 || len(byScenario["tight-qos"]) != 12 {
		t.Fatalf("grouping by scenario wrong: %d groups, tight-qos=%d", len(byScenario), len(byScenario["tight-qos"]))
	}
	fig := set.Aggregate("tight-qos")
	if !strings.Contains(fig.Title, "tight-qos") {
		t.Fatalf("aggregate title %q missing scenario", fig.Title)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("aggregate rows = %d, want 4", len(fig.Rows))
	}
	b, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tight-qos"`, `"cost_eur"`, `"Net-aware"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("JSON export missing %s", want)
		}
	}
}
