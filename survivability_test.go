package geovmp

import (
	"context"
	"slices"
	"testing"
)

// faultySpec reduces the geo5dc-faulty preset to test size and swaps in the
// given storage layout. Scale and horizon are chosen so the measured window
// (slots 6..15 after the default warmup) covers both the Milan DC outage
// (slots 6-8) and the degraded-capacity tail (through slot 12).
func faultySpec(t *testing.T, name string, st StorageConfig) Spec {
	t.Helper()
	spec, err := Preset("geo5dc-faulty")
	if err != nil {
		t.Fatalf("Preset(geo5dc-faulty): %v", err)
	}
	spec.Name = name
	spec.Scale = 0.01
	spec.Horizon = HoursOf(16)
	spec.FineStepSec = 300
	spec.Storage = st
	return spec
}

func runSurvivability(t *testing.T, spec Spec) *Result {
	t.Helper()
	sc, err := NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario(%s): %v", spec.Name, err)
	}
	res, err := Run(sc, Proposed(0.5, 1))
	if err != nil {
		t.Fatalf("Run(%s): %v", spec.Name, err)
	}
	return res
}

// TestSurvivabilityAcceptance pins the PR's headline claim: under the
// reference outage schedule on geo5dc-faulty, erasure-coded placement has a
// lower data-loss risk than 2-way replication at the same 2.0x storage
// overhead, both emit repair traffic, and disabling storage leaves the
// durability metrics at zero while the fault schedule still forces
// evacuations.
func TestSurvivabilityAcceptance(t *testing.T) {
	rep := StorageConfig{Scheme: StorageReplicated, Replicas: 2}
	era := StorageConfig{Scheme: StorageErasure, K: 2, M: 2}
	if ro, eo := rep.Overhead(), era.Overhead(); ro != 2.0 || eo != 2.0 {
		t.Fatalf("storage overheads differ: replicated %.2f, erasure %.2f", ro, eo)
	}

	none := runSurvivability(t, faultySpec(t, "faulty-none", StorageConfig{}))
	repRes := runSurvivability(t, faultySpec(t, "faulty-rep", rep))
	eraRes := runSurvivability(t, faultySpec(t, "faulty-era", era))

	if none.DataLossProb != 0 || none.RepairBytes != 0 {
		t.Errorf("no-storage run must report zero durability metrics, got loss=%v repair=%v",
			none.DataLossProb, none.RepairBytes)
	}
	if none.Evacuations+none.StrandedVMSlots == 0 {
		t.Errorf("reference outage schedule produced no evacuations or stranded slots")
	}
	if repRes.DataLossProb <= 0 {
		t.Errorf("replicated data-loss probability = %v, want > 0", repRes.DataLossProb)
	}
	if eraRes.DataLossProb <= 0 {
		t.Errorf("erasure data-loss probability = %v, want > 0", eraRes.DataLossProb)
	}
	if eraRes.DataLossProb >= repRes.DataLossProb {
		t.Errorf("erasure loss risk %v not below replication %v at equal overhead",
			eraRes.DataLossProb, repRes.DataLossProb)
	}
	if repRes.RepairBytes <= 0 || eraRes.RepairBytes <= 0 {
		t.Errorf("repair traffic missing: replicated %v, erasure %v",
			repRes.RepairBytes, eraRes.RepairBytes)
	}
}

// TestSurvivabilityFrontier pins the second half of the acceptance
// criterion: the repair-bandwidth objective participates in a 3-objective
// frontier over the faulty scenario and carries a positive value on the
// resolved front.
func TestSurvivabilityFrontier(t *testing.T) {
	spec := faultySpec(t, "faulty-frontier", StorageConfig{Scheme: StorageErasure, K: 2, M: 2})
	fr := NewFrontier(
		FrontierScenarios(spec),
		FrontierObjectives(CostObjective(), DataLossObjective(), RepairBandwidthObjective()),
		FrontierPointBudget(3),
		FrontierSeeds(1),
		FrontierParallelism(2),
	)
	fs, err := fr.Run(context.Background())
	if err != nil {
		t.Fatalf("frontier run: %v", err)
	}
	sf := fs.Scenario("faulty-frontier")
	if sf == nil {
		t.Fatalf("frontier set missing scenario, have %v", fs.Scenarios)
	}
	idx := slices.Index(sf.Objectives, "repair_gb")
	if idx < 0 {
		t.Fatalf("repair_gb objective missing from frontier objectives %v", sf.Objectives)
	}
	lossIdx := slices.Index(sf.Objectives, "data_loss_prob")
	if lossIdx < 0 {
		t.Fatalf("data_loss_prob objective missing from frontier objectives %v", sf.Objectives)
	}
	if len(sf.Front) == 0 {
		t.Fatalf("frontier front is empty")
	}
	for _, pi := range sf.Front {
		p := sf.Points[pi]
		if p.V[idx] <= 0 {
			t.Errorf("front point %s has non-positive repair_gb %v", p.Name, p.V[idx])
		}
	}
}
