package storage

import (
	"math"
	"reflect"
	"testing"
)

func TestOverhead(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64
	}{
		{Config{}, 1},
		{Config{Scheme: SchemeReplicated}, 2},
		{Config{Scheme: SchemeReplicated, Replicas: 3}, 3},
		{Config{Scheme: SchemeErasure}, 2},
		{Config{Scheme: SchemeErasure, K: 4, M: 2}, 1.5},
	}
	for _, tc := range cases {
		if got := tc.cfg.Overhead(); got != tc.want {
			t.Errorf("%+v Overhead() = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"replicated default", Config{Scheme: SchemeReplicated}, true},
		{"erasure default", Config{Scheme: SchemeErasure}, true},
		{"single replica", Config{Scheme: SchemeReplicated, Replicas: 1}, false},
		{"negative replicas", Config{Scheme: SchemeReplicated, Replicas: -2}, false},
		{"replicas exceed fleet", Config{Scheme: SchemeReplicated, Replicas: 6}, false},
		{"negative k", Config{Scheme: SchemeErasure, K: -1, M: 2}, false},
		{"negative m", Config{Scheme: SchemeErasure, K: 2, M: -1}, false},
		{"stripe exceeds fleet", Config{Scheme: SchemeErasure, K: 3, M: 3}, false},
		{"nan volume", Config{Scheme: SchemeReplicated, VolumeGBPerVM: nan}, false},
		{"inf volume", Config{Scheme: SchemeReplicated, VolumeGBPerVM: math.Inf(1)}, false},
		{"negative volume", Config{Scheme: SchemeReplicated, VolumeGBPerVM: -1}, false},
		{"negative group size", Config{Scheme: SchemeReplicated, GroupSize: -1}, false},
		{"negative repair slots", Config{Scheme: SchemeReplicated, RepairSlots: -1}, false},
		{"unknown scheme", Config{Scheme: Scheme(9)}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(5)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestNilModel(t *testing.T) {
	if m := NewModel(Config{}, 4); m != nil {
		t.Fatalf("disabled config compiled to a model")
	}
	var m *Model
	st := m.Assess([]int{1, 2}, []bool{true}, nil, nil)
	if st != (SlotStats{}) {
		t.Fatalf("nil model Assess = %+v, want zero", st)
	}
}

type flow struct {
	from, to int
	gb       float64
}

func collect(dst *[]flow) func(int, int, float64) {
	return func(from, to int, gb float64) {
		*dst = append(*dst, flow{from, to, gb})
	}
}

// TestReplicatedLossAndRepair pins the R=2 math on one group over 4 DCs:
// shards of group 0 sit on DC0 and DC1 (ring placement). With DC0 down
// and half of DC1's servers lost, the loss probability is exactly 0.5,
// and the single rebuild reads the surviving copy from DC1 toward DC2
// (first ring DC past the stripe) spread over 2 repair slots.
func TestReplicatedLossAndRepair(t *testing.T) {
	m := NewModel(Config{Scheme: SchemeReplicated, Replicas: 2}, 4)
	ids := []int{0, 1, 2, 3} // one group (default GroupSize 4)
	down := []bool{true, false, false, false}
	capFrac := []float64{0, 0.5, 1, 1}

	var flows []flow
	st := m.Assess(ids, down, capFrac, collect(&flows))
	if st.Groups != 1 {
		t.Fatalf("Groups = %d, want 1", st.Groups)
	}
	if math.Abs(st.LossProb-0.5) > 1e-12 {
		t.Errorf("LossProb = %v, want 0.5", st.LossProb)
	}
	// groupGB = 4 VMs × 8 GB = 32; needK = 1 so shardGB = 32; spread
	// over the default 2 repair slots → one 16 GB flow DC1→DC2.
	want := []flow{{1, 2, 16}}
	if !reflect.DeepEqual(flows, want) {
		t.Errorf("repair flows = %v, want %v", flows, want)
	}
	if st.RepairGB != 16 {
		t.Errorf("RepairGB = %v, want 16", st.RepairGB)
	}
}

// TestErasureRepair pins RS(2,1) over 4 DCs: the stripe of group 0 sits
// on DC0..DC2, rebuilding DC0's shard needs K=2 reads from DC1 and DC2
// toward the substitute DC3.
func TestErasureRepair(t *testing.T) {
	m := NewModel(Config{Scheme: SchemeErasure, K: 2, M: 1}, 4)
	ids := []int{0, 1, 2, 3}
	down := []bool{true, false, false, false}

	var flows []flow
	st := m.Assess(ids, down, nil, collect(&flows))
	// One shard lost of a tol=1 stripe and healthy survivors: no loss.
	if st.LossProb != 0 {
		t.Errorf("LossProb = %v, want 0", st.LossProb)
	}
	// shardGB = 32/2 = 16, per-slot 8, two reads.
	want := []flow{{1, 3, 8}, {2, 3, 8}}
	if !reflect.DeepEqual(flows, want) {
		t.Errorf("repair flows = %v, want %v", flows, want)
	}
	if st.RepairGB != 16 {
		t.Errorf("RepairGB = %v, want 16", st.RepairGB)
	}
}

// TestErasureBeatsReplicationAtEqualOverhead pins the analytic claim the
// acceptance test observes end-to-end: at 2.0× overhead and independent
// per-DC unavailability p < 1/3, RS(2,2) loses data less often than R=2
// (4p³-3p⁴ < p²).
func TestErasureBeatsReplicationAtEqualOverhead(t *testing.T) {
	rep := NewModel(Config{Scheme: SchemeReplicated, Replicas: 2}, 4)
	era := NewModel(Config{Scheme: SchemeErasure, K: 2, M: 2}, 4)
	ids := []int{0, 1, 2, 3}
	p := 0.2
	capFrac := []float64{1 - p, 1 - p, 1 - p, 1 - p}
	down := []bool{false, false, false, false}

	rl := rep.Assess(ids, down, capFrac, nil).LossProb
	el := era.Assess(ids, down, capFrac, nil).LossProb
	if math.Abs(rl-p*p) > 1e-12 {
		t.Errorf("replicated loss = %v, want p² = %v", rl, p*p)
	}
	wantEra := 4*math.Pow(p, 3)*(1-p) + math.Pow(p, 4)
	if math.Abs(el-wantEra) > 1e-12 {
		t.Errorf("erasure loss = %v, want %v", el, wantEra)
	}
	if el >= rl {
		t.Errorf("erasure loss %v not below replication %v at p=%v", el, rl, p)
	}
}

func TestNoRiskEarlyOut(t *testing.T) {
	m := NewModel(Config{Scheme: SchemeReplicated, Replicas: 2}, 4)
	var flows []flow
	st := m.Assess([]int{0, 1, 2, 3}, []bool{false, false, false, false},
		[]float64{1, 1, 1, 1}, collect(&flows))
	if st.LossProb != 0 || st.RepairGB != 0 || len(flows) != 0 {
		t.Errorf("healthy slot produced loss %v repair %v flows %v",
			st.LossProb, st.RepairGB, flows)
	}
}

func TestSubstituteExhausted(t *testing.T) {
	// RS(2,2) over exactly 4 DCs: every DC hosts a shard, so when one is
	// down there is no spare destination and repair is skipped — the
	// loss term carries the damage instead.
	m := NewModel(Config{Scheme: SchemeErasure, K: 2, M: 2}, 4)
	var flows []flow
	st := m.Assess([]int{0, 1, 2, 3}, []bool{true, false, false, false}, nil, collect(&flows))
	if len(flows) != 0 || st.RepairGB != 0 {
		t.Errorf("repair emitted with no substitute available: %v (%v GB)", flows, st.RepairGB)
	}
}

func TestAssessOrderInvariance(t *testing.T) {
	m := NewModel(Config{Scheme: SchemeErasure, K: 2, M: 1, GroupSize: 2}, 5)
	down := []bool{true, false, false, false, false}
	capFrac := []float64{0, 0.9, 1, 0.8, 1}
	a := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b := []int{7, 2, 5, 0, 6, 3, 1, 4}

	var fa, fb []flow
	sa := m.Assess(a, down, capFrac, collect(&fa))
	sb := m.Assess(b, down, capFrac, collect(&fb))
	if sa != sb {
		t.Errorf("stats differ under id permutation: %+v vs %+v", sa, sb)
	}
	if !reflect.DeepEqual(fa, fb) {
		t.Errorf("repair flows differ under id permutation: %v vs %v", fa, fb)
	}
}
