// Package storage models durable data placement for VM volumes: VMs are
// grouped into placement groups whose data is kept either as full
// replicas or as a Reed-Solomon RS(k,m) stripe, with shards spread over
// the data centers on a fixed ring. When the fault schedule takes a DC
// down, the model answers two questions each slot:
//
//   - data-loss risk: the probability that some group has more shards
//     unavailable than its code tolerates, computed analytically from
//     the per-DC unavailability (1 for a down DC, the failed-server
//     fraction otherwise), and
//   - repair traffic: the inter-DC flows needed to rebuild the shards
//     that sit on down DCs, emitted into the cross-DC volume matrix so
//     repair competes with user traffic in the network model.
//
// Shard placement is a pure function of the group index, independent of
// where the VMs themselves run, so the model never feeds back into VM
// placement decisions and stays deterministic under any policy.
package storage

import (
	"fmt"
	"math"
	"sort"
)

// Scheme selects the redundancy code.
type Scheme int

// Redundancy schemes.
const (
	// SchemeNone disables the storage model.
	SchemeNone Scheme = iota
	// SchemeReplicated keeps Replicas full copies per group.
	SchemeReplicated
	// SchemeErasure keeps an RS(K,M) stripe: K data + M parity shards,
	// any K of the K+M suffice.
	SchemeErasure
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeReplicated:
		return "replicated"
	case SchemeErasure:
		return "erasure"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Config declares the data-placement model. The zero value disables it.
type Config struct {
	Scheme Scheme `json:"scheme,omitempty"`
	// Replicas is the copy count for SchemeReplicated. Zero selects 2.
	Replicas int `json:"replicas,omitempty"`
	// K and M are the RS data/parity shard counts for SchemeErasure.
	// Zero K selects 2; zero M selects 2.
	K int `json:"k,omitempty"`
	M int `json:"m,omitempty"`
	// VolumeGBPerVM is each VM's logical volume size. Zero selects 8.
	VolumeGBPerVM float64 `json:"volume_gb_per_vm,omitempty"`
	// GroupSize is the number of VM ids per placement group. Zero
	// selects 4.
	GroupSize int `json:"group_size,omitempty"`
	// RepairSlots spreads one shard rebuild over this many slots of
	// repair traffic. Zero selects 2.
	RepairSlots int `json:"repair_slots,omitempty"`
}

// Enabled reports whether the storage model is active.
func (c Config) Enabled() bool { return c.Scheme != SchemeNone }

// Validate checks the config against a fleet of n DCs. NaN sizes,
// non-positive replica counts and codes wider than the fleet (a stripe
// needs k+m distinct DCs) are rejected.
func (c Config) Validate(n int) error {
	switch c.Scheme {
	case SchemeNone:
		return nil
	case SchemeReplicated:
		if c.Replicas < 0 || c.Replicas == 1 {
			return fmt.Errorf("storage: replicas %d must be >= 2", c.Replicas)
		}
		if r := c.replicas(); r > n {
			return fmt.Errorf("storage: %d replicas need %d DCs, fleet has %d", r, r, n)
		}
	case SchemeErasure:
		if c.K < 0 || c.M < 0 {
			return fmt.Errorf("storage: negative code RS(%d,%d)", c.K, c.M)
		}
		if k, m := c.code(); k+m > n {
			return fmt.Errorf("storage: RS(%d,%d) needs %d DCs, fleet has %d", k, m, k+m, n)
		}
	default:
		return fmt.Errorf("storage: unknown scheme %d", int(c.Scheme))
	}
	if c.VolumeGBPerVM != 0 && !(c.VolumeGBPerVM > 0 && !math.IsInf(c.VolumeGBPerVM, 1)) {
		return fmt.Errorf("storage: volume_gb_per_vm %v out of range", c.VolumeGBPerVM)
	}
	if c.GroupSize < 0 {
		return fmt.Errorf("storage: negative group_size %d", c.GroupSize)
	}
	if c.RepairSlots < 0 {
		return fmt.Errorf("storage: negative repair_slots %d", c.RepairSlots)
	}
	return nil
}

func (c Config) replicas() int {
	if c.Replicas >= 2 {
		return c.Replicas
	}
	return 2
}

func (c Config) code() (k, m int) {
	k, m = c.K, c.M
	if k <= 0 {
		k = 2
	}
	if m <= 0 {
		m = 2
	}
	return k, m
}

func (c Config) volumeGB() float64 {
	if c.VolumeGBPerVM > 0 {
		return c.VolumeGBPerVM
	}
	return 8
}

func (c Config) groupSize() int {
	if c.GroupSize > 0 {
		return c.GroupSize
	}
	return 4
}

func (c Config) repairSlots() int {
	if c.RepairSlots > 0 {
		return c.RepairSlots
	}
	return 2
}

// Overhead returns the storage blow-up factor: stored bytes per logical
// byte (R for replication, (k+m)/k for erasure, 1 when disabled). The
// acceptance comparison pits schemes at equal overhead.
func (c Config) Overhead() float64 {
	switch c.Scheme {
	case SchemeReplicated:
		return float64(c.replicas())
	case SchemeErasure:
		k, m := c.code()
		return float64(k+m) / float64(k)
	}
	return 1
}

// Model is a compiled storage layout over n DCs.
type Model struct {
	cfg     Config
	n       int
	shards  int // shards per group (R, or k+m)
	needK   int // shards that must survive (1 for replication, k for RS)
	tol     int // tolerated simultaneous shard losses
	groupSz int
	volGB   float64
	repSl   int

	counts map[int]int // scratch: active VMs per group
	gids   []int       // scratch: sorted group ids
	dist   []float64   // scratch: loss-count DP row
}

// NewModel compiles the config for a fleet of n DCs. It returns nil
// for a disabled config so callers can gate on the pointer.
func NewModel(cfg Config, n int) *Model {
	if !cfg.Enabled() || n <= 0 {
		return nil
	}
	m := &Model{
		cfg:     cfg,
		n:       n,
		groupSz: cfg.groupSize(),
		volGB:   cfg.volumeGB(),
		repSl:   cfg.repairSlots(),
		counts:  map[int]int{},
	}
	switch cfg.Scheme {
	case SchemeReplicated:
		r := cfg.replicas()
		m.shards, m.needK, m.tol = r, 1, r-1
	case SchemeErasure:
		k, mm := cfg.code()
		m.shards, m.needK, m.tol = k+mm, k, mm
	}
	m.dist = make([]float64, m.shards+1)
	return m
}

// shardDC places shard j of group g: a fixed ring keeps the stripe on
// distinct DCs and spreads load evenly across the fleet.
func (m *Model) shardDC(g, j int) int { return (g + j) % m.n }

// SlotStats is one slot's durability assessment.
type SlotStats struct {
	// Groups is the number of active placement groups.
	Groups int
	// LossProb is the mean per-group probability of losing data this
	// slot, given the per-DC unavailability.
	LossProb float64
	// RepairGB is the total repair traffic emitted this slot.
	RepairGB float64
}

// Assess computes one slot's durability state. ids are the active VM
// ids (any order), down the per-DC outage flags, capFrac the remaining
// capacity fractions (used as per-shard unavailability on live DCs; nil
// means fully healthy). For every shard on a down DC, repair traffic
// toward a substitute DC is emitted through the repair callback (which
// may be nil). The assessment is deterministic: groups are visited in
// ascending id order.
func (m *Model) Assess(ids []int, down []bool, capFrac []float64, repair func(from, to int, gb float64)) SlotStats {
	var st SlotStats
	if m == nil || len(ids) == 0 {
		return st
	}
	for k := range m.counts {
		delete(m.counts, k)
	}
	for _, id := range ids {
		m.counts[id/m.groupSz]++
	}
	m.gids = m.gids[:0]
	for g := range m.counts {
		m.gids = append(m.gids, g)
	}
	sort.Ints(m.gids)
	st.Groups = len(m.gids)

	anyDown := false
	for d := range down {
		if down[d] {
			anyDown = true
			break
		}
	}
	anyRisk := anyDown
	if !anyRisk && capFrac != nil {
		for _, f := range capFrac {
			if f < 1 {
				anyRisk = true
				break
			}
		}
	}
	if !anyRisk {
		return st
	}

	var lossSum float64
	for _, g := range m.gids {
		groupGB := float64(m.counts[g]) * m.volGB
		shardGB := groupGB / float64(m.needK)
		lossSum += m.groupLossProb(g, down, capFrac)
		if !anyDown || repair == nil {
			continue
		}
		for j := 0; j < m.shards; j++ {
			d := m.shardDC(g, j)
			if !down[d] {
				continue
			}
			dst := m.substitute(g, down)
			if dst < 0 {
				continue // nowhere to rebuild; the loss term covers it
			}
			// Rebuilding one shard reads needK surviving shards (one
			// full copy under replication, k stripe shards under RS);
			// each read flows from its host toward the substitute,
			// spread over the repair window.
			perSlot := shardGB / float64(m.repSl)
			sent := 0
			for jj := 0; jj < m.shards && sent < m.needK; jj++ {
				src := m.shardDC(g, jj)
				if down[src] || src == dst {
					continue
				}
				if repair != nil {
					repair(src, dst, perSlot)
				}
				st.RepairGB += perSlot
				sent++
			}
		}
	}
	st.LossProb = lossSum / float64(st.Groups)
	return st
}

// groupLossProb computes P(#unavailable shards > tol) for group g by
// exact dynamic programming over the per-shard unavailability: 1 on a
// down DC, the lost-capacity fraction otherwise.
func (m *Model) groupLossProb(g int, down []bool, capFrac []float64) float64 {
	dist := m.dist
	for i := range dist {
		dist[i] = 0
	}
	dist[0] = 1
	for j := 0; j < m.shards; j++ {
		d := m.shardDC(g, j)
		var p float64
		switch {
		case d < len(down) && down[d]:
			p = 1
		case capFrac != nil && d < len(capFrac):
			p = 1 - capFrac[d]
		}
		if p <= 0 {
			continue
		}
		for i := j + 1; i > 0; i-- {
			dist[i] = dist[i]*(1-p) + dist[i-1]*p
		}
		dist[0] *= 1 - p
	}
	var loss float64
	for i := m.tol + 1; i <= m.shards; i++ {
		loss += dist[i]
	}
	return loss
}

// substitute picks the rebuild destination for group g: the first ring
// DC past the stripe that is up and not already hosting a shard.
func (m *Model) substitute(g int, down []bool) int {
	for t := 0; t < m.n; t++ {
		d := (g + m.shards + t) % m.n
		if d < len(down) && down[d] {
			continue
		}
		hosts := false
		for j := 0; j < m.shards; j++ {
			if m.shardDC(g, j) == d {
				hosts = true
				break
			}
		}
		if !hosts {
			return d
		}
	}
	return -1
}
