package pareto

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Eval evaluates one wave of knob values and returns an objective vector
// per knob, aligned by index (all components minimized). The adaptive
// driver batches its refinements into waves precisely so an implementation
// backed by the experiment engine can run each wave as one grid — sharing
// compiled workloads and environments across every point of the wave.
type Eval func(knobs []float64) ([][]float64, error)

// AdaptiveConfig parameterizes the adaptive frontier driver.
type AdaptiveConfig struct {
	// Lo and Hi bound the knob range (defaults 0 and 1).
	Lo, Hi float64
	// Coarse is the size of the initial uniform grid, endpoints included
	// (default 5, minimum 2).
	Coarse int
	// Budget is the total number of knob evaluations, the coarse grid
	// included (default 2*Coarse; a budget below Coarse shrinks the grid).
	// The driver never exceeds it; it may stop under it when every
	// remaining interval is narrower than MinGap.
	Budget int
	// WaveSize caps how many refinement points are scheduled per wave
	// (default 4). Larger waves give the engine more cells to run
	// concurrently; smaller waves re-target more often.
	WaveSize int
	// MinGap is the narrowest knob interval the driver will bisect. The
	// default scales with the range — (Hi-Lo)/1000 — so narrow custom
	// ranges refine just as deep as the default [0, 1] instead of
	// stranding their budget.
	MinGap float64
}

func (c *AdaptiveConfig) applyDefaults() {
	if c.Hi == 0 && c.Lo == 0 {
		c.Hi = 1
	}
	switch {
	case c.Coarse <= 0:
		c.Coarse = 5
	case c.Coarse == 1:
		c.Coarse = 2 // the documented minimum: an interval to bisect
	}
	// Only an unset budget gets a default; an explicit budget below the
	// coarse grid is honored by clamping the grid (Adaptive does), never by
	// silently evaluating more points than the caller asked for.
	if c.Budget <= 0 {
		c.Budget = 2 * c.Coarse
	}
	if c.WaveSize < 1 {
		c.WaveSize = 4
	}
	if c.MinGap <= 0 {
		c.MinGap = (c.Hi - c.Lo) / 1000
	}
}

// AdaptiveResult is the driver's outcome: every evaluated knob in ascending
// order with its objective vector, and how many waves it took.
type AdaptiveResult struct {
	Knobs  []float64
	Values [][]float64
	Waves  int
}

// KnobDecimals picks a display precision for a knob range: four decimals
// for ranges of order one, plus one per leading zero of a narrower range —
// enough to keep rendered knob values unique down to the adaptive driver's
// minimum bisection spacing of (hi-lo)/2000. Labels, report tables and CSV
// exports share it so no surface collapses distinct knobs.
func KnobDecimals(lo, hi float64) int {
	d := 4
	if span := hi - lo; span > 0 && span < 1 {
		d += int(math.Ceil(-math.Log10(span)))
	}
	return d
}

// UniformGrid returns n evenly spaced knobs over [lo, hi], endpoints
// included — the fixed-grid baseline the adaptive driver is benchmarked
// against, and its own first wave.
func UniformGrid(lo, hi float64, n int) []float64 {
	if n < 1 {
		return nil
	}
	if n == 1 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Adaptive resolves a trade-off frontier over a scalar knob by spending an
// evaluation budget where the front is least resolved. Wave 0 is a coarse
// uniform grid; every later wave bisects the knob intervals whose endpoint
// objective vectors span the largest normalized hypervolume gap — the
// axis-aligned box between the two vectors, scaled by the current objective
// ranges — provided at least one endpoint sits on the current Pareto front.
// Intervals between two dominated points cannot move the front and are only
// bisected once nothing better remains.
//
// The schedule is deterministic: interval scores are pure functions of the
// evaluated set, ties break toward the lower knob, and each wave's points
// are handed to eval in ascending order.
func Adaptive(cfg AdaptiveConfig, eval Eval) (*AdaptiveResult, error) {
	cfg.applyDefaults()
	if cfg.Hi <= cfg.Lo {
		return nil, fmt.Errorf("pareto: adaptive knob range [%v, %v] is empty", cfg.Lo, cfg.Hi)
	}
	res := &AdaptiveResult{}
	evalWave := func(knobs []float64) error {
		if len(knobs) == 0 {
			return nil
		}
		vals, err := eval(knobs)
		if err != nil {
			return err
		}
		if len(vals) != len(knobs) {
			return fmt.Errorf("pareto: eval returned %d vectors for %d knobs", len(vals), len(knobs))
		}
		res.Knobs = append(res.Knobs, knobs...)
		res.Values = append(res.Values, vals...)
		res.Waves++
		// Keep ascending by knob: refinements interleave into the grid.
		order := make([]int, len(res.Knobs))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return res.Knobs[order[a]] < res.Knobs[order[b]] })
		knobsSorted := make([]float64, len(order))
		valsSorted := make([][]float64, len(order))
		for i, j := range order {
			knobsSorted[i] = res.Knobs[j]
			valsSorted[i] = res.Values[j]
		}
		res.Knobs, res.Values = knobsSorted, valsSorted
		return nil
	}

	coarse := cfg.Coarse
	if coarse > cfg.Budget {
		coarse = cfg.Budget
	}
	if err := evalWave(UniformGrid(cfg.Lo, cfg.Hi, coarse)); err != nil {
		return nil, err
	}

	for len(res.Knobs) < cfg.Budget {
		want := cfg.Budget - len(res.Knobs)
		if want > cfg.WaveSize {
			want = cfg.WaveSize
		}
		next := nextWave(res, cfg.MinGap, want)
		if len(next) == 0 {
			break // every interval is resolved down to MinGap
		}
		if err := evalWave(next); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// nextWave picks up to want bisection midpoints from the current evaluated
// set: the knob intervals with the largest frontier gap scores, each wider
// than minGap.
func nextWave(res *AdaptiveResult, minGap float64, want int) []float64 {
	n := len(res.Knobs)
	if n < 2 || want < 1 {
		return nil
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Name: fmt.Sprintf("k%06d", i), V: res.Values[i]}
	}
	ranks := Ranks(pts)

	// Objective ranges over the evaluated set normalize the gap boxes so no
	// objective's units dominate the score. NaN values are excluded — as in
	// Reference and normalize — so one NaN point cannot poison an
	// objective's span and silently drop it from every gap score.
	d := len(res.Values[0])
	span := make([]float64, d)
	for k := 0; k < d; k++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range res.Values {
			if v := res.Values[i][k]; !math.IsNaN(v) {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		span[k] = hi - lo
	}

	type gap struct {
		mid   float64
		score float64
	}
	var gaps []gap
	for i := 0; i+1 < n; i++ {
		width := res.Knobs[i+1] - res.Knobs[i]
		if width <= minGap {
			continue
		}
		// The gap score is the normalized volume of the box spanned by the
		// two endpoint vectors — the hypervolume the front could gain (or
		// lose to a hole) inside this interval. Intervals not touching the
		// current front are deferred: bisecting them cannot extend the
		// front. The knob width joins as a tiny tiebreaker so flat regions
		// still resolve widest-first.
		vol := 1.0
		for k := 0; k < d; k++ {
			if edge := math.Abs(res.Values[i+1][k] - res.Values[i][k]); span[k] > 0 && !math.IsNaN(edge) {
				vol *= edge / span[k]
			}
		}
		score := vol + 1e-9*width
		if ranks[i] != 0 && ranks[i+1] != 0 {
			score *= 1e-6
		}
		gaps = append(gaps, gap{mid: res.Knobs[i] + width/2, score: score})
	}
	if len(gaps) == 0 {
		return nil
	}
	slices.SortStableFunc(gaps, func(a, b gap) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		case a.mid < b.mid:
			return -1
		case a.mid > b.mid:
			return 1
		}
		return 0
	})
	if len(gaps) > want {
		gaps = gaps[:want]
	}
	mids := make([]float64, len(gaps))
	for i, g := range gaps {
		mids[i] = g.mid
	}
	slices.Sort(mids)
	return mids
}
