// Package pareto is the multi-objective frontier subsystem behind the
// public geovmp.Frontier API: dominance and non-dominated sorting over
// arbitrary objective vectors, the quality indicators the multi-criteria
// placement literature reports (hypervolume, spread), knee-point selection,
// and the adaptive frontier driver that spends an evaluation budget where
// the front is least resolved (adaptive.go).
//
// Everything minimizes: callers flip signs for maximized quantities before
// handing vectors in. All algorithms are deterministic — the fronts, the
// indicator values and the drivers' wave schedules are pure functions of the
// input multiset, never of input order, map iteration or goroutine timing —
// which is what lets frontier results be pinned by golden files.
package pareto

import (
	"math"
	"slices"
)

// Point is one evaluated solution: a display name, an objective vector (all
// minimized) and the caller's index for mapping sort results back.
type Point struct {
	// Name labels the point in reports and breaks ordering ties, so it
	// should be unique within a set ("alpha=0.5000", "Net-aware").
	Name string
	// V is the objective vector, all components minimized.
	V []float64
}

// Dominates reports whether a Pareto-dominates b under minimization: a is
// no worse in every component and strictly better in at least one. Vectors
// of different lengths never dominate each other; NaN components never
// dominate and are never dominated (a NaN is "no information", not a win).
func Dominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	better := false
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			return false
		}
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// compareLex orders points by objective vector lexicographically, then by
// name — a total order on distinctly-named points, so every sort below is a
// pure function of the point multiset rather than of input order.
func compareLex(a, b *Point) int {
	n := min(len(a.V), len(b.V))
	for i := 0; i < n; i++ {
		switch {
		case a.V[i] < b.V[i]:
			return -1
		case a.V[i] > b.V[i]:
			return 1
		}
	}
	switch {
	case len(a.V) < len(b.V):
		return -1
	case len(a.V) > len(b.V):
		return 1
	}
	switch {
	case a.Name < b.Name:
		return -1
	case a.Name > b.Name:
		return 1
	}
	return 0
}

// NonDominatedSort partitions pts into non-domination ranks: fronts[0] are
// the Pareto-optimal points, fronts[1] the points dominated only by
// fronts[0], and so on (the fast-non-dominated-sort layering of NSGA-II).
// Each front holds indexes into pts ordered lexicographically by objective
// vector then name, so the result is deterministic under any permutation of
// the input.
func NonDominatedSort(pts []Point) (fronts [][]int) {
	n := len(pts)
	if n == 0 {
		return nil
	}
	// Canonical processing order makes the within-front ordering (and every
	// float comparison sequence) permutation-invariant.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return compareLex(&pts[a], &pts[b]) })

	rank := make([]int, n) // -1 while unranked
	for i := range rank {
		rank[i] = -1
	}
	remaining := n
	for level := 0; remaining > 0; level++ {
		// Peel: a point joins this level iff no still-unranked point
		// dominates it.
		var front []int
		for _, i := range order {
			if rank[i] >= 0 {
				continue
			}
			dominated := false
			for _, j := range order {
				if rank[j] == -1 && j != i && Dominates(pts[j].V, pts[i].V) {
					dominated = true
					break
				}
			}
			if !dominated {
				front = append(front, i)
			}
		}
		if len(front) == 0 {
			// Mutual non-comparability should always yield a non-empty
			// front; NaN-laden vectors are the only way here. Sweep them
			// into one final front rather than looping forever.
			for _, i := range order {
				if rank[i] == -1 {
					front = append(front, i)
				}
			}
		}
		for _, i := range front {
			rank[i] = level
		}
		remaining -= len(front)
		fronts = append(fronts, front)
	}
	return fronts
}

// Ranks returns each point's non-domination rank (0 = Pareto-optimal),
// aligned with pts.
func Ranks(pts []Point) []int {
	ranks := make([]int, len(pts))
	for level, front := range NonDominatedSort(pts) {
		for _, i := range front {
			ranks[i] = level
		}
	}
	return ranks
}

// Frontier returns the indexes of the Pareto-optimal points of pts, ordered
// lexicographically by objective vector then name.
func Frontier(pts []Point) []int {
	fronts := NonDominatedSort(pts)
	if len(fronts) == 0 {
		return nil
	}
	return fronts[0]
}

// Reference derives a hypervolume reference point from a point set: each
// component is the set's worst (largest) value plus margin times the
// component's range — the conventional "slightly beyond nadir" box bound. A
// zero range falls back to a small absolute offset so degenerate components
// still contribute nonzero extent. The same reference must be reused when
// comparing hypervolumes of competing sets.
func Reference(pts []Point, margin float64) []float64 {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0].V)
	ref := make([]float64, d)
	for k := 0; k < d; k++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range pts {
			v := pts[i].V[k]
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if math.IsInf(hi, -1) { // all NaN
			ref[k] = 0
			continue
		}
		span := hi - lo
		if span <= 0 {
			span = math.Max(math.Abs(hi)*1e-3, 1e-9)
		}
		ref[k] = hi + margin*span
	}
	return ref
}

// Hypervolume returns the exact Lebesgue measure of the region dominated by
// pts and bounded by the reference point ref (minimization: the union of
// boxes [v, ref] over the non-dominated points lying inside ref). Points
// with any component at or beyond ref contribute nothing. The value is
// monotone: adding a point never decreases it, and adding a non-dominated
// point strictly inside ref strictly increases it.
//
// The implementation slices along the last objective (HSO): exact for any
// dimension, and comfortably fast for the frontier sizes this repo sweeps
// (tens of points, 2-4 objectives).
func Hypervolume(pts []Point, ref []float64) float64 {
	d := len(ref)
	if d == 0 {
		return 0
	}
	var vs [][]float64
	for i := range pts {
		v := pts[i].V
		if len(v) != d {
			continue
		}
		inside := true
		for k := range v {
			if math.IsNaN(v[k]) || v[k] >= ref[k] {
				inside = false
				break
			}
		}
		if inside {
			vs = append(vs, v)
		}
	}
	return hvRec(vs, ref, d)
}

// hvRec measures the first dim objectives of vs against ref. vs components
// are all strictly inside ref.
func hvRec(vs [][]float64, ref []float64, dim int) float64 {
	if len(vs) == 0 {
		return 0
	}
	if dim == 1 {
		best := math.Inf(1)
		for _, v := range vs {
			best = math.Min(best, v[0])
		}
		return ref[0] - best
	}
	// Slice along objective dim-1: ascending sweep over the distinct values;
	// the slab between consecutive values is dominated by exactly the points
	// at or below its lower edge, measured in the remaining dimensions.
	sorted := make([][]float64, len(vs))
	copy(sorted, vs)
	slices.SortFunc(sorted, func(a, b []float64) int {
		switch {
		case a[dim-1] < b[dim-1]:
			return -1
		case a[dim-1] > b[dim-1]:
			return 1
		}
		return 0
	})
	total := 0.0
	for lo := 0; lo < len(sorted); {
		hi := lo + 1
		for hi < len(sorted) && sorted[hi][dim-1] == sorted[lo][dim-1] {
			hi++
		}
		upper := ref[dim-1]
		if hi < len(sorted) {
			upper = sorted[hi][dim-1]
		}
		thickness := upper - sorted[lo][dim-1]
		if thickness > 0 {
			total += thickness * hvRec(sorted[:hi], ref, dim-1)
		}
		lo = hi
	}
	return total
}

// normalize maps each point's objectives into [0,1] over the set's ranges
// (zero ranges map to 0). Callers pass frontier subsets so the scaling
// reflects the front, not the dominated bulk. NaN components are excluded
// from the ranges — matching Dominates/Reference/Hypervolume — and
// normalize to 1 (pessimistic), so a point with a NaN objective cannot
// poison a column or win the knee.
func normalize(pts []Point, idx []int) [][]float64 {
	if len(idx) == 0 {
		return nil
	}
	d := len(pts[idx[0]].V)
	lo := make([]float64, d)
	hi := make([]float64, d)
	for k := 0; k < d; k++ {
		lo[k], hi[k] = math.Inf(1), math.Inf(-1)
	}
	for _, i := range idx {
		for k, v := range pts[i].V {
			if math.IsNaN(v) {
				continue
			}
			lo[k] = math.Min(lo[k], v)
			hi[k] = math.Max(hi[k], v)
		}
	}
	out := make([][]float64, len(idx))
	for j, i := range idx {
		row := make([]float64, d)
		for k, v := range pts[i].V {
			switch span := hi[k] - lo[k]; {
			case math.IsNaN(v):
				row[k] = 1
			case span > 0:
				row[k] = (v - lo[k]) / span
			}
		}
		out[j] = row
	}
	return out
}

// Spread measures how evenly a frontier subset covers its extent: the mean
// absolute deviation of consecutive nearest-neighbor distances divided by
// their mean, over the normalized objective space (the distribution term of
// Deb's Delta indicator, generalized past two objectives via each point's
// nearest frontier neighbor). 0 is a perfectly uniform front; larger values
// mean clumping and holes. Fewer than three points have no spacing
// distribution and report 0.
func Spread(pts []Point, front []int) float64 {
	if len(front) < 3 {
		return 0
	}
	norm := normalize(pts, front)
	dists := make([]float64, len(norm))
	for i := range norm {
		best := math.Inf(1)
		for j := range norm {
			if i == j {
				continue
			}
			best = math.Min(best, euclid(norm[i], norm[j]))
		}
		dists[i] = best
	}
	mean := 0.0
	for _, d := range dists {
		mean += d
	}
	mean /= float64(len(dists))
	if mean <= 0 {
		return 0
	}
	dev := 0.0
	for _, d := range dists {
		dev += math.Abs(d - mean)
	}
	return dev / (mean * float64(len(dists)))
}

// Knee selects the frontier's knee point — the compromise solution the
// trade-off literature recommends when no objective weighting is given —
// and returns its index into pts (-1 for an empty front). On two-objective
// fronts it is the classic knee: the point furthest from the chord through
// the front's two extremes. In higher dimensions it is the point nearest
// the ideal corner of the normalized front (every objective at its frontier
// minimum). Ties break toward the lexicographically smaller point, keeping
// the choice deterministic.
func Knee(pts []Point, front []int) int {
	if len(front) == 0 {
		return -1
	}
	if len(front) == 1 {
		return front[0]
	}
	norm := normalize(pts, front)
	d := len(norm[0])
	bestJ := -1
	bestScore := math.Inf(-1)
	better := func(j int, score float64) bool {
		if score > bestScore {
			return true
		}
		if score < bestScore {
			return false
		}
		return bestJ >= 0 && compareLex(&pts[front[j]], &pts[front[bestJ]]) < 0
	}
	if d == 2 {
		// Extremes of the normalized front: min first objective and min
		// second objective; the knee maximizes distance below their chord.
		a, b := 0, 0
		for j := range norm {
			if norm[j][0] < norm[a][0] || (norm[j][0] == norm[a][0] && norm[j][1] < norm[a][1]) {
				a = j
			}
			if norm[j][1] < norm[b][1] || (norm[j][1] == norm[b][1] && norm[j][0] < norm[b][0]) {
				b = j
			}
		}
		ax, ay := norm[a][0], norm[a][1]
		bx, by := norm[b][0], norm[b][1]
		dx, dy := bx-ax, by-ay
		chord := math.Hypot(dx, dy)
		for j := range norm {
			var score float64
			if chord > 0 {
				// Signed distance from the chord; points toward the ideal
				// corner (below the chord) score positive.
				score = (dx*(ay-norm[j][1]) - dy*(ax-norm[j][0])) / chord
			}
			if better(j, score) {
				bestJ, bestScore = j, score
			}
		}
		return front[bestJ]
	}
	for j := range norm {
		score := -euclid(norm[j], make([]float64, d))
		if better(j, score) {
			bestJ, bestScore = j, score
		}
	}
	return front[bestJ]
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
