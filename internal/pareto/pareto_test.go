package pareto

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"geovmp/internal/rng"
)

// randPoints draws n points with d objectives in [0,1) from a seeded
// stream, named by index so orderings are total.
func randPoints(r *rng.Source, n, d int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		v := make([]float64, d)
		for k := range v {
			v[k] = r.Float64()
		}
		pts[i] = Point{Name: fmt.Sprintf("p%04d", i), V: v}
	}
	return pts
}

// TestDominanceStrictPartialOrder property-checks that Dominates is a
// strict partial order over random vectors: irreflexive, asymmetric, and
// transitive whenever the premises hold.
func TestDominanceStrictPartialOrder(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(4)
		pts := randPoints(r, 12, d)
		// Duplicates and dominated copies make the premises fire often.
		pts = append(pts, Point{Name: "dup", V: append([]float64(nil), pts[0].V...)})
		shifted := append([]float64(nil), pts[1].V...)
		shifted[0] += 0.5
		pts = append(pts, Point{Name: "dom", V: shifted})
		for i := range pts {
			if Dominates(pts[i].V, pts[i].V) {
				t.Fatalf("trial %d: %q dominates itself", trial, pts[i].Name)
			}
			for j := range pts {
				if Dominates(pts[i].V, pts[j].V) && Dominates(pts[j].V, pts[i].V) {
					t.Fatalf("trial %d: %q and %q dominate each other", trial, pts[i].Name, pts[j].Name)
				}
				for k := range pts {
					if Dominates(pts[i].V, pts[j].V) && Dominates(pts[j].V, pts[k].V) && !Dominates(pts[i].V, pts[k].V) {
						t.Fatalf("trial %d: transitivity broken at %q -> %q -> %q", trial, pts[i].Name, pts[j].Name, pts[k].Name)
					}
				}
			}
		}
	}
}

func TestDominatesEdgeCases(t *testing.T) {
	if Dominates([]float64{1, 2}, []float64{1, 2, 3}) {
		t.Fatal("mismatched lengths must not dominate")
	}
	if Dominates(nil, nil) {
		t.Fatal("empty vectors must not dominate")
	}
	if Dominates([]float64{math.NaN()}, []float64{1}) || Dominates([]float64{0}, []float64{math.NaN()}) {
		t.Fatal("NaN components must not participate in dominance")
	}
	if !Dominates([]float64{1, 1}, []float64{1, 2}) {
		t.Fatal("weakly-better-strictly-somewhere must dominate")
	}
	if Dominates([]float64{1, 2}, []float64{1, 2}) {
		t.Fatal("equal vectors must not dominate")
	}
}

// TestNonDominatedSortPermutationInvariant property-checks the determinism
// contract: sorting any permutation of a point set yields the same fronts
// with the same internal order, modulo the relabeling of indexes.
func TestNonDominatedSortPermutationInvariant(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		pts := randPoints(r, 3+r.Intn(30), 1+r.Intn(3))
		base := frontsAsNames(pts, NonDominatedSort(pts))
		perm := r.Perm(len(pts))
		shuffled := make([]Point, len(pts))
		for i, j := range perm {
			shuffled[i] = pts[j]
		}
		got := frontsAsNames(shuffled, NonDominatedSort(shuffled))
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("trial %d: fronts differ under permutation:\nbase: %v\ngot:  %v", trial, base, got)
		}
	}
}

func frontsAsNames(pts []Point, fronts [][]int) [][]string {
	out := make([][]string, len(fronts))
	for li, front := range fronts {
		for _, i := range front {
			out[li] = append(out[li], pts[i].Name)
		}
	}
	return out
}

// TestNonDominatedSortLayering checks the rank semantics on a hand-built
// set: every point of front k must be dominated by some point of front k-1
// and by no point of its own front.
func TestNonDominatedSortLayering(t *testing.T) {
	r := rng.New(3)
	pts := randPoints(r, 40, 2)
	fronts := NonDominatedSort(pts)
	total := 0
	for li, front := range fronts {
		total += len(front)
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(pts[j].V, pts[i].V) {
					t.Fatalf("front %d: %q dominated by front peer %q", li, pts[i].Name, pts[j].Name)
				}
			}
			if li == 0 {
				continue
			}
			dominated := false
			for _, j := range fronts[li-1] {
				if Dominates(pts[j].V, pts[i].V) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("front %d: %q not dominated by any point of front %d", li, pts[i].Name, li-1)
			}
		}
	}
	if total != len(pts) {
		t.Fatalf("fronts cover %d of %d points", total, len(pts))
	}
}

// TestHypervolumeKnownValues pins exact hypervolumes computed by hand.
func TestHypervolumeKnownValues(t *testing.T) {
	ref := []float64{1, 1}
	cases := []struct {
		pts  []Point
		want float64
	}{
		{[]Point{{Name: "a", V: []float64{0, 0}}}, 1},
		{[]Point{{Name: "a", V: []float64{0.5, 0.5}}}, 0.25},
		// Two staircase points: 0.5x1.0 + 0.5x0.5.
		{[]Point{{Name: "a", V: []float64{0, 0.5}}, {Name: "b", V: []float64{0.5, 0}}}, 0.75},
		// A dominated point adds nothing.
		{[]Point{{Name: "a", V: []float64{0, 0.5}}, {Name: "b", V: []float64{0.5, 0}},
			{Name: "c", V: []float64{0.6, 0.6}}}, 0.75},
		// Points outside the reference contribute nothing.
		{[]Point{{Name: "a", V: []float64{2, 0}}}, 0},
		{nil, 0},
	}
	for i, c := range cases {
		if got := Hypervolume(c.pts, ref); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d: hypervolume %v, want %v", i, got, c.want)
		}
	}
	// A 3D staircase: two cubes overlapping in one octant.
	got := Hypervolume([]Point{
		{Name: "a", V: []float64{0, 0.5, 0.5}},
		{Name: "b", V: []float64{0.5, 0, 0}},
	}, []float64{1, 1, 1})
	// Box a: 1x0.5x0.5 = 0.25; box b: 0.5x1x1 = 0.5; overlap 0.5x0.5x0.5.
	want := 0.25 + 0.5 - 0.125
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("3D hypervolume %v, want %v", got, want)
	}
}

// TestHypervolumeMonotone property-checks the indicator's two monotonicity
// laws: adding a non-dominated point strictly inside the reference strictly
// increases the hypervolume; adding a dominated point leaves it unchanged.
func TestHypervolumeMonotone(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 100; trial++ {
		d := 2 + r.Intn(2)
		pts := randPoints(r, 2+r.Intn(10), d)
		ref := make([]float64, d)
		for k := range ref {
			ref[k] = 1.05
		}
		base := Hypervolume(pts, ref)

		// A fresh random point strictly inside the reference box: the
		// hypervolume may only grow, and must grow strictly when no
		// existing point weakly dominates it.
		cand := randPoints(r, 1, d)[0]
		cand.Name = "cand"
		weaklyDominated := false
		for i := range pts {
			if Dominates(pts[i].V, cand.V) || reflect.DeepEqual(pts[i].V, cand.V) {
				weaklyDominated = true
				break
			}
		}
		grown := Hypervolume(append(append([]Point(nil), pts...), cand), ref)
		if grown < base-1e-12 {
			t.Fatalf("trial %d: hypervolume shrank from %v to %v on adding a point", trial, base, grown)
		}
		if !weaklyDominated && grown <= base+1e-15 {
			t.Fatalf("trial %d: non-dominated insert did not grow hypervolume (%v -> %v)", trial, base, grown)
		}

		// A point dominated by an existing one adds exactly nothing.
		dom := append([]float64(nil), pts[0].V...)
		for k := range dom {
			dom[k] += 0.01
		}
		same := Hypervolume(append(append([]Point(nil), pts...), Point{Name: "dom", V: dom}), ref)
		if math.Abs(same-base) > 1e-12 {
			t.Fatalf("trial %d: dominated insert changed hypervolume (%v -> %v)", trial, base, same)
		}
	}
}

func TestReference(t *testing.T) {
	pts := []Point{
		{Name: "a", V: []float64{0, 10}},
		{Name: "b", V: []float64{2, 4}},
	}
	ref := Reference(pts, 0.05)
	want := []float64{2 + 0.05*2, 10 + 0.05*6}
	for k := range want {
		if math.Abs(ref[k]-want[k]) > 1e-12 {
			t.Fatalf("ref[%d] = %v, want %v", k, ref[k], want[k])
		}
	}
	// Degenerate component still gets nonzero headroom.
	ref = Reference([]Point{{Name: "a", V: []float64{3}}, {Name: "b", V: []float64{3}}}, 0.05)
	if !(ref[0] > 3) {
		t.Fatalf("degenerate reference %v not beyond the point", ref[0])
	}
}

// TestKnee2D checks the classic two-objective knee: on a convex front the
// point with the sharpest bend wins, not the extremes.
func TestKnee2D(t *testing.T) {
	pts := []Point{
		{Name: "a", V: []float64{0, 10}},
		{Name: "k", V: []float64{1, 1}}, // far below the a-c chord
		{Name: "c", V: []float64{10, 0}},
	}
	front := Frontier(pts)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3", len(front))
	}
	knee := Knee(pts, front)
	if pts[knee].Name != "k" {
		t.Fatalf("knee picked %q, want k", pts[knee].Name)
	}
	if Knee(pts, nil) != -1 {
		t.Fatal("empty front must return -1")
	}
	if got := Knee(pts, []int{2}); got != 2 {
		t.Fatalf("single-point front knee = %d, want 2", got)
	}
}

// TestKneeHighDim checks the distance-to-ideal fallback for 3+ objectives.
func TestKneeHighDim(t *testing.T) {
	pts := []Point{
		{Name: "a", V: []float64{0, 1, 1}},
		{Name: "b", V: []float64{1, 0, 1}},
		{Name: "mid", V: []float64{0.2, 0.2, 0.2}},
		{Name: "c", V: []float64{1, 1, 0}},
	}
	front := Frontier(pts)
	knee := Knee(pts, front)
	if pts[knee].Name != "mid" {
		t.Fatalf("knee picked %q, want mid", pts[knee].Name)
	}
}

// TestKneeNaNRobust checks a NaN objective cannot poison the normalized
// coordinates or win the knee: NaN components rank pessimistic (1) while
// the finite columns keep their real ranges.
func TestKneeNaNRobust(t *testing.T) {
	pts := []Point{
		{Name: "a", V: []float64{0, 10}},
		{Name: "k", V: []float64{1, 1}},
		{Name: "c", V: []float64{10, 0}},
		{Name: "nan", V: []float64{math.NaN(), -5}}, // never dominated, joins the front
	}
	front := Frontier(pts)
	if len(front) != 4 {
		t.Fatalf("front size %d, want 4 (NaN point is non-comparable)", len(front))
	}
	knee := Knee(pts, front)
	if pts[knee].Name == "nan" {
		t.Fatal("NaN point won the knee")
	}
	if s := Spread(pts, front); math.IsNaN(s) {
		t.Fatal("spread is NaN")
	}
}

func TestSpread(t *testing.T) {
	// A perfectly uniform 2D staircase front has zero spread.
	var uniform []Point
	for i := 0; i <= 4; i++ {
		uniform = append(uniform, Point{Name: fmt.Sprintf("u%d", i), V: []float64{float64(i), float64(4 - i)}})
	}
	if s := Spread(uniform, Frontier(uniform)); math.Abs(s) > 1e-12 {
		t.Fatalf("uniform front spread %v, want 0", s)
	}
	// A clumped front spreads worse than the uniform one.
	clumped := []Point{
		{Name: "c0", V: []float64{0, 4}},
		{Name: "c1", V: []float64{0.1, 3.9}},
		{Name: "c2", V: []float64{0.2, 3.8}},
		{Name: "c3", V: []float64{4, 0}},
	}
	if s := Spread(clumped, Frontier(clumped)); s <= 0 {
		t.Fatalf("clumped front spread %v, want > 0", s)
	}
	if s := Spread(uniform[:2], []int{0, 1}); s != 0 {
		t.Fatalf("two-point front spread %v, want 0", s)
	}
}

// TestResolveStableOrdering checks Resolve's canonical point order and that
// JSON export is independent of input order.
func TestResolveStableOrdering(t *testing.T) {
	mk := func(order []int) *FrontierSet {
		base := []FrontierPoint{
			{Name: "alpha=0.1000", Knob: 0.1, HasKnob: true, V: []float64{3, 1}},
			{Name: "alpha=0.9000", Knob: 0.9, HasKnob: true, V: []float64{1, 3}},
			{Name: "alpha=0.5000", Knob: 0.5, HasKnob: true, V: []float64{2, 2}},
			{Name: "Net-aware", V: []float64{1.5, 4}},
			{Name: "Ener-aware", V: []float64{4, 1.5}},
		}
		pts := make([]FrontierPoint, len(order))
		for i, j := range order {
			pts[i] = base[j]
		}
		sf, err := Resolve("s", []string{"cost", "resp"}, pts, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		return &FrontierSet{Objectives: sf.Objectives, Seeds: 1, Scenarios: []*ScenarioFrontier{sf}}
	}
	a := mk([]int{0, 1, 2, 3, 4})
	b := mk([]int{4, 2, 0, 3, 1})
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("JSON depends on input order:\n%s\nvs\n%s", aj, bj)
	}
	sf := a.Scenarios[0]
	for i := 1; i < len(sf.Points); i++ {
		prev, cur := sf.Points[i-1], sf.Points[i]
		if !prev.HasKnob && cur.HasKnob {
			t.Fatal("baseline ordered before a knob point")
		}
		if prev.HasKnob && cur.HasKnob && prev.Knob > cur.Knob {
			t.Fatal("knob points not ascending")
		}
	}
	if kp := sf.KneePoint(); kp == nil {
		t.Fatal("no knee on a non-empty front")
	}
}

// TestAdaptiveSyntheticCurve drives the adaptive driver over an analytic
// trade-off curve and checks (a) determinism, (b) that at equal budget it
// reaches at least the uniform grid's hypervolume, and (c) that waves batch
// multiple refinements.
func TestAdaptiveSyntheticCurve(t *testing.T) {
	// A front with all its curvature near t=1: uniform grids waste points
	// on the flat region, the adaptive driver should not.
	curve := func(tt float64) []float64 {
		return []float64{math.Pow(tt, 8), math.Pow(1-tt, 8)}
	}
	eval := func(knobs []float64) ([][]float64, error) {
		out := make([][]float64, len(knobs))
		for i, k := range knobs {
			out[i] = curve(k)
		}
		return out, nil
	}
	cfg := AdaptiveConfig{Coarse: 5, Budget: 13, WaveSize: 3}
	a, err := Adaptive(cfg, eval)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Adaptive(cfg, eval)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("adaptive driver is not deterministic")
	}
	if len(a.Knobs) != cfg.Budget {
		t.Fatalf("adaptive spent %d evaluations, budget %d", len(a.Knobs), cfg.Budget)
	}
	if a.Waves < 3 {
		t.Fatalf("expected multiple refinement waves, got %d", a.Waves)
	}
	for i := 1; i < len(a.Knobs); i++ {
		if a.Knobs[i-1] >= a.Knobs[i] {
			t.Fatal("knobs not strictly ascending")
		}
	}

	toPoints := func(knobs []float64, vals [][]float64) []Point {
		pts := make([]Point, len(knobs))
		for i := range knobs {
			pts[i] = Point{Name: fmt.Sprintf("t=%.6f", knobs[i]), V: vals[i]}
		}
		return pts
	}
	grid := UniformGrid(0, 1, cfg.Budget)
	gridVals, _ := eval(grid)
	union := append(toPoints(grid, gridVals), toPoints(a.Knobs, a.Values)...)
	ref := Reference(union, 0.05)
	hvGrid := Hypervolume(toPoints(grid, gridVals), ref)
	hvAdaptive := Hypervolume(toPoints(a.Knobs, a.Values), ref)
	if hvAdaptive <= hvGrid {
		t.Fatalf("adaptive hypervolume %v not above uniform grid %v at equal budget %d", hvAdaptive, hvGrid, cfg.Budget)
	}
}

// TestAdaptiveHonorsSmallBudget pins the budget contract: an explicit
// budget below the coarse grid shrinks the grid instead of silently
// evaluating more points than the caller allowed.
func TestAdaptiveHonorsSmallBudget(t *testing.T) {
	evals := 0
	res, err := Adaptive(AdaptiveConfig{Coarse: 5, Budget: 3}, func(knobs []float64) ([][]float64, error) {
		evals += len(knobs)
		out := make([][]float64, len(knobs))
		for i, k := range knobs {
			out[i] = []float64{k, 1 - k}
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if evals != 3 || len(res.Knobs) != 3 {
		t.Fatalf("budget 3 spent %d evaluations (%d knobs)", evals, len(res.Knobs))
	}
}

// TestAdaptiveErrors covers the driver's failure paths.
func TestAdaptiveErrors(t *testing.T) {
	if _, err := Adaptive(AdaptiveConfig{Lo: 1, Hi: 1}, nil); err == nil {
		t.Fatal("empty knob range must error")
	}
	_, err := Adaptive(AdaptiveConfig{}, func(knobs []float64) ([][]float64, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("eval error must propagate")
	}
	_, err = Adaptive(AdaptiveConfig{}, func(knobs []float64) ([][]float64, error) {
		return make([][]float64, len(knobs)+1), nil
	})
	if err == nil {
		t.Fatal("misaligned eval result must error")
	}
}
