package pareto

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
)

// FrontierPoint is one evaluated configuration of a scenario's frontier:
// either a knob-driven point (HasKnob, the knob value that produced it) or a
// named baseline policy evaluated alongside the sweep. V holds the
// mean-over-seeds objective vector, aligned with the frontier's objective
// names; Rank is the point's non-domination level (0 = on the front).
type FrontierPoint struct {
	Name    string    `json:"name"`
	Knob    float64   `json:"-"`
	HasKnob bool      `json:"-"`
	V       []float64 `json:"objectives"`
	Rank    int       `json:"rank"`
}

// ScenarioFrontier is one scenario's resolved trade-off frontier: every
// evaluated point with its non-domination rank, the Pareto-optimal subset,
// the knee selection, and the quality indicators over the front.
type ScenarioFrontier struct {
	Scenario   string   `json:"scenario"`
	Objectives []string `json:"objectives"`
	// Points holds every evaluated configuration in stable order: knob
	// points ascending by knob value, then baselines ascending by name.
	Points []FrontierPoint `json:"points"`
	// Front indexes the Pareto-optimal points of Points, ascending.
	Front []int `json:"front"`
	// Knee indexes Points at the front's knee point (-1 when empty).
	Knee int `json:"knee"`
	// Ref is the hypervolume reference point (derived from the evaluated
	// set unless the driver was given one).
	Ref []float64 `json:"ref"`
	// Hypervolume and Spread are the front's quality indicators.
	Hypervolume float64 `json:"hypervolume"`
	Spread      float64 `json:"spread"`
	// Waves counts the evaluation rounds the driver scheduled (1 for a
	// fixed grid); Evals counts evaluated configurations, baselines
	// included.
	Waves int `json:"waves"`
	Evals int `json:"evals"`
}

// KneePoint returns the knee selection, or nil for an empty frontier.
func (sf *ScenarioFrontier) KneePoint() *FrontierPoint {
	if sf.Knee < 0 || sf.Knee >= len(sf.Points) {
		return nil
	}
	return &sf.Points[sf.Knee]
}

// FrontPoints returns the Pareto-optimal points in stable order.
func (sf *ScenarioFrontier) FrontPoints() []FrontierPoint {
	out := make([]FrontierPoint, 0, len(sf.Front))
	for _, i := range sf.Front {
		out = append(out, sf.Points[i])
	}
	return out
}

// comparePoints is the canonical point order — knob points ascending by
// knob (ties by name), then baselines ascending by name. Resolve and the
// JSON export share it, so Front/Knee indexes and export rows can never
// desynchronize.
func comparePoints(a, b *FrontierPoint) int {
	switch {
	case a.HasKnob && !b.HasKnob:
		return -1
	case !a.HasKnob && b.HasKnob:
		return 1
	case a.HasKnob && b.HasKnob && a.Knob != b.Knob:
		if a.Knob < b.Knob {
			return -1
		}
		return 1
	case a.Name < b.Name:
		return -1
	case a.Name > b.Name:
		return 1
	}
	return 0
}

// sortPoints orders points canonically (comparePoints).
func sortPoints(points []FrontierPoint) {
	slices.SortStableFunc(points, func(a, b FrontierPoint) int { return comparePoints(&a, &b) })
}

// Resolve finalizes a scenario frontier from its evaluated points: sorts
// them canonically, computes non-domination ranks, the front, the knee and
// the indicators. ref overrides the reference point; nil derives one from
// the evaluated set (Reference with a 5% margin). The input slice is taken
// over by the result.
func Resolve(scenario string, objectives []string, points []FrontierPoint, ref []float64, waves int) (*ScenarioFrontier, error) {
	for i := range points {
		if len(points[i].V) != len(objectives) {
			return nil, fmt.Errorf("pareto: point %q has %d objectives, want %d", points[i].Name, len(points[i].V), len(objectives))
		}
	}
	sortPoints(points)
	pts := make([]Point, len(points))
	for i := range points {
		pts[i] = Point{Name: points[i].Name, V: points[i].V}
	}
	ranks := Ranks(pts)
	var front []int
	for i, r := range ranks {
		points[i].Rank = r
		if r == 0 {
			front = append(front, i)
		}
	}
	if ref == nil {
		ref = Reference(pts, 0.05)
	}
	sf := &ScenarioFrontier{
		Scenario:    scenario,
		Objectives:  objectives,
		Points:      points,
		Front:       front,
		Knee:        Knee(pts, front),
		Ref:         ref,
		Hypervolume: Hypervolume(pts, ref),
		Spread:      Spread(pts, front),
		Waves:       waves,
		Evals:       len(points),
	}
	return sf, nil
}

// FrontierSet is the structured outcome of a frontier run: one resolved
// frontier per scenario, in scenario order.
type FrontierSet struct {
	Objectives []string
	Seeds      int
	Scenarios  []*ScenarioFrontier
}

// Scenario returns the named scenario's frontier, or nil.
func (fs *FrontierSet) Scenario(name string) *ScenarioFrontier {
	for _, sf := range fs.Scenarios {
		if sf.Scenario == name {
			return sf
		}
	}
	return nil
}

// frontierPointJSON is the export row for one point. The knob is a pointer
// so baselines encode as null rather than a fake value, and rows carry the
// front/knee markers inline so the export is self-describing.
type frontierPointJSON struct {
	Name       string    `json:"name"`
	Knob       *float64  `json:"knob"`
	Objectives []float64 `json:"objectives"`
	Rank       int       `json:"rank"`
	OnFront    bool      `json:"on_front"`
	Knee       bool      `json:"knee,omitempty"`
}

type scenarioFrontierJSON struct {
	Scenario    string              `json:"scenario"`
	Objectives  []string            `json:"objectives"`
	Ref         []float64           `json:"ref"`
	Hypervolume float64             `json:"hypervolume"`
	Spread      float64             `json:"spread"`
	Waves       int                 `json:"waves"`
	Evals       int                 `json:"evals"`
	Points      []frontierPointJSON `json:"points"`
}

// JSON renders the set as indented JSON. The encoding is deterministic:
// scenarios stay in run order and points are re-sorted into the canonical
// order (knob ascending, then baselines by name) on every export, so the
// bytes are independent of how the evaluation waves were scheduled — the
// property the golden frontier fixture pins.
func (fs *FrontierSet) JSON() ([]byte, error) {
	type setJSON struct {
		Objectives []string               `json:"objectives"`
		Seeds      int                    `json:"seeds"`
		Scenarios  []scenarioFrontierJSON `json:"scenarios"`
	}
	out := setJSON{Objectives: fs.Objectives, Seeds: fs.Seeds}
	for _, sf := range fs.Scenarios {
		points := append([]FrontierPoint(nil), sf.Points...)
		perm := make([]int, len(points)) // perm[new] = old index
		for i := range perm {
			perm[i] = i
		}
		// Sort an index view so the front/knee markers can be remapped.
		slices.SortStableFunc(perm, func(a, b int) int {
			return comparePoints(&points[a], &points[b])
		})
		onFront := make(map[int]bool, len(sf.Front))
		for _, i := range sf.Front {
			onFront[i] = true
		}
		row := scenarioFrontierJSON{
			Scenario:    sf.Scenario,
			Objectives:  sf.Objectives,
			Ref:         sf.Ref,
			Hypervolume: sf.Hypervolume,
			Spread:      sf.Spread,
			Waves:       sf.Waves,
			Evals:       sf.Evals,
		}
		for _, old := range perm {
			p := points[old]
			pj := frontierPointJSON{
				Name:       p.Name,
				Objectives: p.V,
				Rank:       p.Rank,
				OnFront:    onFront[old],
				Knee:       old == sf.Knee,
			}
			if p.HasKnob {
				k := p.Knob
				pj.Knob = &k
			}
			row.Points = append(row.Points, pj)
		}
		out.Scenarios = append(out.Scenarios, row)
	}
	return json.MarshalIndent(out, "", "  ")
}

// WriteJSON stores the JSON export at path.
func (fs *FrontierSet) WriteJSON(path string) error {
	b, err := fs.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
