package viz

import (
	"fmt"
	"math"
	"slices"

	"geovmp/internal/pareto"
)

// Front renders a resolved trade-off frontier as an SVG scatter of its
// first two objectives: dominated points faded gray, the Pareto front
// connected as a staircase-ordered polyline, the knee called out with a
// ring, and baseline (knob-less) points labeled. Frontiers with more than
// two objectives are projected onto the first two.
func Front(sf *pareto.ScenarioFrontier) string {
	title := fmt.Sprintf("%s: %s vs %s", sf.Scenario, axisName(sf, 0), axisName(sf, 1))
	if len(sf.Points) == 0 || len(sf.Objectives) < 2 {
		return doc(title)
	}
	p := plot{x0: math.Inf(1), x1: math.Inf(-1), y0: math.Inf(1), y1: math.Inf(-1)}
	for i := range sf.Points {
		v := sf.Points[i].V
		p.x0 = math.Min(p.x0, v[0])
		p.x1 = math.Max(p.x1, v[0])
		p.y0 = math.Min(p.y0, v[1])
		p.y1 = math.Max(p.y1, v[1])
	}
	padX := (p.x1 - p.x0) * 0.08
	padY := (p.y1 - p.y0) * 0.08
	if padX == 0 {
		padX = math.Max(math.Abs(p.x1)*0.05, 1e-9)
	}
	if padY == 0 {
		padY = math.Max(math.Abs(p.y1)*0.05, 1e-9)
	}
	p.x0, p.x1 = p.x0-padX, p.x1+padX
	p.y0, p.y1 = p.y0-padY, p.y1+padY

	body := []string{p.axes(axisName(sf, 0), axisName(sf, 1))}

	onFront := make(map[int]bool, len(sf.Front))
	for _, i := range sf.Front {
		onFront[i] = true
	}

	// Front polyline. Front holds canonical point-order indexes (knob
	// points first, then baselines), so re-sort by the projected objectives
	// before tracing — otherwise a baseline on the front would fold the
	// staircase back across the chart.
	if len(sf.Front) > 1 {
		trace := append([]int(nil), sf.Front...)
		slices.SortFunc(trace, func(a, b int) int {
			va, vb := sf.Points[a].V, sf.Points[b].V
			switch {
			case va[0] < vb[0]:
				return -1
			case va[0] > vb[0]:
				return 1
			case va[1] < vb[1]:
				return -1
			case va[1] > vb[1]:
				return 1
			}
			return 0
		})
		path := ""
		for j, i := range trace {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			v := sf.Points[i].V
			path += fmt.Sprintf("%s%.1f %.1f ", cmd, p.px(v[0]), p.py(v[1]))
		}
		body = append(body, fmt.Sprintf(`<path d="%s" fill="none" stroke="%s" stroke-width="1.5" stroke-dasharray="4 3"/>`, path, Color(0)))
	}

	for i := range sf.Points {
		pt := &sf.Points[i]
		x, y := p.px(pt.V[0]), p.py(pt.V[1])
		switch {
		case i == sf.Knee:
			body = append(body,
				fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="9" fill="none" stroke="%s" stroke-width="2"/>`, x, y, Color(1)),
				fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="4.5" fill="%s"/>`, x, y, Color(1)),
				fmt.Sprintf(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="%s">%s (knee)</text>`,
					x+12, y+4, Color(1), escape(pt.Name)))
		case onFront[i]:
			body = append(body, fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="4.5" fill="%s"/>`, x, y, Color(0)))
			if !pt.HasKnob {
				body = append(body, frontLabel(x, y, pt.Name))
			}
		default:
			body = append(body, fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="3" fill="#999999" fill-opacity="0.55"/>`, x, y))
			if !pt.HasKnob {
				body = append(body, frontLabel(x, y, pt.Name))
			}
		}
	}
	body = append(body, fmt.Sprintf(
		`<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="#555555">hypervolume %.6g · spread %.3f · %d evals / %d waves</text>`,
		marginL, height-12, sf.Hypervolume, sf.Spread, sf.Evals, sf.Waves))
	return doc(title, body...)
}

func frontLabel(x, y float64, name string) string {
	return fmt.Sprintf(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#333333">%s</text>`,
		x+7, y-6, escape(name))
}

func axisName(sf *pareto.ScenarioFrontier, i int) string {
	if i < len(sf.Objectives) {
		return sf.Objectives[i]
	}
	return fmt.Sprintf("objective %d", i)
}
