// Package viz renders experiment artifacts as standalone SVG documents:
// line charts for the hourly energy series (Fig. 2), bar charts for
// normalized costs (Fig. 1), step histograms for the response-time
// distribution (Fig. 3), scatter plots for the trade-off figures (Figs.
// 5-6), and a plane view of the force-directed embedding. Everything is
// stdlib-only string assembly; the output opens in any browser.
package viz

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"geovmp/internal/embed"
	"geovmp/internal/metrics"
)

// Size of the generated documents.
const (
	width   = 720
	height  = 420
	marginL = 70
	marginR = 30
	marginT = 40
	marginB = 50
)

// palette cycles through distinguishable stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"}

// Color returns the palette color for series index i.
func Color(i int) string { return palette[i%len(palette)] }

// doc wraps body elements into an SVG document with a title.
func doc(title string, body ...string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`, width/2, escape(title))
	for _, el := range body {
		b.WriteString(el)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// plot maps data coordinates into the chart viewport.
type plot struct {
	x0, x1, y0, y1 float64 // data ranges
}

func (p plot) px(x float64) float64 {
	if p.x1 == p.x0 {
		return marginL
	}
	return marginL + (x-p.x0)/(p.x1-p.x0)*float64(width-marginL-marginR)
}

func (p plot) py(y float64) float64 {
	if p.y1 == p.y0 {
		return float64(height - marginB)
	}
	return float64(height-marginB) - (y-p.y0)/(p.y1-p.y0)*float64(height-marginT-marginB)
}

// axes renders the frame, labels and 4 y-ticks.
func (p plot) axes(xlabel, ylabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`,
		marginL, marginT, width-marginL-marginR, height-marginT-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`,
		width/2, height-12, escape(xlabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		height/2, height/2, escape(ylabel))
	for i := 0; i <= 4; i++ {
		y := p.y0 + (p.y1-p.y0)*float64(i)/4
		py := p.py(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`,
			marginL, py, width-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`,
			marginL-6, py+3, y)
	}
	return b.String()
}

// legend renders one entry per named series.
func legend(names []string) string {
	var b strings.Builder
	for i, n := range names {
		x := marginL + 10 + (i%4)*160
		y := marginT + 14 + (i/4)*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, y-9, Color(i))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`, x+14, y, escape(n))
	}
	return b.String()
}

// LineChart renders one or more series as polylines.
func LineChart(title, xlabel, ylabel string, series ...*metrics.Series) string {
	var p plot
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				p = plot{x0: s.X[i], x1: s.X[i], y0: 0, y1: s.Y[i]}
				first = false
			}
			p.x0 = math.Min(p.x0, s.X[i])
			p.x1 = math.Max(p.x1, s.X[i])
			p.y1 = math.Max(p.y1, s.Y[i])
		}
	}
	if first {
		return doc(title)
	}
	body := []string{p.axes(xlabel, ylabel)}
	var names []string
	for k, s := range series {
		var pts strings.Builder
		for i := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", p.px(s.X[i]), p.py(s.Y[i]))
		}
		body = append(body, fmt.Sprintf(`<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
			strings.TrimSpace(pts.String()), Color(k)))
		names = append(names, s.Name)
	}
	body = append(body, legend(names))
	return doc(title, body...)
}

// BarChart renders labeled vertical bars.
func BarChart(title, ylabel string, labels []string, values []float64) string {
	if len(labels) == 0 {
		return doc(title)
	}
	var maxV float64
	for _, v := range values {
		maxV = math.Max(maxV, v)
	}
	p := plot{x0: 0, x1: float64(len(values)), y0: 0, y1: maxV}
	body := []string{p.axes("", ylabel)}
	bw := float64(width-marginL-marginR) / float64(len(values))
	for i, v := range values {
		x := p.px(float64(i)) + bw*0.15
		y := p.py(v)
		h := float64(height-marginB) - y
		body = append(body, fmt.Sprintf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x, y, bw*0.7, h, Color(i)))
		body = append(body, fmt.Sprintf(`<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
			x+bw*0.35, height-marginB+16, escape(labels[i])))
		body = append(body, fmt.Sprintf(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%.3g</text>`,
			x+bw*0.35, y-4, v))
	}
	return doc(title, body...)
}

// Histogram renders per-method step outlines of binned probabilities.
// curves[name] are equal-length bin probabilities over [0, 1].
func Histogram(title, xlabel string, names []string, curves [][]float64) string {
	if len(curves) == 0 || len(curves[0]) == 0 {
		return doc(title)
	}
	bins := len(curves[0])
	var maxP float64
	for _, c := range curves {
		for _, v := range c {
			maxP = math.Max(maxP, v)
		}
	}
	p := plot{x0: 0, x1: 1, y0: 0, y1: maxP}
	body := []string{p.axes(xlabel, "probability")}
	for k, c := range curves {
		var pts strings.Builder
		for i, v := range c {
			xl := float64(i) / float64(bins)
			xr := float64(i+1) / float64(bins)
			fmt.Fprintf(&pts, "%.1f,%.1f %.1f,%.1f ", p.px(xl), p.py(v), p.px(xr), p.py(v))
		}
		body = append(body, fmt.Sprintf(`<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
			strings.TrimSpace(pts.String()), Color(k)))
	}
	body = append(body, legend(names))
	return doc(title, body...)
}

// ScatterPoint is one labeled marker.
type ScatterPoint struct {
	X, Y  float64
	Label string
}

// Scatter renders labeled points — the trade-off figures.
func Scatter(title, xlabel, ylabel string, pts []ScatterPoint) string {
	if len(pts) == 0 {
		return doc(title)
	}
	p := plot{x0: 0, x1: 0, y0: 0, y1: 0}
	for _, pt := range pts {
		p.x1 = math.Max(p.x1, pt.X*1.1)
		p.y1 = math.Max(p.y1, pt.Y*1.1)
	}
	body := []string{p.axes(xlabel, ylabel)}
	for i, pt := range pts {
		body = append(body, fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="5" fill="%s"/>`,
			p.px(pt.X), p.py(pt.Y), Color(i)))
		body = append(body, fmt.Sprintf(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`,
			p.px(pt.X)+8, p.py(pt.Y)+4, escape(pt.Label)))
	}
	return doc(title, body...)
}

// Plane renders an embedding layout, coloring each point by its group
// (e.g. assigned DC or service), with group labels in the legend.
func Plane(title string, pos map[int]embed.Point, groupOf func(id int) int, groupNames []string) string {
	if len(pos) == 0 {
		return doc(title)
	}
	p := plot{}
	first := true
	for _, pt := range pos {
		if first {
			p = plot{x0: pt.X, x1: pt.X, y0: pt.Y, y1: pt.Y}
			first = false
		}
		p.x0 = math.Min(p.x0, pt.X)
		p.x1 = math.Max(p.x1, pt.X)
		p.y0 = math.Min(p.y0, pt.Y)
		p.y1 = math.Max(p.y1, pt.Y)
	}
	body := []string{p.axes("x", "y")}
	for id, pt := range pos {
		g := 0
		if groupOf != nil {
			g = groupOf(id)
		}
		body = append(body, fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.7"/>`,
			p.px(pt.X), p.py(pt.Y), Color(g)))
	}
	if len(groupNames) > 0 {
		body = append(body, legend(groupNames))
	}
	return doc(title, body...)
}

// Save writes an SVG document to dir/name.svg.
func Save(dir, name, svg string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".svg"), []byte(svg), 0o644)
}
