package viz

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geovmp/internal/embed"
	"geovmp/internal/metrics"
)

// assertValidSVG parses the document and checks basic structure.
func assertValidSVG(t *testing.T, svg string) {
	t.Helper()
	var node struct {
		XMLName xml.Name
	}
	if err := xml.Unmarshal([]byte(svg), &node); err != nil {
		t.Fatalf("invalid XML: %v\n%s", err, svg[:min(len(svg), 400)])
	}
	if node.XMLName.Local != "svg" {
		t.Fatalf("root element %q, want svg", node.XMLName.Local)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func seriesOf(name string, ys ...float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, y := range ys {
		s.Append(float64(i), y)
	}
	return s
}

func TestLineChart(t *testing.T) {
	svg := LineChart("energy", "slot", "GJ",
		seriesOf("Proposed", 1, 2, 3, 2, 1),
		seriesOf("Ener-aware", 2, 2, 2, 2, 2))
	assertValidSVG(t, svg)
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatal("want one polyline per series")
	}
	if !strings.Contains(svg, "Proposed") || !strings.Contains(svg, "GJ") {
		t.Fatal("legend or axis label missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	assertValidSVG(t, LineChart("empty", "x", "y"))
}

func TestBarChart(t *testing.T) {
	svg := BarChart("cost", "normalized", []string{"A", "B", "C"}, []float64{0.5, 1.0, 0.8})
	assertValidSVG(t, svg)
	// 1 frame rect + 1 background + 3 bars.
	if strings.Count(svg, "<rect") != 5 {
		t.Fatalf("rect count = %d, want 5", strings.Count(svg, "<rect"))
	}
}

func TestBarChartEmpty(t *testing.T) {
	assertValidSVG(t, BarChart("none", "y", nil, nil))
}

func TestHistogram(t *testing.T) {
	svg := Histogram("resp", "normalized response", []string{"m1", "m2"},
		[][]float64{{0.1, 0.5, 0.4}, {0.2, 0.2, 0.6}})
	assertValidSVG(t, svg)
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatal("want one step line per method")
	}
}

func TestScatter(t *testing.T) {
	svg := Scatter("tradeoff", "cost", "resp", []ScatterPoint{
		{X: 0.5, Y: 0.3, Label: "Proposed"},
		{X: 1.0, Y: 0.2, Label: "Net-aware"},
	})
	assertValidSVG(t, svg)
	if strings.Count(svg, "<circle") != 2 {
		t.Fatal("want one marker per point")
	}
	if !strings.Contains(svg, "Net-aware") {
		t.Fatal("point label missing")
	}
}

func TestPlane(t *testing.T) {
	pos := map[int]embed.Point{
		0: {X: -1, Y: 0},
		1: {X: 1, Y: 0},
		2: {X: 0, Y: 2},
	}
	svg := Plane("layout", pos, func(id int) int { return id % 2 }, []string{"dc0", "dc1"})
	assertValidSVG(t, svg)
	if strings.Count(svg, "<circle") != 3 {
		t.Fatal("want one dot per VM")
	}
}

func TestPlaneEmpty(t *testing.T) {
	assertValidSVG(t, Plane("empty", nil, nil, nil))
}

func TestEscape(t *testing.T) {
	svg := BarChart(`a<b & "c"`, "y", []string{"<l>"}, []float64{1})
	assertValidSVG(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Fatal("title not escaped")
	}
}

func TestSave(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, "fig1", BarChart("t", "y", []string{"a"}, []float64{1})); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.svg"))
	if err != nil {
		t.Fatal(err)
	}
	assertValidSVG(t, string(data))
}

func TestColorCycles(t *testing.T) {
	if Color(0) == Color(1) {
		t.Fatal("adjacent colors identical")
	}
	if Color(0) != Color(len(palette)) {
		t.Fatal("palette does not cycle")
	}
}
