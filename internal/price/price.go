// Package price models the grid electricity tariffs of each data center.
//
// The paper uses a "two-level real electricity price scenario": each DC pays
// a peak rate during its local daytime window and an off-peak rate
// otherwise. Because the three cities sit in different time zones and
// markets, the *cheapest* DC changes over the day — the temporal and
// regional diversity that Pri-aware and the proposed controller arbitrage.
package price

import (
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Tariff is a two-level time-of-use electricity price in DC-local time.
type Tariff struct {
	Name      string
	Zone      timeutil.Zone
	Peak      units.Price // rate inside the peak window
	OffPeak   units.Price // rate outside it
	PeakStart int         // local hour the peak window opens (inclusive)
	PeakEnd   int         // local hour it closes (exclusive)
}

// Presets for the paper's three sites. Rates approximate 2015-era industrial
// tariffs with deliberate regional spread (see DESIGN.md substitution 6).
func LisbonTariff() Tariff {
	return Tariff{Name: "Lisbon", Zone: timeutil.ZoneLisbon, Peak: 0.22, OffPeak: 0.11, PeakStart: 8, PeakEnd: 22}
}
func ZurichTariff() Tariff {
	return Tariff{Name: "Zurich", Zone: timeutil.ZoneZurich, Peak: 0.26, OffPeak: 0.13, PeakStart: 7, PeakEnd: 21}
}
func HelsinkiTariff() Tariff {
	return Tariff{Name: "Helsinki", Zone: timeutil.ZoneHelsinki, Peak: 0.16, OffPeak: 0.08, PeakStart: 7, PeakEnd: 20}
}

// inPeakLocal reports whether local hour h falls inside the peak window,
// handling windows that wrap midnight.
func (t Tariff) inPeakLocal(h int) bool {
	if t.PeakStart <= t.PeakEnd {
		return h >= t.PeakStart && h < t.PeakEnd
	}
	return h >= t.PeakStart || h < t.PeakEnd
}

// IsPeakAt reports whether the peak rate applies at the given absolute
// simulation time in seconds. The green controller branches on this.
func (t Tariff) IsPeakAt(seconds float64) bool {
	return t.inPeakLocal(int(t.Zone.LocalHour(seconds)))
}

// At returns the price at the given absolute simulation time in seconds.
func (t Tariff) At(seconds float64) units.Price {
	if t.IsPeakAt(seconds) {
		return t.Peak
	}
	return t.OffPeak
}

// AtSlot returns the price at the start of slot sl. Tariff windows are
// aligned to whole hours, so the price is constant within a slot.
func (t Tariff) AtSlot(sl timeutil.Slot) units.Price {
	return t.At(sl.Seconds())
}

// CheapestNow returns the index of the tariff with the lowest current price,
// breaking ties toward the lower index.
func CheapestNow(tariffs []Tariff, seconds float64) int {
	best := 0
	for i := 1; i < len(tariffs); i++ {
		if tariffs[i].At(seconds) < tariffs[best].At(seconds) {
			best = i
		}
	}
	return best
}

// MinPrice returns the lowest current price among tariffs.
func MinPrice(tariffs []Tariff, seconds float64) units.Price {
	return tariffs[CheapestNow(tariffs, seconds)].At(seconds)
}
