package price

import (
	"testing"
	"testing/quick"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func TestTariffLevels(t *testing.T) {
	lt := LisbonTariff()
	// 12:00 local = 12:00 UTC in Lisbon -> peak.
	if got := lt.At(12 * 3600); got != lt.Peak {
		t.Fatalf("noon price = %v, want peak %v", got, lt.Peak)
	}
	// 03:00 local -> off-peak.
	if got := lt.At(3 * 3600); got != lt.OffPeak {
		t.Fatalf("3am price = %v, want off-peak %v", got, lt.OffPeak)
	}
}

func TestTariffZoneShift(t *testing.T) {
	he := HelsinkiTariff()
	// 05:30 UTC is 07:30 in Helsinki -> peak window (7-20 local).
	if !he.IsPeakAt(5*3600 + 1800) {
		t.Fatal("05:30 UTC should be peak in Helsinki")
	}
	// The same instant is 05:30 in Lisbon -> off-peak.
	if LisbonTariff().IsPeakAt(5*3600 + 1800) {
		t.Fatal("05:30 UTC should be off-peak in Lisbon")
	}
}

func TestTariffPeriodicOverDays(t *testing.T) {
	zu := ZurichTariff()
	f := func(hour uint8, day uint8) bool {
		h := float64(hour%24) * 3600
		d := float64(day%7) * 86400
		return zu.At(h) == zu.At(h+d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrappingPeakWindow(t *testing.T) {
	tr := Tariff{Name: "wrap", Zone: timeutil.ZoneLisbon, Peak: 0.3, OffPeak: 0.1, PeakStart: 22, PeakEnd: 6}
	if !tr.IsPeakAt(23 * 3600) {
		t.Fatal("23:00 should be inside a 22-06 wrapped window")
	}
	if !tr.IsPeakAt(2 * 3600) {
		t.Fatal("02:00 should be inside a 22-06 wrapped window")
	}
	if tr.IsPeakAt(12 * 3600) {
		t.Fatal("12:00 should be outside a 22-06 wrapped window")
	}
}

func TestAtSlotMatchesAt(t *testing.T) {
	tariffs := []Tariff{LisbonTariff(), ZurichTariff(), HelsinkiTariff()}
	for _, tr := range tariffs {
		for sl := timeutil.Slot(0); sl < timeutil.SlotsPerWeek; sl++ {
			if tr.AtSlot(sl) != tr.At(sl.Seconds()) {
				t.Fatalf("%s: AtSlot(%d) != At(start)", tr.Name, sl)
			}
		}
	}
}

func TestCheapestNowPrefersHelsinkiOffPeakOverlap(t *testing.T) {
	tariffs := []Tariff{LisbonTariff(), ZurichTariff(), HelsinkiTariff()}
	// At 12:00 UTC all three are in peak; Helsinki peak (0.16) is cheapest.
	idx := CheapestNow(tariffs, 12*3600)
	if idx != 2 {
		t.Fatalf("cheapest at noon = %d (%s), want Helsinki", idx, tariffs[idx].Name)
	}
	if MinPrice(tariffs, 12*3600) != tariffs[2].Peak {
		t.Fatalf("min price mismatch")
	}
}

func TestPriceDiversityExists(t *testing.T) {
	// The whole point of geo-distribution: at some hour the cheapest DC must
	// differ from the cheapest at another hour... at minimum the price
	// *values* must differ across DCs somewhere.
	tariffs := []Tariff{LisbonTariff(), ZurichTariff(), HelsinkiTariff()}
	diverse := false
	for h := 0; h < 24; h++ {
		s := float64(h) * 3600
		p0 := tariffs[0].At(s)
		for _, tr := range tariffs[1:] {
			if tr.At(s) != p0 {
				diverse = true
			}
		}
	}
	if !diverse {
		t.Fatal("no price diversity across DCs")
	}
}

func TestPricesPositive(t *testing.T) {
	for _, tr := range []Tariff{LisbonTariff(), ZurichTariff(), HelsinkiTariff()} {
		if tr.Peak <= 0 || tr.OffPeak <= 0 {
			t.Fatalf("%s: non-positive tariff", tr.Name)
		}
		if tr.Peak <= tr.OffPeak {
			t.Fatalf("%s: peak %v not above off-peak %v", tr.Name, tr.Peak, tr.OffPeak)
		}
	}
}

func TestCostIntegration(t *testing.T) {
	tr := HelsinkiTariff()
	e := units.Energy(100 * units.KilowattHour)
	peak := tr.Peak.Cost(e)
	off := tr.OffPeak.Cost(e)
	if peak != 2*off {
		t.Fatalf("peak cost %v should be twice off-peak %v for this tariff", peak, off)
	}
}
