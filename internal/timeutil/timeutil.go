// Package timeutil defines the simulation's notion of time.
//
// The paper runs three nested time scales:
//
//   - the 5 s sampling/green-controller step (Step),
//   - the 1 h global/local controller slot (Slot),
//   - the one-week experiment horizon.
//
// Simulation time is an integer count of steps from the experiment start
// (taken to be midnight UTC of day 0), which keeps slot arithmetic exact.
// Each data center lives in its own time zone; tariffs and solar position
// are functions of *local* time, which is where the paper's geographic
// diversity comes from.
package timeutil

import "fmt"

// StepSeconds is the fine-grained control period of the green controller and
// the sampling period of the utilization traces (the paper samples "every 5
// seconds").
const StepSeconds = 5

// SlotSeconds is the period of the global and local placement controllers
// ("invoked every one hour").
const SlotSeconds = 3600

// StepsPerSlot is the number of fine steps per placement slot.
const StepsPerSlot = SlotSeconds / StepSeconds

// HoursPerDay and related calendar constants.
const (
	HoursPerDay  = 24
	SlotsPerDay  = 24
	SlotsPerWeek = 7 * SlotsPerDay
)

// Step is a count of 5-second steps since the experiment start.
type Step int64

// Slot is a count of one-hour placement slots since the experiment start.
type Slot int64

// Seconds returns the absolute simulation time of s in seconds.
func (s Step) Seconds() float64 { return float64(s) * StepSeconds }

// Slot returns the placement slot containing s.
func (s Step) Slot() Slot { return Slot(s / StepsPerSlot) }

// Start returns the first step of slot sl.
func (sl Slot) Start() Step { return Step(sl) * StepsPerSlot }

// Seconds returns the absolute simulation time of the start of sl.
func (sl Slot) Seconds() float64 { return float64(sl) * SlotSeconds }

// HourUTC returns the hour-of-day in UTC, in [0, 24).
func (sl Slot) HourUTC() int { return int(sl % SlotsPerDay) }

// Day returns the day index containing sl.
func (sl Slot) Day() int { return int(sl / SlotsPerDay) }

// String implements fmt.Stringer.
func (sl Slot) String() string {
	return fmt.Sprintf("day %d %02d:00", sl.Day(), sl.HourUTC())
}

// Zone is a fixed UTC offset in hours. The original experiment spans Lisbon
// (UTC+0/+1), Zurich (UTC+1/+2) and Helsinki (UTC+2/+3); we use standard
// winter offsets and ignore DST, which only shifts tariff windows by an
// hour.
type Zone int

// Standard-time zones for the paper's three cities.
const (
	ZoneLisbon   Zone = 0
	ZoneZurich   Zone = 1
	ZoneHelsinki Zone = 2
)

// LocalHour converts an absolute simulation time in seconds to the local
// hour-of-day in [0, 24) for the zone, as a float (fractional hours).
func (z Zone) LocalHour(seconds float64) float64 {
	h := seconds/3600 + float64(z)
	h -= float64(int(h/24)) * 24
	if h < 0 {
		h += 24
	}
	return h
}

// LocalHourOfSlot returns the integer local hour-of-day at the start of sl.
func (z Zone) LocalHourOfSlot(sl Slot) int {
	h := (sl.HourUTC() + int(z)) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// Horizon describes an experiment duration.
type Horizon struct {
	Slots Slot // number of 1 h slots simulated
}

// Week returns the paper's one-week horizon.
func Week() Horizon { return Horizon{Slots: SlotsPerWeek} }

// Days returns an n-day horizon.
func Days(n int) Horizon { return Horizon{Slots: Slot(n * SlotsPerDay)} }

// Hours returns an n-hour horizon.
func Hours(n int) Horizon { return Horizon{Slots: Slot(n)} }

// Steps returns the total number of fine steps in the horizon.
func (h Horizon) Steps() Step { return Step(h.Slots) * StepsPerSlot }

// Seconds returns the horizon length in seconds.
func (h Horizon) Seconds() float64 { return float64(h.Slots) * SlotSeconds }
