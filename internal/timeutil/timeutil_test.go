package timeutil

import (
	"testing"
	"testing/quick"
)

func TestConstantsConsistent(t *testing.T) {
	if StepsPerSlot != 720 {
		t.Fatalf("StepsPerSlot = %d, want 720 (3600/5)", StepsPerSlot)
	}
	if SlotsPerWeek != 168 {
		t.Fatalf("SlotsPerWeek = %d, want 168", SlotsPerWeek)
	}
}

func TestStepSlotRoundTrip(t *testing.T) {
	tests := []struct {
		step Step
		slot Slot
	}{
		{0, 0},
		{719, 0},
		{720, 1},
		{720*24 - 1, 23},
		{720 * 24, 24},
	}
	for _, tt := range tests {
		if got := tt.step.Slot(); got != tt.slot {
			t.Errorf("Step(%d).Slot() = %d, want %d", tt.step, got, tt.slot)
		}
	}
}

func TestSlotStartInverse(t *testing.T) {
	f := func(n uint16) bool {
		sl := Slot(n)
		return sl.Start().Slot() == sl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotCalendar(t *testing.T) {
	sl := Slot(49) // day 2, 01:00 UTC
	if sl.Day() != 2 || sl.HourUTC() != 1 {
		t.Fatalf("Slot(49): day=%d hour=%d, want 2, 1", sl.Day(), sl.HourUTC())
	}
	if got := sl.String(); got != "day 2 01:00" {
		t.Fatalf("String() = %q", got)
	}
}

func TestZoneLocalHourOfSlot(t *testing.T) {
	tests := []struct {
		zone Zone
		slot Slot
		want int
	}{
		{ZoneLisbon, 0, 0},
		{ZoneZurich, 0, 1},
		{ZoneHelsinki, 0, 2},
		{ZoneHelsinki, 23, 1}, // 23:00 UTC + 2 = 01:00 next day
		{ZoneZurich, 167, 0},  // 23:00 UTC day 6 + 1
	}
	for _, tt := range tests {
		if got := tt.zone.LocalHourOfSlot(tt.slot); got != tt.want {
			t.Errorf("zone %d slot %d: local hour = %d, want %d", tt.zone, tt.slot, got, tt.want)
		}
	}
}

func TestZoneLocalHourFractional(t *testing.T) {
	// 10:30 UTC in Helsinki is 12:30.
	got := ZoneHelsinki.LocalHour(10*3600 + 1800)
	if got != 12.5 {
		t.Fatalf("LocalHour = %v, want 12.5", got)
	}
}

func TestZoneLocalHourInRange(t *testing.T) {
	f := func(sec uint32, z uint8) bool {
		zone := Zone(z % 24)
		h := zone.LocalHour(float64(sec))
		return h >= 0 && h < 24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHorizons(t *testing.T) {
	if Week().Slots != 168 {
		t.Fatalf("Week() = %d slots", Week().Slots)
	}
	if Days(2).Slots != 48 {
		t.Fatalf("Days(2) = %d slots", Days(2).Slots)
	}
	if Hours(5).Slots != 5 {
		t.Fatalf("Hours(5) = %d slots", Hours(5).Slots)
	}
	if Week().Steps() != 168*720 {
		t.Fatalf("Week().Steps() = %d", Week().Steps())
	}
	if Week().Seconds() != 604800 {
		t.Fatalf("Week().Seconds() = %v", Week().Seconds())
	}
}

func TestStepSeconds(t *testing.T) {
	if got := Step(12).Seconds(); got != 60 {
		t.Fatalf("Step(12).Seconds() = %v, want 60", got)
	}
}
