package timeutil

import "testing"

func TestSlotSeconds(t *testing.T) {
	if Slot(2).Seconds() != 7200 {
		t.Fatalf("Slot(2).Seconds() = %v", Slot(2).Seconds())
	}
}

func TestSlotStart(t *testing.T) {
	if Slot(3).Start() != 2160 {
		t.Fatalf("Slot(3).Start() = %d, want 2160 steps", Slot(3).Start())
	}
}

func TestZoneNegativeWrap(t *testing.T) {
	// A hypothetical western zone must wrap into [0, 24).
	z := Zone(-5)
	h := z.LocalHour(2 * 3600) // 02:00 UTC - 5 = 21:00 previous day
	if h != 21 {
		t.Fatalf("LocalHour = %v, want 21", h)
	}
	if got := z.LocalHourOfSlot(2); got != 21 {
		t.Fatalf("LocalHourOfSlot = %d, want 21", got)
	}
}

func TestHorizonAccessors(t *testing.T) {
	h := Days(3)
	if h.Steps() != Step(3*24*720) {
		t.Fatalf("Steps() = %d", h.Steps())
	}
	if h.Seconds() != 3*86400 {
		t.Fatalf("Seconds() = %v", h.Seconds())
	}
}
