package correlation

import (
	"math"
	"testing"
	"testing/quick"

	"geovmp/internal/rng"
	"geovmp/internal/units"
)

func TestPeakCoincidenceAligned(t *testing.T) {
	a := []float64{0.1, 0.9, 0.1, 0.1}
	b := []float64{0.2, 0.8, 0.1, 0.1}
	// Peaks at the same sample: combined peak = sum of peaks -> 1.
	if got := PeakCoincidence(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("aligned peaks = %v, want 1", got)
	}
}

func TestPeakCoincidenceStaggered(t *testing.T) {
	a := []float64{0.9, 0.1, 0.1, 0.1}
	b := []float64{0.1, 0.1, 0.9, 0.1}
	// Staggered equal peaks: combined peak 1.0 vs sum 1.8.
	want := 1.0 / 1.8
	if got := PeakCoincidence(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("staggered peaks = %v, want %v", got, want)
	}
}

func TestPeakCoincidenceRange(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		mid := len(raw) / 2
		a := make([]float64, mid)
		b := make([]float64, len(raw)-mid)
		for i := range a {
			a[i] = math.Abs(math.Mod(raw[i], 1))
		}
		for i := range b {
			b[i] = math.Abs(math.Mod(raw[mid+i], 1))
		}
		c := PeakCoincidence(a, b)
		return c > 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeakCoincidenceSymmetric(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		a := make([]float64, 12)
		b := make([]float64, 12)
		for i := range a {
			a[i] = src.Float64()
			b[i] = src.Float64()
		}
		if PeakCoincidence(a, b) != PeakCoincidence(b, a) {
			t.Fatal("peak coincidence not symmetric")
		}
	}
}

func TestPeakCoincidenceEdgeCases(t *testing.T) {
	if got := PeakCoincidence(nil, nil); got != 0.5 {
		t.Fatalf("empty profiles = %v, want 0.5", got)
	}
	if got := PeakCoincidence([]float64{0, 0}, []float64{0, 0}); got != 0.5 {
		t.Fatalf("zero profiles = %v, want 0.5", got)
	}
	// Lower bound above 0: one flat tiny profile vs a big staggered one.
	got := PeakCoincidence([]float64{1, 0}, []float64{0, 1})
	if got <= 0 || got > 1 {
		t.Fatalf("out of (0,1]: %v", got)
	}
}

func TestPeakCoincidenceUnequalLengthsUsesPrefix(t *testing.T) {
	a := []float64{0.5, 0.5, 99}
	b := []float64{0.5, 0.5}
	if got := PeakCoincidence(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("prefix comparison = %v, want 1", got)
	}
}

func TestCombinedPeak(t *testing.T) {
	profs := [][]float64{
		{0.9, 0.1, 0.1},
		{0.1, 0.1, 0.8},
		{0.1, 0.2, 0.1},
	}
	// Sums: 1.1, 0.4, 1.0 -> peak 1.1.
	if got := CombinedPeak(profs); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("combined peak = %v, want 1.1", got)
	}
	if CombinedPeak(nil) != 0 {
		t.Fatal("empty set combined peak should be 0")
	}
}

func TestCombinedPeakBelowSumOfPeaks(t *testing.T) {
	// The anti-correlation packing headroom: combined peak <= sum of peaks.
	src := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		var profs [][]float64
		var sumPeaks float64
		for v := 0; v < 4; v++ {
			p := make([]float64, 16)
			var pk float64
			for i := range p {
				p[i] = src.Float64()
				if p[i] > pk {
					pk = p[i]
				}
			}
			profs = append(profs, p)
			sumPeaks += pk
		}
		if CombinedPeak(profs) > sumPeaks+1e-12 {
			t.Fatal("combined peak exceeded sum of peaks")
		}
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Pearson(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v", got)
	}
	b := []float64{4, 3, 2, 1}
	if got := Pearson(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", got)
	}
	flat := []float64{2, 2, 2, 2}
	if got := Pearson(a, flat); got != 0 {
		t.Fatalf("zero-variance correlation = %v", got)
	}
	if Pearson(nil, nil) != 0 {
		t.Fatal("empty Pearson not 0")
	}
}

func TestNormalizeData(t *testing.T) {
	ref := 100 * units.Megabyte
	tests := []struct {
		vol  units.DataSize
		want float64
	}{
		{0, 0},
		{50 * units.Megabyte, -0.5},
		{100 * units.Megabyte, -1},
		{500 * units.Megabyte, -1},
	}
	for _, tt := range tests {
		if got := NormalizeData(tt.vol, ref); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("NormalizeData(%v) = %v, want %v", tt.vol, got, tt.want)
		}
	}
	if NormalizeData(5, 0) != 0 {
		t.Fatal("zero ref should yield 0")
	}
}

func TestNormalizeDataRange(t *testing.T) {
	f := func(v float64) bool {
		got := NormalizeData(units.DataSize(math.Abs(v)), units.Megabyte)
		return got <= 0 && got >= -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileSet(t *testing.T) {
	ps := NewProfileSet(4)
	ps.Add(1, []float64{0.1, 0.9, 0.1, 0.1})
	ps.Add(2, []float64{0.2, 0.8, 0.1, 0.1})
	ps.Add(3, []float64{0.8, 0.1, 0.1, 0.2})
	if !ps.Has(1) || ps.Has(99) {
		t.Fatal("Has wrong")
	}
	if ps.Samples() != 4 {
		t.Fatal("samples wrong")
	}
	if math.Abs(ps.Peak(1)-0.9) > 1e-12 {
		t.Fatalf("peak = %v", ps.Peak(1))
	}
	if math.Abs(ps.Mean(1)-0.3) > 1e-12 {
		t.Fatalf("mean = %v", ps.Mean(1))
	}
	if ps.Mean(99) != 0 || ps.Peak(99) != 0 {
		t.Fatal("missing id should be zero")
	}
	// Aligned pair scores higher than staggered pair.
	if ps.CPUCorr(1, 2) <= ps.CPUCorr(1, 3) {
		t.Fatalf("aligned %v not above staggered %v", ps.CPUCorr(1, 2), ps.CPUCorr(1, 3))
	}
	if ps.CPUCorr(1, 99) != 0.5 {
		t.Fatal("missing profile should yield neutral 0.5")
	}
}

func TestDataMatrix(t *testing.T) {
	m := NewDataMatrix()
	m.Add(1, 2, 10*units.Megabyte)
	m.Add(1, 2, 5*units.Megabyte)
	m.Add(2, 1, 3*units.Megabyte)
	m.Add(3, 3, units.Megabyte) // self: ignored
	m.Add(4, 5, 0)              // zero: ignored
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if m.Vol(1, 2) != 15*units.Megabyte {
		t.Fatalf("vol(1,2) = %v", m.Vol(1, 2))
	}
	if m.Vol(2, 1) != 3*units.Megabyte {
		t.Fatalf("vol(2,1) = %v", m.Vol(2, 1))
	}
	if m.Vol(9, 9) != 0 {
		t.Fatal("missing pair should be 0")
	}
	if m.Max() != 15*units.Megabyte {
		t.Fatalf("max = %v", m.Max())
	}
	if m.TotalBetween(1, 2) != 18*units.Megabyte {
		t.Fatalf("total = %v", m.TotalBetween(1, 2))
	}
	var visited int
	var sum units.DataSize
	m.Each(func(f, to int, v units.DataSize) {
		visited++
		sum += v
	})
	if visited != 2 || sum != 18*units.Megabyte {
		t.Fatalf("Each visited %d sum %v", visited, sum)
	}
}
