// Package correlation computes the two VM relationships the placement
// algorithm trades off (paper Sect. IV-B, Eq. 5):
//
//   - CPU-load correlation Corr_cpu in (0, 1] — "computed as a worst-case
//     peak CPU utilization when the peaks of two VMs coincide during the
//     last time slot". Two VMs whose peaks land on the same sample score 1;
//     perfectly staggered peaks approach 1/2 (the combined peak is then just
//     the larger individual peak). It feeds the repulsion force.
//   - Data correlation Corr_data in [-1, 0) — the (directed) amount of data
//     two VMs exchange, normalized against a reference volume. It feeds the
//     attraction force; zero-volume pairs have no attraction at all (0).
//
// The package also offers classic Pearson correlation for analysis and the
// ProfileSet container the controllers use to evaluate many pairwise
// correlations against per-slot downsampled utilization profiles.
package correlation

import (
	"math"

	"geovmp/internal/par"
	"geovmp/internal/units"
)

// PeakCoincidence returns the paper's CPU-load correlation of two
// utilization profiles sampled over the same slot: the combined worst-case
// peak normalized by the sum of the individual peaks,
//
//	max_t(a[t]+b[t]) / (max_t a[t] + max_t b[t])  in (0, 1].
//
// Both profiles idle (zero peaks) yields the neutral value 0.5. Profiles
// must have equal length; unequal lengths compare the common prefix.
func PeakCoincidence(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0.5
	}
	var peakA, peakB, peakAB float64
	for t := 0; t < n; t++ {
		if a[t] > peakA {
			peakA = a[t]
		}
		if b[t] > peakB {
			peakB = b[t]
		}
		if s := a[t] + b[t]; s > peakAB {
			peakAB = s
		}
	}
	den := peakA + peakB
	if den <= 0 {
		return 0.5
	}
	c := peakAB / den
	// Floor slightly above zero to respect the documented (0,1] range.
	if c < 1e-9 {
		c = 1e-9
	}
	if c > 1 {
		c = 1
	}
	return c
}

// CombinedPeak returns max_t of the element-wise sum of the profiles — the
// worst-case simultaneous demand. Server packers use it as the
// correlation-aware capacity check: packing by CombinedPeak instead of the
// sum of individual peaks is exactly what lets anti-correlated VMs share a
// server.
func CombinedPeak(profiles [][]float64) float64 {
	if len(profiles) == 0 {
		return 0
	}
	n := len(profiles[0])
	for _, p := range profiles {
		if len(p) < n {
			n = len(p)
		}
	}
	var peak float64
	for t := 0; t < n; t++ {
		var s float64
		for _, p := range profiles {
			s += p[t]
		}
		if s > peak {
			peak = s
		}
	}
	return peak
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// profiles, or 0 when either has zero variance or the profiles are empty.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for t := 0; t < n; t++ {
		ma += a[t]
		mb += b[t]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for t := 0; t < n; t++ {
		da := a[t] - ma
		db := b[t] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// NormalizeData maps a directed transfer volume to the attraction-force
// range: 0 for no traffic, approaching -1 as vol reaches ref and clamping
// at -1 beyond it. ref must be positive; non-positive refs yield 0.
func NormalizeData(vol, ref units.DataSize) float64 {
	if vol <= 0 || ref <= 0 {
		return 0
	}
	f := float64(vol) / float64(ref)
	if f > 1 {
		f = 1
	}
	return -f
}

// ProfileSet holds per-VM downsampled utilization profiles for one slot and
// answers pairwise queries. It is slice-backed and indexed by the workload's
// compact VM ids, so the O(V^2) pairwise queries of the clustering phase are
// array loads instead of map lookups — and standard-length profiles are
// copied into one contiguous arena in insertion order, so the pairwise sweep
// touches a few cache-resident kilobytes instead of rows scattered across
// the workload's tables. Build one per slot via Add (or Reset and refill to
// reuse the backing arrays across slots), then query.
type ProfileSet struct {
	samples int
	arena   []float64   // contiguous samples-length rows, insertion order
	off     []int32     // indexed by id: arena offset, or absentRow/oddRow-k
	odd     [][]float64 // rows whose length differs from samples (retained)
	peaks   []float64   // indexed by id; valid only where a row exists
	ids     []int       // ids currently registered
	idPos   []int32     // indexed by id: position in ids, valid where a row exists
	// freeStd and freeOdd hold storage released by Remove (arena row
	// offsets and odd-table slots respectively), reused LIFO by later Adds
	// so a long-running arrival/departure stream stays allocation-free and
	// the arena does not grow past the peak population.
	freeStd []int32
	freeOdd []int32
	// ord mirrors the arena at one uint16 per sample: for every built row,
	// the sample indices sorted by descending utilization — the walk order
	// of the pruned peak-coincidence kernel. ordVal holds the utilization
	// at each ord entry, so the kernel's own-profile reads are sequential
	// instead of gathered. Built on demand by EnsureOrders;
	// len(ord)/samples rows are valid. Adds that land inside the built
	// region (overwrites and free-list reuse) re-sort their row inline, so
	// the orders stay exact across any Add/Remove sequence.
	ord    []uint16
	ordVal []float64
	// gen holds one monotonic change counter per id, bumped by every Add,
	// Remove and Reset touching the id. Consumers (the embedding's force
	// cache) compare counters across slots to skip recomputing state
	// derived from unchanged profiles; equal counters guarantee the
	// profile bytes are unchanged since the counter was read.
	gen []uint64
	// Fast-math state (see SetFastMath): when enabled, EnsureOrders also
	// quantizes every standard arena row to qScale fixed-point ticks —
	// qrow mirrors the arena in sample order, qord mirrors ordVal in
	// descending order, and qok flags the rows whose samples all fit the
	// uint16 range. The quantized tables are 4x denser than the float
	// arena, which is what the cache-blocked CPUCorrFastInto kernel walks.
	fastMath bool
	qrow     []uint16
	qord     []uint16
	qok      []bool
}

// Fixed-point parameters of the fast peak-coincidence kernel.
const (
	// qScale is the tick size: 4096 ticks per unit of utilization, so a
	// uint16 covers utilizations up to 16.0 with 2.4e-4 resolution. Rows
	// holding negative or >16.0 samples are flagged unquantizable and fall
	// back to the exact kernel pair by pair.
	qScale = 4096
	// qMinDen is the minimum quantized peak sum (numerator of Eq. 5's
	// denominator) the fast kernel accepts: 512 ticks = 1/8 of one core.
	// Near-idle pairs below it fall back to the exact kernel, which caps
	// the relative quantization error (see FastEps).
	qMinDen = 512
)

// FastEps bounds the absolute error of the fast kernel against the exact
// one, per pair: numerator and denominator are each within ±1 tick of the
// scaled exact values, the denominator is at least qMinDen ticks, and the
// ratio is <= 1, so |fast - exact| <= 2/qMinDen. The clamps to [1e-9, 1]
// are shared and 1-Lipschitz, so they never widen the gap.
const FastEps = 2.0 / qMinDen

const (
	absentRow = int32(-1)
	oddRow    = int32(-2) // off = oddRow - k addresses odd[k]
)

// NewProfileSet creates a set expecting profiles of the given sample count.
func NewProfileSet(samples int) *ProfileSet {
	return &ProfileSet{samples: samples}
}

// Samples returns the per-profile sample count.
func (ps *ProfileSet) Samples() int { return ps.samples }

// Reset forgets every registered profile while keeping the backing arrays,
// so a per-slot rebuild allocates nothing in steady state.
func (ps *ProfileSet) Reset() {
	for _, id := range ps.ids {
		ps.off[id] = absentRow
		ps.peaks[id] = 0
		ps.gen[id]++
	}
	ps.ids = ps.ids[:0]
	ps.arena = ps.arena[:0]
	ps.odd = ps.odd[:0]
	ps.ord = ps.ord[:0]
	ps.ordVal = ps.ordVal[:0]
	ps.qrow = ps.qrow[:0]
	ps.qord = ps.qord[:0]
	ps.qok = ps.qok[:0]
	ps.freeStd = ps.freeStd[:0]
	ps.freeOdd = ps.freeOdd[:0]
}

// Gen returns id's change counter: it moves exactly when an Add, Remove or
// Reset touches id, so two equal readings bracket a window in which id's
// profile (including its absence) was untouched. Unregistered ids read 0.
func (ps *ProfileSet) Gen(id int) uint64 {
	if id < 0 || id >= len(ps.gen) {
		return 0
	}
	return ps.gen[id]
}

// Len returns the number of registered profiles.
func (ps *ProfileSet) Len() int { return len(ps.ids) }

// Add registers a VM's profile. Rows of the expected sample count are
// copied into the set's arena; other lengths are retained as-is and must
// not be mutated afterwards. Adding an id that already has a profile
// replaces it (the streaming controller's telemetry-refresh path), reusing
// the old storage where the lengths allow. Any Add/Remove sequence leaves
// queries equal to a set built from scratch over the surviving profiles.
func (ps *ProfileSet) Add(id int, prof []float64) {
	if id < 0 {
		return
	}
	if id >= len(ps.off) {
		ps.grow(id + 1)
	}
	prev := ps.off[id]
	if prev == absentRow {
		ps.idPos[id] = int32(len(ps.ids))
		ps.ids = append(ps.ids, id)
	}
	if len(prof) == ps.samples {
		off := absentRow
		if prev >= 0 {
			off = prev // overwrite the existing arena row in place
		} else {
			if prev <= oddRow {
				ps.freeStorage(prev)
			}
			if n := len(ps.freeStd); n > 0 {
				off = ps.freeStd[n-1]
				ps.freeStd = ps.freeStd[:n-1]
			}
		}
		if off >= 0 {
			copy(ps.arena[off:int(off)+ps.samples], prof)
			// The reused row may sit inside the already-built order region;
			// re-sorting it inline keeps the pruned kernel exact.
			ps.rebuildOrder(off)
		} else {
			off = int32(len(ps.arena))
			ps.arena = append(ps.arena, prof...)
		}
		ps.off[id] = off
	} else {
		if prev != absentRow {
			ps.freeStorage(prev)
		}
		if n := len(ps.freeOdd); n > 0 {
			k := ps.freeOdd[n-1]
			ps.freeOdd = ps.freeOdd[:n-1]
			ps.odd[k] = prof
			ps.off[id] = oddRow - k
		} else {
			ps.off[id] = oddRow - int32(len(ps.odd))
			ps.odd = append(ps.odd, prof)
		}
	}
	var peak float64
	for _, u := range prof {
		if u > peak {
			peak = u
		}
	}
	ps.peaks[id] = peak
	ps.gen[id]++
}

// Remove forgets id's profile, releasing its storage to the free lists for
// later Adds — the departure amendment of the streaming controller, which
// adjusts the set per VM arrival/departure instead of rebuilding the world.
// Removing an absent id is a no-op.
func (ps *ProfileSet) Remove(id int) {
	if id < 0 || id >= len(ps.off) || ps.off[id] == absentRow {
		return
	}
	ps.freeStorage(ps.off[id])
	ps.off[id] = absentRow
	ps.peaks[id] = 0
	ps.gen[id]++
	p := ps.idPos[id]
	last := ps.ids[len(ps.ids)-1]
	ps.ids[p] = last
	ps.idPos[last] = p
	ps.ids = ps.ids[:len(ps.ids)-1]
}

// freeStorage returns a row's backing storage to the matching free list.
// Freed arena rows keep stale floats (and possibly stale orders) until
// reused, at which point Add overwrites both; no query ever resolves to a
// freed row because no off entry points at it.
func (ps *ProfileSet) freeStorage(off int32) {
	if off >= 0 {
		ps.freeStd = append(ps.freeStd, off)
		return
	}
	k := oddRow - off
	ps.odd[k] = nil
	ps.freeOdd = append(ps.freeOdd, k)
}

// rebuildOrder re-sorts the descending-utilization order of the arena row
// at off, if orders have been built that far (otherwise EnsureOrders will
// cover it from the current arena contents later).
func (ps *ProfileSet) rebuildOrder(off int32) {
	s := ps.samples
	end := int(off) + s
	if s <= 0 || end > len(ps.ord) {
		return
	}
	sortRowDesc(ps.arena[off:end], ps.ord[off:end], ps.ordVal[off:end])
	if ps.fastMath && end <= len(ps.qrow) {
		ps.quantizeRow(off)
	}
}

func (ps *ProfileSet) grow(n int) {
	// Geometric growth: ids arrive in ascending order across a run, so
	// exact-fit growth would copy the tables O(V) times.
	if d := 2 * len(ps.off); n < d {
		n = d
	}
	off := make([]int32, n)
	copy(off, ps.off)
	for i := len(ps.off); i < n; i++ {
		off[i] = absentRow
	}
	ps.off = off
	peaks := make([]float64, n)
	copy(peaks, ps.peaks)
	ps.peaks = peaks
	idPos := make([]int32, n)
	copy(idPos, ps.idPos)
	ps.idPos = idPos
	gen := make([]uint64, n)
	copy(gen, ps.gen)
	ps.gen = gen
}

// Has reports whether a profile for id exists.
func (ps *ProfileSet) Has(id int) bool {
	return id >= 0 && id < len(ps.off) && ps.off[id] != absentRow
}

// Profile returns the registered profile for id (nil when absent). The
// returned slice aliases the set's arena and is only valid until the next
// Reset.
func (ps *ProfileSet) Profile(id int) []float64 {
	if id < 0 || id >= len(ps.off) {
		return nil
	}
	off := ps.off[id]
	switch {
	case off == absentRow:
		return nil
	case off <= oddRow:
		return ps.odd[oddRow-off]
	}
	return ps.arena[off : int(off)+ps.samples]
}

// Peak returns the registered peak for id (0 when absent).
func (ps *ProfileSet) Peak(id int) float64 {
	if id < 0 || id >= len(ps.off) {
		return 0
	}
	return ps.peaks[id]
}

// EnsureOrders precomputes, for every standard-length profile registered so
// far, its descending-by-utilization sample order — the walk order of the
// pruned peak-coincidence kernel (see CPUCorr). The build is incremental
// (only rows added since the last call are sorted), costs O(S log S) per
// profile once per slot, and is sharded over rows via workers (nil runs
// serially).
//
// Call it after the slot's Adds and before querying from multiple
// goroutines: it is the only mutating step on the query side, so once it
// returns, CPUCorr/CPUCorrInto are safe for any number of concurrent
// readers. Queries without built orders fall back to the unpruned kernel
// with identical results.
func (ps *ProfileSet) EnsureOrders(workers *par.Budget) {
	s := ps.samples
	if s <= 0 || s > math.MaxUint16 {
		return
	}
	rows := len(ps.arena) / s
	built := len(ps.ord) / s
	if built >= rows {
		return
	}
	need := rows * s
	if cap(ps.ord) < need {
		grown := make([]uint16, need)
		copy(grown, ps.ord)
		ps.ord = grown
		vals := make([]float64, need)
		copy(vals, ps.ordVal)
		ps.ordVal = vals
	} else {
		ps.ord = ps.ord[:need]
		ps.ordVal = ps.ordVal[:need]
	}
	if ps.fastMath {
		ps.ensureQuantCap(rows, need)
	}
	const rowGrain = 256
	par.For(workers, rows-built, rowGrain, func(lo, hi int) {
		for r := built + lo; r < built+hi; r++ {
			sortRowDesc(ps.arena[r*s:(r+1)*s], ps.ord[r*s:(r+1)*s], ps.ordVal[r*s:(r+1)*s])
			if ps.fastMath {
				ps.quantizeRow(int32(r * s))
			}
		}
	})
}

// SetFastMath toggles the quantized fast-math tables. Enabling quantizes
// every row whose sample order is already built and makes EnsureOrders
// quantize new rows alongside their orders; disabling drops the tables.
// Toggling never affects CPUCorr/CPUCorrInto results — only the opt-in
// CPUCorrFastInto query reads the quantized state, and without it that
// query degrades to the exact kernels.
func (ps *ProfileSet) SetFastMath(on bool) {
	if ps.fastMath == on {
		return
	}
	ps.fastMath = on
	if !on {
		ps.qrow = ps.qrow[:0]
		ps.qord = ps.qord[:0]
		ps.qok = ps.qok[:0]
		return
	}
	s := ps.samples
	if s <= 0 {
		return
	}
	rows := len(ps.ord) / s
	ps.ensureQuantCap(rows, rows*s)
	for r := 0; r < rows; r++ {
		ps.quantizeRow(int32(r * s))
	}
}

// FastMath reports whether the quantized tables are enabled.
func (ps *ProfileSet) FastMath() bool { return ps.fastMath }

// ensureQuantCap sizes the quantized tables to cover rows arena rows.
func (ps *ProfileSet) ensureQuantCap(rows, need int) {
	if cap(ps.qrow) < need {
		qr := make([]uint16, need)
		copy(qr, ps.qrow)
		ps.qrow = qr
		qo := make([]uint16, need)
		copy(qo, ps.qord)
		ps.qord = qo
	} else {
		ps.qrow = ps.qrow[:need]
		ps.qord = ps.qord[:need]
	}
	if cap(ps.qok) < rows {
		qk := make([]bool, rows)
		copy(qk, ps.qok)
		ps.qok = qk
	} else {
		ps.qok = ps.qok[:rows]
	}
}

// quantizeRow fills the quantized mirrors of the arena row at off from the
// float row and its (already built) sample order. Rounding is half-up —
// monotone in the sample value, so the quantized descending order is the
// float descending order and qord[0] is the row's quantized peak. Rows with
// negative samples or samples past the uint16 range (utilization > 16.0)
// are flagged unquantizable and keep taking the exact kernel.
func (ps *ProfileSet) quantizeRow(off int32) {
	s := ps.samples
	r := int(off) / s
	row := ps.arena[off : int(off)+s]
	ord := ps.ord[off : int(off)+s]
	qr := ps.qrow[off : int(off)+s]
	qo := ps.qord[off : int(off)+s]
	for t, v := range row {
		q := v*qScale + 0.5
		// The negated form also rejects NaN samples, whose uint16
		// conversion would be unspecified.
		if !(v >= 0 && q < 65536) {
			ps.qok[r] = false
			return
		}
		qr[t] = uint16(q)
	}
	for k, t := range ord {
		qo[k] = qr[t]
	}
	ps.qok[r] = true
}

// sortRowDesc fills ord with row's sample indices sorted by descending
// utilization and vals with the utilizations in that order. Insertion sort,
// descending by value; the strict comparison keeps equal samples in
// ascending index order (stable), so the order — and every downstream
// result — is deterministic.
func sortRowDesc(row []float64, ord []uint16, vals []float64) {
	s := len(row)
	for i := range ord {
		ord[i] = uint16(i)
	}
	for i := 1; i < s; i++ {
		t := ord[i]
		v := row[t]
		j := i - 1
		for j >= 0 && row[ord[j]] < v {
			ord[j+1] = ord[j]
			j--
		}
		ord[j+1] = t
	}
	for i, t := range ord {
		vals[i] = row[t]
	}
}

// orderAt returns the descending-utilization sample order of the arena row
// at offset off and the utilizations in that order, or nils when orders
// have not been built that far.
func (ps *ProfileSet) orderAt(off int32) ([]uint16, []float64) {
	end := int(off) + ps.samples
	if end > len(ps.ord) {
		return nil, nil
	}
	return ps.ord[off:end], ps.ordVal[off:end]
}

// CPUCorr returns the peak-coincidence CPU-load correlation of two
// registered VMs; pairs with a missing profile return the neutral 0.5.
// Equal-length profiles — the only shape the simulator produces — reuse the
// peaks computed at Add time, and after EnsureOrders the pair is evaluated
// by the pruned kernel, which walks the samples in descending order of VM
// i's utilization and stops at the exact bound a[t]+peakB <= best. Results
// are identical to PeakCoincidence in every case.
func (ps *ProfileSet) CPUCorr(i, j int) float64 {
	a := ps.Profile(i)
	b := ps.Profile(j)
	if a == nil || b == nil {
		return 0.5
	}
	if len(a) != len(b) {
		return PeakCoincidence(a, b)
	}
	if off := ps.off[i]; off >= 0 {
		if ord, av := ps.orderAt(off); ord != nil {
			return peakCoincidenceOrdered(b, ord, av, ps.peaks[i], ps.peaks[j])
		}
	}
	return peakCoincidenceKnown(a, b, ps.peaks[i], ps.peaks[j])
}

// CPUCorrInto fills dst[k] with CPUCorr(i, js[k]) — the bulk form the
// embedding's dense force cache uses. Hoisting VM i's profile, peak and
// sample order out of the O(V) inner loop, and reading partner rows
// straight out of the arena, is worth ~25% of the whole pairwise sweep
// versus per-pair CPUCorr calls. Odd-length partner rows ride the same
// loop: equal-length pairs still reuse the cached peaks (full-row peaks
// equal common-prefix peaks exactly when lengths match) and only truly
// mixed-length pairs pay the general PeakCoincidence scan. Results are
// identical to per-pair CPUCorr calls.
func (ps *ProfileSet) CPUCorrInto(dst []float64, i int, js []int) {
	a := ps.Profile(i)
	if a == nil {
		for k := range js {
			dst[k] = 0.5
		}
		return
	}
	peakA := ps.Peak(i)
	var ordA []uint16
	var avA []float64
	if off := ps.off[i]; off >= 0 {
		ordA, avA = ps.orderAt(off)
	}
	aStd := len(a) == ps.samples
	for k, j := range js {
		// The arena row is resolved inline: the overwhelmingly common
		// standard-row partner costs one offset load instead of the
		// general Profile switch.
		if j >= 0 && j < len(ps.off) {
			if off := ps.off[j]; off >= 0 && aStd {
				b := ps.arena[off : int(off)+ps.samples]
				if ordA != nil {
					dst[k] = peakCoincidenceOrdered(b, ordA, avA, peakA, ps.peaks[j])
				} else {
					dst[k] = peakCoincidenceKnown(a, b, peakA, ps.peaks[j])
				}
				continue
			}
		}
		b := ps.Profile(j)
		switch {
		case b == nil:
			dst[k] = 0.5
		case len(b) != len(a):
			dst[k] = PeakCoincidence(a, b)
		default:
			// Only equal-length odd x odd pairs reach here (a standard row
			// paired with an equal-length partner was handled inline above),
			// so there is never a sample order to prune with.
			dst[k] = peakCoincidenceKnown(a, b, peakA, ps.peaks[j])
		}
	}
}

// CPUCorrFast is the scalar form of CPUCorrFastInto.
func (ps *ProfileSet) CPUCorrFast(i, j int) float64 {
	var one [1]float64
	js := [1]int{j}
	ps.CPUCorrFastInto(one[:], i, js[:])
	return one[0]
}

// CPUCorrFastInto is the quantized, cache-blocked variant of CPUCorrInto:
// dst[k] approximates CPUCorr(i, js[k]) within FastEps. It walks VM i's
// samples in the same descending order as the exact pruned kernel, but over
// the uint16 fixed-point tables built by EnsureOrders under SetFastMath —
// 4x denser rows, integer compares, and a strip-blocked early exit (the
// exact bound a[t]+peakB <= best checked once per strip of 8, conservative
// by monotonicity of the descending walk, so stopping is never wrong).
//
// Pairs the quantized tables cannot represent keep the exact result: odd
// or missing rows, rows flagged unquantizable (negative or >16.0 samples),
// pairs whose quantized peak sum is under qMinDen ticks, and every query
// before SetFastMath(true)/EnsureOrders. The error-budget property test in
// fastmath_test.go holds this contract over adversarial profiles.
func (ps *ProfileSet) CPUCorrFastInto(dst []float64, i int, js []int) {
	s := ps.samples
	var offA = absentRow
	if i >= 0 && i < len(ps.off) {
		offA = ps.off[i]
	}
	var ordA, qoA []uint16
	if ps.fastMath && offA >= 0 && s > 0 {
		if end := int(offA) + s; end <= len(ps.qord) && ps.qok[int(offA)/s] {
			ordA = ps.ord[offA:end]
			qoA = ps.qord[offA:end]
		}
	}
	if ordA == nil {
		ps.CPUCorrInto(dst, i, js)
		return
	}
	qpA := int32(qoA[0])
	for k, j := range js {
		if j >= 0 && j < len(ps.off) {
			if offB := ps.off[j]; offB >= 0 {
				if endB := int(offB) + s; endB <= len(ps.qord) && ps.qok[int(offB)/s] {
					// Partner's quantized peak: the head of its own
					// descending order.
					den := qpA + int32(ps.qord[offB])
					if den >= qMinDen {
						dst[k] = fastPeakCoincidence(ps.qrow[offB:endB], ordA, qoA, den-qpA, den)
						continue
					}
				}
			}
		}
		dst[k] = ps.CPUCorr(i, j)
	}
}

// fastStrip is the blocking factor of the fast kernel's ordered walk: the
// early-exit bound is tested once per strip, and a strip of 8 uint16 loads
// spans one 16-byte vector lane pair, keeping the inner loop branch-light.
const fastStrip = 8

// fastPeakCoincidence is the quantized pruned kernel: qb is the partner row
// in sample order, ordA/qoA the anchor's descending sample order and
// quantized values, qpB the partner's quantized peak and den the quantized
// peak sum (>= qMinDen). The combined peak is an exact integer max over the
// quantized samples, so the only error versus the exact kernel is the ±1
// tick rounding of numerator and denominator — the FastEps budget.
func fastPeakCoincidence(qb []uint16, ordA, qoA []uint16, qpB, den int32) float64 {
	n := len(ordA)
	best := int32(-1)
	for st := 0; st < n; st += fastStrip {
		// Strip-level early exit: every unvisited anchor sample is
		// <= qoA[st], so no unvisited sum can beat best.
		if int32(qoA[st])+qpB <= best {
			break
		}
		end := st + fastStrip
		if end > n {
			end = n
		}
		for k := st; k < end; k++ {
			if sum := int32(qoA[k]) + int32(qb[ordA[k]]); sum > best {
				best = sum
			}
		}
	}
	c := float64(best) / float64(den)
	if c < 1e-9 {
		c = 1e-9
	}
	if c > 1 {
		c = 1
	}
	return c
}

// peakCoincidenceKnown is PeakCoincidence over equal-length profiles with
// the individual peaks already known. The element-wise max runs two
// independent chains (max is order-insensitive, so the result is
// unchanged): this kernel executes O(V^2) times per slot.
func peakCoincidenceKnown(a, b []float64, peakA, peakB float64) float64 {
	n := len(a)
	if n == 0 {
		return 0.5
	}
	b = b[:n]
	var p0, p1, p2, p3 float64
	t := 0
	for ; t+3 < n; t += 4 {
		if s := a[t] + b[t]; s > p0 {
			p0 = s
		}
		if s := a[t+1] + b[t+1]; s > p1 {
			p1 = s
		}
		if s := a[t+2] + b[t+2]; s > p2 {
			p2 = s
		}
		if s := a[t+3] + b[t+3]; s > p3 {
			p3 = s
		}
	}
	for ; t < n; t++ {
		if s := a[t] + b[t]; s > p0 {
			p0 = s
		}
	}
	if p1 > p0 {
		p0 = p1
	}
	if p3 > p2 {
		p2 = p3
	}
	peakAB := p0
	if p2 > peakAB {
		peakAB = p2
	}
	den := peakA + peakB
	if den <= 0 {
		return 0.5
	}
	c := peakAB / den
	if c < 1e-9 {
		c = 1e-9
	}
	if c > 1 {
		c = 1
	}
	return c
}

// peakCoincidenceOrdered is the pruned form of peakCoincidenceKnown: it
// walks the samples in descending order of a's utilization (ord and av,
// built by EnsureOrders: av[s] == a[ord[s]]) and stops at the exact
// early-exit bound
//
//	a[t] + peakB <= best  =>  stop:
//
// every unvisited sample of a is <= a[t], so no unvisited combined sample
// can exceed best, and best already is the final combined peak. (Exact in
// floating point too: rounded addition is monotone, so every unvisited
// candidate fl(a[t']+b[t']) <= fl(a[t]+peakB) <= best.) The combined peak
// is an exact max of the same a[t]+b[t] sums either way, so the result is
// bit-identical to peakCoincidenceKnown — but a typical pair touches a
// handful of samples instead of all S, which is what makes the O(V^2) pair
// sweep of the global phase subquadratic in sample touches in practice.
func peakCoincidenceOrdered(b []float64, ord []uint16, av []float64, peakA, peakB float64) float64 {
	den := peakA + peakB
	if den <= 0 {
		// Covers empty and all-zero profiles: the neutral value, exactly as
		// the unpruned kernels return.
		return 0.5
	}
	best := math.Inf(-1)
	for s, t := range ord {
		at := av[s]
		if at+peakB <= best {
			break
		}
		if sum := at + b[t]; sum > best {
			best = sum
		}
	}
	c := best / den
	if c < 1e-9 {
		c = 1e-9
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Mean returns the average utilization of id's profile (0 when absent).
func (ps *ProfileSet) Mean(id int) float64 {
	p := ps.Profile(id)
	if len(p) == 0 {
		return 0
	}
	var sum float64
	for _, u := range p {
		sum += u
	}
	return sum / float64(len(p))
}

// DataMatrix is a sparse directed volume matrix, the container for a slot's
// inter-VM traffic. Rows are indexed by the workload's compact sender id and
// each row holds that sender's few receivers (communication degree is
// bounded by the service graph), so lookups are a short linear scan instead
// of a map probe and iteration order is deterministic.
type DataMatrix struct {
	rows  [][]volCell // indexed by from
	froms []int       // rows touched since the last Reset
	pairs int
	max   units.DataSize
	// gen holds one monotonic change counter per id, bumped whenever a
	// volume cell touching the id (as sender or receiver) is added,
	// removed or reset — the matrix-side half of the embedding force
	// cache's change detection.
	gen []uint64
}

type volCell struct {
	to  int
	vol units.DataSize
}

// NewDataMatrix returns an empty matrix.
func NewDataMatrix() *DataMatrix {
	return &DataMatrix{}
}

// Reset empties the matrix while keeping the backing arrays, so a per-slot
// rebuild allocates nothing in steady state.
func (m *DataMatrix) Reset() {
	for _, from := range m.froms {
		for _, c := range m.rows[from] {
			m.gen[c.to]++
		}
		if len(m.rows[from]) > 0 {
			m.gen[from]++
		}
		m.rows[from] = m.rows[from][:0]
	}
	m.froms = m.froms[:0]
	m.pairs = 0
	m.max = 0
}

// Gen returns id's change counter: it moves exactly when a cell touching id
// is added, removed or reset. Unknown ids read 0.
func (m *DataMatrix) Gen(id int) uint64 {
	if id < 0 || id >= len(m.gen) {
		return 0
	}
	return m.gen[id]
}

// bumpGen advances id's change counter, growing the table on first touch.
func (m *DataMatrix) bumpGen(id int) {
	if id >= len(m.gen) {
		n := id + 1
		if d := 2 * len(m.gen); n < d {
			n = d
		}
		gen := make([]uint64, n)
		copy(gen, m.gen)
		m.gen = gen
	}
	m.gen[id]++
}

// Add accumulates volume onto the directed pair (from, to).
func (m *DataMatrix) Add(from, to int, vol units.DataSize) {
	if vol <= 0 || from == to || from < 0 || to < 0 {
		return
	}
	m.bumpGen(from)
	m.bumpGen(to)
	if from >= len(m.rows) {
		n := from + 1
		if d := 2 * len(m.rows); n < d {
			n = d
		}
		rows := make([][]volCell, n)
		copy(rows, m.rows)
		m.rows = rows
	}
	row := m.rows[from]
	if len(row) == 0 {
		m.froms = append(m.froms, from)
	}
	for i := range row {
		if row[i].to == to {
			row[i].vol += vol
			if row[i].vol > m.max {
				m.max = row[i].vol
			}
			return
		}
	}
	m.rows[from] = append(row, volCell{to: to, vol: vol})
	m.pairs++
	if vol > m.max {
		m.max = vol
	}
}

// RemoveVM deletes every directed pair involving id — the departure
// amendment of the streaming controller. Surviving cells keep their
// insertion order, so iteration and every query match a matrix rebuilt from
// scratch by replaying the surviving adds in their original order. The
// high-water mark is rescanned only when a removed cell could have held it.
// Cost is O(total pairs); degree is bounded by the service graph, so that
// is linear in the fleet with a small constant. Removing an unknown id is a
// no-op.
func (m *DataMatrix) RemoveVM(id int) {
	if id < 0 {
		return
	}
	removed := false
	var removedMax units.DataSize
	for fi := 0; fi < len(m.froms); {
		from := m.froms[fi]
		row := m.rows[from]
		w := 0
		if from == id {
			// Sender row: drop wholesale.
			for _, c := range row {
				if c.vol > removedMax {
					removedMax = c.vol
				}
				m.bumpGen(c.to)
			}
			m.pairs -= len(row)
			removed = removed || len(row) > 0
		} else {
			// Receiver scan: order-preserving compaction.
			for _, c := range row {
				if c.to == id {
					if c.vol > removedMax {
						removedMax = c.vol
					}
					m.pairs--
					removed = true
					m.bumpGen(from)
					continue
				}
				row[w] = c
				w++
			}
		}
		m.rows[from] = row[:w]
		if w == 0 {
			// Emptied rows are dropped from froms so a later re-Add
			// registers the sender exactly once; froms order is not
			// observable, so the O(1) swap removal is fine.
			m.froms[fi] = m.froms[len(m.froms)-1]
			m.froms = m.froms[:len(m.froms)-1]
			continue
		}
		fi++
	}
	if removed {
		m.bumpGen(id)
	}
	if removed && removedMax >= m.max {
		m.max = 0
		for _, from := range m.froms {
			for _, c := range m.rows[from] {
				if c.vol > m.max {
					m.max = c.vol
				}
			}
		}
	}
}

// Vol returns the directed volume from->to.
func (m *DataMatrix) Vol(from, to int) units.DataSize {
	if from < 0 || from >= len(m.rows) {
		return 0
	}
	for _, c := range m.rows[from] {
		if c.to == to {
			return c.vol
		}
	}
	return 0
}

// Max returns the largest directed volume seen, the natural normalization
// reference for attraction forces.
func (m *DataMatrix) Max() units.DataSize { return m.max }

// Mean returns the average non-zero directed volume (0 when empty). Force
// normalization against a multiple of the mean keeps attraction meaningful
// under heavy-tailed volume distributions, where normalizing by the maximum
// would flatten almost every pair to zero.
func (m *DataMatrix) Mean() units.DataSize {
	if m.pairs == 0 {
		return 0
	}
	var sum units.DataSize
	for _, row := range m.rows {
		for _, c := range row {
			sum += c.vol
		}
	}
	return units.DataSize(float64(sum) / float64(m.pairs))
}

// Len returns the number of non-zero directed pairs.
func (m *DataMatrix) Len() int { return m.pairs }

// Each calls fn for every non-zero directed pair, in deterministic order:
// ascending sender id, receivers in insertion order.
func (m *DataMatrix) Each(fn func(from, to int, vol units.DataSize)) {
	for from, row := range m.rows {
		for _, c := range row {
			fn(from, c.to, c.vol)
		}
	}
}

// TotalBetween sums vol(a->b)+vol(b->a) — the undirected exchange intensity
// used by graph-partitioning baselines.
func (m *DataMatrix) TotalBetween(a, b int) units.DataSize {
	return m.Vol(a, b) + m.Vol(b, a)
}
