// Package correlation computes the two VM relationships the placement
// algorithm trades off (paper Sect. IV-B, Eq. 5):
//
//   - CPU-load correlation Corr_cpu in (0, 1] — "computed as a worst-case
//     peak CPU utilization when the peaks of two VMs coincide during the
//     last time slot". Two VMs whose peaks land on the same sample score 1;
//     perfectly staggered peaks approach 1/2 (the combined peak is then just
//     the larger individual peak). It feeds the repulsion force.
//   - Data correlation Corr_data in [-1, 0) — the (directed) amount of data
//     two VMs exchange, normalized against a reference volume. It feeds the
//     attraction force; zero-volume pairs have no attraction at all (0).
//
// The package also offers classic Pearson correlation for analysis and the
// ProfileSet container the controllers use to evaluate many pairwise
// correlations against per-slot downsampled utilization profiles.
package correlation

import (
	"math"

	"geovmp/internal/units"
)

// PeakCoincidence returns the paper's CPU-load correlation of two
// utilization profiles sampled over the same slot: the combined worst-case
// peak normalized by the sum of the individual peaks,
//
//	max_t(a[t]+b[t]) / (max_t a[t] + max_t b[t])  in (0, 1].
//
// Both profiles idle (zero peaks) yields the neutral value 0.5. Profiles
// must have equal length; unequal lengths compare the common prefix.
func PeakCoincidence(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0.5
	}
	var peakA, peakB, peakAB float64
	for t := 0; t < n; t++ {
		if a[t] > peakA {
			peakA = a[t]
		}
		if b[t] > peakB {
			peakB = b[t]
		}
		if s := a[t] + b[t]; s > peakAB {
			peakAB = s
		}
	}
	den := peakA + peakB
	if den <= 0 {
		return 0.5
	}
	c := peakAB / den
	// Floor slightly above zero to respect the documented (0,1] range.
	if c < 1e-9 {
		c = 1e-9
	}
	if c > 1 {
		c = 1
	}
	return c
}

// CombinedPeak returns max_t of the element-wise sum of the profiles — the
// worst-case simultaneous demand. Server packers use it as the
// correlation-aware capacity check: packing by CombinedPeak instead of the
// sum of individual peaks is exactly what lets anti-correlated VMs share a
// server.
func CombinedPeak(profiles [][]float64) float64 {
	if len(profiles) == 0 {
		return 0
	}
	n := len(profiles[0])
	for _, p := range profiles {
		if len(p) < n {
			n = len(p)
		}
	}
	var peak float64
	for t := 0; t < n; t++ {
		var s float64
		for _, p := range profiles {
			s += p[t]
		}
		if s > peak {
			peak = s
		}
	}
	return peak
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// profiles, or 0 when either has zero variance or the profiles are empty.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for t := 0; t < n; t++ {
		ma += a[t]
		mb += b[t]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for t := 0; t < n; t++ {
		da := a[t] - ma
		db := b[t] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// NormalizeData maps a directed transfer volume to the attraction-force
// range: 0 for no traffic, approaching -1 as vol reaches ref and clamping
// at -1 beyond it. ref must be positive; non-positive refs yield 0.
func NormalizeData(vol, ref units.DataSize) float64 {
	if vol <= 0 || ref <= 0 {
		return 0
	}
	f := float64(vol) / float64(ref)
	if f > 1 {
		f = 1
	}
	return -f
}

// ProfileSet holds per-VM downsampled utilization profiles for one slot and
// answers pairwise queries. Build one per slot via Add, then query.
type ProfileSet struct {
	samples  int
	profiles map[int][]float64
	peaks    map[int]float64
}

// NewProfileSet creates a set expecting profiles of the given sample count.
func NewProfileSet(samples int) *ProfileSet {
	return &ProfileSet{
		samples:  samples,
		profiles: make(map[int][]float64),
		peaks:    make(map[int]float64),
	}
}

// Samples returns the per-profile sample count.
func (ps *ProfileSet) Samples() int { return ps.samples }

// Add registers a VM's profile. The slice is retained; callers hand over
// ownership.
func (ps *ProfileSet) Add(id int, prof []float64) {
	ps.profiles[id] = prof
	var peak float64
	for _, u := range prof {
		if u > peak {
			peak = u
		}
	}
	ps.peaks[id] = peak
}

// Has reports whether a profile for id exists.
func (ps *ProfileSet) Has(id int) bool {
	_, ok := ps.profiles[id]
	return ok
}

// Profile returns the registered profile for id (nil when absent).
func (ps *ProfileSet) Profile(id int) []float64 { return ps.profiles[id] }

// Peak returns the registered peak for id (0 when absent).
func (ps *ProfileSet) Peak(id int) float64 { return ps.peaks[id] }

// CPUCorr returns the peak-coincidence CPU-load correlation of two
// registered VMs; pairs with a missing profile return the neutral 0.5.
func (ps *ProfileSet) CPUCorr(i, j int) float64 {
	a, okA := ps.profiles[i]
	b, okB := ps.profiles[j]
	if !okA || !okB {
		return 0.5
	}
	return PeakCoincidence(a, b)
}

// Mean returns the average utilization of id's profile (0 when absent).
func (ps *ProfileSet) Mean(id int) float64 {
	p, ok := ps.profiles[id]
	if !ok || len(p) == 0 {
		return 0
	}
	var sum float64
	for _, u := range p {
		sum += u
	}
	return sum / float64(len(p))
}

// DataMatrix is a sparse directed volume matrix keyed by VM pair, the
// container for a slot's inter-VM traffic.
type DataMatrix struct {
	vols map[[2]int]units.DataSize
	max  units.DataSize
}

// NewDataMatrix returns an empty matrix.
func NewDataMatrix() *DataMatrix {
	return &DataMatrix{vols: make(map[[2]int]units.DataSize)}
}

// Add accumulates volume onto the directed pair (from, to).
func (m *DataMatrix) Add(from, to int, vol units.DataSize) {
	if vol <= 0 || from == to {
		return
	}
	k := [2]int{from, to}
	m.vols[k] += vol
	if m.vols[k] > m.max {
		m.max = m.vols[k]
	}
}

// Vol returns the directed volume from->to.
func (m *DataMatrix) Vol(from, to int) units.DataSize {
	return m.vols[[2]int{from, to}]
}

// Max returns the largest directed volume seen, the natural normalization
// reference for attraction forces.
func (m *DataMatrix) Max() units.DataSize { return m.max }

// Mean returns the average non-zero directed volume (0 when empty). Force
// normalization against a multiple of the mean keeps attraction meaningful
// under heavy-tailed volume distributions, where normalizing by the maximum
// would flatten almost every pair to zero.
func (m *DataMatrix) Mean() units.DataSize {
	if len(m.vols) == 0 {
		return 0
	}
	var sum units.DataSize
	for _, v := range m.vols {
		sum += v
	}
	return units.DataSize(float64(sum) / float64(len(m.vols)))
}

// Len returns the number of non-zero directed pairs.
func (m *DataMatrix) Len() int { return len(m.vols) }

// Each calls fn for every non-zero directed pair. Iteration order is
// unspecified; callers needing determinism must not depend on it (the
// embedding accumulates commutative sums, which is safe).
func (m *DataMatrix) Each(fn func(from, to int, vol units.DataSize)) {
	for k, v := range m.vols {
		fn(k[0], k[1], v)
	}
}

// TotalBetween sums vol(a->b)+vol(b->a) — the undirected exchange intensity
// used by graph-partitioning baselines.
func (m *DataMatrix) TotalBetween(a, b int) units.DataSize {
	return m.Vol(a, b) + m.Vol(b, a)
}
