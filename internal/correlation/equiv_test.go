package correlation_test

import (
	"fmt"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/correlation"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

// TestIncrementalEquivalence is the streaming daemon's foundational
// property: a ProfileSet/DataMatrix amended per arrival, departure and
// telemetry replace must be *bit-equal*, under every observable query, to
// containers compiled from scratch over the surviving VM set. It drives
// both containers with real workload churn (two presets x two seeds) and
// checks at periodic checkpoints.
func TestIncrementalEquivalence(t *testing.T) {
	for _, preset := range []string{"paper-geo3dc", "geo5dc-dynamic"} {
		for _, seed := range []uint64{1, 2} {
			t.Run(fmt.Sprintf("%s-seed%d", preset, seed), func(t *testing.T) {
				runEquiv(t, preset, seed)
			})
		}
	}
}

type volAdd struct {
	from, to int
	vol      units.DataSize
}

func runEquiv(t *testing.T, preset string, seed uint64) {
	spec, err := config.Preset(preset)
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.02
	spec.Seed = seed
	sc, err := config.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := sc.Workload
	const samples = 12
	arr, dep := trace.Diffs(w, 24)

	inc := correlation.NewProfileSet(samples)
	incDM := correlation.NewDataMatrix()

	// The from-scratch oracle's replay log: surviving ids in chronological
	// arrival order with their current profiles, and surviving volume adds
	// in original add order.
	var order []int
	profiles := map[int][]float64{}
	var volLog []volAdd
	live := map[int]bool{}
	pairSeen := map[[2]int]bool{}

	checked := 0
	for sl := timeutil.Slot(0); sl < timeutil.Slot(len(arr)); sl++ {
		obs := sl
		if sl > 0 {
			obs = sl - 1
		}
		// Generation-counter contract under real churn: snapshot every live
		// id's counters, track exactly which ids this slot's events touch,
		// and afterwards require bumps on touched ids and stillness
		// everywhere else (the invariant the embedding force cache trusts).
		psGens := map[int]uint64{}
		dmGens := map[int]uint64{}
		for id := range live {
			psGens[id] = inc.Gen(id)
			dmGens[id] = incDM.Gen(id)
		}
		psTouched := map[int]bool{}
		dmTouched := map[int]bool{}
		for _, id := range dep[sl] {
			psTouched[id] = true
			dmTouched[id] = true
			for _, va := range volLog {
				// Removing id drops its cells: both endpoints' rows change.
				if va.from == id {
					dmTouched[va.to] = true
				}
				if va.to == id {
					dmTouched[va.from] = true
				}
			}
			inc.Remove(id)
			incDM.RemoveVM(id)
			delete(live, id)
			delete(profiles, id)
			for k, v := range order {
				if v == id {
					order = append(order[:k], order[k+1:]...)
					break
				}
			}
			wlog := volLog[:0]
			for _, va := range volLog {
				if va.from == id || va.to == id {
					delete(pairSeen, [2]int{va.from, va.to})
					continue
				}
				wlog = append(wlog, va)
			}
			volLog = wlog
		}
		for _, id := range arr[sl] {
			p := w.SlotProfile(id, obs, samples)
			inc.Add(id, p)
			psTouched[id] = true
			live[id] = true
			profiles[id] = p
			order = append(order, id)
		}
		// Telemetry-replace path: every third slot every live profile is
		// re-Added with fresh samples, exercising in-place arena overwrite,
		// freelist reuse and the inline order re-sort under built orders.
		if sl%3 == 2 {
			inc.EnsureOrders(nil)
			for _, id := range order {
				p := w.SlotProfile(id, sl, samples)
				inc.Add(id, p)
				psTouched[id] = true
				profiles[id] = p
			}
		}
		for _, e := range w.PlannedVolumes(obs, sl) {
			if !live[e.From] || !live[e.To] {
				continue
			}
			key := [2]int{e.From, e.To}
			if pairSeen[key] {
				continue
			}
			pairSeen[key] = true
			incDM.Add(e.From, e.To, e.Vol)
			dmTouched[e.From] = true
			dmTouched[e.To] = true
			volLog = append(volLog, volAdd{e.From, e.To, e.Vol})
		}
		for id := range live {
			before, known := psGens[id]
			if psTouched[id] {
				if known && inc.Gen(id) <= before {
					t.Fatalf("slot %d: id %d profile churn did not bump its gen (%d -> %d)",
						sl, id, before, inc.Gen(id))
				}
			} else if known && inc.Gen(id) != before {
				t.Fatalf("slot %d: untouched id %d profile gen moved (%d -> %d)",
					sl, id, before, inc.Gen(id))
			}
			before, known = dmGens[id]
			if dmTouched[id] {
				if known && incDM.Gen(id) <= before {
					t.Fatalf("slot %d: id %d volume churn did not bump its gen (%d -> %d)",
						sl, id, before, incDM.Gen(id))
				}
			} else if known && incDM.Gen(id) != before {
				t.Fatalf("slot %d: untouched id %d volume gen moved (%d -> %d)",
					sl, id, before, incDM.Gen(id))
			}
		}
		if sl%4 == 3 || sl == timeutil.Slot(len(arr))-1 {
			checkEquiv(t, sl, inc, incDM, order, profiles, volLog, samples)
			checked++
		}
	}
	if checked == 0 || len(order) == 0 {
		t.Fatalf("degenerate run: %d checkpoints, %d survivors", checked, len(order))
	}
}

func checkEquiv(t *testing.T, sl timeutil.Slot, inc *correlation.ProfileSet, incDM *correlation.DataMatrix,
	order []int, profiles map[int][]float64, volLog []volAdd, samples int) {
	t.Helper()

	fresh := correlation.NewProfileSet(samples)
	for _, id := range order {
		fresh.Add(id, profiles[id])
	}
	if inc.Len() != fresh.Len() {
		t.Fatalf("slot %d: Len: incremental %d, fresh %d", sl, inc.Len(), fresh.Len())
	}
	for _, id := range order {
		pi, pf := inc.Profile(id), fresh.Profile(id)
		if len(pi) != len(pf) {
			t.Fatalf("slot %d: id %d profile length %d vs %d", sl, id, len(pi), len(pf))
		}
		for k := range pi {
			if pi[k] != pf[k] {
				t.Fatalf("slot %d: id %d profile[%d]: %v vs %v", sl, id, k, pi[k], pf[k])
			}
		}
		if inc.Peak(id) != fresh.Peak(id) {
			t.Fatalf("slot %d: id %d Peak: %v vs %v", sl, id, inc.Peak(id), fresh.Peak(id))
		}
		if inc.Mean(id) != fresh.Mean(id) {
			t.Fatalf("slot %d: id %d Mean: %v vs %v", sl, id, inc.Mean(id), fresh.Mean(id))
		}
	}
	// CPU correlation through the pruned ordered kernel on both sides.
	inc.EnsureOrders(nil)
	fresh.EnsureOrders(nil)
	n := len(order)
	if n > 40 {
		n = 40
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := order[i], order[j]
			if ci, cf := inc.CPUCorr(a, b), fresh.CPUCorr(a, b); ci != cf {
				t.Fatalf("slot %d: CPUCorr(%d,%d): %v vs %v", sl, a, b, ci, cf)
			}
		}
	}

	freshDM := correlation.NewDataMatrix()
	for _, va := range volLog {
		freshDM.Add(va.from, va.to, va.vol)
	}
	if incDM.Len() != freshDM.Len() {
		t.Fatalf("slot %d: dm Len: %d vs %d", sl, incDM.Len(), freshDM.Len())
	}
	if incDM.Max() != freshDM.Max() {
		t.Fatalf("slot %d: dm Max: %v vs %v", sl, incDM.Max(), freshDM.Max())
	}
	if incDM.Mean() != freshDM.Mean() {
		t.Fatalf("slot %d: dm Mean: %v vs %v", sl, incDM.Mean(), freshDM.Mean())
	}
	var ti, tf []volAdd
	incDM.Each(func(from, to int, vol units.DataSize) { ti = append(ti, volAdd{from, to, vol}) })
	freshDM.Each(func(from, to int, vol units.DataSize) { tf = append(tf, volAdd{from, to, vol}) })
	if len(ti) != len(tf) {
		t.Fatalf("slot %d: dm Each count: %d vs %d", sl, len(ti), len(tf))
	}
	for k := range ti {
		if ti[k] != tf[k] {
			t.Fatalf("slot %d: dm Each[%d]: %+v vs %+v", sl, k, ti[k], tf[k])
		}
	}
}
