package correlation

import (
	"math"
	"testing"

	"geovmp/internal/units"
)

func TestDataMatrixMean(t *testing.T) {
	m := NewDataMatrix()
	if m.Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
	m.Add(1, 2, 10*units.Megabyte)
	m.Add(2, 3, 30*units.Megabyte)
	if got := m.Mean(); math.Abs(float64(got-20*units.Megabyte)) > 1 {
		t.Fatalf("mean = %v, want 20 MB", got)
	}
	// Accumulation onto an existing pair changes the mean, not the count.
	m.Add(1, 2, 20*units.Megabyte)
	if got := m.Mean(); math.Abs(float64(got-30*units.Megabyte)) > 1 {
		t.Fatalf("mean after accumulate = %v, want 30 MB", got)
	}
}

func TestPeakCoincidenceHalfForPerfectStagger(t *testing.T) {
	// Identical peaks perfectly staggered approach 1/2 as the baseline
	// falls: with zero baseline exactly 0.5.
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := PeakCoincidence(a, b); got != 0.5 {
		t.Fatalf("perfect stagger = %v, want 0.5", got)
	}
}

func TestPeakCoincidenceScaleInvariant(t *testing.T) {
	a := []float64{0.1, 0.8, 0.2}
	b := []float64{0.3, 0.6, 0.1}
	c1 := PeakCoincidence(a, b)
	a2 := make([]float64, len(a))
	b2 := make([]float64, len(b))
	for i := range a {
		a2[i] = a[i] * 3
		b2[i] = b[i] * 3
	}
	c2 := PeakCoincidence(a2, b2)
	if math.Abs(c1-c2) > 1e-12 {
		t.Fatalf("not scale invariant: %v vs %v", c1, c2)
	}
}

func TestPearsonShiftInvariant(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	b := []float64{2, 4, 6, 4, 2}
	shifted := make([]float64, len(b))
	for i := range b {
		shifted[i] = b[i] + 100
	}
	if math.Abs(Pearson(a, b)-Pearson(a, shifted)) > 1e-12 {
		t.Fatal("Pearson not shift invariant")
	}
	if math.Abs(Pearson(a, b)-1) > 1e-12 {
		t.Fatal("linear relation should give r=1")
	}
}

func TestProfileSetOwnership(t *testing.T) {
	ps := NewProfileSet(3)
	prof := []float64{0.5, 0.6, 0.7}
	ps.Add(1, prof)
	// Standard-length rows are copied into the set's contiguous arena (the
	// documented cache-locality contract): the caller keeps its slice and
	// later mutations do not leak into the set.
	got := ps.Profile(1)
	if &got[0] == &prof[0] {
		t.Fatal("standard-length profile should be copied into the arena")
	}
	prof[0] = 99
	if ps.Profile(1)[0] != 0.5 {
		t.Fatal("caller mutation leaked into the set")
	}
	// Odd-length rows are retained as-is.
	odd := []float64{0.1, 0.2}
	ps.Add(2, odd)
	if oddGot := ps.Profile(2); &oddGot[0] != &odd[0] {
		t.Fatal("odd-length profile should be retained, not copied")
	}
}

func TestCombinedPeakSingleProfile(t *testing.T) {
	if got := CombinedPeak([][]float64{{0.3, 0.9, 0.1}}); got != 0.9 {
		t.Fatalf("single profile combined peak = %v", got)
	}
}
