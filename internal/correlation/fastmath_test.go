package correlation

import (
	"math"
	"testing"

	"geovmp/internal/rng"
)

// fastProfiles builds an adversarial mix of profile shapes: random loads,
// near-idle rows (forcing the quantized denominator fallback), constant
// ties, single-sample rows, saturated rows above the quantizable range,
// and exact-zero rows.
func fastProfiles(seed uint64, n, samples int) [][]float64 {
	profs := make([][]float64, n)
	for i := range profs {
		k := uint64(i)
		switch i % 6 {
		case 0: // generic random load
			p := make([]float64, samples)
			for t := range p {
				p[t] = rng.Noise01(seed, k, uint64(t))
			}
			profs[i] = p
		case 1: // near idle: peaks sum below the quantized denominator floor
			p := make([]float64, samples)
			for t := range p {
				p[t] = rng.Noise01(seed, k, uint64(t)) * 0.03
			}
			profs[i] = p
		case 2: // constant ties
			p := make([]float64, samples)
			c := 0.25 + 0.5*rng.Noise01(seed, k)
			for t := range p {
				p[t] = c
			}
			profs[i] = p
		case 3: // short row: prefix semantics against full-length partners
			profs[i] = []float64{rng.Noise01(seed, k)}
		case 4: // saturated beyond the uint16 fixed-point range
			p := make([]float64, samples)
			for t := range p {
				p[t] = 20 * rng.Noise01(seed, k, uint64(t))
			}
			profs[i] = p
		default: // all zero
			profs[i] = make([]float64, samples)
		}
	}
	return profs
}

// TestFastKernelErrorBudget is the property test of the fast mode's error
// proof: for every pair — including unquantizable rows, near-idle
// fallbacks and missing ids — |fast − exact| ≤ FastEps.
func TestFastKernelErrorBudget(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		const n, samples = 60, 17
		ps := NewProfileSet(samples)
		ps.SetFastMath(true)
		for i, p := range fastProfiles(seed, n, samples) {
			ps.Add(i, p)
		}
		ps.EnsureOrders(nil)

		js := make([]int, 0, n+1)
		for j := 0; j < n; j++ {
			js = append(js, j)
		}
		js = append(js, n+7) // missing id: both kernels answer neutral
		exact := make([]float64, len(js))
		fast := make([]float64, len(js))
		worst := 0.0
		for i := 0; i < n; i++ {
			ps.CPUCorrInto(exact, i, js)
			ps.CPUCorrFastInto(fast, i, js)
			for k := range js {
				if d := math.Abs(fast[k] - exact[k]); d > FastEps {
					t.Fatalf("seed %d pair (%d,%d): |fast-exact| = %v > FastEps %v",
						seed, i, js[k], d, FastEps)
				} else if d > worst {
					worst = d
				}
				if one := ps.CPUCorrFast(i, js[k]); one != fast[k] {
					t.Fatalf("CPUCorrFast(%d,%d) = %v, batched = %v", i, js[k], one, fast[k])
				}
			}
		}
		t.Logf("seed %d: worst |fast-exact| = %.2e (budget %.2e)", seed, worst, FastEps)
	}
}

// TestFastKernelDisabledMatchesExact verifies fast entry points degrade to
// the exact kernel when fast math is off or quantization was rejected.
func TestFastKernelDisabledMatchesExact(t *testing.T) {
	ps := NewProfileSet(8)
	ps.Add(1, []float64{0.2, 0.9, 0.4})
	ps.Add(2, []float64{0.5, 0.1, 0.8})
	ps.EnsureOrders(nil)
	if got, want := ps.CPUCorrFast(1, 2), ps.CPUCorr(1, 2); got != want {
		t.Fatalf("fast math off: CPUCorrFast = %v, CPUCorr = %v", got, want)
	}
	ps.SetFastMath(true)
	ps.Add(3, []float64{25.0, 0.1}) // unquantizable: > uint16 range
	ps.EnsureOrders(nil)
	if got, want := ps.CPUCorrFast(3, 2), ps.CPUCorr(3, 2); got != want {
		t.Fatalf("unquantizable anchor: CPUCorrFast = %v, CPUCorr = %v", got, want)
	}
	if got, want := ps.CPUCorrFast(2, 3), ps.CPUCorr(2, 3); got != want {
		t.Fatalf("unquantizable partner: CPUCorrFast = %v, CPUCorr = %v", got, want)
	}
}

// TestProfileSetGenerations pins the change-counter contract the embedding
// cache validates against: Add/Remove bump exactly the touched id, Reset
// bumps every stored id, and reads never bump anything.
func TestProfileSetGenerations(t *testing.T) {
	ps := NewProfileSet(8)
	snap := func(ids ...int) []uint64 {
		g := make([]uint64, len(ids))
		for k, id := range ids {
			g[k] = ps.Gen(id)
		}
		return g
	}
	ps.Add(1, []float64{0.1, 0.2})
	ps.Add(2, []float64{0.3, 0.4})
	ps.Add(3, []float64{0.5, 0.6})
	before := snap(1, 2, 3)

	ps.Add(2, []float64{0.7, 0.8}) // replace
	after := snap(1, 2, 3)
	if after[0] != before[0] || after[2] != before[2] {
		t.Fatalf("replace of 2 moved untouched gens: %v -> %v", before, after)
	}
	if after[1] <= before[1] {
		t.Fatalf("replace of 2 did not bump its gen: %v -> %v", before[1], after[1])
	}

	before = after
	ps.Remove(3)
	after = snap(1, 2, 3)
	if after[0] != before[0] || after[1] != before[1] {
		t.Fatalf("remove of 3 moved untouched gens: %v -> %v", before, after)
	}
	if after[2] <= before[2] {
		t.Fatalf("remove of 3 did not bump its gen")
	}

	ps.EnsureOrders(nil)
	_ = ps.CPUCorr(1, 2)
	if got := snap(1, 2, 3); got[0] != after[0] || got[1] != after[1] {
		t.Fatalf("reads bumped gens: %v -> %v", after, got)
	}

	before = snap(1, 2)
	ps.Reset()
	after = snap(1, 2)
	for k := range after {
		if after[k] <= before[k] {
			t.Fatalf("Reset did not bump stored id %d: %v -> %v", k+1, before, after)
		}
	}
	if ps.Gen(99) != 0 {
		t.Fatalf("never-seen id has nonzero gen")
	}
}

// TestDataMatrixGenerations pins the volume matrix's counters: Add bumps
// both endpoints and nothing else; RemoveVM bumps the id and every
// counterpart it communicated with; Reset bumps every stored endpoint.
func TestDataMatrixGenerations(t *testing.T) {
	m := NewDataMatrix()
	snap := func(ids ...int) []uint64 {
		g := make([]uint64, len(ids))
		for k, id := range ids {
			g[k] = m.Gen(id)
		}
		return g
	}
	m.Add(1, 2, 100)
	m.Add(2, 3, 50)
	before := snap(1, 2, 3, 4)

	m.Add(1, 2, 25) // accumulate on an existing cell
	after := snap(1, 2, 3, 4)
	if after[0] <= before[0] || after[1] <= before[1] {
		t.Fatalf("Add(1,2) did not bump both endpoints: %v -> %v", before, after)
	}
	if after[2] != before[2] || after[3] != before[3] {
		t.Fatalf("Add(1,2) moved unrelated gens: %v -> %v", before, after)
	}

	before = after
	m.RemoveVM(2)
	after = snap(1, 2, 3, 4)
	// 2 communicated with 1 and 3: all three must move, 4 must not.
	for k, id := range []int{1, 2, 3} {
		if after[k] <= before[k] {
			t.Fatalf("RemoveVM(2) did not bump id %d: %v -> %v", id, before, after)
		}
	}
	if after[3] != before[3] {
		t.Fatalf("RemoveVM(2) moved uninvolved id 4")
	}

	m.Add(5, 6, 10)
	before = snap(5, 6)
	m.Reset()
	after = snap(5, 6)
	for k := range after {
		if after[k] <= before[k] {
			t.Fatalf("Reset did not bump stored endpoint %d: %v -> %v", k+5, before, after)
		}
	}
}

// BenchmarkCPUCorrInto measures the exact pruned kernel against the
// quantized fast kernel on the same mixed-length row population, so
// kernel-level wins are visible without running a full experiment cell.
func BenchmarkCPUCorrInto(b *testing.B) {
	const n, samples = 2048, 48
	build := func(fast bool) (*ProfileSet, []int) {
		ps := NewProfileSet(samples)
		ps.SetFastMath(fast)
		for i := 0; i < n; i++ {
			ln := samples
			switch i % 4 {
			case 1:
				ln = samples / 2
			case 3:
				ln = samples / 6
			}
			p := make([]float64, ln)
			for t := range p {
				p[t] = rng.Noise01(7, uint64(i), uint64(t))
			}
			ps.Add(i, p)
		}
		ps.EnsureOrders(nil)
		js := make([]int, n)
		for j := range js {
			js[j] = j
		}
		return ps, js
	}
	for _, mode := range []string{"exact", "fast"} {
		b.Run(mode, func(b *testing.B) {
			ps, js := build(mode == "fast")
			dst := make([]float64, n)
			kernel := ps.CPUCorrInto
			if mode == "fast" {
				kernel = ps.CPUCorrFastInto
			}
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				kernel(dst, it%n, js)
			}
			b.ReportMetric(float64(b.N)*float64(n)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
		})
	}
}
