package correlation

import (
	"math"
	"testing"

	"geovmp/internal/par"
	"geovmp/internal/rng"
)

// randProfile synthesizes a deterministic pseudo-random profile. Values are
// non-negative like real utilizations; a zero fraction of samples is forced
// to exactly 0 so ties and flat stretches occur.
func randProfile(src *rng.Source, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		switch src.Intn(5) {
		case 0:
			p[i] = 0
		case 1:
			p[i] = 0.5 // frequent exact ties across profiles
		default:
			p[i] = src.Float64()
		}
	}
	return p
}

// TestPrunedKernelMatchesPeakCoincidence is the property test of the pruned
// kernel: over randomized profiles — including all-zero rows and equal-peak
// ties — every pairwise CPUCorr with built orders must equal the reference
// PeakCoincidence bit for bit, and CPUCorrInto must agree with per-pair
// CPUCorr.
func TestPrunedKernelMatchesPeakCoincidence(t *testing.T) {
	src := rng.New(7).Derive("pruned-kernel")
	const samples = 12
	for trial := 0; trial < 25; trial++ {
		ps := NewProfileSet(samples)
		n := 8 + src.Intn(24)
		rows := make([][]float64, n)
		for id := 0; id < n; id++ {
			var p []float64
			switch {
			case trial == 0 && id < 3:
				p = make([]float64, samples) // all-zero profiles
			case id%7 == 3:
				// Equal-peak ties: the shared maximum lands on a
				// VM-dependent sample.
				p = make([]float64, samples)
				p[id%samples] = 0.75
				p[(id+5)%samples] = 0.75
			case id%5 == 4:
				p = randProfile(src, samples/2) // odd-length rows
			case id%11 == 10:
				p = randProfile(src, samples+6) // longer odd rows
			default:
				p = randProfile(src, samples)
			}
			rows[id] = p
			ps.Add(id, p)
		}
		ps.EnsureOrders(nil)
		dst := make([]float64, n)
		js := make([]int, n)
		for j := range js {
			js[j] = j
		}
		for i := 0; i < n; i++ {
			ps.CPUCorrInto(dst, i, js)
			for j := 0; j < n; j++ {
				want := PeakCoincidence(rows[i], rows[j])
				if got := ps.CPUCorr(i, j); got != want {
					t.Fatalf("trial %d: CPUCorr(%d, %d) = %v, want PeakCoincidence %v",
						trial, i, j, got, want)
				}
				if dst[j] != want {
					t.Fatalf("trial %d: CPUCorrInto(%d)[%d] = %v, want %v",
						trial, i, j, dst[j], want)
				}
			}
		}
	}
}

// TestEnsureOrdersIncrementalAndParallel checks that orders survive
// incremental Adds, that a parallel build equals the serial one, and that
// Reset invalidates them.
func TestEnsureOrdersIncrementalAndParallel(t *testing.T) {
	src := rng.New(11).Derive("orders")
	const samples = 16
	serial := NewProfileSet(samples)
	parallel := NewProfileSet(samples)
	rows := make([][]float64, 600)
	for id := range rows {
		rows[id] = randProfile(src, samples)
	}
	for id := 0; id < 300; id++ {
		serial.Add(id, rows[id])
		parallel.Add(id, rows[id])
	}
	serial.EnsureOrders(nil)
	parallel.EnsureOrders(par.NewBudget(8))
	for id := 300; id < 600; id++ {
		serial.Add(id, rows[id])
		parallel.Add(id, rows[id])
	}
	serial.EnsureOrders(nil)
	parallel.EnsureOrders(par.NewBudget(8))
	if len(serial.ord) != 600*samples || len(parallel.ord) != 600*samples {
		t.Fatalf("ord lengths = %d / %d, want %d", len(serial.ord), len(parallel.ord), 600*samples)
	}
	for k := range serial.ord {
		if serial.ord[k] != parallel.ord[k] {
			t.Fatalf("parallel order differs from serial at %d", k)
		}
	}
	// Orders must be descending by value with ascending-index ties.
	for r := 0; r < 600; r++ {
		row := rows[r]
		ord := serial.ord[r*samples : (r+1)*samples]
		for k := 1; k < samples; k++ {
			prev, cur := ord[k-1], ord[k]
			if row[prev] < row[cur] || (row[prev] == row[cur] && prev > cur) {
				t.Fatalf("row %d: order not descending-stable at %d", r, k)
			}
		}
	}
	serial.Reset()
	if len(serial.ord) != 0 {
		t.Fatal("Reset kept stale orders")
	}
	// Unpruned queries after Reset+Add without EnsureOrders still work.
	serial.Add(0, rows[0])
	serial.Add(1, rows[1])
	if got, want := serial.CPUCorr(0, 1), PeakCoincidence(rows[0], rows[1]); got != want {
		t.Fatalf("unpruned fallback after Reset = %v, want %v", got, want)
	}
}

// TestPrunedKernelEarlyExitBound hand-checks the bound on a crafted pair
// where pruning must stop after the first sample.
func TestPrunedKernelEarlyExitBound(t *testing.T) {
	// a's largest sample coincides with b's peak: best = 1.0 + 0.4 after
	// one step, and a[t]+peakB <= best for every other t.
	a := []float64{0.1, 1.0, 0.2, 0.3}
	b := []float64{0.0, 0.4, 0.4, 0.1}
	ps := NewProfileSet(4)
	ps.Add(0, a)
	ps.Add(1, b)
	ps.EnsureOrders(nil)
	want := PeakCoincidence(a, b)
	if got := ps.CPUCorr(0, 1); got != want {
		t.Fatalf("CPUCorr = %v, want %v", got, want)
	}
	if want != 1.4/1.4 {
		t.Fatalf("fixture broken: want %v", want)
	}
	if math.IsNaN(want) {
		t.Fatal("unexpected NaN")
	}
}
