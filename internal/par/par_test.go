package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks the contract that matters for the
// disjoint-write loops built on For: every index of [0, n) is visited
// exactly once, for serial (nil budget) and parallel execution alike.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget *Budget
	}{
		{"nil-budget", nil},
		{"empty-budget", NewBudget(0)},
		{"wide-budget", NewBudget(16)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{0, 1, 7, 64, 1000} {
				counts := make([]int32, n)
				For(tc.budget, n, 13, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad shard [%d, %d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("n=%d: index %d visited %d times", n, i, c)
					}
				}
			}
		})
	}
}

// TestForShardBoundariesFixed asserts shard boundaries depend only on n and
// grain, never on the budget: the exact same (lo, hi) set is produced with
// and without extra workers.
func TestForShardBoundariesFixed(t *testing.T) {
	collect := func(b *Budget) map[[2]int]bool {
		shards := make(chan [2]int, 64)
		For(b, 100, 9, func(lo, hi int) { shards <- [2]int{lo, hi} })
		close(shards)
		out := map[[2]int]bool{}
		for s := range shards {
			out[s] = true
		}
		return out
	}
	serial := collect(nil)
	parallel := collect(NewBudget(8))
	if len(serial) != len(parallel) {
		t.Fatalf("shard count differs: %d vs %d", len(serial), len(parallel))
	}
	for s := range serial {
		if !parallel[s] {
			t.Fatalf("shard %v missing from parallel execution", s)
		}
	}
}

// TestOrderedCombineOrder asserts combine sees shard results in ascending
// shard order regardless of workers — the property that pins float
// summation order.
func TestOrderedCombineOrder(t *testing.T) {
	for _, b := range []*Budget{nil, NewBudget(8)} {
		var got []int
		Ordered(b, 50, 7, func(lo, hi int) int { return lo }, func(lo int) {
			got = append(got, lo)
		})
		want := []int{0, 7, 14, 21, 28, 35, 42, 49}
		if len(got) != len(want) {
			t.Fatalf("combine calls = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("combine order %v, want %v", got, want)
			}
		}
	}
}

// TestOrderedReductionDeterministic sums hashed floats — a non-associative
// reduction — and expects the identical bit pattern at every worker count.
func TestOrderedReductionDeterministic(t *testing.T) {
	sum := func(b *Budget) float64 {
		var total float64
		Ordered(b, 10000, 64, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += 1.0 / float64(i+1)
			}
			return s
		}, func(s float64) { total += s })
		return total
	}
	want := sum(nil)
	for _, extra := range []int{1, 3, 16} {
		if got := sum(NewBudget(extra)); got != want {
			t.Fatalf("extra=%d: sum %v != serial-shard sum %v", extra, got, want)
		}
	}
}

// TestBudgetAccounting exercises acquire/release bookkeeping, including the
// nil receiver.
func TestBudgetAccounting(t *testing.T) {
	var nilB *Budget
	if nilB.Acquire(4) != 0 {
		t.Fatal("nil budget granted workers")
	}
	nilB.Release(4) // must not panic

	b := NewBudget(3)
	if got := b.Acquire(2); got != 2 {
		t.Fatalf("Acquire(2) = %d, want 2", got)
	}
	if got := b.Acquire(5); got != 1 {
		t.Fatalf("Acquire(5) = %d, want the remaining 1", got)
	}
	if got := b.Acquire(1); got != 0 {
		t.Fatalf("Acquire on empty budget = %d, want 0", got)
	}
	b.Release(3)
	if got := b.Extra(); got != 3 {
		t.Fatalf("Extra after release = %d, want 3", got)
	}
	// Released slots beyond the initial allowance are allowed: retiring
	// sweep workers donate their own slot.
	b.Release(1)
	if got := b.Extra(); got != 4 {
		t.Fatalf("Extra after donation = %d, want 4", got)
	}
}

// TestForConcurrentHolders drives many For loops that share one budget from
// concurrent goroutines — the engine's narrow-grid shape — mostly for the
// race detector's benefit.
func TestForConcurrentHolders(t *testing.T) {
	b := NewBudget(4)
	done := make(chan [256]int64, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var out [256]int64
			For(b, len(out), 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = int64(i * i)
				}
			})
			done <- out
		}()
	}
	for g := 0; g < 8; g++ {
		out := <-done
		for i := range out {
			if out[i] != int64(i*i) {
				t.Fatalf("holder result corrupted at %d", i)
			}
		}
	}
	if b.Extra() != 4 {
		t.Fatalf("budget leaked: Extra = %d, want 4", b.Extra())
	}
}
