// Package par provides the deterministic intra-cell parallelism primitives
// the sweep engine and the placement phases share: a sharded parallel-for
// with *fixed* shard boundaries and an ordered reduction, plus a Budget that
// apportions a global worker allowance among concurrent holders.
//
// Determinism is the design constraint. Shard boundaries are a pure function
// of the problem size and the grain — never of the worker count — and
// reductions combine per-shard results in ascending shard order, so every
// float summation order is independent of how many goroutines happened to
// run. Loops whose shards write disjoint outputs (the common case here:
// force-cache rows, per-DC fine plans, per-VM compiled tables) are therefore
// bit-identical to their serial execution at any worker count, which is what
// lets the experiment engine promise byte-identical ResultSet JSON whether a
// cell ran alone on one goroutine or sharded across sixteen.
package par

import (
	"sync"
	"sync/atomic"
)

// Budget is a shared allowance of extra workers. The experiment engine
// creates one per sweep holding Parallelism minus the number of cell
// goroutines, so cells x intra-cell shards never oversubscribe the
// configured parallelism; as cell workers retire they release their own
// slot into the budget, letting the tail cells of a narrow grid go wider.
//
// A nil *Budget is valid everywhere and grants nothing: every sharded loop
// then runs serially on the caller's goroutine. Results are identical
// either way.
type Budget struct {
	extra atomic.Int64
}

// NewBudget returns a budget holding `extra` additional workers beyond the
// goroutines its holders already own. A non-positive allowance is an empty
// (but usable) budget.
func NewBudget(extra int) *Budget {
	b := &Budget{}
	if extra > 0 {
		b.extra.Store(int64(extra))
	}
	return b
}

// Acquire claims up to max extra workers and returns how many were granted
// (possibly zero). Every grant must be returned with Release.
func (b *Budget) Acquire(max int) int {
	if b == nil || max <= 0 {
		return 0
	}
	for {
		have := b.extra.Load()
		if have <= 0 {
			return 0
		}
		take := int64(max)
		if take > have {
			take = have
		}
		if b.extra.CompareAndSwap(have, have-take) {
			return int(take)
		}
	}
}

// Release returns n previously acquired workers to the budget. Releasing
// into a nil budget is a no-op, so holders need not guard their cleanup.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.extra.Add(int64(n))
}

// Extra reports the currently unclaimed allowance (diagnostics only; the
// value may be stale by the time the caller acts on it).
func (b *Budget) Extra() int {
	if b == nil {
		return 0
	}
	return int(b.extra.Load())
}

// For splits [0, n) into fixed shards of `grain` indices — boundaries depend
// only on n and grain, never on the worker count — and calls fn once per
// shard. The caller's goroutine always participates; up to shards-1 extra
// workers are borrowed from b (nil borrows none) and returned before For
// does. Shards are claimed dynamically, so callers get load balancing for
// free, but fn must make shard results independent of claim order: write
// only outputs derived from [lo, hi) and read only state that no shard
// writes. Under that contract the outcome is bit-identical to the serial
// loop at any worker count.
func For(b *Budget, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	shards := (n + grain - 1) / grain
	extra := 0
	if shards > 1 {
		extra = b.Acquire(shards - 1)
	}
	if extra == 0 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	defer b.Release(extra)
	var next atomic.Int64
	work := func() {
		for {
			s := int(next.Add(1) - 1)
			if s >= shards {
				return
			}
			lo := s * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Ordered is the reduction form of For: eval runs once per fixed shard (in
// parallel, claim order unspecified) and combine consumes the shard results
// serially in ascending shard order. Because both the shard boundaries and
// the combine order are pure functions of n and grain, a non-associative
// reduction — float summation, first-wins merges — still yields the same
// result at any worker count. It only matches the plain serial loop
// bit-for-bit when the combine operation is associative over the shard
// split (min/max merges, integer sums); use it where that holds, or accept
// the shard-structured order as the definition.
func Ordered[T any](b *Budget, n, grain int, eval func(lo, hi int) T, combine func(T)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	shards := (n + grain - 1) / grain
	results := make([]T, shards)
	For(b, shards, 1, func(slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			results[s] = eval(lo, hi)
		}
	})
	for i := range results {
		combine(results[i])
	}
}
