// Package fault compiles deterministic failure schedules for the
// simulator: server-batch outages that shave a fraction of one DC's
// fleet, whole-DC outages, inter-DC link partitions/degradations, and
// PV-plant dropouts — each with a repair time.
//
// Like workloads, a schedule is compiled once per scenario×seed into
// flat per-slot tables and then only read during simulation, so results
// are bit-identical at any parallelism. Failures come from two sources
// that compose: an explicit window list (Outages) for pinned reference
// scenarios, and per-day stochastic rates drawn from derived rng
// sub-streams (one stream per failure kind, slot-major / target-minor
// draw order, so adding one kind never perturbs another).
package fault

import (
	"fmt"
	"math"

	"geovmp/internal/rng"
	"geovmp/internal/timeutil"
)

// Kind discriminates failure targets.
type Kind int

// Failure kinds.
const (
	// KindServer takes down a fraction (Frac) of one DC's servers.
	KindServer Kind = iota + 1
	// KindDC takes down a whole data center: capacity zero, all
	// resident VMs must evacuate, storage shards there unavailable.
	KindDC
	// KindLink degrades the directed DC→To link: effective bandwidth is
	// multiplied by Frac (0 models a partition; the compiler floors the
	// factor at a small positive value so latency math stays finite).
	KindLink
	// KindPV drops a fraction (Frac) of one DC's PV production.
	KindPV
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindDC:
		return "dc"
	case KindLink:
		return "link"
	case KindPV:
		return "pv"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// linkFloor is the minimum effective link factor: a "partition" keeps a
// trickle of bandwidth so transfer-time math stays finite, and the huge
// resulting latencies do the punishing.
const linkFloor = 1e-3

// Outage is one explicit failure window, used to pin reference
// schedules (the geo5dc-faulty preset) independent of the seed.
type Outage struct {
	Kind Kind `json:"kind"`
	// DC is the failing data center (for KindLink, the link source).
	DC int `json:"dc"`
	// To is the link destination; only meaningful for KindLink.
	To int `json:"to,omitempty"`
	// Start is the first affected slot.
	Start timeutil.Slot `json:"start"`
	// Slots is the outage duration in slots (the repair time).
	Slots int `json:"slots"`
	// Frac is the kind-specific severity: fraction of servers lost
	// (KindServer), remaining link-bandwidth factor (KindLink), or
	// fraction of PV lost (KindPV). Ignored for KindDC.
	Frac float64 `json:"frac,omitempty"`
}

// target identifies what an outage window hits, for overlap checks.
func (o Outage) target() [3]int { return [3]int{int(o.Kind), o.DC, o.To} }

// Config declares a failure model. The zero value disables fault
// injection entirely (Enabled returns false) and the engine takes the
// exact code path it takes today.
type Config struct {
	// Outages are explicit pinned failure windows.
	Outages []Outage `json:"outages,omitempty"`

	// ServerFailRatePerDay is the expected number of server-batch
	// failures per DC per day; each takes down ServerFailFrac of the
	// DC's fleet until repaired.
	ServerFailRatePerDay float64 `json:"server_fail_rate_per_day,omitempty"`
	// ServerFailFrac is the fleet fraction lost per stochastic server
	// failure, in (0,1]. Zero selects 0.125.
	ServerFailFrac float64 `json:"server_fail_frac,omitempty"`
	// DCOutageRatePerDay is the expected number of whole-DC outages per
	// DC per day.
	DCOutageRatePerDay float64 `json:"dc_outage_rate_per_day,omitempty"`
	// LinkFailRatePerDay is the expected number of link degradations per
	// directed DC pair per day; each multiplies the link bandwidth by
	// LinkDegradeFactor until repaired.
	LinkFailRatePerDay float64 `json:"link_fail_rate_per_day,omitempty"`
	// LinkDegradeFactor is the remaining-bandwidth factor of a
	// stochastic link failure, in (0,1]. Zero selects 0.1.
	LinkDegradeFactor float64 `json:"link_degrade_factor,omitempty"`
	// PVDropRatePerDay is the expected number of PV dropouts per DC per
	// day; each removes PVDropFrac of production until repaired.
	PVDropRatePerDay float64 `json:"pv_drop_rate_per_day,omitempty"`
	// PVDropFrac is the production fraction lost per PV dropout, in
	// (0,1]. Zero selects 1 (total dropout).
	PVDropFrac float64 `json:"pv_drop_frac,omitempty"`

	// MeanRepairSlots is the mean repair time of stochastic failures in
	// slots (durations are 1 + Exp(mean-1), so every failure lasts at
	// least one slot). Zero selects 2.
	MeanRepairSlots float64 `json:"mean_repair_slots,omitempty"`

	// EvacMovesPerSlot caps emergency evacuation migrations per slot:
	// zero is unlimited, negative disables forced evacuation entirely
	// (stranded VMs just accrue downtime). The evacuation budget is
	// separate from the epoch migration budget — emergencies do not eat
	// the optimizer's allowance.
	EvacMovesPerSlot int `json:"evac_moves_per_slot,omitempty"`
}

// Enabled reports whether the config injects any fault.
func (c Config) Enabled() bool {
	return len(c.Outages) > 0 || c.ServerFailRatePerDay > 0 ||
		c.DCOutageRatePerDay > 0 || c.LinkFailRatePerDay > 0 ||
		c.PVDropRatePerDay > 0
}

// Validate checks the config against a fleet of n DCs. It never
// panics: NaN and negative rates, out-of-range fractions, bad windows
// and overlapping windows on the same target are all rejected with
// errors (the fuzz harness drives adversarial values through here).
func (c Config) Validate(n int) error {
	if err := nonNegRate("server_fail_rate_per_day", c.ServerFailRatePerDay); err != nil {
		return err
	}
	if err := nonNegRate("dc_outage_rate_per_day", c.DCOutageRatePerDay); err != nil {
		return err
	}
	if err := nonNegRate("link_fail_rate_per_day", c.LinkFailRatePerDay); err != nil {
		return err
	}
	if err := nonNegRate("pv_drop_rate_per_day", c.PVDropRatePerDay); err != nil {
		return err
	}
	if err := optFrac01("server_fail_frac", c.ServerFailFrac); err != nil {
		return err
	}
	if err := optFrac01("link_degrade_factor", c.LinkDegradeFactor); err != nil {
		return err
	}
	if err := optFrac01("pv_drop_frac", c.PVDropFrac); err != nil {
		return err
	}
	if c.MeanRepairSlots != 0 && !(c.MeanRepairSlots > 0 && c.MeanRepairSlots < math.Inf(1)) {
		return fmt.Errorf("fault: mean_repair_slots %v out of range", c.MeanRepairSlots)
	}
	for i, o := range c.Outages {
		if err := o.validate(n); err != nil {
			return fmt.Errorf("fault: outage %d: %w", i, err)
		}
		// Overlapping windows on the same target are almost always a
		// config typo and would make severity composition ambiguous.
		for j := 0; j < i; j++ {
			p := c.Outages[j]
			if p.target() != o.target() {
				continue
			}
			if o.Start < p.Start+timeutil.Slot(p.Slots) && p.Start < o.Start+timeutil.Slot(o.Slots) {
				return fmt.Errorf("fault: outages %d and %d overlap on target %v/%d", j, i, o.Kind, o.DC)
			}
		}
	}
	return nil
}

func (o Outage) validate(n int) error {
	switch o.Kind {
	case KindServer, KindDC, KindPV:
	case KindLink:
		if o.To < 0 || o.To >= n {
			return fmt.Errorf("link destination %d out of range [0,%d)", o.To, n)
		}
		if o.To == o.DC {
			return fmt.Errorf("link outage with to == dc == %d", o.DC)
		}
	default:
		return fmt.Errorf("unknown kind %d", int(o.Kind))
	}
	if o.DC < 0 || o.DC >= n {
		return fmt.Errorf("dc %d out of range [0,%d)", o.DC, n)
	}
	if o.Start < 0 {
		return fmt.Errorf("negative start slot %d", o.Start)
	}
	if o.Slots <= 0 {
		return fmt.Errorf("non-positive duration %d", o.Slots)
	}
	switch o.Kind {
	case KindServer, KindPV:
		if !(o.Frac > 0 && o.Frac <= 1) {
			return fmt.Errorf("%v frac %v out of (0,1]", o.Kind, o.Frac)
		}
	case KindLink:
		if !(o.Frac >= 0 && o.Frac < 1) {
			return fmt.Errorf("link factor %v out of [0,1)", o.Frac)
		}
	}
	return nil
}

// nonNegRate rejects NaN, Inf and negative rates. The !(x >= 0)
// comparison is deliberately NaN-catching.
func nonNegRate(name string, x float64) error {
	if !(x >= 0) || math.IsInf(x, 1) {
		return fmt.Errorf("fault: %s %v out of range", name, x)
	}
	return nil
}

// optFrac01 accepts 0 (meaning "use the default") or a value in (0,1].
func optFrac01(name string, x float64) error {
	if x == 0 {
		return nil
	}
	if !(x > 0 && x <= 1) {
		return fmt.Errorf("fault: %s %v out of range", name, x)
	}
	return nil
}

func (c Config) serverFrac() float64 {
	if c.ServerFailFrac > 0 {
		return c.ServerFailFrac
	}
	return 0.125
}

func (c Config) linkFactor() float64 {
	if c.LinkDegradeFactor > 0 {
		return c.LinkDegradeFactor
	}
	return 0.1
}

func (c Config) pvFrac() float64 {
	if c.PVDropFrac > 0 {
		return c.PVDropFrac
	}
	return 1
}

func (c Config) repairSlots() float64 {
	if c.MeanRepairSlots > 0 {
		return c.MeanRepairSlots
	}
	return 2
}

// Transition is one DC availability flip, in slot order; the serve
// daemon's event log consumes these to re-place around outages online.
type Transition struct {
	Slot timeutil.Slot
	DC   int
	Down bool
}

// Schedule is a compiled failure timeline: flat per-slot tables the
// engine reads without further random draws.
type Schedule struct {
	n     int
	slots int

	// capFrac[slot*n+dc] is the remaining server-capacity fraction.
	capFrac []float64
	// dcDown[slot*n+dc] marks a whole-DC outage.
	dcDown []bool
	// pvFrac[slot*n+dc] is the remaining PV-production fraction.
	pvFrac []float64
	// link[slot] is a n×n remaining-bandwidth factor matrix, nil for
	// slots with no link fault (the common case) so the network model
	// can skip the multiply entirely.
	link [][][]float64
}

// NDC returns the fleet size the schedule was compiled for.
func (s *Schedule) NDC() int { return s.n }

// Slots returns the compiled horizon length.
func (s *Schedule) Slots() int { return s.slots }

func (s *Schedule) clampRow(sl timeutil.Slot) int {
	i := int(sl)
	if i < 0 {
		i = 0
	}
	if i >= s.slots {
		i = s.slots - 1
	}
	return i * s.n
}

// CapFrac returns the per-DC remaining capacity fractions for slot sl
// (1 everywhere when healthy). The returned slice aliases the schedule;
// callers must not mutate it.
func (s *Schedule) CapFrac(sl timeutil.Slot) []float64 {
	r := s.clampRow(sl)
	return s.capFrac[r : r+s.n]
}

// DCDown returns the per-DC whole-outage flags for slot sl.
func (s *Schedule) DCDown(sl timeutil.Slot) []bool {
	r := s.clampRow(sl)
	return s.dcDown[r : r+s.n]
}

// PVFrac returns the per-DC remaining PV fractions for slot sl.
func (s *Schedule) PVFrac(sl timeutil.Slot) []float64 {
	r := s.clampRow(sl)
	return s.pvFrac[r : r+s.n]
}

// LinkFactor returns the n×n remaining-bandwidth factors for slot sl,
// or nil when every link is healthy that slot.
func (s *Schedule) LinkFactor(sl timeutil.Slot) [][]float64 {
	i := int(sl)
	if i < 0 || i >= s.slots {
		return nil
	}
	return s.link[i]
}

// AnyFault reports whether slot sl deviates from the healthy world at
// all (capacity, DC, link or PV).
func (s *Schedule) AnyFault(sl timeutil.Slot) bool {
	i := int(sl)
	if i < 0 || i >= s.slots {
		return false
	}
	if s.link[i] != nil {
		return true
	}
	r := i * s.n
	for d := 0; d < s.n; d++ {
		if s.dcDown[r+d] || s.capFrac[r+d] != 1 || s.pvFrac[r+d] != 1 {
			return true
		}
	}
	return false
}

// DCTransitions returns every whole-DC up/down flip in (slot, dc)
// order, including slot-0 initial downs. Serve replay logs append these
// as fault events.
func (s *Schedule) DCTransitions() []Transition {
	var out []Transition
	prev := make([]bool, s.n)
	for sl := 0; sl < s.slots; sl++ {
		r := sl * s.n
		for d := 0; d < s.n; d++ {
			if s.dcDown[r+d] != prev[d] {
				out = append(out, Transition{Slot: timeutil.Slot(sl), DC: d, Down: s.dcDown[r+d]})
				prev[d] = s.dcDown[r+d]
			}
		}
	}
	return out
}

// Compile expands the config into per-slot tables for n DCs over the
// given horizon. Stochastic draws come from sub-streams of seed derived
// per failure kind, in slot-major / target-minor order, so the
// schedule is a pure function of (config, n, slots, seed).
func Compile(cfg Config, n, slots int, seed uint64) *Schedule {
	if n <= 0 || slots <= 0 {
		n, slots = max(n, 1), max(slots, 1)
	}
	s := &Schedule{
		n:       n,
		slots:   slots,
		capFrac: make([]float64, n*slots),
		dcDown:  make([]bool, n*slots),
		pvFrac:  make([]float64, n*slots),
		link:    make([][][]float64, slots),
	}
	for i := range s.capFrac {
		s.capFrac[i] = 1
		s.pvFrac[i] = 1
	}

	for _, o := range cfg.Outages {
		s.apply(o)
	}

	base := rng.New(seed).Derive("fault")
	perSlot := func(rate float64) float64 { return rate / timeutil.SlotsPerDay }
	mean := cfg.repairSlots()

	if cfg.ServerFailRatePerDay > 0 {
		src, p := base.Derive("server"), perSlot(cfg.ServerFailRatePerDay)
		for sl := 0; sl < slots; sl++ {
			for d := 0; d < n; d++ {
				if src.Float64() < p {
					s.apply(Outage{Kind: KindServer, DC: d, Start: timeutil.Slot(sl),
						Slots: duration(src, mean), Frac: cfg.serverFrac()})
				}
			}
		}
	}
	if cfg.DCOutageRatePerDay > 0 {
		src, p := base.Derive("dc"), perSlot(cfg.DCOutageRatePerDay)
		for sl := 0; sl < slots; sl++ {
			for d := 0; d < n; d++ {
				if src.Float64() < p {
					s.apply(Outage{Kind: KindDC, DC: d, Start: timeutil.Slot(sl),
						Slots: duration(src, mean)})
				}
			}
		}
	}
	if cfg.LinkFailRatePerDay > 0 {
		src, p := base.Derive("link"), perSlot(cfg.LinkFailRatePerDay)
		for sl := 0; sl < slots; sl++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					if src.Float64() < p {
						s.apply(Outage{Kind: KindLink, DC: i, To: j, Start: timeutil.Slot(sl),
							Slots: duration(src, mean), Frac: cfg.linkFactor()})
					}
				}
			}
		}
	}
	if cfg.PVDropRatePerDay > 0 {
		src, p := base.Derive("pv"), perSlot(cfg.PVDropRatePerDay)
		for sl := 0; sl < slots; sl++ {
			for d := 0; d < n; d++ {
				if src.Float64() < p {
					s.apply(Outage{Kind: KindPV, DC: d, Start: timeutil.Slot(sl),
						Slots: duration(src, mean), Frac: cfg.pvFrac()})
				}
			}
		}
	}
	return s
}

// duration draws a repair time of at least one slot with the given
// mean: 1 + Exp(mean-1) when the mean exceeds a slot.
func duration(src *rng.Source, mean float64) int {
	if mean <= 1 {
		return 1
	}
	return 1 + int(src.Exp(mean-1))
}

// apply overlays one outage window onto the tables. Overlapping
// windows compose conservatively: capacity and PV fractions multiply,
// link factors take the minimum, DC-down flags OR.
func (s *Schedule) apply(o Outage) {
	lo := int(o.Start)
	hi := lo + o.Slots
	if lo < 0 {
		lo = 0
	}
	if hi > s.slots {
		hi = s.slots
	}
	for sl := lo; sl < hi; sl++ {
		r := sl * s.n
		switch o.Kind {
		case KindServer:
			s.capFrac[r+o.DC] *= 1 - o.Frac
		case KindDC:
			s.dcDown[r+o.DC] = true
			s.capFrac[r+o.DC] = 0
		case KindPV:
			s.pvFrac[r+o.DC] *= 1 - o.Frac
		case KindLink:
			if s.link[sl] == nil {
				m := make([][]float64, s.n)
				for i := range m {
					m[i] = make([]float64, s.n)
					for j := range m[i] {
						m[i][j] = 1
					}
				}
				s.link[sl] = m
			}
			f := o.Frac
			if f < linkFloor {
				f = linkFloor
			}
			if f < s.link[sl][o.DC][o.To] {
				s.link[sl][o.DC][o.To] = f
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
