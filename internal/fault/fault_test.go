package fault

import (
	"math"
	"reflect"
	"testing"

	"geovmp/internal/timeutil"
)

func refConfig() Config {
	return Config{
		Outages: []Outage{
			{Kind: KindDC, DC: 1, Start: 2, Slots: 3},
			{Kind: KindServer, DC: 0, Start: 1, Slots: 4, Frac: 0.25},
			{Kind: KindLink, DC: 0, To: 2, Start: 3, Slots: 2, Frac: 0.05},
			{Kind: KindPV, DC: 2, Start: 0, Slots: 5, Frac: 1},
		},
		ServerFailRatePerDay: 1.5,
		DCOutageRatePerDay:   0.4,
		LinkFailRatePerDay:   0.8,
		PVDropRatePerDay:     1.0,
		MeanRepairSlots:      3,
	}
}

func TestCompileDeterminism(t *testing.T) {
	cfg := refConfig()
	a := Compile(cfg, 4, 48, 7)
	b := Compile(cfg, 4, 48, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (config, seed) compiled to different schedules")
	}
	c := Compile(cfg, 4, 48, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds compiled to identical stochastic schedules")
	}
	// Pinned windows are seed-independent.
	for _, sl := range []timeutil.Slot{2, 3, 4} {
		if !a.DCDown(sl)[1] || !c.DCDown(sl)[1] {
			t.Fatalf("pinned DC outage missing at slot %d", sl)
		}
	}
}

func TestCompileComposition(t *testing.T) {
	// Compile does not re-validate, so overlapping windows exercise the
	// composition rules directly: capacity and PV fractions multiply,
	// link factors take the min, DC-down wins over partial loss.
	cfg := Config{Outages: []Outage{
		{Kind: KindServer, DC: 0, Start: 0, Slots: 2, Frac: 0.5},
		{Kind: KindServer, DC: 0, Start: 1, Slots: 2, Frac: 0.5},
		{Kind: KindDC, DC: 1, Start: 1, Slots: 1},
		{Kind: KindPV, DC: 0, Start: 0, Slots: 1, Frac: 0.3},
		{Kind: KindPV, DC: 0, Start: 0, Slots: 1, Frac: 0.5},
		{Kind: KindLink, DC: 0, To: 1, Start: 0, Slots: 1, Frac: 0.2},
		{Kind: KindLink, DC: 0, To: 1, Start: 0, Slots: 1, Frac: 0},
	}}
	s := Compile(cfg, 2, 4, 1)
	if got := s.CapFrac(0)[0]; got != 0.5 {
		t.Errorf("slot 0 capFrac = %v, want 0.5", got)
	}
	if got := s.CapFrac(1)[0]; got != 0.25 {
		t.Errorf("overlapped slot 1 capFrac = %v, want 0.25", got)
	}
	if got := s.CapFrac(1)[1]; got != 0 || !s.DCDown(1)[1] {
		t.Errorf("DC outage slot 1: capFrac %v down %v, want 0/true", got, s.DCDown(1)[1])
	}
	if got := s.PVFrac(0)[0]; math.Abs(got-0.35) > 1e-12 {
		t.Errorf("composed pvFrac = %v, want 0.35", got)
	}
	lf := s.LinkFactor(0)
	if lf == nil || lf[0][1] != linkFloor {
		t.Errorf("partitioned link factor = %v, want floor %v", lf, linkFloor)
	}
	if s.LinkFactor(1) != nil {
		t.Errorf("healthy slot 1 has a link matrix")
	}
	if !s.AnyFault(0) || !s.AnyFault(2) || s.AnyFault(3) {
		t.Errorf("AnyFault flags wrong: %v %v %v", s.AnyFault(0), s.AnyFault(2), s.AnyFault(3))
	}
}

func TestScheduleClamping(t *testing.T) {
	cfg := Config{Outages: []Outage{{Kind: KindDC, DC: 0, Start: 0, Slots: 1}}}
	s := Compile(cfg, 2, 2, 1)
	if !s.DCDown(-5)[0] {
		t.Errorf("negative slot did not clamp to the first row")
	}
	if s.DCDown(99)[0] {
		t.Errorf("past-horizon slot did not clamp to the last (healthy) row")
	}
	if s.LinkFactor(-1) != nil || s.LinkFactor(99) != nil {
		t.Errorf("out-of-range LinkFactor not nil")
	}
	if s.AnyFault(-1) || s.AnyFault(99) {
		t.Errorf("out-of-range AnyFault not false")
	}
}

func TestDCTransitions(t *testing.T) {
	cfg := Config{Outages: []Outage{
		{Kind: KindDC, DC: 1, Start: 0, Slots: 2},
		{Kind: KindDC, DC: 0, Start: 3, Slots: 2},
	}}
	s := Compile(cfg, 2, 6, 1)
	want := []Transition{
		{Slot: 0, DC: 1, Down: true},
		{Slot: 2, DC: 1, Down: false},
		{Slot: 3, DC: 0, Down: true},
		{Slot: 5, DC: 0, Down: false},
	}
	if got := s.DCTransitions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DCTransitions = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"reference", refConfig(), true},
		{"nan rate", Config{ServerFailRatePerDay: nan}, false},
		{"negative rate", Config{DCOutageRatePerDay: -1}, false},
		{"inf rate", Config{PVDropRatePerDay: math.Inf(1)}, false},
		{"frac over one", Config{ServerFailFrac: 1.5}, false},
		{"nan frac", Config{PVDropFrac: nan}, false},
		{"negative frac", Config{LinkDegradeFactor: -0.1}, false},
		{"nan repair", Config{MeanRepairSlots: nan}, false},
		{"negative repair", Config{MeanRepairSlots: -2}, false},
		{"bad kind", Config{Outages: []Outage{{Kind: 0, DC: 0, Start: 0, Slots: 1}}}, false},
		{"dc out of range", Config{Outages: []Outage{{Kind: KindDC, DC: 5, Start: 0, Slots: 1}}}, false},
		{"negative dc", Config{Outages: []Outage{{Kind: KindDC, DC: -1, Start: 0, Slots: 1}}}, false},
		{"link to out of range", Config{Outages: []Outage{{Kind: KindLink, DC: 0, To: 9, Start: 0, Slots: 1}}}, false},
		{"link self loop", Config{Outages: []Outage{{Kind: KindLink, DC: 1, To: 1, Start: 0, Slots: 1, Frac: 0.5}}}, false},
		{"negative start", Config{Outages: []Outage{{Kind: KindDC, DC: 0, Start: -1, Slots: 1}}}, false},
		{"zero duration", Config{Outages: []Outage{{Kind: KindDC, DC: 0, Start: 0, Slots: 0}}}, false},
		{"server frac zero", Config{Outages: []Outage{{Kind: KindServer, DC: 0, Start: 0, Slots: 1}}}, false},
		{"server frac nan", Config{Outages: []Outage{{Kind: KindServer, DC: 0, Start: 0, Slots: 1, Frac: nan}}}, false},
		{"link frac one", Config{Outages: []Outage{{Kind: KindLink, DC: 0, To: 1, Start: 0, Slots: 1, Frac: 1}}}, false},
		{"overlap same target", Config{Outages: []Outage{
			{Kind: KindDC, DC: 0, Start: 0, Slots: 3},
			{Kind: KindDC, DC: 0, Start: 2, Slots: 2},
		}}, false},
		{"adjacent same target", Config{Outages: []Outage{
			{Kind: KindDC, DC: 0, Start: 0, Slots: 2},
			{Kind: KindDC, DC: 0, Start: 2, Slots: 2},
		}}, true},
		{"overlap distinct targets", Config{Outages: []Outage{
			{Kind: KindDC, DC: 0, Start: 0, Slots: 3},
			{Kind: KindDC, DC: 1, Start: 1, Slots: 3},
			{Kind: KindServer, DC: 0, Start: 0, Slots: 3, Frac: 0.5},
		}}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(3)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Errorf("zero config reports enabled")
	}
	if !(Config{PVDropRatePerDay: 0.1}).Enabled() {
		t.Errorf("stochastic-only config reports disabled")
	}
	if !(Config{Outages: []Outage{{Kind: KindDC, DC: 0, Start: 0, Slots: 1}}}).Enabled() {
		t.Errorf("outage-only config reports disabled")
	}
}
