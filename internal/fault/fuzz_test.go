package fault

import (
	"math"
	"reflect"
	"testing"

	"geovmp/internal/timeutil"
)

// FuzzFaultSchedule drives adversarial configs through Validate and, for
// configs Validate accepts, through Compile — the same contract the spec
// fuzzer pins for workloads: Validate never panics on garbage, Compile is
// deterministic, and every compiled table stays inside its documented
// range.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(3, 24, uint64(1), 0.5, 0.1, 0.2, 0.3, 0.25, 0.1, 1.0, 2.0,
		int(KindDC), 1, 0, 2, 3, 0.0)
	f.Add(5, 48, uint64(42), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
		int(KindServer), 0, 0, 0, 8, 0.2)
	f.Add(2, 8, uint64(9), math.NaN(), -1.0, math.Inf(1), 0.5, 1.5, 0.0, -0.1, math.NaN(),
		int(KindLink), 0, 1, -3, 0, 1.5)
	f.Fuzz(func(t *testing.T, n, slots int, seed uint64,
		srvRate, dcRate, linkRate, pvRate, srvFrac, linkFac, pvFrac, mean float64,
		oKind, oDC, oTo, oStart, oSlots int, oFrac float64) {
		if n < 0 {
			n = -n % 9
		}
		n = n%9 + 1
		if slots < 0 {
			slots = -slots
		}
		slots = slots%72 + 1
		cfg := Config{
			Outages: []Outage{{
				Kind: Kind(oKind), DC: oDC, To: oTo,
				Start: clampSlot(oStart), Slots: oSlots, Frac: oFrac,
			}},
			ServerFailRatePerDay: srvRate,
			ServerFailFrac:       srvFrac,
			DCOutageRatePerDay:   dcRate,
			LinkFailRatePerDay:   linkRate,
			LinkDegradeFactor:    linkFac,
			PVDropRatePerDay:     pvRate,
			PVDropFrac:           pvFrac,
			MeanRepairSlots:      mean,
		}
		if err := cfg.Validate(n); err != nil {
			return // rejected garbage must not reach Compile
		}
		// Rates drive per-slot Bernoulli draws; huge finite rates are
		// legal but explode the outage count, so keep the fuzz cheap.
		if cfg.ServerFailRatePerDay+cfg.DCOutageRatePerDay+
			cfg.LinkFailRatePerDay+cfg.PVDropRatePerDay > 1e6 {
			return
		}
		a := Compile(cfg, n, slots, seed)
		b := Compile(cfg, n, slots, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Compile not deterministic for %+v seed %d", cfg, seed)
		}
		if a.NDC() != n || a.Slots() != slots {
			t.Fatalf("schedule dims %d×%d, want %d×%d", a.NDC(), a.Slots(), n, slots)
		}
		for sl := 0; sl < slots; sl++ {
			cap := a.CapFrac(timeutil.Slot(sl))
			pv := a.PVFrac(timeutil.Slot(sl))
			dwn := a.DCDown(timeutil.Slot(sl))
			for d := 0; d < n; d++ {
				if !(cap[d] >= 0 && cap[d] <= 1) {
					t.Fatalf("slot %d dc %d capFrac %v out of [0,1]", sl, d, cap[d])
				}
				if !(pv[d] >= 0 && pv[d] <= 1) {
					t.Fatalf("slot %d dc %d pvFrac %v out of [0,1]", sl, d, pv[d])
				}
				if dwn[d] && cap[d] != 0 {
					t.Fatalf("slot %d dc %d down but capFrac %v", sl, d, cap[d])
				}
			}
			if lf := a.LinkFactor(timeutil.Slot(sl)); lf != nil {
				for i := range lf {
					for j := range lf[i] {
						if !(lf[i][j] >= linkFloor && lf[i][j] <= 1) {
							t.Fatalf("slot %d link %d→%d factor %v out of [%v,1]",
								sl, i, j, lf[i][j], linkFloor)
						}
					}
				}
			}
		}
	})
}

func clampSlot(s int) timeutil.Slot {
	if s < -1000 {
		s = -1000
	}
	if s > 1000 {
		s = 1000
	}
	return timeutil.Slot(s)
}
