package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergyConversions(t *testing.T) {
	tests := []struct {
		name string
		e    Energy
		want float64
		get  func(Energy) float64
	}{
		{"kWh of 3.6 MJ", Energy(3.6e6), 1, Energy.KWh},
		{"GJ of 2e9 J", Energy(2e9), 2, Energy.GJ},
		{"joules identity", Energy(42), 42, Energy.Joules},
		{"kWh constant", KilowattHour, 1, Energy.KWh},
		{"Wh constant", WattHour, 3600, Energy.Joules},
	}
	for _, tt := range tests {
		if got := tt.get(tt.e); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: got %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestPowerEnergyRoundTrip(t *testing.T) {
	p := Power(2500) // 2.5 kW
	e := p.ForDuration(7200)
	if math.Abs(e.KWh()-5) > 1e-9 {
		t.Fatalf("2.5 kW for 2 h = %v kWh, want 5", e.KWh())
	}
	back := e.OverSeconds(7200)
	if math.Abs(float64(back-p)) > 1e-9 {
		t.Fatalf("round trip power = %v, want %v", back, p)
	}
}

func TestOverSecondsZeroDuration(t *testing.T) {
	if got := Energy(100).OverSeconds(0); got != 0 {
		t.Fatalf("OverSeconds(0) = %v, want 0", got)
	}
	if got := Energy(100).OverSeconds(-5); got != 0 {
		t.Fatalf("OverSeconds(-5) = %v, want 0", got)
	}
}

func TestBandwidthTransferSeconds(t *testing.T) {
	tests := []struct {
		name string
		b    Bandwidth
		d    DataSize
		want float64
	}{
		{"1 GB over 1 Gb/s", GigabitPerSecond, Gigabyte, 8},
		{"10 MB over 10 Gb/s", 10 * GigabitPerSecond, 10 * Megabyte, 0.008},
		{"empty payload", GigabitPerSecond, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.b.TransferSeconds(tt.d); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: got %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestBandwidthTransferSecondsZeroBandwidth(t *testing.T) {
	got := Bandwidth(0).TransferSeconds(Megabyte)
	if !math.IsInf(got, 1) {
		t.Fatalf("transfer over zero bandwidth = %v, want +Inf", got)
	}
}

func TestPriceCost(t *testing.T) {
	p := Price(0.20) // 0.20 EUR/kWh
	e := Energy(10 * KilowattHour)
	if got := p.Cost(e); math.Abs(float64(got)-2.0) > 1e-9 {
		t.Fatalf("cost = %v, want 2.00 EUR", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		got := Clamp(x, -1, 1)
		return got >= -1 && got <= 1 && (x < -1 || x > 1 || got == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Energy(2.5e9).String(), "2.500 GJ"},
		{Energy(1500).String(), "1.500 kJ"},
		{Power(1500).String(), "1.500 kW"},
		{Power(3.2e6).String(), "3.200 MW"},
		{DataSize(10e6).String(), "10.000 MB"},
		{DataSize(4e9).String(), "4.000 GB"},
		{Bandwidth(100e9).String(), "100.00 Gb/s"},
		{Frequency(2.3e9).String(), "2.30 GHz"},
		{Price(0.2).String(), "0.2000 EUR/kWh"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestTransferSecondsMonotoneInVolume(t *testing.T) {
	f := func(a, b float64) bool {
		va := DataSize(math.Abs(a))
		vb := DataSize(math.Abs(b))
		if va > vb {
			va, vb = vb, va
		}
		bw := Bandwidth(1e9)
		return bw.TransferSeconds(va) <= bw.TransferSeconds(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
