// Package units provides typed physical quantities used throughout geovmp.
//
// The simulator mixes energies (battery state, DC caps), powers (servers,
// PV), data sizes (VM images, inter-VM volumes), bandwidths and money.
// Mixing those up silently is the classic source of bugs in energy
// simulators, so each quantity gets its own defined type with explicit
// conversion helpers. All types are float64 underneath and cheap to pass by
// value.
package units

import (
	"fmt"
	"math"
)

// Energy is an amount of energy in joules.
type Energy float64

// Common energy quantities.
const (
	Joule        Energy = 1
	Kilojoule    Energy = 1e3
	Megajoule    Energy = 1e6
	Gigajoule    Energy = 1e9
	WattHour     Energy = 3600
	KilowattHour Energy = 3.6e6
	MegawattHour Energy = 3.6e9
)

// Joules returns e as a bare float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) }

// KWh returns e expressed in kilowatt-hours.
func (e Energy) KWh() float64 { return float64(e) / float64(KilowattHour) }

// GJ returns e expressed in gigajoules.
func (e Energy) GJ() float64 { return float64(e) / float64(Gigajoule) }

// String implements fmt.Stringer with an adaptive scale.
func (e Energy) String() string {
	switch {
	case e >= Gigajoule || e <= -Gigajoule:
		return fmt.Sprintf("%.3f GJ", e.GJ())
	case e >= Megajoule || e <= -Megajoule:
		return fmt.Sprintf("%.3f MJ", float64(e)/float64(Megajoule))
	case e >= Kilojoule || e <= -Kilojoule:
		return fmt.Sprintf("%.3f kJ", float64(e)/float64(Kilojoule))
	default:
		return fmt.Sprintf("%.3f J", float64(e))
	}
}

// Power is a rate of energy in watts.
type Power float64

// Common power quantities.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
	Megawatt Power = 1e6
)

// Watts returns p as a bare float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// KW returns p expressed in kilowatts.
func (p Power) KW() float64 { return float64(p) / float64(Kilowatt) }

// String implements fmt.Stringer with an adaptive scale.
func (p Power) String() string {
	switch {
	case p >= Megawatt || p <= -Megawatt:
		return fmt.Sprintf("%.3f MW", float64(p)/float64(Megawatt))
	case p >= Kilowatt || p <= -Kilowatt:
		return fmt.Sprintf("%.3f kW", p.KW())
	default:
		return fmt.Sprintf("%.3f W", float64(p))
	}
}

// ForDuration returns the energy produced or consumed by power p held for
// seconds s.
func (p Power) ForDuration(seconds float64) Energy {
	return Energy(float64(p) * seconds)
}

// OverSeconds returns the average power of energy e spread over seconds s.
// It returns 0 for non-positive durations.
func (e Energy) OverSeconds(seconds float64) Power {
	if seconds <= 0 {
		return 0
	}
	return Power(float64(e) / seconds)
}

// DataSize is an amount of data in bytes.
type DataSize float64

// Common data sizes.
const (
	Byte     DataSize = 1
	Kilobyte DataSize = 1e3
	Megabyte DataSize = 1e6
	Gigabyte DataSize = 1e9
	Terabyte DataSize = 1e12
)

// Bytes returns d as a bare float64 number of bytes.
func (d DataSize) Bytes() float64 { return float64(d) }

// MB returns d expressed in megabytes.
func (d DataSize) MB() float64 { return float64(d) / float64(Megabyte) }

// GB returns d expressed in gigabytes.
func (d DataSize) GB() float64 { return float64(d) / float64(Gigabyte) }

// String implements fmt.Stringer with an adaptive scale.
func (d DataSize) String() string {
	switch {
	case d >= Terabyte:
		return fmt.Sprintf("%.3f TB", float64(d)/float64(Terabyte))
	case d >= Gigabyte:
		return fmt.Sprintf("%.3f GB", d.GB())
	case d >= Megabyte:
		return fmt.Sprintf("%.3f MB", d.MB())
	case d >= Kilobyte:
		return fmt.Sprintf("%.3f kB", float64(d)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%.0f B", float64(d))
	}
}

// Bandwidth is a data rate in bits per second. Network gear is specified in
// bits, storage in bytes; keeping bandwidth in bits per second and data in
// bytes with an explicit TransferSeconds conversion avoids the usual ×8
// mistakes.
type Bandwidth float64

// Common bandwidths.
const (
	BitPerSecond     Bandwidth = 1
	KilobitPerSecond Bandwidth = 1e3
	MegabitPerSecond Bandwidth = 1e6
	GigabitPerSecond Bandwidth = 1e9
)

// BitsPerSecond returns b as a bare float64.
func (b Bandwidth) BitsPerSecond() float64 { return float64(b) }

// BytesPerSecond returns the byte throughput of b.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) / 8 }

// String implements fmt.Stringer with an adaptive scale.
func (b Bandwidth) String() string {
	switch {
	case b >= GigabitPerSecond:
		return fmt.Sprintf("%.2f Gb/s", float64(b)/float64(GigabitPerSecond))
	case b >= MegabitPerSecond:
		return fmt.Sprintf("%.2f Mb/s", float64(b)/float64(MegabitPerSecond))
	default:
		return fmt.Sprintf("%.0f b/s", float64(b))
	}
}

// TransferSeconds returns the time, in seconds, needed to move d over
// bandwidth b. It returns +Inf for zero or negative bandwidth and non-empty
// payloads, and 0 for empty payloads.
func (b Bandwidth) TransferSeconds(d DataSize) float64 {
	if d <= 0 {
		return 0
	}
	bps := b.BytesPerSecond()
	if bps <= 0 {
		return math.Inf(1)
	}
	return float64(d) / bps
}

// Money is an amount of currency in euros (the paper's DCs are European).
type Money float64

// Euros returns m as a bare float64.
func (m Money) Euros() float64 { return float64(m) }

// String implements fmt.Stringer.
func (m Money) String() string { return fmt.Sprintf("%.2f EUR", float64(m)) }

// Price is a cost of energy in euros per kilowatt-hour, the unit tariffs are
// quoted in.
type Price float64

// PerKWh returns p as a bare float64 number of euros per kWh.
func (p Price) PerKWh() float64 { return float64(p) }

// Cost returns the money owed for energy e at price p.
func (p Price) Cost(e Energy) Money {
	return Money(float64(p) * e.KWh())
}

// String implements fmt.Stringer.
func (p Price) String() string { return fmt.Sprintf("%.4f EUR/kWh", float64(p)) }

// Frequency is a CPU clock rate in hertz.
type Frequency float64

// Common frequencies.
const (
	Hertz     Frequency = 1
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
)

// GHz returns f expressed in gigahertz.
func (f Frequency) GHz() float64 { return float64(f) / float64(Gigahertz) }

// String implements fmt.Stringer.
func (f Frequency) String() string { return fmt.Sprintf("%.2f GHz", f.GHz()) }

// Clamp returns x bounded to [lo, hi]. It is used pervasively for physical
// quantities that saturate (state of charge, utilization, ...).
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
