package units

import (
	"math"
	"testing"
)

func TestEnergyStringScales(t *testing.T) {
	tests := []struct {
		e    Energy
		want string
	}{
		{Energy(0.5), "0.500 J"},
		{Energy(-2e3), "-2.000 kJ"},
		{Energy(5e6), "5.000 MJ"},
		{Energy(-3e9), "-3.000 GJ"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", float64(tt.e), got, tt.want)
		}
	}
}

func TestPowerStringScales(t *testing.T) {
	if got := Power(10).String(); got != "10.000 W" {
		t.Errorf("watt format: %q", got)
	}
	if got := Power(-5e3).String(); got != "-5.000 kW" {
		t.Errorf("negative kW format: %q", got)
	}
}

func TestDataSizeStringScales(t *testing.T) {
	tests := []struct {
		d    DataSize
		want string
	}{
		{DataSize(512), "512 B"},
		{DataSize(2e3), "2.000 kB"},
		{DataSize(3e12), "3.000 TB"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestBandwidthStringScales(t *testing.T) {
	if got := Bandwidth(500).String(); got != "500 b/s" {
		t.Errorf("b/s format: %q", got)
	}
	if got := Bandwidth(25e6).String(); got != "25.00 Mb/s" {
		t.Errorf("Mb/s format: %q", got)
	}
}

func TestMoneyAndStringers(t *testing.T) {
	if got := Money(12.345).String(); got != "12.35 EUR" {
		t.Errorf("money format: %q", got)
	}
	if Money(3).Euros() != 3 {
		t.Error("Euros accessor")
	}
	if Price(0.2).PerKWh() != 0.2 {
		t.Error("PerKWh accessor")
	}
	if Frequency(2.3e9).GHz() != 2.3 {
		t.Error("GHz accessor")
	}
}

func TestBitAccessors(t *testing.T) {
	b := Bandwidth(8e9)
	if b.BitsPerSecond() != 8e9 {
		t.Error("bits accessor")
	}
	if b.BytesPerSecond() != 1e9 {
		t.Error("bytes accessor")
	}
	if DataSize(5e9).Bytes() != 5e9 {
		t.Error("bytes accessor on data size")
	}
	if DataSize(5e9).GB() != 5 {
		t.Error("GB accessor")
	}
	if DataSize(5e6).MB() != 5 {
		t.Error("MB accessor")
	}
}

func TestWattAccessors(t *testing.T) {
	if Power(1500).KW() != 1.5 || Power(1500).Watts() != 1500 {
		t.Error("power accessors")
	}
	if math.Abs(Energy(7.2e6).KWh()-2) > 1e-12 {
		t.Error("KWh accessor")
	}
}
