package serve

import (
	"geovmp/internal/core"
	"geovmp/internal/correlation"
	"geovmp/internal/embed"
	"geovmp/internal/par"
	"geovmp/internal/units"
)

// The reconciler restores full-fidelity geometry: per-arrival refinement
// seats each VM well against a frozen layout, but only a global embedding
// re-balances everyone at once. Every ReconcileEvery sequenced operations
// the daemon snapshots the correlation state under the lock, re-runs the
// batch global embedding in the background, and atomically swaps the result
// in at a *fixed landing point* in the operation sequence (trigger +
// ReconcileLag): decisions between trigger and landing use the old layout,
// decisions after use the new one, at any parallelism and any background
// duration. If the embedding is still running when the landing operation
// arrives, that operation waits for it — the SLO bound holds for the steady
// state, not the (rare, ~per-512-ops) landing turn.

// reconcileJob is one in-flight background re-embedding.
type reconcileJob struct {
	landSeq uint64
	ch      chan map[int]embed.Point
}

// maybeTrigger launches a background reconciliation when the operation
// sequence crosses a ReconcileEvery boundary. Caller holds d.mu; the
// trigger condition depends only on seq and whether a job is pending —
// both pure functions of the sequence — so triggering is deterministic.
func (d *Daemon) maybeTrigger(seq uint64) {
	every := d.opt.ReconcileEvery
	if every == 0 || d.recon != nil || seq == 0 || seq%uint64(every) != 0 {
		return
	}
	if len(d.st.active) < 2 {
		return
	}
	snap := d.st.snapshot()
	job := &reconcileJob{
		landSeq: seq + uint64(d.opt.ReconcileLag),
		ch:      make(chan map[int]embed.Point, 1),
	}
	d.recon = job
	opt := &d.opt
	go func() { job.ch <- snap.run(opt) }()
}

// landDue swaps in a finished reconciliation at the first operation whose
// sequence number reaches the landing point. Caller holds d.mu.
func (d *Daemon) landDue(seq uint64) {
	if d.recon == nil || seq < d.recon.landSeq {
		return
	}
	pos := <-d.recon.ch
	d.recon = nil
	d.st.adoptPositions(pos)
	d.mReconciles.Inc()
}

// reconSnap is an isolated copy of everything the global embedding reads,
// taken under the write lock so the background run shares nothing with the
// live state.
type reconSnap struct {
	ids  []int
	init map[int]embed.Point
	ps   *correlation.ProfileSet
	dm   *correlation.DataMatrix
	ref  units.DataSize
}

func (s *state) snapshot() *reconSnap {
	ids := append([]int(nil), s.active...)
	sortInts(ids)
	ps := correlation.NewProfileSet(s.opt.Samples)
	for _, id := range ids {
		ps.Add(id, s.ps.Profile(id)) // standard-length rows are copied
	}
	dm := correlation.NewDataMatrix()
	s.dm.Each(dm.Add)
	init := make(map[int]embed.Point, len(ids))
	for _, id := range ids {
		init[id] = s.pos[id]
	}
	return &reconSnap{ids: ids, init: init, ps: ps, dm: dm, ref: s.ref}
}

// run executes the batch global embedding over the snapshot — the same
// field and tuning the batch controller uses, warm-started from the live
// layout.
func (r *reconSnap) run(opt *Options) map[int]embed.Point {
	var budget *par.Budget
	if opt.Workers > 1 {
		budget = par.NewBudget(opt.Workers - 1)
	}
	r.ps.EnsureOrders(budget)
	f := core.NewField(opt.Alpha, r.ps, r.dm, r.ref, nil)
	cfg := embed.Config{
		Seed:           opt.Seed,
		MaxIters:       opt.ReconcileIters,
		MaxDisplace:    1.0,
		RepulsionScale: 4,
		Workers:        budget,
	}
	return embed.Run(r.ids, r.init, f, cfg).Pos
}

// adoptPositions merges a reconciled layout: VMs still resident take their
// refreshed positions (arrivals since the snapshot keep their refined
// seats), and the per-DC centroid accumulators are rebuilt in active order
// so the sums stay bit-deterministic.
func (s *state) adoptPositions(pos map[int]embed.Point) {
	for id, p := range pos {
		if _, ok := s.actPos[id]; ok {
			s.pos[id] = p
		}
	}
	for i := range s.posSum {
		s.posSum[i] = embed.Point{}
		s.resCount[i] = 0
	}
	for _, id := range s.active {
		p := s.pos[id]
		dcI := s.dcOf[id]
		s.posSum[dcI].X += p.X
		s.posSum[dcI].Y += p.Y
		s.resCount[dcI]++
	}
	s.gen++
}
