package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// JSON wire types. Field names are stable API.

type flowJSON struct {
	Peer     int     `json:"peer"`
	ToPeer   float64 `json:"to_peer,omitempty"`
	FromPeer float64 `json:"from_peer,omitempty"`
}

type placeRequest struct {
	ID      int        `json:"id"`
	Profile []float64  `json:"profile"`
	Flows   []flowJSON `json:"flows,omitempty"`
	Image   float64    `json:"image,omitempty"`
}

type placeResponse struct {
	ID         int     `json:"id"`
	DC         int     `json:"dc"`
	Server     int     `json:"server"`
	Overflowed bool    `json:"overflowed,omitempty"`
	Seq        uint64  `json:"seq"`
	LatencyMS  float64 `json:"latency_ms"`
}

type departRequest struct {
	ID int `json:"id"`
}

type departResponse struct {
	ID      int  `json:"id"`
	Removed bool `json:"removed"`
}

type observeRequest struct {
	Slot    int64           `json:"slot"`
	VMs     []vmProfileJSON `json:"vms,omitempty"`
	Volumes []volumeJSON    `json:"volumes,omitempty"`
}

type vmProfileJSON struct {
	ID      int       `json:"id"`
	Profile []float64 `json:"profile"`
}

type volumeJSON struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Vol  float64 `json:"vol"`
}

type healthResponse struct {
	Status    string  `json:"status"`
	Residents int     `json:"residents"`
	SLOMS     float64 `json:"slo_ms"`
	P99MS     float64 `json:"p99_ms"`
	Draining  bool    `json:"draining"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/place    {id, profile, flows?, image?} -> {dc, server, ...}
//	POST /v1/depart   {id}                          -> {removed}
//	POST /v1/observe  {slot, vms, volumes}          -> 200
//	POST /v1/drain    stop admitting, wait for in-flight work
//	GET  /metrics     text exposition of the operational counters
//	GET  /healthz     liveness + SLO snapshot
//
// Saturation of the bounded admission queue answers 429 with Retry-After;
// a draining daemon answers 503. Every request additionally runs under
// Options.RequestTimeout: a request that misses the deadline is answered
// 503 + Retry-After and counted on serve_deadline_total.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", d.handlePlace)
	mux.HandleFunc("POST /v1/depart", d.handleDepart)
	mux.HandleFunc("POST /v1/observe", d.handleObserve)
	mux.HandleFunc("POST /v1/drain", d.handleDrain)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	if d.opt.RequestTimeout <= 0 {
		return mux
	}
	return d.withDeadline(mux)
}

// withDeadline bounds each request's handling time. The wrapped handler
// runs against a buffered recorder on its own goroutine; if the deadline
// fires first the client gets 503 + Retry-After immediately, and the
// stale response is discarded when the handler eventually finishes (the
// daemon's own state commit is unaffected — only the reply is dropped).
func (d *Daemon) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d.opt.RequestTimeout)
		defer cancel()
		rec := &bufferedResponse{header: make(http.Header)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			next.ServeHTTP(rec, r.WithContext(ctx))
		}()
		select {
		case <-done:
			rec.flush(w)
		case <-ctx.Done():
			d.mDeadlines.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "serve: request deadline exceeded", http.StatusServiceUnavailable)
		}
	})
}

// bufferedResponse captures a handler's reply so the deadline path never
// races the handler over the real ResponseWriter.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.code == 0 {
		b.code = http.StatusOK
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeOpError maps daemon errors onto the backpressure contract.
func writeOpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrAlreadyPlaced):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *Daemon) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.ID < 0 || len(req.Profile) == 0 {
		http.Error(w, "bad request: id >= 0 and a non-empty profile are required", http.StatusBadRequest)
		return
	}
	vm := VM{ID: req.ID, Profile: req.Profile, Image: units.DataSize(req.Image)}
	for _, fl := range req.Flows {
		vm.Flows = append(vm.Flows, Flow{
			Peer:     fl.Peer,
			ToPeer:   units.DataSize(fl.ToPeer),
			FromPeer: units.DataSize(fl.FromPeer),
		})
	}
	dec, err := d.Place(vm)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, placeResponse{
		ID:         dec.ID,
		DC:         dec.DC,
		Server:     dec.Server,
		Overflowed: dec.Overflowed,
		Seq:        dec.Seq,
		LatencyMS:  float64(dec.Latency.Nanoseconds()) / 1e6,
	})
}

func (d *Daemon) handleDepart(w http.ResponseWriter, r *http.Request) {
	var req departRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	removed, err := d.Depart(req.ID)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, departResponse{ID: req.ID, Removed: removed})
}

func (d *Daemon) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req observeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	obs := Observation{Slot: timeutil.Slot(req.Slot)}
	for _, v := range req.VMs {
		obs.VMs = append(obs.VMs, VMProfile{ID: v.ID, Profile: v.Profile})
	}
	for _, v := range req.Volumes {
		obs.Volumes = append(obs.Volumes, VolumeObs{From: v.From, To: v.To, Vol: units.DataSize(v.Vol)})
	}
	if err := d.Observe(obs); err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (d *Daemon) handleDrain(w http.ResponseWriter, r *http.Request) {
	d.Drain()
	writeJSON(w, http.StatusOK, map[string]bool{"drained": true})
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(d.opt.Board.Snapshot().Text()))
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := d.opt.Board.Hist("serve_decision_latency").Snapshot()
	status := "ok"
	if d.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    status,
		Residents: d.NumResidents(),
		SLOMS:     float64(d.opt.SLO.Nanoseconds()) / 1e6,
		P99MS:     h.P99NS / 1e6,
		Draining:  d.draining.Load(),
	})
}
