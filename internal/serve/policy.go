package serve

import (
	"sort"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/policy"
	"geovmp/internal/units"
)

// SimPolicy adapts the daemon to the batch simulator's policy interface:
// each simulated slot becomes one telemetry observation, the slot's
// departures, and the slot's arrivals, fed through the daemon's sequenced
// decision path. Running it under sim.Run measures the streaming
// controller with the exact energy/latency accounting the batch policies
// get — the eur-drift comparison in examples/serve and the docs comes from
// here. The daemon never migrates (a placed VM stays put until it
// departs), so any consolidation the batch global phase achieves through
// migration shows up as drift.
type SimPolicy struct {
	d *Daemon
}

// NewSimPolicy wraps a daemon for use as a simulator policy. The daemon
// must be dedicated to the simulation: SimPolicy feeds it through the
// internal sequenced path, bypassing HTTP admission control.
func NewSimPolicy(d *Daemon) *SimPolicy { return &SimPolicy{d: d} }

// Name implements policy.Policy.
func (p *SimPolicy) Name() string { return "Serve" }

// Place implements policy.Policy by replaying the slot as a stream.
func (p *SimPolicy) Place(in *policy.Input) policy.Placement {
	obs := Observation{Slot: in.Slot, VMs: make([]VMProfile, 0, len(in.ActiveVMs))}
	for _, id := range in.ActiveVMs {
		obs.VMs = append(obs.VMs, VMProfile{ID: id, Profile: in.Profiles.Profile(id)})
	}
	in.Volumes.Each(func(from, to int, vol units.DataSize) {
		obs.Volumes = append(obs.Volumes, VolumeObs{From: from, To: to, Vol: vol})
	})
	p.d.observeAt(p.d.take(), obs)

	for _, id := range p.d.Residents() {
		if !containsSorted(in.ActiveVMs, id) {
			p.d.departAt(p.d.take(), id)
		}
	}
	for _, id := range in.ActiveVMs {
		if p.d.Resident(id) {
			continue
		}
		var img units.DataSize
		if id < len(in.Image) {
			img = in.Image[id]
		}
		p.d.placeAt(p.d.take(), VM{ID: id, Profile: in.Profiles.Profile(id), Image: img})
	}

	dcOf := make(map[int]int, len(in.ActiveVMs))
	for _, id := range in.ActiveVMs {
		dcOf[id] = p.d.DCOf(id)
	}
	return policy.Placement{DCOf: dcOf}
}

// Allocate implements policy.Policy with the correlation-aware local phase
// the proposed batch controller uses, so the comparison isolates the
// global (streaming vs batch) decision path.
func (p *SimPolicy) Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return alloc.CorrelationAware(ids, ps, d.Model, d.Servers)
}

func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}
