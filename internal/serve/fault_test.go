package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"geovmp/internal/fault"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

func TestFaultEvacuatesAndBlocksAdmission(t *testing.T) {
	d := testDaemon(t, nil)
	var target int
	var ids []int
	for id := 0; id < 12; id++ {
		dec, err := d.Place(VM{ID: id, Profile: testProfile(0.3)})
		if err != nil {
			t.Fatal(err)
		}
		if id == 0 {
			target = dec.DC
		}
		if dec.DC == target {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no VM landed on the target DC")
	}

	moved, err := d.Fault(target, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != len(ids) {
		t.Fatalf("re-placed %d VMs, want %d (%v vs %v)", len(moved), len(ids), moved, ids)
	}
	for i := 1; i < len(moved); i++ {
		if moved[i-1] >= moved[i] {
			t.Fatalf("re-placement order not ascending: %v", moved)
		}
	}
	for _, id := range moved {
		if got := d.DCOf(id); got == target || got < 0 {
			t.Fatalf("vm %d still at down DC %d (got %d)", id, target, got)
		}
	}
	if down := d.DownDCs(); len(down) != 1 || down[0] != target {
		t.Fatalf("DownDCs = %v, want [%d]", down, target)
	}

	// New arrivals must avoid the down DC.
	dec, err := d.Place(VM{ID: 100, Profile: testProfile(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	if dec.DC == target {
		t.Fatalf("arrival admitted to down DC %d", target)
	}

	// Flipping to the same state is a no-op; recovery reopens the DC.
	if again, _ := d.Fault(target, true); again != nil {
		t.Fatalf("repeated down flip re-placed %v", again)
	}
	if _, err := d.Fault(target, false); err != nil {
		t.Fatal(err)
	}
	if down := d.DownDCs(); down != nil {
		t.Fatalf("DownDCs after recovery = %v", down)
	}
	if got := d.Board().Counter("serve_faults_total").Value(); got != 3 {
		t.Fatalf("serve_faults_total = %d, want 3", got)
	}
}

// TestReplayWithFaultsDeterministic extends the deterministic-admission
// property to logs carrying fault events: the same merged log replayed at
// parallelism 1, 2 and GOMAXPROCS+6 yields identical decisions and final
// residency.
func TestReplayWithFaultsDeterministic(t *testing.T) {
	sc := testScenario(t, 0.02)
	events := EventsFromTrace(sc.Workload, 24, sim.DefaultProfileSamples)
	sched := fault.Compile(fault.Config{Outages: []fault.Outage{
		{Kind: fault.KindDC, DC: 1, Start: 4, Slots: 6},
		{Kind: fault.KindDC, DC: 3, Start: 12, Slots: 4},
	}}, len(sc.Fleet), 24, sc.Seed)
	events = InsertFaults(events, sched.DCTransitions())

	nFault := 0
	for _, ev := range events {
		if ev.Kind == EvFault {
			nFault++
		}
	}
	if nFault != 4 {
		t.Fatalf("merged log has %d fault events, want 4", nFault)
	}

	var ref []decisionKey
	var refRes []int
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 6} {
		d, err := New(Options{
			Fleet: sc.Fleet, Topo: sc.Topo, Seed: 7,
			ReconcileEvery: 64, ReconcileLag: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		decs := d.Replay(events, workers)
		d.Drain()
		keys := make([]decisionKey, len(decs))
		for k, dec := range decs {
			keys[k] = decisionKey{ID: dec.ID, DC: dec.DC, Server: dec.Server, Overflowed: dec.Overflowed, Seq: dec.Seq}
		}
		res := d.Residents()
		if ref == nil {
			ref, refRes = keys, res
			continue
		}
		for k := range keys {
			if keys[k] != ref[k] {
				t.Fatalf("workers=%d: decision %d diverged: %+v vs %+v", workers, k, keys[k], ref[k])
			}
		}
		if len(res) != len(refRes) {
			t.Fatalf("workers=%d: resident count diverged: %d vs %d", workers, len(res), len(refRes))
		}
		for k := range res {
			if res[k] != refRes[k] {
				t.Fatalf("workers=%d: resident %d diverged: %d vs %d", workers, k, res[k], refRes[k])
			}
		}
	}
}

func TestInsertFaultsOrdering(t *testing.T) {
	events := []Event{
		{Kind: EvObserve, Obs: Observation{Slot: 0}},
		{Kind: EvPlace, VM: VM{ID: 1}},
		{Kind: EvObserve, Obs: Observation{Slot: 1}},
		{Kind: EvPlace, VM: VM{ID: 2}},
	}
	trans := []fault.Transition{
		{Slot: 1, DC: 0, Down: true},
		{Slot: 3, DC: 0, Down: false},
	}
	out := InsertFaults(events, trans)
	if len(out) != 6 {
		t.Fatalf("merged log length %d, want 6", len(out))
	}
	// The slot-1 transition lands right after the slot-1 observation; the
	// past-horizon recovery is appended at the tail.
	if out[3].Kind != EvFault || out[3].Fault != (FaultEvent{DC: 0, Down: true}) {
		t.Fatalf("slot-1 fault misplaced: %+v", out[3])
	}
	if out[5].Kind != EvFault || out[5].Fault != (FaultEvent{DC: 0, Down: false}) {
		t.Fatalf("tail fault misplaced: %+v", out[5])
	}
}

func TestRequestDeadline(t *testing.T) {
	d := testDaemon(t, func(o *Options) { o.RequestTimeout = 30 * time.Millisecond })
	// Hold the admission sequence hostage so the HTTP request cannot
	// commit before its deadline.
	blocker := d.take()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 1, Profile: testProfile(0.4)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline miss: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	resp.Body.Close()
	if got := d.Board().Counter("serve_deadline_total").Value(); got != 1 {
		t.Fatalf("serve_deadline_total = %d, want 1", got)
	}

	// Release the sequence; the stalled request commits harmlessly into
	// the buffered recorder and fast requests keep succeeding.
	d.finishTurn(blocker)
	d.Drain()
	if !d.Resident(1) {
		t.Fatal("timed-out request's commit was lost")
	}
}

func TestRequestDeadlineDisabled(t *testing.T) {
	d := testDaemon(t, func(o *Options) { o.RequestTimeout = -1 })
	if d.opt.RequestTimeout != 0 {
		t.Fatalf("negative RequestTimeout resolved to %v, want 0", d.opt.RequestTimeout)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 1, Profile: testProfile(0.4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place without deadline: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestFaultKeepsSimParity sanity-checks that a faulted daemon still serves
// the batch adapter without deadlock over a short horizon.
func TestFaultKeepsSimParity(t *testing.T) {
	sc := testScenario(t, 0.01)
	sc.Horizon = timeutil.Hours(6)
	d, err := New(Options{Fleet: sc.Fleet, Topo: sc.Topo, Seed: sc.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Fault(2, true); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, NewSimPolicy(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.OpCost <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	for _, id := range d.Residents() {
		if d.DCOf(id) == 2 {
			t.Fatalf("vm %d admitted to down DC", id)
		}
	}
}
