// Package serve turns the batch placement engine into a long-running
// controller: VMs arrive and depart as a stream, and every arrival is
// answered with a (dc, server) decision within a configurable latency SLO.
//
// The daemon keeps the paper's correlation state *incrementally*: arrivals
// and departures amend the ProfileSet/DataMatrix in place (O(profile +
// degree) per event), the arriving VM's embedding position is refined
// locally against the frozen layout (internal/embed.RefineOne), and a
// background reconciler periodically re-runs the full global embedding and
// atomically swaps the refreshed layout in — so the hot path never
// recompiles the world.
//
// Each decision runs three phases, in the scheduler-framework shape:
//
//   - fit: bounded combined-peak probe over each DC's incremental packer
//     (internal/alloc.Tracker) — the capacity/constraint gate;
//   - score: correlation against the candidate server's residents (the
//     pruned peak-coincidence kernel's math), cross-DC traffic to the VM's
//     data peers, embedding locality, and an energy term from tariffs and
//     fleet load, blended by the paper's alpha;
//   - reserve: an optimistic two-phase commit — fit and score run against a
//     read-locked snapshot, and the commit step re-validates the state
//     generation at the decision's turn in the admission sequence,
//     re-scoring if a concurrent admission moved the world first.
//
// Commits are totally ordered by arrival sequence number, so the decision
// stream is a pure function of the event log: the same log replayed at any
// Parallelism yields bit-identical placements (the determinism test holds
// the daemon to that).
package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"geovmp/internal/dc"
	"geovmp/internal/metrics"
	"geovmp/internal/network"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// VM is one arrival: the VM's identity, its last-interval utilization
// profile (resampled to Options.Samples when the length differs), its
// declared steady traffic with already-placed peers, and its migration
// image size.
type VM struct {
	ID      int
	Profile []float64
	Flows   []Flow
	Image   units.DataSize
}

// Flow declares steady directed traffic between an arriving VM and a peer.
type Flow struct {
	Peer     int
	ToPeer   units.DataSize // volume per slot the VM sends to the peer
	FromPeer units.DataSize // volume per slot the peer sends to the VM
}

// Observation is the periodic telemetry refresh a live controller receives
// each slot: current per-VM utilization profiles and the realized inter-VM
// volume matrix. It replaces the declared-flow picture wholesale, exactly
// as the batch simulator feeds its per-slot controllers.
type Observation struct {
	Slot    timeutil.Slot
	VMs     []VMProfile
	Volumes []VolumeObs
}

// VMProfile is one VM's observed utilization profile.
type VMProfile struct {
	ID      int
	Profile []float64
}

// VolumeObs is one observed directed inter-VM volume.
type VolumeObs struct {
	From, To int
	Vol      units.DataSize
}

// Decision is the daemon's answer to one arrival.
type Decision struct {
	ID         int
	DC         int
	Server     int
	Overflowed bool          // placed past nominal capacity
	Seq        uint64        // position in the admission sequence
	Latency    time.Duration // submit-to-commit decision latency
}

// Options configures a Daemon. Fleet and Topo are required; everything else
// defaults sensibly.
type Options struct {
	Fleet dc.Fleet
	Topo  *network.Topology
	// Samples is the per-slot profile length (default 12, the simulator's).
	Samples int
	// Alpha is the paper's energy/performance blend (default 0.9).
	Alpha float64
	// EnergyWeight scales the tariff/load score term (default 0.25).
	EnergyWeight float64
	// SLO is the decision latency objective, reported at /healthz and in
	// benchmarks (default 20ms). It does not gate decisions.
	SLO time.Duration
	// QueueCap bounds concurrently admitted requests on the HTTP path;
	// excess requests are refused with 429 + Retry-After (default 256).
	QueueCap int
	// ProbeLimit bounds the per-DC first-fit server probe (default 16).
	ProbeLimit int
	// RefineIters is the per-arrival local embedding refinement budget
	// (default 4; 0 seats arrivals at their seed position).
	RefineIters int
	// ReconcileEvery launches a background full re-embedding every that
	// many sequenced operations (default 512; <0 disables). The result
	// lands atomically ReconcileLag operations later (default 64) — a
	// fixed landing point in the sequence, so reconciliation cannot
	// perturb determinism.
	ReconcileEvery int
	ReconcileLag   int
	// ReconcileIters caps the reconciler's embedding iterations (default 12).
	ReconcileIters int
	// Workers are goroutines lent to the background reconciler's sharded
	// passes (default 1; decisions themselves are never sharded).
	Workers int
	// Seed keys every deterministic scatter and sampling choice.
	Seed uint64
	// RequestTimeout bounds each HTTP request's wall-clock handling time;
	// a request that misses its deadline is answered 503 + Retry-After and
	// counted on serve_deadline_total (default 5s; negative disables).
	RequestTimeout time.Duration
	// Board receives operational metrics (a fresh board when nil).
	Board *metrics.Board
}

func (o *Options) applyDefaults() {
	if o.Samples <= 0 {
		o.Samples = sim.DefaultProfileSamples
	}
	if o.Alpha < 0 || o.Alpha > 1 || o.Alpha == 0 {
		o.Alpha = 0.9
	}
	if o.EnergyWeight == 0 {
		o.EnergyWeight = 0.25
	} else if o.EnergyWeight < 0 {
		o.EnergyWeight = 0
	}
	if o.SLO <= 0 {
		o.SLO = 20 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.RefineIters < 0 {
		o.RefineIters = 0
	} else if o.RefineIters == 0 {
		o.RefineIters = 4
	}
	switch {
	case o.ReconcileEvery == 0:
		o.ReconcileEvery = 512
	case o.ReconcileEvery < 0:
		o.ReconcileEvery = 0
	}
	if o.ReconcileLag <= 0 {
		o.ReconcileLag = 64
	}
	if o.ReconcileIters <= 0 {
		o.ReconcileIters = 12
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	switch {
	case o.RequestTimeout == 0:
		o.RequestTimeout = 5 * time.Second
	case o.RequestTimeout < 0:
		o.RequestTimeout = 0
	}
	if o.Board == nil {
		o.Board = metrics.NewBoard()
	}
}

// Daemon errors.
var (
	ErrDraining      = errors.New("serve: daemon is draining")
	ErrQueueFull     = errors.New("serve: admission queue full")
	ErrAlreadyPlaced = errors.New("serve: vm already placed")
)

// Daemon is the online placement service. Create with New, feed with
// Place/Depart/Observe (or Replay), stop with Drain.
type Daemon struct {
	opt Options

	mu sync.RWMutex // guards st
	st *state

	seqMu sync.Mutex
	cond  *sync.Cond
	next  uint64 // next sequence number to hand out
	done  uint64 // sequence numbers below this have committed

	inflight atomic.Int64
	draining atomic.Bool

	recon *reconcileJob // pending background re-embedding; guarded by mu

	mPlacements, mDepartures, mOverflows *metrics.Counter
	mObservations, mReconciles           *metrics.Counter
	mRejections, mFaults, mDeadlines     *metrics.Counter
	mQueue                               *metrics.Gauge
	mLat                                 *metrics.LatencyHist
}

// New validates opt and returns a ready daemon.
func New(opt Options) (*Daemon, error) {
	if len(opt.Fleet) == 0 {
		return nil, errors.New("serve: empty fleet")
	}
	if opt.Topo == nil {
		return nil, errors.New("serve: nil topology")
	}
	opt.applyDefaults()
	d := &Daemon{opt: opt}
	d.st = newState(&d.opt)
	d.cond = sync.NewCond(&d.seqMu)
	b := opt.Board
	d.mPlacements = b.Counter("serve_placements_total")
	d.mDepartures = b.Counter("serve_departures_total")
	d.mOverflows = b.Counter("serve_overflows_total")
	d.mObservations = b.Counter("serve_observations_total")
	d.mReconciles = b.Counter("serve_reconciles_total")
	d.mRejections = b.Counter("serve_rejections_total")
	d.mFaults = b.Counter("serve_faults_total")
	d.mDeadlines = b.Counter("serve_deadline_total")
	d.mQueue = b.Gauge("serve_queue_depth")
	d.mLat = b.Hist("serve_decision_latency")
	return d, nil
}

// Options returns the daemon's resolved configuration.
func (d *Daemon) Options() Options { return d.opt }

// Board returns the daemon's metrics board.
func (d *Daemon) Board() *metrics.Board { return d.opt.Board }

// --- admission sequencing ---

// take hands out the next sequence number; commit order follows it.
func (d *Daemon) take() uint64 {
	d.seqMu.Lock()
	s := d.next
	d.next++
	d.seqMu.Unlock()
	return s
}

// reserve hands out n consecutive sequence numbers (Replay's block grant).
func (d *Daemon) reserve(n int) uint64 {
	d.seqMu.Lock()
	s := d.next
	d.next += uint64(n)
	d.seqMu.Unlock()
	return s
}

func (d *Daemon) waitTurn(seq uint64) {
	d.seqMu.Lock()
	for d.done != seq {
		d.cond.Wait()
	}
	d.seqMu.Unlock()
}

func (d *Daemon) finishTurn(seq uint64) {
	d.seqMu.Lock()
	d.done = seq + 1
	d.cond.Broadcast()
	d.seqMu.Unlock()
}

// admit implements the bounded admission queue: one slot per in-flight
// request, refused when full.
func (d *Daemon) admit() bool {
	for {
		n := d.inflight.Load()
		if n >= int64(d.opt.QueueCap) {
			d.mRejections.Inc()
			return false
		}
		if d.inflight.CompareAndSwap(n, n+1) {
			d.mQueue.Set(n + 1)
			return true
		}
	}
}

func (d *Daemon) release() {
	d.mQueue.Set(d.inflight.Add(-1))
}

// --- public operations ---

// Place admits one arrival and returns its placement. It blocks until the
// decision's turn in the admission sequence commits. ErrQueueFull means the
// bounded queue is saturated — back off and retry; ErrDraining means the
// daemon no longer admits work.
func (d *Daemon) Place(vm VM) (Decision, error) {
	if d.draining.Load() {
		return Decision{}, ErrDraining
	}
	if !d.admit() {
		return Decision{}, ErrQueueFull
	}
	defer d.release()
	return d.placeAt(d.take(), vm)
}

// Depart removes a VM from the fleet, reporting whether it was resident.
func (d *Daemon) Depart(id int) (bool, error) {
	if d.draining.Load() {
		return false, ErrDraining
	}
	if !d.admit() {
		return false, ErrQueueFull
	}
	defer d.release()
	return d.departAt(d.take(), id), nil
}

// Observe applies one telemetry refresh (profiles, volumes, slot clock).
func (d *Daemon) Observe(o Observation) error {
	if d.draining.Load() {
		return ErrDraining
	}
	d.observeAt(d.take(), o)
	return nil
}

// Fault flips one DC's availability in the admission sequence: a down DC
// stops accepting placements and its residents are re-seated onto healthy
// DCs (ascending id, least-loaded first) within the event's turn, so the
// decision stream stays a pure function of the event log. It returns the
// re-placed VM ids. Flipping a DC to its current state is a no-op.
func (d *Daemon) Fault(dcI int, down bool) ([]int, error) {
	if d.draining.Load() {
		return nil, ErrDraining
	}
	if !d.admit() {
		return nil, ErrQueueFull
	}
	defer d.release()
	return d.faultAt(d.take(), dcI, down), nil
}

// Drain stops admitting new operations and blocks until every in-flight
// operation has committed. Safe to call more than once.
func (d *Daemon) Drain() {
	d.draining.Store(true)
	d.seqMu.Lock()
	for d.done != d.next {
		d.cond.Wait()
	}
	d.seqMu.Unlock()
}

// --- sequenced internals ---

func (d *Daemon) placeAt(seq uint64, vm VM) (Decision, error) {
	start := time.Now()
	// Phase 1 (optimistic): fit + score against a read-locked snapshot.
	d.mu.RLock()
	gen := d.st.gen
	cand, err := d.st.prepare(&vm)
	d.mu.RUnlock()

	// Phase 2 (reserve): at this decision's turn, land any due
	// reconciliation, re-validate the snapshot generation, and commit.
	d.waitTurn(seq)
	d.mu.Lock()
	d.landDue(seq)
	if d.st.gen != gen {
		// A concurrent admission (or a landed reconcile) moved the world:
		// re-run fit+score at the turn so the decision equals what serial
		// processing in sequence order would have produced.
		cand, err = d.st.prepare(&vm)
	}
	var dec Decision
	if err == nil {
		dec = d.st.commit(&vm, cand)
		dec.Seq = seq
	}
	d.maybeTrigger(seq)
	d.mu.Unlock()
	d.finishTurn(seq)

	if err != nil {
		return Decision{}, err
	}
	dec.Latency = time.Since(start)
	d.mPlacements.Inc()
	if dec.Overflowed {
		d.mOverflows.Inc()
	}
	d.mLat.Observe(dec.Latency)
	return dec, nil
}

func (d *Daemon) departAt(seq uint64, id int) bool {
	d.waitTurn(seq)
	d.mu.Lock()
	d.landDue(seq)
	ok := d.st.depart(id)
	d.maybeTrigger(seq)
	d.mu.Unlock()
	d.finishTurn(seq)
	if ok {
		d.mDepartures.Inc()
	}
	return ok
}

func (d *Daemon) faultAt(seq uint64, dcI int, down bool) []int {
	d.waitTurn(seq)
	d.mu.Lock()
	d.landDue(seq)
	moved := d.st.setFault(dcI, down)
	d.maybeTrigger(seq)
	d.mu.Unlock()
	d.finishTurn(seq)
	d.mFaults.Inc()
	return moved
}

func (d *Daemon) observeAt(seq uint64, o Observation) {
	d.waitTurn(seq)
	d.mu.Lock()
	d.landDue(seq)
	d.st.observe(&o)
	d.maybeTrigger(seq)
	d.mu.Unlock()
	d.finishTurn(seq)
	d.mObservations.Inc()
}

// --- read-only accessors ---

// Resident reports whether id is currently placed.
func (d *Daemon) Resident(id int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.st.dcOf[id]
	return ok
}

// DCOf returns id's DC, or -1 when not resident.
func (d *Daemon) DCOf(id int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if dcI, ok := d.st.dcOf[id]; ok {
		return dcI
	}
	return -1
}

// ServerOf returns id's (dc, server), or (-1, -1) when not resident.
func (d *Daemon) ServerOf(id int) (int, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	dcI, ok := d.st.dcOf[id]
	if !ok {
		return -1, -1
	}
	return dcI, d.st.srvOf[id]
}

// Residents returns the resident ids, ascending.
func (d *Daemon) Residents() []int {
	d.mu.RLock()
	ids := append([]int(nil), d.st.active...)
	d.mu.RUnlock()
	sortInts(ids)
	return ids
}

// DownDCs returns the DCs currently marked unavailable, ascending.
func (d *Daemon) DownDCs() []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []int
	for i, dn := range d.st.dcDown {
		if dn {
			out = append(out, i)
		}
	}
	return out
}

// NumResidents returns the resident VM count.
func (d *Daemon) NumResidents() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.st.active)
}
