package serve

import (
	"sync"
	"sync/atomic"

	"geovmp/internal/fault"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
)

// EventKind discriminates replayed operations.
type EventKind int

// Replayable operation kinds.
const (
	EvPlace EventKind = iota
	EvDepart
	EvObserve
	EvFault
)

// FaultEvent is one DC availability flip in the sequenced event log: the
// serving-side mirror of a fault.Schedule DC transition. Down marks the DC
// unavailable for admissions and forces its residents to re-place at the
// event's turn; Up restores it.
type FaultEvent struct {
	DC   int
	Down bool
}

// Event is one entry of a replayable operation log.
type Event struct {
	Kind  EventKind
	VM    VM          // EvPlace
	ID    int         // EvDepart
	Obs   Observation // EvObserve
	Fault FaultEvent  // EvFault
}

// Replay feeds an operation log through the daemon with the given worker
// parallelism. The log's order *is* the admission sequence: a contiguous
// block of sequence numbers is reserved up front and event k commits at
// block+k, so workers overlap only the optimistic prepare phase and the
// decision stream is identical at any worker count. Returned decisions are
// indexed like events (zero-valued for non-place events and failures).
func (d *Daemon) Replay(events []Event, workers int) []Decision {
	if len(events) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(events) {
		workers = len(events)
	}
	base := d.reserve(len(events))
	decs := make([]Decision, len(events))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(events) {
					return
				}
				seq := base + uint64(k)
				ev := &events[k]
				switch ev.Kind {
				case EvPlace:
					if dec, err := d.placeAt(seq, ev.VM); err == nil {
						decs[k] = dec
					}
				case EvDepart:
					d.departAt(seq, ev.ID)
				case EvObserve:
					d.observeAt(seq, ev.Obs)
				case EvFault:
					d.faultAt(seq, ev.Fault.DC, ev.Fault.Down)
				}
			}
		}()
	}
	wg.Wait()
	return decs
}

// EventsFromTrace compiles a workload trace into the daemon's event log,
// mirroring what the batch simulator's per-slot loop observes: for each
// slot, one observation carrying the previous interval's profiles and
// planned volumes for the slot's active set (slot 0 bootstraps from
// itself), then the slot's departures, then its arrivals — all ascending,
// so the log is deterministic.
func EventsFromTrace(src trace.Source, slots timeutil.Slot, samples int) []Event {
	arrivals, departures := trace.Diffs(src, slots)
	var events []Event
	for sl := timeutil.Slot(0); sl < timeutil.Slot(len(arrivals)); sl++ {
		obsSlot := sl
		if sl > 0 {
			obsSlot = sl - 1
		}
		ids := src.ActiveVMs(sl)
		obs := Observation{Slot: sl, VMs: make([]VMProfile, 0, len(ids))}
		for _, id := range ids {
			obs.VMs = append(obs.VMs, VMProfile{ID: id, Profile: src.SlotProfile(id, obsSlot, samples)})
		}
		for _, e := range src.PlannedVolumes(obsSlot, sl) {
			obs.Volumes = append(obs.Volumes, VolumeObs{From: e.From, To: e.To, Vol: e.Vol})
		}
		events = append(events, Event{Kind: EvObserve, Obs: obs})
		for _, id := range departures[sl] {
			events = append(events, Event{Kind: EvDepart, ID: id})
		}
		for _, id := range arrivals[sl] {
			events = append(events, Event{Kind: EvPlace, VM: VM{
				ID:      id,
				Profile: src.SlotProfile(id, obsSlot, samples),
				Image:   src.Image(id),
			}})
		}
	}
	return events
}

// InsertFaults threads a compiled fault schedule's DC transitions into an
// event log produced by EventsFromTrace: each transition lands immediately
// after its slot's observation event, so replaying the merged log sees the
// same outage timing the batch simulator applies at the top of each slot.
// Transitions past the log's horizon are appended at the end.
func InsertFaults(events []Event, trans []fault.Transition) []Event {
	if len(trans) == 0 {
		return events
	}
	out := make([]Event, 0, len(events)+len(trans))
	ti := 0
	for _, ev := range events {
		out = append(out, ev)
		if ev.Kind != EvObserve {
			continue
		}
		for ti < len(trans) && trans[ti].Slot <= ev.Obs.Slot {
			out = append(out, Event{Kind: EvFault,
				Fault: FaultEvent{DC: trans[ti].DC, Down: trans[ti].Down}})
			ti++
		}
	}
	for ; ti < len(trans); ti++ {
		out = append(out, Event{Kind: EvFault,
			Fault: FaultEvent{DC: trans[ti].DC, Down: trans[ti].Down}})
	}
	return out
}
