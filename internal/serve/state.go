package serve

import (
	"sort"

	"geovmp/internal/alloc"
	"geovmp/internal/core"
	"geovmp/internal/correlation"
	"geovmp/internal/embed"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// state is the daemon's world: the incremental correlation state (profile
// set, volume matrix, data adjacency), the embedding layout, and per-DC
// residency and packing. Every mutation bumps gen, which the optimistic
// decision path uses to detect that its read snapshot went stale.
type state struct {
	opt  *Options
	gen  uint64
	slot timeutil.Slot

	// Correlation state, amended per arrival/departure/observation. ref is
	// the attraction normalization volume (the matrix mean), cached so the
	// per-arrival force field costs O(1) to assemble.
	ps    *correlation.ProfileSet
	dm    *correlation.DataMatrix
	ref   units.DataSize
	peers map[int][]int // data adjacency, both directions, dedup

	// Embedding layout and per-DC centroid accumulators (posSum/resCount),
	// maintained incrementally so the locality score never scans the fleet.
	pos      map[int]embed.Point
	posSum   []embed.Point
	resCount []int

	// Residency: VM -> (dc, server), per-DC incremental packers, and the
	// active list in commit order (swap-removal keeps it deterministic).
	dcOf   map[int]int
	srvOf  map[int]int
	packs  []*alloc.Tracker
	active []int
	actPos map[int]int // id -> index in active

	// dcDown marks DCs taken out by fault events: no admissions, and
	// residents are re-seated onto healthy DCs at the fault's turn.
	dcDown []bool

	// Per-slot tariff snapshot for the energy score term.
	prices   []units.Price
	maxPrice units.Price
	propNorm float64 // max pairwise propagation delay, for cross-DC weights
}

func newState(opt *Options) *state {
	n := len(opt.Fleet)
	s := &state{
		opt:      opt,
		ps:       correlation.NewProfileSet(opt.Samples),
		dm:       correlation.NewDataMatrix(),
		peers:    make(map[int][]int),
		pos:      make(map[int]embed.Point),
		posSum:   make([]embed.Point, n),
		resCount: make([]int, n),
		dcOf:     make(map[int]int),
		srvOf:    make(map[int]int),
		packs:    make([]*alloc.Tracker, n),
		actPos:   make(map[int]int),
		dcDown:   make([]bool, n),
		prices:   make([]units.Price, n),
	}
	for i, d := range opt.Fleet {
		s.packs[i] = alloc.NewTracker(d.Model, d.Servers, opt.Samples, opt.ProbeLimit)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if p := opt.Topo.PropagationDelay(i, j); p > s.propNorm {
				s.propNorm = p
			}
		}
	}
	s.refreshPrices()
	return s
}

func (s *state) refreshPrices() {
	s.maxPrice = 0
	for i, d := range s.opt.Fleet {
		s.prices[i] = d.Tariff.AtSlot(s.slot)
		if s.prices[i] > s.maxPrice {
			s.maxPrice = s.prices[i]
		}
	}
}

// peerEntry is one data peer of an arriving VM: its bidirectional volume
// with the VM and its current DC (-1 when not resident).
type peerEntry struct {
	id  int
	vol float64
	dc  int
}

// candidate is a prepared (fit+score) decision awaiting commit.
type candidate struct {
	dc, srv    int
	prof       []float64 // normalized to Options.Samples
	seed       embed.Point
	overflowed bool
}

// embedCfg returns the refinement/reconciliation embedding configuration —
// the same tuning the batch controller embeds with (core.New).
func (s *state) embedCfg() embed.Config {
	return embed.Config{Seed: s.opt.Seed, MaxDisplace: 1.0, RepulsionScale: 4}
}

// prepare runs the fit and score phases against the current state without
// mutating anything: a bounded capacity probe per DC, then the blended
// cross-traffic/locality/correlation/energy score over the feasible DCs.
// When no DC fits, the least-loaded DC's spill server is chosen and the
// decision is flagged overflowed.
func (s *state) prepare(vm *VM) (candidate, error) {
	if _, ok := s.dcOf[vm.ID]; ok {
		return candidate{}, ErrAlreadyPlaced
	}
	prof := normalizeProfile(vm.Profile, s.opt.Samples)
	peers := s.peerEntries(vm)
	seed := s.seedPos(vm.ID, peers)

	n := len(s.packs)
	srvs := make([]int, n)
	feas := make([]bool, n)
	anyFit := false
	for i, tr := range s.packs {
		if s.dcDown[i] {
			continue // a down DC admits nothing
		}
		srv, _, ok := tr.Probe(prof)
		srvs[i], feas[i] = srv, ok
		anyFit = anyFit || ok
	}
	if !anyFit {
		best := s.leastLoadedUp()
		return candidate{dc: best, srv: s.packs[best].Overflow(), prof: prof, seed: seed, overflowed: true}, nil
	}

	// Locality: distance from the VM's seed position to each DC's resident
	// centroid, normalized by the farthest one; empty DCs score neutral.
	dist := make([]float64, n)
	maxd := 0.0
	for i := 0; i < n; i++ {
		if s.resCount[i] == 0 {
			dist[i] = -1
			continue
		}
		c := embed.Point{
			X: s.posSum[i].X / float64(s.resCount[i]),
			Y: s.posSum[i].Y / float64(s.resCount[i]),
		}
		dist[i] = embed.Dist(seed, c)
		if dist[i] > maxd {
			maxd = dist[i]
		}
	}

	best := -1
	var bestScore float64
	for i := 0; i < n; i++ {
		if !feas[i] {
			continue
		}
		loc := 0.5
		if dist[i] >= 0 {
			loc = 0
			if maxd > 0 {
				loc = dist[i] / maxd
			}
		}
		sc := s.opt.Alpha*(0.7*s.crossTerm(i, peers)+0.3*loc) +
			(1-s.opt.Alpha)*s.corrTerm(i, srvs[i], prof) +
			s.opt.EnergyWeight*s.energyTerm(i)
		if best < 0 || sc < bestScore {
			best, bestScore = i, sc
		}
	}
	return candidate{dc: best, srv: srvs[best], prof: prof, seed: seed}, nil
}

// leastLoadedUp picks the least-loaded healthy DC (smallest index on ties);
// with the whole fleet down it degrades to the least-loaded DC overall so an
// arrival always has a seat to overflow onto.
func (s *state) leastLoadedUp() int {
	best := -1
	var bu float64
	for i := range s.packs {
		if s.dcDown[i] {
			continue
		}
		if u := s.packs[i].UsedFrac(); best < 0 || u < bu {
			best, bu = i, u
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	bu = s.packs[0].UsedFrac()
	for i := 1; i < len(s.packs); i++ {
		if u := s.packs[i].UsedFrac(); u < bu {
			best, bu = i, u
		}
	}
	return best
}

// setFault flips one DC's availability. Taking a DC down re-seats its
// residents in ascending-id order onto the least-loaded healthy DC that
// fits them (overflowing when none does), keeping the correlation state and
// embedding positions intact — only residency and packing move. The
// returned slice lists the re-placed ids.
func (s *state) setFault(dcI int, down bool) []int {
	if dcI < 0 || dcI >= len(s.packs) || s.dcDown[dcI] == down {
		return nil
	}
	s.dcDown[dcI] = down
	s.gen++
	if !down {
		return nil
	}
	var ids []int
	for id, d := range s.dcOf {
		if d == dcI {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.reseat(id)
	}
	return ids
}

// reseat moves one resident off its (down) DC: detach from the packer and
// centroid accumulators, then re-admit through the probe path restricted to
// healthy DCs. With the whole fleet down the VM stays stranded in place.
func (s *state) reseat(id int) {
	from := s.dcOf[id]
	anyUp := false
	for i := range s.packs {
		if !s.dcDown[i] {
			anyUp = true
			break
		}
	}
	if !anyUp {
		return
	}
	srv := s.srvOf[id]
	s.packs[from].Remove(srv, id, s.ps.Profile)
	prof := s.ps.Profile(id)

	to, tsrv := -1, 0
	var bu float64
	for i, tr := range s.packs {
		if s.dcDown[i] {
			continue
		}
		if sv, _, ok := tr.Probe(prof); ok {
			if u := tr.UsedFrac(); to < 0 || u < bu {
				to, tsrv, bu = i, sv, u
			}
		}
	}
	if to < 0 {
		to = s.leastLoadedUp()
		tsrv = s.packs[to].Overflow()
	}
	s.packs[to].Commit(tsrv, id, prof)
	s.dcOf[id] = to
	s.srvOf[id] = tsrv
	p := s.pos[id]
	s.posSum[from].X -= p.X
	s.posSum[from].Y -= p.Y
	s.resCount[from]--
	s.posSum[to].X += p.X
	s.posSum[to].Y += p.Y
	s.resCount[to]++
}

// corrSampleCap bounds the residents examined by the per-server correlation
// score, keeping the score O(1) as servers fill.
const corrSampleCap = 32

// corrTerm scores peak coincidence between the arriving profile and the
// candidate server's residents (the paper's Eq. 5 repulsion, evaluated
// against the VMs the arrival would actually share hardware with). Empty
// servers are neutral.
func (s *state) corrTerm(dcI, srv int, prof []float64) float64 {
	members := s.packs[dcI].Members(srv)
	if len(members) == 0 {
		return 0.5
	}
	m := len(members)
	if m > corrSampleCap {
		m = corrSampleCap
	}
	var sum float64
	for k := 0; k < m; k++ {
		sum += correlation.PeakCoincidence(prof, s.ps.Profile(members[k]))
	}
	return sum / float64(m)
}

// crossTerm scores the traffic the VM would send across DC boundaries:
// volume-weighted link badness over the VM's placed peers (0 intra-DC,
// 0.5..1 scaling with propagation delay). No placed peers is neutral.
func (s *state) crossTerm(dcI int, peers []peerEntry) float64 {
	var tot, num float64
	for _, p := range peers {
		if p.dc < 0 || p.vol <= 0 {
			continue
		}
		tot += p.vol
		if p.dc != dcI {
			w := 0.5
			if s.propNorm > 0 {
				w += 0.5 * s.opt.Topo.PropagationDelay(dcI, p.dc) / s.propNorm
			}
			num += p.vol * w
		}
	}
	if tot <= 0 {
		return 0.5
	}
	return num / tot
}

// energyTerm scores a DC's current energy cost: its grid tariff relative to
// the fleet's priciest, blended with its load fraction (fuller fleets run
// servers at worse efficiency and leave less green headroom).
func (s *state) energyTerm(dcI int) float64 {
	var pf float64
	if s.maxPrice > 0 {
		pf = float64(s.prices[dcI]) / float64(s.maxPrice)
	}
	uf := s.packs[dcI].UsedFrac()
	if uf > 1 {
		uf = 1
	}
	return 0.5*pf + 0.5*uf
}

// peerEntries collects the VM's data peers: the adjacency already recorded
// in the volume matrix plus the arrival's declared flows, deduplicated.
func (s *state) peerEntries(vm *VM) []peerEntry {
	var out []peerEntry
	for _, q := range s.peers[vm.ID] {
		out = append(out, peerEntry{id: q, vol: float64(s.dm.TotalBetween(vm.ID, q)), dc: s.dcAt(q)})
	}
	for _, fl := range vm.Flows {
		v := float64(fl.ToPeer + fl.FromPeer)
		found := false
		for k := range out {
			if out[k].id == fl.Peer {
				out[k].vol += v
				found = true
				break
			}
		}
		if !found {
			out = append(out, peerEntry{id: fl.Peer, vol: v, dc: s.dcAt(fl.Peer)})
		}
	}
	return out
}

func (s *state) dcAt(id int) int {
	if d, ok := s.dcOf[id]; ok {
		return d
	}
	return -1
}

// seedPos seeds an arrival at the centroid of its placed data peers with a
// small deterministic jitter — the batch controller's rule for first-seen
// VMs — falling back to the deterministic scatter.
func (s *state) seedPos(id int, peers []peerEntry) embed.Point {
	var cx, cy float64
	known := 0
	for _, p := range peers {
		if q, ok := s.pos[p.id]; ok {
			cx += q.X
			cy += q.Y
			known++
		}
	}
	if known == 0 {
		return embed.InitialPosition(id, 10, s.opt.Seed)
	}
	jit := embed.InitialPosition(id, 0.5, s.opt.Seed)
	return embed.Point{X: cx/float64(known) + jit.X, Y: cy/float64(known) + jit.Y}
}

// commit is the reserve phase: apply a prepared decision. Correlation state
// first (the refinement field reads it), then the embedding seat, then
// residency. Cost is O(profile + degree + RefineIters x (degree + SampleK))
// — independent of fleet size.
func (s *state) commit(vm *VM, c candidate) Decision {
	id := vm.ID
	s.ps.Add(id, c.prof)
	s.ps.EnsureOrders(nil) // incremental: sorts only the new/changed row
	if len(vm.Flows) > 0 {
		for _, fl := range vm.Flows {
			if fl.ToPeer > 0 {
				s.dm.Add(id, fl.Peer, fl.ToPeer)
				s.link(id, fl.Peer)
			}
			if fl.FromPeer > 0 {
				s.dm.Add(fl.Peer, id, fl.FromPeer)
				s.link(id, fl.Peer)
			}
		}
		s.ref = s.dm.Mean()
	}
	p := c.seed
	if s.opt.RefineIters > 0 && len(s.active) > 0 {
		s.pos[id] = p
		f := core.NewField(s.opt.Alpha, s.ps, s.dm, s.ref, s.peers)
		p = embed.RefineOne(id, s.active, s.pos, f, s.embedCfg(), s.opt.RefineIters)
	}
	s.pos[id] = p
	s.packs[c.dc].Commit(c.srv, id, c.prof)
	s.dcOf[id] = c.dc
	s.srvOf[id] = c.srv
	s.actPos[id] = len(s.active)
	s.active = append(s.active, id)
	s.posSum[c.dc].X += p.X
	s.posSum[c.dc].Y += p.Y
	s.resCount[c.dc]++
	s.gen++
	return Decision{ID: id, DC: c.dc, Server: c.srv, Overflowed: c.overflowed}
}

// depart removes a resident VM, amending every structure the arrival built.
func (s *state) depart(id int) bool {
	dcI, ok := s.dcOf[id]
	if !ok {
		return false
	}
	srv := s.srvOf[id]
	s.packs[dcI].Remove(srv, id, s.ps.Profile)
	s.ps.Remove(id)
	hadData := len(s.peers[id]) > 0
	s.dm.RemoveVM(id)
	s.unlink(id)
	if hadData {
		s.ref = s.dm.Mean()
	}
	p := s.pos[id]
	delete(s.pos, id)
	s.posSum[dcI].X -= p.X
	s.posSum[dcI].Y -= p.Y
	s.resCount[dcI]--
	delete(s.dcOf, id)
	delete(s.srvOf, id)
	k := s.actPos[id]
	last := s.active[len(s.active)-1]
	s.active[k] = last
	s.actPos[last] = k
	s.active = s.active[:len(s.active)-1]
	delete(s.actPos, id)
	s.gen++
	return true
}

// observe applies one telemetry refresh: profile rows are replaced in place,
// the volume matrix and data adjacency are rebuilt from the observation, and
// the per-server aggregates are recomputed from the fresh profiles. This is
// the once-per-slot O(fleet) path; arrivals stay O(local) between refreshes.
func (s *state) observe(o *Observation) {
	if o.Slot != s.slot {
		s.slot = o.Slot
		s.refreshPrices()
	}
	for _, v := range o.VMs {
		s.ps.Add(v.ID, normalizeProfile(v.Profile, s.opt.Samples))
	}
	s.ps.EnsureOrders(nil)
	s.dm.Reset()
	for _, ve := range o.Volumes {
		s.dm.Add(ve.From, ve.To, ve.Vol)
	}
	s.ref = s.dm.Mean()
	s.rebuildPeers()
	for _, tr := range s.packs {
		tr.RebuildAll(s.ps.Profile)
	}
	s.gen++
}

// link registers a data pair in the adjacency (both directions, dedup) —
// the incremental counterpart of the batch field's derivation.
func (s *state) link(a, b int) {
	if !containsInt(s.peers[a], b) {
		s.peers[a] = append(s.peers[a], b)
	}
	if !containsInt(s.peers[b], a) {
		s.peers[b] = append(s.peers[b], a)
	}
}

// unlink removes id from the adjacency entirely.
func (s *state) unlink(id int) {
	for _, q := range s.peers[id] {
		l := s.peers[q]
		w := 0
		for _, x := range l {
			if x != id {
				l[w] = x
				w++
			}
		}
		if w == 0 {
			delete(s.peers, q)
		} else {
			s.peers[q] = l[:w]
		}
	}
	delete(s.peers, id)
}

// rebuildPeers re-derives the adjacency from the volume matrix — the same
// registration order the batch field uses, so reconciliation and refinement
// see identical peer lists.
func (s *state) rebuildPeers() {
	s.peers = make(map[int][]int, len(s.peers))
	seen := make(map[[2]int]bool)
	s.dm.Each(func(from, to int, _ units.DataSize) {
		if !seen[[2]int{to, from}] {
			s.peers[to] = append(s.peers[to], from)
			seen[[2]int{to, from}] = true
		}
		if !seen[[2]int{from, to}] {
			s.peers[from] = append(s.peers[from], to)
			seen[[2]int{from, to}] = true
		}
	})
}

// normalizeProfile fits a profile to the daemon's sample count: returned
// as-is when it already matches (ProfileSet.Add copies standard-length rows
// into its arena), truncated or zero-padded otherwise.
func normalizeProfile(prof []float64, samples int) []float64 {
	if len(prof) == samples {
		return prof
	}
	out := make([]float64, samples)
	copy(out, prof)
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sortInts(s []int) { sort.Ints(s) }
