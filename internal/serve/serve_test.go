package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

func testScenario(t *testing.T, scale float64) *sim.Scenario {
	t.Helper()
	spec, err := config.Preset("geo5dc-dynamic")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = scale
	sc, err := config.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func testDaemon(t *testing.T, mod func(*Options)) *Daemon {
	t.Helper()
	sc := testScenario(t, 0.01)
	opt := Options{Fleet: sc.Fleet, Topo: sc.Topo, Seed: 7}
	if mod != nil {
		mod(&opt)
	}
	d, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testProfile(v float64) []float64 {
	p := make([]float64, sim.DefaultProfileSamples)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestPlaceDepartLifecycle(t *testing.T) {
	d := testDaemon(t, nil)
	dec, err := d.Place(VM{ID: 1, Profile: testProfile(0.4)})
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 1 || dec.DC < 0 || dec.DC >= len(d.opt.Fleet) || dec.Server < 0 {
		t.Fatalf("bad decision: %+v", dec)
	}
	if dec.Overflowed {
		t.Fatalf("first VM overflowed: %+v", dec)
	}
	if !d.Resident(1) || d.DCOf(1) != dec.DC {
		t.Fatalf("residency not recorded: dc=%d", d.DCOf(1))
	}
	if dcI, srv := d.ServerOf(1); dcI != dec.DC || srv != dec.Server {
		t.Fatalf("ServerOf = (%d,%d), want (%d,%d)", dcI, srv, dec.DC, dec.Server)
	}

	if _, err := d.Place(VM{ID: 1, Profile: testProfile(0.4)}); err != ErrAlreadyPlaced {
		t.Fatalf("duplicate place: err = %v, want ErrAlreadyPlaced", err)
	}

	// A second VM declaring traffic with the first should follow it: every
	// score term except cross-traffic is DC-symmetric this early, so the
	// shared-DC candidate wins.
	dec2, err := d.Place(VM{ID: 2, Profile: testProfile(0.3), Flows: []Flow{{Peer: 1, ToPeer: 500, FromPeer: 250}}})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.DC != dec.DC {
		t.Fatalf("correlated VM placed at DC %d, its peer at %d", dec2.DC, dec.DC)
	}

	ok, err := d.Depart(1)
	if err != nil || !ok {
		t.Fatalf("depart: ok=%v err=%v", ok, err)
	}
	if ok, _ := d.Depart(1); ok {
		t.Fatal("double depart reported removal")
	}
	if d.Resident(1) || d.DCOf(1) != -1 {
		t.Fatal("departed VM still resident")
	}
	if n := d.NumResidents(); n != 1 {
		t.Fatalf("NumResidents = %d, want 1", n)
	}

	snap := d.Board().Snapshot()
	if snap.Counters["serve_placements_total"] != 2 || snap.Counters["serve_departures_total"] != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Hists["serve_decision_latency"].Count != 2 {
		t.Fatalf("latency count: %+v", snap.Hists)
	}
}

func TestObserveRefreshesState(t *testing.T) {
	d := testDaemon(t, nil)
	if _, err := d.Place(VM{ID: 3, Profile: testProfile(0.2)}); err != nil {
		t.Fatal(err)
	}
	err := d.Observe(Observation{
		Slot:    1,
		VMs:     []VMProfile{{ID: 3, Profile: testProfile(0.8)}},
		Volumes: []VolumeObs{{From: 3, To: 9, Vol: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	peak := d.st.ps.Peak(3)
	ref := d.st.ref
	slot := d.st.slot
	d.mu.RUnlock()
	if peak != 0.8 {
		t.Fatalf("observed profile not applied: peak=%v", peak)
	}
	if ref != 100 || slot != 1 {
		t.Fatalf("volume/slot refresh: ref=%v slot=%d", ref, slot)
	}
}

func TestOverflowSpillsDeterministically(t *testing.T) {
	d := testDaemon(t, nil)
	total := 0
	for _, dcI := range d.opt.Fleet {
		total += dcI.Servers
	}
	// Each near-capacity VM takes a whole server; once every server in the
	// fleet is taken, further arrivals must still be placed, flagged
	// overflowed.
	cap0 := d.opt.Fleet[0].Model.MaxCapacity()
	prof := testProfile(0.9 * cap0)
	overflowed := 0
	for id := 0; id < total+3; id++ {
		dec, err := d.Place(VM{ID: id, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Overflowed {
			overflowed++
		}
	}
	if overflowed != 3 {
		t.Fatalf("overflowed = %d, want 3 (fleet of %d servers)", overflowed, total)
	}
	if got := d.Board().Counter("serve_overflows_total").Value(); got != 3 {
		t.Fatalf("overflow counter = %d", got)
	}
}

func TestQueueBackpressure(t *testing.T) {
	d := testDaemon(t, func(o *Options) { o.QueueCap = 1 })
	if !d.admit() {
		t.Fatal("empty queue refused admission")
	}
	if _, err := d.Place(VM{ID: 1, Profile: testProfile(0.4)}); err != ErrQueueFull {
		t.Fatalf("saturated queue: err = %v, want ErrQueueFull", err)
	}
	d.release()
	if _, err := d.Place(VM{ID: 1, Profile: testProfile(0.4)}); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if got := d.Board().Counter("serve_rejections_total").Value(); got != 1 {
		t.Fatalf("rejections = %d", got)
	}
}

func TestDrainStopsAdmission(t *testing.T) {
	d := testDaemon(t, nil)
	if _, err := d.Place(VM{ID: 1, Profile: testProfile(0.4)}); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	if _, err := d.Place(VM{ID: 2, Profile: testProfile(0.4)}); err != ErrDraining {
		t.Fatalf("place after drain: %v", err)
	}
	if _, err := d.Depart(1); err != ErrDraining {
		t.Fatalf("depart after drain: %v", err)
	}
	if err := d.Observe(Observation{Slot: 1}); err != ErrDraining {
		t.Fatalf("observe after drain: %v", err)
	}
	d.Drain() // idempotent
}

// decisionKey strips the non-semantic fields (latency) for comparison.
type decisionKey struct {
	ID, DC, Server int
	Overflowed     bool
	Seq            uint64
}

// TestReplayDeterministic is the deterministic-admission property: the same
// arrival log replayed at parallelism 1, 2 and GOMAXPROCS+6 must produce
// identical decisions, with the reconciler deliberately tuned hot enough to
// land several times mid-log.
func TestReplayDeterministic(t *testing.T) {
	sc := testScenario(t, 0.02)
	events := EventsFromTrace(sc.Workload, 24, sim.DefaultProfileSamples)
	if len(events) < 100 {
		t.Fatalf("log too small to be interesting: %d events", len(events))
	}
	var ref []decisionKey
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 6} {
		d, err := New(Options{
			Fleet: sc.Fleet, Topo: sc.Topo, Seed: 7,
			ReconcileEvery: 64, ReconcileLag: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		decs := d.Replay(events, workers)
		d.Drain()
		keys := make([]decisionKey, len(decs))
		placed := 0
		for k, dec := range decs {
			keys[k] = decisionKey{ID: dec.ID, DC: dec.DC, Server: dec.Server, Overflowed: dec.Overflowed, Seq: dec.Seq}
			if events[k].Kind == EvPlace && dec.ID == events[k].VM.ID {
				placed++
			}
		}
		if placed == 0 {
			t.Fatalf("workers=%d: no placements recorded", workers)
		}
		if d.Board().Counter("serve_reconciles_total").Value() == 0 {
			t.Fatalf("workers=%d: reconciler never landed; test is not exercising it", workers)
		}
		if ref == nil {
			ref = keys
			continue
		}
		for k := range keys {
			if keys[k] != ref[k] {
				t.Fatalf("workers=%d: decision %d diverged: %+v vs %+v", workers, k, keys[k], ref[k])
			}
		}
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPAPI(t *testing.T) {
	d := testDaemon(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 1, Profile: testProfile(0.4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d", resp.StatusCode)
	}
	var pr placeResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.ID != 1 || pr.DC < 0 {
		t.Fatalf("place response: %+v", pr)
	}

	if resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 1, Profile: testProfile(0.4)}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate place: status %d", resp.StatusCode)
	}
	if resp, _ := http.Post(srv.URL+"/v1/place", "application/json", strings.NewReader("{")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 5}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty profile: status %d", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/v1/observe", observeRequest{
		Slot: 1,
		VMs:  []vmProfileJSON{{ID: 1, Profile: testProfile(0.6)}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: status %d", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/v1/depart", departRequest{ID: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("depart: status %d", resp.StatusCode)
	}
	var dr departResponse
	json.NewDecoder(resp.Body).Decode(&dr)
	resp.Body.Close()
	if !dr.Removed {
		t.Fatalf("depart response: %+v", dr)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", err, mresp)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(buf.String(), "serve_placements_total 1") {
		t.Fatalf("metrics exposition missing counters:\n%s", buf.String())
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", err)
	}
	var h healthResponse
	json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if h.Status != "ok" || h.SLOMS <= 0 {
		t.Fatalf("healthz: %+v", h)
	}
}

func TestHTTPBackpressureAndDrain(t *testing.T) {
	d := testDaemon(t, func(o *Options) { o.QueueCap = 1 })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if !d.admit() {
		t.Fatal("admission failed")
	}
	resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 1, Profile: testProfile(0.4)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated place: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	d.release()

	if resp := postJSON(t, srv.URL+"/v1/drain", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/place", placeRequest{ID: 2, Profile: testProfile(0.4)}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("place after drain: status %d", resp.StatusCode)
	}
	hresp, _ := http.Get(srv.URL + "/healthz")
	var h healthResponse
	json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz after drain: %+v", h)
	}
}

// TestSimPolicyMatchesEngine drives the daemon through the batch simulator:
// the adapter must produce a complete, accountable placement every slot.
func TestSimPolicyMatchesEngine(t *testing.T) {
	sc := testScenario(t, 0.01)
	sc.Horizon = timeutil.Days(1)
	d, err := New(Options{Fleet: sc.Fleet, Topo: sc.Topo, Seed: sc.Seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, NewSimPolicy(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.OpCost <= 0 || res.TotalEnergy <= 0 {
		t.Fatalf("degenerate result: cost=%v energy=%v", res.OpCost, res.TotalEnergy)
	}
	if d.Board().Counter("serve_placements_total").Value() == 0 {
		t.Fatal("daemon never placed anything")
	}
}
