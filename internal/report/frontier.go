package report

import (
	"fmt"
	"math"
	"strings"

	"geovmp/internal/pareto"
)

// Frontier renders one scenario's resolved trade-off frontier as a figure:
// one row per evaluated point — knob value, objectives, non-domination
// rank — with the Pareto-optimal points and the knee marked, and the
// front's quality indicators in the notes.
func Frontier(sf *pareto.ScenarioFrontier) *Figure {
	f := &Figure{
		ID:    "frontier-" + sf.Scenario,
		Title: fmt.Sprintf("%s: trade-off frontier (%s)", sf.Scenario, strings.Join(sf.Objectives, " vs ")),
	}
	f.Headers = append([]string{"point", "knob"}, sf.Objectives...)
	f.Headers = append(f.Headers, "rank", "front")

	onFront := make(map[int]bool, len(sf.Front))
	for _, i := range sf.Front {
		onFront[i] = true
	}
	// Knob precision scales with the evaluated range — same rule as the
	// point labels — so narrow custom ranges keep distinct table values.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range sf.Points {
		if p := &sf.Points[i]; p.HasKnob {
			lo = math.Min(lo, p.Knob)
			hi = math.Max(hi, p.Knob)
		}
	}
	decimals := pareto.KnobDecimals(lo, hi)
	for i := range sf.Points {
		p := &sf.Points[i]
		knob := "-"
		if p.HasKnob {
			knob = fmt.Sprintf("%.*f", decimals, p.Knob)
		}
		row := []string{p.Name, knob}
		for _, v := range p.V {
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		marker := ""
		switch {
		case i == sf.Knee:
			marker = "knee"
		case onFront[i]:
			marker = "*"
		}
		row = append(row, fmt.Sprintf("%d", p.Rank), marker)
		f.Rows = append(f.Rows, row)
	}
	f.Notes = fmt.Sprintf("hypervolume %.6g, spread %.4f over %d front points; %d evals in %d wave(s)",
		sf.Hypervolume, sf.Spread, len(sf.Front), sf.Evals, sf.Waves)
	return f
}
