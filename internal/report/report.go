// Package report renders simulation results into the artifacts the paper's
// evaluation section presents: aligned text tables, ASCII bar/line charts
// for terminals, and CSV files for external plotting. The Fig1..Fig6 and
// Table1 builders each regenerate one of the paper's figures from a set of
// per-policy results.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"geovmp/internal/dc"
	"geovmp/internal/metrics"
	"geovmp/internal/sim"
)

// Figure is one regenerated table or figure.
type Figure struct {
	ID      string     // "fig1", "table1", ...
	Title   string     // the paper's caption
	Headers []string   // CSV/table column names
	Rows    [][]string // data rows
	Chart   string     // optional ASCII rendering
	Notes   string     // interpretation guidance (who should win)
}

// Render returns the figure as human-readable text.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(f.ID), f.Title)
	b.WriteString(Table(f.Headers, f.Rows))
	if f.Chart != "" {
		b.WriteString(f.Chart)
		if !strings.HasSuffix(f.Chart, "\n") {
			b.WriteString("\n")
		}
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	return b.String()
}

// WriteCSV stores the figure's rows under dir as <id>.csv.
func (f *Figure) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(strings.Join(f.Headers, ",") + "\n")
	for _, row := range f.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return os.WriteFile(filepath.Join(dir, f.ID+".csv"), []byte(b.String()), 0o644)
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// BarChart renders a horizontal bar chart of labeled values scaled to
// width characters for the largest value.
func BarChart(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	var max float64
	lw := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > lw {
			lw = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", lw, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// LineChart renders a series as a coarse ASCII plot (values binned into
// width columns, height rows).
func LineChart(s *metrics.Series, width, height int) string {
	if s.Len() == 0 || width <= 0 || height <= 0 {
		return ""
	}
	ds := s
	if s.Len() > width {
		ds = s.Downsample((s.Len() + width - 1) / width)
	}
	maxY := ds.MaxY()
	if maxY <= 0 {
		maxY = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", ds.Len()))
	}
	for c, y := range ds.Y {
		r := height - 1 - int(y/maxY*float64(height-1))
		if r < 0 {
			r = 0
		}
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.4g)\n", s.Name, maxY)
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", ds.Len()) + "\n")
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// findProposed returns the result whose policy is the proposed method (by
// name), or the first result.
func findProposed(results []*sim.Result) *sim.Result {
	for _, r := range results {
		if r.Policy == "Proposed" {
			return r
		}
	}
	return results[0]
}

// Table1 regenerates Table I: the fleet's servers and energy sources.
func Table1(fleet dc.Fleet) *Figure {
	f := &Figure{
		ID:      "table1",
		Title:   "DCs number of servers and energy sources specification",
		Headers: []string{"DC", "Servers", "PV capacity (kWp)", "Battery capacity (kWh)"},
	}
	for _, d := range fleet {
		f.Rows = append(f.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", d.Servers),
			f2(d.Plant.Peak.KW()),
			f2(d.Bank.Capacity().KWh()),
		})
	}
	return f
}

// Fig1 regenerates Figure 1: weekly operational cost per method, normalized
// by the worst-case method.
func Fig1(results []*sim.Result) *Figure {
	costs := map[string]float64{}
	for _, r := range results {
		costs[r.Policy] = float64(r.OpCost)
	}
	norm := metrics.NormalizeByWorst(costs)
	prop := findProposed(results)
	f := &Figure{
		ID:      "fig1",
		Title:   "Normalized operational cost for time horizon of one week",
		Headers: []string{"method", "cost (EUR)", "normalized", "Proposed saves"},
		Notes:   "Proposed should be lowest; paper reports up to 55/25/35% savings vs Ener-/Pri-/Net-aware",
	}
	var labels []string
	var values []float64
	for _, r := range results {
		saving := metrics.Improvement(float64(prop.OpCost), float64(r.OpCost))
		savingStr := pct(saving)
		if r.Policy == prop.Policy {
			savingStr = "-"
		}
		f.Rows = append(f.Rows, []string{r.Policy, f2(float64(r.OpCost)), f4(norm[r.Policy]), savingStr})
		labels = append(labels, r.Policy)
		values = append(values, norm[r.Policy])
	}
	f.Chart = BarChart(labels, values, 40)
	return f
}

// Fig2 regenerates Figure 2: hourly energy consumed by the DCs plus weekly
// totals in GJ.
func Fig2(results []*sim.Result) *Figure {
	f := &Figure{
		ID:      "fig2",
		Title:   "Energy consumed by DCs for time horizon of one week",
		Headers: []string{"slot"},
		Notes:   "paper totals: 57/55/65/67 GJ for Proposed/Ener/Pri/Net — Ener and Proposed close, Pri and Net ~15% worse",
	}
	for _, r := range results {
		f.Headers = append(f.Headers, r.Policy+" (GJ)")
	}
	n := 0
	for _, r := range results {
		if r.EnergySeries.Len() > n {
			n = r.EnergySeries.Len()
		}
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, r := range results {
			if i < r.EnergySeries.Len() {
				row = append(row, f4(r.EnergySeries.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		f.Rows = append(f.Rows, row)
	}
	var chart strings.Builder
	chart.WriteString("weekly totals:\n")
	var labels []string
	var totals []float64
	for _, r := range results {
		labels = append(labels, r.Policy)
		totals = append(totals, r.TotalEnergy.GJ())
	}
	chart.WriteString(BarChart(labels, totals, 40))
	chart.WriteString(LineChart(&results[0].EnergySeries, 72, 8))
	f.Chart = chart.String()
	return f
}

// Fig3 regenerates Figure 3: the probability distribution of normalized
// response time over the week.
func Fig3(results []*sim.Result) *Figure {
	// Normalize by the worst-case value among the methods, as the paper
	// does.
	var worst float64
	for _, r := range results {
		if w := r.RespSummary.Max(); w > worst {
			worst = w
		}
	}
	if worst == 0 {
		worst = 1
	}
	const bins = 20
	hists := make([]*metrics.Histogram, len(results))
	for i, r := range results {
		h := metrics.NewHistogram(0, 1.0000001, bins)
		for _, v := range r.RespSamples {
			h.Add(v / worst)
		}
		hists[i] = h
	}
	f := &Figure{
		ID:      "fig3",
		Title:   "Probability distribution of normalized response time in one week",
		Headers: []string{"bin-center"},
		Notes:   "worst-case (SLA) response: Proposed and Net-aware should beat Ener-/Pri-aware; paper reports up to 12% worst-case improvement",
	}
	for _, r := range results {
		f.Headers = append(f.Headers, r.Policy)
	}
	centers, _ := hists[0].PDF()
	for b := 0; b < bins; b++ {
		row := []string{f4(centers[b])}
		for _, h := range hists {
			_, probs := h.PDF()
			row = append(row, f4(probs[b]))
		}
		f.Rows = append(f.Rows, row)
	}
	var chart strings.Builder
	chart.WriteString("per-method response stats (normalized by worst case):\n")
	stat := [][]string{}
	for _, r := range results {
		stat = append(stat, []string{
			r.Policy,
			f4(r.RespSummary.Mean() / worst),
			f4(r.RespSummary.Std() / worst),
			f4(r.RespSummary.Max() / worst),
		})
	}
	chart.WriteString(Table([]string{"method", "mean", "std", "worst"}, stat))
	f.Chart = chart.String()
	return f
}

// Fig4 regenerates Figure 4: total cost, energy and performance
// improvements of Proposed versus each baseline.
func Fig4(results []*sim.Result) *Figure {
	prop := findProposed(results)
	f := &Figure{
		ID:      "fig4",
		Title:   "Total cost, energy and performance",
		Headers: []string{"method", "cost (EUR)", "energy (GJ)", "worst resp (s)", "cost saving", "energy saving", "perf gain"},
		Notes:   "paper: up to 55% cost, 15% energy and 12% performance improvements for Proposed",
	}
	for _, r := range results {
		cs, es, ps := "-", "-", "-"
		if r.Policy != prop.Policy {
			cs = pct(metrics.Improvement(float64(prop.OpCost), float64(r.OpCost)))
			es = pct(metrics.Improvement(prop.TotalEnergy.GJ(), r.TotalEnergy.GJ()))
			ps = pct(metrics.Improvement(prop.RespSummary.Max(), r.RespSummary.Max()))
		}
		f.Rows = append(f.Rows, []string{
			r.Policy,
			f2(float64(r.OpCost)),
			f4(r.TotalEnergy.GJ()),
			f4(r.RespSummary.Max()),
			cs, es, ps,
		})
	}
	return f
}

// Fig5 regenerates Figure 5: the cost-performance trade-off (normalized
// cost vs normalized worst-case response per method).
func Fig5(results []*sim.Result) *Figure {
	return tradeoffFigure(results, "fig5", "Cost-Performance trade-off",
		func(r *sim.Result) float64 { return float64(r.OpCost) }, "cost")
}

// Fig6 regenerates Figure 6: the energy-performance trade-off.
func Fig6(results []*sim.Result) *Figure {
	return tradeoffFigure(results, "fig6", "Energy-Performance trade-off",
		func(r *sim.Result) float64 { return r.TotalEnergy.GJ() }, "energy")
}

func tradeoffFigure(results []*sim.Result, id, title string, metric func(*sim.Result) float64, name string) *Figure {
	vals := map[string]float64{}
	resp := map[string]float64{}
	for _, r := range results {
		vals[r.Policy] = metric(r)
		resp[r.Policy] = r.RespSummary.Max()
	}
	nv := metrics.NormalizeByWorst(vals)
	nr := metrics.NormalizeByWorst(resp)
	f := &Figure{
		ID:      id,
		Title:   title,
		Headers: []string{"method", "normalized " + name, "normalized worst resp"},
		Notes:   "lower-left dominates; Proposed should sit on or near the Pareto front",
	}
	for _, r := range results {
		f.Rows = append(f.Rows, []string{r.Policy, f4(nv[r.Policy]), f4(nr[r.Policy])})
	}
	return f
}

// Summary renders a one-line-per-policy overview used by the CLI.
func Summary(results []*sim.Result) string {
	headers := []string{"method", "cost (EUR)", "energy (GJ)", "worst resp (s)", "mean resp (s)", "migrations", "mean servers", "grid (kWh)", "PV used (kWh)"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Policy,
			f2(float64(r.OpCost)),
			f4(r.TotalEnergy.GJ()),
			f2(r.RespSummary.Max()),
			f2(r.RespSummary.Mean()),
			fmt.Sprintf("%d", r.Migrations),
			f2(r.MeanActiveServers),
			f2(r.GridEnergy.KWh()),
			f2(r.RenewableUsed.KWh()),
		})
	}
	return Table(headers, rows)
}

// All regenerates every figure from a full set of results plus the fleet's
// Table I.
func All(fleet dc.Fleet, results []*sim.Result) []*Figure {
	return []*Figure{
		Table1(fleet),
		Fig1(results),
		Fig2(results),
		Fig3(results),
		Fig4(results),
		Fig5(results),
		Fig6(results),
	}
}

// Aggregate summarizes repeated runs (one result set per seed) into
// mean +/- population standard deviation per policy and metric — the
// multi-seed robustness view a single-seed comparison lacks.
func Aggregate(runs [][]*sim.Result) *Figure {
	f := &Figure{
		ID:      "aggregate",
		Title:   fmt.Sprintf("Multi-seed aggregate over %d runs", len(runs)),
		Headers: []string{"method", "cost mean (EUR)", "cost std", "energy mean (GJ)", "energy std", "worst resp mean (s)", "worst resp std"},
	}
	if len(runs) == 0 {
		return f
	}
	order := make([]string, 0, len(runs[0]))
	cost := map[string]*metrics.Summary{}
	energy := map[string]*metrics.Summary{}
	resp := map[string]*metrics.Summary{}
	for _, results := range runs {
		for _, r := range results {
			if cost[r.Policy] == nil {
				order = append(order, r.Policy)
				cost[r.Policy] = &metrics.Summary{}
				energy[r.Policy] = &metrics.Summary{}
				resp[r.Policy] = &metrics.Summary{}
			}
			cost[r.Policy].Add(float64(r.OpCost))
			energy[r.Policy].Add(r.TotalEnergy.GJ())
			resp[r.Policy].Add(r.RespSummary.Max())
		}
	}
	for _, name := range order {
		f.Rows = append(f.Rows, []string{
			name,
			f2(cost[name].Mean()), f2(cost[name].Std()),
			f4(energy[name].Mean()), f4(energy[name].Std()),
			f2(resp[name].Mean()), f2(resp[name].Std()),
		})
	}
	return f
}
