package report

import (
	"geovmp/internal/metrics"
	"geovmp/internal/sim"
	"geovmp/internal/viz"
)

// SaveSVGs writes browser-viewable SVG renderings of Figures 1, 2, 3, 5 and
// 6 under dir (fig1.svg etc.). Fig. 4 and Table I are tabular and stay
// text/CSV only.
func SaveSVGs(dir string, results []*sim.Result) error {
	// Fig. 1: normalized operational cost bars.
	costs := map[string]float64{}
	for _, r := range results {
		costs[r.Policy] = float64(r.OpCost)
	}
	norm := metrics.NormalizeByWorst(costs)
	var labels []string
	var values []float64
	for _, r := range results {
		labels = append(labels, r.Policy)
		values = append(values, norm[r.Policy])
	}
	if err := viz.Save(dir, "fig1",
		viz.BarChart("Fig. 1 — Normalized operational cost (one week)", "normalized cost", labels, values)); err != nil {
		return err
	}

	// Fig. 2: hourly energy line chart.
	series := make([]*metrics.Series, len(results))
	for i, r := range results {
		s := r.EnergySeries
		s.Name = r.Policy
		series[i] = &s
	}
	if err := viz.Save(dir, "fig2",
		viz.LineChart("Fig. 2 — Energy consumed by DCs", "slot (h)", "GJ per slot", series...)); err != nil {
		return err
	}

	// Fig. 3: response-time PDF step curves, normalized by the worst case.
	var worst float64
	for _, r := range results {
		if w := r.RespSummary.Max(); w > worst {
			worst = w
		}
	}
	if worst == 0 {
		worst = 1
	}
	const bins = 20
	var names []string
	var curves [][]float64
	for _, r := range results {
		h := metrics.NewHistogram(0, 1.0000001, bins)
		for _, v := range r.RespSamples {
			h.Add(v / worst)
		}
		_, probs := h.PDF()
		names = append(names, r.Policy)
		curves = append(curves, probs)
	}
	if err := viz.Save(dir, "fig3",
		viz.Histogram("Fig. 3 — Normalized response time distribution", "normalized response time", names, curves)); err != nil {
		return err
	}

	// Figs. 5 and 6: trade-off scatters.
	resp := map[string]float64{}
	energy := map[string]float64{}
	for _, r := range results {
		resp[r.Policy] = r.RespSummary.Max()
		energy[r.Policy] = r.TotalEnergy.GJ()
	}
	nResp := metrics.NormalizeByWorst(resp)
	nEnergy := metrics.NormalizeByWorst(energy)
	var costPts, energyPts []viz.ScatterPoint
	for _, r := range results {
		costPts = append(costPts, viz.ScatterPoint{X: norm[r.Policy], Y: nResp[r.Policy], Label: r.Policy})
		energyPts = append(energyPts, viz.ScatterPoint{X: nEnergy[r.Policy], Y: nResp[r.Policy], Label: r.Policy})
	}
	if err := viz.Save(dir, "fig5",
		viz.Scatter("Fig. 5 — Cost-performance trade-off", "normalized cost", "normalized worst response", costPts)); err != nil {
		return err
	}
	return viz.Save(dir, "fig6",
		viz.Scatter("Fig. 6 — Energy-performance trade-off", "normalized energy", "normalized worst response", energyPts))
}
