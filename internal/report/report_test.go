package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/metrics"
	"geovmp/internal/sim"
	"geovmp/internal/units"
)

// fakeResults builds a deterministic result set without running the
// simulator.
func fakeResults() []*sim.Result {
	mk := func(name string, cost, energyGJ float64, resp []float64) *sim.Result {
		r := &sim.Result{Policy: name, OpCost: units.Money(cost), TotalEnergy: units.Energy(energyGJ * 1e9)}
		for i, v := range resp {
			r.RespSamples = append(r.RespSamples, v)
			r.RespSummary.Add(v)
			r.EnergySeries.Append(float64(i), energyGJ/float64(len(resp)))
			r.CostSeries.Append(float64(i), cost/float64(len(resp)))
		}
		return r
	}
	return []*sim.Result{
		mk("Proposed", 100, 57, []float64{1, 2, 3, 2, 1}),
		mk("Ener-aware", 220, 55, []float64{0.5, 6, 1, 0.5, 0.5}),
		mk("Pri-aware", 160, 65, []float64{0.5, 5, 2, 4, 0.3}),
		mk("Net-aware", 180, 67, []float64{1.5, 2, 1.8, 2.2, 2.0}),
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xxxxxx", "1"}, {"y", "2"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator not aligned with header")
	}
	if !strings.Contains(lines[0], "long-header") {
		t.Fatal("header missing")
	}
}

func TestBarChartScaling(t *testing.T) {
	out := BarChart([]string{"a", "b"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[0])
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart([]string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a") {
		t.Fatal("label missing for zero value")
	}
}

func TestLineChart(t *testing.T) {
	var s metrics.Series
	s.Name = "test"
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i%10))
	}
	out := LineChart(&s, 40, 6)
	if !strings.Contains(out, "test") {
		t.Fatal("series name missing")
	}
	if strings.Count(out, "\n") < 7 {
		t.Fatal("chart too short")
	}
	if LineChart(&metrics.Series{}, 10, 5) != "" {
		t.Fatal("empty series should render nothing")
	}
}

func TestFig1NormalizationAndSavings(t *testing.T) {
	f := Fig1(fakeResults())
	if f.ID != "fig1" {
		t.Fatal("wrong id")
	}
	// Ener-aware is the worst (220): its normalized value must be 1.
	found := false
	for _, row := range f.Rows {
		if row[0] == "Ener-aware" {
			found = true
			if row[2] != "1.0000" {
				t.Fatalf("worst-case normalization = %s", row[2])
			}
			if row[3] != "54.5%" {
				t.Fatalf("saving vs Ener = %s, want 54.5%%", row[3])
			}
		}
		if row[0] == "Proposed" && row[3] != "-" {
			t.Fatal("proposed should not report saving vs itself")
		}
	}
	if !found {
		t.Fatal("Ener-aware row missing")
	}
	if f.Chart == "" {
		t.Fatal("no chart")
	}
}

func TestFig2TotalsAndSeries(t *testing.T) {
	f := Fig2(fakeResults())
	if len(f.Headers) != 5 {
		t.Fatalf("headers = %v", f.Headers)
	}
	if len(f.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 slots", len(f.Rows))
	}
	if !strings.Contains(f.Chart, "weekly totals") {
		t.Fatal("totals missing from chart")
	}
}

func TestFig3Distribution(t *testing.T) {
	f := Fig3(fakeResults())
	if len(f.Rows) != 20 {
		t.Fatalf("bins = %d, want 20", len(f.Rows))
	}
	// Each method's PDF must sum to ~1.
	for c := 1; c < len(f.Headers); c++ {
		var sum float64
		for _, row := range f.Rows {
			var v float64
			if _, err := fmtSscan(row[c], &v); err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("method %s PDF sums to %v", f.Headers[c], sum)
		}
	}
	if !strings.Contains(f.Chart, "worst") {
		t.Fatal("stats table missing")
	}
}

func TestFig4Improvements(t *testing.T) {
	f := Fig4(fakeResults())
	for _, row := range f.Rows {
		if row[0] == "Ener-aware" {
			// Cost saving (220-100)/220 = 54.5%; energy (55-57)/55 = -3.6%.
			if row[4] != "54.5%" {
				t.Fatalf("cost saving = %s", row[4])
			}
			if row[5] != "-3.6%" {
				t.Fatalf("energy saving = %s", row[5])
			}
			// Perf: worst 6 vs 3 -> 50%.
			if row[6] != "50.0%" {
				t.Fatalf("perf gain = %s", row[6])
			}
		}
	}
}

func TestFig5Fig6Tradeoffs(t *testing.T) {
	for _, f := range []*Figure{Fig5(fakeResults()), Fig6(fakeResults())} {
		if len(f.Rows) != 4 {
			t.Fatalf("%s rows = %d", f.ID, len(f.Rows))
		}
		for _, row := range f.Rows {
			var v float64
			if _, err := fmtSscan(row[1], &v); err != nil || v < 0 || v > 1 {
				t.Fatalf("%s: normalized value %s out of range", f.ID, row[1])
			}
		}
	}
}

func TestTable1(t *testing.T) {
	sc, err := config.Build(config.Spec{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := Table1(sc.Fleet)
	if len(f.Rows) != 3 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	if f.Rows[0][1] != "1500" || f.Rows[2][3] != "480.00" {
		t.Fatalf("Table I values wrong: %v", f.Rows)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	f := Fig1(fakeResults())
	if err := f.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "method,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestAllProducesSevenFigures(t *testing.T) {
	sc, err := config.Build(config.Spec{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	figs := All(sc.Fleet, fakeResults())
	if len(figs) != 7 {
		t.Fatalf("figures = %d, want 7", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if f.Render() == "" {
			t.Fatalf("%s renders empty", f.ID)
		}
	}
	for _, want := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		if !ids[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestSummary(t *testing.T) {
	out := Summary(fakeResults())
	if !strings.Contains(out, "Proposed") || !strings.Contains(out, "cost (EUR)") {
		t.Fatal("summary incomplete")
	}
}

// fmtSscan wraps fmt.Sscan to keep the test imports tidy.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestSaveSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := SaveSVGs(dir, fakeResults()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1", "fig2", "fig3", "fig5", "fig6"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".svg"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Fatalf("%s: not an SVG", name)
		}
	}
}

func TestAggregate(t *testing.T) {
	runA := fakeResults()
	runB := fakeResults()
	// Perturb the second run's proposed cost to create variance.
	runB[0].OpCost = 120
	f := Aggregate([][]*sim.Result{runA, runB})
	if len(f.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	if f.Rows[0][0] != "Proposed" {
		t.Fatalf("order lost: %v", f.Rows[0])
	}
	if f.Rows[0][1] != "110.00" {
		t.Fatalf("mean cost = %s, want 110.00", f.Rows[0][1])
	}
	if f.Rows[0][2] != "10.00" {
		t.Fatalf("std cost = %s, want 10.00", f.Rows[0][2])
	}
	empty := Aggregate(nil)
	if len(empty.Rows) != 0 {
		t.Fatal("empty aggregate should have no rows")
	}
}
