// Package network implements the paper's Section III: the geo-distributed
// topology, the local/global latency model (Eqs. 1-4) and the
// effective-bandwidth fragmentation loop of Algorithm 1.
//
// Each DC reaches the shared storage of its own site over a local link
// (B_L, 10 Gb/s in the paper) and every other DC over a dedicated full-mesh
// backbone link (B_bb, 100 Gb/s). Backbone links suffer a bit error rate
// (BER) redrawn per one-second transmission step from a categorical
// distribution; corrupted data is resent, which Algorithm 1 models by
// shrinking the effective bandwidth Be(t) = (1-BER(t))*B_bb and fragmenting
// the transfer into unit time steps. Propagation delay is distance over the
// speed of light in fiber.
package network

import (
	"fmt"
	"math"

	"geovmp/internal/rng"
	"geovmp/internal/units"
)

// SpeedOfLight is the signal propagation speed used for the propagation
// delay term, in meters per second. The paper says "speed of light"; we use
// the speed of light in fiber (~2/3 c), the physically meaningful constant
// for optical links.
const SpeedOfLight = 2.0e8

// BERDistribution is the categorical distribution the per-step bit error
// rate is drawn from. The paper's Table-less setup text gives
// {1e-6: 54%, 1e-5: 20%, 1e-4: 15%, 1e-3: 10%, 1e-2: 1%}.
type BERDistribution struct {
	Rates []float64 // candidate BER values
	Probs []float64 // matching probabilities (need not sum exactly to 1)
}

// PaperBER returns the distribution from the paper's experimental setup.
func PaperBER() BERDistribution {
	return BERDistribution{
		Rates: []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2},
		Probs: []float64{0.54, 0.20, 0.15, 0.10, 0.01},
	}
}

// Validate checks structural consistency.
func (d BERDistribution) Validate() error {
	if len(d.Rates) == 0 || len(d.Rates) != len(d.Probs) {
		return fmt.Errorf("network: BER distribution needs matching non-empty rates/probs")
	}
	for i, r := range d.Rates {
		if r < 0 || r >= 1 {
			return fmt.Errorf("network: BER rate %v at %d out of [0,1)", r, i)
		}
		if d.Probs[i] < 0 {
			return fmt.Errorf("network: negative probability at %d", i)
		}
	}
	return nil
}

// Draw samples a BER value using src.
func (d BERDistribution) Draw(src *rng.Source) float64 {
	return d.Rates[src.Categorical(d.Probs)]
}

// Mean returns the expected BER.
func (d BERDistribution) Mean() float64 {
	var num, den float64
	for i, r := range d.Rates {
		num += r * d.Probs[i]
		den += d.Probs[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Topology is the static description of the geo-distributed network.
type Topology struct {
	N         int               // number of DCs
	DistanceM [][]float64       // great-circle distances, meters; symmetric, zero diagonal
	LocalBW   []units.Bandwidth // per-DC local (storage) link bandwidth B_L
	// IntraBW is the aggregate intranet fabric bandwidth per DC used by
	// VM-to-VM exchanges that never leave the site. The paper gives each DC
	// 10 rooms on 10 Gb/s full-duplex intranet links, so the fabric carries
	// roughly 10x one local link; traffic leaving or entering the DC still
	// serializes on the single storage uplink B_L.
	IntraBW  []units.Bandwidth
	Backbone units.Bandwidth // full-mesh inter-DC link bandwidth B_bb
	BER      BERDistribution
}

// PaperTopology returns the paper's three-site setup: Lisbon, Zurich,
// Helsinki, 100 Gb/s full-duplex backbone, 10 Gb/s intranet links.
func PaperTopology() *Topology {
	const (
		lisZur = 1450e3 // Lisbon-Zurich great-circle, meters
		lisHel = 3360e3 // Lisbon-Helsinki
		zurHel = 1970e3 // Zurich-Helsinki
	)
	return &Topology{
		N: 3,
		DistanceM: [][]float64{
			{0, lisZur, lisHel},
			{lisZur, 0, zurHel},
			{lisHel, zurHel, 0},
		},
		LocalBW:  []units.Bandwidth{10 * units.GigabitPerSecond, 10 * units.GigabitPerSecond, 10 * units.GigabitPerSecond},
		IntraBW:  []units.Bandwidth{100 * units.GigabitPerSecond, 100 * units.GigabitPerSecond, 100 * units.GigabitPerSecond},
		Backbone: 100 * units.GigabitPerSecond,
		BER:      PaperBER(),
	}
}

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	if t.N <= 0 {
		return fmt.Errorf("network: non-positive DC count %d", t.N)
	}
	if len(t.DistanceM) != t.N || len(t.LocalBW) != t.N {
		return fmt.Errorf("network: matrix sizes disagree with N=%d", t.N)
	}
	for i := range t.DistanceM {
		if len(t.DistanceM[i]) != t.N {
			return fmt.Errorf("network: distance row %d has wrong length", i)
		}
		if t.DistanceM[i][i] != 0 {
			return fmt.Errorf("network: non-zero self distance at %d", i)
		}
		for j := range t.DistanceM[i] {
			if t.DistanceM[i][j] < 0 {
				return fmt.Errorf("network: negative distance %d->%d", i, j)
			}
			if math.Abs(t.DistanceM[i][j]-t.DistanceM[j][i]) > 1e-6 {
				return fmt.Errorf("network: asymmetric distance %d<->%d", i, j)
			}
		}
	}
	if t.Backbone <= 0 {
		return fmt.Errorf("network: non-positive backbone bandwidth")
	}
	for i, b := range t.LocalBW {
		if b <= 0 {
			return fmt.Errorf("network: non-positive local bandwidth at %d", i)
		}
	}
	if len(t.IntraBW) != 0 && len(t.IntraBW) != t.N {
		return fmt.Errorf("network: IntraBW length %d, want %d or empty", len(t.IntraBW), t.N)
	}
	for i, b := range t.IntraBW {
		if b <= 0 {
			return fmt.Errorf("network: non-positive intra bandwidth at %d", i)
		}
	}
	return t.BER.Validate()
}

// State carries the per-slot stochastic link conditions: one BER value per
// directed backbone link, redrawn every transmission step inside Algorithm 1
// around a per-slot base draw. It is owned by a single goroutine.
type State struct {
	topo *Topology
	src  *rng.Source
	// berBase[i][j] is the slot's representative BER for link i->j; the
	// per-step redraw in Algorithm 1 jitters around the distribution but the
	// base draw keeps slots distinguishable (good and bad network hours).
	berBase [][]float64
	// degrade[i][j], when set, multiplies link i->j's effective backbone
	// bandwidth — the fault schedule's partitions and degradations. Nil
	// (the healthy state) leaves the latency arithmetic untouched, so
	// fault-free runs stay bit-identical to builds without the field.
	degrade [][]float64
}

// NewState creates link state over topo driven by src.
func NewState(topo *Topology, src *rng.Source) *State {
	s := &State{topo: topo, src: src, berBase: make([][]float64, topo.N)}
	for i := range s.berBase {
		s.berBase[i] = make([]float64, topo.N)
	}
	s.Reroll()
	return s
}

// Reroll redraws every directed link's base BER; the simulator calls it once
// per slot.
func (s *State) Reroll() {
	for i := 0; i < s.topo.N; i++ {
		for j := 0; j < s.topo.N; j++ {
			if i == j {
				continue
			}
			s.berBase[i][j] = s.topo.BER.Draw(s.src)
		}
	}
}

// BER returns the current base BER of link i->j.
func (s *State) BER(i, j int) float64 { return s.berBase[i][j] }

// SetDegrade installs per-link bandwidth factors for the current slot
// (fault-schedule partitions/degradations); nil restores the healthy
// state. Factors must be positive; the matrix is read, not copied.
func (s *State) SetDegrade(f [][]float64) { s.degrade = f }

// Topology returns the static topology.
func (s *State) Topology() *Topology { return s.topo }

// LocalLatency implements Eq. 2/3's building block: the time for volume vol
// to cross DC i's local link.
func (t *Topology) LocalLatency(i int, vol units.DataSize) float64 {
	return t.LocalBW[i].TransferSeconds(vol)
}

// PropagationDelay returns Dist(i,j)/S_l, the first term of Eq. 4.
func (t *Topology) PropagationDelay(i, j int) float64 {
	return t.DistanceM[i][j] / SpeedOfLight
}

// DataLatency implements Algorithm 1: transmit vol over the backbone link
// i->j, fragmenting into one-second steps whose effective bandwidth is
// (1-BER(t))*B_bb with BER(t) redrawn per step around the slot's base value.
// It returns the total data latency L_e in seconds.
//
// For very large volumes the loop is cut over to a closed form using the
// expected effective bandwidth, preserving Algorithm 1's behaviour while
// bounding CPU time; maxSteps controls the cutover.
func (s *State) DataLatency(i, j int, vol units.DataSize) float64 {
	if vol <= 0 {
		return 0
	}
	const maxSteps = 4096
	bbb := s.topo.Backbone.BytesPerSecond()
	if s.degrade != nil {
		bbb *= s.degrade[i][j]
	}
	remaining := vol.Bytes()
	le := 0.0
	for step := 0; step < maxSteps; step++ {
		ber := s.stepBER(i, j, step)
		be := (1 - ber) * bbb // bytes transferable this one-second step
		if remaining <= be {
			le += remaining / be
			return le
		}
		remaining -= be
		le += 1
	}
	// Tail: expected-bandwidth closed form.
	be := (1 - s.berBase[i][j]) * bbb
	return le + remaining/be
}

// stepBER returns the BER used for transmission step `step` on link i->j:
// the slot's base draw most of the time, with deterministic per-step jitter
// that occasionally revisits the distribution (data corrupted in bursts).
func (s *State) stepBER(i, j, step int) float64 {
	u := rng.Noise01(uint64(i)*1000003, uint64(j)*9176, uint64(step))
	if u < 0.25 { // a quarter of the steps redraw from the distribution
		idx := int(u / 0.25 * float64(len(s.topo.BER.Rates)))
		if idx >= len(s.topo.BER.Rates) {
			idx = len(s.topo.BER.Rates) - 1
		}
		return s.topo.BER.Rates[idx]
	}
	return s.berBase[i][j]
}

// GlobalLatency implements Eq. 4 for link i->j: propagation plus data
// latency.
func (s *State) GlobalLatency(i, j int, vol units.DataSize) float64 {
	if i == j {
		return 0
	}
	return s.topo.PropagationDelay(i, j) + s.DataLatency(i, j, vol)
}

// DestLatency implements Eq. 1 for destination DC j over a volume matrix:
// vol[i][j] is the data DC i must deliver to DC j this slot. The result is
// the worst-case total latency L_t^j: the slowest source's local+global path
// plus the destination's local ingest of everything it receives (Eq. 3).
//
// One extension over the literal Eq. 3: intra-DC exchanges (the matrix
// diagonal) wait on the DC's aggregate intranet fabric (IntraBW, the
// paper's 10 rooms x 10 Gb/s), while cross-DC ingest serializes on the
// single storage uplink B_L. Concentrating every VM in one DC therefore
// stays cheap per slot (the fabric is wide) but leaves the policy exposed
// to violent worst cases whenever overflow VMs create a hot inter-DC pair —
// the fluctuation structure Fig. 3 describes.
func (s *State) DestLatency(j int, vol [][]units.DataSize) float64 {
	var maxSrc float64
	var totalIn units.DataSize
	for i := 0; i < s.topo.N; i++ {
		if i == j {
			continue
		}
		v := vol[i][j]
		if v <= 0 {
			continue
		}
		totalIn += v
		l := s.topo.LocalLatency(i, v) + s.GlobalLatency(i, j, v)
		if l > maxSrc {
			maxSrc = l
		}
	}
	lt := maxSrc + s.topo.LocalLatency(j, totalIn)
	if intra := vol[j][j]; intra > 0 {
		bw := s.topo.LocalBW[j]
		if len(s.topo.IntraBW) == s.topo.N {
			bw = s.topo.IntraBW[j]
		}
		lt += bw.TransferSeconds(intra)
	}
	return lt
}

// MigrationTime returns the wall-clock time to move a VM image of the given
// size from DC i to DC j: source local egress, backbone transfer with the
// current BER, and destination local ingest. Intra-DC "migrations" cost only
// the local hops.
func (s *State) MigrationTime(i, j int, size units.DataSize) float64 {
	if i == j {
		return 0
	}
	return s.topo.LocalLatency(i, size) + s.GlobalLatency(i, j, size) + s.topo.LocalLatency(j, size)
}
