package network

import (
	"math"
	"testing"

	"geovmp/internal/rng"
	"geovmp/internal/units"
)

func TestDestLatencyIncludesIntraDiagonal(t *testing.T) {
	s := newState(t)
	n := s.topo.N
	vol := make([][]units.DataSize, n)
	for i := range vol {
		vol[i] = make([]units.DataSize, n)
	}
	// Pure intra-DC traffic at DC 1: latency = vol / IntraBW.
	vol[1][1] = 100 * units.Gigabyte
	got := s.DestLatency(1, vol)
	want := s.topo.IntraBW[1].TransferSeconds(100 * units.Gigabyte)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("intra-only latency = %v, want %v", got, want)
	}
	// The fabric is 10x the storage uplink: the same volume crossing DCs
	// must cost (much) more.
	vol[1][1] = 0
	vol[0][1] = 100 * units.Gigabyte
	cross := s.DestLatency(1, vol)
	if cross <= want {
		t.Fatalf("cross-DC %v not above intra %v", cross, want)
	}
}

func TestDestLatencyIntraFallsBackToLocalBW(t *testing.T) {
	topo := PaperTopology()
	topo.IntraBW = nil // legacy topology without a fabric spec
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewState(topo, rng.New(1))
	vol := [][]units.DataSize{{0, 0, 0}, {0, 10 * units.Gigabyte, 0}, {0, 0, 0}}
	got := s.DestLatency(1, vol)
	want := topo.LocalBW[1].TransferSeconds(10 * units.Gigabyte)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fallback latency = %v, want %v", got, want)
	}
}

func TestValidateIntraBW(t *testing.T) {
	topo := PaperTopology()
	topo.IntraBW = topo.IntraBW[:2]
	if err := topo.Validate(); err == nil {
		t.Fatal("wrong IntraBW length accepted")
	}
	topo = PaperTopology()
	topo.IntraBW[1] = 0
	if err := topo.Validate(); err == nil {
		t.Fatal("zero intra bandwidth accepted")
	}
}

func TestMigrationTimeSymmetricDistances(t *testing.T) {
	s := newState(t)
	// Equal image both directions: only BER conditions differ, so times
	// should be within an order of magnitude.
	a := s.MigrationTime(0, 2, 4*units.Gigabyte)
	b := s.MigrationTime(2, 0, 4*units.Gigabyte)
	if a <= 0 || b <= 0 {
		t.Fatal("non-positive migration time")
	}
	if a > 10*b || b > 10*a {
		t.Fatalf("direction asymmetry implausible: %v vs %v", a, b)
	}
}

func TestStepBERWithinDistributionSupport(t *testing.T) {
	s := newState(t)
	rates := map[float64]bool{}
	for _, r := range s.topo.BER.Rates {
		rates[r] = true
	}
	for step := 0; step < 500; step++ {
		ber := s.stepBER(0, 1, step)
		if !rates[ber] {
			t.Fatalf("step BER %v outside the distribution support", ber)
		}
	}
}

func TestDataLatencyIndependentAcrossLinks(t *testing.T) {
	// Different links see different base BERs; with a volume large enough
	// the latency difference shows when the draws differ.
	s := newState(t)
	foundDiff := false
	for k := 0; k < 20 && !foundDiff; k++ {
		s.Reroll()
		if s.BER(0, 1) != s.BER(1, 2) {
			foundDiff = true
		}
	}
	if !foundDiff {
		t.Skip("all rerolls drew equal BERs (improbable)")
	}
}
