package network

import (
	"math"
	"testing"
	"testing/quick"

	"geovmp/internal/rng"
	"geovmp/internal/units"
)

func newState(t *testing.T) *State {
	t.Helper()
	topo := PaperTopology()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewState(topo, rng.New(42))
}

func TestPaperTopologyValid(t *testing.T) {
	topo := PaperTopology()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.N != 3 {
		t.Fatalf("N = %d, want 3", topo.N)
	}
	if topo.Backbone != 100*units.GigabitPerSecond {
		t.Fatalf("backbone = %v", topo.Backbone)
	}
}

func TestBERDistribution(t *testing.T) {
	d := PaperBER()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Draw(src)]++
	}
	if got := float64(counts[1e-6]) / n; math.Abs(got-0.54) > 0.01 {
		t.Fatalf("P(1e-6) = %v, want ~0.54", got)
	}
	if got := float64(counts[1e-2]) / n; math.Abs(got-0.01) > 0.005 {
		t.Fatalf("P(1e-2) = %v, want ~0.01", got)
	}
	if m := d.Mean(); m <= 0 || m > 1e-3 {
		t.Fatalf("mean BER = %v implausible", m)
	}
}

func TestLocalLatency(t *testing.T) {
	topo := PaperTopology()
	// 10 GB over 10 Gb/s = 8 s.
	got := topo.LocalLatency(0, 10*units.Gigabyte)
	if math.Abs(got-8) > 1e-9 {
		t.Fatalf("local latency = %v, want 8", got)
	}
	if topo.LocalLatency(1, 0) != 0 {
		t.Fatal("zero volume should have zero local latency")
	}
}

func TestPropagationDelay(t *testing.T) {
	topo := PaperTopology()
	// Lisbon-Helsinki: 3360 km / 2e8 m/s = 16.8 ms.
	got := topo.PropagationDelay(0, 2)
	if math.Abs(got-0.0168) > 1e-6 {
		t.Fatalf("propagation = %v, want 0.0168", got)
	}
	if topo.PropagationDelay(1, 1) != 0 {
		t.Fatal("self propagation should be 0")
	}
}

func TestDataLatencySmallVolume(t *testing.T) {
	s := newState(t)
	// 1 MB over ~100 Gb/s: well under one second.
	got := s.DataLatency(0, 1, units.Megabyte)
	if got <= 0 || got > 0.01 {
		t.Fatalf("1 MB data latency = %v, want ~1e-4", got)
	}
}

func TestDataLatencyZeroVolume(t *testing.T) {
	s := newState(t)
	if got := s.DataLatency(0, 1, 0); got != 0 {
		t.Fatalf("zero volume latency = %v", got)
	}
}

func TestDataLatencyLargeVolumeFragmented(t *testing.T) {
	s := newState(t)
	// 100 GB over 100 Gb/s needs ~8 s of unit steps.
	got := s.DataLatency(0, 1, 100*units.Gigabyte)
	if got < 7.9 || got > 12 {
		t.Fatalf("100 GB latency = %v, want ~8s (+BER overhead)", got)
	}
}

func TestDataLatencyMonotoneInVolume(t *testing.T) {
	s := newState(t)
	f := func(a, b float64) bool {
		va := units.DataSize(math.Abs(math.Mod(a, 1e11)))
		vb := units.DataSize(math.Abs(math.Mod(b, 1e11)))
		if va > vb {
			va, vb = vb, va
		}
		return s.DataLatency(0, 2, va) <= s.DataLatency(0, 2, vb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDataLatencyVeryLargeVolumeFinite(t *testing.T) {
	s := newState(t)
	got := s.DataLatency(0, 1, 10*units.Terabyte)
	want := 10e12 / (100e9 / 8) // ~800 s ignoring BER
	if got < want || got > want*1.2 {
		t.Fatalf("10 TB latency = %v, want ~%v", got, want)
	}
}

func TestGlobalLatencyIncludesPropagation(t *testing.T) {
	s := newState(t)
	tiny := s.GlobalLatency(0, 2, 1) // one byte: essentially pure propagation
	if tiny < s.topo.PropagationDelay(0, 2) {
		t.Fatalf("global latency %v below propagation floor", tiny)
	}
	if s.GlobalLatency(1, 1, units.Gigabyte) != 0 {
		t.Fatal("self link should be free")
	}
}

func TestDestLatencyEq1(t *testing.T) {
	s := newState(t)
	n := s.topo.N
	vol := make([][]units.DataSize, n)
	for i := range vol {
		vol[i] = make([]units.DataSize, n)
	}
	vol[0][2] = 10 * units.Gigabyte
	vol[1][2] = 1 * units.Gigabyte
	lt := s.DestLatency(2, vol)

	// Recompute by hand: max over sources of (local + global) + dest local.
	src0 := s.topo.LocalLatency(0, vol[0][2]) + s.GlobalLatency(0, 2, vol[0][2])
	src1 := s.topo.LocalLatency(1, vol[1][2]) + s.GlobalLatency(1, 2, vol[1][2])
	worst := math.Max(src0, src1)
	dest := s.topo.LocalLatency(2, vol[0][2]+vol[1][2])
	want := worst + dest
	if math.Abs(lt-want) > 1e-9 {
		t.Fatalf("DestLatency = %v, want %v", lt, want)
	}
	if src0 <= src1 {
		t.Fatal("test setup: source 0 should dominate")
	}
}

func TestDestLatencyNoTraffic(t *testing.T) {
	s := newState(t)
	vol := [][]units.DataSize{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	if got := s.DestLatency(1, vol); got != 0 {
		t.Fatalf("idle destination latency = %v", got)
	}
}

func TestMigrationTime(t *testing.T) {
	s := newState(t)
	// 4 GB VM image Lisbon -> Zurich: two local hops at 10 Gb/s (3.2 s each)
	// plus backbone (~0.32 s) plus propagation.
	got := s.MigrationTime(0, 1, 4*units.Gigabyte)
	if got < 6.7 || got > 9 {
		t.Fatalf("migration time = %v, want ~6.7-7.2 s", got)
	}
	if s.MigrationTime(2, 2, 4*units.Gigabyte) != 0 {
		t.Fatal("intra-DC migration should be free in the network model")
	}
}

func TestRerollChangesConditions(t *testing.T) {
	s := newState(t)
	seen := map[float64]bool{}
	for k := 0; k < 50; k++ {
		seen[s.BER(0, 1)] = true
		s.Reroll()
	}
	if len(seen) < 2 {
		t.Fatal("reroll never changed the BER draw in 50 slots")
	}
}

func TestHigherBERSlowsTransfer(t *testing.T) {
	topo := PaperTopology()
	// Force all-good vs all-bad distributions.
	good := *topo
	good.BER = BERDistribution{Rates: []float64{1e-6}, Probs: []float64{1}}
	bad := *topo
	bad.BER = BERDistribution{Rates: []float64{0.5}, Probs: []float64{1}}
	sg := NewState(&good, rng.New(1))
	sb := NewState(&bad, rng.New(1))
	vol := 50 * units.Gigabyte
	lg := sg.DataLatency(0, 1, vol)
	lb := sb.DataLatency(0, 1, vol)
	if lb <= lg {
		t.Fatalf("bad link %v not slower than good link %v", lb, lg)
	}
}

func TestValidateCatchesBadTopologies(t *testing.T) {
	base := PaperTopology()
	tests := []struct {
		name   string
		mutate func(*Topology)
	}{
		{"zero N", func(tp *Topology) { tp.N = 0 }},
		{"self distance", func(tp *Topology) { tp.DistanceM[1][1] = 5 }},
		{"asymmetric", func(tp *Topology) { tp.DistanceM[0][1] = 1; tp.DistanceM[1][0] = 2 }},
		{"negative distance", func(tp *Topology) { tp.DistanceM[0][1] = -1; tp.DistanceM[1][0] = -1 }},
		{"zero backbone", func(tp *Topology) { tp.Backbone = 0 }},
		{"zero local", func(tp *Topology) { tp.LocalBW[0] = 0 }},
		{"bad BER", func(tp *Topology) { tp.BER.Rates = nil }},
	}
	for _, tt := range tests {
		topo := PaperTopology()
		_ = base
		tt.mutate(topo)
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
		}
	}
}

func TestDataLatencyDeterministic(t *testing.T) {
	a := NewState(PaperTopology(), rng.New(9)).DataLatency(0, 1, 20*units.Gigabyte)
	b := NewState(PaperTopology(), rng.New(9)).DataLatency(0, 1, 20*units.Gigabyte)
	if a != b {
		t.Fatal("data latency not deterministic for equal seeds")
	}
}
