package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBoardCountersAndGauges(t *testing.T) {
	b := NewBoard()
	c := b.Counter("placements")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if b.Counter("placements") != c {
		t.Fatal("counter not interned by name")
	}
	g := b.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}

	snap := b.Snapshot()
	if snap.Counters["placements"] != 5 || snap.Gauges["depth"] != 4 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	b := NewBoard()
	h := b.Hist("lat")
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNS != int64(100*time.Millisecond) {
		t.Fatalf("max = %d", s.MaxNS)
	}
	// Power-of-two buckets: estimates are within 2x of the true value.
	if s.P50NS < 0.5e6 || s.P50NS > 2e6 {
		t.Fatalf("p50 = %v ns", s.P50NS)
	}
	if s.P99NS < 50e6 || s.P99NS > float64(s.MaxNS) {
		t.Fatalf("p99 = %v ns", s.P99NS)
	}
	if s.P50NS > s.P90NS || s.P90NS > s.P99NS {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.MeanNS < 1e6 || s.MeanNS > 100e6 {
		t.Fatalf("mean = %v ns", s.MeanNS)
	}
}

func TestHistZeroAndEmpty(t *testing.T) {
	var h LatencyHist
	if s := h.Snapshot(); s.Count != 0 || s.P99NS != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	h.Observe(0)
	if s := h.Snapshot(); s.Count != 1 || s.P50NS != 0 {
		t.Fatalf("zero-duration snapshot: %+v", s)
	}
}

func TestBoardTextDeterministic(t *testing.T) {
	b := NewBoard()
	b.Counter("zeta").Inc()
	b.Counter("alpha").Add(2)
	b.Gauge("mid").Set(1)
	b.Hist("lat").Observe(time.Millisecond)
	text := b.Snapshot().Text()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end with newline")
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("lines not sorted: %q >= %q", lines[i-1], lines[i])
		}
	}
	for _, want := range []string{"alpha 2", "zeta 1", "mid 1", "lat_count 1", "lat_p99_ms"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestBoardConcurrentUse(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Counter("c").Inc()
				b.Gauge("g").Add(1)
				b.Hist("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := b.Snapshot()
	if snap.Counters["c"] != 8000 || snap.Gauges["g"] != 8000 {
		t.Fatalf("lost updates: %+v", snap)
	}
	if snap.Hists["h"].Count != 8000 {
		t.Fatalf("hist count = %d", snap.Hists["h"].Count)
	}
}
