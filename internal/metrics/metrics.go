// Package metrics provides the statistical containers the simulator fills
// and the report layer reads: streaming summaries, fixed-bin histograms
// (Fig. 3 is a probability density of normalized response time) and named
// time series (Fig. 2 is an hourly energy series).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/variance/min/max via Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance (0 when fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Histogram is a fixed-range, fixed-bin-count histogram. Out-of-range
// samples clamp into the edge bins so no observation is lost.
type Histogram struct {
	lo, hi float64
	bins   []int
	total  int
	raw    []float64 // retained for exact quantiles
}

// NewHistogram creates a histogram over [lo, hi) with n bins. It panics on
// degenerate arguments; callers control both.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: degenerate histogram")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.total++
	h.raw = append(h.raw, x)
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// PDF returns the per-bin probability mass (sums to 1 when non-empty) and
// the bin centers.
func (h *Histogram) PDF() (centers, probs []float64) {
	centers = make([]float64, len(h.bins))
	probs = make([]float64, len(h.bins))
	w := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		centers[i] = h.lo + (float64(i)+0.5)*w
		if h.total > 0 {
			probs[i] = float64(c) / float64(h.total)
		}
	}
	return centers, probs
}

// Quantile returns the exact q-quantile (0<=q<=1) of the recorded samples,
// or 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.raw) == 0 {
		return 0
	}
	s := append([]float64(nil), h.raw...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the mean of the recorded samples.
func (h *Histogram) Mean() float64 {
	if len(h.raw) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.raw {
		sum += v
	}
	return sum / float64(len(h.raw))
}

// Std returns the population standard deviation of the recorded samples.
func (h *Histogram) Std() float64 {
	if len(h.raw) < 2 {
		return 0
	}
	m := h.Mean()
	var sq float64
	for _, v := range h.raw {
		sq += (v - m) * (v - m)
	}
	return math.Sqrt(sq / float64(len(h.raw)))
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() float64 {
	var m float64
	for i, v := range h.raw {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Series is a named sequence of (x, y) points, e.g. hourly energy.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Y) }

// SumY returns the sum of all y values.
func (s *Series) SumY() float64 {
	var t float64
	for _, v := range s.Y {
		t += v
	}
	return t
}

// MaxY returns the largest y value (0 when empty).
func (s *Series) MaxY() float64 {
	var m float64
	for i, v := range s.Y {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// MeanY returns the mean y value (0 when empty).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.SumY() / float64(len(s.Y))
}

// Downsample returns a new series with every group of k consecutive points
// averaged (tail partial group included). k<=1 returns a copy.
func (s *Series) Downsample(k int) *Series {
	if k <= 1 {
		return &Series{Name: s.Name, X: append([]float64(nil), s.X...), Y: append([]float64(nil), s.Y...)}
	}
	out := &Series{Name: s.Name}
	for i := 0; i < s.Len(); i += k {
		end := i + k
		if end > s.Len() {
			end = s.Len()
		}
		var sx, sy float64
		for j := i; j < end; j++ {
			sx += s.X[j]
			sy += s.Y[j]
		}
		n := float64(end - i)
		out.Append(sx/n, sy/n)
	}
	return out
}

// NormalizeByWorst divides every value by the maximum across the map,
// returning a new map; the paper normalizes Figs. 1 and 3 "by the worst-case
// value among the mentioned methods". An all-zero input returns zeros.
func NormalizeByWorst(vals map[string]float64) map[string]float64 {
	var worst float64
	for _, v := range vals {
		if v > worst {
			worst = v
		}
	}
	out := make(map[string]float64, len(vals))
	for k, v := range vals {
		if worst > 0 {
			out[k] = v / worst
		} else {
			out[k] = 0
		}
	}
	return out
}

// Improvement returns the relative improvement of ours vs theirs, positive
// when ours is lower (cost-like metrics): (theirs-ours)/theirs.
func Improvement(ours, theirs float64) float64 {
	if theirs == 0 {
		return 0
	}
	return (theirs - ours) / theirs
}
