package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Board is a concurrency-safe registry of named counters, gauges and
// latency histograms — the operational instrument set of the serving
// daemon (placements, rejections, queue depth, decision latency), snapshot
// at any moment and rendered as a text exposition at /metrics. Unlike the
// batch containers above, every instrument is lock-free on the hot path:
// recording a placement decision costs a handful of atomic adds.
type Board struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*LatencyHist
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*LatencyHist),
	}
}

// Counter returns the named counter, creating it on first use.
func (b *Board) Counter(name string) *Counter {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.counters[name]
	if c == nil {
		c = &Counter{}
		b.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (b *Board) Gauge(name string) *Gauge {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gauges[name]
	if g == nil {
		g = &Gauge{}
		b.gauges[name] = g
	}
	return g
}

// Hist returns the named latency histogram, creating it on first use.
func (b *Board) Hist(name string) *LatencyHist {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hists[name]
	if h == nil {
		h = &LatencyHist{}
		b.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic level (e.g. queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc raises the level by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyHist accumulates durations into power-of-two nanosecond buckets
// (bucket b holds [2^(b-1), 2^b) ns), giving lock-free recording and
// quantile estimates with at worst a 2x bucket resolution — ample for SLO
// accounting, where the question is "is p99 under 20ms", not its fifth
// digit. Exact count, sum and max ride alongside.
type LatencyHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [64]atomic.Int64
}

// Observe records one duration.
func (h *LatencyHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		m := h.maxNS.Load()
		if ns <= m || h.maxNS.CompareAndSwap(m, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// HistSnapshot is a point-in-time view of a LatencyHist.
type HistSnapshot struct {
	Count               int64
	MeanNS              float64
	P50NS, P90NS, P99NS float64
	MaxNS               int64
}

// Quantile returns the estimated q-quantile in nanoseconds.
func (s bucketCounts) quantile(q float64, total, maxNS int64) float64 {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range s {
		cum += c
		if cum >= target {
			// Geometric midpoint of [2^(b-1), 2^b); bucket 0 holds only 0ns.
			if b == 0 {
				return 0
			}
			est := float64(uint64(1)<<uint(b)) * 0.75
			if est > float64(maxNS) {
				est = float64(maxNS)
			}
			return est
		}
	}
	return float64(maxNS)
}

type bucketCounts []int64

// Snapshot returns a consistent-enough view for reporting (buckets are read
// without a global lock; concurrent observations may straddle the read,
// which shifts a tail estimate by at most those in-flight samples).
func (h *LatencyHist) Snapshot() HistSnapshot {
	counts := make(bucketCounts, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	s := HistSnapshot{Count: total, MaxNS: h.maxNS.Load()}
	if total > 0 {
		s.MeanNS = float64(h.sumNS.Load()) / float64(total)
		s.P50NS = counts.quantile(0.50, total, s.MaxNS)
		s.P90NS = counts.quantile(0.90, total, s.MaxNS)
		s.P99NS = counts.quantile(0.99, total, s.MaxNS)
	}
	return s
}

// BoardSnapshot is a point-in-time view of every instrument on a Board.
type BoardSnapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot captures every instrument.
func (b *Board) Snapshot() BoardSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BoardSnapshot{
		Counters: make(map[string]int64, len(b.counters)),
		Gauges:   make(map[string]int64, len(b.gauges)),
		Hists:    make(map[string]HistSnapshot, len(b.hists)),
	}
	for name, c := range b.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range b.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range b.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// Text renders the snapshot in a Prometheus-style exposition: one
// `name value` line per instrument, histograms expanded into _count, _mean,
// _p50/_p90/_p99 and _max milliseconds. Lines are sorted by name, so the
// output is deterministic for a given snapshot.
func (s BoardSnapshot) Text() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	ms := func(ns float64) float64 { return ns / 1e6 }
	for name, h := range s.Hists {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_mean_ms %.6f", name, ms(h.MeanNS)),
			fmt.Sprintf("%s_p50_ms %.6f", name, ms(h.P50NS)),
			fmt.Sprintf("%s_p90_ms %.6f", name, ms(h.P90NS)),
			fmt.Sprintf("%s_p99_ms %.6f", name, ms(h.P99NS)),
			fmt.Sprintf("%s_max_ms %.6f", name, ms(float64(h.MaxNS))),
		)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
