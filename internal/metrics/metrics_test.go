package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Std() != 2 {
		t.Fatalf("std = %v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				clean = append(clean, v)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, v := range clean {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(clean))
		var sq float64
		for _, v := range clean {
			sq += (v - mean) * (v - mean)
		}
		naiveVar := sq / float64(len(clean))
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Var()-naiveVar) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPDFSumsToOne(t *testing.T) {
	h := NewHistogram(0, 1, 20)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%100) / 100)
	}
	_, probs := h.PDF()
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PDF sums to %v", sum)
	}
	if h.Total() != 1000 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(-5)
	h.Add(99)
	if h.Total() != 2 {
		t.Fatalf("clamped samples lost: total=%d", h.Total())
	}
	_, probs := h.PDF()
	if probs[0] != 0.5 || probs[9] != 0.5 {
		t.Fatalf("edge bins = %v, %v", probs[0], probs[9])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	med := h.Quantile(0.5)
	if med < 50 || med > 51 {
		t.Fatalf("median = %v", med)
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Std() != 2 {
		t.Fatalf("std = %v", h.Std())
	}
	if h.Max() != 9 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should return zeros")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on hi<=lo")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "energy"
	for i := 0; i < 6; i++ {
		s.Append(float64(i), float64(i*2))
	}
	if s.Len() != 6 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.SumY() != 30 {
		t.Fatalf("sum = %v", s.SumY())
	}
	if s.MaxY() != 10 {
		t.Fatalf("max = %v", s.MaxY())
	}
	if s.MeanY() != 5 {
		t.Fatalf("mean = %v", s.MeanY())
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Downsample(2)
	if d.Len() != 3 {
		t.Fatalf("downsampled len = %d, want 3", d.Len())
	}
	if d.Y[0] != 0.5 || d.Y[1] != 2.5 || d.Y[2] != 4 {
		t.Fatalf("downsampled Y = %v", d.Y)
	}
	c := s.Downsample(1)
	if c.Len() != s.Len() {
		t.Fatal("k=1 should copy")
	}
}

func TestNormalizeByWorst(t *testing.T) {
	in := map[string]float64{"a": 50, "b": 100, "c": 25}
	out := NormalizeByWorst(in)
	if out["b"] != 1 || out["a"] != 0.5 || out["c"] != 0.25 {
		t.Fatalf("normalized = %v", out)
	}
}

func TestNormalizeByWorstAllZero(t *testing.T) {
	out := NormalizeByWorst(map[string]float64{"a": 0, "b": 0})
	if out["a"] != 0 || out["b"] != 0 {
		t.Fatalf("zero input normalized = %v", out)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(45, 100); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("improvement = %v, want 0.55", got)
	}
	if got := Improvement(100, 100); got != 0 {
		t.Fatalf("no-op improvement = %v", got)
	}
	if got := Improvement(110, 100); math.Abs(got+0.1) > 1e-12 {
		t.Fatalf("regression = %v, want -0.1", got)
	}
	if Improvement(5, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		vals := map[string]float64{
			"a": math.Abs(math.Mod(a, 1000)),
			"b": math.Abs(math.Mod(b, 1000)),
			"c": math.Abs(math.Mod(c, 1000)),
		}
		out := NormalizeByWorst(vals)
		for _, v := range out {
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
