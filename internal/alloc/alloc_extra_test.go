package alloc

import (
	"testing"

	"geovmp/internal/correlation"
	"geovmp/internal/power"
)

func TestShortProfilesHandled(t *testing.T) {
	// A profile shorter than the set's sample count must not panic and
	// must still be packed.
	m := power.E5410()
	ps := correlation.NewProfileSet(8)
	ps.Add(0, []float64{3, 3})          // short
	ps.Add(1, []float64{2, 2, 2, 2, 2}) // short, different length
	res := CorrelationAware([]int{0, 1}, ps, m, 4)
	placed := 0
	for _, srv := range res.Servers {
		placed += len(srv.VMs)
	}
	if placed != 2 {
		t.Fatalf("placed %d of 2 with short profiles", placed)
	}
}

func TestSingleVMMinimalFrequency(t *testing.T) {
	m := power.E5410()
	ps := correlation.NewProfileSet(4)
	ps.Add(0, []float64{0.1, 0.1, 0.1, 0.1})
	res := CorrelationAware([]int{0}, ps, m, 4)
	if res.Servers[0].Level != 0 {
		t.Fatalf("tiny VM should run at the lowest level, got %d", res.Servers[0].Level)
	}
}

func TestPackingOrderIsPeakDescending(t *testing.T) {
	// The first opened server must host the largest-peak VM (FFD order).
	m := power.E5410()
	ps := correlation.NewProfileSet(2)
	ps.Add(0, []float64{1, 1})
	ps.Add(1, []float64{7, 7})
	ps.Add(2, []float64{3, 3})
	res := PlainFFD([]int{0, 1, 2}, ps, m, 10)
	if res.Servers[0].VMs[0] != 1 {
		t.Fatalf("first placement = %d, want the 7-core VM", res.Servers[0].VMs[0])
	}
}

func TestCorrAwareDVFSUsesCombinedPeak(t *testing.T) {
	// Two anti-correlated 4-core VMs: combined peak 5 < 2.0 GHz capacity
	// (6.96), so one server at the LOW level suffices — stationary sizing
	// would have demanded the high level (sum of peaks 8).
	m := power.E5410()
	ps := correlation.NewProfileSet(4)
	ps.Add(0, []float64{4, 1, 4, 1})
	ps.Add(1, []float64{1, 4, 1, 4})
	res := CorrelationAware([]int{0, 1}, ps, m, 4)
	if res.Active != 1 {
		t.Fatalf("servers = %d, want 1", res.Active)
	}
	if res.Servers[0].Level != 0 {
		t.Fatalf("level = %d, want 0 (combined peak 5 fits 2.0 GHz)", res.Servers[0].Level)
	}
}

func TestOverflowPrefersLeastLoadedServer(t *testing.T) {
	m := power.E5410()
	ps := correlation.NewProfileSet(2)
	ps.Add(0, []float64{7, 7})
	ps.Add(1, []float64{3, 3}) // FFD order: 0 (7), 2 (6), then 1 (3) overflows
	ps.Add(2, []float64{6, 6})
	res := PlainFFD([]int{0, 1, 2}, ps, m, 2)
	if res.Overflowed != 1 {
		t.Fatalf("overflowed = %d, want 1", res.Overflowed)
	}
	// The overflow VM must land on the less-peaked server (the one with
	// the 6-core VM), not the fullest.
	for _, srv := range res.Servers {
		for _, id := range srv.VMs {
			if id == 1 {
				for _, other := range srv.VMs {
					if other == 0 {
						t.Fatal("overflow landed on the fullest server")
					}
				}
			}
		}
	}
}

func TestZeroServerBudgetStillPlaces(t *testing.T) {
	m := power.E5410()
	ps := correlation.NewProfileSet(2)
	ps.Add(0, []float64{1, 1})
	res := CorrelationAware([]int{0}, ps, m, 0)
	placed := 0
	for _, srv := range res.Servers {
		placed += len(srv.VMs)
	}
	if placed != 1 {
		t.Fatal("VM dropped under zero server budget")
	}
	if res.Overflowed != 1 {
		t.Fatalf("overflow not flagged: %d", res.Overflowed)
	}
}
