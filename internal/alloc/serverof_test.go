package alloc

import (
	"testing"

	"geovmp/internal/correlation"
	"geovmp/internal/power"
)

// ServerOf's dense-slice contract: the slice spans exactly [0, max placed
// id], unplaced slots read -1 (never 0, the old map's zero-value trap), and
// every placed id resolves to the server hosting it.

func TestServerOfEmptyResult(t *testing.T) {
	var r Result
	if got := r.ServerOf(); len(got) != 0 {
		t.Fatalf("empty allocation produced lookup of length %d", len(got))
	}
}

func TestServerOfDenseInvariants(t *testing.T) {
	r := Result{Servers: []ServerAlloc{
		{VMs: []int{5}},
		{VMs: []int{2, 9}},
	}}
	got := r.ServerOf()
	if len(got) != 10 {
		t.Fatalf("lookup length %d, want 10 (max placed id 9 + 1)", len(got))
	}
	want := map[int]int{5: 0, 2: 1, 9: 1}
	for id, srv := range got {
		if w, ok := want[id]; ok {
			if srv != w {
				t.Errorf("ServerOf()[%d] = %d, want %d", id, srv, w)
			}
		} else if srv != -1 {
			t.Errorf("unplaced id %d reads %d, want -1", id, srv)
		}
	}
}

func TestServerOfMatchesPacking(t *testing.T) {
	// A real correlation-aware pack: the lookup must agree with the server
	// membership lists exactly, for every placed id.
	ps := correlation.NewProfileSet(4)
	ids := []int{0, 2, 3, 7, 8, 11}
	for k, id := range ids {
		prof := make([]float64, 4)
		for i := range prof {
			prof[i] = 0.2 + 0.1*float64((k+i)%4)
		}
		ps.Add(id, prof)
	}
	r := CorrelationAware(ids, ps, power.E5410(), 3)
	got := r.ServerOf()
	placed := 0
	for s, srv := range r.Servers {
		for _, id := range srv.VMs {
			placed++
			if id >= len(got) {
				t.Fatalf("placed id %d beyond lookup length %d", id, len(got))
			}
			if got[id] != s {
				t.Fatalf("ServerOf()[%d] = %d, but server %d hosts it", id, got[id], s)
			}
		}
	}
	if placed != len(ids) {
		t.Fatalf("pack placed %d of %d ids", placed, len(ids))
	}
	holes := 0
	for _, srv := range got {
		if srv == -1 {
			holes++
		}
	}
	if holes != len(got)-placed {
		t.Fatalf("lookup has %d holes, want %d", holes, len(got)-placed)
	}
}
