package alloc

import (
	"testing"

	"geovmp/internal/correlation"
	"geovmp/internal/power"
	"geovmp/internal/rng"
)

// buildPS registers n VMs with the given profiles.
func buildPS(profiles map[int][]float64) *correlation.ProfileSet {
	samples := 0
	for _, p := range profiles {
		samples = len(p)
		break
	}
	ps := correlation.NewProfileSet(samples)
	ids := make([]int, 0, len(profiles))
	for id := range profiles {
		ids = append(ids, id)
	}
	// Insert deterministically.
	for id := 0; id <= maxID(ids); id++ {
		if p, ok := profiles[id]; ok {
			ps.Add(id, p)
		}
	}
	return ps
}

func maxID(ids []int) int {
	m := 0
	for _, id := range ids {
		if id > m {
			m = id
		}
	}
	return m
}

func idsOf(profiles map[int][]float64) []int {
	var ids []int
	for id := 0; id <= maxID(keys(profiles)); id++ {
		if _, ok := profiles[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

func keys(m map[int][]float64) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestAntiCorrelatedVMsShareServer(t *testing.T) {
	// Four VMs alternating peaks of 6 cores: stationary sizing needs one
	// server each (sum of peaks 12 > 8 per pair), but anti-correlated pairs
	// combine to a peak of 7 and fit pairwise.
	m := power.E5410()
	profiles := map[int][]float64{
		0: {6, 1, 6, 1},
		1: {1, 6, 1, 6},
		2: {6, 1, 6, 1},
		3: {1, 6, 1, 6},
	}
	ps := buildPS(profiles)
	ids := idsOf(profiles)

	corr := CorrelationAware(ids, ps, m, 10)
	plain := PlainFFD(ids, ps, m, 10)
	if corr.Active != 2 {
		t.Fatalf("correlation-aware used %d servers, want 2", corr.Active)
	}
	if plain.Active != 4 {
		t.Fatalf("plain FFD used %d servers, want 4", plain.Active)
	}
	// Each correlation-aware server must host one VM of each phase.
	for _, srv := range corr.Servers {
		if len(srv.VMs) != 2 {
			t.Fatalf("server VM count %d, want 2", len(srv.VMs))
		}
		phase := map[int]int{0: 0, 1: 1, 2: 0, 3: 1}
		if phase[srv.VMs[0]] == phase[srv.VMs[1]] {
			t.Fatalf("correlated VMs %v packed together", srv.VMs)
		}
	}
}

func TestCorrelatedVMsSeparated(t *testing.T) {
	// Two fully correlated 5-core VMs cannot share an 8-core server.
	m := power.E5410()
	profiles := map[int][]float64{
		0: {5, 5, 5, 5},
		1: {5, 5, 5, 5},
	}
	res := CorrelationAware(idsOf(profiles), buildPS(profiles), m, 10)
	if res.Active != 2 {
		t.Fatalf("used %d servers, want 2", res.Active)
	}
}

func TestNeverExceedsCapacityWhenServersAvailable(t *testing.T) {
	m := power.E5410()
	src := rng.New(3)
	profiles := map[int][]float64{}
	for id := 0; id < 60; id++ {
		p := make([]float64, 8)
		for i := range p {
			p[i] = src.Range(0, 1.5)
		}
		profiles[id] = p
	}
	ps := buildPS(profiles)
	ids := idsOf(profiles)
	for _, res := range []Result{
		CorrelationAware(ids, ps, m, 1000),
		PlainFFD(ids, ps, m, 1000),
	} {
		if res.Overflowed != 0 {
			t.Fatalf("unexpected overflow with unlimited servers")
		}
		for s, srv := range res.Servers {
			if srv.Peak > m.MaxCapacity()+1e-9 {
				t.Fatalf("server %d admission peak %v exceeds capacity", s, srv.Peak)
			}
		}
	}
}

func TestAllVMsPlacedExactlyOnce(t *testing.T) {
	m := power.E5410()
	src := rng.New(7)
	profiles := map[int][]float64{}
	for id := 0; id < 80; id++ {
		p := make([]float64, 6)
		for i := range p {
			p[i] = src.Range(0.1, 2)
		}
		profiles[id] = p
	}
	ps := buildPS(profiles)
	ids := idsOf(profiles)
	res := CorrelationAware(ids, ps, m, 100)
	seen := map[int]int{}
	for _, srv := range res.Servers {
		for _, id := range srv.VMs {
			seen[id]++
		}
	}
	if len(seen) != len(ids) {
		t.Fatalf("placed %d distinct VMs, want %d", len(seen), len(ids))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("vm %d placed %d times", id, n)
		}
	}
}

func TestDVFSPicksLowestFeasibleLevel(t *testing.T) {
	m := power.E5410()
	// Peak 5 fits the 2.0 GHz capacity (6.96) -> level 0.
	low := map[int][]float64{0: {5, 5}}
	res := CorrelationAware(idsOf(low), buildPS(low), m, 10)
	if res.Servers[0].Level != 0 {
		t.Fatalf("level = %d, want 0", res.Servers[0].Level)
	}
	// Peak 7.5 needs 2.3 GHz -> level 1.
	high := map[int][]float64{0: {7.5, 7.5}}
	res = CorrelationAware(idsOf(high), buildPS(high), m, 10)
	if res.Servers[0].Level != 1 {
		t.Fatalf("level = %d, want 1", res.Servers[0].Level)
	}
}

func TestServerBudgetOverflow(t *testing.T) {
	m := power.E5410()
	profiles := map[int][]float64{}
	for id := 0; id < 6; id++ {
		profiles[id] = []float64{7, 7} // each nearly fills a server
	}
	res := CorrelationAware(idsOf(profiles), buildPS(profiles), m, 2)
	if res.Active != 2 {
		t.Fatalf("active %d, want capped at 2", res.Active)
	}
	if res.Overflowed != 4 {
		t.Fatalf("overflowed = %d, want 4", res.Overflowed)
	}
	placed := 0
	for _, srv := range res.Servers {
		placed += len(srv.VMs)
	}
	if placed != 6 {
		t.Fatalf("placed %d, want all 6 despite overflow", placed)
	}
}

func TestFewerOrEqualServersThanPlain(t *testing.T) {
	// Correlation-aware packing can never need more servers than stationary
	// FFD on the same input (its admission is strictly more permissive).
	m := power.E5410()
	src := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		profiles := map[int][]float64{}
		n := 20 + src.Intn(40)
		for id := 0; id < n; id++ {
			p := make([]float64, 12)
			base := src.Range(0.2, 3)
			phase := src.Intn(12)
			for i := range p {
				p[i] = base * 0.3
			}
			p[phase] = base
			profiles[id] = p
		}
		ps := buildPS(profiles)
		ids := idsOf(profiles)
		ca := CorrelationAware(ids, ps, m, 1000)
		pl := PlainFFD(ids, ps, m, 1000)
		if ca.Active > pl.Active {
			t.Fatalf("trial %d: corr-aware %d servers > plain %d", trial, ca.Active, pl.Active)
		}
	}
}

func TestServerOfMapping(t *testing.T) {
	m := power.E5410()
	// Id 1 is deliberately absent: the dense lookup must mark the hole -1.
	profiles := map[int][]float64{0: {5, 5}, 2: {5, 5}, 3: {1, 1}}
	res := CorrelationAware(idsOf(profiles), buildPS(profiles), m, 10)
	byVM := res.ServerOf()
	if len(byVM) != 4 {
		t.Fatalf("mapping size %d, want max id + 1 = 4", len(byVM))
	}
	if byVM[1] != -1 {
		t.Fatalf("unplaced id 1 mapped to %d, want -1", byVM[1])
	}
	for s, srv := range res.Servers {
		for _, id := range srv.VMs {
			if byVM[id] != s {
				t.Fatalf("vm %d mapped to %d, lives on %d", id, byVM[id], s)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	m := power.E5410()
	ps := correlation.NewProfileSet(4)
	res := CorrelationAware(nil, ps, m, 10)
	if res.Active != 0 || len(res.Servers) != 0 {
		t.Fatal("empty input should allocate nothing")
	}
}

func TestDeterministic(t *testing.T) {
	m := power.E5410()
	src := rng.New(13)
	profiles := map[int][]float64{}
	for id := 0; id < 50; id++ {
		p := make([]float64, 8)
		for i := range p {
			p[i] = src.Range(0, 2)
		}
		profiles[id] = p
	}
	ps := buildPS(profiles)
	ids := idsOf(profiles)
	a := CorrelationAware(ids, ps, m, 100)
	b := CorrelationAware(ids, ps, m, 100)
	if a.Active != b.Active {
		t.Fatal("active counts diverged")
	}
	for s := range a.Servers {
		if len(a.Servers[s].VMs) != len(b.Servers[s].VMs) {
			t.Fatal("allocations diverged")
		}
		for i := range a.Servers[s].VMs {
			if a.Servers[s].VMs[i] != b.Servers[s].VMs[i] {
				t.Fatal("allocations diverged")
			}
		}
	}
}
