// Package alloc implements the paper's local phase: allocating each DC
// cluster's VMs to the minimum number of servers and choosing each server's
// DVFS frequency.
//
// Two allocators are provided:
//
//   - CorrelationAware reproduces the approach of Kim et al. (DATE 2013),
//     the paper's reference [5] and the engine of both the proposed method
//     and the Ener-aware baseline. It packs VMs first-fit-decreasing by
//     peak utilization, but admission uses the *combined peak* of the
//     candidate server's aggregated profile — two anti-correlated VMs whose
//     peaks never coincide can share capacity that stationary sizing would
//     deny, and two correlated VMs are pushed to different servers because
//     their combined peak bursts through the cap. After packing, each
//     server gets the lowest frequency level whose capacity still covers
//     its combined peak (the DVFS step).
//
//   - PlainFFD is the stationary baseline used by Pri-aware and Net-aware
//     locally: admission by sum of individual peak utilizations.
//
// Both honor a finite server budget; when a DC is truly out of capacity the
// remaining VMs overflow onto the least-loaded server (tracked in
// Result.Overflowed — the simulator surfaces it as degraded performance
// rather than silently dropping load).
package alloc

import (
	"cmp"
	"slices"

	"geovmp/internal/correlation"
	"geovmp/internal/power"
)

// ServerAlloc is one active server's allocation.
type ServerAlloc struct {
	VMs       []int
	Level     int     // DVFS frequency level index
	Peak      float64 // admission peak estimate (combined or stationary)
	aggregate []float64
}

// Result is a DC's local allocation for one slot.
type Result struct {
	Servers    []ServerAlloc
	Active     int // number of servers powered on
	Overflowed int // VMs placed past nominal capacity
}

// ServerOf returns a dense VM-id-indexed server lookup: slot id holds the
// index of the server hosting that VM, or -1 for ids the allocation does
// not place. The slice spans exactly [0, max placed id] — callers probing
// arbitrary ids must bounds-check (an id at or beyond len is simply not
// placed here), unlike the former map whose misses read as 0. Ids are the
// workload's compact ids, so the dense form costs one allocation and O(1)
// unhashed reads per lookup.
func (r *Result) ServerOf() []int {
	maxID := -1
	for _, srv := range r.Servers {
		for _, id := range srv.VMs {
			if id > maxID {
				maxID = id
			}
		}
	}
	out := make([]int, maxID+1)
	for i := range out {
		out[i] = -1
	}
	for s, srv := range r.Servers {
		for _, id := range srv.VMs {
			out[id] = s
		}
	}
	return out
}

// CorrelationAware packs ids onto at most maxServers servers of the given
// model using combined-peak admission over the slot profiles in ps.
func CorrelationAware(ids []int, ps *correlation.ProfileSet, model *power.ServerModel, maxServers int) Result {
	return pack(ids, ps, model, maxServers, true)
}

// PlainFFD packs ids with stationary sum-of-peaks admission.
func PlainFFD(ids []int, ps *correlation.ProfileSet, model *power.ServerModel, maxServers int) Result {
	return pack(ids, ps, model, maxServers, false)
}

func pack(ids []int, ps *correlation.ProfileSet, model *power.ServerModel, maxServers int, corrAware bool) Result {
	capTop := model.MaxCapacity()
	samples := ps.Samples()

	// First-fit-decreasing order by individual peak; ties by id (a total
	// order, so the sort's permutation is unique and algorithm-independent).
	order := append([]int(nil), ids...)
	slices.SortFunc(order, func(a, b int) int {
		pa, pb := ps.Peak(a), ps.Peak(b)
		switch {
		case pa > pb:
			return -1
		case pa < pb:
			return 1
		}
		return cmp.Compare(a, b)
	})

	var res Result
	// The VM's profile is hoisted out of the first-fit scan: admit runs
	// once per candidate server, and re-fetching the row there dominated
	// the packing cost.
	admit := func(srv *ServerAlloc, id int, prof []float64, profLen int) (float64, bool) {
		if corrAware {
			peak := 0.0
			for t := 0; t < profLen; t++ {
				if s := srv.aggregate[t] + prof[t]; s > peak {
					peak = s
				}
			}
			return peak, peak <= capTop+1e-9
		}
		peak := srv.Peak + ps.Peak(id)
		return peak, peak <= capTop+1e-9
	}
	place := func(srv *ServerAlloc, id int, prof []float64, profLen int, peak float64) {
		srv.VMs = append(srv.VMs, id)
		srv.Peak = peak
		if corrAware {
			for t := 0; t < profLen; t++ {
				srv.aggregate[t] += prof[t]
			}
		}
	}

	for _, id := range order {
		var prof []float64
		profLen := 0
		if corrAware {
			prof = ps.Profile(id)
			profLen = len(prof)
			if profLen > samples {
				profLen = samples
			}
		}
		placed := false
		for s := range res.Servers {
			if peak, ok := admit(&res.Servers[s], id, prof, profLen); ok {
				place(&res.Servers[s], id, prof, profLen, peak)
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if len(res.Servers) < maxServers {
			srv := ServerAlloc{aggregate: make([]float64, samples)}
			peak, _ := admit(&srv, id, prof, profLen)
			place(&srv, id, prof, profLen, peak)
			res.Servers = append(res.Servers, srv)
			continue
		}
		// Out of servers: overflow onto the least-peaked server.
		best := 0
		for s := 1; s < len(res.Servers); s++ {
			if res.Servers[s].Peak < res.Servers[best].Peak {
				best = s
			}
		}
		if len(res.Servers) == 0 {
			// No server budget at all; drop silently is unacceptable, so
			// open one anyway and flag it.
			res.Servers = append(res.Servers, ServerAlloc{aggregate: make([]float64, samples)})
		}
		peak, _ := admit(&res.Servers[best], id, prof, profLen)
		place(&res.Servers[best], id, prof, profLen, peak)
		res.Overflowed++
	}

	// DVFS: lowest level covering each server's admission peak.
	for s := range res.Servers {
		lvl, _ := model.LowestLevelFor(res.Servers[s].Peak)
		res.Servers[s].Level = lvl
	}
	res.Active = len(res.Servers)
	return res
}
