package alloc

import (
	"geovmp/internal/power"
)

// Tracker is the incremental form of the correlation-aware packer: one DC's
// per-server aggregate profiles maintained across a stream of admissions and
// departures, so a serving path can answer "which server fits this VM" in
// O(probe window) work instead of repacking the DC from scratch.
//
// Admission uses the same combined-peak test as CorrelationAware — the
// candidate server's aggregate profile plus the VM's profile must peak under
// capacity — but the first-fit scan is bounded: a cursor marks the prefix of
// servers already packed tight (remaining gap below a small fraction of
// capacity), and each probe examines at most probeLimit servers past it.
// That trades a sliver of packing quality on the skipped servers for a
// per-arrival cost independent of how many servers the DC has accumulated;
// departures re-open the cursor, so space freed behind it is found again.
//
// All methods are pure functions of the call sequence: the same admissions
// and departures in the same order produce bit-identical placements at any
// concurrency of the caller's surrounding machinery.
type Tracker struct {
	capTop     float64
	samples    int
	maxServers int
	probeLimit int
	cursor     int // servers below this index are considered packed
	count      int // resident VMs
	servers    []trackedServer
}

type trackedServer struct {
	members   []int
	aggregate []float64
	peak      float64 // combined peak of the aggregate profile
}

// packedFrac: a server whose remaining gap (capacity minus aggregate peak)
// falls below this fraction of capacity is skipped by the bounded probe.
const packedFrac = 0.05

// defaultProbeLimit bounds the first-fit window when the caller passes a
// non-positive probe limit.
const defaultProbeLimit = 16

// NewTracker returns an empty tracker for a DC of maxServers servers of the
// given model, expecting profiles of the given sample count.
func NewTracker(model *power.ServerModel, maxServers, samples, probeLimit int) *Tracker {
	if probeLimit <= 0 {
		probeLimit = defaultProbeLimit
	}
	return &Tracker{
		capTop:     model.MaxCapacity(),
		samples:    samples,
		maxServers: maxServers,
		probeLimit: probeLimit,
	}
}

// Len returns the number of resident VMs.
func (t *Tracker) Len() int { return t.count }

// Servers returns the number of servers ever opened.
func (t *Tracker) Servers() int { return len(t.servers) }

// Members returns the VMs on server srv (nil for a not-yet-opened index).
// The slice is shared; callers must not modify it.
func (t *Tracker) Members(srv int) []int {
	if srv < 0 || srv >= len(t.servers) {
		return nil
	}
	return t.servers[srv].members
}

// UsedFrac returns the fleet-load proxy scoring uses: the sum of server
// admission peaks over the DC's total nominal capacity (0 when the DC has
// no servers; can exceed 1 under overflow).
func (t *Tracker) UsedFrac() float64 {
	if t.maxServers <= 0 || t.capTop <= 0 {
		return 0
	}
	var used float64
	for i := range t.servers {
		used += t.servers[i].peak
	}
	return used / (float64(t.maxServers) * t.capTop)
}

// combinedPeak returns the admission peak of adding prof to server s.
func (t *Tracker) combinedPeak(s *trackedServer, prof []float64) float64 {
	n := len(prof)
	if n > t.samples {
		n = t.samples
	}
	var peak float64
	for i := 0; i < n; i++ {
		if v := s.aggregate[i] + prof[i]; v > peak {
			peak = v
		}
	}
	if peak < s.peak {
		// A profile shorter than the aggregate cannot lower the peak.
		peak = s.peak
	}
	return peak
}

// Probe finds a server for prof: the first server in the bounded window
// whose combined peak stays under capacity, else a fresh server while the
// budget allows. It mutates nothing. srv == Servers() means "open a new
// server" — Commit performs the open. ok is false when the DC is out of
// capacity; the caller then either rejects or places via Overflow.
func (t *Tracker) Probe(prof []float64) (srv int, peak float64, ok bool) {
	end := t.cursor + t.probeLimit
	if end > len(t.servers) {
		end = len(t.servers)
	}
	for s := t.cursor; s < end; s++ {
		if p := t.combinedPeak(&t.servers[s], prof); p <= t.capTop+1e-9 {
			return s, p, true
		}
	}
	if len(t.servers) < t.maxServers {
		var peak float64
		for _, u := range prof {
			if u > peak {
				peak = u
			}
		}
		return len(t.servers), peak, true
	}
	return -1, 0, false
}

// Overflow returns the least-peaked server (ties to the lowest index), the
// same spill rule pack() uses when a DC is out of nominal capacity. With no
// servers open at all it returns 0 — dropping load silently is
// unacceptable, so Commit opens the server past budget and the caller flags
// the VM as overflowed. Callers Commit onto the returned server.
func (t *Tracker) Overflow() int {
	if len(t.servers) == 0 {
		return 0
	}
	best := 0
	for s := 1; s < len(t.servers); s++ {
		if t.servers[s].peak < t.servers[best].peak {
			best = s
		}
	}
	return best
}

// Commit places id with profile prof on server srv (opening it when srv ==
// Servers()) and advances the packed cursor past servers whose gap has
// closed.
func (t *Tracker) Commit(srv, id int, prof []float64) {
	for srv >= len(t.servers) {
		t.servers = append(t.servers, trackedServer{aggregate: make([]float64, t.samples)})
	}
	s := &t.servers[srv]
	s.members = append(s.members, id)
	n := len(prof)
	if n > t.samples {
		n = t.samples
	}
	for i := 0; i < n; i++ {
		s.aggregate[i] += prof[i]
	}
	s.peak = selfPeak(s.aggregate)
	t.count++
	for t.cursor < len(t.servers) && t.capTop-t.servers[t.cursor].peak < packedFrac*t.capTop {
		t.cursor++
	}
}

// Remove departs id from server srv, recomputing that server's aggregate
// exactly from the remaining members' current profiles (incremental
// subtraction would accumulate float drift) and re-opening the cursor if
// the freed space sits behind it. It reports whether id was found.
func (t *Tracker) Remove(srv, id int, profile func(id int) []float64) bool {
	if srv < 0 || srv >= len(t.servers) {
		return false
	}
	s := &t.servers[srv]
	found := false
	w := 0
	for _, m := range s.members {
		if m == id && !found {
			found = true
			continue
		}
		s.members[w] = m
		w++
	}
	if !found {
		return false
	}
	s.members = s.members[:w]
	t.count--
	t.rebuild(srv, profile)
	if srv < t.cursor && t.capTop-s.peak >= packedFrac*t.capTop {
		t.cursor = srv
	}
	return true
}

// rebuild recomputes one server's aggregate profile and peak from its
// members' current profiles.
func (t *Tracker) rebuild(srv int, profile func(id int) []float64) {
	s := &t.servers[srv]
	for i := range s.aggregate {
		s.aggregate[i] = 0
	}
	for _, m := range s.members {
		prof := profile(m)
		n := len(prof)
		if n > t.samples {
			n = t.samples
		}
		for i := 0; i < n; i++ {
			s.aggregate[i] += prof[i]
		}
	}
	s.peak = selfPeak(s.aggregate)
}

// RebuildAll recomputes every server's aggregate from current profiles and
// resets the packed cursor — the telemetry-refresh path, run when a new
// observation slot replaces the fleet's profiles wholesale.
func (t *Tracker) RebuildAll(profile func(id int) []float64) {
	for srv := range t.servers {
		t.rebuild(srv, profile)
	}
	t.cursor = 0
	for t.cursor < len(t.servers) && t.capTop-t.servers[t.cursor].peak < packedFrac*t.capTop {
		t.cursor++
	}
}

func selfPeak(agg []float64) float64 {
	var peak float64
	for _, v := range agg {
		if v > peak {
			peak = v
		}
	}
	return peak
}
