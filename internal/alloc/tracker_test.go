package alloc

import (
	"testing"

	"geovmp/internal/power"
)

func flat(v float64, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestTrackerProbeCommitBasics(t *testing.T) {
	m := power.E5410()
	cap0 := m.MaxCapacity()
	tr := NewTracker(m, 4, 4, 0)

	prof := flat(0.6*cap0, 4)
	srv, peak, ok := tr.Probe(prof)
	if !ok || srv != 0 {
		t.Fatalf("first probe: srv=%d ok=%v", srv, ok)
	}
	if peak != 0.6*cap0 {
		t.Fatalf("first probe peak = %v", peak)
	}
	tr.Commit(srv, 1, prof)
	if tr.Len() != 1 || tr.Servers() != 1 {
		t.Fatalf("after commit: len=%d servers=%d", tr.Len(), tr.Servers())
	}

	// A second 0.6-capacity VM cannot share the server (1.2 > capacity):
	// the probe must open server 1.
	srv, _, ok = tr.Probe(prof)
	if !ok || srv != 1 {
		t.Fatalf("second probe: srv=%d ok=%v", srv, ok)
	}
	tr.Commit(srv, 2, prof)

	// A small VM still fits on server 0.
	small := flat(0.2*cap0, 4)
	srv, _, ok = tr.Probe(small)
	if !ok || srv != 0 {
		t.Fatalf("small probe: srv=%d ok=%v", srv, ok)
	}
	tr.Commit(srv, 3, small)
	if got := tr.Members(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("server 0 members: %v", got)
	}
}

func TestTrackerCapacityExhaustionAndOverflow(t *testing.T) {
	m := power.E5410()
	cap0 := m.MaxCapacity()
	tr := NewTracker(m, 2, 4, 0)
	big := flat(0.9*cap0, 4)
	for id := 0; id < 2; id++ {
		srv, _, ok := tr.Probe(big)
		if !ok {
			t.Fatalf("probe %d refused with servers left", id)
		}
		tr.Commit(srv, id, big)
	}
	if _, _, ok := tr.Probe(big); ok {
		t.Fatal("probe succeeded on a full DC")
	}
	if spill := tr.Overflow(); spill != 0 && spill != 1 {
		t.Fatalf("overflow server = %d", spill)
	}
	// Overflow commit goes past capacity but must be tracked.
	tr.Commit(tr.Overflow(), 9, big)
	if tr.Len() != 3 {
		t.Fatalf("len after overflow commit = %d", tr.Len())
	}
	if tr.UsedFrac() <= 0.9 {
		t.Fatalf("UsedFrac after overflow = %v", tr.UsedFrac())
	}
}

func TestTrackerRemoveReopensCursor(t *testing.T) {
	m := power.E5410()
	cap0 := m.MaxCapacity()
	profiles := map[int][]float64{}
	profile := func(id int) []float64 { return profiles[id] }

	tr := NewTracker(m, 8, 4, 1)
	// Fill server 0 tight so the cursor moves past it.
	p0 := flat(0.97*cap0, 4)
	profiles[0] = p0
	srv, _, _ := tr.Probe(p0)
	tr.Commit(srv, 0, p0)
	if tr.cursor != 1 {
		t.Fatalf("cursor = %d after packing server 0", tr.cursor)
	}

	p1 := flat(0.5*cap0, 4)
	profiles[1] = p1
	srv, _, _ = tr.Probe(p1)
	if srv != 1 {
		t.Fatalf("probe behind cursor: srv=%d", srv)
	}
	tr.Commit(srv, 1, p1)

	// Departing the big VM re-opens server 0 for the next probe.
	if !tr.Remove(0, 0, profile) {
		t.Fatal("remove failed")
	}
	if tr.cursor != 0 {
		t.Fatalf("cursor = %d after freeing server 0", tr.cursor)
	}
	srv, _, ok := tr.Probe(p1)
	if !ok || srv != 0 {
		t.Fatalf("probe after remove: srv=%d ok=%v", srv, ok)
	}
	if tr.Remove(3, 99, profile) || tr.Remove(0, 99, profile) {
		t.Fatal("remove of unknown id reported success")
	}
}

func TestTrackerRebuildAllTracksNewProfiles(t *testing.T) {
	m := power.E5410()
	cap0 := m.MaxCapacity()
	profiles := map[int][]float64{
		1: flat(0.3*cap0, 4),
		2: flat(0.3*cap0, 4),
	}
	profile := func(id int) []float64 { return profiles[id] }
	tr := NewTracker(m, 4, 4, 0)
	for id := 1; id <= 2; id++ {
		srv, _, _ := tr.Probe(profiles[id])
		tr.Commit(srv, id, profiles[id])
	}
	if tr.Servers() != 1 {
		t.Fatalf("servers = %d", tr.Servers())
	}
	// Telemetry refresh: both VMs now peak much higher; the rebuilt
	// aggregate must reflect it and push the next arrival to a new server.
	profiles[1] = flat(0.6*cap0, 4)
	profiles[2] = flat(0.39*cap0, 4)
	tr.RebuildAll(profile)
	srv, _, ok := tr.Probe(flat(0.2*cap0, 4))
	if !ok || srv != 1 {
		t.Fatalf("probe after rebuild: srv=%d ok=%v", srv, ok)
	}
}
