package policy

import (
	"cmp"
	"slices"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/units"
)

// NetAware reimplements the paper's network-aware baseline [6] (Biran et
// al., CCGRID 2012) in its topology-agnostic GH (greedy heuristic) form:
// place VMs so that heavily-communicating pairs share a DC while keeping
// the load balanced across DCs — "the goal of Net-aware is to balance the
// network across DCs, which in turn leads to better worst-case and higher
// average response time".
//
// Greedy scoring: VMs are visited in descending total-traffic order; each
// scores every DC by the fraction of its traffic already mapped there,
// minus an imbalance penalty proportional to the DC's relative load, plus a
// stability bonus for its current DC (moving has a real network price).
// Prices, renewables and batteries are invisible to it — the reason it
// trails on operational cost in Fig. 1.
type NetAware struct {
	// BalanceWeight scales the load-imbalance penalty relative to the
	// normalized traffic affinity (default 1.5).
	BalanceWeight float64
	// StayBonus is the score bonus for remaining at the current DC
	// (default 0.1).
	StayBonus float64
}

// Name implements Policy.
func (NetAware) Name() string { return "Net-aware" }

// Place implements Policy.
func (n NetAware) Place(in *Input) Placement {
	bw := n.BalanceWeight
	if bw == 0 {
		bw = 1.5
	}
	stay := n.StayBonus
	if stay == 0 {
		stay = 0.1
	}

	// Undirected adjacency and per-VM total traffic from the last slot's
	// volume matrix.
	type edge struct {
		peer int
		vol  float64
	}
	adj := make(map[int][]edge)
	tot := make(map[int]float64)
	in.Volumes.Each(func(from, to int, vol units.DataSize) {
		v := float64(vol)
		adj[from] = append(adj[from], edge{peer: to, vol: v})
		adj[to] = append(adj[to], edge{peer: from, vol: v})
		tot[from] += v
		tot[to] += v
	})

	// Heavy communicators first so they anchor their partners; ties by id.
	order := append([]int(nil), in.ActiveVMs...)
	slices.SortFunc(order, func(a, b int) int {
		ta, tb := tot[a], tot[b]
		switch {
		case ta > tb:
			return -1
		case ta < tb:
			return 1
		}
		return cmp.Compare(a, b)
	})

	wish := make(map[int]int, len(order))
	load := make([]float64, len(in.DCs))
	var totalLoad float64
	for _, id := range order {
		demand := cpuDemand(in, id)
		// Traffic affinity of id toward each DC under the partial mapping.
		aff := make([]float64, len(in.DCs))
		for _, e := range adj[id] {
			if d, ok := wish[e.peer]; ok {
				aff[d] += e.vol
			}
		}
		cur, hasCur := in.Current[id]
		best := -1
		bestScore := 0.0
		for d := range in.DCs {
			score := 0.0
			if tot[id] > 0 {
				score += aff[d] / tot[id]
			}
			// Imbalance penalty: this DC's utilization relative to the
			// fleet-wide mean utilization so far.
			capD := in.DCs[d].CPUCapacity()
			meanU := 0.0
			if c := in.DCs.TotalCPUCapacity(); c > 0 {
				meanU = totalLoad / c
			}
			score -= bw * (load[d]/capD - meanU)
			if hasCur && d == cur {
				score += stay
			}
			if best < 0 || score > bestScore {
				best = d
				bestScore = score
			}
		}
		wish[id] = best
		load[best] += demand
		totalLoad += demand
	}
	return applyWishes(in, order, wish)
}

// Allocate implements Policy with stationary FFD, as [6] has no power
// model.
func (NetAware) Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return plainAllocate(d, ids, ps)
}
