package policy

import (
	"reflect"
	"testing"

	"geovmp/internal/correlation"
	"geovmp/internal/units"
)

// TestParetoSearchPlacesEveryVM checks the basic Placement contract: every
// active VM gets a DC, new VMs place freely, and nothing lands on an
// out-of-range DC.
func TestParetoSearchPlacesEveryVM(t *testing.T) {
	in := buildInput(t, inputOpts{
		nVMs:    24,
		current: map[int]int{0: 0, 1: 1, 2: 2, 3: 0},
		volumes: func(dm *correlation.DataMatrix) {
			dm.Add(0, 1, 5*units.Gigabyte)
			dm.Add(2, 3, 3*units.Gigabyte)
			dm.Add(4, 5, 8*units.Gigabyte)
		},
	})
	p := NewParetoSearch(7)
	got := p.Place(in)
	if len(got.DCOf) != len(in.ActiveVMs) {
		t.Fatalf("placed %d of %d VMs", len(got.DCOf), len(in.ActiveVMs))
	}
	for id, d := range got.DCOf {
		if d < 0 || d >= len(in.DCs) {
			t.Fatalf("VM %d placed on out-of-range DC %d", id, d)
		}
	}
	// Moves must only name existing VMs, and each move must match the
	// final assignment.
	for _, mv := range got.Moves {
		cur, ok := in.Current[mv.ID]
		if !ok {
			t.Fatalf("move for new VM %d", mv.ID)
		}
		if mv.From != cur {
			t.Fatalf("move %d: From %d, current %d", mv.ID, mv.From, cur)
		}
		if got.DCOf[mv.ID] != mv.To {
			t.Fatalf("move %d: To %d but placed at %d", mv.ID, mv.To, got.DCOf[mv.ID])
		}
	}
}

// TestParetoSearchDeterministicPerInput checks that two fresh instances
// with the same seed produce identical placements on identical inputs, and
// a different seed is allowed to differ (the perturbation is seeded).
func TestParetoSearchDeterministicPerInput(t *testing.T) {
	mk := func() *Input {
		return buildInput(t, inputOpts{
			nVMs:    30,
			current: map[int]int{0: 0, 1: 1, 2: 2, 3: 0, 4: 1},
			volumes: func(dm *correlation.DataMatrix) {
				dm.Add(0, 1, 5*units.Gigabyte)
				dm.Add(1, 2, 2*units.Gigabyte)
				dm.Add(6, 7, 9*units.Gigabyte)
			},
		})
	}
	a := NewParetoSearch(11).Place(mk())
	b := NewParetoSearch(11).Place(mk())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same input: placements differ")
	}
}

// TestParetoSearchKeepsColdStart checks the degenerate inputs: no active
// VMs yields an empty placement, not a panic.
func TestParetoSearchKeepsColdStart(t *testing.T) {
	in := buildInput(t, inputOpts{nVMs: 0})
	got := NewParetoSearch(3).Place(in)
	if len(got.DCOf) != 0 || len(got.Moves) != 0 {
		t.Fatalf("empty input produced %d placements, %d moves", len(got.DCOf), len(got.Moves))
	}
}

// TestParetoSearchRespectsMigrationBudget tightens the per-link latency
// budget to (almost) zero and checks existing VMs stay put — the search's
// wishes are executed through the same applyWishes gate as every policy.
func TestParetoSearchRespectsMigrationBudget(t *testing.T) {
	current := map[int]int{}
	for id := 0; id < 20; id++ {
		current[id] = id % 3
	}
	in := buildInput(t, inputOpts{nVMs: 20, current: current})
	in.Constraint = 1e-9
	got := NewParetoSearch(5).Place(in)
	if len(got.Moves) != 0 {
		t.Fatalf("zero migration budget still executed %d moves", len(got.Moves))
	}
	for id, cur := range current {
		if got.DCOf[id] != cur {
			t.Fatalf("VM %d moved from %d to %d despite zero budget", id, cur, got.DCOf[id])
		}
	}
}

// TestParetoSearchPrefersLocality gives the search one dominant
// communication pair split across DCs and checks the knee placement
// reunites it (the cross-traffic objective at work).
func TestParetoSearchPrefersLocality(t *testing.T) {
	in := buildInput(t, inputOpts{
		nVMs:    12,
		current: map[int]int{0: 0, 1: 1},
		volumes: func(dm *correlation.DataMatrix) {
			dm.Add(0, 1, 500*units.Gigabyte) // overwhelming pair traffic
		},
	})
	got := NewParetoSearch(9).Place(in)
	if got.DCOf[0] != got.DCOf[1] {
		t.Fatalf("dominant communication pair left split: VM0 on %d, VM1 on %d", got.DCOf[0], got.DCOf[1])
	}
}
