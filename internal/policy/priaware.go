package policy

import (
	"sort"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
)

// PriAware reimplements the paper's cost-aware baseline [17] (Gu et al.,
// ICNC 2015): "the VMs are packed and placed onto DCs and servers with the
// lowest current grid price, but it neglects to maximize free energies
// usage."
//
// Every slot it re-sorts the DCs by the current tariff and greedily packs
// the fleet (largest VMs first) into the cheapest DC until a utilization
// guard fills, then the next cheapest. Existing VMs chase the cheap DC too,
// throttled by the migration latency budget — when the peak/off-peak
// windows rotate, the policy pays a migration storm, and its disregard for
// renewables and batteries is what the proposed method beats on cost.
type PriAware struct {
	// FillFactor caps the fraction of a DC's CPU the packer will commit
	// before spilling to the next cheapest DC (default 0.9).
	FillFactor float64
}

// Name implements Policy.
func (PriAware) Name() string { return "Pri-aware" }

// Place implements Policy.
func (p PriAware) Place(in *Input) Placement {
	fill := p.FillFactor
	if fill <= 0 || fill > 1 {
		fill = 0.9
	}
	// DCs by ascending current price; ties by index for determinism.
	dcOrder := make([]int, len(in.DCs))
	for i := range dcOrder {
		dcOrder[i] = i
	}
	sort.Slice(dcOrder, func(a, b int) bool {
		pa, pb := in.Prices[dcOrder[a]], in.Prices[dcOrder[b]]
		if pa != pb {
			return pa < pb
		}
		return dcOrder[a] < dcOrder[b]
	})

	used := make([]float64, len(in.DCs))
	wish := make(map[int]int, len(in.ActiveVMs))
	order := sortedByDemandDesc(in)
	for _, id := range order {
		d := peakDemand(in, id)
		target := -1
		for _, i := range dcOrder {
			if used[i]+d <= fill*in.DCs[i].CPUCapacity() {
				target = i
				break
			}
		}
		if target < 0 {
			target = dcOrder[len(dcOrder)-1]
		}
		used[target] += d
		wish[id] = target
	}
	return applyWishes(in, order, wish)
}

// Allocate implements Policy with stationary FFD: [17] packs by load only,
// no correlation awareness.
func (PriAware) Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return plainAllocate(d, ids, ps)
}
