package policy

import (
	"testing"

	"geovmp/internal/correlation"
	"geovmp/internal/units"
)

func TestApplyWishesOrderEncodesPriority(t *testing.T) {
	// Two VMs want the same move but the per-link budget fits only one; the
	// one earlier in the order wins.
	cur := map[int]int{10: 0, 20: 0}
	in := buildInput(t, inputOpts{nVMs: 0, current: cur})
	in.ActiveVMs = []int{10, 20}
	in.Image[10] = 8 * units.Gigabyte
	in.Image[20] = 8 * units.Gigabyte
	// One 8 GB move is ~13.5 s on this link; two exceed a 20 s budget.
	in.Constraint = 20
	wish := map[int]int{10: 1, 20: 1}
	p := applyWishes(in, []int{20, 10}, wish)
	if p.DCOf[20] != 1 {
		t.Fatal("first-priority VM did not move")
	}
	if p.DCOf[10] != 0 {
		t.Fatal("budget-exceeded VM moved anyway")
	}
	if p.Rejected != 1 || len(p.Moves) != 1 {
		t.Fatalf("rejected=%d moves=%d", p.Rejected, len(p.Moves))
	}
}

func TestApplyWishesSeparateLinkBudgets(t *testing.T) {
	// Moves on different link pairs draw from different budgets.
	cur := map[int]int{1: 0, 2: 1}
	in := buildInput(t, inputOpts{nVMs: 0, current: cur})
	in.ActiveVMs = []int{1, 2}
	in.Image[1] = 8 * units.Gigabyte
	in.Image[2] = 8 * units.Gigabyte
	in.Constraint = 20
	wish := map[int]int{1: 2, 2: 2}
	p := applyWishes(in, []int{1, 2}, wish)
	if len(p.Moves) != 2 {
		t.Fatalf("moves = %d, want 2 (links 0->2 and 1->2 are independent)", len(p.Moves))
	}
}

func TestPeakDemandFallback(t *testing.T) {
	in := buildInput(t, inputOpts{nVMs: 1})
	// Unknown VM: conservative prior.
	if got := peakDemand(in, 999); got != 0.5 {
		t.Fatalf("peak prior = %v, want 0.5", got)
	}
	if got := cpuDemand(in, 999); got != 0.3 {
		t.Fatalf("mean prior = %v, want 0.3", got)
	}
}

func TestEnerAwareDeterministicUnderMapIteration(t *testing.T) {
	// Current placements arrive as a map; iteration order must not leak
	// into results.
	for trial := 0; trial < 5; trial++ {
		cur := map[int]int{}
		for i := 0; i < 12; i++ {
			cur[i] = i % 3
		}
		in := buildInput(t, inputOpts{nVMs: 16, current: cur})
		p := EnerAware{}.Place(in)
		in2 := buildInput(t, inputOpts{nVMs: 16, current: cur})
		p2 := EnerAware{}.Place(in2)
		for id := range p.DCOf {
			if p2.DCOf[id] != p.DCOf[id] {
				t.Fatal("map iteration order leaked into placement")
			}
		}
	}
}

func TestNetAwareHandlesMissingVolumeMatrix(t *testing.T) {
	in := buildInput(t, inputOpts{nVMs: 5})
	in.Volumes = correlation.NewDataMatrix() // empty
	p := NetAware{}.Place(in)
	assertCovers(t, p, in)
}

func TestPriAwareFillFactorConfigurable(t *testing.T) {
	in := buildInput(t, inputOpts{nVMs: 8, peak: func(int) float64 { return 8 }})
	// Fill factor 0.25: cheapest DC (4 servers x 8 x 0.25 = 8 cores) takes
	// exactly one 8-core VM.
	p := PriAware{FillFactor: 0.25}.Place(in)
	count := 0
	for _, d := range p.DCOf {
		if d == 2 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("cheapest DC holds %d, want 1 under fill 0.25", count)
	}
}
