package policy

import (
	"math"
	"slices"
	"strconv"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/pareto"
	"geovmp/internal/rng"
	"geovmp/internal/units"
)

// ParetoSearch is the metaheuristic global phase the frontier compares the
// paper's controller against: a seeded multi-start local search over
// whole-fleet assignments that keeps an archive of non-dominated candidates
// — NSGA-II-lite, with the dominance archive but without the generational
// machinery. Each slot it scores candidate assignments on three slot-local
// surrogates, all minimized:
//
//   - paid energy cost: per DC, the predicted facility energy exceeding the
//     site's free sources (renewable forecast + usable battery), priced at
//     the current tariff — the placement-sensitive slice of Fig. 1;
//   - cross-DC traffic: last interval's inter-VM volumes crossing DC
//     boundaries — the Eq. 1 response-time driver;
//   - migration time: the summed transfer seconds of the moves the
//     candidate implies — the disruption budget.
//
// Starts perturb the incumbent placement and hill-climb under distinct
// objective weightings, the archive keeps the non-dominated endpoints, and
// the knee of that mini-front becomes the slot's placement (executed
// through the same per-link migration latency budget as every other
// policy). The search is deterministic in the construction seed: every
// random draw comes from a stream derived from (seed, slot).
type ParetoSearch struct {
	// Starts is the number of perturbed hill-climbs per slot (default 4).
	// Each start optimizes a different weighting of the three surrogates,
	// so the archive spans the slot's trade-off front.
	Starts int
	// Sweeps is the number of improvement passes over the fleet per start
	// (default 2).
	Sweeps int
	// Perturb is the fraction of VMs each start reassigns at random before
	// climbing (default 0.1); start 0 always climbs the unperturbed
	// incumbent.
	Perturb float64

	seed uint64
}

// NewParetoSearch returns the metaheuristic baseline. Construct a fresh
// instance per run, like every policy.
func NewParetoSearch(seed uint64) *ParetoSearch {
	return &ParetoSearch{Starts: 4, Sweeps: 2, Perturb: 0.1, seed: seed}
}

// Name implements Policy.
func (p *ParetoSearch) Name() string { return "Pareto-search" }

// Allocate implements Policy with the same correlation-aware local phase
// the proposed controller uses, so frontier comparisons isolate the global
// phase.
func (p *ParetoSearch) Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return corrAwareAllocate(d, ids, ps)
}

// neighbor is one communication edge of the undirected exchange graph.
type neighbor struct {
	idx int     // local index of the peer VM
	vol float64 // bytes exchanged last interval, both directions
}

// searchState holds one slot's immutable search inputs plus the mutable
// incumbent assignment the climbs operate on.
type searchState struct {
	in     *Input
	ids    []int // ActiveVMs, ascending
	local  map[int]int
	demand []float64 // CPU demand per local idx
	energy []float64 // predicted J per local idx
	adj    [][]neighbor

	capCPU  []float64   // per-DC CPU capacity
	freeJ   []float64   // per-DC free energy (renewable + battery), J
	priceJ  []float64   // per-DC tariff, EUR per J
	migSecs [][]float64 // [local idx][dc] seconds to move there from current (0 when target is current or VM is new)

	assign []int     // current assignment per local idx
	cpu    []float64 // per-DC CPU load of assign
	joules []float64 // per-DC energy of assign
	cross  float64   // current cross-DC bytes
	mig    float64   // current migration seconds

	// scale makes the weighted objective sums unit-free. Derived from the
	// problem's magnitudes — total priced energy, total exchanged volume,
	// the slot's migration latency budget — never from a candidate's
	// current state: a start whose incumbent happens to score zero on one
	// objective must not treat any increase of it as infinitely expensive.
	scale [3]float64
}

func newSearchState(in *Input) *searchState {
	nDC := len(in.DCs)
	ids := in.ActiveVMs
	s := &searchState{
		in:      in,
		ids:     ids,
		local:   make(map[int]int, len(ids)),
		demand:  make([]float64, len(ids)),
		energy:  make([]float64, len(ids)),
		adj:     make([][]neighbor, len(ids)),
		capCPU:  make([]float64, nDC),
		freeJ:   make([]float64, nDC),
		priceJ:  make([]float64, nDC),
		migSecs: make([][]float64, len(ids)),
		assign:  make([]int, len(ids)),
		cpu:     make([]float64, nDC),
		joules:  make([]float64, nDC),
	}
	for i, id := range ids {
		s.local[id] = i
		s.demand[i] = cpuDemand(in, id)
		if id < len(in.VMEnergy) {
			s.energy[i] = in.VMEnergy[id]
		}
	}
	for d := range in.DCs {
		s.capCPU[d] = in.DCs[d].CPUCapacity()
		s.freeJ[d] = float64(in.RenewForecast[d]) + float64(in.BatteryAvail[d])
		// EUR/kWh -> EUR/J; only relative magnitudes matter to the search,
		// but honest units keep the surrogate comparable to OpCost.
		s.priceJ[d] = float64(in.Prices[d]) / 3.6e6
	}
	// Undirected exchange graph from the last interval's volumes; Each is
	// deterministic, and both endpoints see the summed edge.
	in.Volumes.Each(func(from, to int, vol units.DataSize) {
		i, ok := s.local[from]
		if !ok {
			return
		}
		j, ok := s.local[to]
		if !ok {
			return
		}
		s.adj[i] = append(s.adj[i], neighbor{idx: j, vol: float64(vol)})
		s.adj[j] = append(s.adj[j], neighbor{idx: i, vol: float64(vol)})
	})
	// Migration seconds to every DC, per VM (zero rows for new arrivals —
	// they place for free).
	for i, id := range ids {
		cur, existed := in.Current[id]
		if !existed {
			continue
		}
		row := make([]float64, nDC)
		for d := 0; d < nDC; d++ {
			if d != cur {
				row[d] = in.Net.MigrationTime(cur, d, in.Image[id])
			}
		}
		s.migSecs[i] = row
	}

	totalJ, meanPrice, totalVol := 0.0, 0.0, 0.0
	for i := range s.energy {
		totalJ += s.energy[i]
	}
	for d := range s.priceJ {
		meanPrice += s.priceJ[d]
	}
	meanPrice /= float64(nDC)
	for i := range s.adj {
		for _, nb := range s.adj[i] {
			if nb.idx > i {
				totalVol += nb.vol
			}
		}
	}
	s.scale[0] = math.Max(totalJ*meanPrice, 1e-9)
	s.scale[1] = math.Max(totalVol, 1)
	s.scale[2] = math.Max(in.Constraint, 1)
	return s
}

// setAssign installs an assignment and recomputes the aggregate loads and
// objective terms from scratch.
func (s *searchState) setAssign(assign []int) {
	copy(s.assign, assign)
	for d := range s.cpu {
		s.cpu[d] = 0
		s.joules[d] = 0
	}
	s.cross = 0
	s.mig = 0
	for i := range s.assign {
		d := s.assign[i]
		s.cpu[d] += s.demand[i]
		s.joules[d] += s.energy[i]
		if row := s.migSecs[i]; row != nil {
			s.mig += row[d]
		}
		for _, nb := range s.adj[i] {
			if nb.idx > i && s.assign[nb.idx] != d {
				s.cross += nb.vol
			}
		}
	}
}

// objectives returns the current assignment's surrogate vector
// (paid cost EUR, cross-DC bytes, migration seconds).
func (s *searchState) objectives() []float64 {
	cost := 0.0
	for d := range s.joules {
		if paid := s.joules[d] - s.freeJ[d]; paid > 0 {
			cost += paid * s.priceJ[d]
		}
	}
	return []float64{cost, s.cross, s.mig}
}

// moveDelta returns the objective-vector change of moving VM i to DC to,
// without applying it.
func (s *searchState) moveDelta(i, to int) (dCost, dCross, dMig float64) {
	from := s.assign[i]
	if from == to {
		return 0, 0, 0
	}
	paid := func(d int, joules float64) float64 {
		if p := joules - s.freeJ[d]; p > 0 {
			return p * s.priceJ[d]
		}
		return 0
	}
	dCost = paid(from, s.joules[from]-s.energy[i]) - paid(from, s.joules[from]) +
		paid(to, s.joules[to]+s.energy[i]) - paid(to, s.joules[to])
	for _, nb := range s.adj[i] {
		other := s.assign[nb.idx]
		if other == from {
			dCross += nb.vol // edge was intra, becomes cross
		}
		if other == to {
			dCross -= nb.vol // edge was cross, becomes intra
		}
	}
	if row := s.migSecs[i]; row != nil {
		dMig = row[to] - row[from]
	}
	return dCost, dCross, dMig
}

// apply executes the move and updates the aggregates incrementally.
func (s *searchState) apply(i, to int) {
	_, dCross, dMig := s.moveDelta(i, to)
	from := s.assign[i]
	s.cpu[from] -= s.demand[i]
	s.joules[from] -= s.energy[i]
	s.cpu[to] += s.demand[i]
	s.joules[to] += s.energy[i]
	s.cross += dCross
	s.mig += dMig
	s.assign[i] = to
}

// startWeights assigns each start one of four base weightings — balanced
// plus one leaning per objective — cycling when Starts exceeds four, so
// extra starts differ only in their perturbation draw.
func startWeights(starts int) [][3]float64 {
	base := [][3]float64{
		{1, 1, 1},
		{4, 1, 1}, // cost-leaning
		{1, 4, 1}, // traffic-leaning
		{1, 1, 4}, // migration-averse
	}
	out := make([][3]float64, starts)
	for k := range out {
		out[k] = base[k%len(base)]
	}
	return out
}

// Place implements Policy: the multi-start archive search.
func (p *ParetoSearch) Place(in *Input) Placement {
	nDC := len(in.DCs)
	if len(in.ActiveVMs) == 0 || nDC == 0 {
		return Placement{DCOf: map[int]int{}}
	}
	starts := p.Starts
	if starts < 1 {
		starts = 4
	}
	sweeps := p.Sweeps
	if sweeps < 1 {
		sweeps = 2
	}
	perturb := p.Perturb
	if perturb < 0 || perturb >= 1 {
		perturb = 0.1
	}

	s := newSearchState(in)

	// Incumbent: existing VMs stay put; arrivals go to the DC with the most
	// free energy headroom after earlier arrivals, in ascending id order —
	// deterministic, capacity-aware, and shared by every start.
	incumbent := make([]int, len(s.ids))
	headroom := make([]float64, nDC)
	for d := range headroom {
		headroom[d] = s.freeJ[d]
	}
	cpuSeed := make([]float64, nDC)
	for i, id := range s.ids {
		if cur, ok := in.Current[id]; ok {
			incumbent[i] = cur
			cpuSeed[cur] += s.demand[i]
			headroom[cur] -= s.energy[i]
		} else {
			incumbent[i] = -1
		}
	}
	for i := range s.ids {
		if incumbent[i] >= 0 {
			continue
		}
		best, bestScore := -1, math.Inf(-1)
		for d := 0; d < nDC; d++ {
			if cpuSeed[d]+s.demand[i] > s.capCPU[d] {
				continue
			}
			if headroom[d] > bestScore {
				best, bestScore = d, headroom[d]
			}
		}
		if best < 0 {
			// Every DC is CPU-full: overflow to the least-loaded one
			// (relative to capacity) rather than piling onto DC 0.
			rel := math.Inf(1)
			for d := 0; d < nDC; d++ {
				if r := cpuSeed[d] / s.capCPU[d]; r < rel {
					best, rel = d, r
				}
			}
		}
		incumbent[i] = best
		cpuSeed[best] += s.demand[i]
		headroom[best] -= s.energy[i]
	}

	// Multi-start climbs. Every draw derives from (seed, slot, start), so
	// the search is a pure function of its inputs — no cross-slot state.
	weights := startWeights(starts)
	var archive []pareto.Point
	var archiveAssign [][]int
	candidate := make([]int, len(incumbent))
	for k := 0; k < starts; k++ {
		src := rng.New(rng.Hash(p.seed, uint64(in.Slot), uint64(k), 0x9a7e70)) // stream per (seed, slot, start)
		copy(candidate, incumbent)
		if k > 0 && perturb > 0 {
			// Capacity-checked kicks: a perturbation may only land where the
			// VM still fits, so starts never *introduce* over-capacity DCs
			// (an already-overloaded incumbent is the climb's to unwind).
			s.setAssign(candidate)
			kicks := int(perturb * float64(len(candidate)))
			for j := 0; j < kicks; j++ {
				i, to := src.Intn(len(candidate)), src.Intn(nDC)
				if to != s.assign[i] && s.cpu[to]+s.demand[i] <= s.capCPU[to] {
					s.apply(i, to)
				}
			}
		} else {
			s.setAssign(candidate)
		}

		w := weights[k]
		for sweep := 0; sweep < sweeps; sweep++ {
			improved := false
			for _, i := range src.Perm(len(s.ids)) {
				from := s.assign[i]
				bestTo, bestGain := -1, 1e-12
				for to := 0; to < nDC; to++ {
					if to == from || s.cpu[to]+s.demand[i] > s.capCPU[to] {
						continue
					}
					dc, dx, dm := s.moveDelta(i, to)
					gain := -(w[0]*dc/s.scale[0] + w[1]*dx/s.scale[1] + w[2]*dm/s.scale[2])
					if gain > bestGain {
						bestTo, bestGain = to, gain
					}
				}
				if bestTo >= 0 {
					s.apply(i, bestTo)
					improved = true
				}
			}
			if !improved {
				break
			}
		}

		// Archive the endpoint if no incumbent dominates it; drop the ones
		// it dominates (the NSGA-lite elitist archive).
		v := s.objectives()
		dominated := false
		for _, a := range archive {
			if pareto.Dominates(a.V, v) {
				dominated = true
				break
			}
		}
		if !dominated {
			keepPts := archive[:0]
			keepAsg := archiveAssign[:0]
			for ai, a := range archive {
				if !pareto.Dominates(v, a.V) {
					keepPts = append(keepPts, a)
					keepAsg = append(keepAsg, archiveAssign[ai])
				}
			}
			archive = append(keepPts, pareto.Point{Name: startName(k), V: v})
			archiveAssign = append(keepAsg, append([]int(nil), s.assign...))
		}
	}

	// Knee of the slot's mini-front becomes the wish assignment.
	front := make([]int, len(archive))
	for i := range front {
		front[i] = i
	}
	choice := pareto.Knee(archive, front)
	chosen := archiveAssign[choice]

	wish := make(map[int]int, len(s.ids))
	for i, id := range s.ids {
		wish[id] = chosen[i]
	}
	order := append([]int(nil), s.ids...)
	slices.Sort(order)
	return applyWishes(in, order, wish)
}

// startName labels archive entries deterministically for knee tie-breaks.
func startName(k int) string {
	return "start-" + strconv.Itoa(k)
}
