// Package policy defines the controller interface the simulator drives and
// implements the three state-of-the-art baselines the paper compares
// against (Sect. V-B):
//
//   - Pri-aware  [17] Gu et al., ICNC 2015 — cost-aware placement onto the
//     DCs with the lowest current grid price.
//   - Ener-aware [5] Kim et al., DATE 2013 — FFD clustering of VMs onto DCs
//     plus CPU-load-correlation-aware local allocation.
//   - Net-aware  [6] Biran et al., CCGRID 2012 (the GH heuristic) —
//     network-aware placement balancing traffic across DCs.
//
// The proposed two-phase controller lives in internal/core and implements
// the same interface. All policies run on identical inputs and identical
// green controllers, as in the paper ("all the mentioned methods are used
// jointly with the same local green controller").
package policy

import (
	"cmp"
	"slices"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/migrate"
	"geovmp/internal/network"
	"geovmp/internal/par"
	"geovmp/internal/power"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Input is everything a global controller observes at the start of a slot:
// the last interval's loads and data communications, the fleet's energy
// state, forecasts and prices — the paper's "VMs' loads from the previous
// time interval, data communications, renewable forecast, available battery
// energy and grid price from each DC".
type Input struct {
	Slot      timeutil.Slot
	ActiveVMs []int       // all VMs to place this slot, ascending ids
	Current   map[int]int // VM -> current DC; absent means newly arrived
	// Profiles holds last-interval downsampled utilization profiles.
	Profiles *correlation.ProfileSet
	// Volumes holds last-interval inter-VM directed data volumes.
	Volumes *correlation.DataMatrix
	// VMEnergy predicts each VM's facility energy for the next slot,
	// Joules, indexed by VM id (dense; inactive ids read 0).
	VMEnergy []float64
	// Image gives each VM's migration image size, indexed by VM id.
	Image []units.DataSize

	DCs           dc.Fleet
	Prices        []units.Price  // current grid price per DC
	RenewForecast []units.Energy // next-slot PV forecast per DC
	BatteryAvail  []units.Energy // usable battery energy per DC
	LastEnergy    []units.Energy // facility energy per DC over the last slot

	Net        *network.State
	Constraint float64 // migration latency budget per link pair, seconds

	// Health, when fault injection is active, gives each DC's remaining
	// capacity fraction this slot: 1 healthy, 0 fully down. Nil on
	// fault-free runs. Policies need not read it — the engine already
	// scales each DC's Servers to the surviving count, which every
	// capacity-sizing path picks up — but health-aware controllers can
	// use it to bias placement away from degraded sites.
	Health []float64

	// Workers optionally lends the controller extra goroutines for its
	// internal sharded passes (the proposed controller shards its embedding
	// and clustering with it). The experiment engine supplies the sweep's
	// shared worker budget here; nil means run serially. Controllers must
	// produce identical decisions at any worker count.
	Workers *par.Budget

	// FastMath opts controllers into their approximate fast-numeric paths
	// (quantized correlation kernel, epoch-amortized embedding caches).
	// Default off: every controller must be bit-identical to prior releases
	// when unset. See correlation.FastEps for the per-pair error budget.
	FastMath bool
}

// Placement is a global controller's decision: a DC for every active VM and
// the migrations actually executed to get there.
type Placement struct {
	DCOf     map[int]int
	Moves    []migrate.Move
	Rejected int
}

// EpochAware is optionally implemented by policies that react to the
// rolling-horizon engine's epoch boundaries. The simulator calls StartEpoch
// once per interior boundary (epoch >= 1), before the boundary slot's
// Place, so the policy can re-optimize for the new workload regime —
// warm-started from its carried state, not from scratch. Implementations
// must stay deterministic: the signal may arrive on any worker schedule.
type EpochAware interface {
	StartEpoch(epoch int, start timeutil.Slot)
}

// Policy is a complete placement method: a global clustering phase and a
// local server-allocation phase.
type Policy interface {
	// Name identifies the policy in reports ("Proposed", "Ener-aware", ...).
	Name() string
	// Place runs the global phase.
	Place(in *Input) Placement
	// Allocate runs the local phase for one DC's VM set.
	Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result
}

// --- shared helpers ---

// cpuDemand returns the VM's mean utilization from its last profile; the
// baselines size DC capacity in reference cores with it.
func cpuDemand(in *Input, id int) float64 {
	if m := in.Profiles.Mean(id); m > 0 {
		return m
	}
	return 0.3 // unseen VM: class-mean prior
}

// peakDemand returns the VM's peak utilization from its last profile — the
// stationary worst-case sizing the FFD-style baselines admit with.
func peakDemand(in *Input, id int) float64 {
	if p := in.Profiles.Peak(id); p > 0 {
		return p
	}
	return 0.5 // unseen VM: conservative prior
}

// sortedByDemandDesc returns the active VMs ordered by descending CPU
// demand (FFD order), ties by id. The comparator is a total order (the id
// tiebreak), so the non-reflective sort produces the same permutation the
// former sort.Slice did.
func sortedByDemandDesc(in *Input) []int {
	ids := append([]int(nil), in.ActiveVMs...)
	slices.SortFunc(ids, func(a, b int) int {
		da, db := cpuDemand(in, a), cpuDemand(in, b)
		switch {
		case da > db:
			return -1
		case da < db:
			return 1
		}
		return cmp.Compare(a, b)
	})
	return ids
}

// applyWishes turns a desired assignment into an executable placement under
// the per-link migration latency budget: existing VMs move only while their
// image fits the remaining budget of the (from, to) link pair; new VMs are
// placed unconditionally. Wishes are processed in the given order, so
// callers encode their priorities by ordering ids.
func applyWishes(in *Input, order []int, wish map[int]int) Placement {
	p := Placement{DCOf: make(map[int]int, len(order))}
	n := len(in.DCs)
	used := make([][]float64, n)
	for i := range used {
		used[i] = make([]float64, n)
	}
	for _, id := range order {
		target := wish[id]
		cur, existed := in.Current[id]
		if !existed {
			p.DCOf[id] = target
			continue
		}
		if target == cur {
			p.DCOf[id] = cur
			continue
		}
		t := in.Net.MigrationTime(cur, target, in.Image[id])
		if used[cur][target]+t < in.Constraint {
			used[cur][target] += t
			p.DCOf[id] = target
			p.Moves = append(p.Moves, migrate.Move{ID: id, From: cur, To: target, Image: in.Image[id], Seconds: t})
		} else {
			p.DCOf[id] = cur
			p.Rejected++
		}
	}
	return p
}

// corrAwareAllocate is the Kim et al. local phase shared by Proposed and
// Ener-aware.
func corrAwareAllocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return alloc.CorrelationAware(ids, ps, d.Model, d.Servers)
}

// plainAllocate is the stationary local phase used by Pri- and Net-aware.
func plainAllocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return alloc.PlainFFD(ids, ps, d.Model, d.Servers)
}

// serverModelCapacity is a tiny indirection point so tests can reason about
// capacity in one place.
func serverModelCapacity(m *power.ServerModel) float64 { return m.MaxCapacity() }
