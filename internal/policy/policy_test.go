package policy

import (
	"testing"

	"geovmp/internal/battery"
	"geovmp/internal/cooling"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/green"
	"geovmp/internal/network"
	"geovmp/internal/power"
	"geovmp/internal/price"
	"geovmp/internal/rng"
	"geovmp/internal/solar"
	"geovmp/internal/units"
)

// testFleet builds a 3-DC fleet with the given server counts.
func testFleet(t *testing.T, servers ...int) dc.Fleet {
	t.Helper()
	climates := []cooling.Climate{cooling.Lisbon(), cooling.Zurich(), cooling.Helsinki()}
	plants := []solar.Plant{solar.LisbonPlant(), solar.ZurichPlant(), solar.HelsinkiPlant()}
	tariffs := []price.Tariff{price.LisbonTariff(), price.ZurichTariff(), price.HelsinkiTariff()}
	fleet := make(dc.Fleet, len(servers))
	for i, n := range servers {
		bank, err := battery.New(battery.Config{Capacity: 50 * units.KilowattHour, DoD: 0.5, InitialSoC: 0.75})
		if err != nil {
			t.Fatal(err)
		}
		fleet[i] = &dc.DC{
			Index: i, Name: tariffs[i].Name, Servers: n,
			Model:   power.E5410(),
			Cooling: cooling.Site{Climate: climates[i], Model: cooling.DefaultPUE()},
			Plant:   plants[i], Bank: bank, Tariff: tariffs[i],
			Forecast: &solar.LastValue{},
			Green:    &green.Controller{Tariff: tariffs[i], Bank: bank},
		}
	}
	return fleet
}

// inputOpts tweaks buildInput.
type inputOpts struct {
	nVMs    int
	current map[int]int
	prices  []units.Price
	volumes func(dm *correlation.DataMatrix)
	peak    func(id int) float64
}

// buildInput constructs a deterministic Input over a tiny fleet.
func buildInput(t *testing.T, opts inputOpts) *Input {
	t.Helper()
	fleet := testFleet(t, 8, 6, 4)
	n := len(fleet)
	ps := correlation.NewProfileSet(4)
	// Dense per-id tables; sized past nVMs so tests can poke extra ids.
	vmEnergy := make([]float64, opts.nVMs+32)
	image := make([]units.DataSize, opts.nVMs+32)
	ids := make([]int, opts.nVMs)
	for id := 0; id < opts.nVMs; id++ {
		ids[id] = id
		pk := 0.8
		if opts.peak != nil {
			pk = opts.peak(id)
		}
		ps.Add(id, []float64{pk, pk / 2, pk / 4, pk / 2})
		vmEnergy[id] = 1000
		image[id] = 2 * units.Gigabyte
	}
	dm := correlation.NewDataMatrix()
	if opts.volumes != nil {
		opts.volumes(dm)
	}
	prices := opts.prices
	if prices == nil {
		prices = []units.Price{0.20, 0.25, 0.15}
	}
	cur := opts.current
	if cur == nil {
		cur = map[int]int{}
	}
	in := &Input{
		Slot:          2,
		ActiveVMs:     ids,
		Current:       cur,
		Profiles:      ps,
		Volumes:       dm,
		VMEnergy:      vmEnergy,
		Image:         image,
		DCs:           fleet,
		Prices:        prices,
		RenewForecast: make([]units.Energy, n),
		BatteryAvail:  make([]units.Energy, n),
		LastEnergy:    make([]units.Energy, n),
		Net:           network.NewState(network.PaperTopology(), rng.New(1)),
		Constraint:    72,
	}
	return in
}

func assertCovers(t *testing.T, p Placement, in *Input) {
	t.Helper()
	for _, id := range in.ActiveVMs {
		d, ok := p.DCOf[id]
		if !ok {
			t.Fatalf("VM %d unplaced", id)
		}
		if d < 0 || d >= len(in.DCs) {
			t.Fatalf("VM %d at invalid DC %d", id, d)
		}
	}
}

// --- Ener-aware ---

func TestEnerAwareFillsFirstDCFirst(t *testing.T) {
	in := buildInput(t, inputOpts{nVMs: 10})
	p := EnerAware{}.Place(in)
	assertCovers(t, p, in)
	// 10 VMs with peak 0.8 trivially fit DC0 (8 servers x 8 cores).
	for _, id := range in.ActiveVMs {
		if p.DCOf[id] != 0 {
			t.Fatalf("VM %d placed at %d, want first DC", id, p.DCOf[id])
		}
	}
	if len(p.Moves) != 0 {
		t.Fatal("new placements are not migrations")
	}
}

func TestEnerAwareSpillsWhenFirstDCFull(t *testing.T) {
	// Peaks of 8.0 fill one server each: DC0 (8 servers at 0.9 fill = 57.6
	// core budget) holds 7 such VMs; more must spill.
	in := buildInput(t, inputOpts{nVMs: 12, peak: func(int) float64 { return 8 }})
	p := EnerAware{}.Place(in)
	assertCovers(t, p, in)
	counts := map[int]int{}
	for _, d := range p.DCOf {
		counts[d]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("no spill to second DC: %v", counts)
	}
}

func TestEnerAwareExistingVMsNeverMove(t *testing.T) {
	in := buildInput(t, inputOpts{
		nVMs:    6,
		current: map[int]int{0: 2, 1: 1, 2: 2},
	})
	p := EnerAware{}.Place(in)
	assertCovers(t, p, in)
	if p.DCOf[0] != 2 || p.DCOf[1] != 1 || p.DCOf[2] != 2 {
		t.Fatalf("existing VMs moved: %v", p.DCOf)
	}
	if len(p.Moves) != 0 {
		t.Fatal("Ener-aware migrated")
	}
}

// --- Pri-aware ---

func TestPriAwarePrefersCheapestDC(t *testing.T) {
	// DC2 is cheapest by construction (0.15).
	in := buildInput(t, inputOpts{nVMs: 4})
	p := PriAware{}.Place(in)
	assertCovers(t, p, in)
	for _, id := range in.ActiveVMs {
		if p.DCOf[id] != 2 {
			t.Fatalf("VM %d at %d, want cheapest DC 2", id, p.DCOf[id])
		}
	}
}

func TestPriAwareSpillsToNextCheapest(t *testing.T) {
	// DC2 has 4 servers x 8 cores x 0.9 = 28.8 core budget; peaks of 8 fill
	// it with 3 VMs, the rest go to the next cheapest (DC0 at 0.20).
	in := buildInput(t, inputOpts{nVMs: 8, peak: func(int) float64 { return 8 }})
	p := PriAware{}.Place(in)
	assertCovers(t, p, in)
	counts := map[int]int{}
	for _, d := range p.DCOf {
		counts[d]++
	}
	if counts[2] != 3 {
		t.Fatalf("cheapest DC holds %d, want 3", counts[2])
	}
	if counts[0] != 5 {
		t.Fatalf("next cheapest holds %d, want 5", counts[0])
	}
}

func TestPriAwareMigrationsRespectBudget(t *testing.T) {
	// All VMs sit at DC0; the cheap DC2 attracts them. With a tiny latency
	// budget nothing may move.
	cur := map[int]int{}
	for i := 0; i < 6; i++ {
		cur[i] = 0
	}
	in := buildInput(t, inputOpts{nVMs: 6, current: cur})
	in.Constraint = 0.001
	p := PriAware{}.Place(in)
	assertCovers(t, p, in)
	if len(p.Moves) != 0 {
		t.Fatalf("moves executed past the budget: %v", p.Moves)
	}
	if p.Rejected != 6 {
		t.Fatalf("rejected = %d, want 6", p.Rejected)
	}
	for i := 0; i < 6; i++ {
		if p.DCOf[i] != 0 {
			t.Fatal("VM moved despite infeasible migration")
		}
	}
}

func TestPriAwareMigratesWhenFeasible(t *testing.T) {
	cur := map[int]int{0: 0, 1: 0}
	in := buildInput(t, inputOpts{nVMs: 2, current: cur})
	p := PriAware{}.Place(in)
	assertCovers(t, p, in)
	if len(p.Moves) != 2 {
		t.Fatalf("moves = %d, want 2 toward the cheap DC", len(p.Moves))
	}
	for _, m := range p.Moves {
		if m.To != 2 || m.From != 0 {
			t.Fatalf("unexpected move %+v", m)
		}
		if m.Seconds <= 0 || m.Seconds >= 72 {
			t.Fatalf("implausible migration time %v", m.Seconds)
		}
	}
}

// --- Net-aware ---

func TestNetAwareColocatesCommunicatingPairs(t *testing.T) {
	in := buildInput(t, inputOpts{
		nVMs: 8,
		volumes: func(dm *correlation.DataMatrix) {
			// Two chatty groups: {0,1,2} and {3,4}.
			dm.Add(0, 1, 500*units.Megabyte)
			dm.Add(1, 2, 400*units.Megabyte)
			dm.Add(2, 0, 450*units.Megabyte)
			dm.Add(3, 4, 600*units.Megabyte)
			dm.Add(4, 3, 550*units.Megabyte)
		},
	})
	p := NetAware{}.Place(in)
	assertCovers(t, p, in)
	if !(p.DCOf[0] == p.DCOf[1] && p.DCOf[1] == p.DCOf[2]) {
		t.Fatalf("group A split: %d %d %d", p.DCOf[0], p.DCOf[1], p.DCOf[2])
	}
	if p.DCOf[3] != p.DCOf[4] {
		t.Fatalf("group B split: %d %d", p.DCOf[3], p.DCOf[4])
	}
}

func TestNetAwareBalancesLoad(t *testing.T) {
	// 30 mutually silent VMs: balance should spread them roughly by
	// capacity (8:6:4).
	in := buildInput(t, inputOpts{nVMs: 30})
	p := NetAware{}.Place(in)
	assertCovers(t, p, in)
	counts := map[int]int{}
	for _, d := range p.DCOf {
		counts[d]++
	}
	for d := 0; d < 3; d++ {
		if counts[d] == 0 {
			t.Fatalf("DC %d unused by balancing placement: %v", d, counts)
		}
	}
	if counts[0] < counts[2] {
		t.Fatalf("bigger DC got less load: %v", counts)
	}
}

func TestNetAwareStayBonus(t *testing.T) {
	// A lone silent VM with no traffic: the stay bonus must keep it home.
	in := buildInput(t, inputOpts{nVMs: 1, current: map[int]int{0: 1}})
	p := NetAware{}.Place(in)
	if p.DCOf[0] != 1 {
		t.Fatalf("silent VM moved from its home DC: %d", p.DCOf[0])
	}
	if len(p.Moves) != 0 {
		t.Fatal("gratuitous migration")
	}
}

// --- shared ---

func TestAllocatorsMatchPolicyClass(t *testing.T) {
	fleet := testFleet(t, 4, 4, 4)
	ps := correlation.NewProfileSet(4)
	// Anti-correlated 6-core pair: corr-aware packs on one server, plain on
	// two.
	ps.Add(0, []float64{6, 1, 6, 1})
	ps.Add(1, []float64{1, 6, 1, 6})
	ids := []int{0, 1}
	for _, tt := range []struct {
		pol        Policy
		wantActive int
	}{
		{EnerAware{}, 1},
		{PriAware{}, 2},
		{NetAware{}, 2},
	} {
		res := tt.pol.Allocate(fleet[0], ids, ps)
		if res.Active != tt.wantActive {
			t.Errorf("%s: active = %d, want %d", tt.pol.Name(), res.Active, tt.wantActive)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (EnerAware{}).Name() != "Ener-aware" ||
		(PriAware{}).Name() != "Pri-aware" ||
		(NetAware{}).Name() != "Net-aware" {
		t.Fatal("policy names drifted; reports key on them")
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	for _, pol := range []Policy{EnerAware{}, PriAware{}, NetAware{}} {
		mk := func() Placement {
			in := buildInput(t, inputOpts{
				nVMs:    20,
				current: map[int]int{3: 1, 4: 2, 5: 0},
				volumes: func(dm *correlation.DataMatrix) {
					dm.Add(0, 1, 100*units.Megabyte)
					dm.Add(5, 6, 300*units.Megabyte)
				},
			})
			return pol.Place(in)
		}
		a, b := mk(), mk()
		for id, d := range a.DCOf {
			if b.DCOf[id] != d {
				t.Fatalf("%s: placement of %d diverged", pol.Name(), id)
			}
		}
	}
}
