package policy

import (
	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
)

// EnerAware reimplements the paper's energy-aware baseline [5] (Kim et al.,
// DATE 2013) lifted to multiple DCs the way the paper describes it: "the
// Ener-aware approach first uses the FFD clustering heuristic, placing VMs
// into the first DC in which its load capacity fits, and then packs the VMs
// into the minimal number of active servers based on the CPU-load
// correlation."
//
// Globally it is energy-blind across sites: no price, renewable or battery
// signal reaches the clustering, and placed VMs never migrate (the single-DC
// algorithm has no inter-DC mobility), which is exactly why it loses on
// operational cost in Fig. 1 while staying competitive on energy in Fig. 2.
type EnerAware struct{}

// Name implements Policy.
func (EnerAware) Name() string { return "Ener-aware" }

// FillFactor caps how much of a DC's CPU the FFD admission will commit
// (peak-based sizing); the paper's single-DC algorithm packs "into the
// first DC in which its load capacity fits".
const enerFillFactor = 0.9

// Place implements Policy: first-fit-decreasing of new VMs over the DCs in
// fixed order, admission by stationary peak-CPU headroom; existing VMs stay
// put.
func (EnerAware) Place(in *Input) Placement {
	p := Placement{DCOf: make(map[int]int, len(in.ActiveVMs))}
	// Track CPU headroom per DC, pre-charged with the VMs already there.
	used := make([]float64, len(in.DCs))
	for _, id := range in.ActiveVMs {
		if cur, ok := in.Current[id]; ok {
			used[cur] += peakDemand(in, id)
			p.DCOf[id] = cur
		}
	}
	for _, id := range sortedByDemandDesc(in) {
		if _, ok := in.Current[id]; ok {
			continue // existing VMs never move
		}
		d := peakDemand(in, id)
		target := -1
		for i, site := range in.DCs {
			if used[i]+d <= enerFillFactor*site.CPUCapacity() {
				target = i
				break
			}
		}
		if target < 0 {
			// Fleet full by headroom accounting: least-loaded fallback.
			target = 0
			for i := 1; i < len(in.DCs); i++ {
				if used[i]/in.DCs[i].CPUCapacity() < used[target]/in.DCs[target].CPUCapacity() {
					target = i
				}
			}
		}
		used[target] += d
		p.DCOf[id] = target
	}
	return p
}

// Allocate implements Policy with the correlation-aware packer — the heart
// of [5].
func (EnerAware) Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return corrAwareAllocate(d, ids, ps)
}
