package power

import (
	"math"
	"testing"
	"testing/quick"

	"geovmp/internal/units"
)

func TestE5410Valid(t *testing.T) {
	m := E5410()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cores != 8 {
		t.Fatalf("cores = %d, want 8", m.Cores)
	}
	if len(m.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(m.Levels))
	}
	if m.MaxFreq() != 2.3*units.Gigahertz {
		t.Fatalf("max freq = %v", m.MaxFreq())
	}
}

func TestCapacityScalesWithFrequency(t *testing.T) {
	m := E5410()
	top := m.Capacity(m.TopLevel())
	if top != 8 {
		t.Fatalf("top capacity = %v, want 8 reference cores", top)
	}
	low := m.Capacity(0)
	want := 8 * 2.0 / 2.3
	if math.Abs(low-want) > 1e-9 {
		t.Fatalf("low capacity = %v, want %v", low, want)
	}
	if low >= top {
		t.Fatal("lower frequency must offer less capacity")
	}
}

func TestPowerEndpoints(t *testing.T) {
	m := E5410()
	for idx, l := range m.Levels {
		if got := m.Power(idx, 0); got != l.Idle {
			t.Errorf("level %d idle power = %v, want %v", idx, got, l.Idle)
		}
		if got := m.Power(idx, m.Capacity(idx)); math.Abs(float64(got-l.Full)) > 1e-9 {
			t.Errorf("level %d full power = %v, want %v", idx, got, l.Full)
		}
	}
}

func TestPowerMonotoneInLoad(t *testing.T) {
	m := E5410()
	f := func(a, b float64) bool {
		la := math.Abs(math.Mod(a, 8))
		lb := math.Abs(math.Mod(b, 8))
		if la > lb {
			la, lb = lb, la
		}
		for idx := range m.Levels {
			if m.Power(idx, la) > m.Power(idx, lb)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerSaturates(t *testing.T) {
	m := E5410()
	over := m.Power(m.TopLevel(), 100)
	full := m.Levels[m.TopLevel()].Full
	if over != full {
		t.Fatalf("overloaded power = %v, want saturation at %v", over, full)
	}
	neg := m.Power(0, -3)
	if neg != m.Levels[0].Idle {
		t.Fatalf("negative load power = %v, want idle %v", neg, m.Levels[0].Idle)
	}
}

func TestLowerFrequencySavesPowerAtSameLoad(t *testing.T) {
	// The DVFS rationale: for any load both levels can host, the lower level
	// must draw no more power.
	m := E5410()
	for load := 0.0; load <= m.Capacity(0); load += 0.5 {
		if m.Power(0, load) > m.Power(1, load) {
			t.Fatalf("load %v: low level draws %v > high level %v", load, m.Power(0, load), m.Power(1, load))
		}
	}
}

func TestLowestLevelFor(t *testing.T) {
	m := E5410()
	tests := []struct {
		load     float64
		want     int
		feasible bool
	}{
		{0, 0, true},
		{5, 0, true},
		{6.95, 0, true}, // 8*2/2.3 = 6.956..
		{7.2, 1, true},
		{8, 1, true},
		{8.5, 1, false},
	}
	for _, tt := range tests {
		got, ok := m.LowestLevelFor(tt.load)
		if got != tt.want || ok != tt.feasible {
			t.Errorf("LowestLevelFor(%v) = (%d,%v), want (%d,%v)", tt.load, got, ok, tt.want, tt.feasible)
		}
	}
}

func TestEnergyFor(t *testing.T) {
	m := E5410()
	e := m.EnergyFor(m.TopLevel(), 0, 3600)
	want := units.Energy(165 * 3600)
	if math.Abs(float64(e-want)) > 1e-6 {
		t.Fatalf("idle hour energy = %v, want %v", e, want)
	}
}

func TestMarginalAndIdleShare(t *testing.T) {
	m := E5410()
	// (265-165)/8 = 12.5 W per reference core.
	if got := m.MarginalPower(); math.Abs(float64(got)-12.5) > 1e-9 {
		t.Fatalf("marginal power = %v, want 12.5 W", got)
	}
	// 165/8 = 20.625 W
	if got := m.IdleShare(); math.Abs(float64(got)-20.625) > 1e-9 {
		t.Fatalf("idle share = %v, want 20.625 W", got)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	tests := []struct {
		name string
		m    ServerModel
	}{
		{"no cores", ServerModel{Name: "x", Cores: 0, Levels: []FreqLevel{{Freq: 1, Idle: 1, Full: 2}}}},
		{"no levels", ServerModel{Name: "x", Cores: 1}},
		{"unsorted", ServerModel{Name: "x", Cores: 1, Levels: []FreqLevel{{Freq: 2, Idle: 1, Full: 2}, {Freq: 1, Idle: 1, Full: 2}}}},
		{"full<idle", ServerModel{Name: "x", Cores: 1, Levels: []FreqLevel{{Freq: 1, Idle: 5, Full: 2}}}},
		{"zero freq", ServerModel{Name: "x", Cores: 1, Levels: []FreqLevel{{Freq: 0, Idle: 1, Full: 2}}}},
	}
	for _, tt := range tests {
		if err := tt.m.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
		}
	}
}
