// Package power models servers: their compute capacity at each DVFS
// frequency level and the electrical power they draw as a function of
// utilization.
//
// The paper targets an Intel Xeon E5410 server with 8 cores and two
// frequency levels (2.0 GHz and 2.3 GHz) and uses the virtualized-server
// power model of Pedram et al. (ICPPW 2010), which is linear in CPU
// utilization between an idle floor and a full-load ceiling, with both
// endpoints depending on the operating frequency. We reproduce that shape
// with E5410-class constants.
//
// Utilization convention: one VM demands u(t) in [0,1] of one *reference
// core*, i.e. a core at the top frequency. A server running at frequency f
// offers Cores*f/fmax reference cores of capacity, so lowering the frequency
// trades capacity for a lower power envelope — the DVFS knob exploited by
// the local controller.
package power

import (
	"fmt"
	"sort"

	"geovmp/internal/units"
)

// FreqLevel is one DVFS operating point of a server.
type FreqLevel struct {
	Freq units.Frequency // core clock
	Idle units.Power     // power at zero utilization
	Full units.Power     // power at full utilization of this level's capacity
}

// ServerModel describes a homogeneous server type.
type ServerModel struct {
	Name   string
	Cores  int
	Levels []FreqLevel // sorted by ascending frequency; last entry is fmax
}

// E5410 returns the paper's server: Intel Xeon E5410, 8 cores, two frequency
// levels. The power constants follow the linear Pedram-style model with
// published E5410-class idle/full draws (the exact testbed numbers are not
// in the paper; the substitution is recorded in DESIGN.md).
func E5410() *ServerModel {
	return &ServerModel{
		Name:  "Intel Xeon E5410",
		Cores: 8,
		Levels: []FreqLevel{
			{Freq: 2.0 * units.Gigahertz, Idle: 150 * units.Watt, Full: 230 * units.Watt},
			{Freq: 2.3 * units.Gigahertz, Idle: 165 * units.Watt, Full: 265 * units.Watt},
		},
	}
}

// Validate checks structural invariants of the model.
func (m *ServerModel) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("power: %s: non-positive core count %d", m.Name, m.Cores)
	}
	if len(m.Levels) == 0 {
		return fmt.Errorf("power: %s: no frequency levels", m.Name)
	}
	if !sort.SliceIsSorted(m.Levels, func(i, j int) bool {
		return m.Levels[i].Freq < m.Levels[j].Freq
	}) {
		return fmt.Errorf("power: %s: levels not sorted by frequency", m.Name)
	}
	for i, l := range m.Levels {
		if l.Freq <= 0 {
			return fmt.Errorf("power: %s: level %d has non-positive frequency", m.Name, i)
		}
		if l.Idle < 0 || l.Full < l.Idle {
			return fmt.Errorf("power: %s: level %d has inconsistent power range", m.Name, i)
		}
	}
	return nil
}

// MaxFreq returns the top frequency of the model.
func (m *ServerModel) MaxFreq() units.Frequency {
	return m.Levels[len(m.Levels)-1].Freq
}

// TopLevel returns the index of the highest frequency level.
func (m *ServerModel) TopLevel() int { return len(m.Levels) - 1 }

// Capacity returns the compute capacity, in reference cores, that the server
// offers at frequency level idx.
func (m *ServerModel) Capacity(idx int) float64 {
	l := m.Levels[idx]
	return float64(m.Cores) * float64(l.Freq) / float64(m.MaxFreq())
}

// MaxCapacity returns the capacity at the top frequency (= Cores).
func (m *ServerModel) MaxCapacity() float64 { return float64(m.Cores) }

// Power returns the electrical power drawn at frequency level idx with load
// reference cores in use. Load saturates at the level's capacity; negative
// loads count as zero.
func (m *ServerModel) Power(idx int, load float64) units.Power {
	l := m.Levels[idx]
	cap := m.Capacity(idx)
	u := units.Clamp(load/cap, 0, 1)
	return l.Idle + units.Power(u*float64(l.Full-l.Idle))
}

// LowestLevelFor returns the lowest frequency level whose capacity covers
// load, and whether any level does. The local controller uses it to pick the
// cheapest DVFS point after packing a server.
func (m *ServerModel) LowestLevelFor(load float64) (int, bool) {
	for i := range m.Levels {
		if m.Capacity(i) >= load-1e-9 {
			return i, true
		}
	}
	return m.TopLevel(), false
}

// EnergyFor returns the energy consumed running at level idx with constant
// load for the given number of seconds.
func (m *ServerModel) EnergyFor(idx int, load, seconds float64) units.Energy {
	return m.Power(idx, load).ForDuration(seconds)
}

// MarginalPower returns the incremental power cost of one reference core of
// load at the top frequency level. Placement heuristics use it to convert a
// VM's CPU demand into a power estimate without knowing its final server.
func (m *ServerModel) MarginalPower() units.Power {
	top := m.Levels[m.TopLevel()]
	return units.Power(float64(top.Full-top.Idle) / m.MaxCapacity())
}

// IdleShare returns the idle power amortized over the server's capacity at
// the top level, in watts per reference core. Together with MarginalPower it
// yields the "fully loaded cost" of a core used by cap-sizing heuristics.
func (m *ServerModel) IdleShare() units.Power {
	top := m.Levels[m.TopLevel()]
	return units.Power(float64(top.Idle) / m.MaxCapacity())
}
