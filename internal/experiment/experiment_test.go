package experiment

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
)

func testSpec(name string, seed uint64) config.Spec {
	return config.Spec{
		Name:        name,
		Scale:       0.01,
		Seed:        seed,
		Horizon:     timeutil.Hours(6),
		FineStepSec: 300,
	}
}

func testPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
		{Name: "Ener-aware", New: func(uint64) policy.Policy { return policy.EnerAware{} }},
	}
}

func testGrid(parallelism int) Grid {
	return Grid{
		Scenarios: []config.Spec{
			testSpec("a", 5),
			testSpec("b", 11),
		},
		Policies:    testPolicies(),
		SeedOffsets: []uint64{0, 1, 2},
		Parallelism: parallelism,
	}
}

// TestParallelMatchesSerial is the engine's core guarantee: a sweep's Set
// is byte-identical (JSON) and deeply equal no matter how many workers ran
// it, and cells come back in grid order.
func TestParallelMatchesSerial(t *testing.T) {
	serial, err := Run(context.Background(), testGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), testGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sweep differs from serial sweep")
	}
	js, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatal("JSON export differs between serial and parallel sweeps")
	}

	// Grid order: scenario-major, then policy, then seed offset.
	wantScenario := []string{"a", "a", "a", "a", "a", "a", "b", "b", "b", "b", "b", "b"}
	wantPolicy := []string{"Proposed", "Proposed", "Proposed", "Ener-aware", "Ener-aware", "Ener-aware"}
	wantSeedA := []uint64{5, 6, 7}
	if len(serial.Cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(serial.Cells))
	}
	for i, c := range serial.Cells {
		if c.Scenario != wantScenario[i] {
			t.Errorf("cell %d scenario = %q, want %q", i, c.Scenario, wantScenario[i])
		}
		if i < 6 && c.Policy != wantPolicy[i] {
			t.Errorf("cell %d policy = %q, want %q", i, c.Policy, wantPolicy[i])
		}
		if i < 3 && c.Seed != wantSeedA[i] {
			t.Errorf("cell %d seed = %d, want %d", i, c.Seed, wantSeedA[i])
		}
		if c.Result == nil {
			t.Errorf("cell %d has no result", i)
		}
	}
}

// TestSeedOffsetsDiversify asserts different offsets actually change the
// workload.
func TestSeedOffsetsDiversify(t *testing.T) {
	set, err := Run(context.Background(), testGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	a0 := set.At(0, 1, 0).Result
	a1 := set.At(0, 1, 1).Result
	if a0.OpCost == a1.OpCost && a0.TotalEnergy == a1.TotalEnergy {
		t.Fatal("seed offset had no effect")
	}
}

// TestCancellation cancels mid-sweep and expects a prompt partial-error
// return: the Set covers the full grid, completed cells keep results, and
// the remaining cells carry context.Canceled.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := testGrid(1)
	g.Progress = func(p Progress) {
		if p.Done == 1 {
			cancel()
		}
	}
	set, err := Run(ctx, g)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if set == nil || len(set.Cells) != 12 {
		t.Fatalf("partial set missing or wrong size")
	}
	completed, cancelled := 0, 0
	for i := range set.Cells {
		switch {
		case set.Cells[i].Result != nil:
			completed++
		case errors.Is(set.Cells[i].Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("cell %d has neither result nor cancellation error", i)
		}
	}
	if completed == 0 {
		t.Error("no cell completed before cancellation")
	}
	if cancelled == 0 {
		t.Error("no cell was cancelled")
	}
}

// TestGroupingAndAggregate exercises the Set accessors.
func TestGroupingAndAggregate(t *testing.T) {
	set, err := Run(context.Background(), testGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	res := set.Results("a", "Proposed")
	if len(res) != 3 {
		t.Fatalf("Results = %d, want 3 (one per seed)", len(res))
	}
	runs := set.SeedRuns("b")
	if len(runs) != 3 || len(runs[0]) != 2 {
		t.Fatalf("SeedRuns shape = %dx%d, want 3x2", len(runs), len(runs[0]))
	}
	byPolicy := set.Group(func(c *Cell) string { return c.Policy })
	if len(byPolicy["Proposed"]) != 6 {
		t.Fatalf("group Proposed = %d cells, want 6", len(byPolicy["Proposed"]))
	}
	fig := set.Aggregate("a")
	if len(fig.Rows) != 2 {
		t.Fatalf("aggregate rows = %d, want 2", len(fig.Rows))
	}
}

// TestProgressReporting asserts every cell produces exactly one progress
// event and Done reaches Total.
func TestProgressReporting(t *testing.T) {
	g := testGrid(3)
	var events int
	var lastDone int
	g.Progress = func(p Progress) {
		events++
		lastDone = p.Done
		if p.Total != 12 {
			t.Errorf("total = %d, want 12", p.Total)
		}
		if p.Cell == nil || p.Cell.Result == nil {
			t.Error("progress cell missing result")
		}
	}
	if _, err := Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if events != 12 || lastDone != 12 {
		t.Fatalf("events = %d, lastDone = %d, want 12/12", events, lastDone)
	}
}
