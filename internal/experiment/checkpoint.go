package experiment

import (
	"encoding/json"
	"fmt"
	"os"
)

// Checkpoint is a parsed set of completed cell rows — the resume source a
// Grid preloads through Grid.Resume. Both a Set.CheckpointJSON document
// (completed cells only) and a full Set.JSON export parse as checkpoints:
// the schema is the same, so "resume from a checkpoint" and "resume from a
// finished run's output" are the same operation.
//
// Rows are keyed by (scenario, policy, seed). Policy names may repeat in a
// grid (ablation grids construct the same controller under one name with
// different knobs), so each key holds its rows in document order and take
// consumes them FIFO — matching NewSet's grid-index-order preload, which is
// the order the writer emitted them in.
type Checkpoint struct {
	rows map[ckKey][]*CellData
	// Loaded counts the usable rows parsed (rows carrying an error are
	// dropped — a failed cell must be recomputed, not resumed).
	Loaded int
	// Skipped counts rows dropped because they recorded an error.
	Skipped int
}

type ckKey struct {
	scenario string
	policy   string
	seed     uint64
}

// ParseCheckpoint parses a checkpoint or ResultSet JSON document.
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	var doc struct {
		Cells []CellData `json:"cells"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("experiment: parse checkpoint: %w", err)
	}
	ck := &Checkpoint{rows: make(map[ckKey][]*CellData, len(doc.Cells))}
	for i := range doc.Cells {
		row := &doc.Cells[i]
		if row.Error != "" {
			ck.Skipped++
			continue
		}
		k := ckKey{row.Scenario, row.Policy, row.Seed}
		ck.rows[k] = append(ck.rows[k], row)
		ck.Loaded++
	}
	return ck, nil
}

// LoadCheckpoint reads and parses a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: load checkpoint: %w", err)
	}
	return ParseCheckpoint(data)
}

// take pops the next unclaimed row for the given cell identity, or nil when
// the checkpoint has none (left). Rows are consumed: a checkpoint with one
// row for an identity resumes exactly one cell of that identity.
func (ck *Checkpoint) take(scenario, policy string, seed uint64) *CellData {
	k := ckKey{scenario, policy, seed}
	rows := ck.rows[k]
	if len(rows) == 0 {
		return nil
	}
	row := rows[0]
	ck.rows[k] = rows[1:]
	return row
}
