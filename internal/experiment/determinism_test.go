package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
)

// TestIntraCellShardingDeterministic is the worker-budget guarantee of the
// sharded global phase: a narrow grid — few cells, a fleet big enough to
// take the sampled embedding path — produces byte-identical ResultSet JSON
// at Parallelism 1 (all shards serial), 2, and GOMAXPROCS+6 (cells plus a
// wide intra-cell budget). With more workers than cells, the surplus funds
// the cells' internal shards (embedding force passes, k-means distances,
// fine-plan evaluation, workload compilation), so this exercises every
// sharded code path against the serial baseline.
func TestIntraCellShardingDeterministic(t *testing.T) {
	spec, err := config.Preset("geo5dc")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.02 // ~630 VMs: above the embedding's exact threshold
	spec.Seed = 17
	spec.Horizon = timeutil.Hours(3)
	spec.FineStepSec = 600
	grid := func(parallelism int) Grid {
		return Grid{
			Scenarios: []config.Spec{spec},
			Policies: []PolicySpec{
				{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
			},
			SeedOffsets: []uint64{0, 1},
			Parallelism: parallelism,
		}
	}
	base, err := Run(context.Background(), grid(1))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, runtime.GOMAXPROCS(0) + 6} {
		set, err := Run(context.Background(), grid(p))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, set) {
			t.Fatalf("Parallelism=%d: ResultSet differs from serial run", p)
		}
		js, err := set.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, js) {
			t.Fatalf("Parallelism=%d: JSON export differs from serial run", p)
		}
	}
}
