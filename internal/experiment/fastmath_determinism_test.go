package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
)

// TestFastMathDeterministic extends the worker-budget guarantee to the
// quantized fast path: with FastMath on — frozen-peer sampled embedding,
// cached force rows, quantized correlation kernel — the same narrow grid
// must still produce byte-identical ResultSet JSON at Parallelism 1, 2 and
// GOMAXPROCS+6. Fast mode is approximate versus exact, but it is required
// to be exactly reproducible at any worker count; the CI race job runs
// this under -race.
func TestFastMathDeterministic(t *testing.T) {
	spec, err := config.Preset("geo5dc")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.02 // ~630 VMs: the sampled fast path plus cached rows
	spec.Seed = 17
	spec.Horizon = timeutil.Hours(3)
	spec.FineStepSec = 600
	spec.FastMath = true
	grid := func(parallelism int) Grid {
		return Grid{
			Scenarios: []config.Spec{spec},
			Policies: []PolicySpec{
				{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
			},
			SeedOffsets: []uint64{0, 1},
			Parallelism: parallelism,
		}
	}
	base, err := Run(context.Background(), grid(1))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, runtime.GOMAXPROCS(0) + 6} {
		set, err := Run(context.Background(), grid(p))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, set) {
			t.Fatalf("Parallelism=%d: fast-math ResultSet differs from serial run", p)
		}
		js, err := set.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, js) {
			t.Fatalf("Parallelism=%d: fast-math JSON export differs from serial run", p)
		}
	}
}
