package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
)

func ckTestGrid(t *testing.T) Grid {
	t.Helper()
	spec, err := config.Preset("paper-geo3dc")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	spec.Seed = 7
	spec.Horizon = timeutil.Hours(4)
	spec.FineStepSec = 300
	return Grid{
		Scenarios: []config.Spec{spec},
		Policies: []PolicySpec{
			{Name: "Ener-aware", New: func(uint64) policy.Policy { return policy.EnerAware{} }},
			{Name: "Pri-aware", New: func(uint64) policy.Policy { return policy.PriAware{} }},
		},
		SeedOffsets: []uint64{0, 1},
	}
}

// TestResumeSkipsRecompute: a fully-checkpointed grid replays without a
// single workload compilation, and its export is byte-identical.
func TestResumeSkipsRecompute(t *testing.T) {
	g := ckTestGrid(t)
	set, err := Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	ckBytes, err := set.CheckpointJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckBytes, want) {
		t.Fatalf("completed set's CheckpointJSON differs from JSON")
	}

	ck, err := ParseCheckpoint(ckBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Loaded != 4 || ck.Skipped != 0 {
		t.Fatalf("checkpoint loaded=%d skipped=%d, want 4/0", ck.Loaded, ck.Skipped)
	}

	g2 := g
	g2.Resume = ck
	before := CompileCount()
	set2, err := Run(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	if delta := CompileCount() - before; delta != 0 {
		t.Fatalf("resumed run compiled %d columns, want 0", delta)
	}
	got, err := set2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed export differs from original")
	}
}

// TestResumePartialRecomputesOnlyMissing: rows absent from the checkpoint
// are recomputed; present ones are preloaded verbatim.
func TestResumePartialRecomputesOnlyMissing(t *testing.T) {
	g := ckTestGrid(t)
	set, err := Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Keep only seed-offset-0 rows: drop every row whose seed is 8 (base
	// 7 + offset 1).
	ckBytes, err := set.CheckpointJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(ckBytes, &doc); err != nil {
		t.Fatal(err)
	}
	cells := doc["cells"].([]any)
	var kept []any
	for _, c := range cells {
		if c.(map[string]any)["seed"].(float64) == 7 {
			kept = append(kept, c)
		}
	}
	doc["cells"] = kept
	partial, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ParseCheckpoint(partial)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Loaded != 2 {
		t.Fatalf("partial checkpoint loaded %d rows, want 2", ck.Loaded)
	}

	g2 := g
	g2.Resume = ck
	set2, err := Run(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := set2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("partially-resumed export differs from original")
	}
	// The preloaded cells carry Data, the recomputed ones live Results.
	for i := range set2.Cells {
		c := &set2.Cells[i]
		switch {
		case c.Seed == 7 && c.Data == nil:
			t.Fatalf("cell %d (seed 7) was not preloaded", i)
		case c.Seed == 8 && c.Result == nil:
			t.Fatalf("cell %d (seed 8) was not recomputed", i)
		}
	}
}

// TestCheckpointSkipsErrorRows: rows that recorded an error must be
// recomputed, not resumed.
func TestCheckpointSkipsErrorRows(t *testing.T) {
	doc := []byte(`{"scenarios":["s"],"policies":["p"],"seed_offsets":[0],
		"cells":[{"scenario":"s","policy":"p","seed":1,"error":"boom"},
		         {"scenario":"s","policy":"p","seed":2,"cost_eur":1}]}`)
	ck, err := ParseCheckpoint(doc)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Loaded != 1 || ck.Skipped != 1 {
		t.Fatalf("loaded=%d skipped=%d, want 1/1", ck.Loaded, ck.Skipped)
	}
	if row := ck.take("s", "p", 1); row != nil {
		t.Fatalf("error row was resumable")
	}
	if row := ck.take("s", "p", 2); row == nil {
		t.Fatalf("good row was not resumable")
	}
	if row := ck.take("s", "p", 2); row != nil {
		t.Fatalf("row resumed twice")
	}
}

// TestSpecFingerprint: stable across calls, sensitive to every identity
// input, and undefined for injected workloads.
func TestSpecFingerprint(t *testing.T) {
	spec, err := config.Preset("paper-geo3dc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := SpecFingerprint(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpecFingerprint(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fingerprint not stable: %q vs %q", a, b)
	}
	c, err := SpecFingerprint(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("fingerprint ignores the seed")
	}
	spec2 := spec
	spec2.Scale = 0.123
	d, err := SpecFingerprint(spec2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatalf("fingerprint ignores the spec")
	}

	spec3 := spec
	spec3.Workload = struct{ trace.Source }{}
	if _, err := SpecFingerprint(spec3, 7); err == nil {
		t.Fatalf("fingerprint accepted an injected workload")
	}
}

// TestColumnFingerprintMatchesSpec: CompileColumn stamps the column with
// the spec fingerprint.
func TestColumnFingerprintMatchesSpec(t *testing.T) {
	spec, err := config.Preset("paper-geo3dc")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	spec.Horizon = timeutil.Hours(2)
	spec.FineStepSec = 300
	want, err := SpecFingerprint(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	col, err := CompileColumn(spec, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if col.Fingerprint() != want {
		t.Fatalf("column fingerprint %q != spec fingerprint %q", col.Fingerprint(), want)
	}
}
