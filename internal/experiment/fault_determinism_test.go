package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
)

// TestFaultEngineDeterministic extends the sharding guarantee to the fault
// path: a geo5dc-faulty grid — compiled outage schedule, per-slot capacity
// scaling, forced evacuation through migrate.Run, repair traffic into the
// volume matrix, downtime accrual — must produce byte-identical ResultSet
// JSON at Parallelism 1, 2 and GOMAXPROCS+6. The CI race job runs this
// package, so the fault hooks also get the race detector.
func TestFaultEngineDeterministic(t *testing.T) {
	spec, err := config.Preset("geo5dc-faulty")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.02
	spec.Seed = 29
	spec.Horizon = timeutil.Hours(16) // covers the reference DC outage and the degraded tail
	spec.FineStepSec = 600
	grid := func(parallelism int) Grid {
		return Grid{
			Scenarios: []config.Spec{spec},
			Policies: []PolicySpec{
				{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
				{Name: "Ener-aware", New: func(uint64) policy.Policy { return policy.EnerAware{} }},
			},
			SeedOffsets: []uint64{0, 1},
			Parallelism: parallelism,
		}
	}
	base, err := Run(context.Background(), grid(1))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The serial baseline must itself exercise the fault machinery.
	if r := base.At(0, 0, 0).Result; r == nil ||
		r.DataLossProb <= 0 || r.RepairBytes <= 0 || r.Evacuations+r.StrandedVMSlots == 0 {
		t.Fatalf("baseline cell does not exercise the fault path: %+v", base.At(0, 0, 0))
	}
	for _, p := range []int{2, runtime.GOMAXPROCS(0) + 6} {
		set, err := Run(context.Background(), grid(p))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, set) {
			t.Fatalf("Parallelism=%d: faulty ResultSet differs from serial run", p)
		}
		js, err := set.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, js) {
			t.Fatalf("Parallelism=%d: JSON export differs from serial run", p)
		}
	}
}
