package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

// TestEpochEngineDeterministic extends the intra-cell sharding guarantee to
// the rolling-horizon engine: a geo5dc-dynamic grid — epoch boundaries,
// engine-side migrate.Run revision under a move budget, migration
// energy/downtime charging, per-epoch stats — must produce byte-identical
// ResultSet JSON at Parallelism 1, 2 and GOMAXPROCS+6. The CI race job runs
// this package, so the engine's sharded passes also get the race detector.
func TestEpochEngineDeterministic(t *testing.T) {
	spec, err := config.Preset("geo5dc-dynamic")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.02 // above the embedding's exact threshold, like the sharding test
	spec.Seed = 23
	spec.Horizon = timeutil.Hours(4) // the preset's 4 epochs: one slot each
	spec.FineStepSec = 600
	spec.Migration = sim.MigrationBudget{MaxMovesPerEpoch: 40}
	grid := func(parallelism int) Grid {
		return Grid{
			Scenarios: []config.Spec{spec},
			Policies: []PolicySpec{
				{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
				{Name: "Ener-aware", New: func(uint64) policy.Policy { return policy.EnerAware{} }},
			},
			SeedOffsets: []uint64{0, 1},
			Parallelism: parallelism,
		}
	}
	base, err := Run(context.Background(), grid(1))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The serial baseline must itself exercise the engine.
	if r := base.At(0, 0, 0).Result; r == nil || len(r.Epochs) != 4 {
		t.Fatalf("baseline cell carries no epoch breakdown: %+v", base.At(0, 0, 0))
	}
	for _, p := range []int{2, runtime.GOMAXPROCS(0) + 6} {
		set, err := Run(context.Background(), grid(p))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, set) {
			t.Fatalf("Parallelism=%d: rolling-horizon ResultSet differs from serial run", p)
		}
		js, err := set.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, js) {
			t.Fatalf("Parallelism=%d: JSON export differs from serial run", p)
		}
	}
}
