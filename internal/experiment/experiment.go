// Package experiment is the sweep engine behind the public geovmp.Experiment
// API: it executes a grid of scenarios x policies x seeds on a
// context-cancellable worker pool and collects the outcomes into a
// structured, deterministically-ordered Set.
//
// Every grid cell is hermetic — a fresh scenario replica (config.Build) and
// a fresh policy instance (PolicySpec.New) per cell — so cells can run on
// any schedule without sharing mutable state, and the result of a sweep is
// byte-identical whether it ran on one worker or sixteen.
//
// The workload is the exception, by design: the paper replays *the same*
// workload for every policy so metric differences are attributable to
// placement alone. The engine therefore materializes each scenario x seed's
// workload exactly once — compiled into immutable flat arrays
// (config.CompileWorkload) the first time any of that column's cells runs —
// and shares the read-only result across the column's policy runs. Cells
// still clone all mutable state: battery banks, forecasters, green
// controllers and the network RNG are rebuilt per cell.
package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"geovmp/internal/config"
	"geovmp/internal/metrics"
	"geovmp/internal/par"
	"geovmp/internal/policy"
	"geovmp/internal/report"
	"geovmp/internal/sim"
	"geovmp/internal/trace"
)

// PolicySpec names a policy and constructs a fresh instance per grid cell.
// Fresh construction matters: the proposed controller carries per-slot
// state, so an instance must never be shared between runs.
type PolicySpec struct {
	Name string
	New  func(seed uint64) policy.Policy
	// Ref, when non-nil, is the policy's serializable form: a distributed
	// sweep ships Ref over the wire instead of New (a closure cannot
	// travel), and the worker reconstructs an equivalent instance from it.
	// In-process runs ignore it. A PolicySpec without a Ref cannot be
	// scheduled through a dist coordinator.
	Ref *PolicyRef
}

// PolicyRef is the wire form of a policy constructor: a registered kind
// plus its scalar knobs. The distributed runner's worker side resolves it
// through its kind registry (internal/dist), yielding a constructor that
// builds the same policy New would — required for bit-identical merged
// results.
type PolicyRef struct {
	// Kind names a registered constructor family: "proposed", "ener",
	// "pri", "net", "paretosearch".
	Kind string `json:"kind"`
	// Alpha is the proposed controller's Eq. 5 energy-performance weight
	// (ignored by kinds without the knob).
	Alpha float64 `json:"alpha,omitempty"`
	// NoEmbedding disables the proposed controller's force-directed phase
	// (ablation A2).
	NoEmbedding bool `json:"no_embedding,omitempty"`
}

// Progress is one completion event of a running sweep.
type Progress struct {
	Done  int // cells finished so far (including failed ones)
	Total int // total cells in the grid
	Cell  *Cell
}

// Grid declares a sweep: every scenario is run under every policy for every
// seed offset.
type Grid struct {
	// Scenarios are the scenario specs, each carrying its own name and
	// base seed.
	Scenarios []config.Spec
	// Policies are the policy factories.
	Policies []PolicySpec
	// SeedOffsets are added to each scenario's base seed; empty means the
	// single offset 0.
	SeedOffsets []uint64
	// Parallelism is the sweep's total worker budget; <= 0 selects
	// GOMAXPROCS. It caps concurrently running cells AND the extra
	// goroutines those cells' intra-cell sharded passes (embedding,
	// clustering, fine-plan evaluation, workload compilation) may borrow:
	// min(Parallelism, cells) goroutines run cells, the remainder seeds a
	// shared par.Budget, and retiring cell workers donate their slot back —
	// so a narrow grid (few scenario x policy x seed cells, big fleets)
	// still saturates the budget, and cells x shards never oversubscribe
	// it. Results are byte-identical at any value.
	Parallelism int
	// Columns, when non-nil, supplies pre-compiled per-scenario x seed
	// state (CompileColumn): a column it returns non-nil for skips the
	// engine's own lazy compile and is NOT released when the column's
	// cells finish — the caller owns it and may hand it to further Runs.
	// This is how multi-wave drivers (the adaptive frontier) evaluate many
	// grids over one scenario x seed while compiling its workload and
	// environment exactly once.
	Columns func(scenario string, seed uint64) *Column
	// Progress, when non-nil, is called after each cell completes. Calls
	// are serialized but arrive in completion order, not grid order.
	Progress func(Progress)
	// Resume, when non-nil, preloads cells completed by an earlier sweep
	// (a checkpoint or ResultSet JSON export, see LoadCheckpoint): a cell
	// whose (scenario, policy, seed) identity matches a checkpointed row
	// carries that row as its Data instead of being recomputed. Because
	// the engine is deterministic, the merged export is byte-identical to
	// a from-scratch run.
	Resume *Checkpoint
}

// Cell is one (scenario, policy, seed) evaluation of the grid.
type Cell struct {
	Index    int    `json:"-"`
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"` // absolute seed: scenario base + offset
	Result   *sim.Result
	Err      error
	// Data is the cell's flattened export row when the outcome arrived
	// already flattened — from a resume checkpoint or a remote dist
	// worker — instead of as a live Result. JSON export uses it verbatim;
	// Result-based accessors (Results, Aggregate) skip such cells.
	Data *CellData
}

// Done reports whether the cell has an outcome: a live Result, a
// preloaded/remote Data row, or a recorded error.
func (c *Cell) Done() bool { return c.Result != nil || c.Data != nil || c.Err != nil }

// Set is the structured outcome of a sweep: cell identities are filled for
// the whole grid even when a run was cancelled, so partial sets stay
// addressable. Cells are in deterministic grid order: scenario-major, then
// policy, then seed offset.
type Set struct {
	Scenarios   []string
	Policies    []string
	SeedOffsets []uint64
	Cells       []Cell
}

// grid index of (scenario si, policy pi, seed offset ki).
func (s *Set) index(si, pi, ki int) int {
	return (si*len(s.Policies)+pi)*len(s.SeedOffsets) + ki
}

// At returns the cell at scenario index si, policy index pi and seed offset
// index ki.
func (s *Set) At(si, pi, ki int) *Cell { return &s.Cells[s.index(si, pi, ki)] }

// scenarioIndex returns the index of the named scenario, or -1.
func (s *Set) scenarioIndex(name string) int {
	for i, n := range s.Scenarios {
		if n == name {
			return i
		}
	}
	return -1
}

// Results returns the completed results for one scenario and policy across
// all seeds, in seed-offset order. Failed or cancelled cells are skipped.
// Policy names may repeat in a grid (the deprecated shims rely on
// positional access); name lookup resolves to the first match — use At for
// positional access when names collide.
func (s *Set) Results(scenario, policyName string) []*sim.Result {
	si := s.scenarioIndex(scenario)
	if si < 0 {
		return nil
	}
	var out []*sim.Result
	for pi, p := range s.Policies {
		if p != policyName {
			continue
		}
		for ki := range s.SeedOffsets {
			if c := s.At(si, pi, ki); c.Result != nil {
				out = append(out, c.Result)
			}
		}
		break
	}
	return out
}

// SeedRuns returns one scenario's results in the legacy [][]*Result shape —
// one row per seed offset, one column per policy — ready for
// report.Aggregate and report.All. Rows with missing cells keep nil holes
// removed; a fully-failed row is dropped.
func (s *Set) SeedRuns(scenario string) [][]*sim.Result {
	si := s.scenarioIndex(scenario)
	if si < 0 {
		return nil
	}
	var runs [][]*sim.Result
	for ki := range s.SeedOffsets {
		var row []*sim.Result
		for pi := range s.Policies {
			if c := s.At(si, pi, ki); c.Result != nil {
				row = append(row, c.Result)
			}
		}
		if len(row) > 0 {
			runs = append(runs, row)
		}
	}
	return runs
}

// Group buckets the completed cells by an arbitrary key — for example by
// scenario, by policy, or by scenario+policy.
func (s *Set) Group(key func(*Cell) string) map[string][]*Cell {
	out := map[string][]*Cell{}
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Result == nil {
			continue
		}
		k := key(c)
		out[k] = append(out[k], c)
	}
	return out
}

// Aggregate renders one scenario's mean +/- std per policy and headline
// metric across seeds. Rows are keyed by the grid's policy names (one row
// per PolicySpec), so variant grids — several specs constructing the same
// underlying controller under different names — aggregate per variant.
func (s *Set) Aggregate(scenario string) *report.Figure {
	f := &report.Figure{
		ID:      "aggregate",
		Title:   fmt.Sprintf("%s: Multi-seed aggregate over %d seeds", scenario, len(s.SeedOffsets)),
		Headers: []string{"method", "cost mean (EUR)", "cost std", "energy mean (GJ)", "energy std", "worst resp mean (s)", "worst resp std"},
	}
	si := s.scenarioIndex(scenario)
	if si < 0 {
		return f
	}
	for pi, name := range s.Policies {
		var cost, energy, resp metrics.Summary
		for ki := range s.SeedOffsets {
			c := s.At(si, pi, ki)
			// Aggregating from the flattened rows keeps resumed and
			// distributed cells (Data, no live Result) in the statistics;
			// for live cells Export flattens the identical float64 values.
			if c.Err != nil || !c.Done() {
				continue
			}
			row := c.Export()
			cost.Add(row.CostEUR)
			energy.Add(row.EnergyGJ)
			resp.Add(row.WorstRespS)
		}
		if cost.N() == 0 {
			continue
		}
		f.Rows = append(f.Rows, []string{
			name,
			fmt.Sprintf("%.2f", cost.Mean()), fmt.Sprintf("%.2f", cost.Std()),
			fmt.Sprintf("%.4f", energy.Mean()), fmt.Sprintf("%.4f", energy.Std()),
			fmt.Sprintf("%.2f", resp.Mean()), fmt.Sprintf("%.2f", resp.Std()),
		})
	}
	return f
}

// Err returns nil when every cell completed, and otherwise an error
// summarizing how many cells failed (first failure wrapped).
func (s *Set) Err() error {
	var first error
	failed := 0
	for i := range s.Cells {
		if s.Cells[i].Err != nil {
			failed++
			if first == nil {
				first = s.Cells[i].Err
			}
		}
	}
	if failed == 0 {
		return nil
	}
	return fmt.Errorf("experiment: %d/%d cells failed: %w", failed, len(s.Cells), first)
}

// CellData is the stable flattened export schema: one row per cell with the
// headline metrics. Rolling-horizon cells additionally carry the charged
// migration overhead and the per-epoch breakdown; static cells omit those
// fields, keeping the pre-epoch encoding byte-identical. It doubles as the
// wire and checkpoint row: dist workers ship it back to the coordinator,
// and LoadCheckpoint reads it back, so a merged or resumed export is built
// from exactly the bytes a single-process export would produce.
type CellData struct {
	Scenario          string      `json:"scenario"`
	Policy            string      `json:"policy"`
	Seed              uint64      `json:"seed"`
	Error             string      `json:"error,omitempty"`
	CostEUR           float64     `json:"cost_eur"`
	EnergyGJ          float64     `json:"energy_gj"`
	WorstRespS        float64     `json:"worst_resp_s"`
	MeanRespS         float64     `json:"mean_resp_s"`
	Migrations        int         `json:"migrations"`
	MigRejected       int         `json:"mig_rejected"`
	MeanActiveServers float64     `json:"mean_active_servers"`
	GridKWh           float64     `json:"grid_kwh"`
	RenewableUsedKWh  float64     `json:"renewable_used_kwh"`
	RenewableLostKWh  float64     `json:"renewable_lost_kwh"`
	BatteryOutKWh     float64     `json:"battery_out_kwh"`
	IntraGB           float64     `json:"intra_gb"`
	CrossGB           float64     `json:"cross_gb"`
	MigEnergyKWh      float64     `json:"mig_energy_kwh,omitempty"`
	MigDowntimeS      float64     `json:"mig_downtime_s,omitempty"`
	Evacuations       int         `json:"evacuations,omitempty"`
	StrandedVMSlots   int         `json:"stranded_vm_slots,omitempty"`
	RepairGB          float64     `json:"repair_gb,omitempty"`
	DataLossProb      float64     `json:"data_loss_prob,omitempty"`
	Epochs            []EpochData `json:"epochs,omitempty"`
}

// EpochData is one epoch of a rolling-horizon cell.
type EpochData struct {
	Epoch        int     `json:"epoch"`
	StartSlot    int     `json:"start_slot"`
	EndSlot      int     `json:"end_slot"`
	CostEUR      float64 `json:"cost_eur"`
	EnergyGJ     float64 `json:"energy_gj"`
	Migrations   int     `json:"migrations"`
	MigRejected  int     `json:"mig_rejected"`
	MigratedGB   float64 `json:"migrated_gb"`
	MigEnergyKWh float64 `json:"mig_energy_kwh"`
	MigDowntimeS float64 `json:"mig_downtime_s"`
}

// JSON renders the set as indented JSON: the grid axes plus one flattened
// row per cell. The encoding is deterministic in the grid: cells are sorted
// into grid order (scenario-major, then policy, then seed) on every export,
// independent of the completion order the workers happened to produce — so
// two sweeps of the same grid yield byte-identical output at any
// parallelism and golden files never churn on scheduling.
func (s *Set) JSON() ([]byte, error) { return s.marshal(false) }

// CheckpointJSON renders the set in the same schema as JSON but with only
// the completed cells present in the cells array — the checkpoint format a
// killed sweep resumes from (see LoadCheckpoint). A fully-completed set's
// CheckpointJSON equals its JSON byte for byte.
func (s *Set) CheckpointJSON() ([]byte, error) { return s.marshal(true) }

func (s *Set) marshal(completedOnly bool) ([]byte, error) {
	type setJSON struct {
		Scenarios   []string   `json:"scenarios"`
		Policies    []string   `json:"policies"`
		SeedOffsets []uint64   `json:"seed_offsets"`
		Cells       []CellData `json:"cells"`
	}
	out := setJSON{
		Scenarios:   s.Scenarios,
		Policies:    s.Policies,
		SeedOffsets: s.SeedOffsets,
		Cells:       make([]CellData, 0, len(s.Cells)),
	}
	ordered := make([]*Cell, len(s.Cells))
	for i := range s.Cells {
		ordered[i] = &s.Cells[i]
	}
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Index < ordered[b].Index })
	for _, c := range ordered {
		if completedOnly && c.Result == nil && c.Data == nil {
			continue
		}
		out.Cells = append(out.Cells, c.Export())
	}
	return json.MarshalIndent(out, "", "  ")
}

// Export flattens the cell into its stable JSON row. A cell carrying a
// preloaded Data row (checkpoint resume, remote worker) exports it
// verbatim; a cell with a live Result flattens it — both paths produce
// identical bytes for identical outcomes, which is what makes distributed
// merges and resumed sweeps byte-identical to in-process runs.
func (c *Cell) Export() CellData {
	if c.Data != nil {
		return *c.Data
	}
	row := CellData{Scenario: c.Scenario, Policy: c.Policy, Seed: c.Seed}
	if c.Err != nil {
		row.Error = c.Err.Error()
	}
	if r := c.Result; r != nil {
		row.CostEUR = float64(r.OpCost)
		row.EnergyGJ = r.TotalEnergy.GJ()
		row.WorstRespS = r.RespSummary.Max()
		row.MeanRespS = r.RespSummary.Mean()
		row.Migrations = r.Migrations
		row.MigRejected = r.MigRejected
		row.MeanActiveServers = r.MeanActiveServers
		row.GridKWh = r.GridEnergy.KWh()
		row.RenewableUsedKWh = r.RenewableUsed.KWh()
		row.RenewableLostKWh = r.RenewableLost.KWh()
		row.BatteryOutKWh = r.BatteryOut.KWh()
		row.IntraGB = r.IntraBytes.GB()
		row.CrossGB = r.CrossBytes.GB()
		row.MigEnergyKWh = r.MigEnergy.KWh()
		row.MigDowntimeS = r.MigDowntimeSec
		row.Evacuations = r.Evacuations
		row.StrandedVMSlots = r.StrandedVMSlots
		row.RepairGB = r.RepairBytes.GB()
		row.DataLossProb = r.DataLossProb
		for _, es := range r.Epochs {
			row.Epochs = append(row.Epochs, EpochData{
				Epoch:        es.Epoch,
				StartSlot:    es.StartSlot,
				EndSlot:      es.EndSlot,
				CostEUR:      float64(es.Cost),
				EnergyGJ:     es.Energy.GJ(),
				Migrations:   es.Migrations,
				MigRejected:  es.MigRejected,
				MigratedGB:   es.MigratedBytes.GB(),
				MigEnergyKWh: es.MigEnergy.KWh(),
				MigDowntimeS: es.MigDowntimeSec,
			})
		}
	}
	return row
}

// WriteJSON stores the JSON export at path.
func (s *Set) WriteJSON(path string) error {
	b, err := s.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// NewSet validates the grid's axes and decomposes it into its cell
// skeleton: every cell with its identity (scenario, policy, absolute seed)
// and grid index, in deterministic grid order, but no results yet. Run
// fills the skeleton in-process; a dist coordinator hands its cells out to
// remote workers instead and merges what comes back — both produce the
// same Set. When g.Resume is set, cells whose identity matches a
// checkpointed row are born completed with that row as Data.
func NewSet(g Grid) (*Set, error) {
	if len(g.Scenarios) == 0 {
		return nil, fmt.Errorf("experiment: no scenarios")
	}
	if len(g.Policies) == 0 {
		return nil, fmt.Errorf("experiment: no policies")
	}
	for _, p := range g.Policies {
		if p.New == nil {
			return nil, fmt.Errorf("experiment: policy %q has no constructor", p.Name)
		}
	}
	offsets := g.SeedOffsets
	if len(offsets) == 0 {
		offsets = []uint64{0}
	}
	set := &Set{
		Scenarios:   make([]string, len(g.Scenarios)),
		Policies:    make([]string, len(g.Policies)),
		SeedOffsets: append([]uint64(nil), offsets...),
	}
	seen := make(map[string]bool, len(g.Scenarios))
	for i, spec := range g.Scenarios {
		name := spec.Name
		if name == "" {
			name = config.DefaultScenarioName
		}
		if seen[name] {
			return nil, fmt.Errorf("experiment: duplicate scenario name %q (name-based Set accessors would hide all but the first)", name)
		}
		seen[name] = true
		set.Scenarios[i] = name
	}
	for i, p := range g.Policies {
		set.Policies[i] = p.Name
	}
	total := len(g.Scenarios) * len(g.Policies) * len(offsets)
	set.Cells = make([]Cell, total)
	for si := range g.Scenarios {
		for pi := range g.Policies {
			for ki, off := range offsets {
				idx := set.index(si, pi, ki)
				set.Cells[idx] = Cell{
					Index:    idx,
					Scenario: set.Scenarios[si],
					Policy:   set.Policies[pi],
					Seed:     g.Scenarios[si].Seed + off,
				}
			}
		}
	}
	if g.Resume != nil {
		// Grid-index order, so duplicate (scenario, policy, seed)
		// identities consume checkpoint occurrences in the same order the
		// checkpoint writer emitted them.
		for i := range set.Cells {
			c := &set.Cells[i]
			if row := g.Resume.take(c.Scenario, c.Policy, c.Seed); row != nil {
				c.Data = row
			}
		}
	}
	return set, nil
}

// Coords decomposes a cell's grid index back into its scenario, policy and
// seed-offset indices.
func (s *Set) Coords(idx int) (si, pi, ki int) {
	perPolicy := len(s.SeedOffsets)
	perScenario := len(s.Policies) * perPolicy
	return idx / perScenario, (idx % perScenario) / perPolicy, idx % perPolicy
}

// Run executes the grid. The returned Set always covers the full grid;
// cells that failed or were cancelled carry their error instead of a
// result. The returned error is nil only when every cell completed — a
// cancelled sweep returns the partially-filled Set together with an error
// wrapping ctx's cause.
func Run(ctx context.Context, g Grid) (*Set, error) {
	set, err := NewSet(g)
	if err != nil {
		return nil, err
	}
	offsets := set.SeedOffsets
	workers := g.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(set.Cells)
	cellWorkers := workers
	if cellWorkers > total {
		cellWorkers = total
	}
	// The rest of the Parallelism budget funds intra-cell sharding; a
	// retiring cell worker donates its slot so the tail of the sweep (and
	// any narrow grid) can go wide inside the remaining cells.
	budget := par.NewBudget(workers - cellWorkers)

	// Cells are enqueued column-major — all policies of one scenario x seed
	// column together — so a column's compiled tables are built, used and
	// released before the next column's are compiled; results stay in grid
	// order regardless (cells carry absolute indices).
	jobs := make(chan int, total)
	for si := range g.Scenarios {
		for ki := range offsets {
			for pi := range g.Policies {
				jobs <- (si*len(g.Policies)+pi)*len(offsets) + ki
			}
		}
	}
	close(jobs)

	// One shared workload per scenario x seed, compiled lazily by the first
	// cell of the column that runs; the other policies of the column reuse
	// the immutable result instead of re-synthesizing it. Each column
	// counts its outstanding cells so big grids release a column's tables
	// as soon as its last policy run finishes.
	shared := make([]sharedWorkload, len(g.Scenarios)*len(offsets))
	for i := range shared {
		shared[i].remaining.Store(int64(len(g.Policies)))
	}
	// An injected workload (and the environment, always) is seed-
	// independent, so such a scenario's seed columns collapse onto one
	// shared entry instead of re-compiling identical tables per seed.
	for si := range g.Scenarios {
		if g.Scenarios[si].Workload != nil {
			shared[si*len(offsets)].remaining.Store(int64(len(g.Policies) * len(offsets)))
		}
	}
	// Caller-owned pre-compiled columns slot in before the workers start:
	// their sharedWorkload entries are born ready and marked external so
	// neither the lazy compile nor the end-of-column release touches them.
	if g.Columns != nil {
		for si := range g.Scenarios {
			for ki, off := range offsets {
				if col := g.Columns(set.Scenarios[si], g.Scenarios[si].Seed+off); col != nil {
					s := &shared[si*len(offsets)+ki]
					s.src, s.env = col.src, col.env
					s.external = true
				}
			}
		}
	}
	sharedFor := func(si, ki int) *sharedWorkload {
		if g.Scenarios[si].Workload != nil && !shared[si*len(offsets)+ki].external {
			ki = 0
		}
		return &shared[si*len(offsets)+ki]
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	perPolicy := len(offsets)
	perScenario := len(g.Policies) * perPolicy
	for w := 0; w < cellWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Out of jobs: this worker's slot funds intra-cell sharding in
			// the cells still running.
			defer budget.Release(1)
			for idx := range jobs {
				cell := &set.Cells[idx]
				si := idx / perScenario
				pi := (idx % perScenario) / perPolicy
				ki := idx % perPolicy
				wl := sharedFor(si, ki)
				if cell.Data != nil {
					// Preloaded from a resume checkpoint: the outcome is
					// already known, only the column bookkeeping runs.
					wl.done()
				} else if err := ctx.Err(); err != nil {
					cell.Err = err
					wl.done()
				} else {
					cell.Result, cell.Err = runCell(ctx, g.Scenarios[si], g.Policies[pi], cell.Seed, wl, budget)
				}
				if g.Progress != nil {
					mu.Lock()
					done++
					g.Progress(Progress{Done: done, Total: total, Cell: cell})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return set, set.Err()
}

// Column is one scenario x seed's immutable compiled state — the workload's
// flat tables plus the environment series — packaged for reuse across
// sweeps. CompileColumn builds one; Grid.Columns feeds them back into Run.
// Columns are safe for concurrent readers and may back any number of
// concurrent or sequential sweeps of the same scenario x seed.
type Column struct {
	src *trace.Compiled
	env *sim.Environment
	fp  string
}

// Fingerprint identifies the spec x seed universe the column was compiled
// for — SpecFingerprint of the compile inputs. Dist workers compare it
// against a work item's fingerprint before running the cell, so a stale or
// schema-skewed worker rejects the item instead of silently producing
// wrong-universe results. Empty when the spec carried an injected
// in-process Workload, which has no portable identity.
func (c *Column) Fingerprint() string { return c.fp }

// SpecFingerprint is the portable identity of a scenario x seed universe:
// a hash of the spec's canonical JSON encoding at the given absolute seed.
// Both sides of the dist protocol compute it independently — the
// coordinator from the grid's spec, the worker from the spec it decoded
// off the wire — so any skew (version drift in the Spec schema, lossy
// transport, a mis-routed item) surfaces as a mismatch instead of a
// silently different world. Specs with an injected Workload have no
// portable identity and return an error.
func SpecFingerprint(spec config.Spec, seed uint64) (string, error) {
	if spec.Workload != nil {
		return "", fmt.Errorf("experiment: spec %q carries an injected workload, which has no portable fingerprint", spec.Name)
	}
	spec.Seed = seed
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("experiment: fingerprint spec %q: %w", spec.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// CompileColumn compiles spec's workload and environment for the given
// absolute seed, exactly as Run's lazy per-column compile would. Multi-wave
// drivers call it once per scenario x seed up front and supply the results
// through Grid.Columns, so wave N reuses wave 0's tables instead of
// recompiling them.
func CompileColumn(spec config.Spec, seed uint64, workers *par.Budget) (*Column, error) {
	fp, _ := SpecFingerprint(spec, seed) // empty for injected workloads
	spec.Seed = seed
	compiles.Add(1)
	src, err := config.CompileWorkload(spec, workers)
	if err != nil {
		return nil, err
	}
	spec.Workload = src
	sc, err := config.Build(spec)
	if err != nil {
		return nil, err
	}
	env := sim.CompileEnvironment(sc.Fleet, sc.Horizon, sc.FineStepSec, workers)
	return &Column{src: src, env: env, fp: fp}, nil
}

// RunOnColumn evaluates one cell over a pre-compiled column — the dist
// worker's execution path. It is runCell minus the lazy column bookkeeping:
// fresh mutable scenario state per call over the column's immutable tables,
// so results are bit-identical to the in-process engine's.
func RunOnColumn(ctx context.Context, spec config.Spec, ps PolicySpec, seed uint64, col *Column, workers *par.Budget) (*sim.Result, error) {
	return runOn(ctx, spec, ps, seed, col.src, col.env, workers)
}

// compiles counts workload/environment compilations engine-wide — the lazy
// per-column ones plus CompileColumn calls. Tests read it through
// CompileCount to assert the sharing contract: one compile per scenario x
// seed, however many waves were swept over it.
var compiles atomic.Int64

// CompileCount returns the number of scenario x seed compilations performed
// so far, process-wide. The absolute value is meaningless; tests take
// deltas around the code under test.
func CompileCount() int64 { return compiles.Load() }

// sharedWorkload lazily compiles one scenario x seed's workload and
// environment (PUE / renewable / PV series) and hands the immutable results
// to every policy run of that grid column, dropping them once the column's
// last cell is done. External columns (Grid.Columns) arrive pre-filled and
// are never compiled or released here.
type sharedWorkload struct {
	once      sync.Once
	mu        sync.Mutex
	src       *trace.Compiled
	env       *sim.Environment
	err       error
	external  bool         // pre-filled by the caller; owned elsewhere
	remaining atomic.Int64 // cells of the column not yet finished
}

func (s *sharedWorkload) get(spec config.Spec, workers *par.Budget) (*trace.Compiled, *sim.Environment, error) {
	s.once.Do(func() {
		if s.external {
			return
		}
		compiles.Add(1)
		src, err := config.CompileWorkload(spec, workers)
		if err != nil {
			s.err = err
			return
		}
		spec.Workload = src
		sc, err := config.Build(spec)
		if err != nil {
			s.err = err
			return
		}
		env := sim.CompileEnvironment(sc.Fleet, sc.Horizon, sc.FineStepSec, workers)
		s.mu.Lock()
		s.src, s.env = src, env
		s.mu.Unlock()
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src, s.env, s.err
}

// done marks one of the column's cells finished, releasing the compiled
// tables after the last one so a long sweep's memory follows its frontier.
// Externally-owned columns are left for their owner to reuse.
func (s *sharedWorkload) done() {
	if s.remaining.Add(-1) == 0 && !s.external {
		s.mu.Lock()
		s.src, s.env = nil, nil
		s.mu.Unlock()
	}
}

// runCell evaluates one grid cell on fresh mutable state over the column's
// shared workload and environment, lending the run the sweep's shared
// worker budget for its intra-cell sharded passes.
func runCell(ctx context.Context, spec config.Spec, ps PolicySpec, seed uint64, wl *sharedWorkload, workers *par.Budget) (*sim.Result, error) {
	defer wl.done()
	spec.Seed = seed
	w, env, err := wl.get(spec, workers)
	if err != nil {
		return nil, err
	}
	return runOn(ctx, spec, ps, seed, w, env, workers)
}

// runOn is the shared cell evaluator behind runCell and RunOnColumn: fresh
// mutable scenario state and a fresh policy instance over an
// already-compiled workload and environment.
func runOn(ctx context.Context, spec config.Spec, ps PolicySpec, seed uint64, w *trace.Compiled, env *sim.Environment, workers *par.Budget) (*sim.Result, error) {
	spec.Seed = seed
	spec.Workload = w
	sc, err := config.Build(spec)
	if err != nil {
		return nil, err
	}
	sc.Env = env
	sc.Workers = workers
	pol := ps.New(seed)
	if pol == nil {
		return nil, fmt.Errorf("experiment: policy %q constructor returned nil", ps.Name)
	}
	return sim.RunCtx(ctx, sc, pol)
}
