package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
)

// frontierGridSpec is the reduced dynamic preset the frontier-facing
// determinism tests sweep: small fleet, short horizon, epoch machinery on.
func frontierGridSpec(t *testing.T) config.Spec {
	t.Helper()
	spec, err := config.Preset("geo5dc-dynamic")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	spec.Seed = 11
	spec.Horizon = timeutil.Hours(6)
	spec.FineStepSec = 600
	return spec
}

// TestParetoSearchDeterministic runs the metaheuristic policy — the
// frontier's search baseline, whose multi-start perturbation is the most
// randomness-hungry code the engine drives — against the proposed
// controller at Parallelism 1, 2 and GOMAXPROCS+6, and requires
// byte-identical ResultSet JSON. This lives here (not in the root package)
// so the CI race job's -race build covers the whole search under
// contention, like the epoch engine's determinism test.
func TestParetoSearchDeterministic(t *testing.T) {
	spec := frontierGridSpec(t)
	grid := func(parallelism int) Grid {
		return Grid{
			Scenarios: []config.Spec{spec},
			Policies: []PolicySpec{
				{Name: "Pareto-search", New: func(seed uint64) policy.Policy { return policy.NewParetoSearch(seed) }},
				{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
			},
			SeedOffsets: []uint64{0, 1},
			Parallelism: parallelism,
		}
	}
	base, err := Run(context.Background(), grid(1))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, runtime.GOMAXPROCS(0) + 6} {
		set, err := Run(context.Background(), grid(p))
		if err != nil {
			t.Fatal(err)
		}
		js, err := set.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, js) {
			t.Fatalf("Parallelism=%d: Pareto-search ResultSet differs from serial run", p)
		}
	}
}

// TestColumnsSharedAcrossRuns pins the multi-wave compile contract at the
// engine level: pre-compiled columns supplied through Grid.Columns are
// consumed verbatim (no recompilation), survive the run for reuse, and
// yield the same results as the engine's own lazy compile.
func TestColumnsSharedAcrossRuns(t *testing.T) {
	spec := frontierGridSpec(t)
	pols := []PolicySpec{
		{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
	}
	offsets := []uint64{0, 1}

	// Lazy-compiled baseline.
	lazy, err := Run(context.Background(), Grid{
		Scenarios: []config.Spec{spec}, Policies: pols, SeedOffsets: offsets,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-compiled columns, swept twice (two "waves").
	columns := map[uint64]*Column{}
	before := CompileCount()
	for _, off := range offsets {
		col, err := CompileColumn(spec, spec.Seed+off, nil)
		if err != nil {
			t.Fatal(err)
		}
		columns[spec.Seed+off] = col
	}
	colFor := func(scenario string, seed uint64) *Column {
		if scenario != spec.Name {
			t.Fatalf("Columns asked for unknown scenario %q", scenario)
		}
		return columns[seed]
	}
	var waves []*Set
	for wave := 0; wave < 2; wave++ {
		set, err := Run(context.Background(), Grid{
			Scenarios: []config.Spec{spec}, Policies: pols, SeedOffsets: offsets,
			Columns: colFor,
		})
		if err != nil {
			t.Fatal(err)
		}
		waves = append(waves, set)
	}
	if got := CompileCount() - before; got != int64(len(offsets)) {
		t.Fatalf("compiled %d columns for 2 waves, want exactly %d (one per seed)", got, len(offsets))
	}
	for i, set := range waves {
		if !reflect.DeepEqual(lazy, set) {
			t.Fatalf("wave %d over shared columns differs from the lazily-compiled run", i)
		}
	}
	for seed, col := range columns {
		if col.src == nil || col.env == nil {
			t.Fatalf("column for seed %d was released by the engine; caller owns it", seed)
		}
	}
}

// TestChunkedColumnsSharedAndIdentical extends the column-sharing contract
// to out-of-core tables: a pre-compiled column whose fine/profile tables
// stream through chunk windows is shared across concurrent cells without
// recompilation (cursors are per-run, the chunked Compiled is read-only),
// and the swept ResultSet is byte-identical to the unbounded in-core grid.
func TestChunkedColumnsSharedAndIdentical(t *testing.T) {
	spec := frontierGridSpec(t)
	pols := []PolicySpec{
		{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
		{Name: "EnerAware", New: func(seed uint64) policy.Policy { return policy.EnerAware{} }},
	}
	offsets := []uint64{0, 1}

	// Unbounded in-core baseline, serial.
	incore, err := Run(context.Background(), Grid{
		Scenarios: []config.Spec{spec}, Policies: pols, SeedOffsets: offsets,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := incore.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// A 1-byte budget forces both tables out of core.
	chunked := spec
	chunked.MaxFineTableBytes = 1
	columns := map[uint64]*Column{}
	for _, off := range offsets {
		col, err := CompileColumn(chunked, chunked.Seed+off, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !col.src.FineChunked() {
			t.Fatal("column's fine table is not chunked under a 1-byte budget")
		}
		columns[chunked.Seed+off] = col
	}
	before := CompileCount()
	set, err := Run(context.Background(), Grid{
		Scenarios: []config.Spec{chunked}, Policies: pols, SeedOffsets: offsets,
		Parallelism: runtime.GOMAXPROCS(0) + 6,
		Columns:     func(_ string, seed uint64) *Column { return columns[seed] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := CompileCount() - before; got != 0 {
		t.Fatalf("engine recompiled %d chunked columns; want 0", got)
	}
	js, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, js) {
		t.Fatal("chunked-column sweep differs from the unbounded in-core grid")
	}
}

// TestJSONSortsCellsOnExport pins the small-fix satellite: the export is
// sorted by grid coordinates even when the in-memory cell slice has been
// reordered (e.g. by a future completion-order collector).
func TestJSONSortsCellsOnExport(t *testing.T) {
	spec := frontierGridSpec(t)
	set, err := Run(context.Background(), Grid{
		Scenarios: []config.Spec{spec},
		Policies: []PolicySpec{
			{Name: "Proposed", New: func(seed uint64) policy.Policy { return core.New(0.9, seed) }},
		},
		SeedOffsets: []uint64{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Scramble the backing order; the Index fields still carry the grid
	// coordinates, so the export must not move.
	for i, j := 0, len(set.Cells)-1; i < j; i, j = i+1, j-1 {
		set.Cells[i], set.Cells[j] = set.Cells[j], set.Cells[i]
	}
	got, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("JSON export depends on the in-memory cell order")
	}
}
