package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	s1 := parent.Derive("arrivals")
	// Consuming draws from the parent must not change derived streams.
	for i := 0; i < 50; i++ {
		parent.Uint64()
	}
	s2 := New(7).Derive("arrivals")
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("derived stream depends on parent consumption at draw %d", i)
		}
	}
}

func TestDeriveLabelsDiffer(t *testing.T) {
	p := New(7)
	a := p.Derive("a")
	b := p.Derive("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalFromMean(t *testing.T) {
	s := New(17)
	const want = 10e6 // 10 MB, the paper's mean volume
	for _, sigma2 := range []float64{1, 2, 4} {
		var sum float64
		const n = 300000
		for i := 0; i < n; i++ {
			sum += s.LogNormalFromMean(want, sigma2)
		}
		mean := sum / n
		// Heavy-tailed: accept 10% relative error on the sample mean.
		if math.Abs(mean-want)/want > 0.10 {
			t.Errorf("sigma2=%v: lognormal mean = %v, want ~%v", sigma2, mean, want)
		}
	}
}

func TestLogNormalNonPositiveMean(t *testing.T) {
	s := New(1)
	if got := s.LogNormalFromMean(0, 1); got != 0 {
		t.Fatalf("LogNormalFromMean(0,1) = %v, want 0", got)
	}
}

func TestExpMean(t *testing.T) {
	s := New(19)
	const want = 8.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(want)
	}
	if mean := sum / n; math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("exponential mean = %v, want ~%v", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, lambda := range []float64{0.5, 4, 20, 100} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("lambda=%v: poisson mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroRate(t *testing.T) {
	s := New(1)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	s := New(29)
	// The paper's BER probabilities.
	weights := []float64{0.54, 0.20, 0.15, 0.10, 0.01}
	counts := make([]int, len(weights))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("class %d frequency = %v, want ~%v", i, got, w)
		}
	}
}

func TestCategoricalSkipsNonPositive(t *testing.T) {
	s := New(31)
	weights := []float64{0, 1, 0}
	for i := 0; i < 100; i++ {
		if got := s.Categorical(weights); got != 1 {
			t.Fatalf("Categorical skipped positive class: got %d", got)
		}
	}
}

func TestCategoricalPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestPermIsPermutation(t *testing.T) {
	s := New(37)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNoiseStateless(t *testing.T) {
	a := Noise01(1, 2, 3)
	b := Noise01(1, 2, 3)
	if a != b {
		t.Fatal("Noise01 not stateless")
	}
	if Noise01(1, 2, 3) == Noise01(1, 2, 4) {
		t.Fatal("Noise01 insensitive to last key")
	}
	if Noise01(1, 2, 3) == Noise01(3, 2, 1) {
		t.Fatal("Noise01 insensitive to key order")
	}
}

func TestNoise01Range(t *testing.T) {
	f := func(a, b uint64) bool {
		v := Noise01(a, b)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoiseNormFinite(t *testing.T) {
	f := func(a, b uint64) bool {
		v := NoiseNorm(a, b)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmoothNoiseContinuity(t *testing.T) {
	// SmoothNoise should have no jumps: sample at small increments and bound
	// the step change.
	prev := SmoothNoise(0, 99)
	for x := 0.01; x < 5; x += 0.01 {
		v := SmoothNoise(x, 99)
		if math.Abs(v-prev) > 0.05 {
			t.Fatalf("jump of %v at x=%v", math.Abs(v-prev), x)
		}
		prev = v
	}
}

func TestSmoothNoiseMatchesLatticeAtIntegers(t *testing.T) {
	for x := 0; x < 10; x++ {
		want := Noise01(7, uint64(int64(x)))
		got := SmoothNoise(float64(x), 7)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("SmoothNoise(%d) = %v, want lattice %v", x, got, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNoise01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Noise01(uint64(i), 42)
	}
}
