// Package rng provides deterministic random number generation for the
// simulator.
//
// Everything in geovmp must replay bit-identically from a single seed so
// that experiments are reproducible and policies can be compared on exactly
// the same workload. The package offers two tools:
//
//   - Source: a splitmix64 sequential generator with derived sub-streams, so
//     independent subsystems (arrivals, traces, network errors, ...) consume
//     independent streams and adding draws to one subsystem never perturbs
//     another.
//   - Hash noise (Noise01, NoiseNorm): stateless pseudo-random values keyed
//     by integers, used to sample lazy workload traces at arbitrary
//     timestamps without storing them.
package rng

import "math"

// Source is a deterministic pseudo-random source based on splitmix64.
// The zero value is a valid source seeded with 0; prefer New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new independent Source keyed by the parent seed and a
// stream label. Deriving is stable: the same parent seed and label always
// produce the same stream regardless of how much the parent has been used.
func (s *Source) Derive(label string) *Source {
	h := mix64(s.state ^ 0x9e3779b97f4a7c15)
	for i := 0; i < len(label); i++ {
		h = mix64(h ^ uint64(label[i])*0x100000001b3)
	}
	return &Source{state: h}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate (Box-Muller).
func (s *Source) Norm() float64 {
	// Draw u1 in (0,1] to keep the log finite.
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormalFromMean returns a log-normal variate with the given *linear*
// mean and underlying log-domain variance sigma2. The paper draws inter-VM
// data volumes "by a log-normal distribution with the mean of 10 MB and
// uniform variance selection in the range of [1,4]"; this helper converts
// that parameterization (linear mean, log variance) into the usual (mu,
// sigma) pair: mean = exp(mu + sigma^2/2) => mu = ln(mean) - sigma^2/2.
func (s *Source) LogNormalFromMean(mean, sigma2 float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma := math.Sqrt(sigma2)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + sigma*s.Norm())
}

// Exp returns an exponential variate with the given mean. It panics if
// mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(1-s.Float64())
}

// Poisson returns a Poisson variate with the given rate lambda. For small
// lambda it uses Knuth's product method; for large lambda a normal
// approximation keeps it O(1).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		// Normal approximation with continuity correction.
		v := lambda + math.Sqrt(lambda)*s.Norm() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical draws an index from the discrete distribution given by
// weights. Weights need not sum to 1; non-positive weights are treated as 0.
// It panics if all weights are non-positive or the slice is empty.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Categorical with no positive weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash combines an arbitrary number of integer keys into a single
// well-mixed 64-bit hash. It is the basis of the stateless noise functions.
func Hash(keys ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, k := range keys {
		h = mix64(h ^ mix64(k+0x9e3779b97f4a7c15))
	}
	return h
}

// Noise01 returns a deterministic pseudo-uniform value in [0, 1) keyed by
// the given integers. Calls are stateless: the same keys always give the
// same value, so lazy trace generators can evaluate "random" samples at any
// timestamp in any order.
func Noise01(keys ...uint64) float64 {
	return float64(Hash(keys...)>>11) / (1 << 53)
}

// NoiseNorm returns a deterministic standard-normal value keyed by the given
// integers, via Box-Muller over two decorrelated hash draws.
func NoiseNorm(keys ...uint64) float64 {
	h := Hash(keys...)
	u1 := 1 - float64(h>>11)/(1<<53)
	u2 := float64(mix64(h)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// SmoothNoise returns value-continuous noise in [0,1): piecewise cosine
// interpolation of Noise01 lattice values at integer positions of x. It
// drives slowly-varying trace components (e.g. cloud cover) where white
// noise would be unphysical.
//
// It is allocation-free: the lattice hashes fold the x0 key onto the
// incrementally-hashed prefix instead of building key slices, producing the
// same values as Noise01(keys..., x0).
func SmoothNoise(x float64, keys ...uint64) float64 {
	x0 := math.Floor(x)
	t := x - x0
	h := Hash(keys...)
	h0 := mix64(h ^ mix64(uint64(int64(x0))+0x9e3779b97f4a7c15))
	h1 := mix64(h ^ mix64(uint64(int64(x0)+1)+0x9e3779b97f4a7c15))
	a := float64(h0>>11) / (1 << 53)
	b := float64(h1>>11) / (1 << 53)
	// Cosine ease curve keeps the derivative continuous at lattice points.
	w := (1 - math.Cos(math.Pi*t)) / 2
	return a*(1-w) + b*w
}
