package solar

import (
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func TestWCMAGapClamped(t *testing.T) {
	w := NewWCMA(2, 1.0)
	// History: flat 100 per hour for two days.
	for day := 0; day < 2; day++ {
		for h := 0; h < 24; h++ {
			w.Observe(timeutil.Slot(day*24+h), 100)
		}
	}
	// Day 2: absurdly high morning (10000x history): gap must clamp at 2.
	for h := 0; h < 12; h++ {
		w.Observe(timeutil.Slot(2*24+h), 1e6)
	}
	got := w.Forecast(timeutil.Slot(2*24 + 13))
	if got > 205 {
		t.Fatalf("forecast %v above clamped 2x history", got)
	}
	if got < 195 {
		t.Fatalf("forecast %v below clamped expectation", got)
	}
}

func TestWCMAGapFloorClamped(t *testing.T) {
	w := NewWCMA(2, 1.0)
	for day := 0; day < 2; day++ {
		for h := 0; h < 24; h++ {
			w.Observe(timeutil.Slot(day*24+h), 100)
		}
	}
	// Day 2: dead morning: gap clamps at 0.1, not 0.
	for h := 0; h < 12; h++ {
		w.Observe(timeutil.Slot(2*24+h), 0)
	}
	got := w.Forecast(timeutil.Slot(2*24 + 13))
	if got < 9 || got > 11 {
		t.Fatalf("forecast %v, want ~10 (0.1 x history)", got)
	}
}

func TestEWMAIndependentHours(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(timeutil.Slot(10), 100)
	if got := e.Forecast(timeutil.Slot(11)); got != 0 {
		t.Fatalf("hour 11 contaminated by hour 10 observation: %v", got)
	}
}

func TestPlantScalingLinearInPeak(t *testing.T) {
	a := LisbonPlant()
	b := LisbonPlant()
	b.Peak = a.Peak / 2
	noon := 12 * 3600.0
	pa, pb := a.PowerAt(noon), b.PowerAt(noon)
	if pa == 0 {
		t.Skip("cloudy noon in this seed")
	}
	ratio := float64(pa) / float64(pb)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("power not linear in nameplate: ratio %v", ratio)
	}
}

func TestWinterProducesLessThanSummer(t *testing.T) {
	summer := LisbonPlant()
	summer.DayOfYear = 172 // June solstice
	winter := LisbonPlant()
	winter.DayOfYear = 355 // December solstice
	var es, ew units.Energy
	for sl := timeutil.Slot(0); sl < 24; sl++ {
		es += summer.SlotEnergy(sl)
		ew += winter.SlotEnergy(sl)
	}
	if ew >= es {
		t.Fatalf("winter day %v not below summer day %v", ew, es)
	}
}

func TestHelsinkiSummerLongDays(t *testing.T) {
	// At 60 N in June the sun is up before 04:00 local.
	p := HelsinkiPlant()
	p.DayOfYear = 172
	early := 2 * 3600.0 // 02:00 UTC = 04:00 local
	if p.elevationSin(early) <= 0 {
		t.Skip("model keeps sun below horizon at 04:00 local; acceptable")
	}
	if p.PowerAt(early) < 0 {
		t.Fatal("negative power")
	}
}

func TestForecastersNonNegative(t *testing.T) {
	p := ZurichPlant()
	fs := []Forecaster{NewWCMA(4, 0.7), NewEWMA(0.5), &LastValue{}, &Oracle{Plant: p}}
	for sl := timeutil.Slot(0); sl < 96; sl++ {
		actual := p.SlotEnergy(sl)
		for _, f := range fs {
			if v := f.Forecast(sl); v < 0 {
				t.Fatalf("%s produced negative forecast %v", f.Name(), v)
			}
			f.Observe(sl, actual)
		}
	}
}
