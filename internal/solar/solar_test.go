package solar

import (
	"math"
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func TestNightProducesNothing(t *testing.T) {
	for _, p := range []Plant{LisbonPlant(), ZurichPlant(), HelsinkiPlant()} {
		// 01:00 local on day 0.
		local1am := (1 - float64(p.Zone)) * 3600
		if got := p.PowerAt(local1am); got != 0 {
			t.Errorf("%s: power at night = %v, want 0", p.Name, got)
		}
	}
}

func TestNoonProducesMost(t *testing.T) {
	p := LisbonPlant()
	noon := 12 * 3600.0 // Lisbon local = UTC
	morning := 8 * 3600.0
	if p.PowerAt(noon) <= p.PowerAt(morning) {
		t.Fatalf("noon %v not above morning %v", p.PowerAt(noon), p.PowerAt(morning))
	}
}

func TestPowerNeverExceedsNameplate(t *testing.T) {
	for _, p := range []Plant{LisbonPlant(), ZurichPlant(), HelsinkiPlant()} {
		for s := 0.0; s < 7*86400; s += 600 {
			got := p.PowerAt(s)
			if got < 0 || got > p.Peak {
				t.Fatalf("%s: power %v outside [0, %v] at t=%v", p.Name, got, p.Peak, s)
			}
		}
	}
}

func TestWeeklyEnergyOrdering(t *testing.T) {
	// Lisbon (biggest plant, sunniest) must out-produce Zurich, which must
	// out-produce Helsinki; this drives the paper's renewable diversity.
	weekly := func(p Plant) units.Energy {
		var e units.Energy
		for sl := timeutil.Slot(0); sl < timeutil.SlotsPerWeek; sl++ {
			e += p.SlotEnergy(sl)
		}
		return e
	}
	li, zu, he := weekly(LisbonPlant()), weekly(ZurichPlant()), weekly(HelsinkiPlant())
	if !(li > zu && zu > he) {
		t.Fatalf("weekly PV: Lisbon=%v Zurich=%v Helsinki=%v not ordered", li, zu, he)
	}
	if he <= 0 {
		t.Fatal("Helsinki produced nothing all week")
	}
}

func TestSlotEnergyMatchesPowerIntegral(t *testing.T) {
	p := ZurichPlant()
	sl := timeutil.Slot(12) // midday
	e := p.SlotEnergy(sl)
	// Manual 5 s integration should agree within ~2%.
	var manual units.Energy
	for s := 0.0; s < 3600; s += 5 {
		manual += p.PowerAt(sl.Seconds() + s).ForDuration(5)
	}
	if e <= 0 {
		t.Fatal("no midday energy")
	}
	rel := math.Abs(float64(e-manual)) / float64(manual)
	if rel > 0.02 {
		t.Fatalf("slot energy %v vs manual %v (rel err %v)", e, manual, rel)
	}
}

func TestCloudFactorBounds(t *testing.T) {
	p := HelsinkiPlant()
	for s := 0.0; s < 7*86400; s += 333 {
		c := p.CloudFactor(s)
		if c < p.CloudMin-1e-9 || c > 1+1e-9 {
			t.Fatalf("cloud factor %v outside [%v,1]", c, p.CloudMin)
		}
	}
}

func TestLastValueForecaster(t *testing.T) {
	var f LastValue
	if f.Forecast(5) != 0 {
		t.Fatal("cold forecast should be 0")
	}
	f.Observe(5, 1000)
	if f.Forecast(6) != 1000 {
		t.Fatal("last-value should echo the last observation")
	}
	if f.Name() != "last-value" {
		t.Fatal("name mismatch")
	}
}

func TestEWMAWarmsUpAndSmooths(t *testing.T) {
	f := NewEWMA(0.5)
	sl := timeutil.Slot(10) // hour 10
	f.Observe(sl, 100)
	if got := f.Forecast(sl + timeutil.SlotsPerDay); got != 100 {
		t.Fatalf("first observation should seed the hour: got %v", got)
	}
	f.Observe(sl+timeutil.SlotsPerDay, 200)
	got := f.Forecast(sl + 2*timeutil.SlotsPerDay)
	if got != 150 {
		t.Fatalf("EWMA(0.5) after 100,200 = %v, want 150", got)
	}
}

func TestEWMADefaultAlpha(t *testing.T) {
	if NewEWMA(-3).Alpha != 0.5 {
		t.Fatal("bad alpha should fall back to 0.5")
	}
}

func TestWCMAColdStartBehavesLikeLastValue(t *testing.T) {
	w := NewWCMA(4, 0.7)
	w.Observe(0, 500)
	if got := w.Forecast(1); got != 500 {
		t.Fatalf("cold WCMA forecast = %v, want last value 500", got)
	}
}

func TestWCMAConditionsOnCurrentDay(t *testing.T) {
	w := NewWCMA(4, 1.0) // pure conditioned mean for testability
	// Record two identical sunny days.
	for day := 0; day < 2; day++ {
		for h := 0; h < 24; h++ {
			sl := timeutil.Slot(day*24 + h)
			var e units.Energy
			if h >= 6 && h <= 18 {
				e = units.Energy(1000 * math.Sin(float64(h-6)/12*math.Pi))
			}
			w.Observe(sl, e)
		}
	}
	// Day 2: a heavily clouded morning (half the history).
	day := 2
	for h := 0; h < 12; h++ {
		sl := timeutil.Slot(day*24 + h)
		var e units.Energy
		if h >= 6 {
			e = units.Energy(500 * math.Sin(float64(h-6)/12*math.Pi))
		}
		w.Observe(sl, e)
	}
	// The afternoon forecast must be discounted vs the historical mean.
	sl := timeutil.Slot(day*24 + 13)
	hist, _ := w.histMean(13)
	got := w.Forecast(sl)
	if got >= hist {
		t.Fatalf("cloudy-morning forecast %v not below historical mean %v", got, hist)
	}
	if got < units.Energy(0.3*float64(hist)) {
		t.Fatalf("forecast %v discounted implausibly far below history %v", got, hist)
	}
}

func TestWCMAHistoryRolls(t *testing.T) {
	w := NewWCMA(2, 0.7)
	for day := 0; day < 5; day++ {
		for h := 0; h < 24; h++ {
			w.Observe(timeutil.Slot(day*24+h), units.Energy(float64(day)))
		}
	}
	// History depth 2: mean at any hour must reflect days 3 and 4 only.
	m, ok := w.histMean(5)
	if !ok {
		t.Fatal("no history after 5 days")
	}
	if m != units.Energy(3.5) {
		t.Fatalf("rolled mean = %v, want 3.5", m)
	}
}

func TestOracleIsExact(t *testing.T) {
	p := LisbonPlant()
	o := Oracle{Plant: p}
	for _, sl := range []timeutil.Slot{0, 12, 36, 100} {
		if o.Forecast(sl) != p.SlotEnergy(sl) {
			t.Fatalf("oracle wrong at slot %d", sl)
		}
	}
}

func TestForecasterAccuracyOrdering(t *testing.T) {
	// Over a week, WCMA should beat last-value on mean absolute error; both
	// must be finite. (EWMA needs a seed day, so compare from day 1.)
	p := ZurichPlant()
	wcma := NewWCMA(4, 0.7)
	last := &LastValue{}
	var errW, errL float64
	n := 0
	for sl := timeutil.Slot(0); sl < timeutil.SlotsPerWeek; sl++ {
		actual := p.SlotEnergy(sl)
		if sl >= timeutil.SlotsPerDay {
			errW += math.Abs(float64(wcma.Forecast(sl) - actual))
			errL += math.Abs(float64(last.Forecast(sl) - actual))
			n++
		}
		wcma.Observe(sl, actual)
		last.Observe(sl, actual)
	}
	if n == 0 || math.IsNaN(errW) || math.IsNaN(errL) {
		t.Fatal("degenerate comparison")
	}
	if errW >= errL {
		t.Fatalf("WCMA MAE %v not better than last-value %v", errW/float64(n), errL/float64(n))
	}
}

func TestForecastersDeterministic(t *testing.T) {
	run := func() units.Energy {
		p := HelsinkiPlant()
		w := NewWCMA(4, 0.7)
		var out units.Energy
		for sl := timeutil.Slot(0); sl < 72; sl++ {
			out += w.Forecast(sl)
			w.Observe(sl, p.SlotEnergy(sl))
		}
		return out
	}
	if run() != run() {
		t.Fatal("forecaster pipeline not deterministic")
	}
}
