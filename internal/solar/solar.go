// Package solar models each data center's photovoltaic (PV) plant and the
// energy-intake forecasters the global controller consumes.
//
// Generation is a clear-sky solar-geometry model (elevation from latitude,
// day of year and local solar hour) attenuated by a slowly-varying
// stochastic cloud factor, scaled by the plant's peak capacity (kWp, Table
// I). The forecast algorithms re-implement the comparison of Bergonzini et
// al. (MEJ 2010), the paper's reference [21]: a last-value predictor, EWMA
// keyed by hour-of-day, and WCMA (weather-conditioned moving average), which
// conditions the historical per-hour mean on how the current day compares to
// history. The paper "implemented the algorithm in [21]"; WCMA is the best
// performer there and is the default here, with the others kept for the
// forecast-quality ablation.
package solar

import (
	"math"

	"geovmp/internal/rng"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Plant models one site's PV installation.
type Plant struct {
	Name      string
	Zone      timeutil.Zone
	LatitudeD float64     // site latitude, degrees north
	Peak      units.Power // nameplate capacity at standard irradiance
	DayOfYear int         // calendar day the simulated week starts at
	CloudMin  float64     // worst-case cloud transmission factor in [0,1]
	NoiseSeed uint64      // keys the cloud noise stream
}

// Presets for the paper's Table I plants (150/100/50 kWp) in a spring week
// (day of year 105). Cloudiness grows with latitude.
func LisbonPlant() Plant {
	return Plant{Name: "Lisbon", Zone: timeutil.ZoneLisbon, LatitudeD: 38.7, Peak: 150 * units.Kilowatt, DayOfYear: 105, CloudMin: 0.55, NoiseSeed: 201}
}
func ZurichPlant() Plant {
	return Plant{Name: "Zurich", Zone: timeutil.ZoneZurich, LatitudeD: 47.4, Peak: 100 * units.Kilowatt, DayOfYear: 105, CloudMin: 0.35, NoiseSeed: 202}
}
func HelsinkiPlant() Plant {
	return Plant{Name: "Helsinki", Zone: timeutil.ZoneHelsinki, LatitudeD: 60.2, Peak: 50 * units.Kilowatt, DayOfYear: 105, CloudMin: 0.30, NoiseSeed: 203}
}

// elevationSin returns sin(solar elevation) for the plant at an absolute
// simulation time, using the standard declination formula.
func (p Plant) elevationSin(seconds float64) float64 {
	day := float64(p.DayOfYear) + seconds/86400
	decl := -23.44 * math.Pi / 180 * math.Cos(2*math.Pi/365*(day+10))
	lat := p.LatitudeD * math.Pi / 180
	// Hour angle: zero at local solar noon, 15 degrees per hour.
	h := (p.Zone.LocalHour(seconds) - 12) * 15 * math.Pi / 180
	return math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(h)
}

// CloudFactor returns the stochastic transmission factor in [CloudMin, 1] at
// the given time. Weather fronts are hours wide (lattice every 4 h).
func (p Plant) CloudFactor(seconds float64) float64 {
	n := rng.SmoothNoise(seconds/(4*3600), p.NoiseSeed)
	return p.CloudMin + (1-p.CloudMin)*n
}

// PowerAt returns the instantaneous PV output at the given absolute time.
func (p Plant) PowerAt(seconds float64) units.Power {
	s := p.elevationSin(seconds)
	if s <= 0 {
		return 0
	}
	// Clear-sky irradiance roughly scales with sin(elevation); the 1.15
	// exponent approximates air-mass attenuation near the horizon.
	clearSky := math.Pow(s, 1.15)
	return units.Power(float64(p.Peak) * clearSky * p.CloudFactor(seconds))
}

// SlotEnergy integrates PowerAt over slot sl at 1-minute resolution.
func (p Plant) SlotEnergy(sl timeutil.Slot) units.Energy {
	const dt = 60.0
	start := sl.Seconds()
	var e units.Energy
	for t := 0.0; t < timeutil.SlotSeconds; t += dt {
		e += p.PowerAt(start + t).ForDuration(dt)
	}
	return e
}

// Forecaster predicts the PV energy of the *next* slot and learns from
// realized values. Implementations must be deterministic.
type Forecaster interface {
	// Forecast returns the predicted intake for slot sl.
	Forecast(sl timeutil.Slot) units.Energy
	// Observe records the realized intake of slot sl.
	Observe(sl timeutil.Slot, actual units.Energy)
	// Name identifies the algorithm in reports.
	Name() string
}

// LastValue predicts each slot's intake as the previous slot's realized
// value — the trivial baseline in [21].
type LastValue struct {
	last units.Energy
}

// Name implements Forecaster.
func (l *LastValue) Name() string { return "last-value" }

// Forecast implements Forecaster.
func (l *LastValue) Forecast(timeutil.Slot) units.Energy { return l.last }

// Observe implements Forecaster.
func (l *LastValue) Observe(_ timeutil.Slot, actual units.Energy) { l.last = actual }

// EWMA keeps an exponentially weighted average per hour-of-day, the classic
// solar predictor (alpha typically ~0.5): tomorrow at hour h looks like the
// discounted history of hour h.
type EWMA struct {
	Alpha  float64
	byHour [timeutil.HoursPerDay]units.Energy
	seen   [timeutil.HoursPerDay]bool
}

// NewEWMA returns an EWMA forecaster with the given smoothing factor
// (0 < alpha <= 1); alpha outside that range falls back to 0.5.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{Alpha: alpha}
}

// Name implements Forecaster.
func (e *EWMA) Name() string { return "ewma" }

// Forecast implements Forecaster.
func (e *EWMA) Forecast(sl timeutil.Slot) units.Energy {
	return e.byHour[sl.HourUTC()]
}

// Observe implements Forecaster.
func (e *EWMA) Observe(sl timeutil.Slot, actual units.Energy) {
	h := sl.HourUTC()
	if !e.seen[h] {
		e.byHour[h] = actual
		e.seen[h] = true
		return
	}
	e.byHour[h] = units.Energy(e.Alpha*float64(actual) + (1-e.Alpha)*float64(e.byHour[h]))
}

// WCMA is the weather-conditioned moving average of Bergonzini et al.: the
// per-hour mean over the last D days, scaled by a GAP factor that measures
// how the current day's recent intake compares with the same hours of the
// historical mean. A cloudy morning therefore discounts the whole
// afternoon's prediction.
type WCMA struct {
	Days   int              // history depth D
	Alpha  float64          // weight of the most recent sample vs the conditioned mean
	hist   [][]units.Energy // ring of per-day, per-hour intakes
	day    int              // current day index
	filled int              // number of complete days recorded
	today  [timeutil.HoursPerDay]units.Energy
	seen   [timeutil.HoursPerDay]bool
	last   units.Energy
}

// NewWCMA returns a WCMA forecaster with history depth days (default 4) and
// blending factor alpha (default 0.7, per the cited evaluation).
func NewWCMA(days int, alpha float64) *WCMA {
	if days <= 0 {
		days = 4
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.7
	}
	h := make([][]units.Energy, days)
	for i := range h {
		h[i] = make([]units.Energy, timeutil.HoursPerDay)
	}
	return &WCMA{Days: days, Alpha: alpha, hist: h}
}

// Name implements Forecaster.
func (w *WCMA) Name() string { return "wcma" }

// histMean returns the historical mean intake at hour h over the recorded
// days, and whether any history exists.
func (w *WCMA) histMean(h int) (units.Energy, bool) {
	n := w.filled
	if n == 0 {
		return 0, false
	}
	if n > w.Days {
		n = w.Days
	}
	var sum units.Energy
	for d := 0; d < n; d++ {
		sum += w.hist[d][h]
	}
	return units.Energy(float64(sum) / float64(n)), true
}

// gap measures current conditions: the ratio of today's realized intake so
// far to the historical mean over the same hours (1 when no evidence).
func (w *WCMA) gap(upTo int) float64 {
	var got, hist float64
	for h := 0; h < upTo; h++ {
		if !w.seen[h] {
			continue
		}
		m, ok := w.histMean(h)
		if !ok || m <= 0 {
			continue
		}
		got += float64(w.today[h])
		hist += float64(m)
	}
	if hist <= 0 {
		return 1
	}
	g := got / hist
	return units.Clamp(g, 0.1, 2.0)
}

// Forecast implements Forecaster.
func (w *WCMA) Forecast(sl timeutil.Slot) units.Energy {
	h := sl.HourUTC()
	mean, ok := w.histMean(h)
	if !ok {
		return w.last // cold start: behave like last-value
	}
	conditioned := float64(mean) * w.gap(h)
	return units.Energy(w.Alpha*conditioned + (1-w.Alpha)*float64(w.last))
}

// Observe implements Forecaster.
func (w *WCMA) Observe(sl timeutil.Slot, actual units.Energy) {
	h := sl.HourUTC()
	w.today[h] = actual
	w.seen[h] = true
	w.last = actual
	if h == timeutil.HoursPerDay-1 {
		// Day complete: roll it into history.
		slot := w.day % w.Days
		copy(w.hist[slot], w.today[:])
		w.day++
		w.filled++
		for i := range w.seen {
			w.seen[i] = false
		}
	}
}

// Oracle returns the true next-slot energy; it exists only for the
// forecast-quality ablation (perfect information upper bound).
type Oracle struct {
	Plant Plant
}

// Name implements Forecaster.
func (o *Oracle) Name() string { return "oracle" }

// Forecast implements Forecaster.
func (o *Oracle) Forecast(sl timeutil.Slot) units.Energy { return o.Plant.SlotEnergy(sl) }

// Observe implements Forecaster.
func (o *Oracle) Observe(timeutil.Slot, units.Energy) {}
