package cooling

import (
	"testing"
	"testing/quick"

	"geovmp/internal/timeutil"
)

func TestPUEModelRegions(t *testing.T) {
	m := DefaultPUE()
	tests := []struct {
		temp float64
		want float64
	}{
		{-10, m.Floor},
		{0, m.Floor},
		{13, m.Floor},
		{32, m.Ceil},
		{45, m.Ceil},
	}
	for _, tt := range tests {
		if got := m.At(tt.temp); got != tt.want {
			t.Errorf("PUE(%v) = %v, want %v", tt.temp, got, tt.want)
		}
	}
	mid := m.At((m.FreeBelowC + m.FullAtC) / 2)
	wantMid := (m.Floor + m.Ceil) / 2
	if diff := mid - wantMid; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mid-range PUE = %v, want %v", mid, wantMid)
	}
}

func TestPUEMonotoneInTemperature(t *testing.T) {
	m := DefaultPUE()
	f := func(a, b float64) bool {
		ta := -20 + mod(a, 70)
		tb := -20 + mod(b, 70)
		if ta > tb {
			ta, tb = tb, ta
		}
		return m.At(ta) <= m.At(tb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	v := x - float64(int(x/m))*m
	if v < 0 {
		v += m
	}
	return v
}

func TestPUEBounds(t *testing.T) {
	for _, site := range []Site{
		{Climate: Lisbon(), Model: DefaultPUE()},
		{Climate: Zurich(), Model: DefaultPUE()},
		{Climate: Helsinki(), Model: DefaultPUE()},
	} {
		for s := 0.0; s < 7*86400; s += 900 {
			p := site.PUEAt(s)
			if p < site.Model.Floor || p > site.Model.Ceil {
				t.Fatalf("%s: PUE %v out of [%v,%v] at t=%v", site.Climate.Name, p, site.Model.Floor, site.Model.Ceil, s)
			}
		}
	}
}

func TestClimateDiurnalShape(t *testing.T) {
	c := Lisbon()
	c.WeatherC = 0 // isolate the diurnal component
	// 15:00 local should be warmer than 03:00 local on the same day.
	afternoon := c.TemperatureAt(15 * 3600)
	night := c.TemperatureAt(3 * 3600)
	if afternoon <= night {
		t.Fatalf("afternoon %v not warmer than night %v", afternoon, night)
	}
}

func TestClimateOrdering(t *testing.T) {
	// Weekly mean temperatures should preserve Lisbon > Zurich > Helsinki,
	// which is what creates the paper's free-cooling diversity.
	mean := func(c Climate) float64 {
		var sum float64
		n := 0
		for s := 0.0; s < 7*86400; s += 3600 {
			sum += c.TemperatureAt(s)
			n++
		}
		return sum / float64(n)
	}
	li, zu, he := mean(Lisbon()), mean(Zurich()), mean(Helsinki())
	if !(li > zu && zu > he) {
		t.Fatalf("mean temps Lisbon=%v Zurich=%v Helsinki=%v not ordered", li, zu, he)
	}
}

func TestTemperatureDeterministic(t *testing.T) {
	c := Zurich()
	if c.TemperatureAt(12345) != c.TemperatureAt(12345) {
		t.Fatal("temperature not deterministic")
	}
}

func TestFacilityPower(t *testing.T) {
	s := Site{Climate: Helsinki(), Model: DefaultPUE()}
	it := 1000.0
	fp := s.FacilityPower(1000, 0)
	pue := s.PUEAt(0)
	if float64(fp) != it*pue {
		t.Fatalf("facility power = %v, want %v", fp, it*pue)
	}
}

func TestMeanPUEOverSlotWithinBounds(t *testing.T) {
	s := Site{Climate: Lisbon(), Model: DefaultPUE()}
	for sl := timeutil.Slot(0); sl < 48; sl++ {
		m := s.MeanPUEOverSlot(sl)
		if m < s.Model.Floor-1e-9 || m > s.Model.Ceil+1e-9 {
			t.Fatalf("mean PUE %v out of model range at slot %d", m, sl)
		}
	}
}
