// Package cooling models the non-IT power overhead of each data center as a
// time-varying Power Usage Effectiveness (PUE).
//
// The paper uses the free-cooling-aware dynamic PUE model of Kim et al.
// (HPCS 2012): when the outside air is cold enough the chillers are bypassed
// and PUE drops near its floor; as the outside temperature rises, mechanical
// cooling ramps and PUE climbs. We drive the PUE with a per-city ambient
// temperature model (diurnal sinusoid plus slow weather noise), which also
// produces the geographic PUE diversity that makes northern DCs attractive.
package cooling

import (
	"math"

	"geovmp/internal/rng"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Climate describes the ambient conditions of one site for the simulated
// horizon (a single week; seasonal drift is out of scope).
type Climate struct {
	Name      string
	Zone      timeutil.Zone
	MeanC     float64 // average temperature, Celsius
	DiurnalC  float64 // half peak-to-trough daily swing, Celsius
	WeatherC  float64 // amplitude of slow random weather deviation, Celsius
	NoiseSeed uint64  // keys the weather noise stream
}

// Presets for the paper's three cities in a mild spring week.
func Lisbon() Climate {
	return Climate{Name: "Lisbon", Zone: timeutil.ZoneLisbon, MeanC: 17, DiurnalC: 4.5, WeatherC: 2.5, NoiseSeed: 101}
}
func Zurich() Climate {
	return Climate{Name: "Zurich", Zone: timeutil.ZoneZurich, MeanC: 10, DiurnalC: 5.5, WeatherC: 3, NoiseSeed: 102}
}
func Helsinki() Climate {
	return Climate{Name: "Helsinki", Zone: timeutil.ZoneHelsinki, MeanC: 4, DiurnalC: 4, WeatherC: 3, NoiseSeed: 103}
}

// TemperatureAt returns the outside temperature in Celsius at the given
// absolute simulation time (seconds). The diurnal peak sits at 15:00 local
// time; a smooth noise term adds day-to-day weather variation.
func (c Climate) TemperatureAt(seconds float64) float64 {
	h := c.Zone.LocalHour(seconds)
	diurnal := c.DiurnalC * math.Cos((h-15)/24*2*math.Pi)
	// One weather lattice point every 6 hours keeps fronts multi-hour wide.
	weather := (rng.SmoothNoise(seconds/(6*3600), c.NoiseSeed) - 0.5) * 2 * c.WeatherC
	return c.MeanC + diurnal + weather
}

// PUEModel converts outside temperature into PUE, piecewise linearly:
//
//	T <= FreeBelowC           -> Floor              (free cooling)
//	FreeBelowC < T < FullAtC  -> linear ramp
//	T >= FullAtC              -> Ceil               (full mechanical cooling)
type PUEModel struct {
	Floor      float64 // PUE with economizer only
	Ceil       float64 // PUE with chillers at full duty
	FreeBelowC float64 // free cooling threshold
	FullAtC    float64 // temperature at which chillers saturate
}

// DefaultPUE returns a free-cooling model consistent with Kim et al.'s
// reported range (PUE ~1.1 in free cooling up to ~1.6 on hot afternoons).
func DefaultPUE() PUEModel {
	return PUEModel{Floor: 1.12, Ceil: 1.62, FreeBelowC: 13, FullAtC: 32}
}

// At returns the PUE for outside temperature tempC.
func (m PUEModel) At(tempC float64) float64 {
	if tempC <= m.FreeBelowC {
		return m.Floor
	}
	if tempC >= m.FullAtC {
		return m.Ceil
	}
	frac := (tempC - m.FreeBelowC) / (m.FullAtC - m.FreeBelowC)
	return m.Floor + frac*(m.Ceil-m.Floor)
}

// Site couples a climate with a PUE model; it is the cooling view of one DC.
type Site struct {
	Climate Climate
	Model   PUEModel
}

// PUEAt returns the site PUE at the given absolute time (seconds).
func (s Site) PUEAt(seconds float64) float64 {
	return s.Model.At(s.Climate.TemperatureAt(seconds))
}

// FacilityPower scales IT power by the site's instantaneous PUE.
func (s Site) FacilityPower(it units.Power, seconds float64) units.Power {
	return units.Power(float64(it) * s.PUEAt(seconds))
}

// MeanPUEOverSlot returns the average PUE across a slot, sampled at 1-minute
// resolution. Placement heuristics use it to estimate next-slot facility
// energy without running the fine loop.
func (s Site) MeanPUEOverSlot(sl timeutil.Slot) float64 {
	const samples = 60
	start := sl.Seconds()
	var sum float64
	for i := 0; i < samples; i++ {
		sum += s.PUEAt(start + float64(i)*timeutil.SlotSeconds/samples)
	}
	return sum / samples
}
