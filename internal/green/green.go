// Package green implements the paper's rule-based green controller: the
// per-DC, every-5-seconds energy source manager that compensates the gap
// between forecast and reality (Sect. IV-B.3).
//
// The rules, verbatim from the paper:
//
//   - Renewable surplus: "when the available renewable energy is more than
//     the DC energy consumption, we use this free energy for the DC and the
//     excess energy is stored in the battery bank."
//   - Deficit at high price: "we use the whole renewable energy for the
//     DC's load and, for the remaining load, we discharge the battery
//     considering its depth of discharge"; whatever the battery cannot
//     cover comes from the grid.
//   - Deficit at low price: "we charge the battery by grid energy and we do
//     not use it for the DC" — the load runs on renewable plus grid, and
//     the grid additionally refills the battery for the next peak window.
package green

import (
	"geovmp/internal/battery"
	"geovmp/internal/price"
	"geovmp/internal/units"
)

// Controller manages one DC's sources. It owns no goroutines; Step is
// called synchronously by the simulator.
type Controller struct {
	Tariff price.Tariff
	Bank   *battery.Bank
}

// Decision reports the energy bookkeeping of one step.
type Decision struct {
	Demand        units.Energy // facility energy required this step
	RenewableUsed units.Energy // renewable energy fed to the load
	RenewableLost units.Energy // renewable energy neither used nor stored
	BatteryOut    units.Energy // battery energy fed to the load
	BatteryIn     units.Energy // AC-side energy routed into the battery (any source)
	GridToLoad    units.Energy // grid energy fed to the load
	GridToBattery units.Energy // grid energy used to charge the battery
	Cost          units.Money  // money paid to the grid this step
	Peak          bool         // whether the peak tariff applied
}

// Grid returns the total grid energy drawn this step.
func (d Decision) Grid() units.Energy { return d.GridToLoad + d.GridToBattery }

// Step advances one control period: demand and renewable are the average
// facility power and PV output over the step, at is the absolute simulation
// time (seconds) and dt the step length. The returned Decision satisfies
// Demand == RenewableUsed + BatteryOut + GridToLoad (energy conservation,
// tested by property).
func (c *Controller) Step(demand, renewable units.Power, at, dt float64) Decision {
	var d Decision
	d.Peak = c.Tariff.IsPeakAt(at)
	p := c.Tariff.At(at)
	d.Demand = demand.ForDuration(dt)
	renewE := renewable.ForDuration(dt)

	if renewE >= d.Demand {
		// Surplus: free energy covers everything, excess to the battery.
		d.RenewableUsed = d.Demand
		excess := renewE - d.Demand
		if excess > 0 {
			stored := c.Bank.Charge(excess.OverSeconds(dt), dt)
			d.BatteryIn = stored
			if lost := excess - stored; lost > 0 {
				d.RenewableLost = lost
			}
		}
		return d
	}

	// Deficit: all renewable goes to the load.
	d.RenewableUsed = renewE
	remaining := d.Demand - renewE
	if d.Peak {
		// High price: battery bridges as much of the rest as it can.
		out := c.Bank.Discharge(remaining.OverSeconds(dt), dt)
		d.BatteryOut = out
		remaining -= out
		if remaining > 0 {
			d.GridToLoad = remaining
		}
	} else {
		// Low price: grid carries the load and refills the battery.
		d.GridToLoad = remaining
		d.GridToBattery = c.Bank.Charge(c.chargePower(), dt)
		d.BatteryIn = d.GridToBattery
	}
	d.Cost = p.Cost(d.Grid())
	return d
}

// chargePower is the grid charging rate during low-price periods: the
// bank's rate limit (Charge clips internally, so offering a large power
// simply charges as fast as the bank allows).
func (c *Controller) chargePower() units.Power {
	return units.Power(1e12)
}
