package green

import (
	"math"
	"testing"
	"testing/quick"

	"geovmp/internal/battery"
	"geovmp/internal/price"
	"geovmp/internal/rng"
	"geovmp/internal/units"
)

func newController(t *testing.T, initSoC float64) *Controller {
	t.Helper()
	b, err := battery.New(battery.Config{
		Capacity:   720 * units.KilowattHour,
		DoD:        0.5,
		InitialSoC: initSoC,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Controller{Tariff: price.ZurichTariff(), Bank: b}
}

// Zurich peak window is 7-21 local = 6-20 UTC.
const (
	peakUTC    = 12 * 3600.0 // peak in Zurich
	offpeakUTC = 2 * 3600.0  // off-peak in Zurich
)

func TestSurplusChargesBattery(t *testing.T) {
	c := newController(t, 0.6)
	before := c.Bank.SoC()
	d := c.Step(50*units.Kilowatt, 120*units.Kilowatt, peakUTC, 5)
	if d.GridToLoad != 0 || d.GridToBattery != 0 {
		t.Fatalf("grid used despite surplus: %+v", d)
	}
	if d.RenewableUsed != d.Demand {
		t.Fatalf("renewable used %v != demand %v", d.RenewableUsed, d.Demand)
	}
	if d.BatteryIn <= 0 {
		t.Fatal("surplus not stored")
	}
	if c.Bank.SoC() <= before {
		t.Fatal("battery SoC did not grow")
	}
	if d.Cost != 0 {
		t.Fatalf("cost %v on a grid-free step", d.Cost)
	}
}

func TestSurplusBeyondBatteryIsLost(t *testing.T) {
	c := newController(t, 1.0) // battery full
	d := c.Step(10*units.Kilowatt, 500*units.Kilowatt, peakUTC, 5)
	if d.BatteryIn != 0 {
		t.Fatalf("full battery accepted charge: %v", d.BatteryIn)
	}
	wantLost := (490 * units.Kilowatt).ForDuration(5)
	if math.Abs(float64(d.RenewableLost-wantLost)) > 1 {
		t.Fatalf("lost %v, want %v", d.RenewableLost, wantLost)
	}
}

func TestPeakDeficitDischargesBattery(t *testing.T) {
	c := newController(t, 1.0)
	d := c.Step(300*units.Kilowatt, 50*units.Kilowatt, peakUTC, 5)
	if !d.Peak {
		t.Fatal("expected peak window")
	}
	if d.BatteryOut <= 0 {
		t.Fatal("battery idle during peak deficit")
	}
	// Energy conservation.
	sum := d.RenewableUsed + d.BatteryOut + d.GridToLoad
	if math.Abs(float64(sum-d.Demand)) > 1e-6 {
		t.Fatalf("conservation violated: %v vs %v", sum, d.Demand)
	}
}

func TestPeakDeficitGridCoversBeyondBattery(t *testing.T) {
	c := newController(t, 1.0)
	// Demand far above the battery's C/4 discharge limit (180 kW).
	d := c.Step(1000*units.Kilowatt, 0, peakUTC, 5)
	if d.GridToLoad <= 0 {
		t.Fatal("grid unused despite battery rate limit")
	}
	if d.Cost <= 0 {
		t.Fatal("grid energy cost not accounted")
	}
}

func TestOffPeakChargesFromGridAndSparesBattery(t *testing.T) {
	c := newController(t, 0.5) // empty usable range
	before := c.Bank.SoC()
	d := c.Step(200*units.Kilowatt, 20*units.Kilowatt, offpeakUTC, 5)
	if d.Peak {
		t.Fatal("expected off-peak window")
	}
	if d.BatteryOut != 0 {
		t.Fatal("battery used for load during off-peak")
	}
	if d.GridToBattery <= 0 {
		t.Fatal("battery not charged from grid during off-peak")
	}
	if c.Bank.SoC() <= before {
		t.Fatal("SoC did not grow")
	}
	// Load served by renewable + grid only.
	sum := d.RenewableUsed + d.GridToLoad
	if math.Abs(float64(sum-d.Demand)) > 1e-6 {
		t.Fatalf("conservation violated off-peak: %v vs %v", sum, d.Demand)
	}
	// Cost covers both load and charging energy.
	wantCost := c.Tariff.OffPeak.Cost(d.Grid())
	if math.Abs(float64(d.Cost-wantCost)) > 1e-9 {
		t.Fatalf("cost %v, want %v", d.Cost, wantCost)
	}
}

func TestOffPeakStopsChargingWhenFull(t *testing.T) {
	c := newController(t, 1.0)
	d := c.Step(100*units.Kilowatt, 0, offpeakUTC, 5)
	if d.GridToBattery != 0 {
		t.Fatal("charged a full battery")
	}
}

func TestZeroDemandZeroRenewable(t *testing.T) {
	c := newController(t, 0.8)
	d := c.Step(0, 0, peakUTC, 5)
	if d.Demand != 0 || d.GridToLoad != 0 || d.BatteryOut != 0 {
		t.Fatalf("idle step moved energy: %+v", d)
	}
}

func TestBatteryPreservedAcrossDoD(t *testing.T) {
	c := newController(t, 0.6)
	// Long heavy peak: battery must stop at the DoD floor.
	for i := 0; i < 5000; i++ {
		c.Step(500*units.Kilowatt, 0, peakUTC, 5)
	}
	if err := c.Bank.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Bank.Usable() > 1e-6 {
		t.Fatalf("usable energy left unexpectedly: %v", c.Bank.Usable())
	}
	// Floor, not empty: SoC stays at half capacity.
	if c.Bank.SoC() < c.Bank.Capacity()/2-1 {
		t.Fatalf("SoC %v dipped below the outage reserve", c.Bank.SoC())
	}
}

// TestEnergyConservationProperty fuzzes demand/renewable/time and asserts
// the load is always exactly covered by the three sources.
func TestEnergyConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		b, err := battery.New(battery.Config{
			Capacity:   480 * units.KilowattHour,
			DoD:        0.5,
			InitialSoC: src.Range(0.5, 1),
		})
		if err != nil {
			return false
		}
		c := &Controller{Tariff: price.HelsinkiTariff(), Bank: b}
		for i := 0; i < 300; i++ {
			demand := units.Power(src.Range(0, 800_000))
			renew := units.Power(src.Range(0, 300_000))
			at := src.Range(0, 7*86400)
			d := c.Step(demand, renew, at, 5)
			sum := d.RenewableUsed + d.BatteryOut + d.GridToLoad
			if math.Abs(float64(sum-d.Demand)) > 1e-6 {
				return false
			}
			if d.RenewableUsed < 0 || d.BatteryOut < 0 || d.GridToLoad < 0 ||
				d.GridToBattery < 0 || d.RenewableLost < 0 {
				return false
			}
			if b.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPeakCostHigherThanOffPeakForSameDraw(t *testing.T) {
	cPeak := newController(t, 0.5)
	cOff := newController(t, 0.5)
	// Identical deficit with an empty battery: pay grid either way.
	dPeak := cPeak.Step(400*units.Kilowatt, 0, peakUTC, 5)
	dOff := cOff.Step(400*units.Kilowatt, 0, offpeakUTC, 5)
	if dPeak.Cost <= 0 {
		t.Fatal("no peak cost")
	}
	// Off-peak pays for load AND charging, yet the *rate* is half; for this
	// battery (C/4 = 180 kW) the off-peak total stays below the peak bill.
	if dOff.Cost >= dPeak.Cost {
		t.Fatalf("off-peak bill %v not below peak bill %v", dOff.Cost, dPeak.Cost)
	}
}

func TestGridTotal(t *testing.T) {
	d := Decision{GridToLoad: 100, GridToBattery: 50}
	if d.Grid() != 150 {
		t.Fatalf("grid total %v", d.Grid())
	}
}
