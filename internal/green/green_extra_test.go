package green

import (
	"math"
	"testing"

	"geovmp/internal/battery"
	"geovmp/internal/price"
	"geovmp/internal/units"
)

func TestSurplusDuringPeakStillStores(t *testing.T) {
	// The surplus rule is price-independent: excess PV at peak hours also
	// charges the battery.
	c := newController(t, 0.6)
	d := c.Step(10*units.Kilowatt, 200*units.Kilowatt, peakUTC, 5)
	if d.BatteryIn <= 0 {
		t.Fatal("peak-time surplus not stored")
	}
	if d.Grid() != 0 {
		t.Fatal("grid touched during surplus")
	}
}

func TestExactBalanceNoFlows(t *testing.T) {
	c := newController(t, 0.75)
	d := c.Step(50*units.Kilowatt, 50*units.Kilowatt, peakUTC, 5)
	if d.BatteryIn != 0 || d.BatteryOut != 0 || d.Grid() != 0 {
		t.Fatalf("exact balance moved energy: %+v", d)
	}
	if d.RenewableUsed != d.Demand {
		t.Fatal("renewable must cover the load exactly")
	}
}

func TestCostProportionalToTariff(t *testing.T) {
	// Identical deficits at peak vs off-peak with a drained battery: the
	// bills must be in the tariff ratio once charging is removed.
	mk := func() *Controller {
		b, err := battery.New(battery.Config{
			Capacity:   1 * units.KilowattHour, // negligible
			DoD:        0.5,
			InitialSoC: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &Controller{Tariff: price.ZurichTariff(), Bank: b}
	}
	peakCtl, offCtl := mk(), mk()
	dPeak := peakCtl.Step(100*units.Kilowatt, 0, peakUTC, 5)
	dOff := offCtl.Step(100*units.Kilowatt, 0, offpeakUTC, 5)
	// Remove the off-peak battery charge component (tiny battery bounds it).
	offLoadCost := float64(price.ZurichTariff().OffPeak.Cost(dOff.GridToLoad))
	ratio := float64(dPeak.Cost) / offLoadCost
	want := float64(price.ZurichTariff().Peak) / float64(price.ZurichTariff().OffPeak)
	if math.Abs(ratio-want) > 0.05 {
		t.Fatalf("cost ratio = %v, want tariff ratio %v", ratio, want)
	}
}

func TestDecisionDemandMatchesInput(t *testing.T) {
	c := newController(t, 0.8)
	d := c.Step(123*units.Kilowatt, 45*units.Kilowatt, offpeakUTC, 5)
	want := (123 * units.Kilowatt).ForDuration(5)
	if math.Abs(float64(d.Demand-want)) > 1e-9 {
		t.Fatalf("demand = %v, want %v", d.Demand, want)
	}
}

func TestLongRunBatteryCycles(t *testing.T) {
	// Over a simulated day with diurnal PV, the battery must both charge
	// and discharge at least once (the arbitrage loop actually cycles).
	c := newController(t, 0.75)
	var charged, discharged bool
	for s := 0.0; s < 86400; s += 300 {
		demand := units.Power(150e3)
		var pv units.Power
		h := s / 3600
		if h > 7 && h < 19 {
			pv = units.Power(400e3 * math.Sin((h-7)/12*math.Pi))
		}
		d := c.Step(demand, pv, s, 300)
		if d.BatteryIn > 0 {
			charged = true
		}
		if d.BatteryOut > 0 {
			discharged = true
		}
		if err := c.Bank.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !charged || !discharged {
		t.Fatalf("battery did not cycle: charged=%v discharged=%v", charged, discharged)
	}
}
