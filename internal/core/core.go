// Package core implements the paper's primary contribution: the two-phase
// multi-objective VM placement controller for green geo-distributed data
// centers (Sect. IV).
//
// Global phase, once per slot:
//
//  1. Force-directed embedding (internal/embed): VMs become 2D points;
//     bidirectional data correlation attracts, CPU-load correlation repels,
//     blended by the energy/performance weight alpha (Eq. 5). Positions
//     persist across slots ("the final location of all the VMs becomes the
//     initial position for the next time slot").
//  2. Capacity caps: each DC receives an energy budget (Joules) for the
//     coming slot from its usable battery energy, its renewable forecast,
//     and a grid allowance that favors cheap-tariff DCs; the fleet demand
//     is predicted with a last-value predictor on the previous slot's
//     facility energy. Caps are clamped to each DC's physical ceiling and
//     scaled to cover predicted demand.
//  3. Modified k-means (internal/cluster) groups the embedded points into
//     one capacity-capped cluster per DC, centroids seeded from the
//     previous slot.
//  4. Migration revision (internal/migrate, Algorithm 2) converts the
//     clustering into executable migrations under the per-link latency
//     budget; everything else stays put.
//
// Local phase, per DC: correlation-aware allocation with DVFS
// (internal/alloc), shared with the Ener-aware baseline.
package core

import (
	"sort"
	"time"

	"geovmp/internal/alloc"
	"geovmp/internal/cluster"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/embed"
	"geovmp/internal/migrate"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Compile-time check: the controller participates in the rolling-horizon
// engine's epoch protocol.
var _ policy.EpochAware = (*Controller)(nil)

// Controller is the proposed placement method. It carries per-slot state
// (point positions, centroids) and must be used for one simulation at a
// time.
type Controller struct {
	// Alpha is the energy-performance trade-off weight of Eq. 5:
	// 1 weighs only data correlation (performance), 0 only CPU-load
	// correlation (energy). Default 0.9: the energy objective is carried
	// mostly by the correlation-aware local allocator, so the global
	// geometry can afford to favor data locality (the ablation bench
	// sweeps the full range).
	Alpha float64
	// DemandHeadroom scales the predicted fleet demand when sizing caps
	// (default 1.10): slight over-provisioning absorbs forecast error.
	DemandHeadroom float64
	// NoEmbedding disables the force-directed phase (ablation A2): points
	// keep inherited/scattered positions, so k-means sees no correlation
	// geometry.
	NoEmbedding bool
	// Embed tunes the force-directed layout.
	Embed embed.Config
	// KMeans iteration cap (default 12).
	KMeansIters int
	// Stick is the k-means stay-bias in (0,1]: the distance from a VM to
	// its current DC's centroid is multiplied by it, making staying
	// cheaper than moving (default 0.7; 1 disables).
	Stick float64
	// CapSmooth is the EMA weight on the previous slot's caps in [0,1)
	// (default 0.8; negative disables smoothing).
	CapSmooth float64

	positions map[int]embed.Point
	centroids []embed.Point
	prevCaps  []float64
	// reoptimize is armed by StartEpoch and consumed by the next Place: the
	// boundary slot re-runs the embedding with a warm-restart iteration
	// boost and rebuilds the capacity caps without the previous epoch's EMA
	// history, so the layout and the energy budgets re-converge to the new
	// workload regime instead of drifting toward it one damped slot at a
	// time.
	reoptimize bool

	// embedCache retains fast-mode force state between embedding runs so
	// warm restarts recompute only rows whose correlation inputs changed.
	// Lazily created on the first fast-mode Place.
	embedCache *embed.Cache

	// LastEmbedIters and LastEmbedCost record the most recent embedding
	// run's iteration count and cost trace (diagnostics).
	LastEmbedIters int
	LastEmbedCost  []float64
	// EmbedNS accumulates wall time (ns) spent inside embed.Run across the
	// simulation; BoundaryEmbedNS the subset spent on epoch-boundary
	// re-optimization slots. Benchmarks read these to isolate the
	// embedding's share of a slot.
	EmbedNS         int64
	BoundaryEmbedNS int64
}

// New returns a Controller with the given alpha (0.9 when out of range) and
// deterministic behavior keyed by seed.
func New(alpha float64, seed uint64) *Controller {
	if alpha < 0 || alpha > 1 {
		alpha = 0.9
	}
	return &Controller{
		Alpha: alpha,
		Embed: embed.Config{Seed: seed, MaxIters: 20, MaxDisplace: 1.0, RepulsionScale: 4},
	}
}

// Name implements policy.Policy.
func (c *Controller) Name() string { return "Proposed" }

// reoptBoost multiplies the embedding iteration budget on an epoch-boundary
// slot: enough extra sweeps for the warm-started layout to re-converge to a
// shifted regime, well short of the 5x cold-start budget.
const reoptBoost = 3

// StartEpoch implements policy.EpochAware: the next Place re-optimizes for
// the new epoch, warm-started from the carried positions and centroids.
func (c *Controller) StartEpoch(epoch int, start timeutil.Slot) {
	c.reoptimize = true
}

// field adapts a slot's correlation data to the embedding's force model
// (Eq. 5).
type field struct {
	alpha float64
	ps    *correlation.ProfileSet
	vols  *correlation.DataMatrix
	ref   units.DataSize
	peers map[int][]int
	// fast routes the repulsion term through the quantized
	// peak-coincidence kernel (error bound correlation.FastEps per pair).
	fast bool
}

// Force implements embed.Field: F_t exerted on `onto` by `by`, combining
// the attraction of the data `by` sends toward `onto` with peak-coincidence
// repulsion.
func (f *field) Force(onto, by int) float64 {
	fa := correlation.NormalizeData(f.vols.Vol(by, onto), f.ref)
	var fr float64
	if f.fast {
		fr = f.ps.CPUCorrFast(onto, by)
	} else {
		fr = f.ps.CPUCorr(onto, by)
	}
	return f.alpha*fa + (1-f.alpha)*fr
}

// Generation implements embed.GenField: a per-VM change counter covering
// every input a force involving id depends on — its utilization profile
// and every volume cell touching it. Sums of the two containers'
// monotonic counters, so any single-input change moves the result.
func (f *field) Generation(id int) uint64 {
	return f.ps.Gen(id) + f.vols.Gen(id)
}

// RepulsionRow implements embed.SplitField: the peak-coincidence term is
// symmetric, so the dense cache evaluates it once per unordered pair, one
// bulk profile-set sweep per row — and the sampled mode batches each
// point's hashed partners through it, skipping the volume-matrix probe
// Force pays on non-communicating pairs. For such pairs Force computes
// alpha*0 + (1-alpha)*fr, which equals this row's (1-alpha)*fr bit for
// bit, satisfying the SplitField decomposition contract.
func (f *field) RepulsionRow(a int, bs []int, dst []float64) {
	if f.fast {
		f.ps.CPUCorrFastInto(dst, a, bs)
	} else {
		f.ps.CPUCorrInto(dst, a, bs)
	}
	w := 1 - f.alpha
	for k := range dst {
		dst[k] *= w
	}
}

// EachAttraction implements embed.SplitField over the sparse volume matrix:
// the data `by` sends toward `onto` attracts `onto`.
func (f *field) EachAttraction(fn func(onto, by int, fa float64)) {
	f.vols.Each(func(from, to int, vol units.DataSize) {
		if fa := f.alpha * correlation.NormalizeData(vol, f.ref); fa != 0 {
			fn(to, from, fa)
		}
	})
}

// AttractionPeers implements embed.Field.
func (f *field) AttractionPeers(id int) []int { return f.peers[id] }

func buildField(alpha float64, in *policy.Input) *field {
	// Reference volume for attraction normalization: the mean pair volume.
	// The volume distribution is heavy-tailed (log-normal), so normalizing
	// by the maximum would flatten typical pairs to nothing; the mean
	// clamps heavy hitters at -1 and keeps ordinary service chatter
	// strongly attractive.
	return newField(alpha, in.Profiles, in.Volumes, in.Volumes.Mean(), nil)
}

// NewField adapts one snapshot of correlation state to the embedding's
// force model (Eq. 5) — the same field the proposed controller embeds with,
// exported so the streaming daemon's incremental refinement and background
// reconciliation exert bit-identical forces to the batch global phase. ref
// is the attraction normalization volume (typically the matrix mean); peers
// may be nil to derive the data adjacency from the volume matrix, or an
// incrementally maintained adjacency so construction stays O(1) on a
// serving hot path.
func NewField(alpha float64, ps *correlation.ProfileSet, vols *correlation.DataMatrix, ref units.DataSize, peers map[int][]int) embed.Field {
	return newField(alpha, ps, vols, ref, peers)
}

func newField(alpha float64, ps *correlation.ProfileSet, vols *correlation.DataMatrix, ref units.DataSize, peers map[int][]int) *field {
	f := &field{alpha: alpha, ps: ps, vols: vols, ref: ref, peers: peers}
	if f.peers != nil {
		return f
	}
	f.peers = make(map[int][]int)
	seen := make(map[[2]int]bool)
	vols.Each(func(from, to int, _ units.DataSize) {
		// Volume from->to attracts both endpoints; register each direction
		// once.
		if !seen[[2]int{to, from}] {
			f.peers[to] = append(f.peers[to], from)
			seen[[2]int{to, from}] = true
		}
		if !seen[[2]int{from, to}] {
			f.peers[from] = append(f.peers[from], to)
			seen[[2]int{from, to}] = true
		}
	})
	return f
}

// roundTripEff is the assumed battery round-trip efficiency used to price
// stored energy in the cap computation (charged off-peak, delivered later).
const roundTripEff = 0.90

// caps computes the per-DC energy capacity caps (step 2 of the global
// phase). The budget — predicted fleet demand (last-value predictor on the
// previous slot's facility energy) times a headroom margin — is covered by
// the cheapest energy in the fleet first. Each DC contributes up to three
// tiers, priced at their marginal cost:
//
//	renewable forecast  -> ~0 (lost if not consumed on site)
//	usable battery      -> the DC's off-peak tariff / round-trip efficiency
//	                       (that is what refilling it will cost)
//	grid headroom       -> the DC's current tariff
//
// Tiers are water-filled in merit order until the budget is spent, each DC
// clamped to its physical energy ceiling. Caps therefore sum to about
// demand x headroom and *steer* load toward sites whose energy is cheapest
// right now — sunny sites by day, cheap-tariff sites by night — rather than
// merely bounding it. A final EMA with the previous slot's caps damps
// day/night whipsaw so the migration budget is not burned on oscillation.
func (c *Controller) caps(in *policy.Input) []float64 {
	n := len(in.DCs)
	ceiling := make([]float64, n)
	for i := range in.DCs {
		ceiling[i] = float64(in.DCs[i].SlotEnergyCeiling(in.Slot))
	}

	// Last-value demand predictor with a headroom margin; cold start falls
	// back to the per-VM energy estimates.
	var demand float64
	for _, e := range in.LastEnergy {
		demand += float64(e)
	}
	if demand <= 0 {
		for _, e := range in.VMEnergy {
			demand += e
		}
	}
	headroom := c.DemandHeadroom
	if headroom <= 0 {
		headroom = 1.10
	}
	budget := demand * headroom

	type tier struct {
		dc     int
		amount float64
		cost   float64
	}
	tiers := make([]tier, 0, 3*n)
	for i, d := range in.DCs {
		tiers = append(tiers,
			tier{dc: i, amount: float64(in.RenewForecast[i]), cost: 0},
			tier{dc: i, amount: float64(in.BatteryAvail[i]), cost: float64(d.Tariff.OffPeak) / roundTripEff},
			tier{dc: i, amount: ceiling[i], cost: float64(in.Prices[i])},
		)
	}
	sort.SliceStable(tiers, func(a, b int) bool {
		if tiers[a].cost != tiers[b].cost {
			return tiers[a].cost < tiers[b].cost
		}
		// Equal-cost tiers favor the larger source so free energy pools
		// (e.g. two sunny sites) are consumed where they are deepest.
		if tiers[a].amount != tiers[b].amount {
			return tiers[a].amount > tiers[b].amount
		}
		return tiers[a].dc < tiers[b].dc
	})

	caps := make([]float64, n)
	remaining := budget
	for _, t := range tiers {
		if remaining <= 0 {
			break
		}
		take := t.amount
		if room := ceiling[t.dc] - caps[t.dc]; take > room {
			take = room
		}
		if take > remaining {
			take = remaining
		}
		if take > 0 {
			caps[t.dc] += take
			remaining -= take
		}
	}

	// Smooth against the previous slot's caps to avoid fleet-wide churn at
	// tariff boundaries (heavier weight on history: tariff windows are
	// hours wide, so chasing them within a few slots is fast enough).
	smooth := c.CapSmooth
	if smooth == 0 {
		smooth = 0.8
	}
	if smooth < 0 || smooth >= 1 {
		smooth = 0
	}
	if c.prevCaps != nil && len(c.prevCaps) == n {
		for i := range caps {
			caps[i] = (1-smooth)*caps[i] + smooth*c.prevCaps[i]
		}
	}
	c.prevCaps = append(c.prevCaps[:0], caps...)
	return caps
}

// Caps exposes the cap computation for tests and the ablation benches.
func (c *Controller) Caps(in *policy.Input) []float64 { return c.caps(in) }

// Place implements policy.Policy: the full global phase.
func (c *Controller) Place(in *policy.Input) policy.Placement {
	ids := in.ActiveVMs
	n := len(in.DCs)

	reopt := c.reoptimize
	c.reoptimize = false
	if reopt {
		// New regime: budgets are re-derived from the boundary slot's own
		// observations rather than damped toward the old epoch's caps.
		c.prevCaps = nil
	}

	// Step 1: embedding. Inherited positions persist; a VM seen for the
	// first time starts at the centroid of its data-correlated peers (its
	// service lives there already — scattering it across the plane would
	// fragment the service until enough migration budget accrues to fix
	// it), falling back to the deterministic scatter. Departed VMs are
	// pruned lazily by rebuilding the map from this slot's result.
	f := buildField(c.Alpha, in)
	fast := c.Embed.FastMath || in.FastMath
	f.fast = fast
	init := make(map[int]embed.Point, len(ids))
	for _, id := range ids {
		if p, ok := c.positions[id]; ok {
			init[id] = p
			continue
		}
		var cx, cy float64
		known := 0
		for _, peer := range f.peers[id] {
			if p, ok := c.positions[peer]; ok {
				cx += p.X
				cy += p.Y
				known++
			}
		}
		if known > 0 {
			jit := embed.InitialPosition(id, 0.5, c.Embed.Seed)
			init[id] = embed.Point{X: cx/float64(known) + jit.X, Y: cy/float64(known) + jit.Y}
		}
	}
	var pos map[int]embed.Point
	if c.NoEmbedding {
		pos = make(map[int]embed.Point, len(ids))
		for _, id := range ids {
			if p, ok := init[id]; ok {
				pos[id] = p
			} else {
				pos[id] = embed.InitialPosition(id, 10, c.Embed.Seed)
			}
		}
	} else {
		cfg := c.Embed
		cfg.Workers = in.Workers
		if fast {
			cfg.FastMath = true
			if c.embedCache == nil {
				c.embedCache = embed.NewCache()
			}
			cfg.Cache = c.embedCache
			// Build the quantized tables alongside the sample orders below.
			in.Profiles.SetFastMath(true)
		}
		// The embedding queries CPU correlations from concurrent shards;
		// precomputing the pruned kernel's sample orders here (itself
		// sharded) makes the profile set read-only for the rest of the
		// slot.
		in.Profiles.EnsureOrders(in.Workers)
		if c.positions == nil {
			// Cold start: "initially, at time slot 0, all the points are
			// distributed in the 2D plane" — give the layout room to
			// converge before the first clustering; later slots only
			// refine.
			cfg.MaxIters = 5 * maxInt(cfg.MaxIters, 20)
		} else if reopt {
			// Epoch boundary: warm-started re-optimization toward the new
			// regime's correlation geometry.
			cfg.MaxIters = reoptBoost * maxInt(cfg.MaxIters, 20)
		}
		start := time.Now()
		res := embed.Run(ids, init, f, cfg)
		ns := time.Since(start).Nanoseconds()
		c.EmbedNS += ns
		if reopt {
			c.BoundaryEmbedNS += ns
		}
		c.LastEmbedIters = res.Iterations
		c.LastEmbedCost = res.Cost
		pos = res.Pos
	}
	c.positions = pos

	// Step 2+3: caps and capacity-capped k-means.
	caps := c.caps(in)
	items := make([]cluster.Item, len(ids))
	for k, id := range ids {
		cur, ok := in.Current[id]
		if !ok {
			cur = -1
		}
		items[k] = cluster.Item{ID: id, Pos: pos[id], Load: in.VMEnergy[id], Current: cur}
	}
	iters := c.KMeansIters
	if iters == 0 {
		iters = 12
	}
	stick := c.Stick
	if stick == 0 {
		stick = 0.7
	}
	kres := cluster.Run(items, cluster.Config{
		K:        n,
		Caps:     caps,
		Init:     c.centroids,
		MaxIters: iters,
		Stick:    stick,
		Workers:  in.Workers,
	})

	// Step 4: migration revision (Algorithm 2).
	loads := make([]float64, n)
	for _, id := range ids {
		if cur, ok := in.Current[id]; ok {
			loads[cur] += in.VMEnergy[id]
		}
	}
	cands := make([]migrate.Candidate, len(ids))
	for k, id := range ids {
		cur, ok := in.Current[id]
		if !ok {
			cur = -1
		}
		target := kres.Assign[id]
		cands[k] = migrate.Candidate{
			ID:      id,
			Current: cur,
			Target:  target,
			Load:    in.VMEnergy[id],
			Image:   in.Image[id],
			Dist:    kres.DistToCentroid(pos[id], target),
		}
	}
	mres := migrate.Run(cands, migrate.Config{
		NDC:        n,
		Caps:       caps,
		Loads:      loads,
		Constraint: in.Constraint,
		Net:        in.Net,
	})

	// Carry centroids of the *final* placement into the next slot.
	c.centroids = cluster.CentroidsOf(items, mres.Placement, n, kres.Centroids)

	return policy.Placement{DCOf: mres.Placement, Moves: mres.Moves, Rejected: mres.Rejected}
}

// Allocate implements policy.Policy: the correlation-aware local phase.
func (c *Controller) Allocate(d *dc.DC, ids []int, ps *correlation.ProfileSet) alloc.Result {
	return alloc.CorrelationAware(ids, ps, d.Model, d.Servers)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Positions exposes the controller's current embedding layout (read-only
// view for diagnostics and visualization tools).
func (c *Controller) Positions() map[int]embed.Point { return c.positions }

// EmbedCacheStats reports the fast-mode force cache's cumulative reuse
// counters (zero value when fast mode never ran).
func (c *Controller) EmbedCacheStats() embed.CacheStats {
	if c.embedCache == nil {
		return embed.CacheStats{}
	}
	return c.embedCache.Stats
}
