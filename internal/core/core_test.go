package core

import (
	"testing"

	"geovmp/internal/battery"
	"geovmp/internal/cooling"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/embed"
	"geovmp/internal/green"
	"geovmp/internal/network"
	"geovmp/internal/policy"
	"geovmp/internal/power"
	"geovmp/internal/price"
	"geovmp/internal/rng"
	"geovmp/internal/solar"
	"geovmp/internal/units"
)

func testFleet(t *testing.T) dc.Fleet {
	t.Helper()
	climates := []cooling.Climate{cooling.Lisbon(), cooling.Zurich(), cooling.Helsinki()}
	plants := []solar.Plant{solar.LisbonPlant(), solar.ZurichPlant(), solar.HelsinkiPlant()}
	tariffs := []price.Tariff{price.LisbonTariff(), price.ZurichTariff(), price.HelsinkiTariff()}
	fleet := make(dc.Fleet, 3)
	for i := range fleet {
		bank, err := battery.New(battery.Config{Capacity: 50 * units.KilowattHour, DoD: 0.5, InitialSoC: 0.75})
		if err != nil {
			t.Fatal(err)
		}
		fleet[i] = &dc.DC{
			Index: i, Name: tariffs[i].Name, Servers: 6,
			Model:   power.E5410(),
			Cooling: cooling.Site{Climate: climates[i], Model: cooling.DefaultPUE()},
			Plant:   plants[i], Bank: bank, Tariff: tariffs[i],
			Forecast: &solar.LastValue{},
			Green:    &green.Controller{Tariff: tariffs[i], Bank: bank},
		}
	}
	return fleet
}

// buildInput creates an Input with nVMs; pairs (2k, 2k+1) exchange data.
func buildInput(t *testing.T, nVMs int, current map[int]int) *policy.Input {
	t.Helper()
	fleet := testFleet(t)
	ps := correlation.NewProfileSet(4)
	vmEnergy := make([]float64, nVMs+8)
	image := make([]units.DataSize, nVMs+8)
	ids := make([]int, nVMs)
	dm := correlation.NewDataMatrix()
	for id := 0; id < nVMs; id++ {
		ids[id] = id
		phase := id % 4
		prof := []float64{0.2, 0.2, 0.2, 0.2}
		prof[phase] = 0.8
		ps.Add(id, prof)
		vmEnergy[id] = 1000
		image[id] = 2 * units.Gigabyte
		if id%2 == 1 {
			dm.Add(id-1, id, 20*units.Megabyte)
			dm.Add(id, id-1, 15*units.Megabyte)
		}
	}
	if current == nil {
		current = map[int]int{}
	}
	return &policy.Input{
		Slot:          1,
		ActiveVMs:     ids,
		Current:       current,
		Profiles:      ps,
		Volumes:       dm,
		VMEnergy:      vmEnergy,
		Image:         image,
		DCs:           fleet,
		Prices:        []units.Price{0.22, 0.26, 0.16},
		RenewForecast: make([]units.Energy, 3),
		BatteryAvail:  make([]units.Energy, 3),
		LastEnergy:    make([]units.Energy, 3),
		Net:           network.NewState(network.PaperTopology(), rng.New(3)),
		Constraint:    72,
	}
}

func TestName(t *testing.T) {
	if New(0.5, 1).Name() != "Proposed" {
		t.Fatal("name drifted")
	}
}

func TestNewClampsAlpha(t *testing.T) {
	if New(-1, 1).Alpha != 0.9 || New(2, 1).Alpha != 0.9 {
		t.Fatal("alpha default not applied")
	}
	if New(0.3, 1).Alpha != 0.3 {
		t.Fatal("valid alpha overridden")
	}
}

func TestPlaceCoversEveryVM(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 24, nil)
	p := c.Place(in)
	for _, id := range in.ActiveVMs {
		d, ok := p.DCOf[id]
		if !ok || d < 0 || d >= 3 {
			t.Fatalf("VM %d placement invalid: %d (ok=%v)", id, d, ok)
		}
	}
}

func TestPlaceKeepsDataPairsTogether(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 24, nil)
	p := c.Place(in)
	together := 0
	for id := 0; id < 24; id += 2 {
		if p.DCOf[id] == p.DCOf[id+1] {
			together++
		}
	}
	if together < 9 {
		t.Fatalf("only %d/12 data pairs colocated", together)
	}
}

func TestCapsWaterFilling(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 6, nil)
	// Fleet demand: 6 kJ (VMEnergy) x headroom.
	// Give DC1 (expensive Zurich) a renewable forecast covering everything:
	// merit order must hand it the whole budget despite its tariff.
	in.RenewForecast[1] = units.Energy(1e6)
	caps := c.Caps(in)
	if caps[1] < caps[0] || caps[1] < caps[2] {
		t.Fatalf("renewable-rich DC not favored: %v", caps)
	}
}

func TestCapsGridGoesToCheapest(t *testing.T) {
	c := New(0.9, 7)
	c.CapSmooth = -1 // isolate a single computation
	in := buildInput(t, 6, nil)
	// No free energy anywhere: grid water-filling should favor DC2
	// (cheapest price 0.16).
	caps := c.Caps(in)
	if !(caps[2] > caps[0] && caps[2] > caps[1]) {
		t.Fatalf("cheapest DC not favored: %v", caps)
	}
	// Budget conservation: caps sum to demand x headroom (6000 x 1.1),
	// well under any ceiling.
	var sum float64
	for _, v := range caps {
		sum += v
	}
	want := 6000 * 1.1
	if sum < want*0.99 || sum > want*1.01 {
		t.Fatalf("caps sum %v, want ~%v", sum, want)
	}
}

func TestCapsBatteryPricedByOffPeak(t *testing.T) {
	c := New(0.9, 7)
	c.CapSmooth = -1
	in := buildInput(t, 6, nil)
	// Batteries only; Helsinki's off-peak (0.08) is the cheapest refill, so
	// its battery tier wins the budget.
	for i := range in.BatteryAvail {
		in.BatteryAvail[i] = units.Energy(1e6)
	}
	caps := c.Caps(in)
	if !(caps[2] > caps[0] && caps[2] > caps[1]) {
		t.Fatalf("cheapest battery not favored: %v", caps)
	}
}

func TestCapsSmoothingDampsSwings(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 6, nil)
	in.RenewForecast[0] = units.Energy(1e6)
	first := append([]float64(nil), c.Caps(in)...)
	// Flip the free energy to DC2 and recompute: smoothing keeps DC0's cap
	// from collapsing instantly.
	in.RenewForecast[0] = 0
	in.RenewForecast[2] = units.Energy(1e6)
	second := c.Caps(in)
	if second[0] <= 0.1*first[0] {
		t.Fatalf("cap collapsed despite smoothing: %v -> %v", first[0], second[0])
	}
}

func TestMigrationLatencyRespected(t *testing.T) {
	c := New(0.9, 7)
	cur := map[int]int{}
	for i := 0; i < 24; i++ {
		cur[i] = 0
	}
	in := buildInput(t, 24, cur)
	in.Constraint = 0.0001 // nothing can move
	p := c.Place(in)
	if len(p.Moves) != 0 {
		t.Fatalf("moves executed under an impossible budget: %d", len(p.Moves))
	}
	for i := 0; i < 24; i++ {
		if p.DCOf[i] != 0 {
			t.Fatalf("VM %d moved without a migration", i)
		}
	}
}

func TestNewVMsSeededNearPeers(t *testing.T) {
	c := New(0.9, 7)
	// Slot A: place VMs 0..9 (pairs).
	in := buildInput(t, 10, nil)
	c.Place(in)
	posBefore := c.Positions()
	peerPos, ok := posBefore[0]
	if !ok {
		t.Fatal("no position for VM 0")
	}
	// Slot B: VM 10 arrives talking to VM 0.
	in2 := buildInput(t, 11, nil)
	for id := 0; id < 10; id++ {
		in2.Current[id] = 0
	}
	in2.Volumes.Add(0, 10, 500*units.Megabyte)
	in2.Volumes.Add(10, 0, 500*units.Megabyte)
	c.Place(in2)
	got := c.Positions()[10]
	scatter := embed.InitialPosition(10, 10, c.Embed.Seed)
	if embed.Dist(got, peerPos) > embed.Dist(scatter, peerPos)+5 {
		t.Fatalf("new VM not seeded near its peer: got %v, peer at %v", got, peerPos)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() map[int]int {
		c := New(0.9, 11)
		in := buildInput(t, 30, nil)
		p1 := c.Place(in)
		cur := map[int]int{}
		for id, d := range p1.DCOf {
			cur[id] = d
		}
		in2 := buildInput(t, 30, cur)
		in2.Slot = 2
		return c.Place(in2).DCOf
	}
	a, b := run(), run()
	for id, d := range a {
		if b[id] != d {
			t.Fatalf("placement of %d diverged", id)
		}
	}
}

func TestNoEmbeddingStillPlaces(t *testing.T) {
	c := New(0.9, 7)
	c.NoEmbedding = true
	in := buildInput(t, 16, nil)
	p := c.Place(in)
	for _, id := range in.ActiveVMs {
		if _, ok := p.DCOf[id]; !ok {
			t.Fatalf("VM %d unplaced in no-embedding mode", id)
		}
	}
	if c.LastEmbedIters != 0 {
		t.Fatal("embedding ran despite NoEmbedding")
	}
}

func TestAllocateUsesCorrelationAwarePacker(t *testing.T) {
	c := New(0.9, 7)
	fleet := testFleet(t)
	ps := correlation.NewProfileSet(4)
	ps.Add(0, []float64{6, 1, 6, 1})
	ps.Add(1, []float64{1, 6, 1, 6})
	res := c.Allocate(fleet[0], []int{0, 1}, ps)
	if res.Active != 1 {
		t.Fatalf("anti-correlated pair split across %d servers", res.Active)
	}
}

func TestStatePersistsAcrossSlots(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 12, nil)
	c.Place(in)
	if len(c.Positions()) != 12 {
		t.Fatalf("positions not retained: %d", len(c.Positions()))
	}
	// Departed VMs pruned on the next call.
	in2 := buildInput(t, 8, nil)
	in2.Slot = 2
	c.Place(in2)
	if len(c.Positions()) != 8 {
		t.Fatalf("departed VMs not pruned: %d", len(c.Positions()))
	}
}
