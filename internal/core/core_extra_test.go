package core

import (
	"math"
	"testing"

	"geovmp/internal/policy"
	"geovmp/internal/units"
)

func TestCapsRespectCeilings(t *testing.T) {
	c := New(0.9, 7)
	c.CapSmooth = -1
	in := buildInput(t, 6, nil)
	// Monstrous free energy everywhere: caps must clamp to each DC's
	// physical ceiling.
	for i := range in.RenewForecast {
		in.RenewForecast[i] = units.Energy(1e15)
	}
	// Monstrous demand so the budget does not bind first.
	in.LastEnergy[0] = units.Energy(1e15)
	caps := c.Caps(in)
	for i, d := range in.DCs {
		ceil := float64(d.SlotEnergyCeiling(in.Slot))
		if caps[i] > ceil+1 {
			t.Fatalf("DC %d cap %v above ceiling %v", i, caps[i], ceil)
		}
	}
}

func TestCapsColdStartUsesVMEnergies(t *testing.T) {
	c := New(0.9, 7)
	c.CapSmooth = -1
	in := buildInput(t, 10, nil) // LastEnergy all zero
	caps := c.Caps(in)
	var sum float64
	for _, v := range caps {
		sum += v
	}
	// 10 VMs x 1000 J x 1.1 headroom.
	if math.Abs(sum-11000) > 200 {
		t.Fatalf("cold-start caps sum %v, want ~11000", sum)
	}
}

func TestDemandHeadroomConfigurable(t *testing.T) {
	a := New(0.9, 7)
	a.CapSmooth = -1
	a.DemandHeadroom = 1.0
	b := New(0.9, 7)
	b.CapSmooth = -1
	b.DemandHeadroom = 2.0
	inA := buildInput(t, 10, nil)
	inB := buildInput(t, 10, nil)
	sum := func(caps []float64) float64 {
		var s float64
		for _, v := range caps {
			s += v
		}
		return s
	}
	ra := sum(a.Caps(inA))
	rb := sum(b.Caps(inB))
	if math.Abs(rb/ra-2) > 0.01 {
		t.Fatalf("headroom not linear: %v vs %v", ra, rb)
	}
}

func TestPlaceWithZeroVMs(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 0, nil)
	p := c.Place(in)
	if len(p.DCOf) != 0 || len(p.Moves) != 0 {
		t.Fatal("empty fleet produced placements")
	}
}

func TestLastEmbedDiagnosticsPopulated(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 16, nil)
	c.Place(in)
	if c.LastEmbedIters <= 0 {
		t.Fatal("embed iterations not recorded")
	}
	if len(c.LastEmbedCost) != c.LastEmbedIters {
		t.Fatalf("cost history %d entries for %d iterations",
			len(c.LastEmbedCost), c.LastEmbedIters)
	}
}

func TestColdStartGetsExtraIterations(t *testing.T) {
	c := New(0.9, 7)
	in := buildInput(t, 16, nil)
	c.Place(in)
	cold := c.LastEmbedIters
	// Second slot: warm start, capped at the normal MaxIters.
	cur := map[int]int{}
	for id := 0; id < 16; id++ {
		cur[id] = 0
	}
	in2 := buildInput(t, 16, cur)
	in2.Slot = 2
	c.Place(in2)
	warm := c.LastEmbedIters
	if warm > c.Embed.MaxIters {
		t.Fatalf("warm-start iterations %d exceed MaxIters %d", warm, c.Embed.MaxIters)
	}
	// Cold start is allowed (and expected, with the data pairs still
	// converging) to use more than the warm cap.
	if cold < warm {
		t.Logf("cold %d < warm %d (converged early; acceptable)", cold, warm)
	}
}

func TestRejectedWishesReported(t *testing.T) {
	c := New(0.9, 7)
	cur := map[int]int{}
	for i := 0; i < 24; i++ {
		cur[i] = 0 // everything piled on DC0
	}
	in := buildInput(t, 24, cur)
	// Force the caps away from DC0 so migrations are wished but the budget
	// blocks most.
	in.Constraint = 8 // one small migration per link at most
	p := c.Place(in)
	if p.Rejected == 0 && len(p.Moves) == 0 {
		t.Fatal("no migration pressure generated at all")
	}
	if len(p.Moves) > 0 {
		var perLink = map[[2]int]float64{}
		for _, m := range p.Moves {
			perLink[[2]int{m.From, m.To}] += m.Seconds
		}
		for k, s := range perLink {
			if s >= 8 {
				t.Fatalf("link %v exceeded the 8 s budget: %v", k, s)
			}
		}
	}
}

func TestFieldForceSemantics(t *testing.T) {
	in := buildInput(t, 4, nil)
	f := buildField(0.5, in)
	// Pair (0,1) communicates; (0,2) does not. The communicating pair's
	// force must be lower (more attractive) than the silent pair's.
	f01 := f.Force(0, 1)
	f02 := f.Force(0, 2)
	if f01 >= f02 {
		t.Fatalf("data pair force %v not below silent pair %v", f01, f02)
	}
	// Silent pairs are purely repulsive.
	if f02 <= 0 {
		t.Fatalf("silent pair force %v should be positive (repulsion)", f02)
	}
}

func TestAttractionPeersSymmetric(t *testing.T) {
	in := buildInput(t, 6, nil)
	f := buildField(0.5, in)
	has := func(list []int, v int) bool {
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}
	for id := 0; id < 6; id++ {
		for _, peer := range f.AttractionPeers(id) {
			if !has(f.AttractionPeers(peer), id) {
				t.Fatalf("peer lists not symmetric: %d <-> %d", id, peer)
			}
		}
	}
}

var _ policy.Policy = (*Controller)(nil) // the contract the simulator relies on
