package trace

import (
	"fmt"
	"math"
	"sort"

	"geovmp/internal/timeutil"
)

// UsageTemplate is a fitted parameterization of one family of VM behavior —
// the bridge from an ingested real trace back to the synthetic generator.
// FitTemplates derives them from any Source; a Config with Templates set
// draws new services and VMs from the fitted families instead of the
// built-in class ranges, so synthetic presets can be calibrated to real
// data while keeping the generator's lazy, seed-deterministic sampling.
type UsageTemplate struct {
	Name   string  `json:"name"`
	Class  Class   `json:"class"`  // nearest synthetic family, for reporting
	Weight float64 `json:"weight"` // share of VMs the template represents

	Mean     float64 `json:"mean"`      // mean utilization of a reference core
	Amp      float64 `json:"amp"`       // diurnal amplitude
	PeakHour float64 `json:"peak_hour"` // hour-of-day of the diurnal peak
	FastAmp  float64 `json:"fast_amp"`  // fast noise amplitude
	SlowAmp  float64 `json:"slow_amp"`  // slow noise amplitude
	DayVar   float64 `json:"day_var"`   // day-to-day variance

	MeanLifeSlots float64 `json:"mean_life_slots"` // mean lifetime in slots
}

// vmFeatures are the per-VM statistics the fit clusters on.
type vmFeatures struct {
	mean      float64
	amp       float64
	peakCos   float64 // unit vector toward the diurnal peak
	peakSin   float64
	fastAmp   float64
	slowAmp   float64
	dayVar    float64
	lifeSlots float64
}

// FitTemplates fits k usage templates to src by clustering per-VM trace
// statistics (mean level, diurnal amplitude and phase via first-harmonic
// projection, within-slot variability, day-to-day variance, lifetime).
// The fit is deterministic: quantile-seeded k-means over sorted features,
// a fixed iteration count, no randomness. samples is the per-slot profile
// resolution read from src (<=0 selects 12). Returns at most k templates
// — fewer when src has fewer distinct VMs — ordered by descending weight.
func FitTemplates(src Source, k, samples int) []UsageTemplate {
	if k < 1 {
		k = 1
	}
	if samples <= 0 {
		samples = 12
	}
	feats := extractFeatures(src, samples)
	if len(feats) == 0 {
		return nil
	}
	if k > len(feats) {
		k = len(feats)
	}

	// Quantile-seeded k-means on (mean, amp, fastAmp, amp-weighted peak
	// vector): sort by mean level, seed centroids at the k quantiles, then
	// refine with a fixed number of rounds. Everything is ordered and
	// counted, so the result is a pure function of the input trace.
	order := make([]int, len(feats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := feats[order[a]], feats[order[b]]
		if fa.mean != fb.mean {
			return fa.mean < fb.mean
		}
		return fa.amp < fb.amp
	})
	cents := make([]vmFeatures, k)
	for c := 0; c < k; c++ {
		q := (2*c + 1) * len(order) / (2 * k)
		cents[c] = feats[order[q]]
	}
	assign := make([]int, len(feats))
	for round := 0; round < 20; round++ {
		changed := false
		for i, f := range feats {
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				if d := featureDist(f, cents[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		next := make([]vmFeatures, k)
		counts := make([]int, k)
		for i, f := range feats {
			c := assign[i]
			counts[c]++
			next[c].mean += f.mean
			next[c].amp += f.amp
			next[c].peakCos += f.amp * f.peakCos
			next[c].peakSin += f.amp * f.peakSin
			next[c].fastAmp += f.fastAmp
			next[c].slowAmp += f.slowAmp
			next[c].dayVar += f.dayVar
			next[c].lifeSlots += f.lifeSlots
		}
		for c := range cents {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			n := float64(counts[c])
			next[c].mean /= n
			next[c].amp /= n
			next[c].fastAmp /= n
			next[c].slowAmp /= n
			next[c].dayVar /= n
			next[c].lifeSlots /= n
			// Renormalize the amp-weighted peak vector.
			if h := math.Hypot(next[c].peakCos, next[c].peakSin); h > 0 {
				next[c].peakCos /= h
				next[c].peakSin /= h
			} else {
				next[c].peakCos, next[c].peakSin = cents[c].peakCos, cents[c].peakSin
			}
			cents[c] = next[c]
		}
		if !changed {
			break
		}
	}

	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	var out []UsageTemplate
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		f := cents[c]
		peak := math.Atan2(f.peakSin, f.peakCos) / (2 * math.Pi) * 24
		if peak < 0 {
			peak += 24
		}
		t := UsageTemplate{
			Weight:        float64(counts[c]) / float64(len(feats)),
			Mean:          f.mean,
			Amp:           f.amp,
			PeakHour:      peak,
			FastAmp:       f.fastAmp,
			SlowAmp:       f.slowAmp,
			DayVar:        f.dayVar,
			MeanLifeSlots: f.lifeSlots,
		}
		t.Class = nearestClass(t)
		out = append(out, t)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Weight > out[b].Weight })
	for i := range out {
		out[i].Name = fmt.Sprintf("fitted-%s-%d", out[i].Class, i)
	}
	return out
}

// featureDist is the squared clustering distance. Level, amplitude and
// noise are commensurate (fractions of a core); the peak phase enters as
// an amp-weighted unit vector so flat VMs do not cluster by meaningless
// phases.
func featureDist(a, b vmFeatures) float64 {
	d := (a.mean - b.mean) * (a.mean - b.mean)
	d += (a.amp - b.amp) * (a.amp - b.amp)
	d += 4 * (a.fastAmp - b.fastAmp) * (a.fastAmp - b.fastAmp)
	w := a.amp * b.amp
	d += w * ((a.peakCos-b.peakCos)*(a.peakCos-b.peakCos) + (a.peakSin-b.peakSin)*(a.peakSin-b.peakSin))
	return d
}

// nearestClass labels a template with the built-in family it most
// resembles, so calibrated workloads keep meaningful class reporting.
func nearestClass(t UsageTemplate) Class {
	switch {
	case t.Amp < 0.07 && t.Mean > 0.45:
		return ClassHPC
	case t.PeakHour >= 22 || t.PeakHour < 6:
		return ClassBatch
	case t.FastAmp >= 0.06:
		return ClassWebSearch
	default:
		return ClassMapReduce
	}
}

// extractFeatures scans src once, slot by slot, accumulating per-VM
// statistics from the per-slot profiles.
func extractFeatures(src Source, samples int) []vmFeatures {
	n := src.NumVMs()
	type acc struct {
		slots               int
		sum, cosSum, sinSum float64
		halfRangeSum        float64
		daySum              map[int]float64
		dayN                map[int]int
	}
	accs := make([]*acc, n)
	prof := make([]float64, samples)
	filler, _ := src.(slotProfileFiller)
	for sl := timeutil.Slot(0); sl < src.Slots(); sl++ {
		h := float64(sl.HourUTC())
		theta := h / 24 * 2 * math.Pi
		cosT, sinT := math.Cos(theta), math.Sin(theta)
		day := int(sl) / 24
		for _, id := range src.ActiveVMs(sl) {
			if id < 0 || id >= n {
				continue
			}
			if filler != nil {
				filler.FillSlotProfile(prof, id, sl)
			} else {
				copy(prof, src.SlotProfile(id, sl, samples))
			}
			lo, hi, sum := prof[0], prof[0], 0.0
			for _, u := range prof {
				sum += u
				if u < lo {
					lo = u
				}
				if u > hi {
					hi = u
				}
			}
			m := sum / float64(samples)
			a := accs[id]
			if a == nil {
				a = &acc{daySum: map[int]float64{}, dayN: map[int]int{}}
				accs[id] = a
			}
			a.slots++
			a.sum += m
			a.cosSum += m * cosT
			a.sinSum += m * sinT
			a.halfRangeSum += (hi - lo) / 2
			a.daySum[day] += m
			a.dayN[day]++
		}
	}

	var out []vmFeatures
	for _, a := range accs {
		if a == nil || a.slots == 0 {
			continue
		}
		ns := float64(a.slots)
		mean := a.sum / ns
		// First-harmonic projection over the active slots: amplitude and
		// phase of the best-fit 24 h cosine.
		amp := 2 * math.Hypot(a.cosSum, a.sinSum) / ns
		var pc, ps float64 = 1, 0
		if h := math.Hypot(a.cosSum, a.sinSum); h > 0 {
			pc, ps = a.cosSum/h, a.sinSum/h
		}
		// Within-slot half-range mixes the fast and slow noise; split it
		// with the synthetic generator's typical 60/40 proportion.
		half := a.halfRangeSum / ns
		f := vmFeatures{
			mean:      mean,
			amp:       amp,
			peakCos:   pc,
			peakSin:   ps,
			fastAmp:   0.6 * half,
			slowAmp:   0.4 * half,
			lifeSlots: ns,
		}
		if len(a.daySum) >= 2 && mean > 0 {
			days := make([]int, 0, len(a.daySum))
			for d := range a.daySum {
				days = append(days, d)
			}
			sort.Ints(days)
			var s, s2 float64
			for _, d := range days {
				r := a.daySum[d] / float64(a.dayN[d]) / mean
				s += r
				s2 += r * r
			}
			nd := float64(len(days))
			if v := s2/nd - (s/nd)*(s/nd); v > 0 {
				f.dayVar = math.Sqrt(v)
			}
		}
		out = append(out, f)
	}
	return out
}

// Calibrate returns a copy of cfg parameterized by the fitted templates:
// Templates drives class/parameter draws, ClassWeights is cleared (the
// template weights take over) and MeanLifeSlots is set to the
// weight-averaged fitted lifetime when the caller left it unset.
func Calibrate(cfg Config, ts []UsageTemplate) Config {
	cfg.Templates = ts
	if cfg.MeanLifeSlots == 0 {
		var life, w float64
		for _, t := range ts {
			life += t.Weight * t.MeanLifeSlots
			w += t.Weight
		}
		if w > 0 && life > 0 {
			cfg.MeanLifeSlots = life / w
		}
	}
	return cfg
}
