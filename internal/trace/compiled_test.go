package trace

import (
	"reflect"
	"testing"

	"geovmp/internal/timeutil"
)

func testCompiled(t *testing.T) (*Workload, *Compiled) {
	t.Helper()
	w := New(Config{Seed: 9, Horizon: timeutil.Hours(6), InitialVMs: 40})
	c := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300})
	return w, c
}

// TestCompiledSourceViews asserts every Source method of a compiled trace
// reproduces the underlying workload exactly.
func TestCompiledSourceViews(t *testing.T) {
	w, c := testCompiled(t)
	if c.NumVMs() != w.NumVMs() || c.Slots() != w.Slots() {
		t.Fatal("shape drifted")
	}
	for sl := timeutil.Slot(0); sl < w.Slots(); sl++ {
		if !reflect.DeepEqual(c.ActiveVMs(sl), w.ActiveVMs(sl)) {
			t.Fatalf("ActiveVMs(%d) differ", sl)
		}
		if !reflect.DeepEqual(c.Volumes(sl), w.Volumes(sl)) {
			t.Fatalf("Volumes(%d) differ", sl)
		}
		obs := sl
		if sl > 0 {
			obs = sl - 1
		}
		if !reflect.DeepEqual(c.PlannedVolumes(obs, sl), w.PlannedVolumes(obs, sl)) {
			t.Fatalf("PlannedVolumes(%d,%d) differ", obs, sl)
		}
		for _, id := range w.ActiveVMs(sl) {
			if got, want := c.SlotProfile(id, obs, 12), w.SlotProfile(id, obs, 12); !reflect.DeepEqual(got, want) {
				t.Fatalf("SlotProfile(%d,%d) = %v, want %v", id, obs, got, want)
			}
			if c.Image(id) != w.Image(id) {
				t.Fatalf("Image(%d) differs", id)
			}
		}
	}
}

// TestCompiledFineRows asserts the fine table reproduces the simulator's
// step derivation exactly, including its floating-point time accumulation.
func TestCompiledFineRows(t *testing.T) {
	w, c := testCompiled(t)
	dt, steps := c.FineParams()
	if dt != 300 || steps != 12 {
		t.Fatalf("fine params = (%v, %d)", dt, steps)
	}
	for sl := timeutil.Slot(0); sl < w.Slots(); sl++ {
		start := sl.Seconds()
		for _, id := range w.ActiveVMs(sl) {
			row := c.FineRow(id, sl)
			if len(row) != steps {
				t.Fatalf("FineRow(%d,%d) len = %d", id, sl, len(row))
			}
			k := 0
			for ts := 0.0; ts < timeutil.SlotSeconds; ts += dt {
				step := timeutil.Step(int64(start+ts) / timeutil.StepSeconds)
				if row[k] != w.Util(id, step) {
					t.Fatalf("FineRow(%d,%d)[%d] = %v, want Util %v", id, sl, k, row[k], w.Util(id, step))
				}
				k++
			}
		}
	}
}

// TestCompiledFallbacks asserts off-pattern queries fall through to the
// underlying source instead of misreading the tables.
func TestCompiledFallbacks(t *testing.T) {
	w, c := testCompiled(t)
	// Planned volumes with a non-simulator observation slot.
	if got, want := c.PlannedVolumes(3, 5), w.PlannedVolumes(3, 5); !reflect.DeepEqual(got, want) {
		t.Fatal("off-pattern PlannedVolumes differ from source")
	}
	// A profile length the table was not compiled for.
	id := w.ActiveVMs(0)[0]
	if got, want := c.SlotProfile(id, 0, 5), w.SlotProfile(id, 0, 5); !reflect.DeepEqual(got, want) {
		t.Fatal("off-samples SlotProfile differs from source")
	}
	// Arbitrary Util steps delegate.
	if c.Util(id, 17) != w.Util(id, 17) {
		t.Fatal("Util differs from source")
	}
	// FineRow outside any window is nil, not garbage.
	if c.FineRow(id, w.Slots()+5) != nil {
		t.Fatal("FineRow past the horizon should be nil")
	}
	if c.FineRow(-1, 0) != nil {
		t.Fatal("FineRow of a negative id should be nil")
	}
}

// TestCompiledSlotProfileOwnership asserts SlotProfile returns a copy, per
// the Source contract, while ProfileRow shares the table.
func TestCompiledSlotProfileOwnership(t *testing.T) {
	w, c := testCompiled(t)
	id := w.ActiveVMs(0)[0]
	p := c.SlotProfile(id, 0, 12)
	p[0] = 99
	if c.SlotProfile(id, 0, 12)[0] == 99 {
		t.Fatal("SlotProfile leaked the compiled row")
	}
	row := c.ProfileRow(id, 0)
	if row == nil {
		t.Fatal("ProfileRow missing for an active VM")
	}
	if !reflect.DeepEqual(row, w.SlotProfile(id, 0, 12)) {
		t.Fatal("ProfileRow differs from the source profile")
	}
}

// TestCompiledFineTableBudget asserts the memory budget disables the fine
// table without breaking the Source view.
func TestCompiledFineTableBudget(t *testing.T) {
	w := New(Config{Seed: 9, Horizon: timeutil.Hours(3), InitialVMs: 20})
	c := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: -1})
	if _, steps := c.FineParams(); steps != 0 {
		t.Fatal("fine table should be disabled")
	}
	if c.FineRow(w.ActiveVMs(0)[0], 0) != nil {
		t.Fatal("disabled fine table should return nil rows")
	}
	if c.Util(0, 3) != w.Util(0, 3) {
		t.Fatal("Util must still delegate")
	}
}

// TestCompileOfReplay covers the CSV-replay source: compiling it must
// preserve its views (the profile tables take the generic fill path).
func TestCompileOfReplay(t *testing.T) {
	w := New(Config{Seed: 4, Horizon: timeutil.Hours(4), InitialVMs: 15})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 4, 12); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(r, CompileOptions{Samples: 12, FineStepSec: 300})
	for sl := timeutil.Slot(0); sl < r.Slots(); sl++ {
		for _, id := range r.ActiveVMs(sl) {
			if !reflect.DeepEqual(c.SlotProfile(id, sl, 12), r.SlotProfile(id, sl, 12)) {
				t.Fatalf("replay profile (%d,%d) differs after compile", id, sl)
			}
		}
		if !reflect.DeepEqual(c.Volumes(sl), r.Volumes(sl)) {
			t.Fatalf("replay volumes (%d) differ after compile", sl)
		}
	}
}
