package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// IngestOptions parameterizes IngestCluster. Zero values select the
// defaults listed on each field.
type IngestOptions struct {
	// Samples is the per-slot profile resolution readings are binned into
	// (default 12, the simulator's ProfileSamples default).
	Samples int
	// CPUScale divides raw CPU readings into core fractions (default 100:
	// the Azure-style percent column). Use 1 for traces already in [0,1].
	CPUScale float64
	// DefaultImageGB sizes migration images when the VM table has no
	// image column (default 4).
	DefaultImageGB float64
	// MaxVMs and MaxSlots bound the ingested fleet and horizon (defaults:
	// the replay bounds, ~1M VMs and ~3.7 years of hourly slots). A trace
	// exceeding them is an ingest error, never a silent truncation.
	MaxVMs   int
	MaxSlots int
}

func (o *IngestOptions) applyDefaults() {
	if o.Samples <= 0 {
		o.Samples = 12
	}
	if o.CPUScale == 0 {
		o.CPUScale = 100
	}
	if o.DefaultImageGB <= 0 {
		o.DefaultImageGB = 4
	}
	if o.MaxVMs <= 0 {
		o.MaxVMs = maxReplayVMs
	}
	if o.MaxSlots <= 0 {
		o.MaxSlots = maxReplaySlots
	}
}

// columnIndex maps a header row to column positions by normalized name
// (lowercased, separators stripped), so Azure-style ("vmid,vmcreated,...")
// and Google-style ("vm_id,start_time,...") headers both resolve.
func columnIndex(header []string, names ...string) int {
	norm := func(s string) string {
		s = strings.ToLower(strings.TrimSpace(s))
		return strings.NewReplacer("_", "", "-", "", " ", "").Replace(s)
	}
	for _, want := range names {
		for i, h := range header {
			if norm(h) == norm(want) {
				return i
			}
		}
	}
	return -1
}

// IngestCluster streams an Azure/Google-style cluster trace — a VM
// lifetime CSV (id, created, deleted timestamps in seconds, optional
// image_gb) plus a per-interval utilization CSV (timestamp, id, avg CPU) —
// into a *Replay ready for Compile. Both files are read row by row;
// memory is proportional to the binned profile tables, never the input.
//
// Timestamps are re-based to the earliest VM creation, floored to the
// hour, and binned into hourly slots of opt.Samples averaged sub-bins.
// Sub-bins without a reading carry the previous reading forward (a
// sampled trace is piecewise constant between observations); slots before
// a VM's first reading carry its first value backward. Malformed or
// referentially broken rows — unknown VM ids in the utilization file,
// readings outside the VM's lifetime, duplicate lifetime rows — are
// ingest errors, not silent drops.
func IngestCluster(vmPath, cpuPath string, opt IngestOptions) (*Replay, error) {
	opt.applyDefaults()

	// Pass 1: VM lifetimes. String ids become dense ints in file order.
	type vmLife struct {
		start, end float64 // seconds, trace epoch
		imageGB    float64
	}
	idOf := map[string]int{}
	var lives []vmLife
	idCol, startCol, endCol, imgCol := -1, -1, -1, -1
	minStart := math.Inf(1)
	err := forEachCSVRowWithHeader(vmPath, func(h []string) error {
		idCol = columnIndex(h, "vmid", "vm_id", "id", "machine_id", "instance_id")
		startCol = columnIndex(h, "vmcreated", "created", "start_time", "starttime", "start", "creation_time")
		endCol = columnIndex(h, "vmdeleted", "deleted", "end_time", "endtime", "end", "deletion_time")
		imgCol = columnIndex(h, "image_gb", "imagegb", "image")
		if idCol < 0 || startCol < 0 || endCol < 0 {
			return fmt.Errorf("trace: %s: header %v lacks id/created/deleted columns", vmPath, h)
		}
		return nil
	}, func(row []string) error {
		key := row[idCol]
		if _, dup := idOf[key]; dup {
			return fmt.Errorf("trace: %s: duplicate VM id %q", vmPath, key)
		}
		start, err1 := strconv.ParseFloat(row[startCol], 64)
		end, err2 := strconv.ParseFloat(row[endCol], 64)
		if err := firstErr(err1, err2); err != nil {
			return fmt.Errorf("trace: %s: VM %q: %w", vmPath, key, err)
		}
		if end <= start {
			return fmt.Errorf("trace: %s: VM %q deleted (%v) before created (%v)", vmPath, key, end, start)
		}
		imageGB := opt.DefaultImageGB
		if imgCol >= 0 && imgCol < len(row) {
			if g, err := strconv.ParseFloat(row[imgCol], 64); err == nil && g > 0 {
				imageGB = g
			}
		}
		if len(lives) >= opt.MaxVMs {
			return fmt.Errorf("trace: %s: more than %d VMs", vmPath, opt.MaxVMs)
		}
		idOf[key] = len(lives)
		lives = append(lives, vmLife{start: start, end: end, imageGB: imageGB})
		if start < minStart {
			minStart = start
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(lives) == 0 {
		return nil, fmt.Errorf("trace: %s: no VM rows", vmPath)
	}

	// Re-base to the earliest creation, floored to the hour, and slot the
	// lifetimes.
	t0 := math.Floor(minStart/timeutil.SlotSeconds) * timeutil.SlotSeconds
	r := &Replay{
		samples: opt.Samples,
		vms:     make([]replayVM, len(lives)),
	}
	for id, lf := range lives {
		arr := timeutil.Slot((lf.start - t0) / timeutil.SlotSeconds)
		dep := timeutil.Slot(math.Ceil((lf.end - t0) / timeutil.SlotSeconds))
		if dep <= arr {
			dep = arr + 1
		}
		if int(dep) > opt.MaxSlots {
			return nil, fmt.Errorf("trace: %s: VM %d departs at slot %d, beyond the %d-slot bound",
				vmPath, id, dep, opt.MaxSlots)
		}
		r.vms[id] = replayVM{arrival: arr, depart: dep, image: units.DataSize(lf.imageGB * 1e9)}
		if dep > r.slots {
			r.slots = dep
		}
	}

	// Pass 2: utilization readings, binned into (slot, sub-bin) averages.
	type bins struct {
		sum   []float64
		count []uint32
	}
	acc := make([]bins, len(lives))
	tsCol, rdIDCol, cpuCol := -1, -1, -1
	err = forEachCSVRowWithHeader(cpuPath, func(h []string) error {
		tsCol = columnIndex(h, "timestamp", "ts", "time")
		rdIDCol = columnIndex(h, "vmid", "vm_id", "id", "machine_id", "instance_id")
		cpuCol = columnIndex(h, "avgcpu", "avg_cpu", "cpu", "cpu_usage", "cpuusage", "util", "avg_cpu_pct", "cpu_rate")
		if tsCol < 0 || rdIDCol < 0 || cpuCol < 0 {
			return fmt.Errorf("trace: %s: header %v lacks timestamp/id/cpu columns", cpuPath, h)
		}
		return nil
	}, func(row []string) error {
		id, ok := idOf[row[rdIDCol]]
		if !ok {
			return fmt.Errorf("trace: %s: reading for unknown VM id %q", cpuPath, row[rdIDCol])
		}
		ts, err1 := strconv.ParseFloat(row[tsCol], 64)
		cpu, err2 := strconv.ParseFloat(row[cpuCol], 64)
		if err := firstErr(err1, err2); err != nil {
			return fmt.Errorf("trace: %s: VM %q: %w", cpuPath, row[rdIDCol], err)
		}
		v := r.vms[id]
		sec := ts - t0
		sl := timeutil.Slot(sec / timeutil.SlotSeconds)
		if sl < v.arrival || sl >= v.depart {
			return fmt.Errorf("trace: %s: reading at %v for VM %q outside its lifetime [slot %d, %d)",
				cpuPath, ts, row[rdIDCol], v.arrival, v.depart)
		}
		b := &acc[id]
		if b.sum == nil {
			span := int(v.depart-v.arrival) * opt.Samples
			b.sum = make([]float64, span)
			b.count = make([]uint32, span)
		}
		within := sec - float64(sl)*timeutil.SlotSeconds
		bin := int(within * float64(opt.Samples) / timeutil.SlotSeconds)
		if bin >= opt.Samples {
			bin = opt.Samples - 1
		}
		k := int(sl-v.arrival)*opt.Samples + bin
		b.sum[k] += units.Clamp(cpu/opt.CPUScale, 0, 1)
		b.count[k]++
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Finalize: averaged bins, gaps carried piecewise constant across the
	// VM's lifetime. VMs with no readings at all stay profile-less (zero
	// demand), matching the replay contract for absent rows.
	r.profiles = make([][][]float64, len(lives))
	for id := range lives {
		b := acc[id]
		if b.sum == nil {
			continue
		}
		v := r.vms[id]
		// Forward pass: average filled bins, carry the last value into
		// gaps; then a single backward fill covers bins before the first
		// reading.
		vals := make([]float64, len(b.sum))
		carry, seen := 0.0, false
		firstVal, firstAt := 0.0, -1
		for k := range b.sum {
			if b.count[k] > 0 {
				carry = b.sum[k] / float64(b.count[k])
				if !seen {
					seen, firstVal, firstAt = true, carry, k
				}
			}
			vals[k] = carry
		}
		for k := 0; k < firstAt; k++ {
			vals[k] = firstVal
		}
		r.profiles[id] = make([][]float64, int(v.depart))
		for sl := v.arrival; sl < v.depart; sl++ {
			row := vals[int(sl-v.arrival)*opt.Samples : int(sl-v.arrival+1)*opt.Samples]
			r.profiles[id][sl] = row
		}
	}

	// No inter-VM volume data in cluster traces; the volume tables stay
	// empty (declared flows can still come from volumes.csv after an
	// ExportReplay round-trip).
	r.volumes = make([][]VolumeEntry, r.slots)
	r.active = make([][]int, r.slots)
	for id, v := range r.vms {
		for sl := v.arrival; sl < v.depart && sl < r.slots; sl++ {
			r.active[sl] = append(r.active[sl], id)
		}
	}
	return r, nil
}

// forEachCSVRowWithHeader streams path like forEachCSVRow but hands the
// header row to onHeader first (for column mapping by name).
func forEachCSVRowWithHeader(path string, onHeader func([]string) error, fn func(row []string) error) error {
	sawHeader := false
	return forEachCSVRowRaw(path, func(row []string) error {
		if !sawHeader {
			sawHeader = true
			return onHeader(row)
		}
		return fn(row)
	})
}
