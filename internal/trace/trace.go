// Package trace generates the synthetic cloud workload the simulator runs:
// virtual machines with 5-second CPU-utilization traces, Poisson arrivals,
// exponential lifetimes, service groupings, and the bidirectional
// time-varying inter-VM data volumes that define data correlation.
//
// The original evaluation samples a real data center's VM utilizations every
// 5 seconds for one day and extends the day to a week "by adding statistical
// variance with the same mean as the original traces". Real traces are not
// available, so this package synthesizes the properties the algorithms
// actually exploit (see DESIGN.md substitution 1):
//
//   - Scale-out VMs (web-search-, MapReduce-like) have strong diurnal peaks
//     with fast client-driven variability. VMs of the same service share the
//     peak phase, so their CPU loads are highly correlated — exactly the VMs
//     a correlation-aware packer must separate.
//   - HPC VMs run near-flat high utilization; batch VMs run in night
//     windows.
//   - One base day of parameters is drawn per VM; days 2..7 rescale the
//     base day by a unit-mean random factor, mirroring the paper's
//     extension.
//   - Intra-service VM pairs exchange data in both directions with per-pair
//     log-normal base volumes (mean 10 MB, log-variance uniform in [1,4],
//     the paper's distribution) modulated by the service's time-varying
//     activity — bidirectional data correlation that changes at runtime.
//
// All sampling is lazy and hash-based: Util(vm, step) is a pure function of
// the workload seed, so a week of 5 s samples for thousands of VMs costs no
// memory.
package trace

import (
	"fmt"
	"math"

	"geovmp/internal/rng"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Class labels the application family of a VM, which determines the shape of
// its utilization trace.
type Class int

// The workload mix of the paper's motivating examples.
const (
	ClassWebSearch Class = iota // scale-out, diurnal, fast-varying
	ClassMapReduce              // scale-out, bursty
	ClassHPC                    // flat high utilization
	ClassBatch                  // night-window jobs
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassWebSearch:
		return "websearch"
	case ClassMapReduce:
		return "mapreduce"
	case ClassHPC:
		return "hpc"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// VM is one virtual machine of the workload. Fields are immutable once the
// workload is built.
type VM struct {
	ID      int
	Class   Class
	Service int            // index into Workload.Services
	Arrival timeutil.Slot  // first slot the VM is active
	Depart  timeutil.Slot  // first slot the VM is gone (exclusive end)
	Image   units.DataSize // migration image size (2/4/8 GB)

	// Trace parameters (one "base day", per the paper's methodology).
	mean     float64 // mean utilization of a reference core
	amp      float64 // diurnal amplitude
	peakHour float64 // hour-of-day of the diurnal peak, shared per service
	fastAmp  float64 // white 5 s noise amplitude
	slowAmp  float64 // ~10 min smooth noise amplitude
	burstAmp float64 // extra load during burst windows (MapReduce)
	dayVar   float64 // day-to-day variance of the unit-mean day factor
	seed     uint64
}

// ActiveAt reports whether the VM exists during slot sl.
func (v *VM) ActiveAt(sl timeutil.Slot) bool {
	return sl >= v.Arrival && sl < v.Depart
}

// VolumeEntry is one directed inter-VM transfer demand for a slot.
type VolumeEntry struct {
	From, To int
	Vol      units.DataSize
}

// pair is a directed communication edge inside a service with its base
// volume (bytes per slot before modulation).
type pair struct {
	from, to int
	base     float64
}

// Service is a group of cooperating VMs: they share the CPU peak phase
// (high CPU-load correlation) and exchange data (high data correlation) —
// the two opposed forces of the placement problem.
type Service struct {
	ID       int
	Class    Class
	PeakHour float64
	Template int // index into Config.Templates, -1 for the built-in classes
	Members  []int
	pairs    []pair
}

// PhaseMix re-weights the class mix for VMs arriving at or after FromSlot —
// the building block of non-stationary (diurnal, regime-shifting) workloads.
// Existing VMs keep their class until departure, so the fleet's mix turns
// over at the lifetime scale rather than jumping discontinuously.
type PhaseMix struct {
	FromSlot timeutil.Slot
	Weights  []float64 // class-order weights, like Config.ClassWeights
}

// Config parameterizes workload generation. Zero values select the defaults
// listed on each field.
type Config struct {
	Seed           uint64
	Horizon        timeutil.Horizon
	InitialVMs     int     // VMs present at slot 0 (default 200)
	ArrivalPerSlot float64 // Poisson arrival rate per slot (default InitialVMs/50)
	MeanLifeSlots  float64 // exponential mean lifetime in slots (default 48)
	MeanServiceVMs float64 // mean VMs per service (default 5)
	MaxPairsPerVM  int     // communication degree cap inside a service (default 4)
	VolumeMeanMB   float64 // log-normal linear mean per pair per slot (default 10, the paper's)
	ClassWeights   []float64
	// Phases optionally schedules class-mix shifts over the horizon: a VM
	// arriving at slot sl draws its service's class from the last phase
	// whose FromSlot <= sl (ClassWeights before the first phase). Empty
	// keeps the stationary mix — and the generator's output bit-identical
	// to a phase-free Config.
	Phases []PhaseMix
	// ArrivalWave modulates the Poisson arrival rate diurnally with the
	// given amplitude in [0, 1): rate(sl) = ArrivalPerSlot x
	// (1 + wave*cos(2*pi*(h-14)/24)), peaking mid-afternoon UTC. 0 keeps
	// arrivals stationary.
	ArrivalWave float64
	// Templates optionally calibrates the generator to fitted usage
	// templates (see FitTemplates): new services draw a template by
	// weight instead of a class from ClassWeights, and member VMs draw
	// their trace parameters around the fitted values instead of the
	// built-in class ranges. Empty keeps the paper's synthetic families —
	// and the generator's output bit-identical to a template-free Config.
	Templates []UsageTemplate
}

func (c *Config) applyDefaults() {
	if c.Horizon.Slots == 0 {
		c.Horizon = timeutil.Week()
	}
	if c.InitialVMs == 0 {
		c.InitialVMs = 200
	}
	if c.ArrivalPerSlot == 0 {
		c.ArrivalPerSlot = float64(c.InitialVMs) / 50
	}
	if c.MeanLifeSlots == 0 {
		c.MeanLifeSlots = 48
	}
	if c.MeanServiceVMs == 0 {
		c.MeanServiceVMs = 5
	}
	if c.MaxPairsPerVM == 0 {
		c.MaxPairsPerVM = 4
	}
	if c.VolumeMeanMB == 0 {
		c.VolumeMeanMB = 10
	}
	if len(c.ClassWeights) == 0 {
		c.ClassWeights = []float64{0.40, 0.25, 0.20, 0.15}
	}
}

// Workload is the generated experiment workload. It is immutable after New
// and safe for concurrent readers.
type Workload struct {
	cfg      Config
	vms      []*VM
	services []*Service
	active   [][]int // per slot, sorted ids of active VMs
	arrive   [][]int // per slot, ids arriving that slot
	depart   [][]int // per slot, ids departing at the start of that slot
}

// New generates a workload from cfg. Generation is deterministic in
// cfg.Seed.
func New(cfg Config) *Workload {
	cfg.applyDefaults()
	w := &Workload{cfg: cfg}
	src := rng.New(cfg.Seed).Derive("workload")
	arrivalSrc := src.Derive("arrivals")
	lifeSrc := src.Derive("lifetimes")
	classSrc := src.Derive("classes")
	svcSrc := src.Derive("services")
	volSrc := src.Derive("volumes")
	imgSrc := src.Derive("images")
	paramSrc := src.Derive("params")

	spawn := func(arrival timeutil.Slot) {
		id := len(w.vms)
		life := timeutil.Slot(math.Ceil(lifeSrc.Exp(cfg.MeanLifeSlots)))
		if life < 1 {
			life = 1
		}
		svc := w.pickService(svcSrc, classSrc, cfg.mixAt(arrival))
		s := w.services[svc]
		vm := &VM{
			ID:      id,
			Class:   s.Class,
			Service: svc,
			Arrival: arrival,
			Depart:  arrival + life,
			Image:   drawImage(imgSrc),
			seed:    rng.Hash(cfg.Seed, uint64(id), 0xA11CE),
		}
		var tmpl *UsageTemplate
		if s.Template >= 0 {
			tmpl = &cfg.Templates[s.Template]
		}
		vm.parameterize(s, tmpl, paramSrc)
		w.vms = append(w.vms, vm)
		w.connect(s, vm, volSrc)
		s.Members = append(s.Members, id)
	}

	for i := 0; i < cfg.InitialVMs; i++ {
		spawn(0)
	}
	for sl := timeutil.Slot(1); sl < cfg.Horizon.Slots; sl++ {
		n := arrivalSrc.Poisson(cfg.rateAt(sl))
		for i := 0; i < n; i++ {
			spawn(sl)
		}
	}
	w.index()
	return w
}

// mixAt returns the class mix in force for a VM arriving at sl: the last
// scheduled phase covering sl, or the stationary ClassWeights.
func (c *Config) mixAt(sl timeutil.Slot) []float64 {
	weights := c.ClassWeights
	for _, p := range c.Phases {
		if sl >= p.FromSlot {
			weights = p.Weights
		}
	}
	return weights
}

// rateAt returns the Poisson arrival rate for slot sl under the optional
// diurnal wave (stationary when ArrivalWave is 0).
func (c *Config) rateAt(sl timeutil.Slot) float64 {
	rate := c.ArrivalPerSlot
	if c.ArrivalWave > 0 {
		h := float64(sl.HourUTC())
		rate *= 1 + c.ArrivalWave*math.Cos((h-14)/24*2*math.Pi)
		if rate < 0 {
			rate = 0
		}
	}
	return rate
}

// pickService returns the service a new VM joins, creating one when the
// geometric coin says so (expected size MeanServiceVMs). New services draw
// their class from the arrival slot's mix — or, when the workload is
// template-calibrated, a fitted template by weight.
func (w *Workload) pickService(svcSrc, classSrc *rng.Source, mix []float64) int {
	if len(w.services) == 0 || svcSrc.Float64() < 1/w.cfg.MeanServiceVMs {
		id := len(w.services)
		s := &Service{ID: id, Template: -1}
		if ts := w.cfg.Templates; len(ts) > 0 {
			weights := make([]float64, len(ts))
			for i, t := range ts {
				weights[i] = t.Weight
			}
			s.Template = classSrc.Categorical(weights)
			t := ts[s.Template]
			s.Class = t.Class
			s.PeakHour = t.PeakHour + svcSrc.Range(-1.5, 1.5)
		} else {
			s.Class = Class(classSrc.Categorical(mix))
			s.PeakHour = servicePeakHour(s.Class, svcSrc)
		}
		w.services = append(w.services, s)
		return id
	}
	return svcSrc.Intn(len(w.services))
}

// servicePeakHour draws the diurnal peak of a service. Interactive services
// cluster in the evening (user-driven), batch in the night, HPC anywhere.
func servicePeakHour(c Class, src *rng.Source) float64 {
	switch c {
	case ClassWebSearch:
		return 18 + src.Range(-3, 3)
	case ClassMapReduce:
		return 14 + src.Range(-4, 4)
	case ClassBatch:
		return 2 + src.Range(-2, 2)
	default:
		return src.Range(0, 24)
	}
}

// parameterize draws the VM's base-day trace parameters from its class, or
// around the service's fitted template when the workload is calibrated
// (±15% on the level, ±20% on the noise terms, keeping per-VM diversity
// without leaving the fitted family).
func (v *VM) parameterize(s *Service, tmpl *UsageTemplate, src *rng.Source) {
	v.peakHour = s.PeakHour
	if tmpl != nil {
		v.mean = units.Clamp(tmpl.Mean*src.Range(0.85, 1.15), 0.02, 0.95)
		v.amp = tmpl.Amp * src.Range(0.8, 1.2)
		v.fastAmp = tmpl.FastAmp * src.Range(0.8, 1.2)
		v.slowAmp = tmpl.SlowAmp * src.Range(0.8, 1.2)
		v.dayVar = tmpl.DayVar
		return
	}
	switch v.Class {
	case ClassWebSearch:
		v.mean = src.Range(0.25, 0.45)
		v.amp = src.Range(0.15, 0.30)
		v.fastAmp = src.Range(0.06, 0.14)
		v.slowAmp = src.Range(0.04, 0.10)
		v.dayVar = 0.15
	case ClassMapReduce:
		v.mean = src.Range(0.20, 0.40)
		v.amp = src.Range(0.10, 0.20)
		v.fastAmp = src.Range(0.04, 0.10)
		v.slowAmp = src.Range(0.04, 0.08)
		v.burstAmp = src.Range(0.20, 0.40)
		v.dayVar = 0.20
	case ClassHPC:
		v.mean = src.Range(0.55, 0.80)
		v.amp = src.Range(0.0, 0.05)
		v.fastAmp = src.Range(0.01, 0.04)
		v.slowAmp = src.Range(0.01, 0.03)
		v.dayVar = 0.05
	case ClassBatch:
		v.mean = src.Range(0.30, 0.55)
		v.amp = src.Range(0.20, 0.35)
		v.fastAmp = src.Range(0.02, 0.06)
		v.slowAmp = src.Range(0.02, 0.06)
		v.dayVar = 0.25
	}
}

// drawImage samples the migration image size: 2, 4 and 8 GB with 60/30/10 %
// probability, per the paper's setup.
func drawImage(src *rng.Source) units.DataSize {
	switch src.Categorical([]float64{0.60, 0.30, 0.10}) {
	case 0:
		return 2 * units.Gigabyte
	case 1:
		return 4 * units.Gigabyte
	default:
		return 8 * units.Gigabyte
	}
}

// connect wires a new member into its service's communication graph with up
// to MaxPairsPerVM peers, each direction drawing an independent log-normal
// base volume (bidirectional asymmetry).
func (w *Workload) connect(s *Service, vm *VM, volSrc *rng.Source) {
	n := len(s.Members)
	if n == 0 {
		return
	}
	deg := w.cfg.MaxPairsPerVM
	if deg > n {
		deg = n
	}
	perm := volSrc.Perm(n)
	meanBytes := w.cfg.VolumeMeanMB * 1e6
	for k := 0; k < deg; k++ {
		peer := s.Members[perm[k]]
		sigma2 := volSrc.Range(1, 4) // the paper's U[1,4] log-variance
		s.pairs = append(s.pairs,
			pair{from: vm.ID, to: peer, base: volSrc.LogNormalFromMean(meanBytes, sigma2)},
			pair{from: peer, to: vm.ID, base: volSrc.LogNormalFromMean(meanBytes, sigma2)},
		)
	}
}

// index precomputes per-slot active/arrival/departure lists.
func (w *Workload) index() {
	slots := int(w.cfg.Horizon.Slots)
	w.active = make([][]int, slots)
	w.arrive = make([][]int, slots)
	w.depart = make([][]int, slots)
	for _, vm := range w.vms {
		for sl := vm.Arrival; sl < vm.Depart && int(sl) < slots; sl++ {
			w.active[sl] = append(w.active[sl], vm.ID)
		}
		if int(vm.Arrival) < slots {
			w.arrive[vm.Arrival] = append(w.arrive[vm.Arrival], vm.ID)
		}
		if int(vm.Depart) < slots {
			w.depart[vm.Depart] = append(w.depart[vm.Depart], vm.ID)
		}
	}
}

// NumVMs returns the total number of VMs ever created.
func (w *Workload) NumVMs() int { return len(w.vms) }

// NumServices returns the number of services.
func (w *Workload) NumServices() int { return len(w.services) }

// VM returns the VM with the given id.
func (w *Workload) VM(id int) *VM { return w.vms[id] }

// Service returns service s.
func (w *Workload) Service(s int) *Service { return w.services[s] }

// ActiveVMs returns the ids of VMs active during slot sl in ascending order.
// The returned slice is shared; callers must not modify it.
func (w *Workload) ActiveVMs(sl timeutil.Slot) []int {
	if int(sl) >= len(w.active) || sl < 0 {
		return nil
	}
	return w.active[sl]
}

// Arrivals returns the ids of VMs whose first slot is sl.
func (w *Workload) Arrivals(sl timeutil.Slot) []int {
	if int(sl) >= len(w.arrive) || sl < 0 {
		return nil
	}
	return w.arrive[sl]
}

// Departures returns the ids of VMs that disappear at the start of sl.
func (w *Workload) Departures(sl timeutil.Slot) []int {
	if int(sl) >= len(w.depart) || sl < 0 {
		return nil
	}
	return w.depart[sl]
}

// dayFactor is the unit-mean day-to-day rescaling that extends the base day
// to a week (the paper's "statistical variance with the same mean").
func (v *VM) dayFactor(day int) float64 {
	f := 1 + v.dayVar*rng.NoiseNorm(v.seed, 0xDA7, uint64(day))
	return units.Clamp(f, 0.4, 1.6)
}

// Util returns the VM's CPU demand, in fractions of a reference core, at
// fine step st. It is a pure function of the workload seed.
func (w *Workload) Util(id int, st timeutil.Step) float64 {
	v := w.vms[id]
	sec := st.Seconds()
	day := int(sec / 86400)
	h := sec/3600 - float64(day)*24

	base := v.mean + v.amp*math.Cos((h-v.peakHour)/24*2*math.Pi)
	base *= v.dayFactor(day)

	slow := (rng.SmoothNoise(sec/600, v.seed, 0x510) - 0.5) * 2 * v.slowAmp
	fast := (rng.Noise01(v.seed, 0xFA57, uint64(st)) - 0.5) * 2 * v.fastAmp

	u := base + slow + fast
	if v.burstAmp > 0 {
		// Burst windows ~30 min wide covering ~1/4 of the time.
		if rng.SmoothNoise(sec/1800, v.seed, 0xB057) > 0.75 {
			u += v.burstAmp
		}
	}
	return units.Clamp(u, 0.02, 1)
}

// SlotProfile returns n samples of the VM's utilization spread evenly across
// slot sl. Correlation metrics consume these downsampled profiles.
func (w *Workload) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	prof := make([]float64, n)
	w.FillSlotProfile(prof, id, sl)
	return prof
}

// FillSlotProfile is the allocation-free variant of SlotProfile.
func (w *Workload) FillSlotProfile(dst []float64, id int, sl timeutil.Slot) {
	n := len(dst)
	if n == 0 {
		return
	}
	stride := timeutil.StepsPerSlot / n
	if stride < 1 {
		stride = 1
	}
	start := sl.Start()
	for i := 0; i < n; i++ {
		dst[i] = w.Util(id, start+timeutil.Step(i*stride))
	}
}

// MeanUtil returns the average of a 12-sample profile of slot sl.
func (w *Workload) MeanUtil(id int, sl timeutil.Slot) float64 {
	var prof [12]float64
	w.FillSlotProfile(prof[:], id, sl)
	var sum float64
	for _, u := range prof {
		sum += u
	}
	return sum / float64(len(prof))
}

// PeakUtil returns the maximum of a 12-sample profile of slot sl.
func (w *Workload) PeakUtil(id int, sl timeutil.Slot) float64 {
	var prof [12]float64
	w.FillSlotProfile(prof[:], id, sl)
	var peak float64
	for _, u := range prof {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// serviceActivity is the unit-mean time-varying modulation of a service's
// data exchange: diurnal around the service peak plus slow noise. It changes
// every slot, which is what makes data correlation "change at runtime
// depending on real-time information".
func (w *Workload) serviceActivity(s *Service, sl timeutil.Slot) float64 {
	h := float64(sl.HourUTC())
	diurnal := 1 + 0.6*math.Cos((h-s.PeakHour)/24*2*math.Pi)
	noise := 0.7 + 0.6*rng.SmoothNoise(float64(sl)/3, uint64(s.ID), 0xAC71)
	return diurnal * noise
}

// Volumes returns the directed inter-VM data volumes for slot sl, covering
// every communicating pair whose endpoints are both active. The slice is
// freshly allocated and sorted by construction order (stable across calls).
func (w *Workload) Volumes(sl timeutil.Slot) []VolumeEntry {
	return w.volumes(sl, sl)
}

// PlannedVolumes is the controller's view of data correlation: volumes for
// every pair whose endpoints are active at slot act, priced at slot obs's
// service activity. Newly arrived VMs have no realized traffic yet, but
// their service membership — hence who they will talk to and roughly how
// much — is placement-time knowledge (the paper's controllers receive the
// "data communications" of the fleet), so they still attract their peers.
func (w *Workload) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	return w.volumes(obs, act)
}

func (w *Workload) volumes(obs, act timeutil.Slot) []VolumeEntry {
	var out []VolumeEntry
	for _, s := range w.services {
		if len(s.pairs) == 0 {
			continue
		}
		activity := w.serviceActivity(s, obs)
		for _, p := range s.pairs {
			if !w.vms[p.from].ActiveAt(act) || !w.vms[p.to].ActiveAt(act) {
				continue
			}
			// Direction-specific jitter keeps the two directions of a pair
			// distinct per slot (bidirectional correlation).
			jit := 0.6 + 0.8*rng.Noise01(uint64(p.from)*0x1f3, uint64(p.to)*0x9d7, uint64(obs))
			out = append(out, VolumeEntry{
				From: p.from,
				To:   p.to,
				Vol:  units.DataSize(p.base * activity * jit),
			})
		}
	}
	return out
}

// Config returns the (defaulted) configuration the workload was built with.
func (w *Workload) Config() Config { return w.cfg }

// Image returns the migration image size of VM id.
func (w *Workload) Image(id int) units.DataSize { return w.vms[id].Image }

// Slots returns the number of slots the workload covers.
func (w *Workload) Slots() timeutil.Slot { return w.cfg.Horizon.Slots }
