package trace

import (
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Source is the workload interface the simulator consumes. The synthetic
// Workload implements it, and Replay implements it over CSV files so that
// real data-center traces — what the paper's own evaluation sampled — can
// drive the same experiments.
type Source interface {
	// NumVMs returns the total number of VMs that ever exist.
	NumVMs() int
	// ActiveVMs returns the ids active during sl, ascending. The returned
	// slice is shared; callers must not modify it.
	ActiveVMs(sl timeutil.Slot) []int
	// Util returns the VM's CPU demand in reference cores at fine step st.
	Util(id int, st timeutil.Step) float64
	// SlotProfile returns n samples of the VM's utilization across sl.
	SlotProfile(id int, sl timeutil.Slot, n int) []float64
	// Volumes returns the realized directed inter-VM volumes of slot sl.
	Volumes(sl timeutil.Slot) []VolumeEntry
	// PlannedVolumes returns volumes for pairs active at slot act, priced
	// at slot obs's activity — the controller's placement-time knowledge.
	PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry
	// Image returns the VM's migration image size.
	Image(id int) units.DataSize
	// Slots returns the number of slots the workload covers.
	Slots() timeutil.Slot
}

// Statically assert both implementations.
var (
	_ Source = (*Workload)(nil)
	_ Source = (*Replay)(nil)
)
