package trace

import (
	"math"
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func testWorkload(t *testing.T, seed uint64) *Workload {
	t.Helper()
	return New(Config{
		Seed:       seed,
		Horizon:    timeutil.Days(2),
		InitialVMs: 120,
	})
}

func TestDeterministicGeneration(t *testing.T) {
	a := testWorkload(t, 5)
	b := testWorkload(t, 5)
	if a.NumVMs() != b.NumVMs() || a.NumServices() != b.NumServices() {
		t.Fatalf("counts diverged: %d/%d vs %d/%d", a.NumVMs(), a.NumServices(), b.NumVMs(), b.NumServices())
	}
	for id := 0; id < a.NumVMs(); id++ {
		va, vb := a.VM(id), b.VM(id)
		if va.Arrival != vb.Arrival || va.Depart != vb.Depart || va.Class != vb.Class || va.Image != vb.Image {
			t.Fatalf("vm %d metadata diverged", id)
		}
	}
	for st := timeutil.Step(0); st < 2000; st += 37 {
		if a.Util(3, st) != b.Util(3, st) {
			t.Fatalf("util diverged at step %d", st)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := testWorkload(t, 1)
	b := testWorkload(t, 2)
	same := 0
	for st := timeutil.Step(0); st < 100; st++ {
		if a.Util(0, st) == b.Util(0, st) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestInitialVMsActiveAtSlotZero(t *testing.T) {
	w := testWorkload(t, 3)
	if got := len(w.ActiveVMs(0)); got != 120 {
		t.Fatalf("active at slot 0 = %d, want 120", got)
	}
}

func TestArrivalsAndDeparturesConsistent(t *testing.T) {
	w := testWorkload(t, 7)
	for sl := timeutil.Slot(1); sl < w.Config().Horizon.Slots; sl++ {
		prev := map[int]bool{}
		for _, id := range w.ActiveVMs(sl - 1) {
			prev[id] = true
		}
		cur := map[int]bool{}
		for _, id := range w.ActiveVMs(sl) {
			cur[id] = true
		}
		for _, id := range w.Arrivals(sl) {
			if prev[id] {
				t.Fatalf("slot %d: arrival %d already active", sl, id)
			}
			if !cur[id] {
				t.Fatalf("slot %d: arrival %d not active", sl, id)
			}
		}
		for _, id := range w.Departures(sl) {
			if !prev[id] {
				t.Fatalf("slot %d: departure %d was not active", sl, id)
			}
			if cur[id] {
				t.Fatalf("slot %d: departure %d still active", sl, id)
			}
		}
	}
}

func TestActiveMatchesVMWindows(t *testing.T) {
	w := testWorkload(t, 11)
	for sl := timeutil.Slot(0); sl < w.Config().Horizon.Slots; sl += 7 {
		for _, id := range w.ActiveVMs(sl) {
			if !w.VM(id).ActiveAt(sl) {
				t.Fatalf("vm %d listed active at %d outside its window", id, sl)
			}
		}
	}
}

func TestUtilBounds(t *testing.T) {
	w := testWorkload(t, 13)
	for id := 0; id < w.NumVMs(); id += 5 {
		for st := timeutil.Step(0); st < 5000; st += 111 {
			u := w.Util(id, st)
			if u < 0.02-1e-12 || u > 1+1e-12 {
				t.Fatalf("vm %d util %v out of [0.02, 1] at step %d", id, u, st)
			}
		}
	}
}

func TestImageSizeDistribution(t *testing.T) {
	w := New(Config{Seed: 17, Horizon: timeutil.Days(1), InitialVMs: 3000})
	counts := map[units.DataSize]int{}
	for id := 0; id < w.NumVMs(); id++ {
		counts[w.VM(id).Image]++
	}
	total := float64(w.NumVMs())
	if got := float64(counts[2*units.Gigabyte]) / total; math.Abs(got-0.6) > 0.04 {
		t.Errorf("2 GB share = %v, want ~0.6", got)
	}
	if got := float64(counts[4*units.Gigabyte]) / total; math.Abs(got-0.3) > 0.04 {
		t.Errorf("4 GB share = %v, want ~0.3", got)
	}
	if got := float64(counts[8*units.Gigabyte]) / total; math.Abs(got-0.1) > 0.03 {
		t.Errorf("8 GB share = %v, want ~0.1", got)
	}
}

func TestServiceMembersShareClassAndPhase(t *testing.T) {
	w := testWorkload(t, 19)
	for s := 0; s < w.NumServices(); s++ {
		svc := w.Service(s)
		for _, id := range svc.Members {
			vm := w.VM(id)
			if vm.Class != svc.Class {
				t.Fatalf("service %d: member %d class %v != %v", s, id, vm.Class, svc.Class)
			}
			if vm.peakHour != svc.PeakHour {
				t.Fatalf("service %d: member %d phase differs", s, id)
			}
		}
	}
}

func TestSameServicePeersAreCPUCorrelated(t *testing.T) {
	// Two web-search VMs of the same service must have visibly correlated
	// diurnal profiles (peaks coincide); VMs of services peaking 12h apart
	// must not. Use daily mean-by-hour profiles.
	w := New(Config{Seed: 23, Horizon: timeutil.Days(1), InitialVMs: 400, MeanServiceVMs: 8})
	var svcA *Service
	for s := 0; s < w.NumServices(); s++ {
		svc := w.Service(s)
		if svc.Class == ClassWebSearch && len(svc.Members) >= 2 {
			svcA = svc
			break
		}
	}
	if svcA == nil {
		t.Skip("no multi-member web service generated")
	}
	hourly := func(id int) []float64 {
		out := make([]float64, 24)
		for h := 0; h < 24; h++ {
			st := timeutil.Slot(h).Start()
			var sum float64
			for k := 0; k < 12; k++ {
				sum += w.Util(id, st+timeutil.Step(k*60))
			}
			out[h] = sum / 12
		}
		return out
	}
	a := hourly(svcA.Members[0])
	b := hourly(svcA.Members[1])
	// Peaks must be within a couple of hours of each other.
	argmax := func(p []float64) int {
		best := 0
		for i, v := range p {
			if v > p[best] {
				best = i
			}
		}
		return best
	}
	da := argmax(a)
	db := argmax(b)
	diff := (da - db + 24) % 24
	if diff > 12 {
		diff = 24 - diff
	}
	if diff > 3 {
		t.Fatalf("same-service peaks %d h apart", diff)
	}
}

func TestVolumesBidirectionalAndTimeVarying(t *testing.T) {
	w := New(Config{Seed: 29, Horizon: timeutil.Days(1), InitialVMs: 200, MeanServiceVMs: 6})
	vols := w.Volumes(10)
	if len(vols) == 0 {
		t.Fatal("no inter-VM volumes at slot 10")
	}
	// Both directions of at least one pair must exist with different values.
	dir := map[[2]int]units.DataSize{}
	for _, e := range vols {
		if e.From == e.To {
			t.Fatal("self volume")
		}
		if e.Vol <= 0 {
			t.Fatal("non-positive volume entry")
		}
		dir[[2]int{e.From, e.To}] += e.Vol
	}
	foundAsym := false
	for k, v := range dir {
		if rv, ok := dir[[2]int{k[1], k[0]}]; ok && rv != v {
			foundAsym = true
			break
		}
	}
	if !foundAsym {
		t.Fatal("no bidirectional asymmetric pair found")
	}
	// Time variation: total volume changes across slots.
	tot := func(sl timeutil.Slot) units.DataSize {
		var s units.DataSize
		for _, e := range w.Volumes(sl) {
			s += e.Vol
		}
		return s
	}
	if tot(2) == tot(14) {
		t.Fatal("volumes not time-varying")
	}
}

func TestVolumesOnlyBetweenActiveVMs(t *testing.T) {
	w := testWorkload(t, 31)
	for _, sl := range []timeutil.Slot{0, 13, 40} {
		for _, e := range w.Volumes(sl) {
			if !w.VM(e.From).ActiveAt(sl) || !w.VM(e.To).ActiveAt(sl) {
				t.Fatalf("slot %d: volume between inactive VMs %d->%d", sl, e.From, e.To)
			}
		}
	}
}

func TestMeanAndPeakUtilConsistent(t *testing.T) {
	w := testWorkload(t, 37)
	for id := 0; id < 20; id++ {
		for _, sl := range []timeutil.Slot{0, 5, 20} {
			mean := w.MeanUtil(id, sl)
			peak := w.PeakUtil(id, sl)
			if mean > peak+1e-12 {
				t.Fatalf("vm %d slot %d: mean %v > peak %v", id, sl, mean, peak)
			}
			if peak > 1 || mean < 0 {
				t.Fatalf("vm %d slot %d: implausible mean/peak %v/%v", id, sl, mean, peak)
			}
		}
	}
}

func TestSlotProfileMatchesUtil(t *testing.T) {
	w := testWorkload(t, 41)
	prof := w.SlotProfile(0, 3, 12)
	if len(prof) != 12 {
		t.Fatalf("profile length %d", len(prof))
	}
	start := timeutil.Slot(3).Start()
	for i, v := range prof {
		want := w.Util(0, start+timeutil.Step(i*60))
		if v != want {
			t.Fatalf("sample %d = %v, want %v", i, v, want)
		}
	}
}

func TestHPCFlatterThanWebSearch(t *testing.T) {
	w := New(Config{Seed: 43, Horizon: timeutil.Days(1), InitialVMs: 600})
	variance := func(class Class) float64 {
		var vals []float64
		for id := 0; id < w.NumVMs(); id++ {
			if w.VM(id).Class != class {
				continue
			}
			for h := 0; h < 24; h++ {
				vals = append(vals, w.MeanUtil(id, timeutil.Slot(h)))
			}
			if len(vals) > 24*20 {
				break
			}
		}
		var m float64
		for _, v := range vals {
			m += v
		}
		m /= float64(len(vals))
		var sq float64
		for _, v := range vals {
			sq += (v - m) * (v - m)
		}
		return sq / float64(len(vals))
	}
	if variance(ClassHPC) >= variance(ClassWebSearch) {
		t.Fatalf("HPC variance %v not below web-search %v", variance(ClassHPC), variance(ClassWebSearch))
	}
}

func TestDayExtensionPreservesMeanRoughly(t *testing.T) {
	// The paper extends one day to a week keeping the mean; our day factors
	// are unit-mean, so across many VMs the week/day-1 mean ratio ~ 1.
	w := New(Config{Seed: 47, Horizon: timeutil.Week(), InitialVMs: 150, MeanLifeSlots: 10000})
	var day1, week float64
	n := 0
	for id := 0; id < 100; id++ {
		for h := 0; h < 24; h++ {
			day1 += w.MeanUtil(id, timeutil.Slot(h))
		}
		for h := 0; h < 168; h++ {
			week += w.MeanUtil(id, timeutil.Slot(h))
		}
		n++
	}
	day1 /= float64(n * 24)
	week /= float64(n * 168)
	if math.Abs(week-day1)/day1 > 0.08 {
		t.Fatalf("weekly mean %v drifted from day-1 mean %v", week, day1)
	}
}

func TestClassString(t *testing.T) {
	if ClassWebSearch.String() != "websearch" || Class(99).String() != "class(99)" {
		t.Fatal("class names wrong")
	}
}

func TestOutOfRangeSlotsReturnNil(t *testing.T) {
	w := testWorkload(t, 53)
	if w.ActiveVMs(-1) != nil || w.ActiveVMs(99999) != nil {
		t.Fatal("out-of-range ActiveVMs not nil")
	}
	if w.Arrivals(99999) != nil || w.Departures(-1) != nil {
		t.Fatal("out-of-range arrivals/departures not nil")
	}
}

func BenchmarkUtil(b *testing.B) {
	w := New(Config{Seed: 1, Horizon: timeutil.Days(1), InitialVMs: 100})
	for i := 0; i < b.N; i++ {
		_ = w.Util(i%100, timeutil.Step(i))
	}
}

func BenchmarkVolumes(b *testing.B) {
	w := New(Config{Seed: 1, Horizon: timeutil.Days(1), InitialVMs: 500})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Volumes(timeutil.Slot(i % 24))
	}
}
