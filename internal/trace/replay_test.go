package trace

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func TestReplayRoundTrip(t *testing.T) {
	w := New(Config{Seed: 5, Horizon: timeutil.Hours(6), InitialVMs: 40})
	dir := t.TempDir()
	const samples = 12
	if err := ExportReplay(w, dir, 6, samples); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() < 6 {
		t.Fatalf("replay slots = %d, want >= 6", r.Slots())
	}
	// Active sets match per slot.
	for sl := timeutil.Slot(0); sl < 6; sl++ {
		a := w.ActiveVMs(sl)
		b := r.ActiveVMs(sl)
		if len(a) != len(b) {
			t.Fatalf("slot %d: active %d vs %d", sl, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("slot %d: active sets differ at %d", sl, i)
			}
		}
	}
	// Profiles match exactly at the stored resolution.
	for _, id := range w.ActiveVMs(2) {
		want := w.SlotProfile(id, 2, samples)
		got := r.SlotProfile(id, 2, samples)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-3 { // CSV stores 4 decimals
				t.Fatalf("vm %d sample %d: %v vs %v", id, i, want[i], got[i])
			}
		}
	}
	// Volumes match in count and total.
	for sl := timeutil.Slot(0); sl < 6; sl++ {
		wv := w.Volumes(sl)
		rv := r.Volumes(sl)
		if len(wv) != len(rv) {
			t.Fatalf("slot %d: volumes %d vs %d", sl, len(wv), len(rv))
		}
		var sumW, sumR units.DataSize
		for i := range wv {
			sumW += wv[i].Vol
			sumR += rv[i].Vol
		}
		if math.Abs(float64(sumW-sumR)) > float64(len(wv)) { // 1 byte rounding per row
			t.Fatalf("slot %d: volume totals %v vs %v", sl, sumW, sumR)
		}
	}
	// Image sizes survive.
	if r.Image(0) != w.Image(0) {
		t.Fatalf("image = %v, want %v", r.Image(0), w.Image(0))
	}
}

func TestReplayUtilPiecewiseConstant(t *testing.T) {
	w := New(Config{Seed: 7, Horizon: timeutil.Hours(2), InitialVMs: 10})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 2, 6); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	// With 6 samples per slot, steps within one sixth of a slot share a
	// value.
	stepsPerSample := timeutil.Step(timeutil.StepsPerSlot / 6)
	u0 := r.Util(0, 0)
	u1 := r.Util(0, stepsPerSample-1)
	if u0 != u1 {
		t.Fatalf("samples not held constant: %v vs %v", u0, u1)
	}
	// The profile resample must agree with Util.
	prof := r.SlotProfile(0, 0, 6)
	if prof[0] != u0 {
		t.Fatalf("profile/util disagree: %v vs %v", prof[0], u0)
	}
}

func TestReplayPlannedVolumesFilterByLife(t *testing.T) {
	w := New(Config{Seed: 11, Horizon: timeutil.Hours(8), InitialVMs: 60, MeanLifeSlots: 3})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 8, 6); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.PlannedVolumes(2, 6) {
		if !r.aliveAt(e.From, 6) || !r.aliveAt(e.To, 6) {
			t.Fatalf("planned volume references VM dead at act slot: %+v", e)
		}
	}
}

func TestReplayOutOfRangeQueries(t *testing.T) {
	w := New(Config{Seed: 13, Horizon: timeutil.Hours(2), InitialVMs: 5})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 2, 4); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveVMs(-1) != nil || r.ActiveVMs(9999) != nil {
		t.Fatal("out-of-range active not nil")
	}
	if r.Util(0, timeutil.Step(1e7)) != 0 {
		t.Fatal("out-of-range util not 0")
	}
	if got := r.SlotProfile(0, 9999, 4); got[0] != 0 {
		t.Fatal("out-of-range profile not zero")
	}
	if r.Volumes(9999) != nil {
		t.Fatal("out-of-range volumes not nil")
	}
}

func TestLoadReplayRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("vms.csv", "id,arrival_slot,depart_slot,image_gb\nnot-a-number,0,1,2\n")
	write("profiles.csv", "id,slot,s0\n0,0,0.5\n")
	write("volumes.csv", "slot,from,to,bytes\n")
	if _, err := LoadReplay(dir); err == nil {
		t.Fatal("garbage vms.csv accepted")
	}

	write("vms.csv", "id,arrival_slot,depart_slot,image_gb\n0,5,1,2\n")
	if _, err := LoadReplay(dir); err == nil {
		t.Fatal("depart<arrival accepted")
	}

	write("vms.csv", "id,arrival_slot,depart_slot,image_gb\n0,0,2,2\n")
	write("profiles.csv", "id,slot,s0\n0,zero,0.5\n")
	if _, err := LoadReplay(dir); err == nil {
		t.Fatal("garbage profiles.csv accepted")
	}
}

func TestLoadReplayMissingDir(t *testing.T) {
	if _, err := LoadReplay(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestExportReplayClampsSlots(t *testing.T) {
	w := New(Config{Seed: 17, Horizon: timeutil.Hours(3), InitialVMs: 5})
	dir := t.TempDir()
	// Ask for more slots than the workload has: clamped, not an error.
	if err := ExportReplay(w, dir, 100, 4); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() > 3 {
		t.Fatalf("exported %d slots from a 3-slot workload", r.Slots())
	}
}
