package trace

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func TestReplayRoundTrip(t *testing.T) {
	w := New(Config{Seed: 5, Horizon: timeutil.Hours(6), InitialVMs: 40})
	dir := t.TempDir()
	const samples = 12
	if err := ExportReplay(w, dir, 6, samples); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() < 6 {
		t.Fatalf("replay slots = %d, want >= 6", r.Slots())
	}
	// Active sets match per slot.
	for sl := timeutil.Slot(0); sl < 6; sl++ {
		a := w.ActiveVMs(sl)
		b := r.ActiveVMs(sl)
		if len(a) != len(b) {
			t.Fatalf("slot %d: active %d vs %d", sl, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("slot %d: active sets differ at %d", sl, i)
			}
		}
	}
	// Profiles match exactly at the stored resolution.
	for _, id := range w.ActiveVMs(2) {
		want := w.SlotProfile(id, 2, samples)
		got := r.SlotProfile(id, 2, samples)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-3 { // CSV stores 4 decimals
				t.Fatalf("vm %d sample %d: %v vs %v", id, i, want[i], got[i])
			}
		}
	}
	// Volumes match in count and total.
	for sl := timeutil.Slot(0); sl < 6; sl++ {
		wv := w.Volumes(sl)
		rv := r.Volumes(sl)
		if len(wv) != len(rv) {
			t.Fatalf("slot %d: volumes %d vs %d", sl, len(wv), len(rv))
		}
		var sumW, sumR units.DataSize
		for i := range wv {
			sumW += wv[i].Vol
			sumR += rv[i].Vol
		}
		if math.Abs(float64(sumW-sumR)) > float64(len(wv)) { // 1 byte rounding per row
			t.Fatalf("slot %d: volume totals %v vs %v", sl, sumW, sumR)
		}
	}
	// Image sizes survive.
	if r.Image(0) != w.Image(0) {
		t.Fatalf("image = %v, want %v", r.Image(0), w.Image(0))
	}
}

func TestReplayUtilPiecewiseConstant(t *testing.T) {
	w := New(Config{Seed: 7, Horizon: timeutil.Hours(2), InitialVMs: 10})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 2, 6); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	// With 6 samples per slot, steps within one sixth of a slot share a
	// value.
	stepsPerSample := timeutil.Step(timeutil.StepsPerSlot / 6)
	u0 := r.Util(0, 0)
	u1 := r.Util(0, stepsPerSample-1)
	if u0 != u1 {
		t.Fatalf("samples not held constant: %v vs %v", u0, u1)
	}
	// The profile resample must agree with Util.
	prof := r.SlotProfile(0, 0, 6)
	if prof[0] != u0 {
		t.Fatalf("profile/util disagree: %v vs %v", prof[0], u0)
	}
}

func TestReplayPlannedVolumesFilterByLife(t *testing.T) {
	w := New(Config{Seed: 11, Horizon: timeutil.Hours(8), InitialVMs: 60, MeanLifeSlots: 3})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 8, 6); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.PlannedVolumes(2, 6) {
		if !r.aliveAt(e.From, 6) || !r.aliveAt(e.To, 6) {
			t.Fatalf("planned volume references VM dead at act slot: %+v", e)
		}
	}
}

func TestReplayOutOfRangeQueries(t *testing.T) {
	w := New(Config{Seed: 13, Horizon: timeutil.Hours(2), InitialVMs: 5})
	dir := t.TempDir()
	if err := ExportReplay(w, dir, 2, 4); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveVMs(-1) != nil || r.ActiveVMs(9999) != nil {
		t.Fatal("out-of-range active not nil")
	}
	if r.Util(0, timeutil.Step(1e7)) != 0 {
		t.Fatal("out-of-range util not 0")
	}
	if got := r.SlotProfile(0, 9999, 4); got[0] != 0 {
		t.Fatal("out-of-range profile not zero")
	}
	if r.Volumes(9999) != nil {
		t.Fatal("out-of-range volumes not nil")
	}
}

func TestLoadReplayRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("vms.csv", "id,arrival_slot,depart_slot,image_gb\nnot-a-number,0,1,2\n")
	write("profiles.csv", "id,slot,s0\n0,0,0.5\n")
	write("volumes.csv", "slot,from,to,bytes\n")
	if _, err := LoadReplay(dir); err == nil {
		t.Fatal("garbage vms.csv accepted")
	}

	write("vms.csv", "id,arrival_slot,depart_slot,image_gb\n0,5,1,2\n")
	if _, err := LoadReplay(dir); err == nil {
		t.Fatal("depart<arrival accepted")
	}

	write("vms.csv", "id,arrival_slot,depart_slot,image_gb\n0,0,2,2\n")
	write("profiles.csv", "id,slot,s0\n0,zero,0.5\n")
	if _, err := LoadReplay(dir); err == nil {
		t.Fatal("garbage profiles.csv accepted")
	}
}

func TestLoadReplayMissingDir(t *testing.T) {
	if _, err := LoadReplay(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestExportReplayClampsSlots(t *testing.T) {
	w := New(Config{Seed: 17, Horizon: timeutil.Hours(3), InitialVMs: 5})
	dir := t.TempDir()
	// Ask for more slots than the workload has: clamped, not an error.
	if err := ExportReplay(w, dir, 100, 4); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() > 3 {
		t.Fatalf("exported %d slots from a 3-slot workload", r.Slots())
	}
}

// gappedSource is a hand-built Source whose VM 0 goes idle mid-lifetime
// (active over [0,2) and [4,6)) — the shape that used to round-trip
// through ExportReplay/LoadReplay inflated to the full [0,6) span.
type gappedSource struct{}

func (gappedSource) NumVMs() int              { return 2 }
func (gappedSource) Slots() timeutil.Slot     { return 6 }
func (gappedSource) Image(int) units.DataSize { return 2 * units.Gigabyte }

func (gappedSource) ActiveVMs(sl timeutil.Slot) []int {
	switch {
	case sl < 0 || sl >= 6:
		return nil
	case sl >= 2 && sl < 4:
		return []int{1} // VM 0's gap
	case sl >= 1:
		return []int{0, 1}
	default:
		return []int{0}
	}
}

func (g gappedSource) Util(id int, st timeutil.Step) float64 {
	return 0.1 + 0.05*float64(id) + 0.01*float64(st.Slot())
}

func (g gappedSource) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Util(id, sl.Start())
	}
	return out
}

func (gappedSource) Volumes(sl timeutil.Slot) []VolumeEntry {
	if sl == 1 || sl == 5 {
		return []VolumeEntry{{From: 0, To: 1, Vol: 3 * units.Megabyte}}
	}
	return nil
}

func (g gappedSource) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	return g.Volumes(obs)
}

// TestReplayRoundTripProperty is the pipeline equivalence property: for
// synthetic presets x seeds plus the gapped hand-built source, an
// Export -> Load round trip must reproduce the exact active sets, the
// stored-resolution profiles (to CSV precision), the volume lists and the
// image sizes. In particular gapped lifetimes must not inflate: the
// pre-segments.csv exporter wrote depart = last+1, resurrecting VMs
// through their idle slots.
func TestReplayRoundTripProperty(t *testing.T) {
	sources := []struct {
		name string
		src  Source
	}{
		{"gapped", gappedSource{}},
	}
	for _, preset := range []Config{
		{Horizon: timeutil.Hours(8), InitialVMs: 30, MeanLifeSlots: 3},
		{Horizon: timeutil.Hours(6), InitialVMs: 20, ClassWeights: []float64{1, 0, 0, 0}},
	} {
		for _, seed := range []uint64{1, 2} {
			cfg := preset
			cfg.Seed = seed
			sources = append(sources, struct {
				name string
				src  Source
			}{fmt.Sprintf("synthetic-%dvm-seed%d", cfg.InitialVMs, seed), New(cfg)})
		}
	}
	const samples = 8
	for _, tc := range sources {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := ExportReplay(tc.src, dir, tc.src.Slots(), samples); err != nil {
				t.Fatal(err)
			}
			r, err := LoadReplay(dir)
			if err != nil {
				t.Fatal(err)
			}
			for sl := timeutil.Slot(0); sl < tc.src.Slots(); sl++ {
				a, b := tc.src.ActiveVMs(sl), r.ActiveVMs(sl)
				if len(a) != len(b) {
					t.Fatalf("slot %d: active %v vs %v", sl, a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("slot %d: active %v vs %v", sl, a, b)
					}
				}
				for _, id := range a {
					want := tc.src.SlotProfile(id, sl, samples)
					got := r.SlotProfile(id, sl, samples)
					for i := range want {
						if math.Abs(want[i]-got[i]) > 1e-3 { // CSV keeps 4 decimals
							t.Fatalf("vm %d slot %d sample %d: %v vs %v", id, sl, i, want[i], got[i])
						}
					}
					if math.Abs(r.Image(id).GB()-tc.src.Image(id).GB()) > 1e-3 {
						t.Fatalf("vm %d image %v vs %v", id, r.Image(id), tc.src.Image(id))
					}
				}
				wv, rv := tc.src.Volumes(sl), r.Volumes(sl)
				if len(wv) != len(rv) {
					t.Fatalf("slot %d: %d vs %d volume entries", sl, len(wv), len(rv))
				}
				for i := range wv {
					if wv[i].From != rv[i].From || wv[i].To != rv[i].To ||
						math.Abs(wv[i].Vol.Bytes()-rv[i].Vol.Bytes()) > 1 {
						t.Fatalf("slot %d entry %d: %+v vs %+v", sl, i, wv[i], rv[i])
					}
				}
			}
		})
	}
}

// TestExportReplayWritesSegments pins the on-disk shape of the gap fix:
// a gapped source gets a segments.csv, a contiguous one keeps the
// three-file layout.
func TestExportReplayWritesSegments(t *testing.T) {
	dir := t.TempDir()
	if err := ExportReplay(gappedSource{}, dir, 6, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "segments.csv")); err != nil {
		t.Fatalf("gapped export should write segments.csv: %v", err)
	}
	r, err := LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The gap slots must not list VM 0.
	for _, sl := range []timeutil.Slot{2, 3} {
		for _, id := range r.ActiveVMs(sl) {
			if id == 0 {
				t.Fatalf("slot %d resurrects VM 0 through its gap", sl)
			}
		}
	}

	contiguous := t.TempDir()
	w := New(Config{Seed: 3, Horizon: timeutil.Hours(3), InitialVMs: 10})
	if err := ExportReplay(w, contiguous, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(contiguous, "segments.csv")); !os.IsNotExist(err) {
		t.Fatalf("contiguous export should not write segments.csv (stat err: %v)", err)
	}
}

// TestLoadReplayStrictness covers the loader's hard-error contract: rows
// that the pre-fix loader silently dropped or last-win-overwrote are now
// load failures.
func TestLoadReplayStrictness(t *testing.T) {
	base := map[string]string{
		"vms.csv":      "id,arrival_slot,depart_slot,image_gb\n0,0,2,2.000\n1,0,3,4.000\n",
		"profiles.csv": "id,slot,s0,s1\n0,0,0.2000,0.4000\n1,0,0.1000,0.2000\n",
		"volumes.csv":  "slot,from,to,bytes\n0,0,1,1000\n",
	}
	cases := []struct {
		name      string
		file      string
		content   string
		wantInErr string
	}{
		{"duplicate VM id", "vms.csv",
			"id,arrival_slot,depart_slot,image_gb\n0,0,2,2.000\n0,1,3,4.000\n",
			"duplicate VM id"},
		{"ragged profile row", "profiles.csv",
			"id,slot,s0,s1\n0,0,0.2000,0.4000\n1,0,0.1000\n",
			"ragged"},
		{"out-of-horizon volume", "volumes.csv",
			"slot,from,to,bytes\n99,0,1,1000\n",
			"outside"},
		{"negative-slot volume", "volumes.csv",
			"slot,from,to,bytes\n-1,0,1,1000\n",
			"outside"},
		{"segment for undeclared VM", "segments.csv",
			"id,start_slot,end_slot\n7,0,1\n",
			"undeclared"},
		{"segment outside lifetime", "segments.csv",
			"id,start_slot,end_slot\n0,0,5\n",
			"lifetime"},
		{"overlapping segments", "segments.csv",
			"id,start_slot,end_slot\n1,0,2\n1,1,3\n",
			"overlapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for name, content := range base {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(dir, tc.file), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadReplay(dir)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantInErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantInErr)
			}
		})
	}

	// The base triple itself must load: the strictness is in the variants.
	dir := t.TempDir()
	for name, content := range base {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadReplay(dir); err != nil {
		t.Fatalf("base replay rejected: %v", err)
	}
}
