package trace

import (
	"math"
	"testing"

	"geovmp/internal/timeutil"
)

func TestPlannedVolumesCoverNewVMs(t *testing.T) {
	// A VM arriving at slot `a` has no realized traffic at slot a-1, but
	// PlannedVolumes(a-1, a) must still list its service pairs.
	w := New(Config{Seed: 61, Horizon: timeutil.Days(2), InitialVMs: 150, ArrivalPerSlot: 8})
	for sl := timeutil.Slot(2); sl < 30; sl++ {
		arrivals := w.Arrivals(sl)
		if len(arrivals) == 0 {
			continue
		}
		covered := map[int]bool{}
		for _, e := range w.PlannedVolumes(sl-1, sl) {
			covered[e.From] = true
			covered[e.To] = true
		}
		found := false
		for _, id := range arrivals {
			if covered[id] {
				found = true
			}
		}
		// Some arrivals open brand-new single-member services (no pairs);
		// over all slots at least one connected arrival must be covered.
		if found {
			return
		}
	}
	t.Fatal("no newly arrived VM ever appeared in planned volumes")
}

func TestPlannedVolumesExcludeDepartedVMs(t *testing.T) {
	w := New(Config{Seed: 67, Horizon: timeutil.Days(2), InitialVMs: 120, MeanLifeSlots: 6})
	for _, sl := range []timeutil.Slot{8, 16, 24} {
		for _, e := range w.PlannedVolumes(sl-1, sl) {
			if !w.VM(e.From).ActiveAt(sl) || !w.VM(e.To).ActiveAt(sl) {
				t.Fatalf("slot %d: planned pair (%d,%d) has a dead endpoint", sl, e.From, e.To)
			}
		}
	}
}

func TestPlannedMatchesRealizedWhenObsEqualsAct(t *testing.T) {
	w := New(Config{Seed: 71, Horizon: timeutil.Days(1), InitialVMs: 80})
	a := w.Volumes(5)
	b := w.PlannedVolumes(5, 5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestVolumesPricedAtObservedSlot(t *testing.T) {
	// PlannedVolumes(obs, act) uses obs's activity: two different obs slots
	// should produce different totals for the same act.
	w := New(Config{Seed: 73, Horizon: timeutil.Days(1), InitialVMs: 100, MeanLifeSlots: 10000})
	tot := func(obs timeutil.Slot) float64 {
		var s float64
		for _, e := range w.PlannedVolumes(obs, 12) {
			s += float64(e.Vol)
		}
		return s
	}
	if tot(2) == tot(14) {
		t.Fatal("planned volumes insensitive to observed slot")
	}
}

func TestImageAccessorMatchesVM(t *testing.T) {
	w := New(Config{Seed: 79, Horizon: timeutil.Hours(2), InitialVMs: 30})
	for id := 0; id < w.NumVMs(); id++ {
		if w.Image(id) != w.VM(id).Image {
			t.Fatalf("Image(%d) mismatch", id)
		}
	}
}

func TestSlotsAccessor(t *testing.T) {
	w := New(Config{Seed: 83, Horizon: timeutil.Days(3), InitialVMs: 10})
	if w.Slots() != 72 {
		t.Fatalf("Slots() = %d, want 72", w.Slots())
	}
}

func TestBurstyClassActuallyBursts(t *testing.T) {
	// MapReduce VMs must show bimodal behavior: their high samples exceed
	// their median noticeably more often than HPC's.
	w := New(Config{Seed: 89, Horizon: timeutil.Days(1), InitialVMs: 400})
	spread := func(class Class) float64 {
		var lo, hi, n float64
		for id := 0; id < w.NumVMs() && n < 2000; id++ {
			if w.VM(id).Class != class {
				continue
			}
			for st := timeutil.Step(0); st < 720*6; st += 97 {
				u := w.Util(id, st)
				if u > 0.5 {
					hi++
				} else {
					lo++
				}
				n++
			}
		}
		if lo == 0 {
			return math.Inf(1)
		}
		return hi / (hi + lo)
	}
	mr := spread(ClassMapReduce)
	if mr <= 0.02 {
		t.Fatalf("mapreduce high-load fraction %v implausibly low", mr)
	}
}

func TestServiceGraphDegreeBounded(t *testing.T) {
	w := New(Config{Seed: 97, Horizon: timeutil.Days(1), InitialVMs: 300, MaxPairsPerVM: 3})
	deg := map[int]int{}
	for s := 0; s < w.NumServices(); s++ {
		for _, p := range w.Service(s).pairs {
			// Outgoing edges created at join time: each join adds at most
			// MaxPairsPerVM outgoing pairs for the new VM.
			deg[p.from]++
		}
	}
	// A VM gets up to 3 outgoing pairs at join, plus one reverse pair for
	// every later member that picks it (unbounded in principle but small in
	// expectation). Check the join-time bound: no VM has more outgoing
	// pairs than 3 + number of later joiners that selected it; a loose
	// sanity cap of 40 catches wiring bugs.
	for id, d := range deg {
		if d > 40 {
			t.Fatalf("vm %d outgoing degree %d implausible", id, d)
		}
	}
}
