package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Replay is a workload loaded from CSV files — the hook for driving the
// simulator with real data-center traces instead of the synthetic
// generator, mirroring the paper's use of sampled production VMs.
//
// The on-disk format (written by ExportReplay and cmd/tracegen -replay):
//
//	vms.csv       id,arrival_slot,depart_slot,image_gb
//	profiles.csv  id,slot,s0,s1,...,s{n-1}   (per-slot utilization samples)
//	volumes.csv   slot,from,to,bytes         (directed inter-VM transfers)
//	segments.csv  id,start_slot,end_slot     (optional activity runs)
//
// Utilization between profile samples is held piecewise constant; slots
// without a profile row read as zero demand. A VM is active over
// [arrival, depart) unless segments.csv lists explicit activity runs for it
// — the export path writes those for VMs with idle slots mid-trace, so a
// gapped lifetime round-trips instead of being inflated to its full span.
//
// Malformed input is a load error, never silent data loss: duplicate VM
// ids, profile rows whose sample count disagrees with the first row, and
// volume rows outside the declared horizon all fail the load.
type Replay struct {
	slots   timeutil.Slot
	samples int
	vms     []replayVM
	active  [][]int
	// profiles[id][slot] -> samples (nil when absent)
	profiles [][][]float64
	// volumes[slot] -> entries
	volumes [][]VolumeEntry
}

type replayVM struct {
	arrival, depart timeutil.Slot
	image           units.DataSize
	// segs lists the VM's activity runs when its lifetime is gapped;
	// nil means contiguous [arrival, depart).
	segs []slotSpan
}

// slotSpan is a half-open activity run [start, end).
type slotSpan struct{ start, end timeutil.Slot }

// NumVMs implements Source.
func (r *Replay) NumVMs() int { return len(r.vms) }

// Slots implements Source.
func (r *Replay) Slots() timeutil.Slot { return r.slots }

// Image implements Source.
func (r *Replay) Image(id int) units.DataSize { return r.vms[id].image }

// Samples returns the per-slot sample count of the stored profiles (0 when
// the replay has no profile rows).
func (r *Replay) Samples() int { return r.samples }

// ActiveVMs implements Source.
func (r *Replay) ActiveVMs(sl timeutil.Slot) []int {
	if sl < 0 || int(sl) >= len(r.active) {
		return nil
	}
	return r.active[sl]
}

// SlotProfile implements Source, resampling the stored profile to n points.
func (r *Replay) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	out := make([]float64, n)
	r.FillSlotProfile(out, id, sl)
	return out
}

// FillSlotProfile is the allocation-free variant of SlotProfile: it
// resamples the stored profile into dst (absent profiles read as zero).
func (r *Replay) FillSlotProfile(dst []float64, id int, sl timeutil.Slot) {
	n := len(dst)
	if id < 0 || id >= len(r.profiles) || sl < 0 || int(sl) >= len(r.profiles[id]) {
		clear(dst)
		return
	}
	prof := r.profiles[id][sl]
	if len(prof) == 0 {
		clear(dst)
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = prof[i*len(prof)/n]
	}
}

// Util implements Source: the stored sample covering the step, held
// constant.
func (r *Replay) Util(id int, st timeutil.Step) float64 {
	sl := st.Slot()
	if id < 0 || id >= len(r.profiles) || sl < 0 || int(sl) >= len(r.profiles[id]) {
		return 0
	}
	prof := r.profiles[id][sl]
	if len(prof) == 0 {
		return 0
	}
	within := int(st - sl.Start())
	idx := within * len(prof) / timeutil.StepsPerSlot
	if idx >= len(prof) {
		idx = len(prof) - 1
	}
	return prof[idx]
}

// Volumes implements Source.
func (r *Replay) Volumes(sl timeutil.Slot) []VolumeEntry {
	if sl < 0 || int(sl) >= len(r.volumes) {
		return nil
	}
	return r.volumes[sl]
}

// PlannedVolumes implements Source: the observed slot's entries restricted
// to VMs alive at the acting slot (a replay has no service topology to
// extrapolate from).
func (r *Replay) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	vols := r.Volumes(obs)
	out := make([]VolumeEntry, 0, len(vols))
	for _, e := range vols {
		if r.aliveAt(e.From, act) && r.aliveAt(e.To, act) {
			out = append(out, e)
		}
	}
	return out
}

func (r *Replay) aliveAt(id int, sl timeutil.Slot) bool {
	if id < 0 || id >= len(r.vms) {
		return false
	}
	v := r.vms[id]
	if sl < v.arrival || sl >= v.depart {
		return false
	}
	if v.segs == nil {
		return true
	}
	for _, s := range v.segs {
		if sl >= s.start && sl < s.end {
			return true
		}
	}
	return false
}

// ExportReplay writes any Source's first `slots` slots to dir in the replay
// CSV format with `samples` utilization samples per slot. VMs whose
// activity is gapped within the window additionally get their runs written
// to segments.csv, so LoadReplay reconstructs the exact active sets rather
// than the inflated [first, last] span.
func ExportReplay(src Source, dir string, slots timeutil.Slot, samples int) error {
	if slots > src.Slots() {
		slots = src.Slots()
	}
	if samples <= 0 {
		samples = 12
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Activity runs per VM that appears within the exported window.
	runs := map[int][]slotSpan{}
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		for _, id := range src.ActiveVMs(sl) {
			rs := runs[id]
			if n := len(rs); n > 0 && rs[n-1].end == sl {
				rs[n-1].end = sl + 1
			} else {
				rs = append(rs, slotSpan{sl, sl + 1})
			}
			runs[id] = rs
		}
	}
	ids := make([]int, 0, len(runs))
	gapped := false
	for id, rs := range runs {
		ids = append(ids, id)
		if len(rs) > 1 {
			gapped = true
		}
	}
	sort.Ints(ids)

	vf, err := os.Create(filepath.Join(dir, "vms.csv"))
	if err != nil {
		return err
	}
	vw := csv.NewWriter(vf)
	_ = vw.Write([]string{"id", "arrival_slot", "depart_slot", "image_gb"})
	for _, id := range ids {
		rs := runs[id]
		_ = vw.Write([]string{
			strconv.Itoa(id),
			strconv.FormatInt(int64(rs[0].start), 10),
			strconv.FormatInt(int64(rs[len(rs)-1].end), 10),
			strconv.FormatFloat(src.Image(id).GB(), 'f', 3, 64),
		})
	}
	vw.Flush()
	if err := firstErr(vw.Error(), vf.Close()); err != nil {
		return err
	}

	// segments.csv — only when some lifetime is gapped, so dirs exported
	// from contiguous sources keep the three-file layout.
	if gapped {
		sf, err := os.Create(filepath.Join(dir, "segments.csv"))
		if err != nil {
			return err
		}
		sw := csv.NewWriter(sf)
		_ = sw.Write([]string{"id", "start_slot", "end_slot"})
		for _, id := range ids {
			rs := runs[id]
			if len(rs) < 2 {
				continue
			}
			for _, s := range rs {
				_ = sw.Write([]string{
					strconv.Itoa(id),
					strconv.FormatInt(int64(s.start), 10),
					strconv.FormatInt(int64(s.end), 10),
				})
			}
		}
		sw.Flush()
		if err := firstErr(sw.Error(), sf.Close()); err != nil {
			return err
		}
	}

	// profiles.csv
	pf, err := os.Create(filepath.Join(dir, "profiles.csv"))
	if err != nil {
		return err
	}
	pw := csv.NewWriter(pf)
	header := []string{"id", "slot"}
	for s := 0; s < samples; s++ {
		header = append(header, fmt.Sprintf("s%d", s))
	}
	_ = pw.Write(header)
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		for _, id := range src.ActiveVMs(sl) {
			row := []string{strconv.Itoa(id), strconv.FormatInt(int64(sl), 10)}
			for _, u := range src.SlotProfile(id, sl, samples) {
				row = append(row, strconv.FormatFloat(u, 'f', 4, 64))
			}
			_ = pw.Write(row)
		}
	}
	pw.Flush()
	if err := firstErr(pw.Error(), pf.Close()); err != nil {
		return err
	}

	// volumes.csv
	of, err := os.Create(filepath.Join(dir, "volumes.csv"))
	if err != nil {
		return err
	}
	ow := csv.NewWriter(of)
	_ = ow.Write([]string{"slot", "from", "to", "bytes"})
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		for _, e := range src.Volumes(sl) {
			_ = ow.Write([]string{
				strconv.FormatInt(int64(sl), 10),
				strconv.Itoa(e.From),
				strconv.Itoa(e.To),
				strconv.FormatFloat(e.Vol.Bytes(), 'f', 0, 64),
			})
		}
	}
	ow.Flush()
	return firstErr(ow.Error(), of.Close())
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// maxReplaySlots and maxReplayVMs bound what a replay directory may
// declare (~3.7 years of hourly slots, ~a million VMs): per-VM and
// per-slot tables are sized from the declared values, so an absurd number
// in one CSV row must be a parse error, not a memory blow-up.
const (
	maxReplaySlots = 1 << 15
	maxReplayVMs   = 1 << 20
)

// LoadReplay reads a replay-format directory. Files are streamed row by
// row — no file is materialized whole — so a fleet-scale trace costs only
// its parsed tables.
func LoadReplay(dir string) (*Replay, error) {
	r := &Replay{}

	// vms.csv
	maxID := -1
	type vmRow struct {
		id              int
		arrival, depart timeutil.Slot
		image           units.DataSize
	}
	var vms []vmRow
	seen := map[int]bool{}
	err := forEachCSVRow(filepath.Join(dir, "vms.csv"), 4, func(row []string) error {
		id, err1 := strconv.Atoi(row[0])
		arr, err2 := strconv.ParseInt(row[1], 10, 64)
		dep, err3 := strconv.ParseInt(row[2], 10, 64)
		gb, err4 := strconv.ParseFloat(row[3], 64)
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return fmt.Errorf("trace: vms.csv: %w", err)
		}
		if id < 0 || arr < 0 || dep < arr {
			return fmt.Errorf("trace: vms.csv: invalid VM row %v", row)
		}
		if id >= maxReplayVMs {
			return fmt.Errorf("trace: vms.csv: id %d beyond the %d-VM replay bound", id, maxReplayVMs)
		}
		if dep > maxReplaySlots {
			return fmt.Errorf("trace: vms.csv: depart slot %d beyond the %d-slot replay bound", dep, maxReplaySlots)
		}
		if seen[id] {
			return fmt.Errorf("trace: vms.csv: duplicate VM id %d", id)
		}
		seen[id] = true
		vms = append(vms, vmRow{id, timeutil.Slot(arr), timeutil.Slot(dep), units.DataSize(gb * 1e9)})
		if id > maxID {
			maxID = id
		}
		if timeutil.Slot(dep) > r.slots {
			r.slots = timeutil.Slot(dep)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.vms = make([]replayVM, maxID+1)
	for _, v := range vms {
		r.vms[v.id] = replayVM{arrival: v.arrival, depart: v.depart, image: v.image}
	}

	// segments.csv (optional) — explicit activity runs for gapped VMs.
	segs := map[int][]slotSpan{}
	err = forEachCSVRow(filepath.Join(dir, "segments.csv"), 3, func(row []string) error {
		id, err1 := strconv.Atoi(row[0])
		start, err2 := strconv.ParseInt(row[1], 10, 64)
		end, err3 := strconv.ParseInt(row[2], 10, 64)
		if err := firstErr(err1, err2, err3); err != nil {
			return fmt.Errorf("trace: segments.csv: %w", err)
		}
		if id < 0 || id > maxID || !seen[id] {
			return fmt.Errorf("trace: segments.csv: segment for undeclared VM id %v", row[0])
		}
		v := r.vms[id]
		if start < 0 || end <= start ||
			timeutil.Slot(start) < v.arrival || timeutil.Slot(end) > v.depart {
			return fmt.Errorf("trace: segments.csv: segment %v outside VM %d's lifetime [%d,%d)",
				row, id, v.arrival, v.depart)
		}
		segs[id] = append(segs[id], slotSpan{timeutil.Slot(start), timeutil.Slot(end)})
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for id, rs := range segs {
		sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
		for i := 1; i < len(rs); i++ {
			if rs[i].start < rs[i-1].end {
				return nil, fmt.Errorf("trace: segments.csv: overlapping segments for VM %d", id)
			}
		}
		r.vms[id].segs = rs
	}

	// profiles.csv
	r.profiles = make([][][]float64, maxID+1)
	err = forEachCSVRow(filepath.Join(dir, "profiles.csv"), 3, func(row []string) error {
		id, err1 := strconv.Atoi(row[0])
		sl, err2 := strconv.ParseInt(row[1], 10, 64)
		if err := firstErr(err1, err2); err != nil {
			return fmt.Errorf("trace: profiles.csv: %w", err)
		}
		if id < 0 || id > maxID || sl < 0 || sl >= maxReplaySlots {
			return fmt.Errorf("trace: profiles.csv: bad row %v", row)
		}
		if r.samples == 0 {
			r.samples = len(row) - 2
		} else if len(row)-2 != r.samples {
			return fmt.Errorf("trace: profiles.csv: ragged row for VM %d slot %d: %d samples, want %d",
				id, sl, len(row)-2, r.samples)
		}
		if timeutil.Slot(sl) >= r.slots {
			r.slots = timeutil.Slot(sl) + 1
		}
		prof := make([]float64, len(row)-2)
		for i, cell := range row[2:] {
			u, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("trace: profiles.csv: %w", err)
			}
			prof[i] = u
		}
		if r.profiles[id] == nil {
			r.profiles[id] = make([][]float64, 0)
		}
		for int64(len(r.profiles[id])) <= sl {
			r.profiles[id] = append(r.profiles[id], nil)
		}
		r.profiles[id][sl] = prof
		return nil
	})
	if err != nil {
		return nil, err
	}

	// volumes.csv (optional). A row outside the declared horizon would be
	// silently unreachable by the simulator, so it is a load error.
	r.volumes = make([][]VolumeEntry, r.slots)
	err = forEachCSVRow(filepath.Join(dir, "volumes.csv"), 4, func(row []string) error {
		sl, err1 := strconv.ParseInt(row[0], 10, 64)
		from, err2 := strconv.Atoi(row[1])
		to, err3 := strconv.Atoi(row[2])
		bytes, err4 := strconv.ParseFloat(row[3], 64)
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return fmt.Errorf("trace: volumes.csv: %w", err)
		}
		if sl < 0 || int(sl) >= len(r.volumes) {
			return fmt.Errorf("trace: volumes.csv: slot %d outside the %d-slot horizon", sl, len(r.volumes))
		}
		r.volumes[sl] = append(r.volumes[sl], VolumeEntry{From: from, To: to, Vol: units.DataSize(bytes)})
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}

	// Active index.
	r.active = make([][]int, r.slots)
	for id, v := range r.vms {
		if v.segs != nil {
			for _, s := range v.segs {
				for sl := s.start; sl < s.end && sl < r.slots; sl++ {
					r.active[sl] = append(r.active[sl], id)
				}
			}
			continue
		}
		for sl := v.arrival; sl < v.depart && sl < r.slots; sl++ {
			r.active[sl] = append(r.active[sl], id)
		}
	}
	return r, nil
}

// forEachCSVRow streams a CSV file row by row, skipping the header and
// enforcing a minimum column count. The row slice is reused between calls;
// fn must not retain it. Unlike a whole-file load, memory stays bounded by
// one record regardless of trace size.
func forEachCSVRow(path string, minCols int, fn func(row []string) error) error {
	first := true
	return forEachCSVRowRaw(path, func(row []string) error {
		if first {
			first = false
			return nil
		}
		if len(row) < minCols {
			return fmt.Errorf("trace: %s: row %v has %d columns, want >= %d",
				filepath.Base(path), row, len(row), minCols)
		}
		return fn(row)
	})
}

// forEachCSVRowRaw streams every row of path, header included. The row
// slice is reused between calls; fn must not retain it.
func forEachCSVRowRaw(path string, fn func(row []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: %s: %w", filepath.Base(path), err)
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}
