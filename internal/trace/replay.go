package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Replay is a workload loaded from CSV files — the hook for driving the
// simulator with real data-center traces instead of the synthetic
// generator, mirroring the paper's use of sampled production VMs.
//
// The on-disk format (written by ExportReplay and cmd/tracegen -replay):
//
//	vms.csv       id,arrival_slot,depart_slot,image_gb
//	profiles.csv  id,slot,s0,s1,...,s{n-1}   (per-slot utilization samples)
//	volumes.csv   slot,from,to,bytes         (directed inter-VM transfers)
//
// Utilization between profile samples is held piecewise constant; slots
// without a profile row read as zero demand.
type Replay struct {
	slots   timeutil.Slot
	samples int
	vms     []replayVM
	active  [][]int
	// profiles[id][slot] -> samples (nil when absent)
	profiles [][][]float64
	// volumes[slot] -> entries
	volumes [][]VolumeEntry
}

type replayVM struct {
	arrival, depart timeutil.Slot
	image           units.DataSize
}

// NumVMs implements Source.
func (r *Replay) NumVMs() int { return len(r.vms) }

// Slots implements Source.
func (r *Replay) Slots() timeutil.Slot { return r.slots }

// Image implements Source.
func (r *Replay) Image(id int) units.DataSize { return r.vms[id].image }

// ActiveVMs implements Source.
func (r *Replay) ActiveVMs(sl timeutil.Slot) []int {
	if sl < 0 || int(sl) >= len(r.active) {
		return nil
	}
	return r.active[sl]
}

// SlotProfile implements Source, resampling the stored profile to n points.
func (r *Replay) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	out := make([]float64, n)
	r.FillSlotProfile(out, id, sl)
	return out
}

// FillSlotProfile is the allocation-free variant of SlotProfile: it
// resamples the stored profile into dst (absent profiles read as zero).
func (r *Replay) FillSlotProfile(dst []float64, id int, sl timeutil.Slot) {
	n := len(dst)
	if id < 0 || id >= len(r.profiles) || sl < 0 || int(sl) >= len(r.profiles[id]) {
		clear(dst)
		return
	}
	prof := r.profiles[id][sl]
	if len(prof) == 0 {
		clear(dst)
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = prof[i*len(prof)/n]
	}
}

// Util implements Source: the stored sample covering the step, held
// constant.
func (r *Replay) Util(id int, st timeutil.Step) float64 {
	sl := st.Slot()
	if id < 0 || id >= len(r.profiles) || sl < 0 || int(sl) >= len(r.profiles[id]) {
		return 0
	}
	prof := r.profiles[id][sl]
	if len(prof) == 0 {
		return 0
	}
	within := int(st - sl.Start())
	idx := within * len(prof) / timeutil.StepsPerSlot
	if idx >= len(prof) {
		idx = len(prof) - 1
	}
	return prof[idx]
}

// Volumes implements Source.
func (r *Replay) Volumes(sl timeutil.Slot) []VolumeEntry {
	if sl < 0 || int(sl) >= len(r.volumes) {
		return nil
	}
	return r.volumes[sl]
}

// PlannedVolumes implements Source: the observed slot's entries restricted
// to VMs alive at the acting slot (a replay has no service topology to
// extrapolate from).
func (r *Replay) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	vols := r.Volumes(obs)
	out := make([]VolumeEntry, 0, len(vols))
	for _, e := range vols {
		if r.aliveAt(e.From, act) && r.aliveAt(e.To, act) {
			out = append(out, e)
		}
	}
	return out
}

func (r *Replay) aliveAt(id int, sl timeutil.Slot) bool {
	if id < 0 || id >= len(r.vms) {
		return false
	}
	v := r.vms[id]
	return sl >= v.arrival && sl < v.depart
}

// ExportReplay writes any Source's first `slots` slots to dir in the replay
// CSV format with `samples` utilization samples per slot.
func ExportReplay(src Source, dir string, slots timeutil.Slot, samples int) error {
	if slots > src.Slots() {
		slots = src.Slots()
	}
	if samples <= 0 {
		samples = 12
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// vms.csv — only VMs that appear within the exported window.
	seen := map[int]bool{}
	first := map[int]timeutil.Slot{}
	last := map[int]timeutil.Slot{}
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		for _, id := range src.ActiveVMs(sl) {
			if !seen[id] {
				seen[id] = true
				first[id] = sl
			}
			last[id] = sl
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	vf, err := os.Create(filepath.Join(dir, "vms.csv"))
	if err != nil {
		return err
	}
	vw := csv.NewWriter(vf)
	_ = vw.Write([]string{"id", "arrival_slot", "depart_slot", "image_gb"})
	for _, id := range ids {
		_ = vw.Write([]string{
			strconv.Itoa(id),
			strconv.FormatInt(int64(first[id]), 10),
			strconv.FormatInt(int64(last[id]+1), 10),
			strconv.FormatFloat(src.Image(id).GB(), 'f', 3, 64),
		})
	}
	vw.Flush()
	if err := firstErr(vw.Error(), vf.Close()); err != nil {
		return err
	}

	// profiles.csv
	pf, err := os.Create(filepath.Join(dir, "profiles.csv"))
	if err != nil {
		return err
	}
	pw := csv.NewWriter(pf)
	header := []string{"id", "slot"}
	for s := 0; s < samples; s++ {
		header = append(header, fmt.Sprintf("s%d", s))
	}
	_ = pw.Write(header)
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		for _, id := range src.ActiveVMs(sl) {
			row := []string{strconv.Itoa(id), strconv.FormatInt(int64(sl), 10)}
			for _, u := range src.SlotProfile(id, sl, samples) {
				row = append(row, strconv.FormatFloat(u, 'f', 4, 64))
			}
			_ = pw.Write(row)
		}
	}
	pw.Flush()
	if err := firstErr(pw.Error(), pf.Close()); err != nil {
		return err
	}

	// volumes.csv
	of, err := os.Create(filepath.Join(dir, "volumes.csv"))
	if err != nil {
		return err
	}
	ow := csv.NewWriter(of)
	_ = ow.Write([]string{"slot", "from", "to", "bytes"})
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		for _, e := range src.Volumes(sl) {
			_ = ow.Write([]string{
				strconv.FormatInt(int64(sl), 10),
				strconv.Itoa(e.From),
				strconv.Itoa(e.To),
				strconv.FormatFloat(e.Vol.Bytes(), 'f', 0, 64),
			})
		}
	}
	ow.Flush()
	return firstErr(ow.Error(), of.Close())
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// maxReplaySlots and maxReplayVMs bound what a replay directory may
// declare (~3.7 years of hourly slots, ~a million VMs): per-VM and
// per-slot tables are sized from the declared values, so an absurd number
// in one CSV row must be a parse error, not a memory blow-up.
const (
	maxReplaySlots = 1 << 15
	maxReplayVMs   = 1 << 20
)

// LoadReplay reads a replay-format directory.
func LoadReplay(dir string) (*Replay, error) {
	r := &Replay{}

	// vms.csv
	rows, err := readCSV(filepath.Join(dir, "vms.csv"), 4)
	if err != nil {
		return nil, err
	}
	maxID := -1
	type vmRow struct {
		id              int
		arrival, depart timeutil.Slot
		image           units.DataSize
	}
	var vms []vmRow
	for _, row := range rows {
		id, err1 := strconv.Atoi(row[0])
		arr, err2 := strconv.ParseInt(row[1], 10, 64)
		dep, err3 := strconv.ParseInt(row[2], 10, 64)
		gb, err4 := strconv.ParseFloat(row[3], 64)
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, fmt.Errorf("trace: vms.csv: %w", err)
		}
		if id < 0 || arr < 0 || dep < arr {
			return nil, fmt.Errorf("trace: vms.csv: invalid VM row %v", row)
		}
		if id >= maxReplayVMs {
			return nil, fmt.Errorf("trace: vms.csv: id %d beyond the %d-VM replay bound", id, maxReplayVMs)
		}
		if dep > maxReplaySlots {
			return nil, fmt.Errorf("trace: vms.csv: depart slot %d beyond the %d-slot replay bound", dep, maxReplaySlots)
		}
		vms = append(vms, vmRow{id, timeutil.Slot(arr), timeutil.Slot(dep), units.DataSize(gb * 1e9)})
		if id > maxID {
			maxID = id
		}
		if timeutil.Slot(dep) > r.slots {
			r.slots = timeutil.Slot(dep)
		}
	}
	r.vms = make([]replayVM, maxID+1)
	for _, v := range vms {
		r.vms[v.id] = replayVM{arrival: v.arrival, depart: v.depart, image: v.image}
	}

	// profiles.csv
	rows, err = readCSV(filepath.Join(dir, "profiles.csv"), 3)
	if err != nil {
		return nil, err
	}
	r.profiles = make([][][]float64, maxID+1)
	for _, row := range rows {
		id, err1 := strconv.Atoi(row[0])
		sl, err2 := strconv.ParseInt(row[1], 10, 64)
		if err := firstErr(err1, err2); err != nil {
			return nil, fmt.Errorf("trace: profiles.csv: %w", err)
		}
		if id < 0 || id > maxID || sl < 0 || sl >= maxReplaySlots {
			return nil, fmt.Errorf("trace: profiles.csv: bad row %v", row)
		}
		if timeutil.Slot(sl) >= r.slots {
			r.slots = timeutil.Slot(sl) + 1
		}
		prof := make([]float64, len(row)-2)
		for i, cell := range row[2:] {
			u, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: profiles.csv: %w", err)
			}
			prof[i] = u
		}
		if r.samples == 0 {
			r.samples = len(prof)
		}
		if r.profiles[id] == nil {
			r.profiles[id] = make([][]float64, 0)
		}
		for int64(len(r.profiles[id])) <= sl {
			r.profiles[id] = append(r.profiles[id], nil)
		}
		r.profiles[id][sl] = prof
	}

	// volumes.csv (optional).
	rows, err = readCSV(filepath.Join(dir, "volumes.csv"), 4)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	r.volumes = make([][]VolumeEntry, r.slots)
	for _, row := range rows {
		sl, err1 := strconv.ParseInt(row[0], 10, 64)
		from, err2 := strconv.Atoi(row[1])
		to, err3 := strconv.Atoi(row[2])
		bytes, err4 := strconv.ParseFloat(row[3], 64)
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, fmt.Errorf("trace: volumes.csv: %w", err)
		}
		if sl < 0 || int(sl) >= len(r.volumes) {
			continue
		}
		r.volumes[sl] = append(r.volumes[sl], VolumeEntry{From: from, To: to, Vol: units.DataSize(bytes)})
	}

	// Active index.
	r.active = make([][]int, r.slots)
	for id, v := range r.vms {
		for sl := v.arrival; sl < v.depart && sl < r.slots; sl++ {
			r.active[sl] = append(r.active[sl], id)
		}
	}
	return r, nil
}

// readCSV loads a CSV file, skipping the header row and enforcing a minimum
// column count.
func readCSV(path string, minCols int) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	var rows [][]string
	first := true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", filepath.Base(path), err)
		}
		if first {
			first = false
			continue
		}
		if len(row) < minCols {
			return nil, fmt.Errorf("trace: %s: row %v has %d columns, want >= %d",
				filepath.Base(path), row, len(row), minCols)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
