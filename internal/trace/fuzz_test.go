package trace

import (
	"os"
	"path/filepath"
	"testing"

	"geovmp/internal/timeutil"
)

// Seed corpus: a consistent three-file replay, and variants with the
// corruption classes the parser must reject cleanly (negative windows,
// out-of-range ids, absurd slots, junk numbers).
const (
	fuzzVMs      = "id,arrival_slot,depart_slot,image_gb\n0,0,3,2.000\n1,1,4,4.000\n"
	fuzzProfiles = "id,slot,s0,s1\n0,0,0.2000,0.4000\n0,1,0.3000,0.5000\n1,1,0.1000,0.2000\n"
	fuzzVolumes  = "slot,from,to,bytes\n0,0,1,1000000\n1,1,0,2000000\n"
)

// FuzzLoadReplay feeds arbitrary CSV triples through the replay parser:
// it must either return an error or a Replay whose accessors are safe over
// the whole declared horizon — never panic, never balloon memory from a
// single absurd row. Successful loads are additionally round-tripped
// through Compile, which consumes every Source method.
func FuzzLoadReplay(f *testing.F) {
	f.Add(fuzzVMs, fuzzProfiles, fuzzVolumes)
	f.Add("id,arrival_slot,depart_slot,image_gb\n0,-2,-1,2.000\n", fuzzProfiles, fuzzVolumes)
	f.Add("id,arrival_slot,depart_slot,image_gb\n0,0,99999999,2.000\n", "id,slot,s0\n0,99999999,0.5\n", "slot,from,to,bytes\n-1,0,0,1\n")
	f.Add("id,arrival_slot,depart_slot,image_gb\n7,0,3,nan\n", "id,slot,s0\n7,0,inf\n", "slot,from,to,bytes\n0,7,9,xyz\n")
	f.Add("id,arrival_slot,depart_slot,image_gb\n999999999999,0,3,1.0\n", fuzzProfiles, fuzzVolumes)
	// The loader's strict-rejection classes: duplicate VM ids, ragged
	// profile rows, and volume rows outside the declared horizon.
	f.Add("id,arrival_slot,depart_slot,image_gb\n0,0,3,2.000\n0,1,4,4.000\n", fuzzProfiles, fuzzVolumes)
	f.Add(fuzzVMs, "id,slot,s0,s1\n0,0,0.2000,0.4000\n1,1,0.1000\n", fuzzVolumes)
	f.Add(fuzzVMs, fuzzProfiles, "slot,from,to,bytes\n4096,0,1,1000000\n")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, vms, profiles, volumes string) {
		if len(vms)+len(profiles)+len(volumes) > 1<<14 {
			t.Skip("oversized input")
		}
		dir := t.TempDir()
		for _, file := range []struct{ name, data string }{
			{"vms.csv", vms}, {"profiles.csv", profiles}, {"volumes.csv", volumes},
		} {
			if err := os.WriteFile(filepath.Join(dir, file.name), []byte(file.data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r, err := LoadReplay(dir)
		if err != nil {
			return // rejected cleanly
		}
		slots := r.Slots()
		if slots > 64 {
			slots = 64
		}
		for sl := timeutil.Slot(0); sl < slots; sl++ {
			for _, id := range r.ActiveVMs(sl) {
				_ = r.Util(id, sl.Start())
				_ = r.SlotProfile(id, sl, 4)
				_ = r.Image(id)
			}
			_ = r.Volumes(sl)
			_ = r.PlannedVolumes(obsSlot(sl), sl)
		}
		// Out-of-range queries stay safe.
		_ = r.ActiveVMs(-1)
		_ = r.Volumes(r.Slots() + 10)
		_ = r.SlotProfile(0, -1, 4)
		if r.Slots() <= 64 && r.NumVMs() <= 256 {
			c := Compile(r, CompileOptions{Samples: 4, FineStepSec: 900})
			for sl := timeutil.Slot(0); sl < c.Slots(); sl++ {
				for _, id := range c.ActiveVMs(sl) {
					row := c.ProfileRow(id, sl)
					if row == nil {
						continue
					}
					want := r.SlotProfile(id, sl, 4)
					for i := range row {
						// NaN from junk CSV numbers is preserved, not equal.
						if row[i] != want[i] && !(row[i] != row[i] && want[i] != want[i]) {
							t.Fatalf("compiled profile diverges at vm %d slot %d: %v vs %v", id, sl, row, want)
						}
					}
				}
			}
		}
	})
}
