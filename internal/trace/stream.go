package trace

import (
	"geovmp/internal/par"
	"geovmp/internal/timeutil"
)

// FineRows is the read side of a compiled fine table: the resident
// *Compiled itself, or a FineCursor positioned on the chunk containing the
// queried slot. The simulator's fine loop is written against this
// interface so the in-core and out-of-core paths share one code path.
type FineRows interface {
	// FineRow returns the VM's utilization at every fine step of slot sl,
	// or nil when the table does not cover (id, sl).
	FineRow(id int, sl timeutil.Slot) []float64
}

var (
	_ FineRows = (*Compiled)(nil)
	_ FineRows = (*FineCursor)(nil)
)

// chunkCursor is the shared geometry of the streaming cursors: one
// slot-range window [lo, hi) of `width` slots, with per-VM row runs packed
// into a single reused buffer. Chunks are aligned at multiples of width
// from slot 0, so the sequence of windows a run visits is a pure function
// of the compile options — independent of when Advance is called.
type chunkCursor struct {
	c       *Compiled
	workers *par.Budget
	width   int
	rowLen  int // floats per row (steps or samples)

	lo, hi timeutil.Slot   // current window [lo, hi); unpositioned when lo >= hi
	start  []timeutil.Slot // per VM: first covered slot in window (-1: none)
	end    []timeutil.Slot // per VM: last covered slot (inclusive)
	off    []int           // per VM: first row index into buf
	buf    []float64
}

func newChunkCursor(c *Compiled, workers *par.Budget, width, rowLen int) chunkCursor {
	cur := chunkCursor{
		c:       c,
		workers: workers,
		width:   width,
		rowLen:  rowLen,
		start:   make([]timeutil.Slot, c.numVMs),
		end:     make([]timeutil.Slot, c.numVMs),
		off:     make([]int, c.numVMs),
	}
	cur.lo, cur.hi = 1, 0 // unpositioned
	return cur
}

// position sets the window to the chunk containing sl and lays out the
// per-VM row runs; it reports whether the window changed. fill is then
// responsible for writing buf.
func (cur *chunkCursor) position(sl timeutil.Slot) bool {
	if sl < 0 || sl >= cur.c.slots {
		return false
	}
	if sl >= cur.lo && sl < cur.hi {
		return false
	}
	k := int(sl) / cur.width
	cur.lo = timeutil.Slot(k * cur.width)
	cur.hi = cur.lo + timeutil.Slot(cur.width)
	if cur.hi > cur.c.slots {
		cur.hi = cur.c.slots
	}
	rows := 0
	for id := 0; id < cur.c.numVMs; id++ {
		a, b := cur.winFor(id)
		if a > b {
			cur.start[id] = -1
			continue
		}
		cur.start[id], cur.end[id] = a, b
		cur.off[id] = rows
		rows += int(b - a + 1)
	}
	need := rows * cur.rowLen
	if cap(cur.buf) < need {
		cur.buf = make([]float64, need)
	}
	cur.buf = cur.buf[:need]
	return true
}

// winFor intersects the VM's covered slot window with the current chunk.
func (cur *chunkCursor) winFor(id int) (a, b timeutil.Slot) {
	if cur.c.first[id] < 0 {
		return 1, 0
	}
	a, b = cur.c.first[id], cur.c.last[id]
	if a < cur.lo {
		a = cur.lo
	}
	if b >= cur.hi {
		b = cur.hi - 1
	}
	return a, b
}

// row returns the buffered row for (id, sl), or nil when uncovered. Pure
// read — safe from concurrent shards between Advance calls.
func (cur *chunkCursor) row(id int, sl timeutil.Slot) []float64 {
	if id < 0 || id >= len(cur.start) || sl < cur.lo || sl >= cur.hi {
		return nil
	}
	a := cur.start[id]
	if a < 0 || sl < a || sl > cur.end[id] {
		return nil
	}
	k := cur.off[id] + int(sl-a)
	return cur.buf[k*cur.rowLen : (k+1)*cur.rowLen]
}

// WindowBytes returns the resident footprint of the current chunk window —
// the quantity the compile budget bounds. Zero before the first Advance.
func (cur *chunkCursor) WindowBytes() int64 { return int64(len(cur.buf)) * 8 }

// FineCursor streams an out-of-core fine table chunk by chunk. One cursor
// serves one simulation run: Advance is called serially (once per slot, by
// the run's slot loop) and FineRow is safe for the run's concurrent
// readers between advances. Rows are filled with the same expression as
// the resident table — src.Util at the retained per-slot step lists — so
// the streamed values are byte-identical to the in-core compile.
type FineCursor struct {
	chunkCursor
}

// NewFineCursor returns a streaming cursor over the chunked fine table, or
// nil when the table is resident or absent (use FineRow directly then).
// workers optionally lends goroutines to each chunk fill; the rows are
// disjoint, so the chunk content is identical at any worker count.
func (c *Compiled) NewFineCursor(workers *par.Budget) *FineCursor {
	if c.fineChunk == 0 {
		return nil
	}
	return &FineCursor{newChunkCursor(c, workers, c.fineChunk, c.steps)}
}

// Advance positions the cursor on the chunk containing sl, compiling it if
// the window moved. Must not run concurrently with FineRow.
func (cur *FineCursor) Advance(sl timeutil.Slot) {
	if !cur.position(sl) {
		return
	}
	c := cur.c
	par.For(cur.workers, c.numVMs, vmRowGrain, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			a := cur.start[id]
			if a < 0 {
				continue
			}
			rows := cur.buf[cur.off[id]*cur.rowLen:]
			for sl := a; sl <= cur.end[id]; sl++ {
				row := rows[int(sl-a)*cur.rowLen:]
				for k, step := range c.stepsBySlot[sl] {
					row[k] = c.src.Util(id, step)
				}
			}
		}
	})
}

// FineRow implements FineRows from the current chunk.
func (cur *FineCursor) FineRow(id int, sl timeutil.Slot) []float64 { return cur.row(id, sl) }

// ProfileCursor streams an out-of-core per-slot profile table chunk by
// chunk, windowed over observation slots. Same contract as FineCursor:
// serial Advance, concurrent ProfileRow reads in between. Rows are
// synthesized through the source's profile sampling — the same values the
// resident table stores — so consumers (correlation.ProfileSet copies
// standard-length rows) see byte-identical data.
type ProfileCursor struct {
	chunkCursor
	filler slotProfileFiller // non-nil when the source fills in place
}

// NewProfileCursor returns a streaming cursor over the chunked profile
// table, or nil when the table is resident or absent.
func (c *Compiled) NewProfileCursor(workers *par.Budget) *ProfileCursor {
	if c.profChunk == 0 {
		return nil
	}
	cur := &ProfileCursor{chunkCursor: newChunkCursor(c, workers, c.profChunk, c.samples)}
	cur.filler, _ = c.src.(slotProfileFiller)
	return cur
}

// winFor of the profile cursor covers observation slots, mirroring the
// resident table's [obsSlot(first), obsSlot(last)] rows.
func (cur *ProfileCursor) winForObs(id int) (a, b timeutil.Slot) {
	if cur.c.first[id] < 0 {
		return 1, 0
	}
	a, b = obsSlot(cur.c.first[id]), obsSlot(cur.c.last[id])
	if a < cur.lo {
		a = cur.lo
	}
	if b >= cur.hi {
		b = cur.hi - 1
	}
	return a, b
}

// Advance positions the cursor on the chunk containing observation slot
// obs, compiling it if the window moved. Must not run concurrently with
// ProfileRow.
func (cur *ProfileCursor) Advance(obs timeutil.Slot) {
	if obs < 0 || obs >= cur.c.slots {
		return
	}
	if obs >= cur.lo && obs < cur.hi {
		return
	}
	k := int(obs) / cur.width
	cur.lo = timeutil.Slot(k * cur.width)
	cur.hi = cur.lo + timeutil.Slot(cur.width)
	if cur.hi > cur.c.slots {
		cur.hi = cur.c.slots
	}
	rows := 0
	for id := 0; id < cur.c.numVMs; id++ {
		a, b := cur.winForObs(id)
		if a > b {
			cur.start[id] = -1
			continue
		}
		cur.start[id], cur.end[id] = a, b
		cur.off[id] = rows
		rows += int(b - a + 1)
	}
	need := rows * cur.rowLen
	if cap(cur.buf) < need {
		cur.buf = make([]float64, need)
	}
	cur.buf = cur.buf[:need]
	c := cur.c
	par.For(cur.workers, c.numVMs, vmRowGrain, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			a := cur.start[id]
			if a < 0 {
				continue
			}
			rows := cur.buf[cur.off[id]*cur.rowLen:]
			for sl := a; sl <= cur.end[id]; sl++ {
				row := rows[int(sl-a)*cur.rowLen : int(sl-a+1)*cur.rowLen]
				if cur.filler != nil {
					cur.filler.FillSlotProfile(row, id, sl)
				} else {
					copy(row, c.src.SlotProfile(id, sl, c.samples))
				}
			}
		}
	})
}

// ProfileRow returns the VM's profile for observation slot sl from the
// current chunk, or nil when uncovered. The row buffer is reused by the
// next Advance; consumers that retain rows must copy them (ProfileSet.Add
// already copies standard-length rows).
func (cur *ProfileCursor) ProfileRow(id int, sl timeutil.Slot) []float64 { return cur.row(id, sl) }
