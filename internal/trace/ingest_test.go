package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geovmp/internal/timeutil"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIngestClusterAzureStyle(t *testing.T) {
	dir := t.TempDir()
	// Two VMs; timestamps in trace-epoch seconds, CPU in percent. VM a
	// spans two slots with a reading gap, VM b has no readings at all.
	vms := writeCSV(t, dir, "vms.csv",
		"vmid,vmcreated,vmdeleted\na,100,7300\nb,3700,10900\n")
	cpu := writeCSV(t, dir, "cpu.csv",
		"timestamp,vmid,avgcpu\n150,a,40\n1900,a,60\n3650,a,55\n")
	r, err := IngestCluster(vms, cpu, IngestOptions{Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVMs() != 2 || r.Slots() != 4 {
		t.Fatalf("shape = %d VMs, %d slots", r.NumVMs(), r.Slots())
	}
	// VM a is active over slots [0,3), b over [1,4).
	if got := r.ActiveVMs(0); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("slot 0 active = %v", got)
	}
	if got := r.ActiveVMs(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("slot 1 active = %v", got)
	}
	if got := r.ActiveVMs(3); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("slot 3 active = %v", got)
	}
	// Slot 0 of VM a: readings 40% in bin 0, 60% in bin 2, the gap bins
	// carry the previous value forward.
	if got, want := r.SlotProfile(0, 0, 4), []float64{0.4, 0.4, 0.6, 0.6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("vm a slot 0 profile = %v, want %v", got, want)
	}
	// Slot 1: one reading (55%) covers the slot, rest carried.
	if got := r.SlotProfile(0, 1, 4); got[0] != 0.55 || got[3] != 0.55 {
		t.Fatalf("vm a slot 1 profile = %v", got)
	}
	// VM b has no readings: zero demand, not an error.
	if got := r.SlotProfile(1, 2, 4); got[0] != 0 {
		t.Fatalf("readingless VM profile = %v", got)
	}
}

func TestIngestClusterGoogleStyle(t *testing.T) {
	dir := t.TempDir()
	// Google-style column names, CPU already a [0,1] rate.
	vms := writeCSV(t, dir, "vms.csv",
		"vm_id,start_time,end_time\nj1,0,3600\n")
	cpu := writeCSV(t, dir, "cpu.csv",
		"time,vm_id,cpu_rate\n0,j1,0.25\n1800,j1,0.75\n")
	r, err := IngestCluster(vms, cpu, IngestOptions{Samples: 2, CPUScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.SlotProfile(0, 0, 2), []float64{0.25, 0.75}; !reflect.DeepEqual(got, want) {
		t.Fatalf("profile = %v, want %v", got, want)
	}
}

func TestIngestClusterBackwardFill(t *testing.T) {
	dir := t.TempDir()
	// First reading lands mid-lifetime: earlier bins take its value
	// backward rather than reading zero.
	vms := writeCSV(t, dir, "vms.csv", "vmid,vmcreated,vmdeleted\na,0,7200\n")
	cpu := writeCSV(t, dir, "cpu.csv", "timestamp,vmid,avgcpu\n5400,a,80\n")
	r, err := IngestCluster(vms, cpu, IngestOptions{Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.SlotProfile(0, 0, 2); got[0] != 0.8 || got[1] != 0.8 {
		t.Fatalf("slot 0 profile = %v, want backward-filled 0.8s", got)
	}
}

func TestIngestClusterErrors(t *testing.T) {
	dir := t.TempDir()
	goodVMs := "vmid,vmcreated,vmdeleted\na,0,7200\n"
	goodCPU := "timestamp,vmid,avgcpu\n100,a,50\n"
	cases := []struct {
		name, vms, cpu, wantInErr string
	}{
		{"duplicate id", "vmid,vmcreated,vmdeleted\na,0,7200\na,100,3600\n", goodCPU, "duplicate"},
		{"deleted before created", "vmid,vmcreated,vmdeleted\na,7200,100\n", goodCPU, "before created"},
		{"missing lifetime columns", "foo,bar\n1,2\n", goodCPU, "lacks"},
		{"unknown reading id", goodVMs, "timestamp,vmid,avgcpu\n100,zzz,50\n", "unknown"},
		{"reading outside lifetime", goodVMs, "timestamp,vmid,avgcpu\n99999,a,50\n", "outside"},
		{"missing cpu columns", goodVMs, "a,b\n1,2\n", "lacks"},
		{"junk cpu number", goodVMs, "timestamp,vmid,avgcpu\n100,a,fifty\n", "invalid syntax"},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vmPath := writeCSV(t, dir, filepath.Join(strings.ReplaceAll(tc.name, " ", "-")+"-vms.csv"), tc.vms)
			cpuPath := writeCSV(t, dir, strings.ReplaceAll(tc.name, " ", "-")+"-cpu.csv", tc.cpu)
			_, err := IngestCluster(vmPath, cpuPath, IngestOptions{})
			if err == nil {
				t.Fatalf("case %d (%s) accepted", i, tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantInErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantInErr)
			}
		})
	}
}

func TestIngestClusterBoundsEnforced(t *testing.T) {
	dir := t.TempDir()
	vms := writeCSV(t, dir, "vms.csv", "vmid,vmcreated,vmdeleted\na,0,7200\nb,0,7200\n")
	cpu := writeCSV(t, dir, "cpu.csv", "timestamp,vmid,avgcpu\n")
	if _, err := IngestCluster(vms, cpu, IngestOptions{MaxVMs: 1}); err == nil {
		t.Fatal("fleet over MaxVMs accepted")
	}
	long := writeCSV(t, dir, "long.csv", "vmid,vmcreated,vmdeleted\na,0,720000\n")
	if _, err := IngestCluster(long, cpu, IngestOptions{MaxSlots: 10}); err == nil {
		t.Fatal("horizon over MaxSlots accepted")
	}
}

func TestFitTemplatesDeterministicAndNormalized(t *testing.T) {
	w := New(Config{Seed: 6, Horizon: timeutil.Hours(24), InitialVMs: 40})
	a := FitTemplates(w, 3, 12)
	b := FitTemplates(New(Config{Seed: 6, Horizon: timeutil.Hours(24), InitialVMs: 40}), 3, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("template fit is not deterministic")
	}
	if len(a) == 0 || len(a) > 3 {
		t.Fatalf("fitted %d templates", len(a))
	}
	var wsum float64
	for i, tmpl := range a {
		wsum += tmpl.Weight
		if tmpl.Mean < 0 || tmpl.Mean > 1 || tmpl.Amp < 0 {
			t.Fatalf("template %d out of range: %+v", i, tmpl)
		}
		if tmpl.PeakHour < 0 || tmpl.PeakHour >= 24 {
			t.Fatalf("template %d peak hour %v", i, tmpl.PeakHour)
		}
		if i > 0 && a[i-1].Weight < tmpl.Weight {
			t.Fatal("templates not ordered by descending weight")
		}
		if tmpl.Name == "" {
			t.Fatal("template missing a name")
		}
	}
	if wsum < 0.999 || wsum > 1.001 {
		t.Fatalf("weights sum to %v", wsum)
	}
	// k larger than the fleet clamps instead of fabricating clusters.
	small := New(Config{Seed: 1, Horizon: timeutil.Hours(4), InitialVMs: 2})
	if ts := FitTemplates(small, 50, 12); len(ts) > small.NumVMs() {
		t.Fatalf("fitted %d templates from %d VMs", len(ts), small.NumVMs())
	}
}

func TestTemplateDrivenGenerationDeterministic(t *testing.T) {
	ts := []UsageTemplate{
		{Name: "web", Class: ClassWebSearch, Weight: 0.7, Mean: 0.4, Amp: 0.2,
			PeakHour: 14, FastAmp: 0.08, SlowAmp: 0.05, DayVar: 0.05, MeanLifeSlots: 20},
		{Name: "hpc", Class: ClassHPC, Weight: 0.3, Mean: 0.7, Amp: 0.02,
			PeakHour: 2, FastAmp: 0.01, SlowAmp: 0.02, MeanLifeSlots: 40},
	}
	cfg := Calibrate(Config{Seed: 8, Horizon: timeutil.Hours(12), InitialVMs: 30}, ts)
	if cfg.MeanLifeSlots != 0.7*20+0.3*40 {
		t.Fatalf("calibrated MeanLifeSlots = %v", cfg.MeanLifeSlots)
	}
	a, b := New(cfg), New(cfg)
	if a.NumVMs() == 0 {
		t.Fatal("template-driven generator made no VMs")
	}
	for id := 0; id < a.NumVMs(); id++ {
		for _, st := range []timeutil.Step{0, 500, 5000} {
			if a.Util(id, st) != b.Util(id, st) {
				t.Fatalf("template-driven generation not deterministic at vm %d step %d", id, st)
			}
			if u := a.Util(id, st); u < 0 || u > 1.2 {
				t.Fatalf("vm %d util %v out of range", id, u)
			}
		}
		// Every VM's class must come from the template set.
		c := a.VM(id).Class
		if c != ClassWebSearch && c != ClassHPC {
			t.Fatalf("vm %d drew class %v outside the template set", id, c)
		}
	}

	// An empty template list keeps the built-in classes byte-identical.
	plain := Config{Seed: 8, Horizon: timeutil.Hours(12), InitialVMs: 30}
	p, q := New(plain), New(plain)
	for id := 0; id < min(p.NumVMs(), q.NumVMs()); id++ {
		if p.Util(id, 100) != q.Util(id, 100) {
			t.Fatal("baseline generation not deterministic")
		}
	}
}
