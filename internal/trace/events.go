package trace

import (
	"geovmp/internal/timeutil"
)

// Diffs converts a workload's per-slot active sets into the arrival and
// departure stream a serving controller consumes: arrivals[s] lists the ids
// active at slot s but not at s-1 (all of slot 0's actives arrive at 0),
// departures[s] the ids active at s-1 but gone at s. Both are ascending —
// ActiveVMs is ascending and an ordered merge preserves that — so the
// derived event order is deterministic. slots clamps the horizon; values
// past src.Slots() are truncated.
func Diffs(src Source, slots timeutil.Slot) (arrivals, departures [][]int) {
	if slots > src.Slots() {
		slots = src.Slots()
	}
	arrivals = make([][]int, slots)
	departures = make([][]int, slots)
	var prev []int
	for s := timeutil.Slot(0); s < slots; s++ {
		cur := src.ActiveVMs(s)
		var arr, dep []int
		i, j := 0, 0
		for i < len(prev) || j < len(cur) {
			switch {
			case i >= len(prev):
				arr = append(arr, cur[j])
				j++
			case j >= len(cur):
				dep = append(dep, prev[i])
				i++
			case prev[i] == cur[j]:
				i++
				j++
			case prev[i] < cur[j]:
				dep = append(dep, prev[i])
				i++
			default:
				arr = append(arr, cur[j])
				j++
			}
		}
		arrivals[s] = arr
		departures[s] = dep
		prev = cur
	}
	return arrivals, departures
}
