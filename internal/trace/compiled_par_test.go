package trace

import (
	"reflect"
	"testing"

	"geovmp/internal/par"
	"geovmp/internal/timeutil"
)

// TestCompileParallelMatchesSerial proves a sharded compilation produces
// exactly the serial tables: fine rows, profiles, volume lists, active
// windows and images, compared structurally.
func TestCompileParallelMatchesSerial(t *testing.T) {
	w := New(Config{Seed: 21, Horizon: timeutil.Hours(30), InitialVMs: 120})
	opts := CompileOptions{Samples: 12, FineStepSec: 300}
	serial := Compile(w, opts)
	opts.Workers = par.NewBudget(8)
	parallel := Compile(w, opts)

	if !reflect.DeepEqual(serial.images, parallel.images) {
		t.Fatal("images differ")
	}
	if !reflect.DeepEqual(serial.profStart, parallel.profStart) {
		t.Fatal("profile windows differ")
	}
	if !reflect.DeepEqual(serial.prof, parallel.prof) {
		t.Fatal("profile tables differ")
	}
	if !reflect.DeepEqual(serial.fineStart, parallel.fineStart) {
		t.Fatal("fine windows differ")
	}
	if !reflect.DeepEqual(serial.fine, parallel.fine) {
		t.Fatal("fine tables differ")
	}
	if !reflect.DeepEqual(serial.vols, parallel.vols) {
		t.Fatal("volume lists differ")
	}
	if !reflect.DeepEqual(serial.planned, parallel.planned) {
		t.Fatal("planned volume lists differ")
	}
	if serial.steps != parallel.steps || serial.samples != parallel.samples {
		t.Fatal("table shapes differ")
	}
}
