package trace

import (
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// diffSource is a minimal Source whose active sets are scripted.
type diffSource struct {
	actives [][]int
}

func (s *diffSource) NumVMs() int                           { return 100 }
func (s *diffSource) ActiveVMs(sl timeutil.Slot) []int      { return s.actives[sl] }
func (s *diffSource) Util(id int, st timeutil.Step) float64 { return 0 }
func (s *diffSource) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	return make([]float64, n)
}
func (s *diffSource) Volumes(sl timeutil.Slot) []VolumeEntry { return nil }
func (s *diffSource) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	return nil
}
func (s *diffSource) Image(id int) units.DataSize { return 0 }
func (s *diffSource) Slots() timeutil.Slot        { return timeutil.Slot(len(s.actives)) }

func TestDiffs(t *testing.T) {
	src := &diffSource{actives: [][]int{
		{1, 2, 3},
		{1, 3, 4, 7},
		{4, 7},
		{4, 7, 9},
	}}
	arr, dep := Diffs(src, 4)
	wantArr := [][]int{{1, 2, 3}, {4, 7}, nil, {9}}
	wantDep := [][]int{nil, {2}, {1, 3}, nil}
	for sl := 0; sl < 4; sl++ {
		if !equalInts(arr[sl], wantArr[sl]) {
			t.Fatalf("slot %d arrivals = %v, want %v", sl, arr[sl], wantArr[sl])
		}
		if !equalInts(dep[sl], wantDep[sl]) {
			t.Fatalf("slot %d departures = %v, want %v", sl, dep[sl], wantDep[sl])
		}
	}
}

func TestDiffsClampsHorizon(t *testing.T) {
	src := &diffSource{actives: [][]int{{1}, {1, 2}}}
	arr, dep := Diffs(src, 10)
	if len(arr) != 2 || len(dep) != 2 {
		t.Fatalf("horizon not clamped: %d/%d", len(arr), len(dep))
	}
	if !equalInts(arr[1], []int{2}) || dep[1] != nil {
		t.Fatalf("slot 1: arr=%v dep=%v", arr[1], dep[1])
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
