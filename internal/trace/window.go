package trace

import (
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Window returns a read-only view of src restricted to the slot window
// [start, start+slots), re-based so the window's first slot is slot 0 — the
// per-epoch view of a workload. A view over a compiled trace keeps serving
// from the compiled tables (every query delegates with a slot offset), so
// slicing an epoch out of a compiled dynamic workload costs nothing.
//
// Typical uses: exporting one epoch of a dynamic workload with ExportReplay
// for replay-driven experiments, or simulating a single epoch in isolation.
// The window is clamped to src's coverage; VM ids are unchanged.
func Window(src Source, start timeutil.Slot, slots timeutil.Slot) Source {
	if start < 0 {
		start = 0
	}
	if max := src.Slots() - start; slots > max {
		slots = max
	}
	if slots < 0 {
		slots = 0
	}
	return &windowSource{src: src, start: start, slots: slots}
}

type windowSource struct {
	src   Source
	start timeutil.Slot
	slots timeutil.Slot
}

var _ Source = (*windowSource)(nil)

func (v *windowSource) covers(sl timeutil.Slot) bool { return sl >= 0 && sl < v.slots }

// NumVMs implements Source. Ids are global: VMs never active inside the
// window simply appear in no per-slot list.
func (v *windowSource) NumVMs() int { return v.src.NumVMs() }

// Slots implements Source.
func (v *windowSource) Slots() timeutil.Slot { return v.slots }

// Image implements Source.
func (v *windowSource) Image(id int) units.DataSize { return v.src.Image(id) }

// ActiveVMs implements Source.
func (v *windowSource) ActiveVMs(sl timeutil.Slot) []int {
	if !v.covers(sl) {
		return nil
	}
	return v.src.ActiveVMs(sl + v.start)
}

// Util implements Source, offsetting the step by the window start. Steps
// outside the window read 0, consistent with the slot-level accessors.
func (v *windowSource) Util(id int, st timeutil.Step) float64 {
	if st < 0 || !v.covers(st.Slot()) {
		return 0
	}
	return v.src.Util(id, st+v.start.Start())
}

// SlotProfile implements Source.
func (v *windowSource) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	if !v.covers(sl) {
		return make([]float64, n)
	}
	return v.src.SlotProfile(id, sl+v.start, n)
}

// Volumes implements Source.
func (v *windowSource) Volumes(sl timeutil.Slot) []VolumeEntry {
	if !v.covers(sl) {
		return nil
	}
	return v.src.Volumes(sl + v.start)
}

// PlannedVolumes implements Source. The observation slot is clamped to the
// window, so slot 0 of the view bootstraps from itself exactly like a
// from-scratch workload would.
func (v *windowSource) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	if !v.covers(act) {
		return nil
	}
	if obs < 0 {
		obs = 0
	}
	if obs >= v.slots {
		obs = v.slots - 1
	}
	return v.src.PlannedVolumes(obs+v.start, act+v.start)
}
