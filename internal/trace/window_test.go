package trace

import (
	"reflect"
	"testing"

	"geovmp/internal/timeutil"
)

// TestWindowMatchesSource pins the per-epoch view's contract: every query
// at view slot sl equals the source's at sl+start, ids unchanged, and
// out-of-window queries read empty.
func TestWindowMatchesSource(t *testing.T) {
	w := New(Config{Seed: 3, Horizon: timeutil.Hours(12), InitialVMs: 40})
	const start, slots = 4, 6
	v := Window(w, start, slots)

	if v.NumVMs() != w.NumVMs() {
		t.Fatalf("NumVMs %d, want %d", v.NumVMs(), w.NumVMs())
	}
	if v.Slots() != slots {
		t.Fatalf("Slots %d, want %d", v.Slots(), slots)
	}
	for sl := timeutil.Slot(0); sl < slots; sl++ {
		src := timeutil.Slot(start) + sl
		if !reflect.DeepEqual(v.ActiveVMs(sl), w.ActiveVMs(src)) {
			t.Fatalf("ActiveVMs(%d) differs from source slot %d", sl, src)
		}
		if !reflect.DeepEqual(v.Volumes(sl), w.Volumes(src)) {
			t.Fatalf("Volumes(%d) differs from source slot %d", sl, src)
		}
		for _, id := range v.ActiveVMs(sl) {
			if got, want := v.Util(id, sl.Start()), w.Util(id, src.Start()); got != want {
				t.Fatalf("Util(vm %d, view slot %d) = %v, want %v", id, sl, got, want)
			}
			if !reflect.DeepEqual(v.SlotProfile(id, sl, 6), w.SlotProfile(id, src, 6)) {
				t.Fatalf("SlotProfile(vm %d, view slot %d) differs", id, sl)
			}
			if v.Image(id) != w.Image(id) {
				t.Fatalf("Image(%d) differs", id)
			}
		}
	}
	// The view's slot 0 bootstraps its observations from itself, like a
	// fresh workload: obs clamps into the window.
	if !reflect.DeepEqual(v.PlannedVolumes(0, 0), w.PlannedVolumes(start, start)) {
		t.Fatal("PlannedVolumes(0,0) should observe the window's first slot")
	}
	if !reflect.DeepEqual(v.PlannedVolumes(2, 3), w.PlannedVolumes(start+2, start+3)) {
		t.Fatal("PlannedVolumes(2,3) differs from the offset source query")
	}
	// Out-of-window queries are empty, not out-of-range.
	if v.ActiveVMs(-1) != nil || v.ActiveVMs(slots) != nil {
		t.Fatal("out-of-window ActiveVMs not empty")
	}
	if v.Volumes(slots+3) != nil {
		t.Fatal("out-of-window Volumes not empty")
	}
	postWindow := timeutil.Slot(slots).Start()
	if got := v.Util(0, postWindow); got != 0 {
		t.Fatalf("Util past the window = %v, want 0", got)
	}
	if got := v.Util(0, -1); got != 0 {
		t.Fatalf("Util at a negative step = %v, want 0", got)
	}
}

// TestWindowOverCompiled asserts a view over a compiled trace serves the
// compiled values — the zero-copy per-epoch slice of a materialized
// workload.
func TestWindowOverCompiled(t *testing.T) {
	w := New(Config{Seed: 9, Horizon: timeutil.Hours(10), InitialVMs: 30})
	c := Compile(w, CompileOptions{Samples: 4, FineStepSec: 900})
	v := Window(c, 3, 5)
	for sl := timeutil.Slot(0); sl < v.Slots(); sl++ {
		for _, id := range v.ActiveVMs(sl) {
			if got, want := v.SlotProfile(id, sl, 4), c.SlotProfile(id, sl+3, 4); !reflect.DeepEqual(got, want) {
				t.Fatalf("windowed compiled profile differs at vm %d slot %d", id, sl)
			}
		}
	}
}

// TestWindowClamps pins the constructor's clamping: windows beyond the
// source's coverage shrink instead of reading out of range.
func TestWindowClamps(t *testing.T) {
	w := New(Config{Seed: 1, Horizon: timeutil.Hours(6), InitialVMs: 15})
	if got := Window(w, 4, 10).Slots(); got != 2 {
		t.Fatalf("over-long window Slots = %d, want 2", got)
	}
	if got := Window(w, -2, 3).Slots(); got != 3 {
		t.Fatalf("negative-start window Slots = %d, want 3", got)
	}
	if got := Window(w, 10, 5).Slots(); got != 0 {
		t.Fatalf("past-the-end window Slots = %d, want 0", got)
	}
}
