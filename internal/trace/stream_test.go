package trace

import (
	"reflect"
	"testing"

	"geovmp/internal/timeutil"
)

// chunkedPair compiles the same workload twice: unbounded (resident
// tables) and with a 1-byte budget pinned to `width`-slot chunks (both
// tables streamed).
func chunkedPair(t *testing.T, width int) (*Workload, *Compiled, *Compiled) {
	t.Helper()
	w := New(Config{Seed: 21, Horizon: timeutil.Hours(9), InitialVMs: 30, MeanLifeSlots: 3})
	res := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300})
	chk := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: 1, ChunkSlots: width})
	if !chk.FineChunked() || !chk.ProfileChunked() {
		t.Fatalf("1-byte budget should chunk both tables (fine=%v prof=%v)",
			chk.FineChunked(), chk.ProfileChunked())
	}
	if res.FineChunked() || res.ProfileChunked() {
		t.Fatal("unbounded compile should stay resident")
	}
	return w, res, chk
}

// TestFineCursorMatchesResident asserts the streamed fine rows are
// byte-identical to the resident table at every (vm, slot), for chunk
// widths that divide, straddle and exceed the horizon.
func TestFineCursorMatchesResident(t *testing.T) {
	for _, width := range []int{1, 2, 4, 64} {
		w, res, chk := chunkedPair(t, width)
		if got := chk.FineChunkSlots(); got != min(width, int(w.Slots())) {
			t.Fatalf("width %d: FineChunkSlots = %d", width, got)
		}
		cur := chk.NewFineCursor(nil)
		if cur == nil {
			t.Fatal("chunked table must hand out a cursor")
		}
		if res.NewFineCursor(nil) != nil {
			t.Fatal("resident table must not hand out a cursor")
		}
		for sl := timeutil.Slot(0); sl < w.Slots(); sl++ {
			cur.Advance(sl)
			for _, id := range w.ActiveVMs(sl) {
				got := cur.FineRow(id, sl)
				want := res.FineRow(id, sl)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("width %d: fine row (%d,%d) = %v, want %v", width, id, sl, got, want)
				}
			}
		}
		// The chunked compile keeps no resident fine rows.
		if chk.FineRow(w.ActiveVMs(0)[0], 0) != nil {
			t.Fatal("chunked FineRow should be nil on the Compiled itself")
		}
	}
}

// TestProfileCursorMatchesResident asserts the streamed observation-slot
// profiles are byte-identical to the resident table over the simulator's
// access pattern (obs = max(sl-1, 0) for ids active at sl).
func TestProfileCursorMatchesResident(t *testing.T) {
	for _, width := range []int{1, 3, 64} {
		w, res, chk := chunkedPair(t, width)
		cur := chk.NewProfileCursor(nil)
		if cur == nil {
			t.Fatal("chunked table must hand out a cursor")
		}
		if res.NewProfileCursor(nil) != nil {
			t.Fatal("resident table must not hand out a cursor")
		}
		for sl := timeutil.Slot(0); sl < w.Slots(); sl++ {
			obs := obsSlot(sl)
			cur.Advance(obs)
			for _, id := range w.ActiveVMs(sl) {
				got := cur.ProfileRow(id, obs)
				want := res.ProfileRow(id, obs)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("width %d: profile row (%d,%d) = %v, want %v", width, id, obs, got, want)
				}
			}
		}
	}
}

// TestChunkWidthFromBudget asserts the derived chunk width scales with the
// budget: a budget covering k slot-peaks yields a k-slot window, floored
// at one slot.
func TestChunkWidthFromBudget(t *testing.T) {
	w := New(Config{Seed: 3, Horizon: timeutil.Hours(8), InitialVMs: 25})
	base := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300})
	fineBytes, _ := base.TableBytes()
	if fineBytes <= 0 {
		t.Fatal("expected a non-empty fine table")
	}
	// Half the full table forces chunking with a window of >= 1 slot.
	c := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: fineBytes / 2})
	if !c.FineChunked() {
		t.Fatal("half budget should chunk the fine table")
	}
	if got := c.FineChunkSlots(); got < 1 || got >= int(w.Slots()) {
		t.Fatalf("chunk width %d out of (0, slots)", got)
	}
	// A 1-byte budget bottoms out at one slot, never zero.
	c1 := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: 1})
	if got := c1.FineChunkSlots(); got != 1 {
		t.Fatalf("1-byte budget chunk width = %d, want 1", got)
	}
}

// TestCompileFastPathRespectsBudget covers the already-compiled fast path:
// recompiling with a different fine-table configuration must produce a new
// Compiled, not return the old one (the pre-fix behavior ignored the
// budget and handed back whatever was compiled first).
func TestCompileFastPathRespectsBudget(t *testing.T) {
	w := New(Config{Seed: 5, Horizon: timeutil.Hours(6), InitialVMs: 20})
	resident := Compile(w, CompileOptions{Samples: 12, FineStepSec: 300})

	// Same options: reuse.
	if again := Compile(resident, CompileOptions{Samples: 12, FineStepSec: 300}); again != resident {
		t.Fatal("identical options must reuse the compiled trace")
	}

	// Tiny budget: the resident compile is incompatible.
	chunked := Compile(resident, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: 1})
	if chunked == resident {
		t.Fatal("budgeted recompile returned the unbounded table")
	}
	if !chunked.FineChunked() {
		t.Fatal("budgeted recompile should be chunked")
	}

	// Same budget again: the chunked compile is compatible with itself.
	if again := Compile(chunked, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: 1}); again != chunked {
		t.Fatal("identical budgeted options must reuse the compiled trace")
	}

	// Disabled fine table is a third mode, distinct from both.
	disabled := Compile(chunked, CompileOptions{Samples: 12, FineStepSec: 300, MaxFineTableBytes: -1})
	if disabled == chunked || disabled == resident {
		t.Fatal("disabling the fine table must recompile")
	}
	if _, steps := disabled.FineParams(); steps != 0 {
		t.Fatal("negative budget should disable the fine table")
	}
}
