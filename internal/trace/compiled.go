package trace

import (
	"geovmp/internal/par"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// CompileOptions parameterizes Compile. Zero values select the simulator's
// defaults, so a zero options value produces a trace the default scenario
// consumes entirely from the compiled tables.
type CompileOptions struct {
	// Samples is the per-slot downsampled profile length (default 12, the
	// simulator's ProfileSamples default; negative compiles no profiles).
	Samples int
	// FineStepSec is the green-controller period the per-slot utilization
	// rows are sampled at (default 5 s, the paper's). The rows reproduce the
	// simulator's fine loop exactly: row k holds Util at the step of the
	// k-th iteration of `for t := 0.0; t < 3600; t += FineStepSec`.
	FineStepSec float64
	// MaxFineTableBytes bounds each resident utilization table — fine
	// steps and per-slot profiles alike (default 256 MiB; negative
	// disables the fine table entirely and keeps the legacy
	// always-resident profiles). A table that would exceed the budget is
	// not skipped: it is compiled out-of-core, streamed in fixed
	// slot-range chunks through a FineCursor/ProfileCursor so peak memory
	// is bounded by one chunk window while the values stay byte-identical
	// to the in-core path. Volumes always materialize.
	MaxFineTableBytes int64
	// ChunkSlots overrides the streamed chunk width in slots for tables
	// that exceed MaxFineTableBytes. Zero derives the widest window whose
	// peak resident bytes fit the budget (at least one slot).
	ChunkSlots int
	// Workers optionally lends extra goroutines to the compilation: the
	// per-VM fine and profile tables and the per-slot volume lists are
	// sharded (each shard writes disjoint rows) and the active-window scan
	// reduces per-slot shards in fixed order, so the compiled tables are
	// byte-identical at any worker count. Requires src to be safe for
	// concurrent readers — the contract workloads already carry for
	// parallel sweeps. Nil compiles serially.
	Workers *par.Budget
}

const defaultMaxFineTableBytes = 256 << 20

func (o *CompileOptions) applyDefaults() {
	if o.Samples == 0 {
		o.Samples = 12
	}
	if o.FineStepSec <= 0 {
		o.FineStepSec = timeutil.StepSeconds
	}
	if o.MaxFineTableBytes == 0 {
		o.MaxFineTableBytes = defaultMaxFineTableBytes
	}
}

// Compiled is a workload materialized into dense, immutable flat arrays:
// per-slot per-VM downsampled profiles, per-slot fine-step utilization rows,
// and per-slot realized and planned volume entry lists. It implements
// Source, returns byte-identical values to the source it was compiled from,
// and is safe for any number of concurrent readers — the experiment engine
// compiles a workload once per scenario x seed and shares it across every
// policy run of that cell column, so policies pay the synthesis cost once
// instead of once per run.
//
// Memory is proportional to active VM-slots: profiles cost
// Samples x 8 bytes per VM-slot and the fine table FineSteps x 8 bytes per
// VM-slot (bounded by CompileOptions.MaxFineTableBytes).
type Compiled struct {
	src     Source
	slots   timeutil.Slot
	numVMs  int
	samples int
	dt      float64
	steps   int // fine steps per slot; 0 when the fine table is absent

	images []units.DataSize

	profStart []timeutil.Slot
	prof      [][]float64 // per VM, rows flattened at samples per slot

	fineStart []timeutil.Slot
	fine      [][]float64 // per VM, rows flattened at steps per slot

	vols    [][]VolumeEntry // realized, per slot
	planned [][]VolumeEntry // PlannedVolumes(obsSlot(sl), sl), per slot

	// Out-of-core state. fineChunk/profChunk are the streamed chunk
	// widths in slots for tables that exceeded the budget (0 when the
	// table is resident or absent); cursors compile windows on demand
	// from the retained active windows and step lists.
	fineChunk   int
	profChunk   int
	first, last []timeutil.Slot   // per-VM active windows (chunked modes)
	stepsBySlot [][]timeutil.Step // fine-loop step lists (chunked fine)

	// Footprints recorded for the already-compiled fast path: what the
	// full tables would cost resident, and the peak one-slot cost that
	// sizes chunk windows.
	fineBytes, fineSlotPeak int64
	profBytes, profSlotPeak int64
}

var _ Source = (*Compiled)(nil)

// slotProfileFiller is implemented by sources that can write a profile into
// a caller-owned buffer; Compile uses it to avoid one allocation per
// VM-slot.
type slotProfileFiller interface {
	FillSlotProfile(dst []float64, id int, sl timeutil.Slot)
}

// obsSlot returns the slot whose observations drive the controllers acting
// at sl: the previous one, with slot 0 bootstrapping from itself.
func obsSlot(sl timeutil.Slot) timeutil.Slot {
	if sl > 0 {
		return sl - 1
	}
	return 0
}

// fineStepsPerSlot counts the iterations of the simulator's fine loop for a
// step of dt seconds.
func fineStepsPerSlot(dt float64) int {
	k := 0
	for t := 0.0; t < timeutil.SlotSeconds; t += dt {
		k++
	}
	return k
}

// profileToFine maps, per slot, each profile sample index to the fine-row
// index that reads the same Util step (the profile grid is start+i*stride,
// mirroring Workload.FillSlotProfile), or nil for slots where any sample
// lies outside the fine grid.
func profileToFine(stepsBySlot [][]timeutil.Step, samples int) [][]int {
	stride := timeutil.StepsPerSlot / samples
	if stride < 1 {
		stride = 1
	}
	out := make([][]int, len(stepsBySlot))
	for sl, fs := range stepsBySlot {
		m := make([]int, samples)
		ok := true
		start := timeutil.Slot(sl).Start()
		for i := 0; i < samples; i++ {
			want := start + timeutil.Step(i*stride)
			k := -1
			for j, st := range fs {
				if st == want {
					k = j
					break
				}
			}
			if k < 0 {
				ok = false
				break
			}
			m[i] = k
		}
		if ok {
			out[sl] = m
		}
	}
	return out
}

// Compile materializes src into flat per-slot tables. Compiling an already
// compiled trace with compatible options — including the fine-table
// configuration, so a budget-capped table is never handed to a caller that
// asked for a larger or unbounded one — returns it unchanged.
func Compile(src Source, opt CompileOptions) *Compiled {
	opt.applyDefaults()
	if c, ok := src.(*Compiled); ok {
		if c.samples == opt.Samples && c.dt == opt.FineStepSec && c.tablesCompatible(opt) {
			return c
		}
		src = c.src // recompile from the original source
	}
	c := &Compiled{
		src:     src,
		slots:   src.Slots(),
		numVMs:  src.NumVMs(),
		samples: opt.Samples,
		dt:      opt.FineStepSec,
	}
	slots := int(c.slots)

	c.images = make([]units.DataSize, c.numVMs)
	for id := range c.images {
		c.images[id] = src.Image(id)
	}

	// Active windows from the per-slot active lists. Slot ranges are
	// scanned on concurrent shards and merged in ascending shard order; the
	// merge is a min/max fold, associative over the slot split, so the
	// windows equal the serial scan's exactly.
	first := make([]timeutil.Slot, c.numVMs)
	last := make([]timeutil.Slot, c.numVMs)
	for id := range first {
		first[id] = -1
	}
	type window struct{ first, last []timeutil.Slot }
	par.Ordered(opt.Workers, slots, windowSlotGrain, func(lo, hi int) window {
		w := window{
			first: make([]timeutil.Slot, c.numVMs),
			last:  make([]timeutil.Slot, c.numVMs),
		}
		for id := range w.first {
			w.first[id] = -1
		}
		for sl := timeutil.Slot(lo); sl < timeutil.Slot(hi); sl++ {
			for _, id := range src.ActiveVMs(sl) {
				if id < 0 || id >= c.numVMs {
					continue
				}
				if w.first[id] < 0 {
					w.first[id] = sl
				}
				w.last[id] = sl
			}
		}
		return w
	}, func(w window) {
		for id := range first {
			if w.first[id] < 0 {
				continue
			}
			if first[id] < 0 {
				first[id] = w.first[id]
			}
			last[id] = w.last[id]
		}
	})

	// Fine-step utilization rows over each VM's active window, within the
	// memory budget. The per-slot step lists are hoisted out of the per-VM
	// loop; they replicate the simulator's fine loop bit-for-bit,
	// including its floating-point time accumulation. Past the budget the
	// table goes out-of-core: the active windows and step lists are
	// retained and a FineCursor compiles slot-range chunks on demand.
	steps := fineStepsPerSlot(c.dt)
	var winPeak int64 // most VM windows overlapping any one slot
	{
		diff := make([]int64, slots+1)
		for id := 0; id < c.numVMs; id++ {
			if first[id] >= 0 {
				diff[first[id]]++
				diff[last[id]+1]--
			}
		}
		var run int64
		for _, d := range diff {
			run += d
			if run > winPeak {
				winPeak = run
			}
		}
	}
	for id := 0; id < c.numVMs; id++ {
		if first[id] >= 0 {
			c.fineBytes += int64(last[id]-first[id]+1) * int64(steps) * 8
		}
	}
	c.fineSlotPeak = winPeak * int64(steps) * 8
	if opt.MaxFineTableBytes > 0 {
		stepsBySlot := make([][]timeutil.Step, slots)
		for sl := timeutil.Slot(0); sl < c.slots; sl++ {
			row := make([]timeutil.Step, 0, steps)
			start := sl.Seconds()
			for t := 0.0; t < timeutil.SlotSeconds; t += c.dt {
				row = append(row, timeutil.Step(int64(start+t)/timeutil.StepSeconds))
			}
			stepsBySlot[sl] = row
		}
		c.steps = steps
		c.stepsBySlot = stepsBySlot
		if c.fineBytes <= opt.MaxFineTableBytes {
			c.fineStart = make([]timeutil.Slot, c.numVMs)
			c.fine = make([][]float64, c.numVMs)
			// Each VM owns its rows — disjoint writes, so the sharded fill
			// is byte-identical to the serial one.
			par.For(opt.Workers, c.numVMs, vmRowGrain, func(lo, hi int) {
				for id := lo; id < hi; id++ {
					if first[id] < 0 {
						continue
					}
					c.fineStart[id] = first[id]
					rows := make([]float64, int(last[id]-first[id]+1)*steps)
					c.fine[id] = rows
					for sl := first[id]; sl <= last[id]; sl++ {
						row := rows[int(sl-first[id])*steps:]
						for k, step := range stepsBySlot[sl] {
							row[k] = src.Util(id, step)
						}
					}
				}
			})
		} else {
			c.fineChunk = chunkWidth(opt, c.fineSlotPeak, c.slots)
		}
	}
	// Window slices are tiny (two slots per VM); cursors need them, and
	// the fast path consults the recorded footprints.
	c.first, c.last = first, last

	// Profiles: the controller acting at sl observes obsSlot(sl), so a VM
	// active over [first, last] needs rows for [max(0, first-1), last-1]
	// (slot 0 observes itself, which that window covers). Where the
	// profile's sampling grid is a subset of a compiled fine row's — the
	// common case for the synthetic workload, whose profiles are Util
	// sampled at strided steps — the row is assembled from the fine table
	// instead of re-synthesizing the trace.
	if c.samples > 0 {
		for id := 0; id < c.numVMs; id++ {
			if first[id] >= 0 {
				c.profBytes += int64(obsSlot(last[id])-obsSlot(first[id])+1) * int64(c.samples) * 8
			}
		}
		c.profSlotPeak = winPeak * int64(c.samples) * 8
		switch {
		case opt.MaxFineTableBytes > 0 && c.profBytes > opt.MaxFineTableBytes:
			// Out-of-core: a ProfileCursor synthesizes chunk windows on
			// demand; rows come out byte-identical because both paths
			// evaluate the source's profile at the same sample steps.
			c.profChunk = chunkWidth(opt, c.profSlotPeak, c.slots)
		default:
			filler, _ := src.(slotProfileFiller)
			var profToFine [][]int
			if _, utilSampled := src.(*Workload); utilSampled && c.fine != nil {
				profToFine = profileToFine(c.stepsBySlot, c.samples)
			}
			c.profStart = make([]timeutil.Slot, c.numVMs)
			c.prof = make([][]float64, c.numVMs)
			// Per-VM rows again; the fine table above is complete before
			// this pass starts, so its reads are safe from any shard.
			par.For(opt.Workers, c.numVMs, vmRowGrain, func(lo, hi int) {
				for id := lo; id < hi; id++ {
					if first[id] < 0 {
						continue
					}
					start := obsSlot(first[id])
					end := obsSlot(last[id])
					c.profStart[id] = start
					rows := make([]float64, int(end-start+1)*c.samples)
					c.prof[id] = rows
					for sl := start; sl <= end; sl++ {
						row := rows[int(sl-start)*c.samples : int(sl-start+1)*c.samples]
						if profToFine != nil && profToFine[sl] != nil {
							if fr := c.FineRow(id, sl); fr != nil {
								for i, k := range profToFine[sl] {
									row[i] = fr[k]
								}
								continue
							}
						}
						if filler != nil {
							filler.FillSlotProfile(row, id, sl)
						} else {
							copy(row, src.SlotProfile(id, sl, c.samples))
						}
					}
				}
			})
		}
	}

	// Volume entry lists, realized and planned. Slot 0's planned list is
	// still asked of the source — PlannedVolumes(0, 0) need not equal
	// Volumes(0) for every implementation (Replay filters by lifetime).
	c.vols = make([][]VolumeEntry, slots)
	c.planned = make([][]VolumeEntry, slots)
	par.For(opt.Workers, slots, volumeSlotGrain, func(lo, hi int) {
		for sl := timeutil.Slot(lo); sl < timeutil.Slot(hi); sl++ {
			c.vols[sl] = src.Volumes(sl)
			c.planned[sl] = src.PlannedVolumes(obsSlot(sl), sl)
		}
	})
	return c
}

// chunkWidth sizes the streamed window of an out-of-core table: the widest
// slot range whose peak resident bytes fit the budget, at least one slot,
// unless CompileOptions.ChunkSlots pins it explicitly.
func chunkWidth(opt CompileOptions, slotPeakBytes int64, slots timeutil.Slot) int {
	w := opt.ChunkSlots
	if w <= 0 {
		if slotPeakBytes <= 0 {
			slotPeakBytes = 1
		}
		w = int(opt.MaxFineTableBytes / slotPeakBytes)
	}
	if w < 1 {
		w = 1
	}
	if slots > 0 && timeutil.Slot(w) > slots {
		w = int(slots)
	}
	return w
}

// tablesCompatible reports whether the receiver's materialized tables are
// what Compile would produce under opt's fine-table configuration. Without
// this check the already-compiled fast path would hand a budget-capped (or
// chunked) table back to a caller that asked for a larger or unbounded
// one.
func (c *Compiled) tablesCompatible(opt CompileOptions) bool {
	switch {
	case opt.MaxFineTableBytes < 0: // fine table disabled
		if c.steps != 0 {
			return false
		}
	case c.fineBytes <= opt.MaxFineTableBytes: // resident fine table
		if c.fine == nil {
			return false
		}
	default: // chunk-streamed fine table of the same geometry
		if c.fineChunk == 0 || c.fineChunk != chunkWidth(opt, c.fineSlotPeak, c.slots) {
			return false
		}
	}
	if c.samples <= 0 {
		return true
	}
	if opt.MaxFineTableBytes > 0 && c.profBytes > opt.MaxFineTableBytes {
		return c.profChunk == chunkWidth(opt, c.profSlotPeak, c.slots)
	}
	return c.prof != nil
}

// Shard grains of Compile's parallel passes (see internal/par: fixed
// constants keep shard boundaries a pure function of the table sizes).
// Window shards are coarse because each allocates per-VM merge buffers;
// volume shards are fine because one slot synthesizes a whole entry list.
const (
	windowSlotGrain = 32
	vmRowGrain      = 64
	volumeSlotGrain = 4
)

// Source returns the workload the trace was compiled from.
func (c *Compiled) Source() Source { return c.src }

// NumVMs implements Source.
func (c *Compiled) NumVMs() int { return c.numVMs }

// Slots implements Source.
func (c *Compiled) Slots() timeutil.Slot { return c.slots }

// Image implements Source from the materialized image table.
func (c *Compiled) Image(id int) units.DataSize {
	if id < 0 || id >= c.numVMs {
		return 0
	}
	return c.images[id]
}

// Images returns the materialized per-VM image sizes, indexed by id. The
// slice is shared; callers must not modify it.
func (c *Compiled) Images() []units.DataSize { return c.images }

// ActiveVMs implements Source (the underlying source's index is already
// materialized).
func (c *Compiled) ActiveVMs(sl timeutil.Slot) []int { return c.src.ActiveVMs(sl) }

// Util implements Source by delegating to the underlying source: arbitrary
// step queries stay exact whether or not the fine table covers them. The
// simulator's fine loop reads FineRow instead.
func (c *Compiled) Util(id int, st timeutil.Step) float64 { return c.src.Util(id, st) }

// Samples returns the compiled per-slot profile length.
func (c *Compiled) Samples() int { return c.samples }

// FineParams returns the fine-loop period the utilization rows were sampled
// at and the number of steps per slot; steps is 0 only when the fine table
// was disabled outright. A chunk-streamed table reports its steps here but
// serves rows through a FineCursor, not FineRow.
func (c *Compiled) FineParams() (dt float64, steps int) { return c.dt, c.steps }

// FineChunked reports whether the fine table is out-of-core: rows are
// served by a per-run FineCursor instead of FineRow, in windows of
// FineChunkSlots slots.
func (c *Compiled) FineChunked() bool { return c.fineChunk > 0 }

// ProfileChunked reports whether the per-slot profile table is out-of-core:
// rows are served by a per-run ProfileCursor instead of ProfileRow.
func (c *Compiled) ProfileChunked() bool { return c.profChunk > 0 }

// FineChunkSlots and ProfileChunkSlots return the streamed window widths in
// slots (0 when the corresponding table is resident or absent).
func (c *Compiled) FineChunkSlots() int    { return c.fineChunk }
func (c *Compiled) ProfileChunkSlots() int { return c.profChunk }

// TableBytes returns the resident cost the full fine and profile tables
// would have — what an unbounded compile allocates, and what the chunked
// modes avoid.
func (c *Compiled) TableBytes() (fine, prof int64) { return c.fineBytes, c.profBytes }

// FineRow returns the VM's utilization at every fine step of slot sl — row
// k is Util at the k-th iteration of the simulator's fine loop — or nil
// when the table does not cover (id, sl). The row is shared and read-only.
func (c *Compiled) FineRow(id int, sl timeutil.Slot) []float64 {
	if c.steps == 0 || c.fine == nil || id < 0 || id >= c.numVMs || c.fine[id] == nil {
		return nil
	}
	off := int(sl - c.fineStart[id])
	if off < 0 || (off+1)*c.steps > len(c.fine[id]) {
		return nil
	}
	return c.fine[id][off*c.steps : (off+1)*c.steps]
}

// ProfileRow returns the VM's compiled profile for slot sl, or nil when the
// table does not cover (id, sl). The row is shared and read-only — hand it
// to a correlation.ProfileSet without copying.
func (c *Compiled) ProfileRow(id int, sl timeutil.Slot) []float64 {
	if c.samples <= 0 || c.prof == nil || id < 0 || id >= c.numVMs || c.prof[id] == nil {
		return nil
	}
	off := int(sl - c.profStart[id])
	if off < 0 || (off+1)*c.samples > len(c.prof[id]) {
		return nil
	}
	return c.prof[id][off*c.samples : (off+1)*c.samples]
}

// SlotProfile implements Source. Covered (id, slot, n=Samples) queries copy
// the compiled row (callers own the result, per the Source contract);
// anything else falls through to the underlying source.
func (c *Compiled) SlotProfile(id int, sl timeutil.Slot, n int) []float64 {
	if n == c.samples {
		if row := c.ProfileRow(id, sl); row != nil {
			out := make([]float64, n)
			copy(out, row)
			return out
		}
	}
	return c.src.SlotProfile(id, sl, n)
}

// Volumes implements Source. The slice is shared; callers must not modify
// it.
func (c *Compiled) Volumes(sl timeutil.Slot) []VolumeEntry {
	if sl < 0 || int(sl) >= len(c.vols) {
		return nil
	}
	return c.vols[sl]
}

// PlannedVolumes implements Source. The simulator's pattern — obs one slot
// behind act — is served from the compiled table; other queries fall
// through to the underlying source.
func (c *Compiled) PlannedVolumes(obs, act timeutil.Slot) []VolumeEntry {
	if act >= 0 && int(act) < len(c.planned) && obs == obsSlot(act) {
		return c.planned[act]
	}
	return c.src.PlannedVolumes(obs, act)
}
