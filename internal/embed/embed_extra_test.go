package embed

import (
	"math"
	"testing"
)

func TestRepulsionWeightSaturatesForSmallFleets(t *testing.T) {
	cfg := Config{RepulsionScale: 8}
	cfg.applyDefaults()
	if w := cfg.repulsionWeight(5); w != 1 {
		t.Fatalf("small-fleet weight = %v, want 1 (literal Eq. 6)", w)
	}
	if w := cfg.repulsionWeight(9); w != 1 {
		t.Fatalf("n=9 weight = %v, want 1", w)
	}
	if w := cfg.repulsionWeight(801); math.Abs(w-0.01) > 1e-12 {
		t.Fatalf("n=801 weight = %v, want 0.01", w)
	}
}

func TestRepulsionWeightDisabled(t *testing.T) {
	cfg := Config{RepulsionScale: -1}
	if w := cfg.repulsionWeight(10000); w != 1 {
		t.Fatalf("disabled scale weight = %v, want 1", w)
	}
}

func TestGravityBoundsRadius(t *testing.T) {
	// A pure-repulsion cloud with gravity must not expand without bound.
	f := newTableField()
	ids := make([]int, 12)
	for i := range ids {
		ids[i] = i
		for j := i + 1; j < 12; j++ {
			f.set(0, 0, 1.0, i, j)
		}
	}
	res := Run(ids, nil, f, Config{Seed: 5, MaxIters: 300, Gravity: 0.05, StopFrac: -1})
	for _, id := range ids {
		if r := math.Hypot(res.Pos[id].X, res.Pos[id].Y); r > 200 {
			t.Fatalf("point %d escaped to radius %v", id, r)
		}
	}
}

func TestStopFracStopsEarly(t *testing.T) {
	// Strong attraction converges: with the fraction-of-peak rule the run
	// must stop before MaxIters once movement stops paying.
	f := newTableField()
	f.set(0, 0, -1.0, 1, 2)
	init := map[int]Point{1: {X: -20}, 2: {X: 20}}
	res := Run([]int{1, 2}, init, f, Config{Seed: 1, MaxIters: 500, StopFrac: 0.15})
	if res.Iterations >= 500 {
		t.Fatalf("did not stop early: %d iterations", res.Iterations)
	}
	if d := Dist(res.Pos[1], res.Pos[2]); d > 40 {
		t.Fatalf("attracted pair did not converge: %v", d)
	}
}

func TestStopFracDisabledRunsToCap(t *testing.T) {
	f := newTableField()
	f.set(0, 0, -1.0, 1, 2)
	res := Run([]int{1, 2}, map[int]Point{1: {X: -9}, 2: {X: 9}}, f,
		Config{Seed: 1, MaxIters: 25, StopFrac: -1, Gravity: -1})
	if res.Iterations != 25 {
		t.Fatalf("StopFrac -1 should run to MaxIters: %d", res.Iterations)
	}
}

func TestExactAndSampledModesAgreeOnPairSign(t *testing.T) {
	// The same two-group problem solved in both modes must separate groups
	// both times (magnitudes may differ).
	build := func() *tableField {
		f := newTableField()
		f.set(0, 0, -0.9, 0, 1)
		f.set(0, 0, -0.9, 2, 3)
		for _, a := range []int{0, 1} {
			for _, b := range []int{2, 3} {
				f.set(0, 0, 0.7, a, b)
			}
		}
		return f
	}
	check := func(name string, cfg Config) {
		res := Run([]int{0, 1, 2, 3}, nil, build(), cfg)
		intra := Dist(res.Pos[0], res.Pos[1]) + Dist(res.Pos[2], res.Pos[3])
		inter := Dist(res.Pos[0], res.Pos[2]) + Dist(res.Pos[1], res.Pos[3])
		if intra >= inter {
			t.Fatalf("%s: groups not separated (intra %v inter %v)", name, intra, inter)
		}
	}
	check("exact", Config{Seed: 9, MaxIters: 60})
	check("sampled", Config{Seed: 9, MaxIters: 60, ExactThreshold: 2, SampleK: 16})
}

func TestRunIsPureFunctionOfInputs(t *testing.T) {
	f := newTableField()
	f.set(0, 0, -0.4, 1, 2)
	f.set(0, 0, 0.6, 1, 3)
	init := map[int]Point{1: {X: 1, Y: 1}}
	a := Run([]int{1, 2, 3}, init, f, Config{Seed: 4})
	// The init map must not be mutated.
	if init[1] != (Point{X: 1, Y: 1}) {
		t.Fatal("Run mutated the init map")
	}
	b := Run([]int{1, 2, 3}, init, f, Config{Seed: 4})
	for id := range a.Pos {
		if a.Pos[id] != b.Pos[id] {
			t.Fatal("repeat run diverged")
		}
	}
}
