package embed

import (
	"math"

	"geovmp/internal/par"
	"geovmp/internal/rng"
)

// runSampledFast is the fast-math counterpart of runSampled. Two changes
// buy the speed:
//
//   - Each point's SampleK hashed repulsion peers are frozen for the whole
//     run (the draw the exact mode would use on its first iteration)
//     instead of redrawn per iteration, so their forces are evaluated once
//     into a per-run table and every iteration is pure float arithmetic —
//     no profile walks, no volume probes.
//   - With a Cache and a GenField, the force table survives across runs:
//     a row is recomputed only when the point's or one of its sampled
//     peers' generation counters moved, so a warm restart over a mostly
//     unchanged fleet (the epoch boundary this mode targets) pays only for
//     the changed rows. Reuse is exact — a hit is bit-identical to a fresh
//     evaluation.
//
// Attraction stays exact over the sparse data pairs, and the iteration,
// displacement and stopping machinery is runSampled's unchanged. All
// sharded passes write disjoint rows, so results are bit-identical at any
// worker count.
func runSampledFast(ids []int, idx map[int]int, px, py []float64, field Field, cfg Config) (int, []float64) {
	n := len(ids)
	sf, _ := field.(SplitField)
	gf, _ := field.(GenField)
	apairs, attracted := buildAttraction(ids, idx, field)
	prevD := make([]float64, len(apairs))
	for k, p := range apairs {
		dx := px[p.i] - px[p.j]
		dy := py[p.i] - py[p.j]
		prevD[k] = math.Sqrt(dx*dx + dy*dy)
	}

	K := cfg.SampleK
	cache := cfg.Cache
	if gf == nil {
		cache = nil // no change counters: nothing to validate reuse with
	}

	// The frozen peer table and the force table, either cache-backed
	// (surviving the run) or run-local. The hashed peer indices are a pure
	// function of (seed, SampleK, n, point), so a cache whose signature —
	// seed, SampleK and the exact ids slice — matches the run still holds
	// the correct peers and only the generation counters decide reuse.
	sigOK := cache != nil && cache.seed == cfg.Seed && cache.k == K && sameIDs(cache.ids, ids)
	var kj []int32
	var ff []float64
	if cache != nil {
		if !sigOK {
			cache.ids = append(cache.ids[:0], ids...)
			cache.seed = cfg.Seed
			cache.k = K
			cache.gens = cache.gens[:0]
			if cap(cache.kj) < n*K {
				cache.kj = make([]int32, n*K)
				cache.f = make([]float64, n*K)
			}
			cache.kj = cache.kj[:n*K]
			cache.f = cache.f[:n*K]
		}
		kj, ff = cache.kj, cache.f
	} else {
		kj = make([]int32, n*K)
		ff = make([]float64, n*K)
	}
	if !sigOK {
		par.For(cfg.Workers, n, sampledPointGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for k := 0; k < K; k++ {
					kj[i*K+k] = int32(rng.Hash(cfg.Seed, uint64(i), 0, uint64(k)) % uint64(n))
				}
			}
		})
	}

	// Row validity against the cached generation snapshot: row i is
	// reusable only if neither the point nor any of its sampled peers
	// changed. The scan runs serially (it is O(n*SampleK) flag reads), so
	// the reuse accounting is deterministic.
	var gens []uint64
	if gf != nil {
		gens = make([]uint64, n)
		for i, id := range ids {
			gens[i] = gf.Generation(id)
		}
	}
	valid := make([]bool, n)
	reused := 0
	if sigOK && len(cache.gens) == n {
		changed := make([]bool, n)
		for i := range gens {
			changed[i] = gens[i] != cache.gens[i]
		}
		for i := 0; i < n; i++ {
			if changed[i] {
				continue
			}
			ok := true
			base := i * K
			for k := 0; k < K; k++ {
				if changed[kj[base+k]] {
					ok = false
					break
				}
			}
			if ok {
				valid[i] = true
				reused++
			}
		}
	}
	if cache != nil {
		cache.gens = append(cache.gens[:0], gens...)
		cache.Stats.RowsReused += uint64(reused)
		cache.Stats.RowsComputed += uint64(n - reused)
	}

	// Force table fill: one batched repulsion row per invalid point, with
	// attraction peers taking the full Force exactly as in runSampled.
	par.For(cfg.Workers, n, sampledPointGrain, func(lo, hi int) {
		var scr *sampleScratch
		if sf != nil {
			scr = samplePool.Get().(*sampleScratch)
			defer samplePool.Put(scr)
		}
		for i := lo; i < hi; i++ {
			if valid[i] {
				continue
			}
			base := i * K
			if sf == nil {
				for k := 0; k < K; k++ {
					if j := int(kj[base+k]); j == i {
						ff[base+k] = 0
					} else {
						ff[base+k] = field.Force(ids[i], ids[j])
					}
				}
				continue
			}
			att := attracted[i]
			js := scr.js[:0]
			for k := 0; k < K; k++ {
				j := kj[base+k]
				if int(j) != i && !containsIdx(att, j) {
					js = append(js, ids[j])
				}
			}
			if cap(scr.dst) < len(js) {
				scr.dst = make([]float64, len(js))
			}
			rep := scr.dst[:len(js)]
			sf.RepulsionRow(ids[i], js, rep)
			scr.js = js
			cur := 0
			for k := 0; k < K; k++ {
				j := int(kj[base+k])
				switch {
				case j == i:
					ff[base+k] = 0
				case containsIdx(att, int32(j)):
					ff[base+k] = field.Force(ids[i], ids[j])
				default:
					ff[base+k] = rep[cur]
					cur++
				}
			}
		}
	})

	scale := float64(n-1) / float64(K) * cfg.repulsionWeight(n)
	rw := cfg.repulsionWeight(n)
	weight := func(f float64) float64 {
		if f > 0 {
			return f * rw
		}
		return f
	}
	fx := make([]float64, n)
	fy := make([]float64, n)
	var costs []float64
	peak := 0.0
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		for k := range apairs {
			p := &apairs[k]
			dx := px[p.i] - px[p.j]
			dy := py[p.i] - py[p.j]
			d := math.Sqrt(dx*dx + dy*dy)
			if d < 1e-9 {
				ang := rng.Noise01(cfg.Seed, uint64(p.i), uint64(p.j), uint64(iter)) * 2 * math.Pi
				dx, dy, d = math.Cos(ang), math.Sin(ang), 1
			}
			ux, uy := dx/d, dy/d
			fx[p.i] += weight(p.fij) * ux
			fy[p.i] += weight(p.fij) * uy
			fx[p.j] -= weight(p.fji) * ux
			fy[p.j] -= weight(p.fji) * uy
		}
		// The repulsion pass reads only the frozen force table and the
		// positions (frozen for the pass), and writes fx[i]/fy[i] in
		// sample order — bit-identical at any worker count.
		par.For(cfg.Workers, n, sampledPointGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				base := i * K
				for k := 0; k < K; k++ {
					f := ff[base+k]
					if f <= 0 {
						continue // attraction handled exactly above
					}
					j := int(kj[base+k])
					dx := px[i] - px[j]
					dy := py[i] - py[j]
					d := math.Sqrt(dx*dx + dy*dy)
					if d < 1e-9 {
						ang := rng.Noise01(cfg.Seed, uint64(i), uint64(j), uint64(iter)) * 2 * math.Pi
						dx, dy, d = math.Cos(ang), math.Sin(ang), 1
					}
					fx[i] += f * scale * dx / d
					fy[i] += f * scale * dy / d
				}
			}
		})
		displace(px, py, fx, fy, cfg)

		var cost float64
		for k, p := range apairs {
			dx := px[p.i] - px[p.j]
			dy := py[p.i] - py[p.j]
			d := math.Sqrt(dx*dx + dy*dy)
			cost += (p.fij + p.fji) * (d - prevD[k])
			prevD[k] = d
		}
		costs = append(costs, cost)
		iters = iter + 1
		if cost > peak {
			peak = cost
		}
		if cfg.stopNow(iter, cost, peak) {
			break
		}
	}
	return iters, costs
}

// triRowOff returns the packed upper-triangle offset of row i (entries
// (i, i+1..n-1)) in an n-point triangle.
func triRowOff(i, n int) int { return i*(n-1) - i*(i-1)/2 }

// denseBuild fills ft's upper-triangle rows with the symmetric repulsion
// values, recomputing only the pairs whose endpoints' generation counters
// moved since the cached build and copying the rest from the cache. A pair
// is recomputed when either endpoint changed: changed rows are rebuilt
// whole, unchanged rows only patch their changed partners. Requires
// RepulsionRow values to be pure per-pair functions (independent of batch
// composition) — true of the correlation field — so a partial rebuild is
// bit-identical to a full one.
func (c *Cache) denseBuild(sf SplitField, gf GenField, ids []int, ft []float64, n int, workers *par.Budget) {
	tri := n * (n - 1) / 2
	gens := make([]uint64, n)
	for i, id := range ids {
		gens[i] = gf.Generation(id)
	}
	if !sameIDs(c.denseIDs, ids) || len(c.denseRep) != tri {
		par.For(workers, n, exactRowGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sf.RepulsionRow(ids[i], ids[i+1:], ft[i*n+i+1:i*n+n])
			}
		})
		c.denseIDs = append(c.denseIDs[:0], ids...)
		c.denseGens = gens
		c.Stats.PairsComputed += uint64(tri)
		c.storeDense(ft, n, tri)
		return
	}
	changed := make([]bool, n)
	unchanged := 0
	for i := range gens {
		if gens[i] != c.denseGens[i] {
			changed[i] = true
		} else {
			unchanged++
		}
	}
	par.For(workers, n, exactRowGrain, func(lo, hi int) {
		var js []int
		var jpos []int
		var dst []float64
		for i := lo; i < hi; i++ {
			row := ft[i*n+i+1 : i*n+n]
			if changed[i] {
				sf.RepulsionRow(ids[i], ids[i+1:], row)
				continue
			}
			copy(row, c.denseRep[triRowOff(i, n):triRowOff(i, n)+n-1-i])
			js = js[:0]
			jpos = jpos[:0]
			for j := i + 1; j < n; j++ {
				if changed[j] {
					js = append(js, ids[j])
					jpos = append(jpos, j)
				}
			}
			if len(js) == 0 {
				continue
			}
			if cap(dst) < len(js) {
				dst = make([]float64, len(js))
			}
			d := dst[:len(js)]
			sf.RepulsionRow(ids[i], js, d)
			for m, j := range jpos {
				row[j-i-1] = d[m]
			}
		}
	})
	c.denseGens = gens
	// Pairs with both endpoints unchanged are the reused set; everything
	// else was recomputed (whole changed rows plus the patched entries).
	kept := uint64(unchanged) * uint64(unchanged-1) / 2
	c.Stats.PairsReused += kept
	c.Stats.PairsComputed += uint64(tri) - kept
	c.storeDense(ft, n, tri)
}

// storeDense snapshots ft's upper triangle into the packed cache buffer.
func (c *Cache) storeDense(ft []float64, n, tri int) {
	if cap(c.denseRep) < tri {
		c.denseRep = make([]float64, tri)
	}
	c.denseRep = c.denseRep[:tri]
	for i := 0; i < n; i++ {
		copy(c.denseRep[triRowOff(i, n):triRowOff(i, n)+n-1-i], ft[i*n+i+1:i*n+n])
	}
}
