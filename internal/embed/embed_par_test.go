package embed

import (
	"testing"

	"geovmp/internal/par"
	"geovmp/internal/rng"
)

// splitHashField is a deterministic, concurrency-safe Field + SplitField:
// symmetric hashed repulsion on every pair plus fixed attraction between
// consecutive ids — the structure of the controller's correlation field,
// without the controller.
type splitHashField struct {
	seed uint64
	n    int
}

func (f splitHashField) rep(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return 0.1 + 0.9*rng.Noise01(f.seed, uint64(a), uint64(b))
}

func (f splitHashField) att(onto, by int) float64 {
	if by-onto == 1 || onto-by == 1 {
		return -0.5
	}
	return 0
}

func (f splitHashField) Force(onto, by int) float64 {
	return f.att(onto, by) + f.rep(onto, by)
}

func (f splitHashField) AttractionPeers(id int) []int {
	var peers []int
	if id > 0 {
		peers = append(peers, id-1)
	}
	if id < f.n-1 {
		peers = append(peers, id+1)
	}
	return peers
}

func (f splitHashField) RepulsionRow(a int, bs []int, dst []float64) {
	for k, b := range bs {
		dst[k] = f.rep(a, b)
	}
}

func (f splitHashField) EachAttraction(fn func(onto, by int, fa float64)) {
	for i := 0; i+1 < f.n; i++ {
		fn(i, i+1, -0.5)
		fn(i+1, i, -0.5)
	}
}

// forceOnlyField hides the SplitField fast paths, forcing the generic
// Force-per-pair code.
type forceOnlyField struct{ f splitHashField }

func (g forceOnlyField) Force(onto, by int) float64   { return g.f.Force(onto, by) }
func (g forceOnlyField) AttractionPeers(id int) []int { return g.f.AttractionPeers(id) }

// TestSplitFieldFastPathEquivalence proves the sampled mode's batched
// repulsion-row fast path changes nothing: the same embedding run against
// the bare Force interface and against the SplitField implementation
// yields bit-identical positions and costs.
func TestSplitFieldFastPathEquivalence(t *testing.T) {
	const n = 160
	field := splitHashField{seed: 99, n: n}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	cfg := Config{Seed: 5, ExactThreshold: 32, SampleK: 24}
	fast := Run(ids, nil, field, cfg)
	slow := Run(ids, nil, forceOnlyField{f: field}, cfg)
	if fast.Iterations != slow.Iterations {
		t.Fatalf("iterations %d != %d", fast.Iterations, slow.Iterations)
	}
	for _, id := range ids {
		if fast.Pos[id] != slow.Pos[id] {
			t.Fatalf("position of %d differs: %v != %v", id, fast.Pos[id], slow.Pos[id])
		}
	}
	for k := range slow.Cost {
		if fast.Cost[k] != slow.Cost[k] {
			t.Fatalf("cost[%d] differs: %v != %v", k, fast.Cost[k], slow.Cost[k])
		}
	}
}

// TestWorkersEquivalence is the embedding's determinism guarantee: with
// Workers lending extra goroutines to the dense cache build and the sampled
// repulsion pass, positions, iteration counts and the Eq. 7 cost trace are
// bit-identical to the serial run — in both the exact and the sampled mode.
func TestWorkersEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		cfg  Config
	}{
		{"exact", 96, Config{Seed: 3}},
		{"sampled", 160, Config{Seed: 3, ExactThreshold: 32, SampleK: 24}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			field := splitHashField{seed: 99, n: tc.n}
			ids := make([]int, tc.n)
			for i := range ids {
				ids[i] = i
			}
			run := func(w *par.Budget) Result {
				cfg := tc.cfg
				cfg.Workers = w
				return Run(ids, nil, field, cfg)
			}
			serial := run(nil)
			for _, extra := range []int{1, 7} {
				parallel := run(par.NewBudget(extra))
				if serial.Iterations != parallel.Iterations {
					t.Fatalf("extra=%d: iterations %d != %d", extra, parallel.Iterations, serial.Iterations)
				}
				if len(serial.Cost) != len(parallel.Cost) {
					t.Fatalf("extra=%d: cost trace length differs", extra)
				}
				for k := range serial.Cost {
					if serial.Cost[k] != parallel.Cost[k] {
						t.Fatalf("extra=%d: cost[%d] %v != %v", extra, k, parallel.Cost[k], serial.Cost[k])
					}
				}
				for _, id := range ids {
					if serial.Pos[id] != parallel.Pos[id] {
						t.Fatalf("extra=%d: position of %d differs: %v != %v",
							extra, id, parallel.Pos[id], serial.Pos[id])
					}
				}
			}
		})
	}
}
