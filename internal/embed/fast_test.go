package embed

import (
	"math"
	"reflect"
	"testing"

	"geovmp/internal/rng"
)

// genTestField is a deterministic SplitField + GenField stub with
// controllable per-id generation counters and per-call evaluation
// accounting, for exercising the fast-math force cache.
type genTestField struct {
	gens map[int]uint64
}

func newGenTestField(ids []int) *genTestField {
	g := &genTestField{gens: map[int]uint64{}}
	for _, id := range ids {
		g.gens[id] = 1
	}
	return g
}

// pairForce is a pure deterministic function of the pair and the two
// endpoint generations, so bumping a generation genuinely changes the
// forces the cache must refresh.
func (g *genTestField) pairForce(a, b int) float64 {
	return 0.1 + 0.9*rng.Noise01(uint64(a*7919+b), g.gens[a], g.gens[b])
}

func (g *genTestField) Force(onto, by int) float64 {
	if onto < by {
		return g.pairForce(onto, by)
	}
	return g.pairForce(by, onto)
}
func (g *genTestField) AttractionPeers(int) []int { return nil }
func (g *genTestField) RepulsionRow(a int, bs []int, dst []float64) {
	for k, b := range bs {
		dst[k] = g.Force(a, b)
	}
}
func (g *genTestField) EachAttraction(func(onto, by int, fa float64)) {}
func (g *genTestField) Generation(id int) uint64                      { return g.gens[id] }

func fastIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 100
	}
	return ids
}

// TestSampledFastCacheReuse pins the sampled-mode cache contract: an
// unchanged rerun reuses every force row, a targeted generation bump
// recomputes exactly the rows depending on the changed id, and cached
// reruns stay bit-identical to a cache-free fast run.
func TestSampledFastCacheReuse(t *testing.T) {
	const n = 600 // past the default ExactThreshold of 512
	ids := fastIDs(n)
	field := newGenTestField(ids)
	cfg := Config{Seed: 9, FastMath: true, MaxIters: 6, SampleK: 16}

	base := Run(ids, nil, field, cfg)
	cache := NewCache()
	cfg.Cache = cache
	first := Run(ids, nil, field, cfg)
	if !reflect.DeepEqual(first.Pos, base.Pos) {
		t.Fatal("cache-backed fast run diverged from cache-free fast run")
	}
	if cache.Stats.RowsComputed != n || cache.Stats.RowsReused != 0 {
		t.Fatalf("cold cache: computed %d reused %d, want %d/0",
			cache.Stats.RowsComputed, cache.Stats.RowsReused, n)
	}

	second := Run(ids, nil, field, cfg)
	if !reflect.DeepEqual(second.Pos, first.Pos) {
		t.Fatal("identical rerun changed positions")
	}
	if cache.Stats.RowsComputed != n || cache.Stats.RowsReused != n {
		t.Fatalf("warm rerun: computed %d reused %d, want %d/%d",
			cache.Stats.RowsComputed, cache.Stats.RowsReused, n, n)
	}

	// Bump one id: its own row plus every row sampling it must recompute;
	// nothing else may.
	changed := ids[3]
	field.gens[changed]++
	prev := cache.Stats
	third := Run(ids, nil, field, cfg)
	dependent := 0
	for i := 0; i < n; i++ {
		if ids[i] == changed {
			dependent++
			continue
		}
		for k := 0; k < cfg.SampleK; k++ {
			if ids[rng.Hash(cfg.Seed, uint64(i), 0, uint64(k))%uint64(n)] == changed {
				dependent++
				break
			}
		}
	}
	got := cache.Stats.RowsComputed - prev.RowsComputed
	if got != uint64(dependent) {
		t.Fatalf("after bumping one id: recomputed %d rows, want exactly the %d dependent rows", got, dependent)
	}
	// The changed forces must actually reach the layout.
	if reflect.DeepEqual(third.Pos, second.Pos) {
		t.Fatal("generation bump changed forces but not the layout")
	}
	// And a cache-free run over the new state must agree bit-for-bit.
	cfgNoCache := cfg
	cfgNoCache.Cache = nil
	if fresh := Run(ids, nil, field, cfgNoCache); !reflect.DeepEqual(fresh.Pos, third.Pos) {
		t.Fatal("partially-reused run diverged from fresh fast run")
	}
}

// TestDenseFastCacheReuse pins the exact-mode (dense) cache contract: with
// FastMath and a cache the dense repulsion triangle is served from the
// cache for unchanged pairs — recomputing only pairs with a changed
// endpoint — and the resulting layout stays bit-identical to the uncached
// exact mode.
func TestDenseFastCacheReuse(t *testing.T) {
	const n = 80
	ids := fastIDs(n)
	field := newGenTestField(ids)
	cfg := Config{Seed: 5, MaxIters: 6}

	exact := Run(ids, nil, field, cfg)
	cache := NewCache()
	cfg.FastMath = true
	cfg.Cache = cache
	first := Run(ids, nil, field, cfg)
	if !reflect.DeepEqual(first.Pos, exact.Pos) {
		t.Fatal("dense cached run diverged from plain exact run")
	}
	tri := uint64(n * (n - 1) / 2)
	if cache.Stats.PairsComputed != tri || cache.Stats.PairsReused != 0 {
		t.Fatalf("cold dense cache: computed %d reused %d, want %d/0",
			cache.Stats.PairsComputed, cache.Stats.PairsReused, tri)
	}

	second := Run(ids, nil, field, cfg)
	if !reflect.DeepEqual(second.Pos, exact.Pos) {
		t.Fatal("warm dense rerun changed positions")
	}
	if cache.Stats.PairsReused != tri {
		t.Fatalf("warm dense rerun reused %d pairs, want all %d", cache.Stats.PairsReused, tri)
	}

	// Bump two ids: recomputed pairs are exactly those touching them.
	field.gens[ids[10]]++
	field.gens[ids[50]]++
	prev := cache.Stats
	third := Run(ids, nil, field, cfg)
	unchanged := uint64(n - 2)
	wantReused := unchanged * (unchanged - 1) / 2
	if got := cache.Stats.PairsReused - prev.PairsReused; got != wantReused {
		t.Fatalf("after bumping 2 ids: reused %d pairs, want %d", got, wantReused)
	}
	if got := cache.Stats.PairsComputed - prev.PairsComputed; got != tri-wantReused {
		t.Fatalf("after bumping 2 ids: computed %d pairs, want %d", got, tri-wantReused)
	}
	cfgFresh := Config{Seed: 5, MaxIters: 6}
	if fresh := Run(ids, nil, field, cfgFresh); !reflect.DeepEqual(fresh.Pos, third.Pos) {
		t.Fatal("partially-rebuilt dense run diverged from plain exact run")
	}
}

// TestSampledFastMatchesForceSemantics spot-checks that the frozen-peer
// fast mode still respects force directions: attracted pairs end closer
// than repelled ones under the same geometry.
func TestSampledFastMatchesForceSemantics(t *testing.T) {
	const n = 520
	ids := fastIDs(n)
	field := newGenTestField(ids) // all-repulsive
	cfg := Config{Seed: 2, FastMath: true, MaxIters: 8, SampleK: 24}
	res := Run(ids, nil, field, cfg)
	var spread float64
	for _, p := range res.Pos {
		spread += math.Hypot(p.X, p.Y)
	}
	init := make(map[int]Point, n)
	for _, id := range ids {
		init[id] = InitialPosition(id, cfg.InitRadius, cfg.Seed)
	}
	var before float64
	for _, p := range init {
		before += math.Hypot(p.X, p.Y)
	}
	if spread <= before {
		t.Fatalf("all-repulsive fast layout contracted: mean radius %v -> %v", before/n, spread/n)
	}
}
