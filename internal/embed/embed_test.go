package embed

import (
	"math"
	"testing"
)

// tableField returns forces from a symmetric matrix keyed by (onto, by).
type tableField struct {
	f     map[[2]int]float64
	peers map[int][]int
}

func (t *tableField) Force(onto, by int) float64 { return t.f[[2]int{onto, by}] }
func (t *tableField) AttractionPeers(id int) []int {
	return t.peers[id]
}

func newTableField() *tableField {
	return &tableField{f: map[[2]int]float64{}, peers: map[int][]int{}}
}

func (t *tableField) set(a, b, v float64, i, j int) {
	t.f[[2]int{i, j}] = v
	t.f[[2]int{j, i}] = v
	if v < 0 {
		t.peers[i] = append(t.peers[i], j)
		t.peers[j] = append(t.peers[j], i)
	}
	_ = a
	_ = b
}

func TestAttractionPullsTogether(t *testing.T) {
	f := newTableField()
	f.set(0, 0, -0.8, 1, 2)
	init := map[int]Point{1: {X: -5, Y: 0}, 2: {X: 5, Y: 0}}
	res := Run([]int{1, 2}, init, f, Config{Seed: 1})
	d0 := Dist(init[1], init[2])
	d1 := Dist(res.Pos[1], res.Pos[2])
	if d1 >= d0 {
		t.Fatalf("attracted pair grew apart: %v -> %v", d0, d1)
	}
}

func TestRepulsionPushesApart(t *testing.T) {
	f := newTableField()
	f.set(0, 0, 0.9, 1, 2)
	init := map[int]Point{1: {X: -1, Y: 0}, 2: {X: 1, Y: 0}}
	res := Run([]int{1, 2}, init, f, Config{Seed: 1})
	d0 := Dist(init[1], init[2])
	d1 := Dist(res.Pos[1], res.Pos[2])
	if d1 <= d0 {
		t.Fatalf("repelled pair moved closer: %v -> %v", d0, d1)
	}
}

func TestMixedForcesSeparateGroups(t *testing.T) {
	// VMs 1,2 attract each other; 3,4 attract each other; the groups repel.
	f := newTableField()
	f.set(0, 0, -0.9, 1, 2)
	f.set(0, 0, -0.9, 3, 4)
	for _, a := range []int{1, 2} {
		for _, b := range []int{3, 4} {
			f.set(0, 0, 0.7, a, b)
		}
	}
	res := Run([]int{1, 2, 3, 4}, nil, f, Config{Seed: 7, MaxIters: 50})
	intra := Dist(res.Pos[1], res.Pos[2]) + Dist(res.Pos[3], res.Pos[4])
	inter := Dist(res.Pos[1], res.Pos[3]) + Dist(res.Pos[2], res.Pos[4])
	if intra >= inter {
		t.Fatalf("groups not separated: intra %v, inter %v", intra, inter)
	}
}

func TestDeterministic(t *testing.T) {
	f := newTableField()
	f.set(0, 0, -0.5, 1, 2)
	f.set(0, 0, 0.5, 2, 3)
	run := func() Result { return Run([]int{1, 2, 3}, nil, f, Config{Seed: 42}) }
	a, b := run(), run()
	for _, id := range []int{1, 2, 3} {
		if a.Pos[id] != b.Pos[id] {
			t.Fatalf("position of %d diverged", id)
		}
	}
	if a.Iterations != b.Iterations {
		t.Fatal("iteration counts diverged")
	}
}

func TestRespectsMaxIters(t *testing.T) {
	f := newTableField()
	f.set(0, 0, 0.9, 1, 2)
	res := Run([]int{1, 2}, nil, f, Config{Seed: 1, MaxIters: 5})
	if res.Iterations > 5 {
		t.Fatalf("ran %d iterations, cap 5", res.Iterations)
	}
}

func TestDisplacementClamped(t *testing.T) {
	// Many strong repellers at the same spot: displacement per iteration
	// must still be bounded by MaxDisplace.
	f := newTableField()
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			f.set(0, 0, 1.0, ids[i], ids[j])
		}
	}
	init := map[int]Point{}
	for _, id := range ids {
		init[id] = Point{} // all coincident
	}
	cfg := Config{Seed: 3, MaxIters: 1, MaxDisplace: 2}
	res := Run(ids, init, f, cfg)
	for _, id := range ids {
		if d := Dist(res.Pos[id], Point{}); d > 2+1e-9 {
			t.Fatalf("point %d moved %v > clamp 2", id, d)
		}
	}
}

func TestInheritedPositionsUsed(t *testing.T) {
	f := newTableField() // no forces (and no gravity): nothing moves
	init := map[int]Point{7: {X: 3, Y: 4}}
	res := Run([]int{7, 8}, init, f, Config{Seed: 9, Gravity: -1})
	if res.Pos[7] != (Point{X: 3, Y: 4}) {
		t.Fatalf("inherited position not kept: %v", res.Pos[7])
	}
	// 8 had no position: must get the deterministic scatter.
	want := InitialPosition(8, 10, 9)
	if res.Pos[8] != want {
		t.Fatalf("scatter = %v, want %v", res.Pos[8], want)
	}
}

func TestSinglePointNoop(t *testing.T) {
	f := newTableField()
	res := Run([]int{5}, nil, f, Config{Seed: 1})
	if len(res.Pos) != 1 || res.Iterations != 0 {
		t.Fatal("single point should not iterate")
	}
}

func TestEmptyInput(t *testing.T) {
	res := Run(nil, nil, newTableField(), Config{})
	if len(res.Pos) != 0 {
		t.Fatal("empty input should return empty result")
	}
}

func TestSampledModeStillSeparates(t *testing.T) {
	// Force sampled mode with a low threshold; attraction stays exact via
	// AttractionPeers so the pair must still converge.
	f := newTableField()
	ids := make([]int, 30)
	for i := range ids {
		ids[i] = i
	}
	f.set(0, 0, -0.9, 0, 1)
	res := Run(ids, nil, f, Config{Seed: 11, ExactThreshold: 4, SampleK: 8, MaxIters: 40, Gravity: -1})
	d := Dist(res.Pos[0], res.Pos[1])
	// The attracted pair should sit closer than the average pair.
	var sum float64
	var n int
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += Dist(res.Pos[ids[i]], res.Pos[ids[j]])
			n++
		}
	}
	if d >= sum/float64(n) {
		t.Fatalf("attracted pair distance %v not below mean %v in sampled mode", d, sum/float64(n))
	}
}

func TestCostHistoryRecorded(t *testing.T) {
	f := newTableField()
	f.set(0, 0, -0.5, 1, 2)
	res := Run([]int{1, 2}, map[int]Point{1: {X: -4}, 2: {X: 4}}, f, Config{Seed: 1, MaxIters: 10})
	if len(res.Cost) != res.Iterations {
		t.Fatalf("cost history %d entries, %d iterations", len(res.Cost), res.Iterations)
	}
}

func TestInitialPositionWithinRadius(t *testing.T) {
	for id := 0; id < 200; id++ {
		p := InitialPosition(id, 10, 77)
		if d := math.Hypot(p.X, p.Y); d > 10 {
			t.Fatalf("scatter %v outside radius", d)
		}
	}
}

func TestDistMetricBasics(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 3, Y: 4}
	if Dist(a, b) != 5 {
		t.Fatalf("dist = %v", Dist(a, b))
	}
	if Dist(a, a) != 0 {
		t.Fatal("self distance not 0")
	}
	if Dist(a, b) != Dist(b, a) {
		t.Fatal("distance not symmetric")
	}
}
