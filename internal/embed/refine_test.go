package embed

import (
	"math"
	"testing"
)

// pairField is a scripted Field: forces come from a map, attraction peers
// from a list.
type pairField struct {
	force map[[2]int]float64
	peers map[int][]int
}

func (f *pairField) Force(onto, by int) float64   { return f.force[[2]int{onto, by}] }
func (f *pairField) AttractionPeers(id int) []int { return f.peers[id] }

func TestRefineOneDeterministic(t *testing.T) {
	f := &pairField{
		force: map[[2]int]float64{{5, 1}: -0.8, {5, 2}: 0.6, {5, 3}: 0.3},
		peers: map[int][]int{5: {1}},
	}
	pos := map[int]Point{
		1: {X: 2, Y: 0},
		2: {X: -1, Y: 1},
		3: {X: 0, Y: -2},
		5: {X: 0, Y: 0},
	}
	cfg := Config{Seed: 11, MaxDisplace: 1.0, RepulsionScale: 4}
	a := RefineOne(5, []int{1, 2, 3}, pos, f, cfg, 6)
	b := RefineOne(5, []int{1, 2, 3}, pos, f, cfg, 6)
	if a != b {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
	if a == (Point{X: 0, Y: 0}) {
		t.Fatal("refinement did not move the point")
	}
	// Only id's position is refined; the rest of the layout is frozen.
	if pos[1] != (Point{X: 2, Y: 0}) || pos[5] != (Point{}) {
		t.Fatal("RefineOne mutated the layout")
	}
}

func TestRefineOneAttractsTowardPeer(t *testing.T) {
	// One strongly attractive peer, no repulsion: the point must end up
	// closer to the peer than where it started.
	f := &pairField{
		force: map[[2]int]float64{{5, 1}: -1.0},
		peers: map[int][]int{5: {1}},
	}
	pos := map[int]Point{1: {X: 6, Y: 0}, 5: {X: 0, Y: 0}}
	cfg := Config{Seed: 3, MaxDisplace: 1.0, RepulsionScale: 4}
	p := RefineOne(5, []int{1}, pos, f, cfg, 8)
	d0 := Dist(Point{X: 0, Y: 0}, pos[1])
	if d := Dist(p, pos[1]); d >= d0 {
		t.Fatalf("attraction failed: dist %v -> %v", d0, d)
	}
}

func TestRefineOneRepelsFromCoResident(t *testing.T) {
	// Pure repulsion from a nearby point: the refined position must gain
	// distance.
	f := &pairField{
		force: map[[2]int]float64{{5, 1}: 1.0},
		peers: map[int][]int{5: {1}},
	}
	pos := map[int]Point{1: {X: 0.3, Y: 0}, 5: {X: 0, Y: 0}}
	cfg := Config{Seed: 3, MaxDisplace: 1.0, RepulsionScale: 4, Gravity: -1}
	p := RefineOne(5, []int{1}, pos, f, cfg, 4)
	if d := Dist(p, pos[1]); d <= 0.3 {
		t.Fatalf("repulsion failed: dist = %v", d)
	}
}

func TestRefineOneEdgeCases(t *testing.T) {
	f := &pairField{force: map[[2]int]float64{}, peers: map[int][]int{}}
	pos := map[int]Point{5: {X: 1, Y: 2}}
	cfg := Config{Seed: 9}
	// No co-residents: nothing to refine against.
	if p := RefineOne(5, nil, pos, f, cfg, 4); p != (Point{X: 1, Y: 2}) {
		t.Fatalf("solo point moved: %+v", p)
	}
	// Zero iterations: seed returned untouched.
	if p := RefineOne(5, []int{1}, pos, f, cfg, 0); p != (Point{X: 1, Y: 2}) {
		t.Fatalf("0-iteration refinement moved: %+v", p)
	}
	// Unknown id scatters deterministically from InitialPosition.
	want := InitialPosition(77, 10, cfg.Seed)
	if p := RefineOne(77, nil, map[int]Point{}, f, cfg, 4); p != want {
		t.Fatalf("scatter mismatch: %+v vs %+v", p, want)
	}
	if math.IsNaN(want.X) {
		t.Fatal("scatter produced NaN")
	}
}
